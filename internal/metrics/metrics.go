// Package metrics provides the small statistics toolkit used across the
// simulator: time-weighted utilization meters, sample aggregates, and
// percentile helpers. MRONLINE's monitor component is built on these.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Meter integrates a piecewise-constant level over simulated time,
// yielding time-weighted averages. It is used for resource utilization:
// set the level whenever it changes, then read Average over a window.
type Meter struct {
	level    float64
	lastTime float64
	integral float64
	started  bool
	start    float64
	peak     float64
}

// Set records that the level changed to v at time now. Times must be
// nondecreasing.
func (m *Meter) Set(now, v float64) {
	if !m.started {
		m.started = true
		m.start = now
		m.lastTime = now
	}
	if now < m.lastTime {
		panic(fmt.Sprintf("metrics: Meter time went backwards: %v < %v", now, m.lastTime))
	}
	m.integral += m.level * (now - m.lastTime)
	m.lastTime = now
	m.level = v
	if v > m.peak {
		m.peak = v
	}
}

// Add adjusts the level by delta at time now.
func (m *Meter) Add(now, delta float64) {
	m.Set(now, m.level+delta)
}

// Level returns the current level.
func (m *Meter) Level() float64 { return m.level }

// Peak returns the maximum level ever set.
func (m *Meter) Peak() float64 { return m.peak }

// Average returns the time-weighted average level from the first Set
// through time now.
func (m *Meter) Average(now float64) float64 {
	if !m.started || now <= m.start {
		return 0
	}
	integral := m.integral + m.level*(now-m.lastTime)
	return integral / (now - m.start)
}

// Integral returns the accumulated level·time product through time now.
func (m *Meter) Integral(now float64) float64 {
	if !m.started {
		return 0
	}
	return m.integral + m.level*(now-m.lastTime)
}

// Sample is a streaming aggregate over scalar observations.
type Sample struct {
	n          int
	sum, sumSq float64
	min, max   float64
	values     []float64 // retained for percentiles
}

// Observe adds one value.
func (s *Sample) Observe(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
	s.values = append(s.values, v)
}

// Reset forgets every observation while keeping the values buffer's
// capacity, so a Sample reused across jobs stops allocating once warm.
func (s *Sample) Reset() {
	*s = Sample{values: s.values[:0]}
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation, or 0 with no observations.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Sample) Max() float64 { return s.max }

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	mean := s.Mean()
	v := s.sumSq/float64(s.n) - mean*mean
	if v < 0 {
		v = 0 // guard against tiny negative from rounding
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. It returns 0 with no observations.
func (s *Sample) Percentile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	return Percentile(s.values, p)
}

// Values returns a copy of all observations in insertion order.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Percentile computes the p-th percentile (0..100) of values using
// linear interpolation. It does not modify values. Empty input yields 0.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
