package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMeterAverage(t *testing.T) {
	var m Meter
	m.Set(0, 1.0)
	m.Set(10, 0.0) // level 1 for 10s
	m.Set(20, 0.5) // level 0 for 10s
	// level 0.5 for 10s
	avg := m.Average(30)
	want := (1.0*10 + 0*10 + 0.5*10) / 30
	if !almostEqual(avg, want) {
		t.Fatalf("Average = %v, want %v", avg, want)
	}
}

func TestMeterAdd(t *testing.T) {
	var m Meter
	m.Add(0, 2)
	m.Add(5, 3)
	if m.Level() != 5 {
		t.Fatalf("Level = %v, want 5", m.Level())
	}
	m.Add(10, -5)
	if m.Level() != 0 {
		t.Fatalf("Level = %v, want 0", m.Level())
	}
	// integral: 2*5 + 5*5 = 35
	if !almostEqual(m.Integral(10), 35) {
		t.Fatalf("Integral = %v, want 35", m.Integral(10))
	}
}

func TestMeterPeak(t *testing.T) {
	var m Meter
	m.Set(0, 3)
	m.Set(1, 7)
	m.Set(2, 2)
	if m.Peak() != 7 {
		t.Fatalf("Peak = %v, want 7", m.Peak())
	}
}

func TestMeterEmptyAverage(t *testing.T) {
	var m Meter
	if m.Average(10) != 0 {
		t.Fatal("empty meter average should be 0")
	}
}

func TestMeterTimeBackwardsPanics(t *testing.T) {
	var m Meter
	m.Set(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	m.Set(4, 2)
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 2, 8, 6} {
		s.Observe(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 20 {
		t.Fatalf("Sum = %v", s.Sum())
	}
	wantSD := math.Sqrt((16 + 4 + 64 + 36) / 4.0 * 1.0 / 1.0)
	_ = wantSD
	// population stddev of {4,2,8,6}: mean 5, var = (1+9+9+1)/4 = 5
	if !almostEqual(s.StdDev(), math.Sqrt(5)) {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), math.Sqrt(5))
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {80, 42},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); !almostEqual(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", vals)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Fatal("Clamp misbehaved")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p1 := float64(a) / 255 * 100
		p2 := float64(b) / 255 * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1 := Percentile(vals, p1)
		v2 := Percentile(vals, p2)
		lo := Percentile(vals, 0)
		hi := Percentile(vals, 100)
		return v1 <= v2 && v1 >= lo && v2 <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: meter average is always between the min and max level set.
func TestMeterAverageBoundsProperty(t *testing.T) {
	f := func(levels []uint8) bool {
		if len(levels) == 0 {
			return true
		}
		var m Meter
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, l := range levels {
			v := float64(l)
			m.Set(float64(i), v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		avg := m.Average(float64(len(levels)))
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePercentileAndValues(t *testing.T) {
	var s Sample
	for _, v := range []float64{10, 20, 30, 40, 50} {
		s.Observe(v)
	}
	if got := s.Percentile(50); got != 30 {
		t.Fatalf("Percentile(50) = %v", got)
	}
	var empty Sample
	if empty.Percentile(50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	vals := s.Values()
	vals[0] = 999
	if s.Values()[0] != 10 {
		t.Fatal("Values exposed internal slice")
	}
}
