package metrics

import (
	"fmt"
	"strings"
)

// FaultCounters aggregates fault-injection and recovery activity across
// every layer of the stack. One instance lives on the cluster (see
// cluster.Cluster.Faults); the HDFS, YARN and MapReduce layers all
// write to it through their cluster pointer, so a single sheet shows
// what was injected and what the recovery machinery did about it.
type FaultCounters struct {
	// Cluster layer.
	NodesDowned   int
	NodesRestored int

	// YARN layer.
	ContainersLost     int // live containers reclaimed from lost nodes
	NodesBlacklisted   int
	NodesUnblacklisted int

	// MapReduce layer.
	AttemptsKilledNodeLoss int // running attempts requeued after a crash
	TaskFailuresInjected   int // attempts killed by the fault injector
	FetchFailures          int // shuffle fetches that failed and retried
	MapsReExecuted         int // completed maps re-run after output loss

	// HDFS layer.
	ReplicasLost       int
	BlocksReReplicated int
	ReadFailovers      int // block reads restarted from another replica
	WriteRestarts      int // replica pipelines rebuilt after a crash
}

// Any reports whether any fault or recovery activity was recorded.
func (f *FaultCounters) Any() bool {
	return *f != FaultCounters{}
}

// Summary renders the non-zero counters, one per line.
func (f *FaultCounters) Summary() string {
	var b strings.Builder
	line := func(name string, v int) {
		if v != 0 {
			fmt.Fprintf(&b, "%s=%d\n", name, v)
		}
	}
	line("Nodes downed", f.NodesDowned)
	line("Nodes restored", f.NodesRestored)
	line("Containers lost", f.ContainersLost)
	line("Nodes blacklisted", f.NodesBlacklisted)
	line("Nodes unblacklisted", f.NodesUnblacklisted)
	line("Attempts killed by node loss", f.AttemptsKilledNodeLoss)
	line("Injected task failures", f.TaskFailuresInjected)
	line("Fetch failures", f.FetchFailures)
	line("Maps re-executed", f.MapsReExecuted)
	line("Replicas lost", f.ReplicasLost)
	line("Blocks re-replicated", f.BlocksReReplicated)
	line("Read failovers", f.ReadFailovers)
	line("Write restarts", f.WriteRestarts)
	return b.String()
}
