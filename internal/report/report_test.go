package report

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func sampleDoc() *Document {
	d := &Document{Title: "Results <test>", Subtitle: "all & sundry"}
	d.AddChart("Figure 4", "Terasort execution time",
		&BarChart{
			YLabel: "seconds",
			Series: []string{"Default", "Offline", "MRONLINE"},
			Groups: []BarGroup{{Label: "terasort", Values: []float64{551, 400, 396}}},
		})
	d.AddTable("Table 3", "characteristics",
		&Table{Header: []string{"bench", "input"}, Rows: [][]string{{"bigram", "90.5"}}})
	return d
}

func TestRenderHTMLWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleDoc().RenderHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "</svg>", "<table>", "</html>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	// Title must be escaped.
	if strings.Contains(out, "<test>") {
		t.Fatal("unescaped title")
	}
	if !strings.Contains(out, "&lt;test&gt;") {
		t.Fatal("title not visible escaped")
	}
	// All three bars rendered.
	if strings.Count(out, "<rect") < 3+3 { // bars + legend swatches
		t.Fatalf("too few rects:\n%s", out)
	}
}

func TestChartScalesBars(t *testing.T) {
	c := &BarChart{
		Series: []string{"a"},
		Groups: []BarGroup{{Label: "x", Values: []float64{100}}, {Label: "y", Values: []float64{50}}},
	}
	svg := c.SVG(400, 200)
	// The 100-value bar must be roughly twice as tall as the 50 bar.
	heights := extractHeights(t, svg)
	if len(heights) < 2 {
		t.Fatalf("found %d bars", len(heights))
	}
	if math.Abs(heights[0]/heights[1]-2) > 0.05 {
		t.Fatalf("bar heights %v not proportional", heights)
	}
}

// extractHeights pulls rect heights in document order (bars first),
// skipping the svg element's own height attribute.
func extractHeights(t *testing.T, svg string) []float64 {
	t.Helper()
	var out []float64
	for _, part := range strings.Split(svg, `height="`)[1:] {
		end := strings.IndexByte(part, '"')
		v, err := strconv.ParseFloat(part[:end], 64)
		if err == nil {
			out = append(out, v)
		}
	}
	if len(out) > 0 {
		out = out[1:]
	}
	return out
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1: 1, 1.2: 2, 3: 5, 7: 10, 12: 20, 95: 100, 230: 250, 3.1e9: 5e9,
	}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
	if niceCeil(0) != 1 || niceCeil(-5) != 1 {
		t.Error("non-positive inputs should map to 1")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		2e9: "2.0G", 1.5e6: "1.5M", 2500: "2.5k", 42: "42", 0.25: "0.25",
	}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestEmptyChart(t *testing.T) {
	if (&BarChart{}).SVG(100, 100) != "" {
		t.Fatal("empty chart should render nothing")
	}
}

// Property: rendering never panics and output is balanced for random
// bar values.
func TestRenderProperty(t *testing.T) {
	f := func(vals []float64) bool {
		groups := make([]BarGroup, 0, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				v = 0
			}
			groups = append(groups, BarGroup{Label: strings.Repeat("g", i%3+1), Values: []float64{v}})
		}
		if len(groups) == 0 {
			return true
		}
		svg := (&BarChart{Series: []string{"s"}, Groups: groups}).SVG(600, 300)
		return strings.Count(svg, "<svg") == 1 && strings.Count(svg, "</svg>") == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
