package whatif

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

func TestExploreSorted(t *testing.T) {
	q := Question{
		Benchmark:    workload.Terasort(10, 0, 0),
		Config:       mrconf.Default(),
		ReduceCounts: []int{5, 19, 76},
		Slowstarts:   []float64{0.05, 0.9},
	}
	preds := Explore(q)
	if len(preds) != 6 {
		t.Fatalf("predictions = %d, want 6", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].PredictedSecs < preds[i-1].PredictedSecs {
			t.Fatal("predictions not sorted by time")
		}
	}
}

func TestRecommendBeatsWorstCandidate(t *testing.T) {
	q := Question{
		Benchmark:    workload.Terasort(20, 0, 0),
		Config:       mrconf.Default(),
		ReduceCounts: []int{1, 37, 300},
		Slowstarts:   []float64{0.05},
	}
	preds := Explore(q)
	best, worst := preds[0], preds[len(preds)-1]
	if best.PredictedSecs >= worst.PredictedSecs {
		t.Fatal("no spread across reducer counts")
	}
	// One reducer for 20 GB serializes the reduce phase; it must not
	// be the recommendation.
	if best.NumReduces == 1 {
		t.Fatalf("recommended 1 reducer for a 20GB sort: %v", best)
	}
}

func TestDefaultCandidates(t *testing.T) {
	q := Question{Benchmark: workload.Terasort(10, 0, 0), Config: mrconf.Default()}
	wd := q.withDefaults()
	if len(wd.ReduceCounts) < 4 {
		t.Fatalf("default reducer ladder too small: %v", wd.ReduceCounts)
	}
	for _, n := range wd.ReduceCounts {
		if n < 1 {
			t.Fatalf("invalid candidate %d", n)
		}
	}
	if len(wd.Slowstarts) == 0 {
		t.Fatal("no default slowstarts")
	}
}

func TestSlowstartMatters(t *testing.T) {
	// For a shuffle-heavy job, launching reducers early (overlap with
	// maps) should beat launching them at 90% map completion.
	b := workload.Terasort(60, 0, 0)
	early := simulate(Question{Benchmark: b, Config: mrconf.Default(), Seed: 42}, b.NumReduces, 0.05)
	late := simulate(Question{Benchmark: b, Config: mrconf.Default(), Seed: 42}, b.NumReduces, 0.95)
	if early >= late {
		t.Fatalf("early slowstart (%.0fs) not faster than late (%.0fs) for shuffle-heavy job", early, late)
	}
}

func TestCalibrateFromRun(t *testing.T) {
	b := workload.Terasort(10, 0, 0)
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
	fs := hdfs.New(c, sim.NewSource(1).Stream("hdfs"))
	var res mapreduce.Result
	mapreduce.Submit(rm, fs, mapreduce.Spec{Benchmark: b, BaseConfig: mrconf.Default()},
		func(r mapreduce.Result) { res = r })
	eng.Run()

	cal := CalibrateFromRun(b, res)
	// Terasort is identity: calibration should stay ~1.0 selectivity.
	sel := cal.Profile.RawMapSelectivity * cal.Profile.CombinerReduction
	if sel < 0.9 || sel > 1.1 {
		t.Fatalf("calibrated map selectivity %v, want ~1", sel)
	}
	if cal.Profile.ReduceSelectivity < 0.9 || cal.Profile.ReduceSelectivity > 1.1 {
		t.Fatalf("calibrated reduce selectivity %v, want ~1", cal.Profile.ReduceSelectivity)
	}
}

func TestDeterministic(t *testing.T) {
	q := Question{
		Benchmark:    workload.Terasort(10, 0, 0),
		Config:       mrconf.Default(),
		ReduceCounts: []int{19},
		Slowstarts:   []float64{0.05},
		Seed:         7,
	}
	a := Explore(q)[0].PredictedSecs
	b := Explore(q)[0].PredictedSecs
	if a != b {
		t.Fatalf("what-if not deterministic: %v vs %v", a, b)
	}
}

func TestRecommendAndString(t *testing.T) {
	p := Recommend(Question{
		Benchmark:    workload.Terasort(6, 0, 0),
		Config:       mrconf.Default(),
		ReduceCounts: []int{11, 23},
		Slowstarts:   []float64{0.05},
	})
	if p.NumReduces != 11 && p.NumReduces != 23 {
		t.Fatalf("recommendation outside candidates: %+v", p)
	}
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
}
