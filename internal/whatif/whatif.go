// Package whatif answers what-if questions about the category-1
// parameters MRONLINE cannot tune online — the number of reducers and
// the reduce slowstart fraction are fixed once a job starts (paper
// §2.2). The paper defers these to simulation tools such as MRPerf
// ("remains a focus of our on-going research"); this package is that
// extension: it replays the job on the calibrated discrete-event
// simulator under candidate settings and recommends the best.
package whatif

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// Question describes the sweep: a benchmark (profile + data volumes),
// the configuration the job will run with, and the candidate values.
// Zero-value candidate slices get sensible defaults.
type Question struct {
	Benchmark workload.Benchmark
	Config    mrconf.Config
	// ReduceCounts are the candidate reducer counts; default: a
	// geometric ladder around the benchmark's current value.
	ReduceCounts []int
	// Slowstarts are candidate slowstart fractions; default:
	// {0.05, 0.3, 0.6, 0.9}.
	Slowstarts []float64
	// Seed drives the simulation.
	Seed uint64
}

// Prediction is one evaluated point of the sweep.
type Prediction struct {
	NumReduces    int
	Slowstart     float64
	PredictedSecs float64
}

func (p Prediction) String() string {
	return fmt.Sprintf("reduces=%d slowstart=%.2f -> %.0fs", p.NumReduces, p.Slowstart, p.PredictedSecs)
}

func (q Question) withDefaults() Question {
	out := q
	if len(out.ReduceCounts) == 0 {
		base := out.Benchmark.NumReduces
		if base < 1 {
			base = 1
		}
		seen := map[int]bool{}
		for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
			n := int(float64(base) * mult)
			if n < 1 {
				n = 1
			}
			if !seen[n] {
				seen[n] = true
				out.ReduceCounts = append(out.ReduceCounts, n)
			}
		}
	}
	if len(out.Slowstarts) == 0 {
		out.Slowstarts = []float64{0.05, 0.3, 0.6, 0.9}
	}
	if out.Seed == 0 {
		out.Seed = 42
	}
	return out
}

// Explore runs the full sweep and returns predictions sorted by
// predicted job time (fastest first).
func Explore(q Question) []Prediction {
	q = q.withDefaults()
	var out []Prediction
	for _, nr := range q.ReduceCounts {
		for _, ss := range q.Slowstarts {
			out = append(out, Prediction{
				NumReduces:    nr,
				Slowstart:     ss,
				PredictedSecs: simulate(q, nr, ss),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PredictedSecs != out[j].PredictedSecs {
			return out[i].PredictedSecs < out[j].PredictedSecs
		}
		if out[i].NumReduces != out[j].NumReduces {
			return out[i].NumReduces < out[j].NumReduces
		}
		return out[i].Slowstart < out[j].Slowstart
	})
	return out
}

// Recommend returns the best point of the sweep.
func Recommend(q Question) Prediction {
	return Explore(q)[0]
}

// simulate runs one what-if configuration on a fresh cluster.
func simulate(q Question, numReduces int, slowstart float64) float64 {
	b := q.Benchmark
	b.NumReduces = numReduces

	eng := sim.NewEngine()
	eng.MaxEvents = 200_000_000
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
	fs := hdfs.New(c, sim.NewSource(q.Seed).Stream("hdfs"))

	duration := -1.0
	mapreduce.Submit(rm, fs, mapreduce.Spec{
		Name:              fmt.Sprintf("whatif-%s-r%d-s%02.0f", b.Name, numReduces, slowstart*100),
		Benchmark:         b,
		BaseConfig:        q.Config,
		SlowstartFraction: slowstart,
	}, func(res mapreduce.Result) {
		duration = res.Duration
		if res.Failed {
			duration = duration * 10 // penalize infeasible settings
		}
	})
	eng.Run()
	if duration < 0 {
		panic(fmt.Sprintf("whatif: simulation of %s did not complete", b.Name))
	}
	return duration
}

// CalibrateFromRun adjusts a benchmark's data-flow profile to match an
// observed run, so what-if analysis of a real job uses measured (not
// assumed) selectivities — the gray-box path: observe once, then ask
// what-if questions offline.
func CalibrateFromRun(b workload.Benchmark, res mapreduce.Result) workload.Benchmark {
	out := b
	c := res.Counters
	if c.MapInputMB > 0 && c.MapOutputMB > 0 {
		// Effective post-combiner selectivity from the run.
		sel := c.MapOutputMB / c.MapInputMB
		if out.Profile.CombinerReduction > 0 {
			out.Profile.RawMapSelectivity = sel / out.Profile.CombinerReduction
		}
		out.ShuffleSizeMB = out.InputSizeMB * sel
	}
	if c.ReduceInputMB > 0 {
		out.Profile.ReduceSelectivity = c.OutputMB / c.ReduceInputMB
		out.OutputSizeMB = out.ShuffleSizeMB * out.Profile.ReduceSelectivity
	}
	return out
}
