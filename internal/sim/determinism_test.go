package sim

import (
	"fmt"
	"testing"
)

// buildSchedule drives one engine through a mixed schedule — immediate
// events, same-timestamp collisions, ticker chains, cancellations, and
// seeded random draws — recording the exact firing order. Two engines
// with the same seed must produce identical logs, including the
// same-timestamp tie-breaking by insertion sequence (seq).
func buildSchedule(seed uint64) []string {
	eng := NewEngine()
	src := NewSource(seed)
	rng := src.Stream("determinism")
	var log []string
	record := func(tag string) {
		log = append(log, fmt.Sprintf("%.9f:%s", eng.Now(), tag))
	}

	// Three events at the exact same instant: firing order must be the
	// scheduling order (seq tie-break), not heap-internal order.
	eng.At(1.0, func() { record("tie-a") })
	eng.At(1.0, func() { record("tie-b") })
	eng.At(1.0, func() { record("tie-c") })

	// Events scheduled from inside callbacks, at times drawn from the
	// seeded stream.
	eng.At(0.5, func() {
		record("spawn")
		for i := 0; i < 5; i++ {
			i := i
			d := rng.Float64() * 2
			eng.After(d, func() { record(fmt.Sprintf("rand-%d", i)) })
		}
	})

	// Same-time events created in different callback contexts.
	eng.At(2.0, func() {
		record("ctx-1")
		eng.At(3.0, func() { record("nested-1") })
	})
	eng.At(2.0, func() {
		record("ctx-2")
		eng.At(3.0, func() { record("nested-2") })
	})

	// A ticker that cancels a pending event halfway through.
	victim := eng.At(2.5, func() { record("victim") })
	ticks := 0
	eng.Tick(0.7, func() bool {
		ticks++
		record(fmt.Sprintf("tick-%d", ticks))
		if ticks == 2 {
			eng.Cancel(victim)
		}
		return ticks < 4
	})

	eng.Run()
	return log
}

func TestIdenticalSeedsIdenticalFiringOrder(t *testing.T) {
	a := buildSchedule(42)
	b := buildSchedule(42)
	if len(a) == 0 {
		t.Fatal("schedule produced no events")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing order diverged at event %d: %q vs %q\nfull A: %v\nfull B: %v",
				i, a[i], b[i], a, b)
		}
	}

	// The canceled event must not have fired, and the same-timestamp
	// trio must appear in scheduling order.
	var tieOrder []string
	for _, e := range a {
		switch e {
		case "2.500000000:victim":
			t.Fatal("canceled event fired")
		case "1.000000000:tie-a", "1.000000000:tie-b", "1.000000000:tie-c":
			tieOrder = append(tieOrder, e)
		}
	}
	want := []string{"1.000000000:tie-a", "1.000000000:tie-b", "1.000000000:tie-c"}
	if len(tieOrder) != 3 || tieOrder[0] != want[0] || tieOrder[1] != want[1] || tieOrder[2] != want[2] {
		t.Fatalf("same-timestamp tie-break order wrong: %v, want %v", tieOrder, want)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	// Sanity check that the schedule actually depends on the seed (the
	// rand-* events move); otherwise the identical-order test is vacuous.
	a := buildSchedule(1)
	b := buildSchedule(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("schedules with different seeds were identical; determinism test is vacuous")
	}
}
