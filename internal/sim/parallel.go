package sim

// Parallel window execution: an opt-in mode (off by default; see
// EnableParallelWindows) in which the independent shards of one
// conservative time-window execute concurrently on a bounded worker
// pool.
//
// The mode trades the serial engine's exact global (time, seq) firing
// order for within-window parallelism while staying fully
// deterministic:
//
//   - A window is [T, T+L): T the earliest pending event anywhere, L
//     the configured lookahead. Every shard whose earliest event falls
//     inside the window drains its own queue, single-threaded, in
//     local (time, seq) order — the MODEL.md §12 invariant holds
//     per shard, which is why the no-goroutine-in-sim rule carries
//     over unchanged for model code.
//   - A shard's callbacks may only touch that shard's state. The only
//     cross-shard channel is Send, whose delay must be ≥ L, so no send
//     can affect the window that issued it — that is what makes the
//     window conservative.
//   - Sends are buffered per shard and merged at the window barrier in
//     (time, source shard ID, send order) order; sequence numbers
//     within a window are drawn from per-shard interleaved lanes
//     (base + local·K + idx). Both rules are functions of the schedule
//     alone, never of goroutine timing, so same-seed parallel runs are
//     bit-identical to each other at any worker count (workers=1 runs
//     the identical windowed algorithm inline).
//
// Relative to serial mode, only the interleave of *exactly tied*
// (same-timestamp) events on different shards, and of tied cross-shard
// sends, can differ — for shard-isolated models the per-shard firing
// order (and thus all shard state) is identical. The figure pipeline
// keeps using serial mode, which remains the bit-exact reference.
//
// The pool internals below are the one sanctioned use of goroutines
// inside a simulated package; each primitive carries an audited
// no-goroutine-in-sim exemption. Model code gets no such exemption:
// the invariant it must honor is unchanged.

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals (MODEL.md "Sharded event engine"): sync is confined to the window barrier, never visible to model code
	"sync"
)

// pendingSend is one buffered cross-shard Send awaiting the window
// barrier.
type pendingSend struct {
	dst   *Shard
	at    float64
	order uint64 // position in the source shard's outbox
	fn    func()
}

type parallelConfig struct {
	workers   int
	lookahead float64
	// active is true while a window is executing; scheduling calls use
	// it to reject cross-shard At/Reschedule/Cancel that the serial
	// engine would have tolerated.
	active bool
	// ready/sends are coordinator scratch, reused across windows.
	ready []*Shard
	sends []pendingSend
}

// EnableParallelWindows switches the engine to parallel-window
// execution: within each conservative time-window of length lookahead,
// shards with pending events run concurrently on a pool of at most
// workers goroutines (workers <= 1 runs the same windowed algorithm
// inline, which is bit-identical to any other worker count).
//
// Requirements: lookahead must be positive, and model code must be
// shard-isolated — a callback scheduled on a shard touches only that
// shard's state and reaches other shards exclusively through Send with
// delay >= lookahead. The engine enforces the scheduling-API part
// (cross-shard At/Reschedule/Cancel and short sends panic); the
// state-isolation part is the model's contract, policed statically by
// mrlint's cross-shard-event rule and dynamically by running the test
// suite under -race.
func (e *Engine) EnableParallelWindows(workers int, lookahead float64) {
	if lookahead <= 0 || math.IsNaN(lookahead) || math.IsInf(lookahead, 0) {
		panic(fmt.Sprintf("sim: parallel windows need a positive finite lookahead, got %v", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	e.par = &parallelConfig{workers: workers, lookahead: lookahead}
}

// runParallel is RunUntil in parallel-window mode.
func (e *Engine) runParallel(t float64) {
	e.stopped = false
	p := e.par
	for len(e.order) > 0 && !e.stopped {
		T := e.order[0].minAt
		if T > t {
			break
		}
		end := T + p.lookahead

		// Ready set: every shard whose earliest event is inside the
		// window, in shard-ID order (deterministic, independent of
		// index-heap internals).
		ready := p.ready[:0]
		for _, s := range e.shards {
			if s.pos >= 0 && s.minAt < end {
				ready = append(ready, s)
			}
		}
		p.ready = ready

		K := uint64(len(ready))
		base := e.seq
		e.now = T
		for i, s := range ready {
			s.inWindow = true
			s.now = T
			s.windowEnd = end
			s.windowBase = base
			s.windowK = K
			s.windowIdx = uint64(i)
			s.localCount = 0
			s.fired = 0
			s.stopReq = false
			s.panicked = nil
		}

		p.active = true
		runPool(ready, p.workers, t)
		p.active = false

		// Barrier: fold per-shard results back into the engine,
		// deterministically (ready is in shard-ID order).
		var maxLocal uint64
		maxNow := T
		for _, s := range ready {
			s.inWindow = false
			if s.localCount > maxLocal {
				maxLocal = s.localCount
			}
			if s.now > maxNow {
				maxNow = s.now
			}
			e.processed += s.fired
			if s.stopReq {
				e.stopped = true
			}
		}
		e.seq = base + maxLocal*K
		e.now = maxNow
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway model?)", e.MaxEvents))
		}
		for _, s := range ready {
			if s.panicked != nil {
				panic(s.panicked)
			}
		}

		// Merge buffered cross-shard sends in (time, source shard,
		// send order) order, assigning post-window sequence numbers.
		sends := p.sends[:0]
		for _, s := range ready {
			sends = append(sends, s.outbox...)
			s.outbox = s.outbox[:0]
		}
		p.sends = sends
		sort.SliceStable(sends, func(i, j int) bool {
			return sends[i].at < sends[j].at
		})
		for i := range sends {
			ps := &sends[i]
			dst := ps.dst
			ev := dst.take(ps.at, e.seq, ps.fn)
			e.seq++
			heap.Push(&dst.pq, ev)
			ps.dst, ps.fn = nil, nil
		}

		// Re-sync every shard whose queue the window touched.
		for _, s := range e.shards {
			e.syncShard(s)
		}
	}
	if !math.IsInf(t, 1) && t > e.now && !e.stopped {
		e.now = t
	}
}

// runPool executes each ready shard's window drain, on a bounded pool
// when more than one worker is configured. Shards are independent
// within a window, so assignment order does not affect results; with
// workers <= 1 the drains run inline in ready order.
func runPool(ready []*Shard, workers int, t float64) {
	if workers <= 1 || len(ready) == 1 {
		for _, s := range ready {
			s.drainWindow(t)
		}
		return
	}
	if workers > len(ready) {
		workers = len(ready)
	}
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: the barrier WaitGroup is invisible to model code
	var wg sync.WaitGroup
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: work handoff channel, drained before the barrier releases
	work := make(chan *Shard, len(ready))
	for _, s := range ready {
		//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: work handoff channel, drained before the barrier releases
		work <- s
	}
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: work handoff channel, drained before the barrier releases
	close(work)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: bounded worker pool, joined at the window barrier before any shared state is read
		go func() {
			defer wg.Done()
			//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: work handoff channel, drained before the barrier releases
			for s := range work {
				s.drainWindow(t)
			}
		}()
	}
	wg.Wait()
}

// drainWindow fires this shard's events with time inside [now,
// windowEnd) and <= t, in local (time, seq) order. It runs on a pool
// worker and touches only shard-local state; a callback panic is
// captured and re-raised deterministically at the barrier.
func (s *Shard) drainWindow(t float64) {
	defer func() {
		if r := recover(); r != nil {
			s.panicked = r
		}
	}()
	for len(s.pq) > 0 {
		ev := s.pq[0]
		if ev.at >= s.windowEnd || ev.at > t {
			break
		}
		heap.Pop(&s.pq)
		s.now = ev.at
		s.fired++
		fn := ev.fn
		ev.fn = nil
		fn()
		if len(s.free) < maxFreeEvents {
			s.free = append(s.free, ev)
		}
		if s.stopReq {
			break
		}
	}
}

// StopShard requests an engine stop from inside a parallel window
// (Engine.Stop would race). The stop takes effect at the window
// barrier. Outside a window it is equivalent to Engine.Stop.
func (s *Shard) StopShard() {
	if s.inWindow {
		s.stopReq = true
		return
	}
	s.eng.Stop()
}
