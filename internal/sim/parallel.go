package sim

// Parallel window execution: an opt-in mode (off by default; see
// EnableParallelWindows) in which the independent shards of one
// conservative time-window execute concurrently on a bounded worker
// pool.
//
// The mode trades the serial engine's exact global (time, seq) firing
// order for within-window parallelism while staying fully
// deterministic:
//
//   - A window is [T, T+L): T the earliest pending event anywhere, L
//     the configured lookahead. Every shard whose earliest event falls
//     inside the window drains its own queue, single-threaded, in
//     local (time, seq) order — the MODEL.md §12 invariant holds
//     per shard, which is why the no-goroutine-in-sim rule carries
//     over unchanged for model code.
//   - A shard's callbacks may only touch that shard's state. The only
//     cross-shard channel is Send, whose delay must be ≥ L, so no send
//     can affect the window that issued it — that is what makes the
//     window conservative.
//   - Sends are buffered per shard and merged at the window barrier in
//     (time, source shard ID, send order) order; sequence numbers
//     within a window are drawn from per-shard interleaved lanes
//     (base + local·K + idx). Both rules are functions of the schedule
//     alone, never of goroutine timing, so same-seed parallel runs are
//     bit-identical to each other at any worker count (workers=1 runs
//     the identical windowed algorithm inline).
//   - Adaptive lookahead: when the window would contain a single shard
//     (no other shard has an event before T+L), the engine widens the
//     window to the exact safe bound — the next competitor's earliest
//     key — and drains the shard with plain serial semantics. The
//     widening decision depends only on the schedule, so it too is
//     identical at every worker count. Widening a window that holds
//     two or more shards is never legal: model code only promises
//     Send delays ≥ the configured L.
//
// Relative to serial mode, only the interleave of *exactly tied*
// (same-timestamp) events on different shards, and of tied cross-shard
// sends, can differ — for shard-isolated models the per-shard firing
// order (and thus all shard state) is identical. The figure pipeline
// keeps using serial mode, which remains the bit-exact reference.
//
// The pool internals below are the one sanctioned use of goroutines
// inside a simulated package; each primitive carries an audited
// no-goroutine-in-sim exemption. Model code gets no such exemption:
// the invariant it must honor is unchanged.

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals (MODEL.md "Sharded event engine"): sync is confined to the window barrier, never visible to model code
	"sync/atomic"
)

// pendingSend is one buffered cross-shard Send awaiting the window
// barrier.
type pendingSend struct {
	dst   *Shard
	at    float64
	order uint64 // position in the source shard's outbox
	fn    func()
}

type parallelConfig struct {
	workers   int
	lookahead float64
	// active is true while a window (or a solo drain) is executing;
	// scheduling calls use it to reject cross-shard At/Reschedule that
	// the serial engine would have tolerated.
	active bool
	// solo is the shard being drained by the adaptive single-shard fast
	// path; its own callbacks schedule with serial semantics while every
	// other shard stays locked behind the Send-only contract.
	solo *Shard
	// ready/outs are coordinator scratch, reused across windows.
	ready []*Shard
	outs  []*Shard
	// pool is the persistent worker pool, created lazily by the first
	// multi-shard window of a run and parked between windows; RunUntil
	// tears it down on exit.
	pool *windowPool
}

// EnableParallelWindows switches the engine to parallel-window
// execution: within each conservative time-window of length lookahead,
// shards with pending events run concurrently on a pool of at most
// workers goroutines (workers <= 1 runs the same windowed algorithm
// inline, which is bit-identical to any other worker count).
//
// Requirements: lookahead must be positive, and model code must be
// shard-isolated — a callback scheduled on a shard touches only that
// shard's state and reaches other shards exclusively through Send with
// delay >= lookahead. The engine enforces the scheduling-API part
// (cross-shard At/Reschedule and short sends panic); the
// state-isolation part is the model's contract, policed statically by
// mrlint's cross-shard-event rule and dynamically by running the test
// suite under -race.
func (e *Engine) EnableParallelWindows(workers int, lookahead float64) {
	if lookahead <= 0 || math.IsNaN(lookahead) || math.IsInf(lookahead, 0) {
		panic(fmt.Sprintf("sim: parallel windows need a positive finite lookahead, got %v", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	e.par = &parallelConfig{workers: workers, lookahead: lookahead}
}

// runParallel is RunUntil in parallel-window mode.
func (e *Engine) runParallel(t float64) {
	e.stopped = false
	p := e.par
	defer func() {
		if p.pool != nil {
			p.pool.stop()
			p.pool = nil
		}
	}()
	for len(e.order) > 0 && !e.stopped {
		s0 := e.order[0]
		T := s0.minAt
		if T > t {
			break
		}
		end := T + p.lookahead

		// Adaptive lookahead: if no other shard has an event before the
		// window end, the window would hold s0 alone. Drain it with
		// serial semantics up to the next competitor's key instead —
		// that both skips the window machinery and widens the effective
		// lookahead to the exact safe bound. The condition is a function
		// of the schedule only, so every worker count takes the same
		// path.
		if at2, seq2 := e.secondBest(); at2 >= end {
			p.active = true
			p.solo = s0
			e.drainSolo(s0, t, at2, seq2)
			p.solo = nil
			p.active = false
			continue
		}

		// Ready set: every shard whose earliest event is inside the
		// window, in shard-ID order (deterministic, independent of
		// index-heap internals).
		ready := p.ready[:0]
		for _, s := range e.shards {
			if s.pos >= 0 && s.minAt < end {
				ready = append(ready, s)
			}
		}
		p.ready = ready

		K := uint64(len(ready))
		base := e.seq
		e.now = T
		for i, s := range ready {
			s.inWindow = true
			s.now = T
			s.windowEnd = end
			s.windowBase = base
			s.windowK = K
			s.windowIdx = uint64(i)
			s.localCount = 0
			s.fired = 0
			s.stopReq = false
			s.panicked = nil
		}

		p.active = true
		if p.workers <= 1 || len(ready) == 1 {
			for _, s := range ready {
				s.drainWindow(t)
			}
		} else {
			if p.pool == nil {
				p.pool = newWindowPool(p.workers)
			}
			p.pool.run(ready, t)
		}
		p.active = false

		// Barrier: fold per-shard results back into the engine,
		// deterministically (ready is in shard-ID order).
		var maxLocal uint64
		maxNow := T
		for _, s := range ready {
			s.inWindow = false
			if s.localCount > maxLocal {
				maxLocal = s.localCount
			}
			if s.now > maxNow {
				maxNow = s.now
			}
			e.processed += s.fired
			if s.stopReq {
				e.stopped = true
			}
		}
		e.seq = base + maxLocal*K
		e.now = maxNow
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway model?)", e.MaxEvents))
		}
		for _, s := range ready {
			if s.panicked != nil {
				panic(s.panicked)
			}
		}

		// Merge buffered cross-shard sends in (time, source shard, send
		// order) order, assigning post-window sequence numbers. Each
		// outbox left its window already sorted by (time, order) — see
		// drainWindow — so a k-way merge over the non-empty outboxes in
		// ready order reproduces the global stable sort exactly, in one
		// linear pass.
		outs := p.outs[:0]
		for _, s := range ready {
			if len(s.outbox) > 0 {
				s.obCur = 0
				outs = append(outs, s)
			}
		}
		p.outs = outs
		for len(outs) > 0 {
			best := 0
			bestAt := outs[0].outbox[outs[0].obCur].at
			for i := 1; i < len(outs); i++ {
				if at := outs[i].outbox[outs[i].obCur].at; at < bestAt {
					best, bestAt = i, at
				}
			}
			src := outs[best]
			ps := &src.outbox[src.obCur]
			dst := ps.dst
			ev := dst.take(ps.at, e.seq, ps.fn)
			e.seq++
			heap.Push(&dst.pq, ev)
			ps.dst, ps.fn = nil, nil
			src.obCur++
			if src.obCur == len(src.outbox) {
				src.outbox = src.outbox[:0]
				outs = append(outs[:best], outs[best+1:]...)
			}
		}

		// Re-sync every shard whose queue the window touched.
		for _, s := range e.shards {
			e.syncShard(s)
		}
	}
	if !math.IsInf(t, 1) && t > e.now && !e.stopped {
		e.now = t
	}
}

// drainSolo is the serial engine's drain loop applied to the one shard
// holding every event of the widened window [T, boundAt]: the exact
// RunUntil inner loop, with the drain boundary seeded from the global
// second-best key (scheduling calls lower it, exactly as in serial
// mode). Because p.active is set without s.inWindow, the draining
// shard's own callbacks get full serial scheduling semantics while any
// other shard still rejects cross-shard At.
func (e *Engine) drainSolo(s *Shard, t, boundAt float64, boundSeq uint64) {
	e.boundAt, e.boundSeq = boundAt, boundSeq
	e.drain = s
	for len(s.pq) > 0 {
		ev := s.pq[0]
		if ev.at > t {
			break
		}
		if ev.at > e.boundAt || (ev.at == e.boundAt && ev.seq > e.boundSeq) {
			break
		}
		heap.Pop(&s.pq)
		e.now = ev.at
		e.processed++
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway model?)", e.MaxEvents))
		}
		fn := ev.fn
		ev.fn = nil // release the closure before running it
		fn()
		if len(s.free) < maxFreeEvents {
			s.free = append(s.free, ev)
		}
		if e.stopped {
			break
		}
	}
	e.drain = nil
	e.syncShard(s)
}

// windowPool is the persistent worker pool of one parallel RunUntil:
// workers goroutines parked on a wake channel across windows, pulling
// ready shards off a shared atomic cursor. Creating goroutines,
// WaitGroups, and channels per window costs more than many windows'
// worth of useful work (a day-long serving run crosses tens of
// thousands of windows), so the pool is built once per run and only
// woken at each window.
//
// Memory model: the coordinator writes ready/t before the wake sends,
// and each worker's shard mutations happen before its done send — both
// channel operations are synchronization edges, so neither side ever
// observes a stale view. Workers share nothing but the cursor.
type windowPool struct {
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: wake/done are the window barrier, invisible to model code
	wake chan struct{}
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: wake/done are the window barrier, invisible to model code
	done chan struct{}

	ready []*Shard
	t     float64
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: work-stealing cursor over the ready set, reset at each barrier
	next atomic.Int64
}

func newWindowPool(workers int) *windowPool {
	wp := &windowPool{
		//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: wake/done are the window barrier, invisible to model code
		wake: make(chan struct{}, workers),
		//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: wake/done are the window barrier, invisible to model code
		done: make(chan struct{}, workers),
	}
	for i := 0; i < workers; i++ {
		//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: persistent bounded pool, parked between windows, joined at every barrier before shared state is read
		go wp.worker()
	}
	return wp
}

// worker parks on the wake channel between windows; each wake token is
// one window's worth of work, ended by a done token once the cursor
// runs off the ready set.
func (wp *windowPool) worker() {
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: park/wake loop, one iteration per window
	for range wp.wake {
		for {
			//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: work-stealing cursor over the ready set
			i := wp.next.Add(1) - 1
			if int(i) >= len(wp.ready) {
				break
			}
			wp.ready[i].drainWindow(wp.t)
		}
		//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: window barrier completion token
		wp.done <- struct{}{}
	}
}

// run executes one window on the parked pool: publish the ready set,
// wake min(workers, len(ready)) workers, await the same number of
// completion tokens.
func (wp *windowPool) run(ready []*Shard, t float64) {
	wp.ready, wp.t = ready, t
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: work-stealing cursor over the ready set
	wp.next.Store(0)
	k := cap(wp.wake)
	if k > len(ready) {
		k = len(ready)
	}
	for i := 0; i < k; i++ {
		//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: window wake token
		wp.wake <- struct{}{}
	}
	for i := 0; i < k; i++ {
		//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: window barrier completion token
		<-wp.done
	}
	wp.ready = nil
}

// stop retires the pool's goroutines; called once per RunUntil on the
// way out, after the last barrier (so no worker holds work).
func (wp *windowPool) stop() {
	//mrlint:ignore no-goroutine-in-sim audited parallel-window pool internals: pool teardown on RunUntil exit
	close(wp.wake)
}

// drainWindow fires this shard's events with time inside [now,
// windowEnd) and <= t, in local (time, seq) order. It runs on a pool
// worker and touches only shard-local state; a callback panic is
// captured and re-raised deterministically at the barrier. On the way
// out it sorts its outbox by (time, send order) — per-shard work done
// on the worker, which is what lets the barrier replace a global
// stable sort with a linear k-way merge.
func (s *Shard) drainWindow(t float64) {
	defer func() {
		if r := recover(); r != nil {
			s.panicked = r
		}
	}()
	for len(s.pq) > 0 {
		ev := s.pq[0]
		if ev.at >= s.windowEnd || ev.at > t {
			break
		}
		heap.Pop(&s.pq)
		s.now = ev.at
		s.fired++
		fn := ev.fn
		ev.fn = nil
		fn()
		if len(s.free) < maxFreeEvents {
			s.free = append(s.free, ev)
		}
		if s.stopReq {
			break
		}
	}
	if len(s.outbox) > 1 {
		ob := s.outbox
		sort.Slice(ob, func(i, j int) bool {
			if ob[i].at != ob[j].at {
				return ob[i].at < ob[j].at
			}
			return ob[i].order < ob[j].order
		})
	}
}

// StopShard requests an engine stop from inside a parallel window
// (Engine.Stop would race). The stop takes effect at the window
// barrier. Outside a window it is equivalent to Engine.Stop.
func (s *Shard) StopShard() {
	if s.inWindow {
		s.stopReq = true
		return
	}
	s.eng.Stop()
}
