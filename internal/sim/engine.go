// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated time is in seconds, represented as float64. Events
// scheduled for the same instant fire in the order they were scheduled,
// which makes every simulation bit-for-bit reproducible given the same
// inputs and seed.
//
// # Sharded event queues
//
// The engine is sharded: events live in per-shard priority queues (one
// shard per rack or node-group, plus the always-present system shard
// for cross-cutting actors — the RM, the tuner, the network fabric).
// A top-level index heap orders the non-empty shards by their earliest
// (time, seq) key, and the run loop drains one shard at a time inside a
// conservative time-window: the window boundary is the earliest pending
// event of any *other* shard, so every fired event is provably the
// global minimum and the firing order is exactly the total (time, seq)
// order of a single global heap. Shard layout is therefore a pure
// performance knob — same-seed runs are bit-identical at any shard
// count — while each heap stays small (O(log k) on k ≪ N pending
// events) and idle shards cost nothing (they are simply absent from
// the index heap).
//
// Optionally (off by default, see EnableParallelWindows) independent
// shards within a window execute on a bounded worker pool with a
// deterministic cross-shard merge; see parallel.go and docs/MODEL.md
// ("Sharded event engine & conservative time-windows").
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// ShardID identifies one shard of the engine. The system shard is
// always ID 0.
type ShardID int32

// SystemShardID is the ID of the shard every engine starts with; it
// hosts cross-cutting actors (RM, tuner, fabric recompute, drivers).
const SystemShardID ShardID = 0

// Event is a scheduled callback. It can be canceled before it fires.
//
// Ownership: once an event has fired, the engine may recycle the Event
// value for a later At/After call (per-shard free lists keep the hot
// schedule→fire path allocation-free). Callers must therefore drop
// their reference to an event after it fires and must not Cancel it; a
// canceled-but-never-fired event is never recycled, so canceling it
// again remains a safe no-op.
//
// Recycling contract, sharded: an Event is owned by the shard it was
// scheduled on for its entire lifetime. It is recycled into that
// shard's free list only, and can never be reused by — or migrate to —
// another shard (TestRecycledEventNeverMigratesShards pins this).
// Reschedule keeps the event on its owning shard, and scheduling
// methods of a different Shard refuse the event outright.
type Event struct {
	at       float64
	seq      uint64
	fn       func()
	shard    *Shard
	index    int // position in the owning shard's heap, -1 when not queued
	canceled bool
}

// At reports the simulation time this event is scheduled for.
func (e *Event) At() float64 { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Shard returns the shard that owns this event.
func (e *Event) Shard() *Shard { return e.shard }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// shardHeap orders the non-empty shards by their cached earliest
// (time, seq) key; the root is the shard owning the global-minimum
// event. Idle (empty) shards are not in the heap at all.
type shardHeap []*Shard

func (h shardHeap) Len() int { return len(h) }

func (h shardHeap) Less(i, j int) bool {
	if h[i].minAt != h[j].minAt {
		return h[i].minAt < h[j].minAt
	}
	return h[i].minSeq < h[j].minSeq
}

func (h shardHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}

func (h *shardHeap) Push(x any) {
	s := x.(*Shard)
	s.pos = len(*h)
	*h = append(*h, s)
}

func (h *shardHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.pos = -1
	*h = old[:n-1]
	return s
}

// Engine is a sharded, deterministic discrete-event simulator. In the
// default serial mode it is not safe for concurrent use; all model
// code runs inside event callbacks on the goroutine that calls Run,
// strictly in global (time, seq) order regardless of shard layout.
type Engine struct {
	now     float64
	seq     uint64
	stopped bool
	// processed counts events that have fired, useful for tests and
	// runaway detection.
	processed uint64
	// MaxEvents aborts Run with a panic when the event count exceeds it.
	// Zero means no limit. In parallel-window mode the limit is checked
	// at window barriers rather than per event.
	MaxEvents uint64

	shards []*Shard
	order  shardHeap

	// drain is the shard currently being drained by the serial run
	// loop; its index-heap position is synced lazily, when the drain
	// ends, instead of on every pop.
	drain *Shard
	// boundAt/boundSeq is the drain window boundary: the earliest
	// pending key on any shard other than drain. Scheduling calls that
	// create an earlier key on another shard lower it; staleness is
	// only ever conservative (too low), never unsafe.
	boundAt  float64
	boundSeq uint64

	par *parallelConfig
}

// maxFreeEvents bounds each shard's free list so that a burst of events
// does not pin memory for the rest of the run.
const maxFreeEvents = 1 << 14

// NewEngine returns an engine with the clock at zero and a single
// shard (the system shard).
func NewEngine() *Engine {
	e := &Engine{}
	e.newShard("system")
	return e
}

func (e *Engine) newShard(name string) *Shard {
	s := &Shard{
		eng:  e,
		id:   ShardID(len(e.shards)),
		name: name,
		pos:  -1,
	}
	e.shards = append(e.shards, s)
	return s
}

// NewShard adds a shard to the engine and returns its handle. Shards
// can be added at any time; an idle shard costs nothing until its
// first event is scheduled. Shard layout never changes results in
// serial mode — it only changes which heap holds which event.
func (e *Engine) NewShard(name string) *Shard {
	if e.par != nil {
		panic("sim: NewShard after EnableParallelWindows")
	}
	return e.newShard(name)
}

// SystemShard returns the always-present shard 0, home of
// cross-cutting actors.
func (e *Engine) SystemShard() *Shard { return e.shards[0] }

// ShardCount returns the number of shards (always ≥ 1).
func (e *Engine) ShardCount() int { return len(e.shards) }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn on the system shard at absolute time t. Scheduling
// in the past panics, since it indicates a broken model rather than a
// recoverable condition.
func (e *Engine) At(t float64, fn func()) *Event { return e.shards[0].At(t, fn) }

// After schedules fn on the system shard d seconds from now. Negative
// d panics.
func (e *Engine) After(d float64, fn func()) *Event { return e.shards[0].After(d, fn) }

// Reschedule moves a still-queued event to absolute time t, keeping
// its callback and its owning shard. It is exactly equivalent to
// Cancel(ev) followed by At(t, fn) with the event's own fn — including
// consuming one sequence number, so same-instant ordering against
// other events is unchanged — but reuses the Event instead of
// abandoning it (canceled events are never recycled; see Cancel). The
// event must still be queued: rescheduling a fired or canceled event
// panics.
func (e *Engine) Reschedule(ev *Event, t float64) *Event {
	if ev == nil || ev.shard == nil {
		panic("sim: Reschedule of a fired or canceled event")
	}
	return ev.shard.Reschedule(ev, t)
}

// Cancel removes ev from its shard's queue. Canceling an
// already-fired or already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	ev.shard.Cancel(ev)
}

// Tick schedules fn on the system shard every interval seconds,
// starting one interval from now. fn returning false stops the ticker.
func (e *Engine) Tick(interval float64, fn func() bool) *Ticker {
	return e.shards[0].Tick(interval, fn)
}

// Stop makes Run return after the current event completes (in
// parallel-window mode, after the current window completes).
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued (not yet fired) events across
// all shards.
func (e *Engine) Pending() int {
	n := 0
	for _, s := range e.shards {
		n += len(s.pq)
	}
	return n
}

// Run processes events until every queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(math.Inf(1))
}

// RunUntil processes events with time <= t, then sets the clock to t if
// the queues drained earlier than t (and t is finite).
func (e *Engine) RunUntil(t float64) {
	if e.par != nil {
		e.runParallel(t)
		return
	}
	e.stopped = false
	for len(e.order) > 0 && !e.stopped {
		s := e.order[0]
		if s.minAt > t {
			break
		}
		// Conservative window: drain s while its head stays at or
		// below the earliest pending key of every other shard. The
		// boundary starts exact (second-best of the index heap) and is
		// lowered eagerly by any scheduling call that beats it, so the
		// popped event is always the global (time, seq) minimum.
		e.boundAt, e.boundSeq = e.secondBest()
		e.drain = s
		for len(s.pq) > 0 {
			ev := s.pq[0]
			if ev.at > t {
				break
			}
			if ev.at > e.boundAt || (ev.at == e.boundAt && ev.seq > e.boundSeq) {
				break
			}
			heap.Pop(&s.pq)
			e.now = ev.at
			e.processed++
			if e.MaxEvents > 0 && e.processed > e.MaxEvents {
				panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway model?)", e.MaxEvents))
			}
			fn := ev.fn
			ev.fn = nil // release the closure before running it
			fn()
			// The event has fired and its closure is detached; recycle
			// it into its owning shard (see the Event ownership
			// contract — recycled events never migrate shards).
			if len(s.free) < maxFreeEvents {
				s.free = append(s.free, ev)
			}
			if e.stopped {
				break
			}
		}
		e.drain = nil
		e.syncShard(s)
	}
	if !math.IsInf(t, 1) && t > e.now && !e.stopped {
		e.now = t
	}
}

// secondBest returns the earliest pending (time, seq) key among all
// shards except the index-heap root — one of the root's children, by
// the heap property — or +inf when the root is the only live shard.
func (e *Engine) secondBest() (float64, uint64) {
	at, seq := math.Inf(1), ^uint64(0)
	for i := 1; i <= 2 && i < len(e.order); i++ {
		s := e.order[i]
		if s.minAt < at || (s.minAt == at && s.minSeq < seq) {
			at, seq = s.minAt, s.minSeq
		}
	}
	return at, seq
}

// syncShard refreshes s's cached minimum key and its index-heap
// membership after a queue mutation, and lowers the active drain
// boundary when s now holds an earlier event than the boundary. The
// shard being drained is skipped — the drain loop reads its queue head
// directly and its heap position is restored when the drain ends.
func (e *Engine) syncShard(s *Shard) {
	if s == e.drain {
		return
	}
	if len(s.pq) == 0 {
		if s.pos >= 0 {
			heap.Remove(&e.order, s.pos)
		}
		return
	}
	h := s.pq[0]
	if s.pos < 0 {
		s.minAt, s.minSeq = h.at, h.seq
		heap.Push(&e.order, s) // lazy wakeup: idle shard joins the index
	} else if h.at != s.minAt || h.seq != s.minSeq {
		s.minAt, s.minSeq = h.at, h.seq
		heap.Fix(&e.order, s.pos)
	} else {
		return
	}
	if e.drain != nil && (s.minAt < e.boundAt || (s.minAt == e.boundAt && s.minSeq < e.boundSeq)) {
		e.boundAt, e.boundSeq = s.minAt, s.minSeq
	}
}

// Ticker invokes fn every interval seconds until Stop is called or fn
// returns false. It exists because a periodic event chain keeps the
// event queue non-empty: components must stop their tickers when the
// observed work completes or Run never returns.
type Ticker struct {
	shard    *Shard
	interval float64
	fn       func() bool
	stopped  bool
}

func (t *Ticker) schedule() {
	t.shard.After(t.interval, func() {
		if t.stopped {
			return
		}
		if !t.fn() {
			t.stopped = true
			return
		}
		t.schedule()
	})
}

// Stop halts the ticker (idempotent).
func (t *Ticker) Stop() { t.stopped = true }
