// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated time is in seconds, represented as float64. Events
// scheduled for the same instant fire in the order they were scheduled,
// which makes every simulation bit-for-bit reproducible given the same
// inputs and seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. It can be canceled before it fires.
//
// Ownership: once an event has fired, the engine may recycle the Event
// value for a later At/After call (a free list keeps the hot
// schedule→fire path allocation-free). Callers must therefore drop
// their reference to an event after it fires and must not Cancel it; a
// canceled-but-never-fired event is never recycled, so canceling it
// again remains a safe no-op.
type Event struct {
	at       float64
	seq      uint64
	fn       func()
	index    int // position in the heap, -1 when not queued
	canceled bool
}

// At reports the simulation time this event is scheduled for.
func (e *Event) At() float64 { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all model code runs inside event callbacks on the
// goroutine that calls Run.
type Engine struct {
	now     float64
	seq     uint64
	pq      eventHeap
	stopped bool
	// processed counts events that have fired, useful for tests and
	// runaway detection.
	processed uint64
	// MaxEvents aborts Run with a panic when the event count exceeds it.
	// Zero means no limit.
	MaxEvents uint64
	// free holds fired events available for reuse, bounding allocation
	// churn on the schedule→fire hot path.
	free []*Event
}

// maxFreeEvents bounds the free list so that a burst of events does not
// pin memory for the rest of the run.
const maxFreeEvents = 1 << 14

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics, since it indicates a broken model rather than a recoverable
// condition.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %.9f before now %.9f", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.canceled = t, e.seq, fn, false
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Reschedule moves a still-queued event to absolute time t, keeping
// its callback. It is exactly equivalent to Cancel(ev) followed by
// At(t, fn) with the event's own fn — including consuming one
// sequence number, so same-instant ordering against other events is
// unchanged — but reuses the Event instead of abandoning it (canceled
// events are never recycled; see Cancel). The event must still be
// queued: rescheduling a fired or canceled event panics.
func (e *Engine) Reschedule(ev *Event, t float64) *Event {
	if ev == nil || ev.canceled || ev.index < 0 {
		panic("sim: Reschedule of a fired or canceled event")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event at %.9f before now %.9f", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: rescheduling event at non-finite time %v", t))
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	heap.Fix(&e.pq, ev.index)
	return ev
}

// Cancel removes ev from the queue. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.pq, ev.index)
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued (not yet fired) events.
func (e *Engine) Pending() int { return len(e.pq) }

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(math.Inf(1))
}

// RunUntil processes events with time <= t, then sets the clock to t if
// the queue drained earlier than t (and t is finite).
func (e *Engine) RunUntil(t float64) {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		next := e.pq[0]
		if next.at > t {
			break
		}
		heap.Pop(&e.pq)
		e.now = next.at
		e.processed++
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway model?)", e.MaxEvents))
		}
		fn := next.fn
		next.fn = nil // release the closure before running it
		fn()
		// The event has fired and its closure is detached; recycle it
		// (see the Event ownership contract).
		if len(e.free) < maxFreeEvents {
			e.free = append(e.free, next)
		}
	}
	if !math.IsInf(t, 1) && t > e.now && !e.stopped {
		e.now = t
	}
}

// Ticker invokes fn every interval seconds until Stop is called or fn
// returns false. It exists because a periodic event chain keeps the
// event queue non-empty: components must stop their tickers when the
// observed work completes or Run never returns.
type Ticker struct {
	eng      *Engine
	interval float64
	fn       func() bool
	stopped  bool
}

// Tick schedules fn every interval seconds, starting one interval from
// now. fn returning false stops the ticker.
func (e *Engine) Tick(interval float64, fn func() bool) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick interval %v", interval))
	}
	t := &Ticker{eng: e, interval: interval, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.eng.After(t.interval, func() {
		if t.stopped {
			return
		}
		if !t.fn() {
			t.stopped = true
			return
		}
		t.schedule()
	})
}

// Stop halts the ticker (idempotent).
func (t *Ticker) Stop() { t.stopped = true }
