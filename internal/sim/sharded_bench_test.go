package sim

import (
	"fmt"
	"testing"
)

// synthConfig sizes the synthetic cluster workload used by the scaling
// benchmarks: a rack-sharded cluster of heartbeat chains plus a set of
// concurrent jobs on the system shard that dispatch tasks to racks and
// collect completions — the event-flow shape of the real model
// (nodes/fabric on rack shards, RM/AM on the system shard) without the
// model's own cost, so the benchmark isolates the engine.
type synthConfig struct {
	racks        int
	nodesPerRack int
	jobs         int
	waves        int     // task dispatch→complete round trips per job
	horizon      float64 // heartbeat chains stop at this time
	heartbeat    float64
}

// synth10k is the acceptance-criteria workload: 10k nodes (313 racks ×
// 32), 1000 concurrent jobs. ~2M events per run.
var synth10k = synthConfig{racks: 313, nodesPerRack: 32, jobs: 1000, waves: 10, horizon: 600, heartbeat: 3}

// synthJobs stresses cross-shard job traffic rather than node count.
var synthJobs = synthConfig{racks: 64, nodesPerRack: 4, jobs: 1000, waves: 50, horizon: 60, heartbeat: 5}

// runSynthetic wires the workload onto eng and runs it to completion,
// returning the number of events fired. sharded selects the layout:
// one shard per rack, or everything on the system shard (the
// single-heap layout, for apples-to-apples comparison). The logical
// schedule is identical either way. preRun, if non-nil, runs after
// wiring and before Run (NewShard is frozen once parallel windows are
// enabled, so the parallel leg flips the switch here).
func runSynthetic(eng *Engine, cfg synthConfig, sharded bool, preRun func(*Engine)) uint64 {
	sys := eng.SystemShard()
	racks := make([]*Shard, cfg.racks)
	for r := range racks {
		if sharded {
			racks[r] = eng.NewShard(fmt.Sprintf("rack%03d", r))
		} else {
			racks[r] = sys
		}
	}

	// Per-node heartbeat chains, phase-staggered so heartbeats spread
	// over the interval instead of arriving in bursts.
	totalNodes := cfg.racks * cfg.nodesPerRack
	for r := 0; r < cfg.racks; r++ {
		sh := racks[r]
		for n := 0; n < cfg.nodesPerRack; n++ {
			phase := cfg.heartbeat * float64(r*cfg.nodesPerRack+n) / float64(totalNodes)
			beats := 0
			var beat func()
			beat = func() {
				beats++
				if sh.Now()+cfg.heartbeat <= cfg.horizon {
					sh.After(cfg.heartbeat, beat)
				}
			}
			sh.At(phase+0.001, beat)
		}
	}

	// Concurrent jobs: each job runs waves of dispatch→execute→complete
	// round trips, hopping system shard → rack shard → system shard via
	// Send (delays >= 1s keep the workload valid under a sub-second
	// parallel lookahead too).
	done := 0
	for j := 0; j < cfg.jobs; j++ {
		j := j
		var wave func(w int)
		wave = func(w int) {
			if w >= cfg.waves {
				done++
				return
			}
			dst := racks[(j+w*17)%cfg.racks]
			sys.Send(dst, 1.0+float64(j%7)*0.01, func() {
				dst.Send(sys, 1.0+float64(w%5)*0.02, func() { wave(w + 1) })
			})
		}
		sys.At(0.1+float64(j)*0.003, func() { wave(0) })
	}

	if preRun != nil {
		preRun(eng)
	}
	eng.Run()
	if done != cfg.jobs {
		panic(fmt.Sprintf("synthetic workload finished %d of %d jobs", done, cfg.jobs))
	}
	return eng.Processed()
}

// TestSyntheticWorkloadLayoutInvariant checks (on a scaled-down config)
// that the synthetic benchmark workload fires the same number of events
// on the single-shard and rack-sharded layouts — the benchmark legs
// really do run the same schedule.
func TestSyntheticWorkloadLayoutInvariant(t *testing.T) {
	cfg := synthConfig{racks: 16, nodesPerRack: 4, jobs: 50, waves: 5, horizon: 60, heartbeat: 3}
	a := runSynthetic(NewEngine(), cfg, false, nil)
	b := runSynthetic(NewEngine(), cfg, true, nil)
	if a != b {
		t.Fatalf("event counts differ across layouts: single=%d sharded=%d", a, b)
	}
	if a == 0 {
		t.Fatal("synthetic workload fired no events")
	}
}

// BenchmarkSharded10kNode is the acceptance-criteria benchmark: 10k
// nodes, 1000 concurrent jobs, rack-per-shard layout. The BENCH_PR7.json
// before-leg runs the identical workload on the pre-sharding engine.
func BenchmarkSharded10kNode(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += runSynthetic(NewEngine(), synth10k, true, nil)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkSharded10kNodeSingleShard is the same workload forced onto
// one shard — the old single-heap layout on the new engine — isolating
// the sharding win from engine-implementation drift.
func BenchmarkSharded10kNodeSingleShard(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += runSynthetic(NewEngine(), synth10k, false, nil)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkSharded10kNodeParallel runs the 10k-node workload with the
// opt-in parallel window pool (lookahead 0.5s; all Send delays are
// >= 1s).
func BenchmarkSharded10kNodeParallel(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += runSynthetic(NewEngine(), synth10k, true, func(eng *Engine) {
			eng.EnableParallelWindows(8, 0.5)
		})
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkConcurrentJobs stresses cross-shard send traffic: 1000 jobs
// doing 50 dispatch→complete round trips each across 64 rack shards.
func BenchmarkConcurrentJobs(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += runSynthetic(NewEngine(), synthJobs, true, nil)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
