package sim

import (
	"fmt"
	"strings"
	"testing"
)

// actorSched abstracts "schedule fn for logical actor a at absolute time
// t" so one logical workload can drive the frozen legacy single-heap
// engine and the sharded engine at any shard count. The workload is
// defined over logical actors; how actors map onto shards is the layout
// under test, and must never change the firing order.
type actorSched struct {
	now func() float64
	// at schedules fn for the given actor and returns a cancel func.
	at func(actor int, t float64, fn func()) func()
}

// runActorWorkload drives a mixed schedule over the given number of
// logical actors — same-instant ties across actors, seeded random
// chains, cross-actor spawns, and cancellations — and returns the exact
// firing order as one string per event.
func runActorWorkload(t *testing.T, seed uint64, actors int, s actorSched, run func()) []string {
	t.Helper()
	src := NewSource(seed)
	var log []string
	record := func(actor int, tag string) {
		log = append(log, fmt.Sprintf("%.9f a%02d %s", s.now(), actor, tag))
	}

	// Same-instant tie across every actor: must fire in scheduling
	// (seq) order whatever shard holds each actor.
	for a := 0; a < actors; a++ {
		a := a
		s.at(a, 1.0, func() { record(a, "tie") })
	}

	// Per-actor random event chains that occasionally hop to another
	// actor (a cross-shard send under any multi-shard layout). Each
	// actor draws from its own named stream, so draw order is fixed by
	// the firing order alone.
	for a := 0; a < actors; a++ {
		a := a
		rng := src.Stream(fmt.Sprintf("actor-%d", a))
		var step func(depth int)
		step = func(depth int) {
			record(a, fmt.Sprintf("step%d", depth))
			if depth >= 6 {
				return
			}
			d := 0.1 + rng.Float64()
			if rng.Intn(4) == 0 {
				// Hop: continue the chain on another actor.
				dst := rng.Intn(actors)
				s.at(dst, s.now()+d, func() { record(dst, fmt.Sprintf("hop%d<-a%02d", depth+1, a)) })
			}
			s.at(a, s.now()+d, func() { step(depth + 1) })
		}
		s.at(a, 0.5+float64(a)*0.01, func() { step(0) })
	}

	// Cancellations: each actor schedules a victim; a later event on a
	// *different* actor cancels it (exercises cancel across layouts).
	cancels := make([]func(), actors)
	for a := 0; a < actors; a++ {
		a := a
		cancels[a] = s.at(a, 9.0, func() { record(a, "victim-fired") })
	}
	for a := 0; a < actors; a++ {
		a := a
		s.at((a+1)%actors, 4.0+float64(a)*0.001, func() {
			record((a+1)%actors, fmt.Sprintf("cancel-a%02d", a))
			cancels[a]()
		})
	}

	run()
	return log
}

// shardedSched builds an actorSched over a sharded engine with the
// given shard count, mapping actor a to shard a mod shards (shard
// count 1 keeps everything on the system shard).
func shardedSched(shardCount, actors int) (*Engine, actorSched) {
	eng := NewEngine()
	byActor := make([]*Shard, actors)
	handles := []*Shard{eng.SystemShard()}
	for len(handles) < shardCount {
		handles = append(handles, eng.NewShard(fmt.Sprintf("shard%02d", len(handles))))
	}
	for a := 0; a < actors; a++ {
		byActor[a] = handles[a%shardCount]
	}
	return eng, actorSched{
		now: eng.Now,
		at: func(actor int, t float64, fn func()) func() {
			sh := byActor[actor]
			ev := sh.At(t, fn)
			return func() { sh.Cancel(ev) }
		},
	}
}

// TestShardLayoutInvariance is the headline determinism test of the
// sharded engine: the identical logical workload, same seed, run at
// shard counts 1, 4, and 16 and on the frozen pre-sharding engine,
// must produce byte-identical firing-order traces.
func TestShardLayoutInvariance(t *testing.T) {
	const seed, actors = 42, 16

	leg := newLegacyEngine()
	legSched := actorSched{
		now: leg.Now,
		at: func(_ int, at float64, fn func()) func() {
			ev := leg.At(at, fn)
			return func() { leg.Cancel(ev) }
		},
	}
	want := runActorWorkload(t, seed, actors, legSched, leg.Run)
	if len(want) == 0 {
		t.Fatal("workload produced no events")
	}
	if strings.Contains(strings.Join(want, "\n"), "victim-fired") {
		t.Fatal("canceled event fired on the legacy engine; workload broken")
	}

	for _, shards := range []int{1, 4, 16} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng, sched := shardedSched(shards, actors)
			got := runActorWorkload(t, seed, actors, sched, eng.Run)
			if len(got) != len(want) {
				t.Fatalf("event counts differ: legacy fired %d, %d-shard fired %d", len(want), shards, len(got))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("firing order diverged from legacy engine at event %d:\n  legacy:  %q\n  sharded: %q",
						i, want[i], got[i])
				}
			}
			if eng.Pending() != 0 {
				t.Fatalf("%d events left pending after Run", eng.Pending())
			}
		})
	}
}

// TestRecycledEventNeverMigratesShards pins the sharded recycling
// contract: a fired event is reused only by the shard that owned it.
func TestRecycledEventNeverMigratesShards(t *testing.T) {
	eng := NewEngine()
	a := eng.NewShard("a")
	b := eng.NewShard("b")

	evA := a.At(1, func() {})
	evB := b.At(1, func() {})
	eng.RunUntil(2)

	// Both events have fired and sit on their shards' free lists.
	reA := a.At(3, func() {})
	reB := b.At(3, func() {})
	if reA != evA {
		t.Error("shard a did not recycle its own fired event")
	}
	if reB != evB {
		t.Error("shard b did not recycle its own fired event")
	}
	if reA == evB || reB == evA {
		t.Fatal("recycled event migrated shards")
	}
	if reA.Shard() != a || reB.Shard() != b {
		t.Fatal("recycled event reports the wrong owning shard")
	}

	// A shard under recycling pressure still never borrows another
	// shard's events: drain many events on a, then schedule on b.
	for i := 0; i < 100; i++ {
		a.After(1, func() {})
	}
	eng.RunUntil(10)
	fresh := b.At(11, func() {})
	if fresh.Shard() != b {
		t.Fatal("event scheduled on shard b owned by another shard")
	}
}

// TestCrossShardRescheduleAndCancelPanic pins the ownership guards:
// moving or canceling an event through a different shard's API is a
// model bug and must panic rather than silently migrate the event.
func TestCrossShardRescheduleAndCancelPanic(t *testing.T) {
	eng := NewEngine()
	a := eng.NewShard("a")
	b := eng.NewShard("b")
	ev := a.At(5, func() {})

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s across shards did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Reschedule", func() { b.Reschedule(ev, 6) })
	mustPanic("Cancel", func() { b.Cancel(ev) })

	// Engine-level Reschedule/Cancel route to the owning shard and stay
	// legal.
	eng.Reschedule(ev, 7)
	eng.Cancel(ev)
	if !ev.Canceled() {
		t.Fatal("engine-level Cancel did not cancel")
	}
}

// TestLazyShardWakeup checks that idle shards are absent from the index
// heap and rejoin it when an event arrives.
func TestLazyShardWakeup(t *testing.T) {
	eng := NewEngine()
	shards := make([]*Shard, 64)
	for i := range shards {
		shards[i] = eng.NewShard(fmt.Sprintf("s%d", i))
	}
	if got := len(eng.order); got != 0 {
		t.Fatalf("index heap holds %d shards before any event", got)
	}
	shards[7].At(1, func() {})
	shards[9].At(1, func() {})
	if got := len(eng.order); got != 2 {
		t.Fatalf("index heap holds %d shards, want 2", got)
	}
	eng.Run()
	if got := len(eng.order); got != 0 {
		t.Fatalf("index heap holds %d shards after drain, want 0", got)
	}
}

// TestEngineRunUntilClampAcrossShards mirrors the single-heap clamp
// semantics: RunUntil(t) advances the clock to t when the queues drain
// early, and shard Now() agrees with the engine outside windows.
func TestEngineRunUntilClampAcrossShards(t *testing.T) {
	eng := NewEngine()
	s := eng.NewShard("s")
	fired := false
	s.At(1, func() { fired = true })
	eng.RunUntil(5)
	if !fired {
		t.Fatal("event did not fire")
	}
	if eng.Now() != 5 {
		t.Fatalf("clock = %v, want 5", eng.Now())
	}
	if s.Now() != 5 {
		t.Fatalf("shard clock = %v, want 5", s.Now())
	}
}
