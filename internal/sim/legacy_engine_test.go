package sim

// Frozen copy of the pre-sharding event engine (single global heap, PR 5
// vintage), kept as the golden reference for the sharded engine: the
// serial sharded run loop must fire the same schedule in exactly the
// same order whatever the shard layout. The copy is deliberately
// verbatim-in-behavior — do not "improve" it; its only job is to stay
// what the engine was. (Same precedent as the frozen quadratic fabric in
// fabric_golden_test.go.)

import (
	"container/heap"
	"fmt"
	"math"
)

type legacyEvent struct {
	at       float64
	seq      uint64
	fn       func()
	index    int
	canceled bool
}

type legacyHeap []*legacyEvent

func (h legacyHeap) Len() int { return len(h) }

func (h legacyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h legacyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *legacyHeap) Push(x any) {
	ev := x.(*legacyEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *legacyHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

type legacyEngine struct {
	now       float64
	seq       uint64
	pq        legacyHeap
	stopped   bool
	processed uint64
	free      []*legacyEvent
}

func newLegacyEngine() *legacyEngine { return &legacyEngine{} }

func (e *legacyEngine) Now() float64 { return e.now }

func (e *legacyEngine) At(t float64, fn func()) *legacyEvent {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %.9f before now %.9f", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	var ev *legacyEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.canceled = t, e.seq, fn, false
	} else {
		ev = &legacyEvent{at: t, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

func (e *legacyEngine) After(d float64, fn func()) *legacyEvent {
	return e.At(e.now+d, fn)
}

func (e *legacyEngine) Cancel(ev *legacyEvent) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.pq, ev.index)
	}
}

func (e *legacyEngine) Run() {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		next := e.pq[0]
		heap.Pop(&e.pq)
		e.now = next.at
		e.processed++
		fn := next.fn
		next.fn = nil
		fn()
		if len(e.free) < maxFreeEvents {
			e.free = append(e.free, next)
		}
	}
}
