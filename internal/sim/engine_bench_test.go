package sim

import "testing"

// BenchmarkEngineSchedule measures the schedule→fire round trip for a
// self-perpetuating event chain — the allocation pattern of every flow
// completion in the fabric.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := NewEngine()
	b.ReportAllocs()
	left := b.N
	var step func()
	step = func() {
		left--
		if left > 0 {
			eng.After(1, step)
		}
	}
	eng.After(1, step)
	eng.Run()
}

// BenchmarkEngineScheduleFan measures a fan of events per step: each
// firing schedules several short-lived events and cancels one, the
// cancel/reschedule pattern of a fabric recomputation.
func BenchmarkEngineScheduleFan(b *testing.B) {
	eng := NewEngine()
	b.ReportAllocs()
	left := b.N
	var step func()
	step = func() {
		left--
		victim := eng.After(5, func() {})
		eng.After(0.5, func() {})
		eng.After(0.25, func() {})
		eng.Cancel(victim)
		if left > 0 {
			eng.After(1, step)
		}
	}
	eng.After(1, step)
	eng.Run()
}
