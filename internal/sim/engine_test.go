package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.At(10, func() {
		e.After(2.5, func() { at = e.Now() })
	})
	e.Run()
	if at != 12.5 {
		t.Fatalf("After fired at %v, want 12.5", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Double-cancel and cancel-nil must be harmless.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelFromInsideEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var ev *Event
	e.At(1, func() { e.Cancel(ev) })
	ev = e.At(2, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("event canceled from inside an earlier event still fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if e.Now() != 10 {
		t.Fatalf("clock should advance to RunUntil bound, got %v", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt processing, count = %d", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run() // resumes
	if count != 2 {
		t.Fatalf("resume after Stop failed, count = %d", count)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestEngineNonFiniteTimePanics(t *testing.T) {
	e := NewEngine()
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", bad)
				}
			}()
			e.At(bad, func() {})
		}()
	}
}

func TestEngineMaxEvents(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 10
	var loop func()
	loop = func() { e.After(1, loop) }
	e.At(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway loop did not trip MaxEvents")
		}
	}()
	e.Run()
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order, and every non-canceled event fires exactly once.
func TestEngineHeapProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []float64
		count := int(n)%64 + 1
		times := make([]float64, count)
		for i := 0; i < count; i++ {
			at := rng.Float64() * 100
			times[i] = at
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != count {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		sort.Float64s(times)
		for i := range times {
			if times[i] != fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(float64(i), func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", e.Processed())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := e.Tick(2, func() bool { count++; return count < 3 })
	e.Run()
	if count != 3 {
		t.Fatalf("ticks = %d, want 3 (stopped by fn)", count)
	}
	if e.Now() != 6 {
		t.Fatalf("clock = %v, want 6", e.Now())
	}
	tk.Stop() // idempotent after self-stop
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := e.Tick(1, func() bool { count++; return true })
	e.At(4.5, func() { tk.Stop() })
	e.Run()
	if count != 4 {
		t.Fatalf("ticks = %d, want 4 before Stop", count)
	}
	if e.Pending() != 0 {
		t.Fatal("stopped ticker left events pending after drain")
	}
}

func TestTickerBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	NewEngine().Tick(0, func() bool { return true })
}

// BenchmarkEngineThroughput measures raw event processing speed.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			e.After(1, fn)
		}
	}
	e.At(0, fn)
	b.ResetTimer()
	e.Run()
}
