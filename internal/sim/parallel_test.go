package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// buildIsolatedWorkload schedules a shard-isolated workload: per-shard
// event chains drawing from per-shard RNG streams, talking to other
// shards only through Send with delay >= the lookahead. Each shard
// records its own firing log (logs[shard ID]); a shard's log is touched
// only by that shard's callbacks, which is exactly the isolation
// contract the parallel mode requires.
func buildIsolatedWorkload(eng *Engine, seed uint64, shardCount int, lookahead float64) [][]string {
	src := NewSource(seed)
	shards := []*Shard{eng.SystemShard()}
	for len(shards) < shardCount {
		shards = append(shards, eng.NewShard(fmt.Sprintf("p%02d", len(shards))))
	}
	logs := make([][]string, shardCount)
	for i, sh := range shards {
		i, sh := i, sh
		rng := src.Stream(fmt.Sprintf("shard-%d", i))
		record := func(tag string) {
			logs[i] = append(logs[i], fmt.Sprintf("%.9f %s", sh.Now(), tag))
		}
		var step func(depth int)
		step = func(depth int) {
			record(fmt.Sprintf("step%d", depth))
			if depth >= 8 {
				return
			}
			if rng.Intn(3) == 0 {
				dst := shards[rng.Intn(shardCount)]
				delay := lookahead + rng.Float64()
				d := depth
				sh.Send(dst, delay, func() {
					logs[dst.id] = append(logs[dst.id],
						fmt.Sprintf("%.9f recv%d<-p%02d", dst.Now(), d, i))
				})
			}
			sh.After(0.05+rng.Float64()*0.4, func() { step(depth + 1) })
		}
		sh.At(0.1+rng.Float64(), func() { step(0) })
	}
	return logs
}

func runIsolated(seed uint64, shardCount, workers int, lookahead float64) [][]string {
	eng := NewEngine()
	logs := buildIsolatedWorkload(eng, seed, shardCount, lookahead)
	if workers > 0 {
		eng.EnableParallelWindows(workers, lookahead)
	}
	eng.Run()
	return logs
}

// TestParallelWindowsDeterministic checks the parallel mode's
// determinism story end to end: same-seed runs are identical at any
// worker count (workers=1 runs the same windowed algorithm inline), and
// for a shard-isolated workload every shard's firing log matches the
// serial engine's. Run under -race this is also the data-race audit of
// the pool internals.
func TestParallelWindowsDeterministic(t *testing.T) {
	const seed, shards = 7, 9
	const lookahead = 0.5

	serial := runIsolated(seed, shards, 0, lookahead)
	inline := runIsolated(seed, shards, 1, lookahead)
	par8a := runIsolated(seed, shards, 8, lookahead)
	par8b := runIsolated(seed, shards, 8, lookahead)

	total := 0
	for _, l := range serial {
		total += len(l)
	}
	if total == 0 {
		t.Fatal("workload produced no events")
	}
	if !reflect.DeepEqual(par8a, par8b) {
		t.Fatal("two same-seed 8-worker runs diverged")
	}
	if !reflect.DeepEqual(inline, par8a) {
		t.Fatal("workers=1 and workers=8 diverged; window merge depends on goroutine timing")
	}
	if !reflect.DeepEqual(serial, inline) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], inline[i]) {
				t.Fatalf("shard %d log differs between serial and windowed execution:\nserial: %v\nwindow: %v",
					i, serial[i], inline[i])
			}
		}
	}
}

// TestParallelShortSendPanics pins the conservative-window guard: a
// Send whose delay would land inside the issuing window is a lookahead
// violation and must panic rather than silently break determinism.
func TestParallelShortSendPanics(t *testing.T) {
	eng := NewEngine()
	a := eng.NewShard("a")
	b := eng.NewShard("b")
	a.At(1, func() {
		a.Send(b, 0.01, func() {}) // lookahead is 1.0: too short
	})
	eng.EnableParallelWindows(2, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("short cross-shard Send inside a window did not panic")
		}
	}()
	eng.Run()
}

// TestParallelCrossShardAtPanics pins the scheduling-API isolation
// guard: calling At on a shard that is not inside its own window (from
// another shard's callback) must panic and point at Send.
func TestParallelCrossShardAtPanics(t *testing.T) {
	eng := NewEngine()
	a := eng.NewShard("a")
	b := eng.NewShard("b")
	a.At(1, func() {
		b.At(5, func() {}) // must be a.Send(b, ...)
	})
	eng.EnableParallelWindows(2, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard At during a parallel window did not panic")
		}
	}()
	eng.Run()
}

// TestParallelCallbackPanicPropagates checks that a panic inside a
// pooled shard callback surfaces from Run (deterministically, at the
// window barrier) instead of killing a worker goroutine.
func TestParallelCallbackPanicPropagates(t *testing.T) {
	eng := NewEngine()
	a := eng.NewShard("a")
	b := eng.NewShard("b")
	a.At(1, func() { panic("boom") })
	b.At(1.2, func() {})
	eng.EnableParallelWindows(4, 2.0)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the callback's panic value", r)
		}
	}()
	eng.Run()
}

// TestParallelStopShard checks the window-safe stop path: StopShard
// inside a window stops the engine at the barrier, and Run can resume.
func TestParallelStopShard(t *testing.T) {
	eng := NewEngine()
	a := eng.NewShard("a")
	fired := 0
	a.At(1, func() {
		fired++
		a.StopShard()
	})
	a.At(100, func() { fired++ })
	eng.EnableParallelWindows(2, 0.5)
	eng.Run()
	if fired != 1 {
		t.Fatalf("fired %d events before stop, want 1", fired)
	}
	eng.Run()
	if fired != 2 {
		t.Fatalf("fired %d events after resume, want 2", fired)
	}
}

// TestParallelInvalidConfig pins the EnableParallelWindows argument
// checks and the shard-creation freeze.
func TestParallelInvalidConfig(t *testing.T) {
	eng := NewEngine()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero lookahead did not panic")
			}
		}()
		eng.EnableParallelWindows(4, 0)
	}()
	eng.EnableParallelWindows(4, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewShard after EnableParallelWindows did not panic")
			}
		}()
		eng.NewShard("late")
	}()
}

// TestParallelMergeTieOrder is the k-way-merge determinism test: it
// pins the exact (time, source shard, send order) sequence assignment
// of the window barrier against a hand-computed expectation, with
// exact timestamp ties both across shards and within one shard, and
// with sends issued out of time order (so the per-shard outbox sort is
// load-bearing). Identical at every worker count, twice.
func TestParallelMergeTieOrder(t *testing.T) {
	run := func(workers int) []string {
		eng := NewEngine()
		s1 := eng.NewShard("s1")
		s2 := eng.NewShard("s2")
		dst := eng.NewShard("dst")
		var log []string
		recv := func(tag string) func() {
			return func() { log = append(log, fmt.Sprintf("%.1f %s", dst.Now(), tag)) }
		}
		// Both source shards fire at t=1 inside one window; each sends
		// twice to dst, later delivery first, with the 2.0 arrivals an
		// exact cross-shard tie.
		s1.At(1, func() {
			s1.Send(dst, 1.5, recv("s1-late"))
			s1.Send(dst, 1.0, recv("s1-early"))
		})
		s2.At(1, func() {
			s2.Send(dst, 1.5, recv("s2-late"))
			s2.Send(dst, 1.0, recv("s2-early"))
		})
		eng.EnableParallelWindows(workers, 1.0)
		eng.Run()
		return log
	}
	want := []string{"2.0 s1-early", "2.0 s2-early", "2.5 s1-late", "2.5 s2-late"}
	for _, w := range []int{1, 4} {
		got := run(w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d merge order %v, want %v", w, got, want)
		}
	}
	if a, b := run(4), run(4); !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed merge order diverged across runs")
	}
}

// TestParallelPoolReuseAcrossRuns pins the persistent-pool lifecycle:
// the worker pool is created inside RunUntil and torn down on its way
// out, so split runs (RunUntil then Run) behave exactly like one
// uninterrupted Run — multi-shard windows on both sides of the split.
func TestParallelPoolReuseAcrossRuns(t *testing.T) {
	const seed, shards = 11, 6
	const lookahead = 0.5

	oneShot := runIsolated(seed, shards, 8, lookahead)

	eng := NewEngine()
	logs := buildIsolatedWorkload(eng, seed, shards, lookahead)
	eng.EnableParallelWindows(8, lookahead)
	eng.RunUntil(1.5)
	eng.RunUntil(2.5)
	eng.Run()

	if !reflect.DeepEqual(oneShot, logs) {
		t.Fatal("split RunUntil/Run diverged from a single Run with the same seed")
	}
}

// TestParallelShortSendPanicsInSoloDrain pins that the Send delay
// floor holds even on the adaptive single-shard fast path, where sends
// execute with serial semantics: a short delay must fail on first
// execution, not only when a multi-shard window happens to catch it.
func TestParallelShortSendPanicsInSoloDrain(t *testing.T) {
	eng := NewEngine()
	a := eng.NewShard("a")
	b := eng.NewShard("b")
	b.At(50, func() {}) // far away: the window around t=1 holds a alone
	a.At(1, func() {
		a.Send(b, 0.01, func() {}) // lookahead is 1.0: too short
	})
	eng.EnableParallelWindows(2, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("short cross-shard Send during a solo drain did not panic")
		}
	}()
	eng.Run()
}

// TestParallelCrossShardAtPanicsInWindow is the multi-shard-window
// variant of the At isolation guard (the two-shard case in
// TestParallelCrossShardAtPanics takes the solo fast path): inside a
// window that holds a and c, scheduling on the idle shard b is caught
// on the worker and re-raised at the barrier.
func TestParallelCrossShardAtPanicsInWindow(t *testing.T) {
	eng := NewEngine()
	a := eng.NewShard("a")
	b := eng.NewShard("b")
	c := eng.NewShard("c")
	a.At(1, func() {
		b.At(5, func() {}) // must be a.Send(b, ...)
	})
	c.At(1.2, func() {}) // keeps the window multi-shard
	eng.EnableParallelWindows(2, 2.0)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard At inside a multi-shard window did not panic")
		}
	}()
	eng.Run()
}
