package sim

import (
	"hash/fnv"
	"math/rand"
)

// Source produces independent, named random streams from a single seed.
// Deriving streams by name (instead of sharing one *rand.Rand) keeps a
// simulation reproducible even when the order in which components draw
// random numbers changes.
type Source struct {
	seed uint64
}

// NewSource returns a Source rooted at seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed returns the root seed.
func (s *Source) Seed() uint64 { return s.seed }

// Stream returns a deterministic PRNG for the given name. Calling Stream
// twice with the same name yields streams with identical output.
func (s *Source) Stream(name string) *rand.Rand {
	return rand.New(rand.NewSource(s.streamSeed(name)))
}

// StreamInto re-seeds r to the exact initial state Stream(name) would
// return, avoiding the ~5 KB source allocation — the path for callers
// that pool their PRNGs across a stream of jobs. A nil r allocates a
// fresh stream; either way the returned PRNG's output is identical to
// Stream(name)'s.
func (s *Source) StreamInto(r *rand.Rand, name string) *rand.Rand {
	if r == nil {
		return s.Stream(name)
	}
	r.Seed(s.streamSeed(name))
	return r
}

func (s *Source) streamSeed(name string) int64 {
	h := fnv.New64a()
	// Mix the seed in first so different seeds fully decorrelate streams.
	var b [8]byte
	v := s.seed
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(name))
	return int64(h.Sum64())
}

// Sub derives a child source, useful for giving a subsystem its own
// namespace of streams.
func (s *Source) Sub(name string) *Source {
	h := fnv.New64a()
	var b [8]byte
	v := s.seed
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte("sub:"))
	_, _ = h.Write([]byte(name))
	return &Source{seed: h.Sum64()}
}
