package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Shard is one event queue of a sharded Engine plus its scheduling
// API. Model components hold the shard that owns their state (a rack's
// nodes hold the rack shard; cross-cutting actors hold the system
// shard) and schedule through it, which is what "declaring shard
// affinity" means: every At/After/Tick/Reschedule/Cancel call names
// the shard whose state the callback touches.
//
// In serial mode (the default) affinity is purely declarative — the
// engine fires events in global (time, seq) order whatever the shard
// layout — but it is what makes the parallel-window mode (and the
// cross-shard-event lint rule) possible: a callback scheduled on a
// shard may only touch that shard's state, and talks to other shards
// through Send.
type Shard struct {
	eng  *Engine
	id   ShardID
	name string

	pq   eventHeap
	free []*Event

	// pos is this shard's position in the engine's index heap, -1 when
	// idle (empty queue). minAt/minSeq cache the queue head's key; the
	// index heap compares cached keys only.
	pos    int
	minAt  float64
	minSeq uint64

	// Parallel-window state (see parallel.go). All of it is owned by
	// the single worker goroutine executing this shard's window, or by
	// the coordinator between windows.
	inWindow   bool
	now        float64 // shard-local clock inside a window
	windowEnd  float64
	windowBase uint64 // engine seq at window start
	windowK    uint64 // number of shards in the window
	windowIdx  uint64 // this shard's slot in the window's seq interleave
	localCount uint64 // seqs consumed by this shard within the window
	fired      uint64 // events fired by this shard within the window
	outbox     []pendingSend
	obCur      int // barrier-merge cursor into the sorted outbox
	stopReq    bool
	panicked   any
}

// ID returns the shard's identifier (0 is the system shard).
func (s *Shard) ID() ShardID { return s.id }

// Name returns the label the shard was created with.
func (s *Shard) Name() string { return s.name }

// Engine returns the owning engine.
func (s *Shard) Engine() *Engine { return s.eng }

// Now returns the current simulation time as seen by this shard:
// inside a parallel window, the shard-local clock; otherwise the
// engine clock.
func (s *Shard) Now() float64 {
	if s.inWindow {
		return s.now
	}
	return s.eng.now
}

// nextSeq consumes one scheduling sequence number. Inside a parallel
// window each shard draws from its own interleaved lane (base +
// local*K + idx) so assignment is race-free and deterministic; the
// coordinator advances the engine counter past every lane at the
// barrier.
func (s *Shard) nextSeq() uint64 {
	if s.inWindow {
		seq := s.windowBase + s.localCount*s.windowK + s.windowIdx
		s.localCount++
		return seq
	}
	seq := s.eng.seq
	s.eng.seq++
	return seq
}

// take pops a recycled event from this shard's free list or allocates
// a fresh one. Recycled events are reused only by their owning shard.
func (s *Shard) take(t float64, seq uint64, fn func()) *Event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.canceled = t, seq, fn, false
		return ev
	}
	return &Event{at: t, seq: seq, fn: fn, shard: s}
}

// At schedules fn on this shard at absolute time t. Scheduling in the
// past panics, since it indicates a broken model rather than a
// recoverable condition. During a parallel window only the shard's own
// callbacks may call At on it; cross-shard scheduling must go through
// Send.
func (s *Shard) At(t float64, fn func()) *Event {
	if p := s.eng.par; p != nil && p.active && !s.inWindow && p.solo != s {
		panic(fmt.Sprintf("sim: At on shard %q outside its window during parallel execution; use Send", s.name))
	}
	return s.at(t, fn)
}

// at is At without the parallel-mode affinity guard; Send's serial
// fallback delivers through it (a Send is the sanctioned cross-shard
// path, so the guard must not reject the destination shard).
func (s *Shard) at(t float64, fn func()) *Event {
	e := s.eng
	if now := s.Now(); t < now {
		panic(fmt.Sprintf("sim: scheduling event at %.9f before now %.9f", t, now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	ev := s.take(t, s.nextSeq(), fn)
	heap.Push(&s.pq, ev)
	if !s.inWindow {
		e.syncShard(s)
	}
	return ev
}

// After schedules fn on this shard d seconds from now. Negative d
// panics.
func (s *Shard) After(d float64, fn func()) *Event {
	return s.At(s.Now()+d, fn)
}

// Reschedule moves a still-queued event of this shard to absolute time
// t, keeping its callback and its owning shard (events never migrate
// shards; see the Event ownership contract). Semantics match
// Engine.Reschedule.
func (s *Shard) Reschedule(ev *Event, t float64) *Event {
	if ev == nil || ev.canceled || ev.index < 0 {
		panic("sim: Reschedule of a fired or canceled event")
	}
	if ev.shard != s {
		panic(fmt.Sprintf("sim: Reschedule on shard %q of an event owned by shard %q", s.name, ev.shard.name))
	}
	if now := s.Now(); t < now {
		panic(fmt.Sprintf("sim: rescheduling event at %.9f before now %.9f", t, now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: rescheduling event at non-finite time %v", t))
	}
	ev.at = t
	ev.seq = s.nextSeq()
	heap.Fix(&s.pq, ev.index)
	if !s.inWindow {
		s.eng.syncShard(s)
	}
	return ev
}

// Cancel removes ev from this shard's queue. Canceling an
// already-fired or already-canceled event is a no-op; canceling an
// event owned by a different shard panics (cross-shard cancellation
// must be routed through Send to the owning shard).
func (s *Shard) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	if ev.shard != s {
		panic(fmt.Sprintf("sim: Cancel on shard %q of an event owned by shard %q", s.name, ev.shard.name))
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&s.pq, ev.index)
		if !s.inWindow {
			s.eng.syncShard(s)
		}
	}
}

// Tick schedules fn on this shard every interval seconds, starting one
// interval from now. fn returning false stops the ticker.
func (s *Shard) Tick(interval float64, fn func() bool) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick interval %v", interval))
	}
	t := &Ticker{shard: s, interval: interval, fn: fn}
	t.schedule()
	return t
}

// Send schedules fn on shard dst, delay seconds from this shard's
// current time. It is the sanctioned cross-shard communication
// primitive: in serial mode it is exactly dst.At(now+delay, fn); in
// parallel-window mode the send is buffered and merged at the window
// barrier in deterministic (time, source shard, send order) order, and
// the returned event is nil. delay must be at least the engine's
// lookahead when parallel windows are enabled, so a send can never
// land inside the window that issued it.
func (s *Shard) Send(dst *Shard, delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		panic(fmt.Sprintf("sim: Send with invalid delay %v", delay))
	}
	// In parallel mode the delay floor is enforced unconditionally —
	// not just inside windows — so a lookahead violation fails
	// deterministically on its first execution instead of depending on
	// the window occupancy that happened to surround it (the adaptive
	// solo drain otherwise runs sends with serial semantics and would
	// mask short delays). mrlint's cross-shard-event rule flags the
	// constant-delay cases statically.
	if p := s.eng.par; p != nil && delay < p.lookahead {
		panic(fmt.Sprintf(
			"sim: Send from shard %q to %q with delay %.9f below the lookahead %.9f; cross-shard delays must be >= the lookahead",
			s.name, dst.name, delay, p.lookahead))
	}
	if s.inWindow {
		at := s.now + delay
		if at < s.windowEnd {
			panic(fmt.Sprintf(
				"sim: Send from shard %q to %q lands at %.9f inside the window ending %.9f; cross-shard delays must be >= the lookahead",
				s.name, dst.name, at, s.windowEnd))
		}
		s.outbox = append(s.outbox, pendingSend{dst: dst, at: at, order: uint64(len(s.outbox)), fn: fn})
		return nil
	}
	return dst.at(s.Now()+delay, fn)
}

// Pending returns the number of queued (not yet fired) events on this
// shard.
func (s *Shard) Pending() int { return len(s.pq) }
