package sim

import (
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewSource(42).Stream("alpha")
	b := NewSource(42).Stream("alpha")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-named streams diverged at draw %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	s := NewSource(42)
	a := s.Stream("alpha")
	b := s.Stream("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 'alpha' and 'beta' look correlated: %d/64 equal draws", same)
	}
}

func TestSeedSeparation(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced correlated streams: %d/64 equal draws", same)
	}
}

func TestSubSourceNamespacing(t *testing.T) {
	root := NewSource(7)
	s1 := root.Sub("yarn").Stream("x")
	s2 := root.Sub("mapreduce").Stream("x")
	if s1.Uint64() == s2.Uint64() && s1.Uint64() == s2.Uint64() {
		t.Fatal("sub-sources with different names produced identical streams")
	}
	r1 := root.Sub("yarn").Stream("x")
	r2 := root.Sub("yarn").Stream("x")
	for i := 0; i < 16; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("identical sub-source paths diverged")
		}
	}
}

// Property: Stream(name) output depends only on (seed, name).
func TestStreamPure(t *testing.T) {
	f := func(seed uint64, name string) bool {
		x := NewSource(seed).Stream(name).Uint64()
		y := NewSource(seed).Stream(name).Uint64()
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
