// Tests live in an external package so they can drive whole jobs
// through internal/experiments (which imports internal/faults).
package faults_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/yarn"
)

func crashSpec() *faults.Spec {
	return &faults.Spec{
		NodeCrashes: []faults.NodeCrash{{At: 40, Node: 3, RestartAfter: 120}},
	}
}

// --- spec parsing & validation -------------------------------------

func TestLoadExampleSpec(t *testing.T) {
	s, err := faults.Load("../../examples/faults/crash.json")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(s.NodeCrashes) != 1 {
		t.Fatalf("crashes = %d, want 1", len(s.NodeCrashes))
	}
	c := s.NodeCrashes[0]
	if c.At != 40 || c.Node != 3 || c.RestartAfter != 120 {
		t.Fatalf("crash = %+v", c)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := faults.Load("no/such/spec.json"); err == nil {
		t.Fatal("Load on a missing file succeeded")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []faults.Spec{
		{NodeCrashes: []faults.NodeCrash{{At: -1, Node: 0}}},
		{NodeCrashes: []faults.NodeCrash{{At: 0, Node: -2}}},
		{NodeSlow: []faults.NodeSlow{{At: 0, Node: 0, Factor: 0, Window: 10}}},
		{NodeSlow: []faults.NodeSlow{{At: 0, Node: 0, Factor: 1.5, Window: 10}}},
		{DiskDegrades: []faults.DiskDegrade{{At: 0, Node: 0, Factor: 0.5, Window: -1}}},
		{LinkFlaps: []faults.LinkFlap{{At: 0, Node: 0, Window: -5}}},
		{FetchFailRate: 1.0},
		{FetchFailRate: -0.1},
		{TaskAttemptFail: &faults.TaskAttemptFail{Rate: 1.5}},
		{TaskAttemptFail: &faults.TaskAttemptFail{Rate: 0.1, MeanDelaySecs: -1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated: %+v", i, s)
		}
	}
	if err := crashSpec().Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := faults.Parse([]byte("{")); err == nil {
		t.Fatal("Parse accepted malformed JSON")
	}
	if _, err := faults.Parse([]byte(`{"fetch_fail_rate": 2}`)); err == nil {
		t.Fatal("Parse accepted an invalid spec")
	}
}

func TestNewRejectsBadNodeIndex(t *testing.T) {
	env := experiments.Env{Seed: 1}
	r := env.NewRig(yarn.FIFOScheduler{})
	s := faults.Spec{NodeCrashes: []faults.NodeCrash{{At: 1, Node: len(r.C.Nodes)}}}
	if _, err := faults.New(r.C, sim.NewSource(1), s, nil); err == nil {
		t.Fatal("New accepted an out-of-range node index")
	}
}

// --- determinism ---------------------------------------------------

// runCrashTerasort runs one faulted Terasort and returns the recorded
// trace plus the job result.
func runCrashTerasort(t *testing.T, seed uint64, spec *faults.Spec, spec2 func(*mapreduce.Spec)) (*trace.Recorder, mapreduce.Result, *experiments.Rig) {
	t.Helper()
	env := experiments.Env{Seed: seed}
	r := env.NewRig(yarn.FIFOScheduler{})
	rec := &trace.Recorder{}
	js := mapreduce.Spec{
		Benchmark:  workload.Terasort(20, 0, 0),
		BaseConfig: mrconf.Default(),
		Trace:      rec,
	}
	if spec2 != nil {
		spec2(&js)
	}
	if spec != nil {
		inj, err := faults.New(r.C, sim.NewSource(seed), *spec, rec)
		if err != nil {
			t.Fatalf("faults.New: %v", err)
		}
		js.Faults = inj
	}
	var res mapreduce.Result
	done := false
	mapreduce.Submit(r.RM, r.FS, js, func(rr mapreduce.Result) { res = rr; done = true })
	r.Eng.Run()
	if !done {
		t.Fatal("faulted run never completed (recovery hang)")
	}
	return rec, res, r
}

func traceBytes(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

func TestSameSeedFaultedRunBitReproducible(t *testing.T) {
	a, resA, _ := runCrashTerasort(t, 42, crashSpec(), nil)
	b, resB, _ := runCrashTerasort(t, 42, crashSpec(), nil)
	if !bytes.Equal(traceBytes(t, a), traceBytes(t, b)) {
		t.Fatal("same-seed faulted traces differ")
	}
	if resA.Duration != resB.Duration {
		t.Fatalf("durations differ: %v vs %v", resA.Duration, resB.Duration)
	}
}

func TestCrashRecoveryCompletesWithExpectedTrace(t *testing.T) {
	rec, res, r := runCrashTerasort(t, 42, crashSpec(), nil)
	if res.Failed {
		t.Fatal("crash run failed; recovery should complete it")
	}
	want := map[trace.Kind]bool{
		trace.NodeDown: false, trace.NodeUp: false, trace.ReexecMap: false,
	}
	for _, e := range rec.Events() {
		if _, ok := want[e.Kind]; ok {
			want[e.Kind] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("trace missing %q event", k)
		}
	}
	f := r.C.Faults
	if f.NodesDowned == 0 || f.NodesRestored == 0 {
		t.Fatalf("node counters: %+v", *f)
	}
	if f.ContainersLost == 0 {
		t.Fatal("no containers reclaimed from the downed node")
	}
	if res.Counters.NodeLossKills == 0 {
		t.Fatal("no attempts killed by node loss")
	}
	if res.Counters.MapsReExecuted == 0 {
		t.Fatal("no completed maps re-executed after output loss")
	}
	if f.BlocksReReplicated == 0 {
		t.Fatal("no HDFS blocks re-replicated")
	}
}

// TestFaultsOffIsZeroCost pins the central design promise: an
// injector built from an empty spec (hooks installed, nothing armed)
// leaves the run byte-identical to a run with no injector at all —
// the hooks draw no random numbers and schedule no events.
func TestFaultsOffIsZeroCost(t *testing.T) {
	base, resBase, _ := runCrashTerasort(t, 7, nil, nil)
	empty, resEmpty, _ := runCrashTerasort(t, 7, &faults.Spec{}, nil)
	if !bytes.Equal(traceBytes(t, base), traceBytes(t, empty)) {
		t.Fatal("empty-spec injector trace differs from no-injector baseline")
	}
	if resBase.Duration != resEmpty.Duration {
		t.Fatalf("durations differ: %v vs %v", resBase.Duration, resEmpty.Duration)
	}
	if strings.Contains(string(traceBytes(t, base)), string(trace.NodeDown)) {
		t.Fatal("baseline trace contains fault events")
	}
}

// --- recovery interactions -----------------------------------------

// Speculation and crash retry must compose: shadow attempts of killed
// tasks are dropped, winners' stats survive for later re-execution,
// and the job still completes.
func TestCrashWithSpeculationCompletes(t *testing.T) {
	rec, res, _ := runCrashTerasort(t, 42, crashSpec(), func(js *mapreduce.Spec) {
		js.Speculation = mapreduce.DefaultSpeculation()
	})
	if res.Failed {
		t.Fatal("crash+speculation run failed")
	}
	if res.Counters.NodeLossKills == 0 {
		t.Fatal("crash killed nothing")
	}
	seen := false
	for _, e := range rec.Events() {
		if e.Kind == trace.ReexecMap {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("no map re-execution under speculation")
	}
}

// Probabilistic fetch failures retry and the job completes; counters
// record every injected failure.
func TestFetchFailuresRetryToCompletion(t *testing.T) {
	spec := &faults.Spec{FetchFailRate: 0.2}
	rec, res, r := runCrashTerasort(t, 42, spec, nil)
	if res.Failed {
		t.Fatal("fetch-failure run failed")
	}
	if r.C.Faults.FetchFailures == 0 {
		t.Fatal("no fetch failures injected at rate 0.2")
	}
	n := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.FetchFail {
			n++
		}
	}
	if n != r.C.Faults.FetchFailures {
		t.Fatalf("trace fetch_fail events = %d, counter = %d", n, r.C.Faults.FetchFailures)
	}
}

// Injected attempt failures consume MaxAttempts but the job survives
// at a modest rate, and the tuner path stays live (samples discarded,
// not poisoned).
func TestAttemptFailuresRetryToCompletion(t *testing.T) {
	spec := &faults.Spec{TaskAttemptFail: &faults.TaskAttemptFail{Rate: 0.05, MeanDelaySecs: 3}}
	_, res, _ := runCrashTerasort(t, 42, spec, nil)
	if res.Failed {
		t.Fatal("5% attempt-failure run failed")
	}
	if res.Counters.TaskFailures == 0 {
		t.Fatal("no attempt failures injected at rate 0.05")
	}
}

// The CI fault matrix: the crash scenario must complete with live
// recovery counters across seeds, not just the golden one.
func TestFaultMatrixSmoke(t *testing.T) {
	for _, seed := range []uint64{1, 42, 1234} {
		_, res, r := runCrashTerasort(t, seed, crashSpec(), nil)
		if res.Failed {
			t.Fatalf("seed %d: crash run failed", seed)
		}
		if r.C.Faults.NodesDowned == 0 || r.C.Faults.ContainersLost == 0 {
			t.Fatalf("seed %d: recovery counters flat: %+v", seed, *r.C.Faults)
		}
	}
}

// Slowdown windows restore capacity afterwards: a transient 4x CPU
// slowdown must not wedge the run.
func TestTransientSlowdownCompletes(t *testing.T) {
	spec := &faults.Spec{
		NodeSlow:     []faults.NodeSlow{{At: 30, Node: 2, Factor: 0.25, Window: 60}},
		DiskDegrades: []faults.DiskDegrade{{At: 30, Node: 5, Factor: 0.5, Window: 60}},
		LinkFlaps:    []faults.LinkFlap{{At: 50, Node: 8, Window: 10}},
	}
	_, res, _ := runCrashTerasort(t, 42, spec, nil)
	if res.Failed {
		t.Fatal("slowdown run failed")
	}
}
