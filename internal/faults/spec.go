// Package faults implements deterministic fault injection for the
// simulated cluster: node crashes and restarts, slow nodes, degraded
// disks, flapping links, shuffle fetch failures, and spontaneous task
// attempt failures. Faults are described by a declarative Spec
// (typically loaded from JSON), scheduled off the simulation clock,
// and randomized only through a dedicated named stream of the run's
// seeded RNG — so a faulted run is exactly as reproducible as a clean
// one: same seed and spec, same trace, bit for bit.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
)

// NodeCrash kills a node at a point in time; the node restarts (empty:
// no replicas, no containers) after RestartAfter seconds, or never if
// RestartAfter is zero.
type NodeCrash struct {
	At           float64 `json:"at"`
	Node         int     `json:"node"`
	RestartAfter float64 `json:"restart_after,omitempty"`
}

// NodeSlow scales a node's CPU and disk capacity by Factor (e.g. 0.3)
// for Window seconds — the classic straggler node. Windows on the same
// node must not overlap.
type NodeSlow struct {
	At     float64 `json:"at"`
	Node   int     `json:"node"`
	Factor float64 `json:"factor"`
	Window float64 `json:"window"`
}

// DiskDegrade scales only the node's disk bandwidth by Factor for
// Window seconds (a failing or contended spindle).
type DiskDegrade struct {
	At     float64 `json:"at"`
	Node   int     `json:"node"`
	Factor float64 `json:"factor"`
	Window float64 `json:"window"`
}

// LinkFlap collapses a node's NIC bandwidth to ~zero for Window
// seconds (a flapping switch port). In-flight transfers stall but do
// not abort; they resume when the window closes.
type LinkFlap struct {
	At     float64 `json:"at"`
	Node   int     `json:"node"`
	Window float64 `json:"window"`
}

// TaskAttemptFail makes each task attempt fail spontaneously with
// probability Rate, after an exponentially distributed delay with mean
// MeanDelaySecs (default 5) from its launch.
type TaskAttemptFail struct {
	Rate          float64 `json:"rate"`
	MeanDelaySecs float64 `json:"mean_delay_secs,omitempty"`
}

// Spec is a full fault schedule. The zero value injects nothing.
type Spec struct {
	NodeCrashes  []NodeCrash   `json:"node_crashes,omitempty"`
	NodeSlow     []NodeSlow    `json:"node_slow,omitempty"`
	DiskDegrades []DiskDegrade `json:"disk_degrades,omitempty"`
	LinkFlaps    []LinkFlap    `json:"link_flaps,omitempty"`
	// FetchFailRate is the probability that any one shuffle fetch
	// attempt fails and is retried after a backoff.
	FetchFailRate   float64          `json:"fetch_fail_rate,omitempty"`
	TaskAttemptFail *TaskAttemptFail `json:"task_attempt_fail,omitempty"`
}

// Empty reports whether the spec injects nothing at all.
func (s *Spec) Empty() bool {
	return len(s.NodeCrashes) == 0 && len(s.NodeSlow) == 0 &&
		len(s.DiskDegrades) == 0 && len(s.LinkFlaps) == 0 &&
		s.FetchFailRate == 0 && s.TaskAttemptFail == nil
}

// FilterNodes returns a copy of the spec keeping only the scheduled
// faults whose target node satisfies keep, along with the
// probabilistic rates (which are not node-addressed). Node indices are
// not renumbered. Rack-cell serving uses it to hand each rack's
// injector exactly the faults landing on its own nodes.
func (s *Spec) FilterNodes(keep func(node int) bool) Spec {
	out := Spec{FetchFailRate: s.FetchFailRate, TaskAttemptFail: s.TaskAttemptFail}
	for _, c := range s.NodeCrashes {
		if keep(c.Node) {
			out.NodeCrashes = append(out.NodeCrashes, c)
		}
	}
	for _, sl := range s.NodeSlow {
		if keep(sl.Node) {
			out.NodeSlow = append(out.NodeSlow, sl)
		}
	}
	for _, d := range s.DiskDegrades {
		if keep(d.Node) {
			out.DiskDegrades = append(out.DiskDegrades, d)
		}
	}
	for _, l := range s.LinkFlaps {
		if keep(l.Node) {
			out.LinkFlaps = append(out.LinkFlaps, l)
		}
	}
	return out
}

// Validate checks ranges that do not depend on the target cluster
// (node indices are checked against the cluster in New).
func (s *Spec) Validate() error {
	for i, c := range s.NodeCrashes {
		if c.At < 0 || c.RestartAfter < 0 || c.Node < 0 {
			return fmt.Errorf("faults: node_crashes[%d]: negative at/restart_after/node", i)
		}
	}
	for i, sl := range s.NodeSlow {
		if sl.Factor <= 0 || sl.Factor > 1 {
			return fmt.Errorf("faults: node_slow[%d]: factor must be in (0,1]", i)
		}
		if sl.At < 0 || sl.Window < 0 || sl.Node < 0 {
			return fmt.Errorf("faults: node_slow[%d]: negative at/window/node", i)
		}
	}
	for i, d := range s.DiskDegrades {
		if d.Factor <= 0 || d.Factor > 1 {
			return fmt.Errorf("faults: disk_degrades[%d]: factor must be in (0,1]", i)
		}
		if d.At < 0 || d.Window < 0 || d.Node < 0 {
			return fmt.Errorf("faults: disk_degrades[%d]: negative at/window/node", i)
		}
	}
	for i, l := range s.LinkFlaps {
		if l.At < 0 || l.Window < 0 || l.Node < 0 {
			return fmt.Errorf("faults: link_flaps[%d]: negative at/window/node", i)
		}
	}
	if s.FetchFailRate < 0 || s.FetchFailRate >= 1 {
		return fmt.Errorf("faults: fetch_fail_rate must be in [0,1)")
	}
	if f := s.TaskAttemptFail; f != nil {
		if f.Rate < 0 || f.Rate > 1 {
			return fmt.Errorf("faults: task_attempt_fail.rate must be in [0,1]")
		}
		if f.MeanDelaySecs < 0 {
			return fmt.Errorf("faults: task_attempt_fail.mean_delay_secs must be >= 0")
		}
	}
	return nil
}

// Parse decodes and validates a JSON spec.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("faults: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads a JSON spec from a file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	return Parse(data)
}
