package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Injector arms a Spec against a cluster. Scheduled faults (crashes,
// slow windows) are posted as simulation events at construction time;
// probabilistic faults (fetch failures, attempt failures) are served
// through the hook methods, which satisfy mapreduce.FaultHooks.
//
// All randomness comes from the "faults" stream of the provided
// source: a named stream is independent of every other stream derived
// from the same seed, so adding fault injection never perturbs the
// workload's own random draws — and a clean run of the same seed is
// untouched.
type Injector struct {
	c    *cluster.Cluster
	rec  trace.Sink
	spec Spec

	fetchRNG      *rand.Rand
	attemptRNG    *rand.Rand
	meanFailDelay float64
}

// DefaultMeanFailDelaySecs is the mean attempt-failure delay when the
// spec leaves it unset.
const DefaultMeanFailDelaySecs = 5.0

// New validates spec against the cluster and schedules its timed
// faults on the cluster's engine. rec (any trace.Sink; nil is treated
// as trace.Discard) receives node_down/node_up events under the
// pseudo-job "cluster".
func New(c *cluster.Cluster, src *sim.Source, spec Spec, rec trace.Sink) (*Injector, error) {
	checkNode := func(what string, i, node int) error {
		if node >= len(c.Nodes) {
			return fmt.Errorf("faults: %s[%d]: node %d out of range (cluster has %d)", what, i, node, len(c.Nodes))
		}
		return nil
	}
	for i, cr := range spec.NodeCrashes {
		if err := checkNode("node_crashes", i, cr.Node); err != nil {
			return nil, err
		}
	}
	for i, sl := range spec.NodeSlow {
		if err := checkNode("node_slow", i, sl.Node); err != nil {
			return nil, err
		}
	}
	for i, d := range spec.DiskDegrades {
		if err := checkNode("disk_degrades", i, d.Node); err != nil {
			return nil, err
		}
	}
	for i, l := range spec.LinkFlaps {
		if err := checkNode("link_flaps", i, l.Node); err != nil {
			return nil, err
		}
	}

	if rec == nil {
		rec = trace.Discard
	}
	in := &Injector{c: c, rec: rec, spec: spec, meanFailDelay: DefaultMeanFailDelaySecs}
	if f := spec.TaskAttemptFail; f != nil && f.MeanDelaySecs > 0 {
		in.meanFailDelay = f.MeanDelaySecs
	}
	// Streams are created lazily-never: only when the matching rate is
	// set, so an all-timed spec draws no random numbers at all.
	fsrc := src.Sub("faults")
	if spec.FetchFailRate > 0 {
		in.fetchRNG = fsrc.Stream("fetch")
	}
	if f := spec.TaskAttemptFail; f != nil && f.Rate > 0 {
		in.attemptRNG = fsrc.Stream("attempt")
	}

	for _, cr := range spec.NodeCrashes {
		in.armCrash(cr)
	}
	for _, sl := range spec.NodeSlow {
		in.armSlow(sl.At, sl.Node, sl.Factor, sl.Window, true)
	}
	for _, d := range spec.DiskDegrades {
		in.armSlow(d.At, d.Node, d.Factor, d.Window, false)
	}
	for _, l := range spec.LinkFlaps {
		in.armFlap(l)
	}
	return in, nil
}

// Scheduled faults arm on the target node's rack shard, not the system
// shard: the callbacks only touch that node's resource domains (and, in
// rack-cell mode, that rack's listeners), so the events are rack-local
// and legal inside parallel windows. In serial mode the shard choice
// only labels the event — firing order and timestamps are unchanged.
func (in *Injector) armCrash(cr NodeCrash) {
	n := in.c.Nodes[cr.Node]
	sh := n.Shard()
	sh.At(cr.At, func() {
		if n.Down() {
			return
		}
		in.c.KillNode(n)
		in.rec.Add(trace.Event{Time: sh.Now(), Job: "cluster", Kind: trace.NodeDown,
			Node: n.Name, Detail: "crash"})
		if cr.RestartAfter <= 0 {
			return
		}
		sh.After(cr.RestartAfter, func() {
			if !n.Down() {
				return
			}
			in.c.RestoreNode(n)
			in.rec.Add(trace.Event{Time: sh.Now(), Job: "cluster", Kind: trace.NodeUp,
				Node: n.Name, Detail: "restart"})
		})
	})
}

// armSlow scales disk (and, when cpu is set, CPU) capacity by factor
// for the window, restoring the capacities captured at window start.
// Windows on the same node must not overlap (Spec doc): the restore
// would otherwise re-install the other window's scaled capacity.
func (in *Injector) armSlow(at float64, node int, factor, window float64, cpu bool) {
	n := in.c.Nodes[node]
	sh := n.Shard()
	sh.At(at, func() {
		baseCPU := n.CPUCapacity()
		baseDisk := n.DiskBandwidth()
		if cpu {
			n.SetCPUCapacity(baseCPU * factor)
		}
		n.SetDiskBandwidth(baseDisk * factor)
		if window <= 0 {
			return // degraded for the rest of the run
		}
		sh.After(window, func() {
			if cpu {
				n.SetCPUCapacity(baseCPU)
			}
			n.SetDiskBandwidth(baseDisk)
		})
	})
}

// linkFlapFactor is the residual NIC capacity during a flap: near-dead
// but nonzero, so in-flight transfers stall rather than divide by zero.
const linkFlapFactor = 1e-3

func (in *Injector) armFlap(l LinkFlap) {
	n := in.c.Nodes[l.Node]
	sh := n.Shard()
	sh.At(l.At, func() {
		base := n.NICBandwidth()
		n.SetNICBandwidth(base * linkFlapFactor)
		if l.Window <= 0 {
			return
		}
		sh.After(l.Window, func() {
			n.SetNICBandwidth(base)
		})
	})
}

// FetchFails implements mapreduce.FaultHooks.
func (in *Injector) FetchFails() bool {
	if in.fetchRNG == nil {
		return false
	}
	return in.fetchRNG.Float64() < in.spec.FetchFailRate
}

// AttemptFailDelay implements mapreduce.FaultHooks.
func (in *Injector) AttemptFailDelay(taskType string, taskID, attempt int) (float64, bool) {
	if in.attemptRNG == nil {
		return 0, false
	}
	if in.attemptRNG.Float64() >= in.spec.TaskAttemptFail.Rate {
		return 0, false
	}
	return in.attemptRNG.ExpFloat64() * in.meanFailDelay, true
}
