package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTrace() *Recorder {
	r := &Recorder{}
	r.Add(Event{Time: 0, Job: "j", Kind: JobSubmit})
	r.Add(Event{Time: 1, Job: "j", Kind: TaskStart, TaskType: "map", TaskID: 0, Node: "node00"})
	r.Add(Event{Time: 2, Job: "j", Kind: TaskStart, TaskType: "map", TaskID: 1, Node: "node01"})
	r.Add(Event{Time: 5, Job: "j", Kind: TaskFinish, TaskType: "map", TaskID: 0, Node: "node00"})
	r.Add(Event{Time: 7, Job: "j", Kind: TaskFinish, TaskType: "map", TaskID: 1, Node: "node01"})
	r.Add(Event{Time: 8, Job: "j", Kind: JobFinish})
	return r
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{Time: 1}) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder misbehaved")
	}
	if !strings.Contains(r.Gantt(20), "empty") {
		t.Fatal("nil recorder Gantt should be empty")
	}
}

func TestEventsCopied(t *testing.T) {
	r := sampleTrace()
	ev := r.Events()
	ev[0].Job = "mutated"
	if r.Events()[0].Job != "j" {
		t.Fatal("Events() exposed internal storage")
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("JSONL lines = %d, want 6", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != TaskStart || e.Node != "node00" {
		t.Fatalf("decoded event wrong: %+v", e)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // header + 6 events
		t.Fatalf("CSV lines = %d, want 7", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time,job,kind") {
		t.Fatalf("bad CSV header: %s", lines[0])
	}
}

func TestGanttShowsBusyNodes(t *testing.T) {
	g := sampleTrace().Gantt(40)
	if !strings.Contains(g, "node00") || !strings.Contains(g, "node01") {
		t.Fatalf("Gantt missing node rows:\n%s", g)
	}
	// Both nodes were busy, so the chart must contain ramp characters.
	if !strings.ContainsAny(g, "▁▂▃▄▅▆▇█") {
		t.Fatalf("Gantt shows no occupancy:\n%s", g)
	}
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 { // axis + two nodes
		t.Fatalf("Gantt rows = %d, want 3:\n%s", len(lines), g)
	}
}

func TestGanttHandlesOOM(t *testing.T) {
	r := &Recorder{}
	r.Add(Event{Time: 0, Job: "j", Kind: TaskStart, TaskType: "map", TaskID: 0, Node: "n0"})
	r.Add(Event{Time: 3, Job: "j", Kind: TaskOOM, TaskType: "map", TaskID: 0, Node: "n0"})
	g := r.Gantt(20)
	if !strings.Contains(g, "n0") {
		t.Fatalf("OOM span not rendered:\n%s", g)
	}
}

func TestGanttMinWidth(t *testing.T) {
	g := sampleTrace().Gantt(1) // clamped up, must not panic
	if len(g) == 0 {
		t.Fatal("empty gantt")
	}
}

func TestStats(t *testing.T) {
	r := &Recorder{}
	r.Add(Event{Time: 0, Job: "j", Kind: JobSubmit})
	r.Add(Event{Time: 1, Job: "j", Kind: TaskStart, TaskType: "map", TaskID: 0, Node: "n0"})
	r.Add(Event{Time: 5, Job: "j", Kind: TaskFinish, TaskType: "map", TaskID: 0, Node: "n0"})
	r.Add(Event{Time: 3, Job: "j", Kind: TaskStart, TaskType: "reduce", TaskID: 0, Node: "n1"})
	r.Add(Event{Time: 9, Job: "j", Kind: TaskFinish, TaskType: "reduce", TaskID: 0, Node: "n1"})
	r.Add(Event{Time: 4, Job: "j", Kind: TaskOOM, TaskType: "map", TaskID: 1})
	r.Add(Event{Time: 9, Job: "j", Kind: JobFinish})

	stats := r.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats jobs = %d", len(stats))
	}
	s := stats[0]
	if s.Duration() != 9 {
		t.Fatalf("duration = %v", s.Duration())
	}
	if s.MapPhaseSecs() != 5 || s.ReduceTailSecs() != 4 {
		t.Fatalf("phases = %v/%v", s.MapPhaseSecs(), s.ReduceTailSecs())
	}
	if s.MapStarts != 1 || s.RedStarts != 1 || s.OOMs != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.FirstRedStat != 3 {
		t.Fatalf("first reduce start = %v", s.FirstRedStat)
	}
}

func TestStatsMultiJobOrder(t *testing.T) {
	r := &Recorder{}
	r.Add(Event{Time: 0, Job: "a", Kind: JobSubmit})
	r.Add(Event{Time: 1, Job: "b", Kind: JobSubmit})
	r.Add(Event{Time: 2, Job: "a", Kind: JobFinish})
	r.Add(Event{Time: 3, Job: "b", Kind: JobFinish})
	stats := r.Stats()
	if len(stats) != 2 || stats[0].Job != "a" || stats[1].Job != "b" {
		t.Fatalf("order wrong: %+v", stats)
	}
}
