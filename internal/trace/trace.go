// Package trace records job execution timelines: task lifecycle
// events with timestamps and node placement. Traces export as JSON
// Lines or CSV for external tooling, and render as an ASCII per-node
// utilization Gantt for quick terminal inspection — the observability
// layer a performance-tuning system needs.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies a timeline event.
type Kind string

const (
	JobSubmit  Kind = "job_submit"
	TaskStart  Kind = "task_start"
	TaskFinish Kind = "task_finish"
	TaskOOM    Kind = "task_oom"
	TaskKilled Kind = "task_killed"
	JobFinish  Kind = "job_finish"

	// Fault-injection and recovery events (see internal/faults).
	NodeDown   Kind = "node_down"   // a node crashed (Job is "cluster")
	NodeUp     Kind = "node_up"     // a crashed node was restored
	TaskFailed Kind = "task_failed" // an attempt failed (non-OOM)
	FetchFail  Kind = "fetch_fail"  // a shuffle fetch failed
	ReexecMap  Kind = "reexec_map"  // a completed map re-runs: output lost
)

// Event is one timeline entry.
type Event struct {
	Time     float64 `json:"t"`
	Job      string  `json:"job"`
	Kind     Kind    `json:"kind"`
	TaskType string  `json:"task_type,omitempty"`
	TaskID   int     `json:"task_id,omitempty"`
	Attempt  int     `json:"attempt,omitempty"`
	Node     string  `json:"node,omitempty"`
	Detail   string  `json:"detail,omitempty"`
}

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder is a valid no-op sink, so call sites need no guards.
type Recorder struct {
	events []Event
}

// Add appends one event. No-op on a nil recorder.
func (r *Recorder) Add(e Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, e) //mrlint:ignore retained-append Recorder is the opt-in retained sink; serving paths use StatsSink/RingSink
}

// Events returns a copy of the recorded events in insertion order
// (which is time order, since the simulation is single-threaded).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// WriteJSONL streams the trace as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode event: %w", err)
		}
	}
	return nil
}

// WriteCSV streams the trace as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "job", "kind", "task_type", "task_id", "attempt", "node", "detail"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, e := range r.Events() {
		rec := []string{
			strconv.FormatFloat(e.Time, 'f', 3, 64),
			e.Job, string(e.Kind), e.TaskType,
			strconv.Itoa(e.TaskID), strconv.Itoa(e.Attempt),
			e.Node, e.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// span is one task occupancy interval on a node.
type span struct {
	node       string
	start, end float64
	taskType   string
}

// spans pairs start/finish events per (job, type, id, attempt).
func (r *Recorder) spans() []span {
	type key struct {
		job, tt string
		id, att int
	}
	open := map[key]Event{}
	var out []span
	for _, e := range r.Events() {
		k := key{e.Job, e.TaskType, e.TaskID, e.Attempt}
		switch e.Kind {
		case TaskStart:
			open[k] = e
		case TaskFinish, TaskOOM, TaskKilled, TaskFailed:
			if s, ok := open[k]; ok {
				out = append(out, span{node: s.Node, start: s.Time, end: e.Time, taskType: s.TaskType})
				delete(open, k)
			}
		}
	}
	return out
}

// Gantt renders a per-node occupancy chart of the trace, `width`
// character columns wide. Each cell shows how many tasks overlapped
// that node in that time bucket (blank, ▁▂▃▄▅▆▇█ ramp).
func (r *Recorder) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	spans := r.spans()
	if len(spans) == 0 {
		return "(empty trace)\n"
	}
	tmin, tmax := spans[0].start, spans[0].end
	nodes := map[string]bool{}
	for _, s := range spans {
		if s.start < tmin {
			tmin = s.start
		}
		if s.end > tmax {
			tmax = s.end
		}
		nodes[s.node] = true
	}
	if tmax <= tmin {
		tmax = tmin + 1
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	ramp := []rune(" ▁▂▃▄▅▆▇█")
	bucket := (tmax - tmin) / float64(width)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %s\n", "node", timeAxis(tmin, tmax, width))
	for _, name := range names {
		counts := make([]int, width)
		for _, s := range spans {
			if s.node != name {
				continue
			}
			lo := int((s.start - tmin) / bucket)
			hi := int((s.end - tmin) / bucket)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				counts[i]++
			}
		}
		row := make([]rune, width)
		for i, c := range counts {
			idx := c
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			row[i] = ramp[idx]
		}
		fmt.Fprintf(&b, "%-8s %s\n", name, string(row))
	}
	return b.String()
}

func timeAxis(tmin, tmax float64, width int) string {
	left := fmt.Sprintf("%.0fs", tmin)
	right := fmt.Sprintf("%.0fs", tmax)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	return left + strings.Repeat("-", pad) + right
}

// JobStats summarizes one job's timeline: phase boundaries and attempt
// outcomes, derived purely from the event stream.
type JobStats struct {
	Job          string
	SubmitTime   float64
	FinishTime   float64
	MapStarts    int
	MapFinishes  int
	RedStarts    int
	RedFinishes  int
	OOMs         int
	Kills        int
	Failures     int // injected attempt failures (task_failed)
	NodeDowns    int
	NodeUps      int
	MapReexecs   int
	LastMapEnd   float64
	FirstRedStat float64 // first reduce task start (slowstart point)
}

// Duration returns the job's wall-clock span.
func (s JobStats) Duration() float64 { return s.FinishTime - s.SubmitTime }

// MapPhaseSecs returns the time from submission to the last map finish.
func (s JobStats) MapPhaseSecs() float64 { return s.LastMapEnd - s.SubmitTime }

// ReduceTailSecs returns the time after the last map finished.
func (s JobStats) ReduceTailSecs() float64 { return s.FinishTime - s.LastMapEnd }

// Stats computes per-job summaries from the recorded events, keyed by
// job name, in first-appearance order.
func (r *Recorder) Stats() []JobStats {
	byJob := map[string]*JobStats{}
	var order []string
	get := func(job string) *JobStats {
		s, ok := byJob[job]
		if !ok {
			s = &JobStats{Job: job, FirstRedStat: -1}
			byJob[job] = s
			order = append(order, job)
		}
		return s
	}
	for _, e := range r.Events() {
		s := get(e.Job)
		switch e.Kind {
		case JobSubmit:
			s.SubmitTime = e.Time
		case JobFinish:
			s.FinishTime = e.Time
		case TaskStart:
			if e.TaskType == "map" {
				s.MapStarts++
			} else {
				s.RedStarts++
				if s.FirstRedStat < 0 {
					s.FirstRedStat = e.Time
				}
			}
		case TaskFinish:
			if e.TaskType == "map" {
				s.MapFinishes++
				if e.Time > s.LastMapEnd {
					s.LastMapEnd = e.Time
				}
			} else {
				s.RedFinishes++
			}
		case TaskOOM:
			s.OOMs++
		case TaskKilled:
			s.Kills++
		case TaskFailed:
			s.Failures++
		case NodeDown:
			s.NodeDowns++
		case NodeUp:
			s.NodeUps++
		case ReexecMap:
			s.MapReexecs++
		}
	}
	out := make([]JobStats, 0, len(order))
	for _, job := range order {
		out = append(out, *byJob[job])
	}
	return out
}
