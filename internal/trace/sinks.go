package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Sink consumes timeline events as they happen. The continuous-serving
// path emits tens of events per job for thousands of jobs, so sinks are
// the contract that lets callers choose their memory/fidelity tradeoff:
//
//	*Recorder   keeps every event in memory (grows with the run)
//	Discard     drops everything (zero cost)
//	*JSONLSink  streams each event to an io.Writer (flat memory)
//	*RingSink   keeps only the most recent N events (flat memory)
//	*StatsSink  folds events into per-class aggregates (flat memory)
//
// Add must not retain the Event past the call (it is passed by value,
// so this is automatic for the sinks here). Sinks are not safe for
// concurrent use; the simulation delivers events single-threaded.
type Sink interface {
	Add(Event)
}

var _ Sink = (*Recorder)(nil)

// Discard is a Sink that drops every event. Use it instead of a nil
// interface so call sites never need a nil guard.
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) Add(Event) {}

// JSONLSink streams each event as one JSON line to an io.Writer the
// moment it is added, retaining nothing. The first encoding error
// sticks and silences the sink; check Err after the run.
type JSONLSink struct {
	enc *json.Encoder
	n   int
	err error
}

// NewJSONLSink wraps w in a streaming JSON Lines sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Add encodes the event immediately. No-op after the first error.
func (s *JSONLSink) Add(e Event) {
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.err = fmt.Errorf("trace: encode event: %w", err)
		return
	}
	s.n++
}

// Len returns the number of events successfully encoded.
func (s *JSONLSink) Len() int { return s.n }

// Err returns the first encoding error, if any.
func (s *JSONLSink) Err() error { return s.err }

// RingSink keeps the most recent events in a fixed-capacity ring
// buffer. Add is allocation-free after construction, so a RingSink in
// the steady-state loop costs O(capacity) memory no matter how long
// the stream runs — the "flight recorder" mode for postmortems.
type RingSink struct {
	buf   []Event
	next  int
	count int
	total int
}

// NewRingSink returns a ring that retains the last capacity events
// (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Add stores the event, evicting the oldest once full. Never allocates.
func (s *RingSink) Add(e Event) {
	s.buf[s.next] = e
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
	}
	if s.count < len(s.buf) {
		s.count++
	}
	s.total++
}

// Len returns the number of retained events (≤ capacity).
func (s *RingSink) Len() int { return s.count }

// Total returns the number of events ever added, retained or not.
func (s *RingSink) Total() int { return s.total }

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	out := make([]Event, 0, s.count)
	if s.count < len(s.buf) {
		return append(out, s.buf[:s.count]...)
	}
	out = append(out, s.buf[s.next:]...)
	return append(out, s.buf[:s.next]...)
}

// Tee fans every event out to each sink in order. Use it to combine a
// flat-memory aggregate (StatsSink) with a retained or streamed copy.
func Tee(sinks ...Sink) Sink {
	out := make(teeSink, len(sinks))
	copy(out, sinks)
	return out
}

type teeSink []Sink

func (t teeSink) Add(e Event) {
	for _, s := range t {
		s.Add(e)
	}
}

// durBuckets is the geometric histogram resolution of ClassStats:
// bucket i covers durations [durBase^i, durBase^(i+1)) seconds, so 64
// buckets at ratio 1.25 span one second to ~1.6e6 s (18 days) with
// ≤25% relative error — plenty for a latency table without retaining
// per-job samples.
const (
	durBuckets = 64
	durBase    = 1.25
)

// ClassStats aggregates one job class's outcomes. What it deliberately
// drops relative to a Recorder: per-event timestamps, node placement,
// attempt identity, and exact latency samples (durations survive only
// as min/max/sum and the geometric histogram).
type ClassStats struct {
	Jobs        int // finished jobs
	Submitted   int
	MapStarts   int
	MapFinishes int
	RedStarts   int
	RedFinishes int
	OOMs        int
	Kills       int
	Failures    int
	FetchFails  int
	MapReexecs  int

	DurMin float64
	DurMax float64
	DurSum float64

	durHist [durBuckets]int
}

// MeanDuration returns the mean completion latency of finished jobs.
func (c *ClassStats) MeanDuration() float64 {
	if c.Jobs == 0 {
		return 0
	}
	return c.DurSum / float64(c.Jobs)
}

// ApproxPercentile returns the p-th percentile of job latency from the
// geometric histogram (≤25% relative error), p in [0, 100].
func (c *ClassStats) ApproxPercentile(p float64) float64 {
	if c.Jobs == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(c.Jobs)))
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for i, n := range c.durHist {
		seen += n
		if seen >= rank {
			// Geometric midpoint of the bucket.
			return math.Pow(durBase, float64(i)+0.5)
		}
	}
	return c.DurMax
}

// merge folds o into c: counters and the histogram sum; the duration
// extremes only move when o actually finished jobs.
func (c *ClassStats) merge(o *ClassStats) {
	if o.Jobs > 0 {
		if c.Jobs == 0 || o.DurMin < c.DurMin {
			c.DurMin = o.DurMin
		}
		if o.DurMax > c.DurMax {
			c.DurMax = o.DurMax
		}
	}
	c.Jobs += o.Jobs
	c.Submitted += o.Submitted
	c.MapStarts += o.MapStarts
	c.MapFinishes += o.MapFinishes
	c.RedStarts += o.RedStarts
	c.RedFinishes += o.RedFinishes
	c.OOMs += o.OOMs
	c.Kills += o.Kills
	c.Failures += o.Failures
	c.FetchFails += o.FetchFails
	c.MapReexecs += o.MapReexecs
	c.DurSum += o.DurSum
	for i, n := range o.durHist {
		c.durHist[i] += n
	}
}

func (c *ClassStats) observeDuration(d float64) {
	if c.Jobs == 0 || d < c.DurMin {
		c.DurMin = d
	}
	if d > c.DurMax {
		c.DurMax = d
	}
	c.DurSum += d
	c.Jobs++
	i := 0
	if d > 1 {
		i = int(math.Log(d) / math.Log(durBase))
	}
	if i >= durBuckets {
		i = durBuckets - 1
	}
	c.durHist[i]++
}

// StatsSink folds the event stream into per-class counters, keeping
// memory proportional to the number of job *classes* plus the jobs
// currently in flight — not the jobs ever submitted. It is the sink
// the continuous-serving benchmark asserts flat memory with.
type StatsSink struct {
	// Classify maps a job name to its class. The default strips the
	// trailing "-<suffix>" (so "terasort-00042" → "terasort"); cluster
	// events (node up/down) land in class "cluster".
	Classify func(job string) string

	events   int
	classes  map[string]*ClassStats
	order    []string
	inflight map[string]float64 // job name → submit time
}

// NewStatsSink returns an empty aggregating sink.
func NewStatsSink() *StatsSink {
	return &StatsSink{
		classes:  make(map[string]*ClassStats),
		inflight: make(map[string]float64),
	}
}

// DefaultClassify strips the trailing "-<suffix>" from a job name.
func DefaultClassify(job string) string {
	for i := len(job) - 1; i >= 0; i-- {
		if job[i] == '-' {
			return job[:i]
		}
	}
	return job
}

func (s *StatsSink) class(job string) *ClassStats {
	name := job
	if s.Classify != nil {
		name = s.Classify(job)
	} else {
		name = DefaultClassify(job)
	}
	c, ok := s.classes[name]
	if !ok {
		c = &ClassStats{}
		s.classes[name] = c
		s.order = append(s.order, name) //mrlint:ignore retained-append one entry per job class, bounded by the mix not the stream
	}
	return c
}

// Add folds one event into its class's aggregate. Per-job state (the
// submit time) lives only between JobSubmit and JobFinish.
func (s *StatsSink) Add(e Event) {
	s.events++
	c := s.class(e.Job)
	switch e.Kind {
	case JobSubmit:
		c.Submitted++
		s.inflight[e.Job] = e.Time
	case JobFinish:
		if t0, ok := s.inflight[e.Job]; ok {
			c.observeDuration(e.Time - t0)
			delete(s.inflight, e.Job)
		}
	case TaskStart:
		if e.TaskType == "map" {
			c.MapStarts++
		} else {
			c.RedStarts++
		}
	case TaskFinish:
		if e.TaskType == "map" {
			c.MapFinishes++
		} else {
			c.RedFinishes++
		}
	case TaskOOM:
		c.OOMs++
	case TaskKilled:
		c.Kills++
	case TaskFailed:
		c.Failures++
	case FetchFail:
		c.FetchFails++
	case ReexecMap:
		c.MapReexecs++
	}
}

// EventCount returns the total number of events ingested — the flat-
// memory witness: it grows with the stream while the sink's retained
// state does not.
func (s *StatsSink) EventCount() int { return s.events }

// InFlight returns the number of submitted-but-unfinished jobs.
func (s *StatsSink) InFlight() int { return len(s.inflight) }

// Classes returns the class names sorted alphabetically.
func (s *StatsSink) Classes() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	sort.Strings(out)
	return out
}

// Class returns a copy of one class's aggregate (zero value if absent).
func (s *StatsSink) Class(name string) ClassStats {
	if c, ok := s.classes[name]; ok {
		return *c
	}
	return ClassStats{}
}

// Overall merges every class into one fleet-level aggregate: counters
// sum, duration min/max/sum and the geometric histogram fold together,
// so MeanDuration and ApproxPercentile work on the result. Classes
// merge in sorted-name order so the float sums are deterministic.
func (s *StatsSink) Overall() ClassStats {
	var out ClassStats
	for _, name := range s.Classes() {
		out.merge(s.classes[name])
	}
	return out
}

// Merge folds another sink's aggregates into s, class by class in o's
// insertion order (names are already classified, so o's classes land
// verbatim). Event counts sum; o's in-flight jobs are not carried over
// — a merged sink is expected to be quiescent. Rack-cell serving uses
// this to fold each cell's private sink into the run-level one.
func (s *StatsSink) Merge(o *StatsSink) {
	s.events += o.events
	for _, name := range o.order {
		c, ok := s.classes[name]
		if !ok {
			c = &ClassStats{}
			s.classes[name] = c
			s.order = append(s.order, name) //mrlint:ignore retained-append one entry per job class, bounded by the mix not the stream
		}
		c.merge(o.classes[name])
	}
}

// WriteSummary renders a deterministic per-class table, classes in
// alphabetical order.
func (s *StatsSink) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "%-14s %6s %6s %6s %8s %8s %8s\n",
		"class", "jobs", "maps", "reds", "mean(s)", "p99~(s)", "max(s)")
	for _, name := range s.Classes() {
		c := s.classes[name]
		fmt.Fprintf(w, "%-14s %6d %6d %6d %8.0f %8.0f %8.0f\n",
			name, c.Jobs, c.MapFinishes, c.RedFinishes,
			c.MeanDuration(), c.ApproxPercentile(99), c.DurMax)
	}
}
