package trace

import (
	"strings"
	"testing"
)

func streamEvents(n int) []Event {
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		job := "wordcount-00001"
		if i%3 == 1 {
			job = "terasort-00002"
		}
		e := Event{Time: float64(i), Job: job, Kind: TaskStart, TaskType: "map"}
		switch i % 5 {
		case 3:
			e.Kind = JobSubmit
		case 4:
			e.Kind = JobFinish
		}
		out = append(out, e)
	}
	return out
}

// TestRingSinkAddZeroAlloc pins the flight-recorder contract: once the
// ring is constructed, Add never allocates, no matter how long the
// stream runs.
func TestRingSinkAddZeroAlloc(t *testing.T) {
	s := NewRingSink(64)
	e := Event{Time: 1, Job: "terasort-00042", Kind: TaskStart, TaskType: "map", Node: "n1"}
	if avg := testing.AllocsPerRun(1000, func() {
		s.Add(e)
	}); avg != 0 {
		t.Fatalf("RingSink.Add allocates %v per run; want 0", avg)
	}
	if s.Len() != 64 {
		t.Fatalf("ring retains %d events; want capacity 64", s.Len())
	}
}

// TestRingSinkEviction checks ordering and eviction semantics.
func TestRingSinkEviction(t *testing.T) {
	s := NewRingSink(4)
	for _, e := range streamEvents(10) {
		s.Add(e)
	}
	got := s.Events()
	if len(got) != 4 || s.Total() != 10 {
		t.Fatalf("ring holds %d events of %d total; want 4 of 10", len(got), s.Total())
	}
	for i, e := range got {
		if want := float64(6 + i); e.Time != want {
			t.Fatalf("ring[%d].Time = %v; want %v (oldest-first, last 4 retained)", i, e.Time, want)
		}
	}
}

// TestStatsSinkAggregatesAndOverall checks the per-class fold and the
// merged fleet-level aggregate.
func TestStatsSinkAggregatesAndOverall(t *testing.T) {
	s := NewStatsSink()
	now := 0.0
	for job, dur := range map[string]float64{"wordcount-00001": 40, "wordcount-00002": 80, "terasort-00001": 400} {
		s.Add(Event{Time: now, Job: job, Kind: JobSubmit})
		s.Add(Event{Time: now + 1, Job: job, Kind: TaskStart, TaskType: "map"})
		s.Add(Event{Time: now + dur - 1, Job: job, Kind: TaskFinish, TaskType: "map"})
		s.Add(Event{Time: now + dur, Job: job, Kind: JobFinish})
		now += 1000
	}
	wc := s.Class("wordcount")
	if wc.Jobs != 2 || wc.MeanDuration() != 60 || wc.MapFinishes != 2 {
		t.Fatalf("wordcount aggregate = %+v", wc)
	}
	all := s.Overall()
	if all.Jobs != 3 || all.DurMin != 40 || all.DurMax != 400 {
		t.Fatalf("overall aggregate = %+v", all)
	}
	if p := all.ApproxPercentile(99); p < 300 || p > 500 {
		t.Fatalf("overall p99 = %v; want ~400 (≤25%% bucket error)", p)
	}
	if s.InFlight() != 0 || s.EventCount() != 12 {
		t.Fatalf("inflight=%d events=%d", s.InFlight(), s.EventCount())
	}
	var b strings.Builder
	s.WriteSummary(&b)
	if !strings.Contains(b.String(), "terasort") || !strings.Contains(b.String(), "p99~(s)") {
		t.Fatalf("summary missing expected columns:\n%s", b.String())
	}
}

// TestStatsSinkMerge checks that splitting a stream across sinks and
// merging yields the same aggregates as one sink seeing everything.
func TestStatsSinkMerge(t *testing.T) {
	jobs := map[string]float64{"wordcount-00001": 40, "wordcount-00002": 80, "terasort-00001": 400}
	feed := func(s *StatsSink, job string, dur float64) {
		s.Add(Event{Time: 0, Job: job, Kind: JobSubmit})
		s.Add(Event{Time: 1, Job: job, Kind: TaskStart, TaskType: "map"})
		s.Add(Event{Time: dur - 1, Job: job, Kind: TaskFinish, TaskType: "map"})
		s.Add(Event{Time: dur, Job: job, Kind: JobFinish})
	}
	whole := NewStatsSink()
	master := NewStatsSink()
	for job, dur := range jobs {
		feed(whole, job, dur)
		cell := NewStatsSink()
		feed(cell, job, dur)
		master.Merge(cell)
	}
	if master.EventCount() != whole.EventCount() {
		t.Fatalf("merged events = %d; want %d", master.EventCount(), whole.EventCount())
	}
	if got, want := master.Classes(), whole.Classes(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("merged classes = %v; want %v", got, want)
	}
	for _, name := range whole.Classes() {
		if got, want := master.Class(name), whole.Class(name); got != want {
			t.Fatalf("class %s: merged %+v != whole %+v", name, got, want)
		}
	}
	if got, want := master.Overall(), whole.Overall(); got != want {
		t.Fatalf("merged overall %+v != whole %+v", got, want)
	}
}
