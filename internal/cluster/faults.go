package cluster

// Node failure and recovery at the hardware layer. A crash kills every
// flow touching the node — its CPU and disk fabrics and both NIC
// directions — and notifies subscribers (the HDFS namenode and the YARN
// resource manager in the full stack) so each layer can run its own
// recovery protocol. Memory accounting is NOT touched here: containers
// on the node are still "allocated" until YARN declares the node lost
// and releases them, mirroring the real RM/NM split where the RM's
// bookkeeping outlives the dead NodeManager until the liveness monitor
// expires it.

// SubscribeNodeState registers fn to be invoked whenever a node crashes
// (down=true) or is restored (down=false). Callbacks run synchronously
// from KillNode/RestoreNode, in registration order — construction order
// of the subscribing layers therefore fixes the recovery ordering and
// keeps same-seed runs reproducible.
func (c *Cluster) SubscribeNodeState(fn func(n *Node, down bool)) {
	c.nodeListeners = append(c.nodeListeners, fn) //mrlint:ignore retained-append one subscription per layer, registered at construction
}

// SubscribeNodeStateRack registers a rack-scoped node-state listener:
// fn sees only rack's nodes, and runs after every global listener.
// Rack-cell layers (a scoped RM or namenode owning one rack) subscribe
// here so a rack shard's fault callback never touches another rack's
// state. Only valid in RackLocalNet mode, where the listener table is
// per rack.
func (c *Cluster) SubscribeNodeStateRack(rack int, fn func(n *Node, down bool)) {
	if c.rackListeners == nil {
		panic("cluster: SubscribeNodeStateRack needs RackLocalNet mode")
	}
	c.rackListeners[rack] = append(c.rackListeners[rack], fn) //mrlint:ignore retained-append one subscription per layer, registered at construction
}

// KillNode crashes a node: every in-flight flow on its CPU, disk and
// NIC links is aborted (remote peers learn of it through each flow's
// OnAbort callback), the node stops accepting new work, and subscribers
// are notified. Killing an already-down node is a no-op.
func (c *Cluster) KillNode(n *Node) {
	if n.down {
		return
	}
	n.down = true
	c.FaultsFor(n.Rack).NodesDowned++
	// Node-private fabrics: every flow in them belongs to this node.
	// Abort mutates the flow list by swap-removal, so drain from the
	// tail.
	for _, fb := range []*Fabric{n.cpu, n.disk} {
		for len(fb.flows) > 0 {
			fb.Abort(fb.flows[len(fb.flows)-1])
		}
	}
	// Network flows crossing either NIC direction: collect first, since
	// aborting rewrites the membership lists. A flow never appears on
	// both lists (same-node transfers carry no links), and Abort is
	// idempotent regardless. Each flow is aborted on its owning fabric
	// (the shared one, or the rack fabric in RackLocalNet mode).
	nic := make([]*Flow, 0, len(n.NICIn.flows)+len(n.NICOut.flows))
	nic = append(nic, n.NICIn.flows...)
	nic = append(nic, n.NICOut.flows...)
	for _, f := range nic {
		f.fabric.Abort(f)
	}
	for _, fn := range c.nodeListeners {
		fn(n, true)
	}
	if c.rackListeners != nil {
		for _, fn := range c.rackListeners[n.Rack] {
			fn(n, true)
		}
	}
}

// RestoreNode brings a crashed node back as an empty machine: no flows,
// no replicas recovered (a real restart comes back with a wiped or
// stale disk — HDFS re-replication is what restores the data), and
// subscribers are notified so YARN can re-admit it. Restoring a live
// node is a no-op.
func (c *Cluster) RestoreNode(n *Node) {
	if !n.down {
		return
	}
	n.down = false
	c.FaultsFor(n.Rack).NodesRestored++
	for _, fn := range c.nodeListeners {
		fn(n, false)
	}
	if c.rackListeners != nil {
		for _, fn := range c.rackListeners[n.Rack] {
			fn(n, false)
		}
	}
}
