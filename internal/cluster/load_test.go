package cluster

import (
	"testing"

	"repro/internal/sim"
)

func TestInstantaneousLoads(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	if n.CPULoad() != 0 || n.DiskLoad() != 0 {
		t.Fatal("idle node reports load")
	}
	n.Compute(1000, 4, nil)
	n.DiskWrite(10000, nil)
	eng.RunUntil(0.001)
	if got := n.CPULoad(); !almostEqual(got, 0.5, 1e-9) {
		t.Fatalf("CPULoad = %v, want 0.5 (4 of 8 cores)", got)
	}
	if got := n.DiskLoad(); !almostEqual(got, 1.0, 1e-9) {
		t.Fatalf("DiskLoad = %v, want 1.0", got)
	}
}

func TestInjectDiskLoadCompetesFairly(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	// One background hog capped at 60 MB/s plus one task flow: each
	// gets the 45 MB/s fair share while both are active.
	n.InjectDiskLoad(60, 100, nil)
	var taskDone float64
	n.DiskRead(45, func() { taskDone = eng.Now() })
	eng.RunUntil(2)
	if !almostEqual(taskDone, 1, 1e-6) {
		t.Fatalf("task finished at %v, want 1 (45 MB at fair-share 45 MB/s)", taskDone)
	}
}

func TestInjectCPULoadExpires(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	fired := false
	n.InjectCPULoad(2, 5, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("background CPU load never completed")
	}
	// 2 cores * 5 s = 10 core-seconds at up to 2 cores: exactly 5 s.
	if !almostEqual(eng.Now(), 5, 1e-6) {
		t.Fatalf("background load ran until %v, want 5", eng.Now())
	}
	if n.CPULoad() != 0 {
		t.Fatal("load did not drop after expiry")
	}
}

func TestManyInjectedFlowsHogNode(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	for k := 0; k < 8; k++ {
		n.InjectDiskLoad(30, 100, nil)
	}
	var taskDone float64
	n.DiskRead(10, func() { taskDone = eng.Now() })
	eng.RunUntil(5)
	// 9 flows share 90 MB/s: the task reads at 10 MB/s.
	if !almostEqual(taskDone, 1, 1e-6) {
		t.Fatalf("task under 8 background flows finished at %v, want 1", taskDone)
	}
}

func TestCancelFlowViaNode(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	fired := false
	f := n.DiskWrite(1e6, func() { fired = true })
	eng.RunUntil(1)
	n.CancelFlow(f)
	eng.Run()
	if fired {
		t.Fatal("canceled flow completed")
	}
	if !f.Done() {
		t.Fatal("canceled flow not marked done")
	}
	n.CancelFlow(nil) // harmless
}

func TestClusterTotals(t *testing.T) {
	_, c := newTestCluster(t)
	if got := c.TotalContainerMemMB(); got != 18*6*1024 {
		t.Fatalf("TotalContainerMemMB = %v", got)
	}
	if got := c.TotalVCores(); got != 18*28 {
		t.Fatalf("TotalVCores = %v", got)
	}
	if !c.SameRack(c.Racks[0][0], c.Racks[0][1]) {
		t.Fatal("SameRack false for rack mates")
	}
	if c.SameRack(c.Racks[0][0], c.Racks[1][0]) {
		t.Fatal("SameRack true across racks")
	}
	if c.Config().DiskMBps != PaperConfig().DiskMBps {
		t.Fatal("Config() does not round-trip")
	}
	if c.NetworkFabric() == nil {
		t.Fatal("no network fabric")
	}
	if c.Nodes[0].Cluster() != c {
		t.Fatal("node does not know its cluster")
	}
}

func TestFlowAccessors(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	f := n.DiskWrite(90, nil)
	if f.Remaining() != 90 {
		t.Fatalf("Remaining = %v", f.Remaining())
	}
	eng.RunUntil(0.001)
	if f.Rate() != 90 {
		t.Fatalf("Rate = %v, want full bandwidth", f.Rate())
	}
	if f.Done() {
		t.Fatal("flow done prematurely")
	}
	eng.Run()
	if !f.Done() {
		t.Fatal("flow not done after completion")
	}
}

func TestFabricActiveFlows(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "t")
	l := fb.AddLink("l", 10)
	fb.Start([]*Link{l}, 10, 0, nil)
	fb.Start([]*Link{l}, 10, 0, nil)
	if fb.ActiveFlows() != 2 {
		t.Fatalf("ActiveFlows = %d", fb.ActiveFlows())
	}
	eng.Run()
	if fb.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows after drain = %d", fb.ActiveFlows())
	}
}

func TestFlowCancelMethod(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	fired := false
	f := n.DiskWrite(1e6, func() { fired = true })
	eng.RunUntil(1)
	f.Cancel()
	f.Cancel() // idempotent
	eng.Run()
	if fired || !f.Done() {
		t.Fatal("Flow.Cancel misbehaved")
	}
}
