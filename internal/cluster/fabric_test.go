package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowFullBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	var doneAt float64 = -1
	fb.Start([]*Link{l}, 500, 0, func() { doneAt = eng.Now() })
	eng.Run()
	if !almostEqual(doneAt, 5, 1e-9) {
		t.Fatalf("flow finished at %v, want 5", doneAt)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	var t1, t2 float64
	fb.Start([]*Link{l}, 500, 0, func() { t1 = eng.Now() })
	fb.Start([]*Link{l}, 500, 0, func() { t2 = eng.Now() })
	eng.Run()
	// Both get 50 MB/s: both finish at t=10.
	if !almostEqual(t1, 10, 1e-9) || !almostEqual(t2, 10, 1e-9) {
		t.Fatalf("flows finished at %v, %v, want 10, 10", t1, t2)
	}
}

func TestShorterFlowReleasesBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	var tShort, tLong float64
	fb.Start([]*Link{l}, 100, 0, func() { tShort = eng.Now() })
	fb.Start([]*Link{l}, 500, 0, func() { tLong = eng.Now() })
	eng.Run()
	// Shared 50/50 until short finishes at t=2 (100/50); long then has
	// 400 left at 100 MB/s -> finishes at t=6.
	if !almostEqual(tShort, 2, 1e-9) {
		t.Fatalf("short flow finished at %v, want 2", tShort)
	}
	if !almostEqual(tLong, 6, 1e-9) {
		t.Fatalf("long flow finished at %v, want 6", tLong)
	}
}

func TestLateArrivalSlowsExisting(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	var tA, tB float64
	fb.Start([]*Link{l}, 400, 0, func() { tA = eng.Now() })
	eng.At(2, func() {
		fb.Start([]*Link{l}, 100, 0, func() { tB = eng.Now() })
	})
	eng.Run()
	// A runs alone 0..2 (200 done), then shares 50/50. B finishes at
	// t=4 (100 at 50). A has 200-100=100 left at t=4, full rate -> t=5.
	if !almostEqual(tB, 4, 1e-9) {
		t.Fatalf("B finished at %v, want 4", tB)
	}
	if !almostEqual(tA, 5, 1e-9) {
		t.Fatalf("A finished at %v, want 5", tA)
	}
}

func TestRateCapHonored(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	var tCapped, tFree float64
	fb.Start([]*Link{l}, 100, 10, func() { tCapped = eng.Now() })
	fb.Start([]*Link{l}, 450, 0, func() { tFree = eng.Now() })
	eng.Run()
	// Capped flow: 10 MB/s -> t=10. Free flow gets 90 MB/s -> t=5.
	if !almostEqual(tCapped, 10, 1e-9) {
		t.Fatalf("capped flow finished at %v, want 10", tCapped)
	}
	if !almostEqual(tFree, 5, 1e-9) {
		t.Fatalf("free flow finished at %v, want 5", tFree)
	}
}

func TestMultiLinkBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	fast := fb.AddLink("fast", 100)
	slow := fb.AddLink("slow", 20)
	var done float64
	fb.Start([]*Link{fast, slow}, 100, 0, func() { done = eng.Now() })
	eng.Run()
	if !almostEqual(done, 5, 1e-9) {
		t.Fatalf("flow through slow link finished at %v, want 5", done)
	}
}

func TestCrossLinkMaxMin(t *testing.T) {
	// Flow X uses links A and B; flow Y uses only A; flow Z uses only B.
	// A and B both 100. Max-min: X gets 50 on both, Y gets 50 on A,
	// Z gets 50 on B.
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	a := fb.AddLink("a", 100)
	b := fb.AddLink("b", 100)
	var tX, tY, tZ float64
	fb.Start([]*Link{a, b}, 50, 0, func() { tX = eng.Now() })
	fb.Start([]*Link{a}, 50, 0, func() { tY = eng.Now() })
	fb.Start([]*Link{b}, 50, 0, func() { tZ = eng.Now() })
	eng.Run()
	if !almostEqual(tX, 1, 1e-9) || !almostEqual(tY, 1, 1e-9) || !almostEqual(tZ, 1, 1e-9) {
		t.Fatalf("finish times %v %v %v, want all 1", tX, tY, tZ)
	}
}

func TestAsymmetricMaxMin(t *testing.T) {
	// Link a=100 shared by X (a only) and W (a+b), b=30 shared by W.
	// W is bottlenecked at b: W gets 30, X gets 70.
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	a := fb.AddLink("a", 100)
	b := fb.AddLink("b", 30)
	// Keep b saturated with another flow so W's share on b is 15:
	// flows on b: W and V -> 15 each. X on a gets 100-15=85.
	var tX float64
	fb.Start([]*Link{a, b}, 150, 0, nil)                   // W
	fb.Start([]*Link{b}, 1e9, 0, nil)                      // V keeps b busy forever
	fb.Start([]*Link{a}, 85, 0, func() { tX = eng.Now() }) // X
	eng.RunUntil(1.0001)
	if !almostEqual(tX, 1, 1e-6) {
		t.Fatalf("X finished at %v, want 1 (85 MB at 85 MB/s)", tX)
	}
}

func TestCancelFlow(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	fired := false
	var tOther float64
	f := fb.Start([]*Link{l}, 1000, 0, func() { fired = true })
	fb.Start([]*Link{l}, 100, 0, func() { tOther = eng.Now() })
	eng.At(1, func() { fb.Cancel(f) })
	eng.Run()
	if fired {
		t.Fatal("canceled flow's done callback fired")
	}
	// Other flow: 50 MB/s for 1s (50 done), then 100 MB/s -> t=1.5.
	if !almostEqual(tOther, 1.5, 1e-9) {
		t.Fatalf("other flow finished at %v, want 1.5", tOther)
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	var done float64 = -1
	fb.Start([]*Link{l}, 0, 0, func() { done = eng.Now() })
	eng.Run()
	if done != 0 {
		t.Fatalf("zero-work flow finished at %v, want 0", done)
	}
}

func TestLinkUtilization(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	fb.Start([]*Link{l}, 100, 0, nil) // busy 0..1
	eng.Run()
	eng.RunUntil(2) // idle 1..2
	if u := l.Utilization(2); !almostEqual(u, 0.5, 1e-9) {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestCapOnlyFlowNoLinks(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	var done float64 = -1
	fb.Start(nil, 100, 25, func() { done = eng.Now() })
	eng.Run()
	if !almostEqual(done, 4, 1e-9) {
		t.Fatalf("cap-only flow finished at %v, want 4", done)
	}
}

func TestUncappedNoLinkPanics(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	defer func() {
		if recover() == nil {
			t.Fatal("no-link, no-cap flow did not panic")
		}
	}()
	fb.Start(nil, 100, 0, nil)
}

// Property: total work conserved — sum of flow works equals capacity
// integral delivered, i.e., all flows finish at times consistent with
// never exceeding the link capacity and fully using it while busy.
func TestWorkConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		works := make([]float64, 0, len(sizes))
		total := 0.0
		for _, s := range sizes {
			w := float64(s%1000) + 1
			works = append(works, w)
			total += w
		}
		if len(works) == 0 {
			return true
		}
		eng := sim.NewEngine()
		fb := NewFabric(eng.SystemShard(), "test")
		l := fb.AddLink("l", 50)
		last := 0.0
		for _, w := range works {
			fb.Start([]*Link{l}, w, 0, func() {
				if eng.Now() > last {
					last = eng.Now()
				}
			})
		}
		eng.Run()
		// All flows start at t=0 and the link is work-conserving, so the
		// last completion must be exactly total/capacity.
		return almostEqual(last, total/50, 1e-6*total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with per-flow caps, no completion happens earlier than
// work/cap and no later than if the flow had the link to itself plus
// waiting for all other traffic.
func TestCapBoundsProperty(t *testing.T) {
	f := func(sizes []uint16, capSeed uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		eng := sim.NewEngine()
		fb := NewFabric(eng.SystemShard(), "test")
		l := fb.AddLink("l", 80)
		type rec struct {
			work, cap float64
			at        float64
		}
		recs := make([]*rec, 0, len(sizes))
		totalWork := 0.0
		for i, s := range sizes {
			w := float64(s%500) + 1
			cap := float64((int(capSeed)+i)%40) + 1
			r := &rec{work: w, cap: cap}
			recs = append(recs, r)
			totalWork += w
			fb.Start([]*Link{l}, w, cap, func() { r.at = eng.Now() })
		}
		eng.Run()
		for _, r := range recs {
			if r.at < r.work/r.cap-1e-6 {
				return false // finished faster than its cap allows
			}
			if r.at > totalWork/80+r.work/r.cap+1e-6 {
				return false // took longer than the crude upper bound
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: under random churn (flows starting at random times, some
// canceled mid-flight), the fabric stays consistent — every
// non-canceled flow completes, no flow finishes faster than the link
// capacity allows, and link meters never exceed capacity.
func TestFabricChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		eng.MaxEvents = 1_000_000
		fb := NewFabric(eng.SystemShard(), "churn")
		links := []*Link{fb.AddLink("a", 50), fb.AddLink("b", 80), fb.AddLink("c", 20)}

		type rec struct {
			work     float64
			started  float64
			done     float64
			canceled bool
			flow     *Flow
		}
		var recs []*rec
		n := 20 + rng.Intn(30)
		for i := 0; i < n; i++ {
			start := rng.Float64() * 50
			work := 1 + rng.Float64()*200
			// Each flow crosses 1-2 random links.
			ls := []*Link{links[rng.Intn(len(links))]}
			if rng.Intn(2) == 0 {
				other := links[rng.Intn(len(links))]
				if other != ls[0] {
					ls = append(ls, other)
				}
			}
			r := &rec{work: work, started: start, done: -1}
			recs = append(recs, r)
			eng.At(start, func() {
				r.flow = fb.Start(ls, work, 0, func() { r.done = eng.Now() })
			})
			if rng.Intn(4) == 0 {
				// Cancel at a random later time.
				r.canceled = true
				eng.At(start+rng.Float64()*3, func() {
					if r.flow != nil {
						fb.Cancel(r.flow)
					}
				})
			}
		}
		eng.Run()
		for _, r := range recs {
			if r.canceled {
				continue
			}
			if r.done < 0 {
				return false // lost flow
			}
			// No flow can beat the fastest link.
			if r.done-r.started < r.work/80-1e-6 {
				return false
			}
		}
		// Capacity was never exceeded on any link.
		for _, l := range links {
			if l.used.Peak() > l.Capacity+1e-6 {
				return false
			}
		}
		return fb.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelInsideCompletionCascade cancels a flow from inside another
// flow's done callback, while the completion's own recompute cascade is
// conceptually still in flight. The cancel must take effect before any
// stale completion event for the canceled flow can fire.
func TestCancelInsideCompletionCascade(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	var b *Flow
	bFired := false
	cDone := -1.0
	// Three-way share (100/3 each) until A completes at t=3; A's
	// callback cancels B mid-cascade; C then runs alone.
	fb.Start([]*Link{l}, 100, 0, func() { b.Cancel() })
	b = fb.Start([]*Link{l}, 1000, 0, func() { bFired = true })
	fb.Start([]*Link{l}, 200, 0, func() { cDone = eng.Now() })
	eng.Run()
	if bFired {
		t.Fatal("flow canceled mid-cascade still fired its done callback")
	}
	// C: 100/3 rate for 3s (100 done), then 100 remaining at full rate.
	if !almostEqual(cDone, 4, 1e-9) {
		t.Fatalf("C completed at %v, want 4", cDone)
	}
	if fb.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after run, want 0", fb.ActiveFlows())
	}
}

// TestSimultaneousCompletionCancel: two identical flows complete at the
// same instant and each one's callback cancels the other. Scheduling
// order breaks the tie deterministically: exactly one callback runs.
func TestSimultaneousCompletionCancel(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	fired := 0
	var a, b *Flow
	a = fb.Start([]*Link{l}, 100, 0, func() { fired++; b.Cancel() })
	b = fb.Start([]*Link{l}, 100, 0, func() { fired++; a.Cancel() })
	eng.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want exactly 1 (first completion cancels the second)", fired)
	}
	if fb.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after run, want 0", fb.ActiveFlows())
	}
}

// TestRateCapExactlyAtFairShare: a cap equal to the fair share must
// freeze the flow at exactly the cap (0 + cap == cap in float), leaving
// its rate — and therefore its completion event — bit-stable while the
// other flow runs at the identical share.
func TestRateCapExactlyAtFairShare(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	tCapped, tFree := -1.0, -1.0
	capped := fb.Start([]*Link{l}, 100, 50, func() { tCapped = eng.Now() })
	fb.Start([]*Link{l}, 300, 0, func() { tFree = eng.Now() })
	if got := capped.Rate(); got != 50.0 {
		t.Fatalf("capped rate = %v, want exactly 50", got)
	}
	eng.Run()
	if tCapped != 2.0 {
		t.Fatalf("capped flow completed at %v, want exactly 2", tCapped)
	}
	// Free flow: 50 MB/s until t=2 (100 done), then alone: 200 at 100.
	if !almostEqual(tFree, 4, 1e-9) {
		t.Fatalf("free flow completed at %v, want 4", tFree)
	}
}

// TestStarvedFlowResumesAndCompletes: a flow squeezed to a near-zero
// rate by heavy contention must keep a valid completion event and
// finish promptly once the contention is canceled.
func TestStarvedFlowResumesAndCompletes(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	l := fb.AddLink("l", 100)
	victimDone := -1.0
	victim := fb.Start([]*Link{l}, 100, 0, func() { victimDone = eng.Now() })
	heavy := make([]*Flow, 400)
	for i := range heavy {
		heavy[i] = fb.Start([]*Link{l}, 1e12, 0, nil)
	}
	starvedRate := victim.Rate()
	if !almostEqual(starvedRate, 100.0/401, 1e-9) {
		t.Fatalf("starved rate = %v, want %v", starvedRate, 100.0/401)
	}
	eng.At(1, func() {
		for _, h := range heavy {
			h.Cancel()
		}
	})
	eng.Run()
	want := 1 + (100-starvedRate*1)/100
	if !almostEqual(victimDone, want, 1e-9) {
		t.Fatalf("victim completed at %v, want %v", victimDone, want)
	}
}

// TestUntouchedComponentKeepsExactSchedule: a flow alone on its own
// link completes at exactly work/capacity — bit-exact, not within a
// tolerance — even while a disjoint component churns, because the
// incremental recompute never touches its rate or completion event.
func TestUntouchedComponentKeepsExactSchedule(t *testing.T) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "test")
	la := fb.AddLink("a", 100)
	lb := fb.AddLink("b", 80)
	quietDone := -1.0
	fb.Start([]*Link{lb}, 400, 0, func() { quietDone = eng.Now() })
	// Churn the other component: overlapping starts and cancels on la.
	for k := 0; k < 50; k++ {
		k := k
		eng.At(0.09*float64(k), func() {
			f := fb.Start([]*Link{la}, 3, 0, nil)
			if k%3 == 0 {
				eng.After(0.05, func() { f.Cancel() })
			}
		})
	}
	eng.Run()
	if quietDone != 400.0/80 {
		t.Fatalf("quiet flow completed at %v, want exactly %v", quietDone, 400.0/80)
	}
}
