package cluster

import (
	"fmt"
)

// Node is one machine: a CPU pool, a container memory pool, one disk,
// and a full-duplex NIC. The disk and CPU each live in their own
// single-link fabric (contention is node-local); the NIC links live in
// the cluster-wide network fabric.
type Node struct {
	ID   int
	Name string
	Rack int

	// Cores is the physical compute capacity in core-seconds/second.
	Cores float64
	// VCores is the node manager's advertised virtual core count for
	// container allocation (yarn.nodemanager.resource.cpu-vcores minus
	// the daemon reservation).
	VCores int

	Mem *MemPool // container memory, MB

	cpu      *Fabric
	cpuLink  *Link
	disk     *Fabric
	diskLink *Link

	NICIn  *Link // receive direction, in the cluster network fabric
	NICOut *Link // transmit direction

	cluster *Cluster
}

// CoreRatio returns physical cores per vcore: a container holding v
// vcores may consume up to v*CoreRatio() physical cores (cgroup-style
// enforcement, as in the paper's utilization discussion).
func (n *Node) CoreRatio() float64 {
	return n.Cores / float64(n.VCores)
}

// Compute starts a CPU flow of cpuSeconds core-seconds, bounded by
// maxCores (the container's vcore allowance times CoreRatio, further
// capped by the phase's thread parallelism). done fires on completion.
func (n *Node) Compute(cpuSeconds, maxCores float64, done func()) *Flow {
	if maxCores <= 0 {
		panic(fmt.Sprintf("cluster: Compute on %s with non-positive core cap %v", n.Name, maxCores))
	}
	return n.cpu.Start([]*Link{n.cpuLink}, cpuSeconds, maxCores, done)
}

// DiskRead starts a disk flow of mb megabytes. Reads and writes share
// the single disk channel, as on the paper's one-SATA-disk nodes.
func (n *Node) DiskRead(mb float64, done func()) *Flow {
	return n.disk.Start([]*Link{n.diskLink}, mb, 0, done)
}

// DiskWrite starts a disk flow of mb megabytes.
func (n *Node) DiskWrite(mb float64, done func()) *Flow {
	return n.disk.Start([]*Link{n.diskLink}, mb, 0, done)
}

// CancelFlow aborts a flow previously started on this node's CPU or
// disk, or in the cluster network.
func (n *Node) CancelFlow(f *Flow) {
	if f == nil {
		return
	}
	f.fabric.Cancel(f)
}

// CPUUtilization returns the time-average fraction of physical cores
// busy through now.
func (n *Node) CPUUtilization(now float64) float64 { return n.cpuLink.Utilization(now) }

// DiskUtilization returns the time-average fraction of disk bandwidth
// busy through now.
func (n *Node) DiskUtilization(now float64) float64 { return n.diskLink.Utilization(now) }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// CPULoad returns the instantaneous fraction of physical cores busy —
// the "dynamic cluster utilization information" MRONLINE's monitor
// samples for hot-spot avoidance.
func (n *Node) CPULoad() float64 {
	return n.cpuLink.CurrentRate() / n.cpuLink.Capacity
}

// DiskLoad returns the instantaneous fraction of disk bandwidth busy.
func (n *Node) DiskLoad() float64 {
	return n.diskLink.CurrentRate() / n.diskLink.Capacity
}

// InjectDiskLoad starts background disk traffic on the node: up to
// `rate` MB/s (competing fairly with task I/O) for `duration` seconds.
// It models interference from co-located services — the cluster hot
// spots the paper's online tuning reacts to.
func (n *Node) InjectDiskLoad(rate, duration float64, done func()) *Flow {
	return n.disk.Start([]*Link{n.diskLink}, rate*duration, rate, done)
}

// InjectCPULoad starts a background computation using up to `cores`
// cores for `duration` seconds.
func (n *Node) InjectCPULoad(cores, duration float64, done func()) *Flow {
	return n.cpu.Start([]*Link{n.cpuLink}, cores*duration, cores, done)
}
