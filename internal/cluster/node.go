package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// Node is one machine: a CPU pool, a container memory pool, one disk,
// and a full-duplex NIC. The disk and CPU each live in their own
// single-link fabric (contention is node-local); the NIC links live in
// the cluster-wide network fabric.
type Node struct {
	ID   int
	Name string
	Rack int

	// Cores is the physical compute capacity in core-seconds/second.
	Cores float64
	// VCores is the node manager's advertised virtual core count for
	// container allocation (yarn.nodemanager.resource.cpu-vcores minus
	// the daemon reservation).
	VCores int

	Mem *MemPool // container memory, MB

	cpu      *Fabric
	cpuLink  *Link
	disk     *Fabric
	diskLink *Link
	// cpuLinks/diskLinks are persistent one-element link slices shared
	// by every flow on the node's single-link fabrics. The fabric never
	// mutates a flow's links slice, so the share is safe and saves one
	// allocation per Compute/DiskRead/DiskWrite.
	cpuLinks  []*Link
	diskLinks []*Link

	NICIn  *Link // receive direction, in the cluster network fabric
	NICOut *Link // transmit direction

	cluster *Cluster
	// shard is the rack shard owning this node's local resource
	// domains (CPU, disk, memory meter).
	shard *sim.Shard

	// down marks a crashed node (see Cluster.KillNode). While down, the
	// node accepts no new work; its fabrics still exist so that restore
	// is cheap, but every flow was aborted at crash time.
	down bool
}

// CoreRatio returns physical cores per vcore: a container holding v
// vcores may consume up to v*CoreRatio() physical cores (cgroup-style
// enforcement, as in the paper's utilization discussion).
func (n *Node) CoreRatio() float64 {
	return n.Cores / float64(n.VCores)
}

// Compute starts a CPU flow of cpuSeconds core-seconds, bounded by
// maxCores (the container's vcore allowance times CoreRatio, further
// capped by the phase's thread parallelism). done fires on completion.
func (n *Node) Compute(cpuSeconds, maxCores float64, done func()) *Flow {
	if maxCores <= 0 {
		panic(fmt.Sprintf("cluster: Compute on %s with non-positive core cap %v", n.Name, maxCores))
	}
	return n.cpu.Start(n.cpuLinks, cpuSeconds, maxCores, done)
}

// DiskRead starts a disk flow of mb megabytes. Reads and writes share
// the single disk channel, as on the paper's one-SATA-disk nodes.
func (n *Node) DiskRead(mb float64, done func()) *Flow {
	return n.disk.Start(n.diskLinks, mb, 0, done)
}

// DiskWrite starts a disk flow of mb megabytes.
func (n *Node) DiskWrite(mb float64, done func()) *Flow {
	return n.disk.Start(n.diskLinks, mb, 0, done)
}

// CancelFlow aborts a flow previously started on this node's CPU or
// disk, or in the cluster network.
func (n *Node) CancelFlow(f *Flow) {
	if f == nil {
		return
	}
	f.fabric.Cancel(f)
}

// CPUUtilization returns the time-average fraction of physical cores
// busy through now.
func (n *Node) CPUUtilization(now float64) float64 { return n.cpuLink.Utilization(now) }

// DiskUtilization returns the time-average fraction of disk bandwidth
// busy through now.
func (n *Node) DiskUtilization(now float64) float64 { return n.diskLink.Utilization(now) }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Shard returns the rack shard that owns this node's local state.
func (n *Node) Shard() *sim.Shard { return n.shard }

// CPULoad returns the instantaneous fraction of physical cores busy —
// the "dynamic cluster utilization information" MRONLINE's monitor
// samples for hot-spot avoidance.
func (n *Node) CPULoad() float64 {
	return n.cpuLink.CurrentRate() / n.cpuLink.Capacity
}

// DiskLoad returns the instantaneous fraction of disk bandwidth busy.
func (n *Node) DiskLoad() float64 {
	return n.diskLink.CurrentRate() / n.diskLink.Capacity
}

// InjectDiskLoad starts background disk traffic on the node: up to
// `rate` MB/s (competing fairly with task I/O) for `duration` seconds.
// It models interference from co-located services — the cluster hot
// spots the paper's online tuning reacts to.
func (n *Node) InjectDiskLoad(rate, duration float64, done func()) *Flow {
	return n.disk.Start(n.diskLinks, rate*duration, rate, done)
}

// InjectCPULoad starts a background computation using up to `cores`
// cores for `duration` seconds.
func (n *Node) InjectCPULoad(cores, duration float64, done func()) *Flow {
	return n.cpu.Start(n.cpuLinks, cores*duration, cores, done)
}

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// CPUCapacity returns the CPU link's current capacity in cores (equal
// to Cores unless fault injection degraded it).
func (n *Node) CPUCapacity() float64 { return n.cpuLink.Capacity }

// SetCPUCapacity rescales the node's CPU pool (fault injection: a slow
// or throttled node). Running flows continue at recomputed fair shares.
func (n *Node) SetCPUCapacity(cores float64) { n.cpu.SetCapacity(n.cpuLink, cores) }

// DiskBandwidth returns the disk link's current capacity in MB/s.
func (n *Node) DiskBandwidth() float64 { return n.diskLink.Capacity }

// SetDiskBandwidth rescales the node's disk channel (fault injection:
// a degraded disk).
func (n *Node) SetDiskBandwidth(mbps float64) { n.disk.SetCapacity(n.diskLink, mbps) }

// NICBandwidth returns the per-direction NIC capacity in MB/s.
func (n *Node) NICBandwidth() float64 { return n.NICIn.Capacity }

// SetNICBandwidth rescales both NIC directions (fault injection: a
// flapping or degraded link).
func (n *Node) SetNICBandwidth(mbps float64) {
	nf := n.cluster.netFor(n)
	nf.SetCapacity(n.NICIn, mbps)
	nf.SetCapacity(n.NICOut, mbps)
}
