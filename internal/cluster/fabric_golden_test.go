package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// This file pins the incremental Fabric against a frozen copy of the
// pre-incremental implementation (global progressive filling on every
// change, advance-all, reschedule-all). The golden property is:
//
//   - When the whole fabric is one connected component (every flow on
//     one shared link), the incremental recompute performs bit-for-bit
//     the same progressive-filling arithmetic as the global reference,
//     so all rates must be EXACTLY equal at every sample point — not
//     merely within a tolerance.
//   - On arbitrary multi-link topologies the component decomposition
//     changes the order in which uniform increments accumulate, which
//     is exact-math-equal but may differ in the last ulps; rates and
//     completion times must agree to 1e-9 relative.
//
// A same-seed run-twice test additionally pins the incremental
// implementation's own determinism on a multi-component churn schedule.

// --- frozen reference implementation (pre-incremental Fabric) ---

type refLink struct {
	capacity  float64
	remaining float64
	count     int
}

type refFlow struct {
	links       []*refLink
	remaining   float64
	rateCap     float64
	rate        float64
	lastAdvance float64
	done        func()
	ev          *sim.Event
	index       int
	frozen      bool
	finished    bool
}

type refFabric struct {
	eng   *sim.Engine
	links []*refLink
	flows []*refFlow
}

func (fb *refFabric) addLink(capacity float64) *refLink {
	l := &refLink{capacity: capacity}
	fb.links = append(fb.links, l)
	return l
}

func (fb *refFabric) start(links []*refLink, work, rateCap float64, done func()) *refFlow {
	f := &refFlow{links: links, remaining: work, rateCap: rateCap, done: done, index: -1}
	if work == 0 {
		fb.eng.After(0, func() {
			if !f.finished {
				f.finished = true
				if done != nil {
					done()
				}
			}
		})
		return f
	}
	f.index = len(fb.flows)
	fb.flows = append(fb.flows, f)
	fb.recompute()
	return f
}

func (fb *refFabric) cancel(f *refFlow) {
	if f == nil || f.finished {
		return
	}
	f.finished = true
	if f.ev != nil {
		fb.eng.Cancel(f.ev)
		f.ev = nil
	}
	if f.index >= 0 {
		fb.remove(f)
		fb.recompute()
	}
}

func (fb *refFabric) remove(f *refFlow) {
	i := f.index
	last := len(fb.flows) - 1
	fb.flows[i] = fb.flows[last]
	fb.flows[i].index = i
	fb.flows[last] = nil
	fb.flows = fb.flows[:last]
	f.index = -1
}

func (fb *refFabric) complete(f *refFlow) {
	if f.finished {
		return
	}
	f.finished = true
	f.ev = nil
	f.remaining = 0
	fb.remove(f)
	fb.recompute()
	if f.done != nil {
		f.done()
	}
}

func (fb *refFabric) recompute() {
	now := fb.eng.Now()
	for _, f := range fb.flows {
		if f.rate > 0 {
			f.remaining -= f.rate * (now - f.lastAdvance)
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastAdvance = now
	}
	for _, l := range fb.links {
		l.remaining = l.capacity
		l.count = 0
	}
	unfrozen := 0
	for _, f := range fb.flows {
		f.frozen = false
		f.rate = 0
		unfrozen++
		for _, l := range f.links {
			l.count++
		}
	}
	const relEps = 1e-12
	for unfrozen > 0 {
		delta := math.Inf(1)
		for _, l := range fb.links {
			if l.count > 0 {
				if share := l.remaining / float64(l.count); share < delta {
					delta = share
				}
			}
		}
		for _, f := range fb.flows {
			if !f.frozen && f.rateCap > 0 {
				if room := f.rateCap - f.rate; room < delta {
					delta = room
				}
			}
		}
		if math.IsInf(delta, 1) {
			break
		}
		if delta < 0 {
			delta = 0
		}
		for _, f := range fb.flows {
			if !f.frozen {
				f.rate += delta
			}
		}
		for _, l := range fb.links {
			l.remaining -= delta * float64(l.count)
		}
		for _, f := range fb.flows {
			if f.frozen {
				continue
			}
			freeze := false
			if f.rateCap > 0 && f.rate >= f.rateCap-relEps*f.rateCap {
				freeze = true
			}
			if !freeze {
				for _, l := range f.links {
					if l.remaining <= relEps*l.capacity {
						freeze = true
						break
					}
				}
			}
			if freeze {
				f.frozen = true
				unfrozen--
				for _, l := range f.links {
					l.count--
				}
			}
		}
		if delta == 0 && unfrozen > 0 {
			for _, f := range fb.flows {
				if !f.frozen {
					f.frozen = true
					unfrozen--
					for _, l := range f.links {
						l.count--
					}
				}
			}
		}
	}
	for _, f := range fb.flows {
		if f.ev != nil {
			fb.eng.Cancel(f.ev)
			f.ev = nil
		}
		f.lastAdvance = now
		if f.rate > 0 {
			f := f
			f.ev = fb.eng.After(f.remaining/f.rate, func() { fb.complete(f) })
		}
	}
}

// --- randomized churn schedules ---

type goldenOp struct {
	at       float64
	links    []int // indices into the topology's links; nil = cap-only
	work     float64
	rateCap  float64
	cancelAt float64 // < 0: never canceled
}

// goldenSchedule draws a randomized churn schedule: flows starting at
// random times on random link subsets, some rate-capped, some canceled
// mid-flight. maxLinksPerFlow <= len(caps); capOnly additionally mixes
// in flows with no links at all (instant-transfer style).
func goldenSchedule(seed int64, nOps int, nLinks, maxLinksPerFlow int, withCaps, capOnly bool) []goldenOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]goldenOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		op := goldenOp{
			at:       rng.Float64() * 40,
			work:     1 + rng.Float64()*300,
			cancelAt: -1,
		}
		if capOnly && rng.Intn(8) == 0 {
			op.rateCap = 1 + rng.Float64()*50
		} else {
			k := 1 + rng.Intn(maxLinksPerFlow)
			perm := rng.Perm(nLinks)
			op.links = perm[:k]
			if withCaps && rng.Intn(3) == 0 {
				op.rateCap = 1 + rng.Float64()*40
			}
		}
		if rng.Intn(4) == 0 {
			op.cancelAt = op.at + rng.Float64()*10
		}
		ops = append(ops, op)
	}
	return ops
}

// sampleTimes used to probe rates; offset from round numbers so samples
// never collide with the integer-ish times of symmetric completions.
func sampleTimes() []float64 {
	ts := make([]float64, 0, 60)
	for t := 0.777; t < 60; t += 0.97731 {
		ts = append(ts, t)
	}
	return ts
}

// runGoldenNew drives the incremental Fabric through a schedule,
// recording per-op rates at each sample time (NaN when inactive) and
// completion times (NaN when never completed).
func runGoldenNew(caps []float64, ops []goldenOp) (samples [][]float64, doneAt []float64) {
	eng := sim.NewEngine()
	eng.MaxEvents = 5_000_000
	fb := NewFabric(eng.SystemShard(), "golden")
	links := make([]*Link, len(caps))
	for i, c := range caps {
		links[i] = fb.AddLink(fmt.Sprintf("l%d", i), c)
	}
	flows := make([]*Flow, len(ops))
	doneAt = make([]float64, len(ops))
	for i := range doneAt {
		doneAt[i] = math.NaN()
	}
	for i, op := range ops {
		i, op := i, op
		eng.At(op.at, func() {
			var ls []*Link
			for _, li := range op.links {
				ls = append(ls, links[li])
			}
			flows[i] = fb.Start(ls, op.work, op.rateCap, func() { doneAt[i] = eng.Now() })
		})
		if op.cancelAt >= 0 {
			eng.At(op.cancelAt, func() { fb.Cancel(flows[i]) })
		}
	}
	for _, st := range sampleTimes() {
		st := st
		eng.At(st, func() {
			row := make([]float64, len(ops))
			for i, f := range flows {
				if f == nil || f.Done() {
					row[i] = math.NaN()
				} else {
					row[i] = f.Rate()
				}
			}
			samples = append(samples, row)
		})
	}
	eng.Run()
	return samples, doneAt
}

// runGoldenRef drives the frozen reference through the same schedule.
func runGoldenRef(caps []float64, ops []goldenOp) (samples [][]float64, doneAt []float64) {
	eng := sim.NewEngine()
	eng.MaxEvents = 5_000_000
	fb := &refFabric{eng: eng}
	links := make([]*refLink, len(caps))
	for i, c := range caps {
		links[i] = fb.addLink(c)
	}
	flows := make([]*refFlow, len(ops))
	doneAt = make([]float64, len(ops))
	for i := range doneAt {
		doneAt[i] = math.NaN()
	}
	for i, op := range ops {
		i, op := i, op
		eng.At(op.at, func() {
			var ls []*refLink
			for _, li := range op.links {
				ls = append(ls, links[li])
			}
			flows[i] = fb.start(ls, op.work, op.rateCap, func() { doneAt[i] = eng.Now() })
		})
		if op.cancelAt >= 0 {
			eng.At(op.cancelAt, func() { fb.cancel(flows[i]) })
		}
	}
	for _, st := range sampleTimes() {
		st := st
		eng.At(st, func() {
			row := make([]float64, len(ops))
			for i, f := range flows {
				if f == nil || f.finished {
					row[i] = math.NaN()
				} else {
					row[i] = f.rate
				}
			}
			samples = append(samples, row)
		})
	}
	eng.Run()
	return samples, doneAt
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return d
	}
	return d / m
}

func compareGolden(t *testing.T, caps []float64, ops []goldenOp, exactRates bool, timeTol float64) {
	t.Helper()
	newS, newD := runGoldenNew(caps, ops)
	refS, refD := runGoldenRef(caps, ops)
	if len(newS) != len(refS) {
		t.Fatalf("sample count differs: %d vs %d", len(newS), len(refS))
	}
	for si := range newS {
		for i := range ops {
			nv, rv := newS[si][i], refS[si][i]
			if math.IsNaN(nv) != math.IsNaN(rv) {
				t.Fatalf("sample %d flow %d: active in one fabric only (new=%v ref=%v)", si, i, nv, rv)
			}
			if math.IsNaN(nv) {
				continue
			}
			if exactRates {
				if nv != rv {
					t.Fatalf("sample %d flow %d: rate %v != reference %v (diff %g, want bit-exact)",
						si, i, nv, rv, nv-rv)
				}
			} else if relDiff(nv, rv) > 1e-9 {
				t.Fatalf("sample %d flow %d: rate %v vs reference %v beyond 1e-9", si, i, nv, rv)
			}
		}
	}
	for i := range ops {
		if math.IsNaN(newD[i]) != math.IsNaN(refD[i]) {
			t.Fatalf("flow %d: completed in one fabric only (new=%v ref=%v)", i, newD[i], refD[i])
		}
		if math.IsNaN(newD[i]) {
			continue
		}
		if timeTol == 0 {
			if newD[i] != refD[i] {
				t.Fatalf("flow %d: completion %v != reference %v (want bit-exact)", i, newD[i], refD[i])
			}
		} else if relDiff(newD[i], refD[i]) > timeTol {
			t.Fatalf("flow %d: completion %v vs reference %v beyond %g", i, newD[i], refD[i], timeTol)
		}
	}
}

// TestGoldenSingleLinkUncapped: one shared bottleneck, no caps. The
// fabric is always a single component, every change reshapes every
// fair share, and the incremental implementation must replay the
// reference bit-for-bit: exact rates AND exact completion times.
func TestGoldenSingleLinkUncapped(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ops := goldenSchedule(seed, 40, 1, 1, false, false)
		compareGolden(t, []float64{100}, ops, true, 0)
	}
}

// TestGoldenSingleLinkCapped: one shared link with rate-capped flows
// mixed in. Rates must still be bit-exact (same single-component
// filling); completion times of cap-stable flows are allowed ulp-level
// drift, because the incremental fabric deliberately does not re-round
// an unchanged flow's completion event while the reference reschedules
// everything on every change.
func TestGoldenSingleLinkCapped(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		ops := goldenSchedule(seed, 40, 1, 1, true, false)
		compareGolden(t, []float64{100}, ops, true, 1e-9)
	}
}

// TestGoldenMultiLink: a six-link topology with multi-link flows,
// caps, cap-only flows and cancels. Component decomposition re-orders
// the uniform-increment accumulation (exact-math equivalent, ulp-level
// float drift), so rates and times are pinned to 1e-9 relative.
func TestGoldenMultiLink(t *testing.T) {
	caps := []float64{90, 117, 117, 500, 45, 80}
	for seed := int64(200); seed < 215; seed++ {
		ops := goldenSchedule(seed, 60, len(caps), 3, true, true)
		compareGolden(t, caps, ops, false, 1e-9)
	}
}

// TestGoldenSameSeedIdentical: the incremental fabric run twice on the
// same multi-component churn schedule must produce bit-identical
// samples and completion times — determinism does not depend on any
// map iteration, pointer ordering, or allocation pattern.
func TestGoldenSameSeedIdentical(t *testing.T) {
	caps := []float64{90, 117, 117, 500, 45, 80}
	ops := goldenSchedule(7, 80, len(caps), 3, true, true)
	s1, d1 := runGoldenNew(caps, ops)
	s2, d2 := runGoldenNew(caps, ops)
	for si := range s1 {
		for i := range ops {
			v1, v2 := s1[si][i], s2[si][i]
			if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
				t.Fatalf("sample %d flow %d: %v vs %v across identical runs", si, i, v1, v2)
			}
		}
	}
	for i := range ops {
		v1, v2 := d1[i], d2[i]
		if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
			t.Fatalf("flow %d completion: %v vs %v across identical runs", i, v1, v2)
		}
	}
}
