package cluster

import (
	"testing"

	"repro/internal/sim"
)

func newTestCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, PaperConfig())
}

func TestPaperConfigShape(t *testing.T) {
	eng, c := newTestCluster(t)
	_ = eng
	if len(c.Nodes) != 18 {
		t.Fatalf("worker nodes = %d, want 18", len(c.Nodes))
	}
	if len(c.Racks) != 2 || len(c.Racks[0]) != 9 || len(c.Racks[1]) != 9 {
		t.Fatalf("rack layout wrong: %d racks", len(c.Racks))
	}
	n := c.Nodes[0]
	if n.VCores != 28 {
		t.Fatalf("vcores = %d, want 28", n.VCores)
	}
	if n.Mem.Capacity != 6*1024 {
		t.Fatalf("container mem = %v, want 6144", n.Mem.Capacity)
	}
	if got := n.CoreRatio(); got <= 0.2 || got >= 0.4 {
		t.Fatalf("core ratio = %v, want ~8/28", got)
	}
}

func TestMemPoolAllocateRelease(t *testing.T) {
	eng := sim.NewEngine()
	p := NewMemPool(eng.SystemShard(), "m", 1000)
	if err := p.Allocate(600); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate(500); err == nil {
		t.Fatal("overallocation succeeded")
	}
	if p.Free() != 400 {
		t.Fatalf("Free = %v, want 400", p.Free())
	}
	p.Release(600)
	if p.Used() != 0 {
		t.Fatalf("Used = %v, want 0", p.Used())
	}
	if err := p.Allocate(-1); err == nil {
		t.Fatal("negative allocation succeeded")
	}
}

func TestMemPoolDoubleReleasePanics(t *testing.T) {
	eng := sim.NewEngine()
	p := NewMemPool(eng.SystemShard(), "m", 1000)
	if err := p.Allocate(100); err != nil {
		t.Fatal(err)
	}
	p.Release(100)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Release(100)
}

func TestMemPoolUtilization(t *testing.T) {
	eng := sim.NewEngine()
	p := NewMemPool(eng.SystemShard(), "m", 1000)
	if err := p.Allocate(500); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10)
	if u := p.Utilization(10); !almostEqual(u, 0.5, 1e-9) {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestComputeCappedByVCores(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	// 1 vcore = 8/28 cores. 8 core-seconds at that rate = 28 seconds.
	var done float64
	n.Compute(8, 1*n.CoreRatio(), func() { done = eng.Now() })
	eng.Run()
	want := 8 / n.CoreRatio()
	if !almostEqual(done, want, 1e-6) {
		t.Fatalf("capped compute finished at %v, want %v", done, want)
	}
}

func TestComputeContention(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	// 16 flows each wanting a full core on an 8-core node: each gets
	// 0.5 cores.
	var last float64
	for i := 0; i < 16; i++ {
		n.Compute(4, 1, func() {
			if eng.Now() > last {
				last = eng.Now()
			}
		})
	}
	eng.Run()
	if !almostEqual(last, 8, 1e-6) {
		t.Fatalf("contended compute finished at %v, want 8", last)
	}
}

func TestTransferSameRackVsCrossRack(t *testing.T) {
	eng, c := newTestCluster(t)
	same := c.Racks[0][0]
	peer := c.Racks[0][1]
	cross := c.Racks[1][0]

	var tSame, tCross float64
	c.Transfer(same, peer, 117, func() { tSame = eng.Now() })
	eng.Run()
	c.Transfer(same, cross, 117, func() { tCross = eng.Now() })
	eng.Run()
	if !almostEqual(tSame, 1, 1e-6) {
		t.Fatalf("same-rack 117MB at 117MB/s took until %v, want 1", tSame)
	}
	// Cross-rack, uncontended: still NIC-bound since uplink is 500.
	if tCross-tSame > 1.0001 {
		t.Fatalf("cross-rack uncontended transfer took %v, want ~1", tCross-tSame)
	}
}

func TestUplinkContention(t *testing.T) {
	eng, c := newTestCluster(t)
	// 9 cross-rack transfers of 500 MB each from distinct rack-0 nodes
	// to distinct rack-1 nodes: aggregate demand 9*117=1053 > 500
	// uplink. Uplink-fair share ~55.6 MB/s each -> ~9 s.
	var last float64
	for i := 0; i < 9; i++ {
		c.Transfer(c.Racks[0][i], c.Racks[1][i], 500, func() {
			if eng.Now() > last {
				last = eng.Now()
			}
		})
	}
	eng.Run()
	want := 500 / (500.0 / 9)
	if !almostEqual(last, want, 1e-6) {
		t.Fatalf("uplink-contended transfers finished at %v, want %v", last, want)
	}
}

func TestSameNodeTransferInstant(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	var done float64 = -1
	c.Transfer(n, n, 1000, func() { done = eng.Now() })
	eng.Run()
	if done > 0.01 {
		t.Fatalf("same-node transfer took %v, want ~0", done)
	}
}

func TestFetchCrossRackFraction(t *testing.T) {
	eng, c := newTestCluster(t)
	dst := c.Nodes[0]
	var done float64
	// 117 MB fully rack-local: exactly 1 s on the NIC.
	c.Fetch(dst, 117, 0, 0, func() { done = eng.Now() })
	eng.Run()
	if !almostEqual(done, 1, 1e-6) {
		t.Fatalf("local fetch finished at %v, want 1", done)
	}
	// Fetch with cross-rack component completes no faster.
	start := eng.Now()
	var done2 float64
	c.Fetch(dst, 117, 0.5, 0, func() { done2 = eng.Now() })
	eng.Run()
	if done2-start < 1-1e-6 {
		t.Fatalf("cross-rack fetch finished too fast: %v", done2-start)
	}
}

func TestDiskReadWriteShareChannel(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	var tR, tW float64
	n.DiskRead(90, func() { tR = eng.Now() })
	n.DiskWrite(90, func() { tW = eng.Now() })
	eng.Run()
	// Shared 45/45: both finish at 2s.
	if !almostEqual(tR, 2, 1e-6) || !almostEqual(tW, 2, 1e-6) {
		t.Fatalf("read/write finished at %v/%v, want 2/2", tR, tW)
	}
}

func TestNodeUtilizationAccounting(t *testing.T) {
	eng, c := newTestCluster(t)
	n := c.Nodes[0]
	n.Compute(8, 8, nil) // full node for 1s
	eng.Run()
	eng.RunUntil(4)
	if u := n.CPUUtilization(4); !almostEqual(u, 0.25, 1e-6) {
		t.Fatalf("cpu utilization = %v, want 0.25", u)
	}
	n.DiskWrite(90, nil)
	eng.Run()
	if u := n.DiskUtilization(5); u <= 0.15 || u >= 0.25 {
		t.Fatalf("disk utilization = %v, want ~0.2", u)
	}
}

func TestHeterogeneousCluster(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, HeterogeneousPaperConfig())
	if len(c.Nodes) != 18 {
		t.Fatalf("nodes = %d, want 18", len(c.Nodes))
	}
	big, small := 0, 0
	for _, n := range c.Nodes {
		switch n.Cores {
		case 8:
			big++
			if n.Mem.Capacity != 6*1024 || n.VCores != 28 {
				t.Fatalf("big node misconfigured: %+v", n)
			}
		case 4:
			small++
			if n.Mem.Capacity != 3*1024 || n.VCores != 16 {
				t.Fatalf("small node misconfigured: %+v", n)
			}
		default:
			t.Fatalf("unexpected core count %v", n.Cores)
		}
	}
	if big != 12 || small != 6 {
		t.Fatalf("classes = %d big / %d small, want 12/6", big, small)
	}
	// Both racks populated (round-robin spread).
	if len(c.Racks[0]) == 0 || len(c.Racks[1]) == 0 {
		t.Fatal("a rack is empty")
	}
	if len(c.Racks[0])+len(c.Racks[1]) != 18 {
		t.Fatal("racks do not partition the nodes")
	}
	// Core ratios differ per node class.
	var r8, r4 float64
	for _, n := range c.Nodes {
		if n.Cores == 8 {
			r8 = n.CoreRatio()
		} else {
			r4 = n.CoreRatio()
		}
	}
	if r8 == r4 {
		t.Fatal("core ratios identical across classes")
	}
}

func TestInvalidNodeClassPanics(t *testing.T) {
	cfg := PaperConfig()
	cfg.Classes = []NodeClass{{Count: 1}}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid class accepted")
		}
	}()
	New(sim.NewEngine(), cfg)
}
