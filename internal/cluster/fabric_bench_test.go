package cluster

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// BenchmarkFabricChurn measures flow start/complete cost with ongoing
// contention (the simulator's hot path) on a small 8-link fabric.
func BenchmarkFabricChurn(b *testing.B) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "bench")
	links := make([]*Link, 8)
	for i := range links {
		links[i] = fb.AddLink(fmt.Sprintf("l%d", i), 100)
	}
	for i := 0; i < 40; i++ {
		fb.Start([]*Link{links[i%8]}, 1e12, 0, nil) // standing load
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	var launch func(i int)
	launch = func(i int) {
		fb.Start([]*Link{links[i%8], links[(i+3)%8]}, 50, 0, func() {
			done++
			if done < b.N {
				launch(done)
			}
		})
	}
	launch(0)
	eng.Run()
}

// BenchmarkFabricChurnLarge exercises the cluster network fabric at
// production scale: 128 nodes in two racks (256 NIC links plus two
// rack uplinks). A standing load of long rack-local transfers keeps
// every node's NIC busy while short transfers churn through the
// fabric; every start and finish triggers a fair-share recomputation.
// Most churn is rack-local (as a locality-aware scheduler would place
// it), so the dirty region of each recomputation is a handful of
// links; every 16th transfer crosses the rack uplinks.
func BenchmarkFabricChurnLarge(b *testing.B) {
	eng := sim.NewEngine()
	cfg := Config{
		RackSizes:      []int{64, 64},
		CoresPerNode:   8,
		VCoresPerNode:  28,
		ContainerMemMB: 6 * 1024,
		DiskMBps:       90,
		NICMBps:        117,
		UplinkMBps:     2000,
	}
	c := New(eng, cfg)
	n := len(c.Nodes)
	rackSize := cfg.RackSizes[0]
	// Standing load: one long rack-local transfer per node.
	for i := 0; i < n; i++ {
		base := i / rackSize * rackSize
		dst := c.Nodes[base+(i-base+1)%rackSize]
		c.Transfer(c.Nodes[i], dst, 1e12, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	var launch func(k int)
	launch = func(k int) {
		si := (k * 13) % n
		src := c.Nodes[si]
		var dst *Node
		if k%16 == 0 {
			dst = c.Nodes[(si+rackSize)%n] // cross-rack
		} else {
			base := si / rackSize * rackSize
			dst = c.Nodes[base+(si-base+7)%rackSize] // rack-local
		}
		c.Transfer(src, dst, 10, func() {
			done++
			if done < b.N {
				launch(done)
			}
		})
	}
	launch(0)
	eng.Run()
}

// TestRecomputeSteadyStateAllocationFree pins the sort-free recompute:
// once the scratch buffers have grown to the component size, a
// recomputation whose rates do not change must not allocate — on both
// the small-component insertion-sort path and the large-component
// epoch-scan path.
func TestRecomputeSteadyStateAllocationFree(t *testing.T) {
	for _, nFlows := range []int{8, 32} { // ≤24 and >24 ordering paths
		eng := sim.NewEngine()
		fb := NewFabric(eng.SystemShard(), "alloc")
		l := fb.AddLink("l", 100)
		for i := 0; i < nFlows; i++ {
			fb.Start([]*Link{l}, 1e12, 0, nil)
		}
		seeds := []*Link{l}
		fb.recompute(seeds, nil) // warm the scratch buffers
		if a := testing.AllocsPerRun(100, func() { fb.recompute(seeds, nil) }); a != 0 {
			t.Errorf("steady-state recompute (%d flows) allocates %v per run, want 0", nFlows, a)
		}
	}
}

// BenchmarkFabricCappedStable measures the steady-state CPU-pool
// pattern: many rate-capped flows whose caps bind (sum of caps below
// link capacity), churned by short capped flows. The standing flows'
// rates never change, so an incremental fabric should leave their
// completion events untouched.
func BenchmarkFabricCappedStable(b *testing.B) {
	eng := sim.NewEngine()
	fb := NewFabric(eng.SystemShard(), "cpu")
	l := fb.AddLink("cpu", 8)
	const capRate = 8.0 / 56 // uniform vcore-style cap, sum well under capacity
	for i := 0; i < 24; i++ {
		fb.Start([]*Link{l}, 1e12, capRate, nil) // standing capped load
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	var launch func()
	launch = func() {
		fb.Start([]*Link{l}, 0.05, capRate, func() {
			done++
			if done < b.N {
				launch()
			}
		})
	}
	launch()
	eng.Run()
}
