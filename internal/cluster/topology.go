package cluster

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config describes a homogeneous cluster. The zero value is not usable;
// use PaperConfig for the testbed in the MRONLINE paper.
type Config struct {
	// RackSizes gives the number of worker nodes per rack.
	RackSizes []int
	// CoresPerNode is physical compute capacity per node (core-sec/sec).
	CoresPerNode float64
	// VCoresPerNode is the vcore count advertised for containers.
	VCoresPerNode int
	// ContainerMemMB is the memory available for containers per node.
	ContainerMemMB float64
	// DiskMBps is sequential disk bandwidth per node.
	DiskMBps float64
	// NICMBps is NIC bandwidth per direction per node.
	NICMBps float64
	// UplinkMBps is the effective inter-rack aggregate bandwidth. Flows
	// between racks traverse this shared link in addition to both NICs.
	UplinkMBps float64
	// Classes, when non-empty, builds a heterogeneous cluster instead
	// of the homogeneous RackSizes layout: nodes are created per class
	// and spread round-robin across len(RackSizes) racks (the sizes
	// themselves are ignored).
	Classes []NodeClass
	// RackLocalNet restructures the network for shard-isolated serving
	// (parallel windows): instead of one fabric on the system shard,
	// each rack gets its own fabric — holding that rack's NICs and its
	// uplink — on the rack's shard, so every flow event fires where the
	// endpoints live. Cross-rack Transfer panics in this mode; it
	// exists for rack-cell workloads where all traffic is rack-local.
	// Fault counters also become per-rack (see FaultsFor).
	RackLocalNet bool
}

// NodeClass describes one hardware flavor in a heterogeneous cluster.
type NodeClass struct {
	Count          int
	Cores          float64
	VCores         int
	ContainerMemMB float64
	DiskMBps       float64
	NICMBps        float64
}

// PaperConfig returns the MRONLINE testbed: 18 worker nodes in racks of
// 9 and 9 (the paper's 19th node runs only the master and is not
// modelled as a worker), two quad-core Xeons (8 cores) per node, 8 GB
// RAM of which 6 GB is available for containers, 28 vcores for
// containers out of 32 advertised (each vcore = 1/4 physical core),
// one SATA disk (~90 MB/s), and 1 Gbps Ethernet (~117 MB/s).
func PaperConfig() Config {
	return Config{
		RackSizes:      []int{9, 9},
		CoresPerNode:   8,
		VCoresPerNode:  28,
		ContainerMemMB: 6 * 1024,
		DiskMBps:       90,
		NICMBps:        117,
		UplinkMBps:     500, // ~4:1 oversubscribed rack uplinks
	}
}

// HeterogeneousPaperConfig returns a mixed-hardware variant of the
// testbed: 12 standard nodes plus 6 older, smaller ones — the setting
// in which one-size-fits-all configurations hurt most and per-task
// configuration pays.
func HeterogeneousPaperConfig() Config {
	cfg := PaperConfig()
	cfg.Classes = []NodeClass{
		{Count: 12, Cores: 8, VCores: 28, ContainerMemMB: 6 * 1024, DiskMBps: 90, NICMBps: 117},
		{Count: 6, Cores: 4, VCores: 16, ContainerMemMB: 3 * 1024, DiskMBps: 60, NICMBps: 117},
	}
	return cfg
}

// Cluster owns the nodes and the shared network fabric.
//
// Shard layout: the cluster creates one engine shard per rack; each
// node's local resource domains (CPU pool, disk, memory meter) live on
// its rack's shard, while the shared network fabric and every
// cross-cutting actor (RM, HDFS namespace, fault injector, monitors)
// live on the system shard. In the default serial engine this is a pure
// performance layout — firing order is identical at any shard count —
// and it is what lets large idle racks cost nothing.
type Cluster struct {
	Eng   *sim.Engine
	Nodes []*Node
	Racks [][]*Node

	// Faults is the cluster-wide fault/recovery counter sheet. Every
	// layer (HDFS, YARN, MapReduce) records recovery activity here
	// through its cluster pointer. All zeros when nothing was injected.
	Faults *metrics.FaultCounters

	sys        *sim.Shard
	rackShards []*sim.Shard

	net *Fabric
	// rackNets, in RackLocalNet mode, are the per-rack network fabrics
	// (nil otherwise); netFor routes every flow to the right one.
	rackNets []*Fabric
	// rackFaults, in RackLocalNet mode, are per-rack counter sheets so
	// rack-shard callbacks never write shared state (nil otherwise).
	rackFaults []*metrics.FaultCounters
	uplinks    []*Link
	cfg        Config
	// totalMemMB caches the cluster-wide container memory; the node set
	// is fixed once New returns.
	totalMemMB float64

	// nodeListeners are notified, in registration order, when a node
	// goes down or comes back up (see SubscribeNodeState).
	nodeListeners []func(n *Node, down bool)
	// rackListeners are the rack-scoped equivalent (see
	// SubscribeNodeStateRack); entry r only ever sees rack r's nodes.
	rackListeners [][]func(n *Node, down bool)
}

// New builds a cluster per cfg.
func New(eng *sim.Engine, cfg Config) *Cluster {
	if len(cfg.RackSizes) == 0 {
		panic("cluster: config needs at least one rack")
	}
	c := &Cluster{Eng: eng, cfg: cfg, Faults: &metrics.FaultCounters{}}
	c.sys = eng.SystemShard()
	c.net = NewFabric(c.sys, "network")
	racks := len(cfg.RackSizes)
	c.Racks = make([][]*Node, racks)
	c.rackShards = make([]*sim.Shard, racks)
	for r := 0; r < racks; r++ {
		c.rackShards[r] = eng.NewShard(fmt.Sprintf("rack%02d", r))
	}
	if cfg.RackLocalNet {
		c.rackNets = make([]*Fabric, racks)
		c.rackFaults = make([]*metrics.FaultCounters, racks)
		c.rackListeners = make([][]func(n *Node, down bool), racks)
		for r := 0; r < racks; r++ {
			c.rackNets[r] = NewFabric(c.rackShards[r], fmt.Sprintf("rack%02d/network", r))
			c.rackFaults[r] = &metrics.FaultCounters{}
		}
	}

	addNode := func(rack int, cores float64, vcores int, memMB, diskMBps, nicMBps float64) {
		id := len(c.Nodes)
		name := fmt.Sprintf("node%02d", id)
		rs := c.rackShards[rack]
		n := &Node{
			ID:      id,
			Name:    name,
			Rack:    rack,
			Cores:   cores,
			VCores:  vcores,
			Mem:     NewMemPool(rs, name+"/mem", memMB),
			cluster: c,
			shard:   rs,
		}
		n.cpu = NewFabric(rs, name+"/cpu")
		n.cpuLink = n.cpu.AddLink(name+"/cpu", cores)
		n.disk = NewFabric(rs, name+"/disk")
		n.diskLink = n.disk.AddLink(name+"/disk", diskMBps)
		n.cpuLinks = []*Link{n.cpuLink}
		n.diskLinks = []*Link{n.diskLink}
		nf := c.net
		if c.rackNets != nil {
			nf = c.rackNets[rack]
		}
		n.NICIn = nf.AddLink(name+"/nic-in", nicMBps)
		n.NICOut = nf.AddLink(name+"/nic-out", nicMBps)
		c.Nodes = append(c.Nodes, n) //mrlint:ignore retained-append topology is built once and immutable afterwards
		c.Racks[rack] = append(c.Racks[rack], n)
	}

	if len(cfg.Classes) > 0 {
		i := 0
		for _, cl := range cfg.Classes {
			if cl.Count <= 0 || cl.Cores <= 0 || cl.VCores <= 0 || cl.ContainerMemMB <= 0 {
				panic(fmt.Sprintf("cluster: invalid node class %+v", cl))
			}
			for k := 0; k < cl.Count; k++ {
				addNode(i%racks, cl.Cores, cl.VCores, cl.ContainerMemMB, cl.DiskMBps, cl.NICMBps)
				i++
			}
		}
	} else {
		for r, size := range cfg.RackSizes {
			for i := 0; i < size; i++ {
				addNode(r, cfg.CoresPerNode, cfg.VCoresPerNode, cfg.ContainerMemMB, cfg.DiskMBps, cfg.NICMBps)
			}
		}
	}
	if racks > 1 {
		for r := 0; r < racks; r++ {
			nf := c.net
			if c.rackNets != nil {
				// The uplink throttles only its own rack's cross-rack
				// fetch share in this mode, so it lives with the rack.
				nf = c.rackNets[r]
			}
			c.uplinks = append(c.uplinks, nf.AddLink(fmt.Sprintf("rack%d/uplink", r), cfg.UplinkMBps)) //mrlint:ignore retained-append topology is built once and immutable afterwards
		}
	}
	for _, n := range c.Nodes {
		c.totalMemMB += n.Mem.Capacity
	}
	return c
}

// Config returns the configuration the cluster was built with.
func (c *Cluster) Config() Config { return c.cfg }

// Sys returns the system shard, home of every cross-cutting actor (RM,
// HDFS namespace, fault injection, monitors, the network fabric).
func (c *Cluster) Sys() *sim.Shard { return c.sys }

// RackShard returns the engine shard owning rack r's node-local state.
func (c *Cluster) RackShard(r int) *sim.Shard { return c.rackShards[r] }

// SameRack reports whether two nodes share a rack.
func (c *Cluster) SameRack(a, b *Node) bool { return a.Rack == b.Rack }

// Transfer moves mb megabytes from src to dst over the network,
// traversing src's transmit NIC, dst's receive NIC, and — when the
// nodes are on different racks — both rack uplinks. A same-node
// transfer is a memory copy and completes (asynchronously) at once.
func (c *Cluster) Transfer(src, dst *Node, mb float64, done func()) *Flow {
	if src == dst {
		return c.netFor(src).Start(nil, mb, 1e9, done) // effectively instant
	}
	if src.Rack != dst.Rack && c.rackNets != nil {
		panic(fmt.Sprintf("cluster: cross-rack transfer %s -> %s in rack-local network mode", src.Name, dst.Name))
	}
	links := []*Link{src.NICOut, dst.NICIn}
	if src.Rack != dst.Rack && len(c.uplinks) > 0 {
		links = append(links, c.uplinks[src.Rack], c.uplinks[dst.Rack])
	}
	return c.netFor(src).Start(links, mb, 0, done)
}

// Fetch starts an inbound network flow of mb megabytes terminating at
// dst whose sources are spread across many nodes (a reducer's shuffle
// wave). The senders' NICs are not modelled individually — with
// hundreds of concurrent fetch streams the receive side and the rack
// uplinks are the bottleneck — so the flow occupies dst's receive NIC
// plus, for the crossRackFrac portion, dst's rack uplink. rateCap (0 =
// none) bounds the aggregate fetch rate, modelling a limited number of
// parallel copy threads.
func (c *Cluster) Fetch(dst *Node, mb, crossRackFrac, rateCap float64, done func()) []*Flow {
	if crossRackFrac > 0 && len(c.uplinks) > 0 {
		// Split into a rack-local part and a cross-rack part; done fires
		// when both complete. The rate cap is divided pro rata.
		remaining := 2
		child := func() {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		}
		capCross, capLocal := 0.0, 0.0
		if rateCap > 0 {
			capCross = rateCap * crossRackFrac
			capLocal = rateCap * (1 - crossRackFrac)
		}
		nf := c.netFor(dst)
		return []*Flow{
			nf.Start([]*Link{dst.NICIn, c.uplinks[dst.Rack]}, mb*crossRackFrac, capCross, child),
			nf.Start([]*Link{dst.NICIn}, mb*(1-crossRackFrac), capLocal, child),
		}
	}
	return []*Flow{c.netFor(dst).Start([]*Link{dst.NICIn}, mb, rateCap, done)}
}

// netFor returns the fabric that carries flows touching n: the shared
// system-shard fabric normally, n's rack fabric in RackLocalNet mode.
func (c *Cluster) netFor(n *Node) *Fabric {
	if c.rackNets != nil {
		return c.rackNets[n.Rack]
	}
	return c.net
}

// NetworkFabric exposes the shared network fabric (for tests and for
// monitor components that sample link utilization). In RackLocalNet
// mode it is empty — flows live on the per-rack fabrics.
func (c *Cluster) NetworkFabric() *Fabric { return c.net }

// FaultsFor returns the counter sheet that callbacks owning rack's
// state must write: the per-rack sheet in RackLocalNet mode (so rack
// shards never share a counter), the cluster-wide one otherwise.
func (c *Cluster) FaultsFor(rack int) *metrics.FaultCounters {
	if c.rackFaults != nil {
		return c.rackFaults[rack]
	}
	return c.Faults
}

// TotalContainerMemMB returns cluster-wide container memory.
func (c *Cluster) TotalContainerMemMB() float64 { return c.totalMemMB }

// TotalVCores returns cluster-wide container vcores.
func (c *Cluster) TotalVCores() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.VCores
	}
	return total
}
