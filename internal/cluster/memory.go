package cluster

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// MemPool is a counting resource (megabytes of container memory on a
// node). Allocation either succeeds immediately or fails; queueing is
// the scheduler's job, not the pool's.
type MemPool struct {
	Name     string
	Capacity float64 // MB
	used     float64
	shard    *sim.Shard
	meter    metrics.Meter
}

// NewMemPool returns a pool of capacity MB, owned by the given shard
// (the rack shard of the node the pool models).
func NewMemPool(shard *sim.Shard, name string, capacity float64) *MemPool {
	if capacity <= 0 {
		panic(fmt.Sprintf("cluster: mem pool %q must have positive capacity", name))
	}
	return &MemPool{Name: name, Capacity: capacity, shard: shard}
}

// Free returns the unallocated MB.
func (p *MemPool) Free() float64 { return p.Capacity - p.used }

// Used returns the allocated MB.
func (p *MemPool) Used() float64 { return p.used }

// CanAllocate reports whether mb MB fit right now.
func (p *MemPool) CanAllocate(mb float64) bool { return mb <= p.Free()+1e-9 }

// Allocate reserves mb MB, or returns an error if they do not fit.
func (p *MemPool) Allocate(mb float64) error {
	if mb < 0 {
		return fmt.Errorf("cluster: negative allocation %v MB on %s", mb, p.Name)
	}
	if !p.CanAllocate(mb) {
		return fmt.Errorf("cluster: %s out of memory: want %.0f MB, free %.0f MB", p.Name, mb, p.Free())
	}
	p.used += mb
	p.meter.Set(p.shard.Now(), p.used)
	return nil
}

// Release returns mb MB to the pool. Releasing more than is allocated
// panics, since it indicates double-free in the model.
func (p *MemPool) Release(mb float64) {
	if mb > p.used+1e-6 {
		panic(fmt.Sprintf("cluster: %s release of %v MB exceeds used %v MB", p.Name, mb, p.used))
	}
	p.used -= mb
	if p.used < 0 {
		p.used = 0
	}
	p.meter.Set(p.shard.Now(), p.used)
}

// Utilization returns the time-average fraction of capacity allocated.
func (p *MemPool) Utilization(now float64) float64 {
	return p.meter.Average(now) / p.Capacity
}
