// Package cluster models the hardware substrate of a MapReduce cluster:
// nodes with CPUs, memory, disks and NICs arranged in racks. Shared
// channels (disk bandwidth, NIC bandwidth, rack uplinks, CPU pools) are
// modelled as max-min fair-shared links; concurrent flows on a link
// progress at the fair-share rate, recomputed event-driven whenever a
// flow starts or finishes. This reproduces the contention effects
// (spill I/O, shuffle congestion, CPU caps from container vcores) that
// MRONLINE's tuning exploits on the paper's physical 19-node cluster.
//
// Units: data quantities are in MB (1e6 bytes) and rates in MB/s; CPU
// work is in core-seconds and CPU rates in cores. Time is in seconds.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Link is a capacity-constrained shared channel: a disk, a NIC
// direction, a rack uplink, or a node's CPU pool.
type Link struct {
	Name     string
	Capacity float64 // units per second

	used metrics.Meter // current aggregate rate of flows on this link

	// scratch state for the progressive-filling computation
	remaining float64
	count     int
}

// Utilization returns the time-average fraction of capacity in use
// through time now.
func (l *Link) Utilization(now float64) float64 {
	if l.Capacity <= 0 {
		return 0
	}
	return l.used.Average(now) / l.Capacity
}

// CurrentRate returns the aggregate rate currently flowing on the link.
func (l *Link) CurrentRate() float64 { return l.used.Level() }

// Flow is an in-progress transfer or computation consuming fair-share
// capacity on one or more links, optionally bounded by a rate cap (for
// CPU flows, the container's vcore allowance).
type Flow struct {
	fabric      *Fabric
	links       []*Link
	remaining   float64
	rateCap     float64 // 0 means unlimited
	rate        float64
	lastAdvance float64
	done        func()
	ev          *sim.Event
	index       int
	frozen      bool // scratch for progressive filling
	finished    bool
}

// Remaining returns the amount of work left, valid as of the last rate
// recomputation.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the current fair-share rate.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow completed or was canceled.
func (f *Flow) Done() bool { return f.finished }

// Cancel aborts the flow; its done callback will not fire. Canceling
// a completed flow is a no-op.
func (f *Flow) Cancel() { f.fabric.Cancel(f) }

// Fabric manages a set of links whose flows may interact (share links).
// Separate resource domains (each node's disk, each node's CPU pool,
// the cluster network) use separate fabrics so that rate recomputation
// stays local to the domain.
type Fabric struct {
	Name  string
	eng   *sim.Engine
	links []*Link
	flows []*Flow
}

// NewFabric returns an empty fabric bound to the engine.
func NewFabric(eng *sim.Engine, name string) *Fabric {
	return &Fabric{Name: name, eng: eng}
}

// AddLink registers a link with the fabric and returns it.
func (fb *Fabric) AddLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("cluster: link %q must have positive capacity, got %v", name, capacity))
	}
	l := &Link{Name: name, Capacity: capacity}
	l.used.Set(fb.eng.Now(), 0) // anchor utilization accounting at creation
	fb.links = append(fb.links, l)
	return l
}

// ActiveFlows returns the number of in-flight flows in the fabric.
func (fb *Fabric) ActiveFlows() int { return len(fb.flows) }

// Start begins a flow of `work` units across the given links, at most
// rateCap units/s (0 = unlimited), invoking done when the work
// completes. Links must belong to this fabric. A flow must be
// constrained by at least one link or a positive rate cap.
func (fb *Fabric) Start(links []*Link, work, rateCap float64, done func()) *Flow {
	if len(links) == 0 && rateCap <= 0 {
		panic("cluster: flow with no links and no rate cap would be infinitely fast")
	}
	if work < 0 || math.IsNaN(work) || math.IsInf(work, 0) {
		panic(fmt.Sprintf("cluster: invalid flow work %v", work))
	}
	f := &Flow{fabric: fb, links: links, remaining: work, rateCap: rateCap, done: done, index: -1}
	if work == 0 {
		// Zero-size work completes immediately (but asynchronously, to
		// keep callback ordering uniform).
		fb.eng.After(0, func() {
			if !f.finished {
				f.finished = true
				if done != nil {
					done()
				}
			}
		})
		return f
	}
	f.index = len(fb.flows)
	fb.flows = append(fb.flows, f)
	fb.recompute()
	return f
}

// Cancel aborts a flow; done is not called.
func (fb *Fabric) Cancel(f *Flow) {
	if f == nil || f.finished {
		return
	}
	f.finished = true
	if f.ev != nil {
		fb.eng.Cancel(f.ev)
		f.ev = nil
	}
	if f.index >= 0 {
		fb.remove(f)
		fb.recompute()
	}
}

func (fb *Fabric) remove(f *Flow) {
	i := f.index
	last := len(fb.flows) - 1
	fb.flows[i] = fb.flows[last]
	fb.flows[i].index = i
	fb.flows[last] = nil
	fb.flows = fb.flows[:last]
	f.index = -1
}

func (fb *Fabric) complete(f *Flow) {
	if f.finished {
		return
	}
	f.finished = true
	f.ev = nil
	f.remaining = 0
	fb.remove(f)
	// Recompute before the callback so that work started inside the
	// callback sees up-to-date rates (it will trigger its own
	// recompute anyway, but intermediate meter accounting stays exact).
	fb.recompute()
	if f.done != nil {
		f.done()
	}
}

// recompute advances all flows' remaining work, recomputes max-min fair
// rates with per-flow caps via uniform-increment progressive filling,
// and reschedules completion events.
func (fb *Fabric) recompute() {
	now := fb.eng.Now()

	// Advance remaining work at the old rates before changing them.
	fb.advance(now)

	// Progressive filling.
	for _, l := range fb.links {
		l.remaining = l.Capacity
		l.count = 0
	}
	unfrozen := 0
	for _, f := range fb.flows {
		f.frozen = false
		f.rate = 0
		unfrozen++
		for _, l := range f.links {
			l.count++
		}
	}
	const relEps = 1e-12
	for unfrozen > 0 {
		delta := math.Inf(1)
		for _, l := range fb.links {
			if l.count > 0 {
				if share := l.remaining / float64(l.count); share < delta {
					delta = share
				}
			}
		}
		for _, f := range fb.flows {
			if !f.frozen && f.rateCap > 0 {
				if room := f.rateCap - f.rate; room < delta {
					delta = room
				}
			}
		}
		if math.IsInf(delta, 1) {
			// No link and no cap constrains the remaining flows; this
			// cannot happen given the Start precondition, but guard
			// against an all-caps-reached stall.
			break
		}
		if delta < 0 {
			delta = 0
		}
		for _, f := range fb.flows {
			if !f.frozen {
				f.rate += delta
			}
		}
		for _, l := range fb.links {
			l.remaining -= delta * float64(l.count)
		}
		// Freeze flows that hit their cap or sit on an exhausted link.
		for _, f := range fb.flows {
			if f.frozen {
				continue
			}
			freeze := false
			if f.rateCap > 0 && f.rate >= f.rateCap-relEps*f.rateCap {
				freeze = true
			}
			if !freeze {
				for _, l := range f.links {
					if l.remaining <= relEps*l.Capacity {
						freeze = true
						break
					}
				}
			}
			if freeze {
				f.frozen = true
				unfrozen--
				for _, l := range f.links {
					l.count--
				}
			}
		}
		if delta == 0 && unfrozen > 0 {
			// All remaining flows are rate-0 (exhausted links with
			// count>0 but zero remaining). Freeze them to terminate.
			for _, f := range fb.flows {
				if !f.frozen {
					f.frozen = true
					unfrozen--
					for _, l := range f.links {
						l.count--
					}
				}
			}
		}
	}

	// Update link meters and reschedule completions.
	for _, l := range fb.links {
		total := 0.0
		for _, f := range fb.flows {
			for _, fl := range f.links {
				if fl == l {
					total += f.rate
					break
				}
			}
		}
		l.used.Set(now, total)
	}
	for _, f := range fb.flows {
		if f.ev != nil {
			fb.eng.Cancel(f.ev)
			f.ev = nil
		}
		f.lastAdvance = now
		if f.rate > 0 {
			f := f
			f.ev = fb.eng.After(f.remaining/f.rate, func() { fb.complete(f) })
		}
	}
}

// advance moves every flow's remaining-work counter forward to now at
// its current rate.
func (fb *Fabric) advance(now float64) {
	for _, f := range fb.flows {
		if f.rate > 0 {
			f.remaining -= f.rate * (now - f.lastAdvance)
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastAdvance = now
	}
}
