// Package cluster models the hardware substrate of a MapReduce cluster:
// nodes with CPUs, memory, disks and NICs arranged in racks. Shared
// channels (disk bandwidth, NIC bandwidth, rack uplinks, CPU pools) are
// modelled as max-min fair-shared links; concurrent flows on a link
// progress at the fair-share rate, recomputed event-driven whenever a
// flow starts or finishes. This reproduces the contention effects
// (spill I/O, shuffle congestion, CPU caps from container vcores) that
// MRONLINE's tuning exploits on the paper's physical 19-node cluster.
//
// Fair-share recomputation is incremental: each link keeps a membership
// list of its active flows, and a flow change only recomputes the
// connected component of links and flows reachable from the changed
// flow. Flows in other components keep their rates and their scheduled
// completion events untouched (see docs/MODEL.md, "Fabric complexity &
// incremental recomputation").
//
// Units: data quantities are in MB (1e6 bytes) and rates in MB/s; CPU
// work is in core-seconds and CPU rates in cores. Time is in seconds.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Link is a capacity-constrained shared channel: a disk, a NIC
// direction, a rack uplink, or a node's CPU pool.
type Link struct {
	Name     string
	Capacity float64 // units per second

	used metrics.Meter // current aggregate rate of flows on this link

	// flows is the membership list of active flows crossing this link,
	// maintained by Fabric.Start and Fabric.remove. Order is insertion
	// order perturbed by swap-removal — deterministic, but arbitrary.
	flows []*Flow

	// scratch state for the progressive-filling computation; remaining
	// doubles as the per-link rate accumulator for the meter update.
	remaining float64
	count     int
	visit     uint64 // recompute epoch this link was last swept into
}

// Utilization returns the time-average fraction of capacity in use
// through time now.
func (l *Link) Utilization(now float64) float64 {
	if l.Capacity <= 0 {
		return 0
	}
	return l.used.Average(now) / l.Capacity
}

// CurrentRate returns the aggregate rate currently flowing on the link.
func (l *Link) CurrentRate() float64 { return l.used.Level() }

// inlineLinks is how many per-link membership positions a Flow stores
// without a separate allocation; transfers cross at most four links
// (two NICs plus two rack uplinks).
const inlineLinks = 4

// Flow is an in-progress transfer or computation consuming fair-share
// capacity on one or more links, optionally bounded by a rate cap (for
// CPU flows, the container's vcore allowance).
type Flow struct {
	fabric      *Fabric
	links       []*Link
	remaining   float64
	rateCap     float64 // 0 means unlimited
	rate        float64
	prevRate    float64 // scratch: rate on entry to the current recompute
	lastAdvance float64
	done        func()
	// onComplete is the cached completion callback, allocated once in
	// Start so that rescheduling on every rate change stays
	// allocation-free.
	onComplete func()
	ev         *sim.Event
	index      int              // position in fabric.flows, -1 when inactive
	pos        [inlineLinks]int // this flow's index in links[i].flows
	posX       []int            // spill positions for flows crossing more links
	visit      uint64           // recompute epoch this flow was last swept into
	finished   bool
	pooled     bool // sitting in the fabric's free list (guards double-recycle)
	// onAbort, when set, is scheduled (asynchronously) if the flow is
	// torn down by Fabric.Abort — a fault, not a cancellation by the
	// flow's owner — so remote consumers can fail over instead of
	// waiting forever on a done callback that will never fire.
	onAbort func()
}

func (f *Flow) linkPos(i int) int {
	if i < inlineLinks {
		return f.pos[i]
	}
	return f.posX[i-inlineLinks]
}

func (f *Flow) setLinkPos(i, p int) {
	if i < inlineLinks {
		f.pos[i] = p
		return
	}
	f.posX[i-inlineLinks] = p
}

// Remaining returns the amount of work left, valid as of the last
// recomputation that touched this flow's component.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the current fair-share rate.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow completed or was canceled.
func (f *Flow) Done() bool { return f.finished }

// Cancel aborts the flow; its done callback will not fire. Canceling
// a completed flow is a no-op.
func (f *Flow) Cancel() { f.fabric.Cancel(f) }

// SetOnAbort registers fn to run (asynchronously) if the flow is killed
// by Fabric.Abort — e.g. when the node it crosses crashes. fn does not
// run on normal completion or on Cancel.
func (f *Flow) SetOnAbort(fn func()) { f.onAbort = fn }

// Fabric manages a set of links whose flows may interact (share links).
// Separate resource domains (each node's disk, each node's CPU pool,
// the cluster network) use separate fabrics so that rate recomputation
// stays local to the domain; within a fabric, recomputation stays local
// to the connected component of the changed flow.
type Fabric struct {
	Name  string
	shard *sim.Shard
	links []*Link
	flows []*Flow

	epoch uint64 // recompute generation for visit stamps

	// Scratch slices reused across recomputations to keep the hot path
	// allocation-free; contents are only valid during one recompute.
	dirtyLinks []*Link
	dirtyFlows []*Flow
	// orderedFlows is the second component buffer used when restoring
	// index order by scanning fb.flows; it swaps roles with dirtyFlows.
	orderedFlows []*Flow
	// activeFlows is the progressive-filling worklist of not-yet-frozen
	// flows (compacted by swap-removal as flows freeze).
	activeFlows []*Flow
	// free is the pool of recycled Flow objects (see Flow.Recycle):
	// owners that provably hold the last reference hand finished flows
	// back so a steady stream of Starts stops allocating.
	free []*Flow
}

// NewFabric returns an empty fabric bound to the shard that owns its
// state: the rack shard for a node-local domain (disk, CPU pool), the
// system shard for the cluster network. Every completion event the
// fabric schedules carries that affinity.
func NewFabric(shard *sim.Shard, name string) *Fabric {
	return &Fabric{Name: name, shard: shard}
}

// Shard returns the shard the fabric schedules on.
func (fb *Fabric) Shard() *sim.Shard { return fb.shard }

// AddLink registers a link with the fabric and returns it.
func (fb *Fabric) AddLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("cluster: link %q must have positive capacity, got %v", name, capacity))
	}
	l := &Link{Name: name, Capacity: capacity}
	l.used.Set(fb.shard.Now(), 0)  // anchor utilization accounting at creation
	fb.links = append(fb.links, l) //mrlint:ignore retained-append one entry per topology link, built once at construction
	return l
}

// ActiveFlows returns the number of in-flight flows in the fabric.
func (fb *Fabric) ActiveFlows() int { return len(fb.flows) }

// Start begins a flow of `work` units across the given links, at most
// rateCap units/s (0 = unlimited), invoking done when the work
// completes. Links must belong to this fabric and must be distinct. A
// flow must be constrained by at least one link or a positive rate cap.
func (fb *Fabric) Start(links []*Link, work, rateCap float64, done func()) *Flow {
	if len(links) == 0 && rateCap <= 0 {
		panic("cluster: flow with no links and no rate cap would be infinitely fast")
	}
	if work < 0 || math.IsNaN(work) || math.IsInf(work, 0) {
		panic(fmt.Sprintf("cluster: invalid flow work %v", work))
	}
	for i := 1; i < len(links); i++ {
		for j := 0; j < i; j++ {
			if links[i] == links[j] {
				panic(fmt.Sprintf("cluster: flow lists link %q twice", links[i].Name))
			}
		}
	}
	if work == 0 {
		// Zero-size work completes immediately (but asynchronously, to
		// keep callback ordering uniform). These flows never enter the
		// fabric lists and are not drawn from the pool.
		f := &Flow{fabric: fb, links: links, remaining: work, rateCap: rateCap, done: done, index: -1}
		fb.shard.After(0, func() {
			if !f.finished {
				f.finished = true
				if done != nil {
					done()
				}
			}
		})
		return f
	}
	f := fb.newFlow()
	f.links = links
	f.remaining = work
	f.rateCap = rateCap
	f.done = done
	f.index = -1
	if n := len(links); n > inlineLinks {
		if need := n - inlineLinks; cap(f.posX) >= need {
			f.posX = f.posX[:need]
		} else {
			f.posX = make([]int, need)
		}
	}
	if f.onComplete == nil {
		f.onComplete = func() { fb.complete(f) }
	}
	f.index = len(fb.flows)
	fb.flows = append(fb.flows, f)
	for i, l := range links {
		f.setLinkPos(i, len(l.flows))
		l.flows = append(l.flows, f)
	}
	fb.recompute(links, f)
	return f
}

// newFlow pops a recycled Flow or allocates a fresh one. Pooled flows
// keep their cached onComplete closure (it captures only the (fabric,
// flow) pair, which survives recycling) and their posX capacity.
func (fb *Fabric) newFlow() *Flow {
	if n := len(fb.free); n > 0 {
		f := fb.free[n-1]
		fb.free[n-1] = nil
		fb.free = fb.free[:n-1]
		f.pooled = false
		f.finished = false
		return f
	}
	return &Flow{fabric: fb}
}

// recycleFlow resets a flow that has fully left the fabric and parks
// it in the free list. Flows still queued, in flight, or already
// pooled are left alone, so callers may invoke it unconditionally
// during teardown.
func (fb *Fabric) recycleFlow(f *Flow) {
	if f.pooled || !f.finished || f.index >= 0 || f.ev != nil {
		return
	}
	f.pooled = true
	f.links = nil
	f.remaining = 0
	f.rateCap = 0
	f.rate = 0
	f.prevRate = 0
	f.lastAdvance = 0
	f.done = nil
	f.onAbort = nil
	fb.free = append(fb.free, f)
}

// Recycle hands a finished flow back to its fabric's free pool for
// reuse by a future Start. Strict ownership contract: call it only
// when you hold the last reference — after Recycle the object may be
// handed to an unrelated Start, so a retained pointer must never be
// Canceled or inspected again. Unfinished, still-queued, and
// already-recycled flows are ignored, which makes Recycle safe to
// call unconditionally when tearing down a completed owner.
func (f *Flow) Recycle() {
	if f == nil {
		return
	}
	f.fabric.recycleFlow(f)
}

// Cancel aborts a flow; done is not called.
func (fb *Fabric) Cancel(f *Flow) {
	if f == nil || f.finished {
		return
	}
	f.finished = true
	if f.ev != nil {
		fb.shard.Cancel(f.ev)
		f.ev = nil
	}
	if f.index >= 0 {
		fb.remove(f)
		fb.recompute(f.links, nil)
	}
}

// Abort tears a flow down like Cancel, then schedules the flow's
// registered onAbort callback (if any). Used by fault injection: the
// owner did not ask for the teardown, so it must be told.
func (fb *Fabric) Abort(f *Flow) {
	if f == nil || f.finished {
		return
	}
	fn := f.onAbort
	fb.Cancel(f)
	if fn != nil {
		fb.shard.After(0, fn)
	}
}

// SetCapacity changes a link's capacity in place and rebalances the
// link's connected component. Fault injection uses it to model slow
// nodes, degraded disks and flapping NICs; in-flight flows simply
// continue at the recomputed fair-share rates.
func (fb *Fabric) SetCapacity(l *Link, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("cluster: link %q capacity must stay positive, got %v", l.Name, capacity))
	}
	if capacity == l.Capacity {
		return
	}
	l.Capacity = capacity
	fb.recompute([]*Link{l}, nil)
}

// remove detaches f from the fabric's flow list and from every link's
// membership list (swap-removal, fixing up the moved entries' indices).
func (fb *Fabric) remove(f *Flow) {
	i := f.index
	last := len(fb.flows) - 1
	fb.flows[i] = fb.flows[last]
	fb.flows[i].index = i
	fb.flows[last] = nil
	fb.flows = fb.flows[:last]
	f.index = -1
	for li, l := range f.links {
		p := f.linkPos(li)
		lastF := len(l.flows) - 1
		moved := l.flows[lastF]
		l.flows[p] = moved
		l.flows[lastF] = nil
		l.flows = l.flows[:lastF]
		if moved != f {
			for mi, ml := range moved.links {
				if ml == l {
					moved.setLinkPos(mi, p)
					break
				}
			}
		}
	}
}

func (fb *Fabric) complete(f *Flow) {
	if f.finished {
		return
	}
	f.finished = true
	f.ev = nil
	f.remaining = 0
	fb.remove(f)
	// Recompute before the callback so that work started inside the
	// callback sees up-to-date rates (it will trigger its own
	// recompute anyway, but intermediate meter accounting stays exact).
	fb.recompute(f.links, nil)
	if f.done != nil {
		f.done()
	}
}

// recompute rebalances fair-share rates after a flow change. seeds are
// the changed flow's links (still attached for a start, already
// detached for a completion or cancel — which is what lets a component
// split apart); seedFlow, when non-nil, is a newly started flow that
// must be included even when it has no links (cap-only flows form
// singleton components).
//
// Only the connected component of links and flows reachable from the
// seeds is touched: their work is advanced to now at the old rates,
// rates are recomputed with uniform-increment progressive filling, link
// meters are re-aggregated from the membership lists, and completion
// events are rescheduled — but only for flows whose rate actually
// changed (exact float comparison: an epsilon window would make the
// outcome depend on accumulated drift and break reproducibility).
// Flows outside the component share no link with any flow inside it,
// transitively, so their fair-share rates — and therefore their
// scheduled completion events — are provably unaffected.
func (fb *Fabric) recompute(seeds []*Link, seedFlow *Flow) {
	now := fb.shard.Now()

	// Sweep out the connected component (links and flows) from the
	// seeds. visit stamps make membership checks O(1) without clearing.
	fb.epoch++
	ep := fb.epoch
	links := fb.dirtyLinks[:0]
	flows := fb.dirtyFlows[:0]
	for _, l := range seeds {
		if l.visit != ep {
			l.visit = ep
			links = append(links, l)
		}
	}
	if seedFlow != nil && seedFlow.visit != ep {
		seedFlow.visit = ep
		flows = append(flows, seedFlow)
	}
	for i := 0; i < len(links); i++ {
		for _, f := range links[i].flows {
			if f.visit != ep {
				f.visit = ep
				flows = append(flows, f)
				for _, fl := range f.links {
					if fl.visit != ep {
						fl.visit = ep
						links = append(links, fl)
					}
				}
			}
		}
	}
	fb.dirtyLinks = links // keep grown capacity for the next recompute
	fb.dirtyFlows = flows

	if len(flows) == 0 {
		// The changed flow was the last one on its links.
		for _, l := range links {
			l.used.Set(now, 0)
		}
		return
	}

	// Advance the component's remaining work at the old rates before
	// changing them. Untouched flows keep accruing at their (still
	// valid) rates; they are advanced whenever their component is next
	// recomputed or their completion event fires.
	for _, f := range flows {
		if f.rate > 0 {
			f.remaining -= f.rate * (now - f.lastAdvance)
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastAdvance = now
		f.prevRate = f.rate
	}

	// Progressive filling, scoped to the component. The arithmetic is
	// identical to a whole-fabric recomputation restricted to this
	// component: rates accumulate uniform increments bounded by the
	// tightest link share or cap room, and the result does not depend
	// on the iteration order of links or flows.
	for _, l := range links {
		l.remaining = l.Capacity
		l.count = 0
	}
	// active is the not-yet-frozen worklist, compacted by swap-removal
	// as flows freeze. The filling result is order-independent: every
	// active flow accumulates the same delta per round, and the freeze
	// decision reads only f.rate/f.rateCap and l.remaining, all fixed
	// during a freeze sweep (l.count changes only affect later rounds).
	active := fb.activeFlows[:0]
	for _, f := range flows {
		f.rate = 0
		active = append(active, f)
		for _, l := range f.links {
			l.count++
		}
	}
	fb.activeFlows = active // keep grown capacity for the next recompute
	const relEps = 1e-12
	for len(active) > 0 {
		delta := math.Inf(1)
		for _, l := range links {
			if l.count > 0 {
				if share := l.remaining / float64(l.count); share < delta {
					delta = share
				}
			}
		}
		for _, f := range active {
			if f.rateCap > 0 {
				if room := f.rateCap - f.rate; room < delta {
					delta = room
				}
			}
		}
		if math.IsInf(delta, 1) {
			// No link and no cap constrains the remaining flows; this
			// cannot happen given the Start precondition, but guard
			// against an all-caps-reached stall.
			break
		}
		if delta < 0 {
			delta = 0
		}
		for _, f := range active {
			f.rate += delta
		}
		for _, l := range links {
			l.remaining -= delta * float64(l.count)
		}
		// Freeze flows that hit their cap or sit on an exhausted link.
		for i := 0; i < len(active); {
			f := active[i]
			freeze := false
			if f.rateCap > 0 && f.rate >= f.rateCap-relEps*f.rateCap {
				freeze = true
			}
			if !freeze {
				for _, l := range f.links {
					if l.remaining <= relEps*l.Capacity {
						freeze = true
						break
					}
				}
			}
			if freeze {
				for _, l := range f.links {
					l.count--
				}
				last := len(active) - 1
				active[i] = active[last]
				active = active[:last]
			} else {
				i++
			}
		}
		if delta == 0 && len(active) > 0 {
			// All remaining flows are rate-0 (exhausted links with
			// count>0 but zero remaining). Freeze them to terminate.
			for _, f := range active {
				for _, l := range f.links {
					l.count--
				}
			}
			active = active[:0]
		}
	}

	// Update link meters by per-link aggregation over the component
	// (every flow on a dirty link is itself dirty, by closure), and
	// reschedule completions for flows whose rate changed. Iterate in
	// fabric insertion-array order so that meter summation order and
	// event sequence assignment match a whole-fabric recomputation.
	//
	// Restoring that order is sort-free: small components use an
	// allocation-free insertion sort; larger ones are re-collected by
	// scanning fb.flows, which is index-ordered by construction (a
	// flow's index is its position), picking out this epoch's members.
	// Both produce strictly ascending index order.
	if len(flows) <= 24 {
		for i := 1; i < len(flows); i++ {
			f := flows[i]
			j := i - 1
			for j >= 0 && flows[j].index > f.index {
				flows[j+1] = flows[j]
				j--
			}
			flows[j+1] = f
		}
	} else {
		ordered := fb.orderedFlows[:0]
		for _, g := range fb.flows {
			if g.visit != ep {
				continue
			}
			ordered = append(ordered, g)
			if len(ordered) == len(flows) {
				break
			}
		}
		fb.orderedFlows = fb.dirtyFlows // swap buffers, keeping both grown
		fb.dirtyFlows = ordered
		flows = ordered
	}
	for _, l := range links {
		l.remaining = 0
	}
	for _, f := range flows {
		for _, l := range f.links {
			l.remaining += f.rate
		}
	}
	for _, l := range links {
		l.used.Set(now, l.remaining)
	}
	for _, f := range flows {
		if f.rate == f.prevRate && (f.ev != nil || f.rate == 0) {
			// Rate is bit-identical to before: the scheduled completion
			// event is still exact, leave it alone.
			continue
		}
		if f.rate > 0 {
			if f.ev != nil {
				// Move the queued completion in place instead of
				// cancel+allocate (canceled events are never recycled).
				f.ev = fb.shard.Reschedule(f.ev, now+f.remaining/f.rate)
			} else {
				f.ev = fb.shard.After(f.remaining/f.rate, f.onComplete)
			}
		} else if f.ev != nil {
			fb.shard.Cancel(f.ev)
			f.ev = nil
		}
	}
}
