// Package baseline implements the comparison points of the paper's
// evaluation: the default YARN configuration, a static configuration
// derived from a published offline tuning guide (the "Offline Tuning"
// bars of Figs 4–9), and a Gunther-style genetic-algorithm offline
// tuner used to reproduce the §7 claim that search-based offline
// tuning needs 20–40 test runs where MRONLINE needs one.
package baseline

import (
	"math"
	"math/rand"

	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/mrconf"
)

// Default returns the stock YARN configuration (Table 2 defaults).
func Default() mrconf.Config { return mrconf.Default() }

// ProfileStats are the aggregate statistics an offline tuning guide
// asks the operator to collect from profiling runs before applying its
// heuristics.
type ProfileStats struct {
	// MapOutputMBPerTask is the pre-combiner output (what the sort
	// buffer must hold).
	MapOutputMBPerTask   float64
	ReduceInputMBPerTask float64
	MapWorkingSetMB      float64
	ReduceWorkingSetMB   float64
	MapCPUBound          bool
	ShuffleHeavy         bool
}

// ProfileFromResult extracts ProfileStats from a completed profiling
// run (typically under the default configuration).
func ProfileFromResult(res mapreduce.Result) ProfileStats {
	var mapOut, redIn metrics.Sample
	var mapCPU metrics.Sample
	var mapWS, redWS metrics.Sample
	for _, r := range res.Reports {
		if r.OOM {
			continue
		}
		if r.Type == mapreduce.MapTask {
			mapOut.Observe(r.RawOutputMB)
			mapCPU.Observe(r.CPUUtil)
			peakHeap := r.MemUtil * r.Config.MapMemMB() * mrconf.HeapFraction
			if w := peakHeap - mapreduce.JVMBaseMB - r.Config.SortMB(); w > 0 {
				mapWS.Observe(w)
			}
		} else {
			redIn.Observe(r.DataMB)
			peakHeap := r.MemUtil * r.Config.ReduceMemMB() * mrconf.HeapFraction
			buf := r.Config.ShuffleBufferPct() * r.Config.ReduceHeapMB()
			if w := peakHeap - mapreduce.JVMBaseMB - buf; w > 0 {
				redWS.Observe(w)
			}
		}
	}
	return ProfileStats{
		MapOutputMBPerTask:   mapOut.Mean(),
		ReduceInputMBPerTask: redIn.Mean(),
		MapWorkingSetMB:      math.Max(60, mapWS.Max()*1.25),
		ReduceWorkingSetMB:   math.Max(120, redWS.Max()*1.25),
		MapCPUBound:          mapCPU.Mean() > 0.9,
		ShuffleHeavy:         redIn.Mean() > 256,
	}
}

// OfflineGuide applies the rule-of-thumb recommendations of vendor
// tuning guides to the profiled statistics: size io.sort.mb to the map
// output (one spill), raise spill.percent when the buffer fits, size
// the reduce shuffle buffer to the reduce input and retain map outputs
// in memory, and raise shuffle parallelism for shuffle-heavy jobs. It
// is a static, job-wide configuration: every task gets the same one.
func OfflineGuide(p ProfileStats) mrconf.Config {
	cfg := mrconf.Default()

	// Map side.
	sortMB := mrconf.MustLookup(mrconf.IOSortMB).Quantize(p.MapOutputMBPerTask * 1.2)
	cfg = cfg.With(mrconf.IOSortMB, sortMB)
	sortMB = cfg.SortMB()
	mapHeapNeed := mapreduce.JVMBaseMB + sortMB + p.MapWorkingSetMB
	cfg = cfg.With(mrconf.MapMemoryMB, mapHeapNeed*1.1/mrconf.HeapFraction)
	if cfg.SortMB() >= p.MapOutputMBPerTask*1.05 {
		cfg = cfg.With(mrconf.SortSpillPercent, 0.99)
	}

	// Reduce side.
	redHeapNeed := mapreduce.JVMBaseMB + p.ReduceInputMBPerTask*1.2 + p.ReduceWorkingSetMB
	cfg = cfg.With(mrconf.ReduceMemoryMB, redHeapNeed*1.1/mrconf.HeapFraction)
	heap := cfg.ReduceHeapMB()
	if heap > 0 {
		sbpMax := (heap - mapreduce.JVMBaseMB - p.ReduceWorkingSetMB) / heap
		sbp := metrics.Clamp(p.ReduceInputMBPerTask*1.15/heap, 0.2, math.Min(0.9, sbpMax))
		cfg = cfg.With(mrconf.ShuffleInputBufferPct, sbp)
		sbp = cfg.ShuffleBufferPct()
		if sbp*heap >= p.ReduceInputMBPerTask {
			cfg = cfg.With(mrconf.ReduceInputBufferPct, sbp).With(mrconf.ShuffleMergePct, sbp)
		} else {
			cfg = cfg.With(mrconf.ReduceInputBufferPct, math.Max(0, sbp-0.1)).
				With(mrconf.ShuffleMergePct, math.Max(0.2, sbp-0.04))
		}
	}
	cfg = cfg.With(mrconf.ShuffleMemoryLimitPct, 0.5).With(mrconf.MergeInmemThreshold, 0)

	if p.ShuffleHeavy {
		cfg = cfg.With(mrconf.ShuffleParallelCopies, 20)
	}
	if p.MapCPUBound {
		cfg = cfg.With(mrconf.MapCPUVcores, 4)
	}
	return mrconf.Repair(cfg)
}

// Genetic is a Gunther-style offline tuner: a small-population genetic
// algorithm where evaluating one individual costs one full test run of
// the application.
type Genetic struct {
	Population int
	MutateProb float64
	rng        *rand.Rand
	params     []mrconf.Param

	// Evals counts test runs consumed.
	Evals int
	// History records the best cost after each evaluation, for
	// convergence analysis (how many runs until within x% of final).
	History []float64

	best     mrconf.Config
	bestCost float64
}

// NewGenetic builds a GA over all Table 2 parameters.
func NewGenetic(rng *rand.Rand) *Genetic {
	return &Genetic{
		Population: 8,
		MutateProb: 0.2,
		rng:        rng,
		params:     mrconf.Params(),
		bestCost:   math.Inf(1),
	}
}

// Run evolves for the given number of generations, calling eval (one
// test run) per individual, and returns the best configuration found.
func (g *Genetic) Run(eval func(mrconf.Config) float64, generations int) mrconf.Config {
	pop := make([]mrconf.Config, g.Population)
	costs := make([]float64, g.Population)
	for i := range pop {
		pop[i] = g.randomConfig()
		costs[i] = g.measure(pop[i], eval)
	}
	for gen := 0; gen < generations; gen++ {
		next := make([]mrconf.Config, 0, g.Population)
		nextCosts := make([]float64, 0, g.Population)
		// Elitism: keep the best individual.
		bi := argmin(costs)
		next = append(next, pop[bi])
		nextCosts = append(nextCosts, costs[bi])
		for len(next) < g.Population {
			a := g.tournament(pop, costs)
			b := g.tournament(pop, costs)
			child := g.crossover(a, b)
			child = g.mutate(child)
			next = append(next, child)
			nextCosts = append(nextCosts, g.measure(child, eval))
		}
		pop, costs = next, nextCosts
	}
	return g.best
}

// Best returns the best configuration and its cost so far.
func (g *Genetic) Best() (mrconf.Config, float64) { return g.best, g.bestCost }

func (g *Genetic) measure(cfg mrconf.Config, eval func(mrconf.Config) float64) float64 {
	c := eval(cfg)
	g.Evals++
	if c < g.bestCost {
		g.bestCost = c
		g.best = cfg
	}
	g.History = append(g.History, g.bestCost)
	return c
}

func (g *Genetic) randomConfig() mrconf.Config {
	cfg := mrconf.Default()
	for _, p := range g.params {
		cfg = cfg.With(p.Name, p.Min+g.rng.Float64()*(p.Max-p.Min))
	}
	return mrconf.Repair(cfg)
}

func (g *Genetic) tournament(pop []mrconf.Config, costs []float64) mrconf.Config {
	i := g.rng.Intn(len(pop))
	j := g.rng.Intn(len(pop))
	if costs[i] <= costs[j] {
		return pop[i]
	}
	return pop[j]
}

func (g *Genetic) crossover(a, b mrconf.Config) mrconf.Config {
	cfg := mrconf.Default()
	for _, p := range g.params {
		v := a.Get(p.Name)
		if g.rng.Intn(2) == 1 {
			v = b.Get(p.Name)
		}
		cfg = cfg.With(p.Name, v)
	}
	return mrconf.Repair(cfg)
}

func (g *Genetic) mutate(cfg mrconf.Config) mrconf.Config {
	for _, p := range g.params {
		if g.rng.Float64() < g.MutateProb {
			span := (p.Max - p.Min) * 0.25
			v := cfg.Get(p.Name) + (g.rng.Float64()*2-1)*span
			cfg = cfg.With(p.Name, v)
		}
	}
	return mrconf.Repair(cfg)
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// RandomSearch is the weakest baseline: independent uniform samples,
// one test run each.
type RandomSearch struct {
	rng    *rand.Rand
	params []mrconf.Param

	Evals    int
	best     mrconf.Config
	bestCost float64
}

// NewRandomSearch builds a random-search tuner.
func NewRandomSearch(rng *rand.Rand) *RandomSearch {
	return &RandomSearch{rng: rng, params: mrconf.Params(), bestCost: math.Inf(1)}
}

// Run draws n random configurations and returns the best.
func (r *RandomSearch) Run(eval func(mrconf.Config) float64, n int) mrconf.Config {
	for i := 0; i < n; i++ {
		cfg := mrconf.Default()
		for _, p := range r.params {
			cfg = cfg.With(p.Name, p.Min+r.rng.Float64()*(p.Max-p.Min))
		}
		cfg = mrconf.Repair(cfg)
		c := eval(cfg)
		r.Evals++
		if c < r.bestCost {
			r.bestCost = c
			r.best = cfg
		}
	}
	return r.best
}

// Best returns the best configuration and cost found.
func (r *RandomSearch) Best() (mrconf.Config, float64) { return r.best, r.bestCost }
