package baseline

import (
	"math"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
)

func profileWith(mapRaw, redIn float64) ProfileStats {
	return ProfileStats{
		MapOutputMBPerTask:   mapRaw,
		ReduceInputMBPerTask: redIn,
		MapWorkingSetMB:      80,
		ReduceWorkingSetMB:   150,
	}
}

func TestOfflineGuideSizesSortBuffer(t *testing.T) {
	cfg := OfflineGuide(profileWith(140, 500))
	if cfg.SortMB() < 140 {
		t.Fatalf("io.sort.mb = %v, want >= raw map output 140", cfg.SortMB())
	}
	if cfg.SpillPct() != 0.99 {
		t.Fatalf("spill.percent = %v, want 0.99 when the buffer fits", cfg.SpillPct())
	}
	if cfg.SortMB() > cfg.MapHeapMB() {
		t.Fatal("guide violated the sort-buffer/heap dependency")
	}
}

func TestOfflineGuideReduceBuffers(t *testing.T) {
	cfg := OfflineGuide(profileWith(140, 500))
	heap := cfg.ReduceHeapMB()
	if heap < 500 {
		t.Fatalf("reduce heap %v too small for 500 MB input", heap)
	}
	if cfg.ShuffleBufferPct()*heap < 400 {
		t.Fatalf("shuffle buffer %v MB too small", cfg.ShuffleBufferPct()*heap)
	}
	if cfg.InmemThreshold() != 0 {
		t.Fatal("inmem threshold should be disabled")
	}
	if err := mrconf.Validate(cfg); err != nil {
		t.Fatalf("guide config invalid: %v", err)
	}
}

func TestOfflineGuideShuffleHeavy(t *testing.T) {
	p := profileWith(140, 500)
	p.ShuffleHeavy = true
	if OfflineGuide(p).ParallelCopies() <= mrconf.Default().ParallelCopies() {
		t.Fatal("shuffle-heavy profile should raise parallelcopies")
	}
}

func TestOfflineGuideCPUBound(t *testing.T) {
	p := profileWith(10, 10)
	p.MapCPUBound = true
	if OfflineGuide(p).MapVcores() <= 1 {
		t.Fatal("CPU-bound profile should raise map vcores")
	}
}

func TestProfileFromResult(t *testing.T) {
	res := mapreduce.Result{
		Reports: []mapreduce.TaskReport{
			{Type: mapreduce.MapTask, Config: mrconf.Default(), DataMB: 100, RawOutputMB: 160, MemUtil: 0.4, CPUUtil: 0.95},
			{Type: mapreduce.MapTask, Config: mrconf.Default(), DataMB: 120, RawOutputMB: 200, MemUtil: 0.4, CPUUtil: 0.95},
			{Type: mapreduce.ReduceTask, Config: mrconf.Default(), DataMB: 500, MemUtil: 0.5},
			{Type: mapreduce.MapTask, Config: mrconf.Default(), DataMB: 999, RawOutputMB: 999, OOM: true},
		},
	}
	p := ProfileFromResult(res)
	if math.Abs(p.MapOutputMBPerTask-180) > 1e-9 {
		t.Fatalf("map output = %v, want 180 (OOM report excluded)", p.MapOutputMBPerTask)
	}
	if p.ReduceInputMBPerTask != 500 {
		t.Fatalf("reduce input = %v", p.ReduceInputMBPerTask)
	}
	if !p.MapCPUBound {
		t.Fatal("0.95 mean CPU should classify as CPU-bound")
	}
	if !p.ShuffleHeavy {
		t.Fatal("500 MB per reducer should classify as shuffle-heavy")
	}
}

// A deterministic synthetic objective: distance to a fixed optimum.
func synthEval() (func(mrconf.Config) float64, mrconf.Config) {
	opt := mrconf.Default().
		With(mrconf.IOSortMB, 400).
		With(mrconf.MapMemoryMB, 1536).
		With(mrconf.ShuffleInputBufferPct, 0.8)
	eval := func(c mrconf.Config) float64 {
		sum := 0.0
		for _, p := range mrconf.Params() {
			d := (c.Get(p.Name) - opt.Get(p.Name)) / (p.Max - p.Min)
			sum += d * d
		}
		return sum
	}
	return eval, opt
}

func TestGeneticImprovesOverGenerations(t *testing.T) {
	eval, _ := synthEval()
	ga := NewGenetic(sim.NewSource(1).Stream("ga"))
	ga.Run(eval, 5)
	if ga.Evals < 20 || ga.Evals > 60 {
		t.Fatalf("GA used %d evals for 5 generations of 8", ga.Evals)
	}
	_, best := ga.Best()
	// History must be monotone nonincreasing.
	for i := 1; i < len(ga.History); i++ {
		if ga.History[i] > ga.History[i-1] {
			t.Fatal("GA best-so-far history not monotone")
		}
	}
	if best > ga.History[ga.Population-1] {
		t.Fatal("GA final best worse than initial population best")
	}
}

func TestGeneticTakesManyRunsToConverge(t *testing.T) {
	// The §7 claim: a Gunther-style GA needs tens of test runs. On the
	// synthetic objective, reaching within 5% of its final best must
	// take well over one evaluation.
	eval, _ := synthEval()
	ga := NewGenetic(sim.NewSource(2).Stream("ga"))
	ga.Run(eval, 4)
	_, final := ga.Best()
	runs := len(ga.History)
	for i, c := range ga.History {
		if c <= final*1.05 {
			runs = i + 1
			break
		}
	}
	if runs < 5 {
		t.Fatalf("GA converged in %d runs; expected tens", runs)
	}
}

func TestGeneticConfigsAlwaysValid(t *testing.T) {
	checked := 0
	eval := func(c mrconf.Config) float64 {
		if err := mrconf.Validate(c); err != nil {
			t.Fatalf("GA produced invalid config: %v", err)
		}
		checked++
		return 1
	}
	NewGenetic(sim.NewSource(3).Stream("ga")).Run(eval, 3)
	if checked == 0 {
		t.Fatal("eval never called")
	}
}

func TestRandomSearch(t *testing.T) {
	eval, _ := synthEval()
	rs := NewRandomSearch(sim.NewSource(4).Stream("rs"))
	rs.Run(eval, 30)
	if rs.Evals != 30 {
		t.Fatalf("Evals = %d", rs.Evals)
	}
	_, best := rs.Best()
	if math.IsInf(best, 1) {
		t.Fatal("random search found nothing")
	}
}

func TestDefaultIsTable2(t *testing.T) {
	if !Default().Equal(mrconf.Default()) {
		t.Fatal("baseline default differs from Table 2 defaults")
	}
}
