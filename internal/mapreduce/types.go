// Package mapreduce models the MapReduce runtime on top of the yarn
// and cluster substrates: an application master that schedules map and
// reduce tasks in containers, and per-task execution models for the
// map side (split read, map function, sort buffer, spills, multi-pass
// merge) and the reduce side (shuffle with parallel copies, in-memory
// and on-disk merges, reduce function, HDFS output write).
//
// Every Table 2 parameter acts through the same mechanism as in
// Hadoop: io.sort.mb and sort.spill.percent size the map sort buffer
// and therefore the spill count; io.sort.factor bounds merge fan-in;
// the shuffle buffer percentages gate what stays in memory on the
// reduce side; container memory/vcores shape the yarn allocation and
// the CPU cap. MRONLINE plugs in through the Controller interface:
// per-task configurations, launch gating for wave-based tuning, and
// task completion reports.
package mapreduce

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mrconf"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// TaskType distinguishes map from reduce tasks.
type TaskType int

const (
	MapTask TaskType = iota
	ReduceTask
)

func (t TaskType) String() string {
	if t == MapTask {
		return "map"
	}
	return "reduce"
}

// TaskState tracks a task through its lifecycle.
type TaskState int

const (
	TaskPending TaskState = iota
	TaskRequested
	TaskRunning
	TaskSucceeded
	TaskFailed
)

// Task is one map or reduce task (all attempts share the Task).
type Task struct {
	Job     *Job
	Type    TaskType
	ID      int
	Attempt int

	// Skew multiplies this task's data volume and CPU work (data skew,
	// paper §1).
	Skew float64
	// Split is the map input block; nil for reduce tasks.
	Split *hdfs.Block

	// Config is the configuration of the current attempt, assigned by
	// the Controller when the container was requested. Always set via
	// setConfig so the compiled snapshot stays in sync.
	Config mrconf.Config
	// snap is Config compiled to a dense array (see mrconf.Snapshot);
	// per-event parameter reads go through it.
	snap mrconf.Snapshot

	State     TaskState
	StartTime float64
	EndTime   float64

	container  *yarn.Container
	pendingReq *yarn.Request
	// req is the task's container request storage, re-populated per
	// attempt so requesting a container does not allocate. The cached
	// callbacks capture only the Task and resolve the owning Job at
	// call time, which keeps them reusable when the pooled Task is
	// adopted by a later job.
	req          yarn.Request
	onAllocCB    func(*yarn.Container)
	onPreemptCB  func(*yarn.Container)
	onNodeLostCB func(*yarn.Container)
	// liveFlows are the attempt's in-flight resource flows, canceled
	// when a speculative twin wins.
	liveFlows []*cluster.Flow
	// liveOps are the attempt's in-flight fault-tolerant HDFS
	// operations (reads/writes that internally retry), canceled
	// alongside liveFlows.
	liveOps []canceler
	killed  bool
	// Speculative-execution links: specCopy on the original points to
	// its running shadow; specOrigin on a shadow points back. The
	// original is the logical task; logicalDone marks the first copy
	// to succeed.
	specCopy    *Task
	specOrigin  *Task
	logicalDone bool

	cpuSecs    float64
	inputMB    float64
	peakMemMB  float64
	spilledRec float64
	outputRec  float64
	dataMB     float64
	rawOutMB   float64
	numSpills  int
	oomCount   int

	// outputNode records where a completed map's output lives (set on
	// the logical task by mapFinish). If that node is later lost while
	// reducers still need the data, the map re-executes.
	outputNode *cluster.Node
}

// canceler is an in-flight operation an attempt can abort (HDFS
// read/write ops).
type canceler interface{ Cancel() }

// Counters aggregates Hadoop-style job counters.
type Counters struct {
	MapInputMB          float64
	MapOutputRecords    float64 // pre-combiner, as in Hadoop
	CombineOutputRecs   float64
	MapOutputMB         float64 // post-combiner (what is shuffled)
	SpilledRecordsMap   float64
	SpilledRecordsRed   float64
	ReduceInputMB       float64
	OutputMB            float64
	MapSpills           float64 // total spill files across map tasks
	OOMKills            int
	SpeculativeLaunches int
	SpeculativeWins     int
	SpeculativeKills    int
	Preemptions         int
	NodeLocalMaps       int
	RackLocalMaps       int
	OffRackMaps         int

	// Fault-recovery counters (all zero when nothing was injected).
	TaskFailures   int // non-OOM attempt failures (counted vs MaxAttempts)
	NodeLossKills  int // attempts requeued because their node crashed
	MapsReExecuted int // completed maps re-run after output loss
}

// SpilledRecords is the Hadoop "Spilled Records" counter: map side
// plus reduce side.
func (c Counters) SpilledRecords() float64 {
	return c.SpilledRecordsMap + c.SpilledRecordsRed
}

// TaskReport is what the MRONLINE monitor receives when a task attempt
// finishes (paper §3: per-task progress, CPU and memory utilization,
// spilled records).
type TaskReport struct {
	JobName string
	Type    TaskType
	ID      int
	Attempt int
	Config  mrconf.Config
	Node    string

	Start, End float64
	// CPUUtil is consumed CPU over the container's vcore allowance.
	CPUUtil float64
	// MemUtil is peak resident memory over the container's memory.
	MemUtil float64
	// SpilledRecords and OutputRecords feed the Eq. 1 cost ratio
	// (spills over map-output/combiner-output records).
	SpilledRecords float64
	OutputRecords  float64
	// DataMB is the task's data volume: post-combiner output for maps,
	// shuffle input for reduces. The §6 tuning rules size buffers from
	// this.
	DataMB float64
	// RawOutputMB is the Hadoop "Map output bytes" counter: the
	// pre-combiner map output, which is what fills the sort buffer.
	RawOutputMB float64
	// Spills is the map-side spill-file count (0 for reduces).
	Spills int
	OOM    bool
	// Failed marks a non-OOM attempt failure (injected fault, lost
	// input). The monitor discards such samples like OOM ones.
	Failed bool
}

// Duration returns the attempt's wall-clock run time.
func (r TaskReport) Duration() float64 { return r.End - r.Start }

// Controller is MRONLINE's hook into the application master. The
// default PassthroughController runs the job exactly as stock YARN
// would.
type Controller interface {
	// TaskConfig returns the configuration for a task attempt about to
	// be requested; the container is shaped accordingly. This is the
	// dynamic configurator's moment: per-task configs, different-sized
	// containers.
	TaskConfig(t *Task, base mrconf.Config) mrconf.Config
	// AllowLaunch reports whether the AM may request a container for
	// the next pending task now. Aggressive tuning returns false to
	// hold the wave until the previous one is measured (paper §6.1).
	AllowLaunch(t *Task) bool
	// TaskCompleted delivers the monitor's per-task statistics.
	TaskCompleted(r TaskReport)
	// LiveConfig lets category-3 (on-the-fly) parameters change for a
	// running task at its next decision point; return current to keep.
	LiveConfig(t *Task, current mrconf.Config) mrconf.Config
}

// PassthroughController applies the base configuration to all tasks.
type PassthroughController struct{}

// TaskConfig implements Controller.
func (PassthroughController) TaskConfig(t *Task, base mrconf.Config) mrconf.Config { return base }

// AllowLaunch implements Controller.
func (PassthroughController) AllowLaunch(t *Task) bool { return true }

// TaskCompleted implements Controller.
func (PassthroughController) TaskCompleted(r TaskReport) {}

// LiveConfig implements Controller.
func (PassthroughController) LiveConfig(t *Task, current mrconf.Config) mrconf.Config {
	return current
}

// Result summarizes a completed job.
type Result struct {
	JobName  string
	Duration float64
	Counters Counters
	Reports  []TaskReport
	Failed   bool
	Err      error

	// Utilization summaries per task type (averages over reports),
	// used for Figs 15 and 16.
	MapCPUUtil, MapMemUtil       float64
	ReduceCPUUtil, ReduceMemUtil float64
}

// Spec describes a job submission.
type Spec struct {
	Name       string
	Benchmark  workload.Benchmark
	BaseConfig mrconf.Config
	Controller Controller
	// Weight is the fair-share weight.
	Weight float64
	// SlowstartFraction of maps must finish before reduces launch
	// (category-1 parameter, default 0.05 as in Hadoop).
	SlowstartFraction float64
	// MaxAttempts per task before the job fails (Hadoop default 4).
	MaxAttempts int
	// Trace receives the job's execution timeline. Any trace.Sink
	// works: a *trace.Recorder retains every event, trace.Discard (the
	// default for nil) drops them, and the streaming/ring/stats sinks
	// keep memory flat over long job streams.
	Trace trace.Sink
	// Speculation enables straggler mitigation when non-nil (see
	// DefaultSpeculation). Nil matches the paper's experimental setup.
	Speculation *SpeculationConfig
	// Faults, when non-nil, lets a fault injector perturb the job's
	// runtime (see internal/faults). Nil costs nothing: no hooks are
	// consulted and no extra events or RNG draws occur.
	Faults FaultHooks
	// Pool, when non-nil, recycles the job's Job/Task objects after
	// onDone returns, so a long stream of submissions stops allocating
	// per-job state. See Pool for the (strict) ownership contract.
	Pool *Pool
	// Precompiled, when non-nil, supplies the base configuration's
	// compiled snapshots so repeat submissions of the same class skip
	// Snapshot/Repair work. Build one with Precompile; it must have
	// been built from this Spec's BaseConfig.
	Precompiled *PrecompiledConfig
	// ReleaseInputOnFinish deletes the job's HDFS input file from the
	// namenode when the job completes, keeping block registries flat
	// over a continuous stream. Leave false for fault experiments:
	// post-finish re-replication of a finished job's blocks is part of
	// the modeled behavior there.
	ReleaseInputOnFinish bool
}

// FaultHooks is the job-runtime side of fault injection. The injector
// (internal/faults) implements it; the hooks draw from the injector's
// dedicated RNG stream so enabling them never perturbs the job's own
// randomness.
type FaultHooks interface {
	// FetchFails reports whether the next shuffle fetch attempt should
	// fail (and be retried after a backoff).
	FetchFails() bool
	// AttemptFailDelay returns, for a task attempt that just started, a
	// delay after which the attempt is killed (simulating disk errors,
	// JVM crashes); ok=false lets the attempt run normally.
	AttemptFailDelay(taskType string, taskID, attempt int) (delay float64, ok bool)
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.Controller == nil {
		out.Controller = PassthroughController{}
	}
	if out.Weight == 0 {
		out.Weight = 1
	}
	if out.SlowstartFraction == 0 {
		out.SlowstartFraction = 0.05
	}
	if out.MaxAttempts == 0 {
		out.MaxAttempts = 4
	}
	if out.Name == "" {
		out.Name = out.Benchmark.Name
	}
	if out.Trace == nil {
		out.Trace = trace.Discard
	}
	return out
}

func (t *Task) String() string {
	return fmt.Sprintf("%s/%s-%05d", t.Job.Name, t.Type, t.ID)
}

// setConfig installs the attempt's configuration and compiles it once;
// the task's event handlers read parameters through t.snap afterwards.
// When the config is the job's repaired base (by identity — the
// steady-state case), the snapshot compiled at submission is reused.
func (t *Task) setConfig(cfg mrconf.Config) {
	t.Config = cfg
	if j := t.Job; j != nil && cfg.Same(j.baseRepaired) {
		t.snap = j.baseRepairedSnap
		return
	}
	t.snap = cfg.Snapshot()
}

// Runtime model constants. These are substrate calibration, not tuning
// parameters: they mirror fixed costs of the paper's testbed.
const (
	// JVMBaseMB is heap consumed by the task JVM before buffers.
	JVMBaseMB = 150
	// TaskLaunchOverheadSecs covers JVM start and localization.
	TaskLaunchOverheadSecs = 1.0
	// MapComputeParallelism is the usable core parallelism of a map
	// task (single-threaded user code plus JVM background work).
	MapComputeParallelism = 1.0
	// ReduceComputeParallelism mirrors the above for reduce user code.
	ReduceComputeParallelism = 1.0
	// ShuffleStreamMBps is the per-copy-thread fetch throughput; a
	// reducer's aggregate shuffle rate is capped at parallelcopies
	// times this (before NIC contention).
	ShuffleStreamMBps = 8.0
	// MinFetchChunkMB batches shuffle fetches so that one simulated
	// flow covers many segment copies.
	MinFetchChunkMB = 32.0
	// CrossRackFraction of shuffle traffic traverses the rack uplink
	// (partitions are spread uniformly over both racks).
	CrossRackFraction = 0.5
	// FetchRetryDelaySecs is the backoff before a reducer retries a
	// failed shuffle fetch.
	FetchRetryDelaySecs = 1.0
	// BurstFloorCores is the minimum CPU a container can use
	// regardless of its vcore allowance: vcore enforcement uses
	// cgroup cpu.shares-style soft limits that still let a starved
	// container burst to half a core when the node has idle cycles.
	BurstFloorCores = 0.5
	// PipelineEfficiencyHighSpillPct discounts spill/compute overlap
	// when sort.spill.percent leaves too little headroom (>0.9) and
	// the collector blocks on the spill thread.
	PipelineEfficiencyHighSpillPct = 0.3
)

// Summary renders the counters in jobhistory style.
func (c Counters) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Map input MB=%.0f\n", c.MapInputMB)
	fmt.Fprintf(&b, "Map output records=%.3g (combine output=%.3g)\n", c.MapOutputRecords, c.CombineOutputRecs)
	fmt.Fprintf(&b, "Map output MB=%.0f\n", c.MapOutputMB)
	fmt.Fprintf(&b, "Spilled records=%.3g (map %.3g, reduce %.3g)\n",
		c.SpilledRecords(), c.SpilledRecordsMap, c.SpilledRecordsRed)
	fmt.Fprintf(&b, "Reduce input MB=%.0f, output MB=%.0f\n", c.ReduceInputMB, c.OutputMB)
	fmt.Fprintf(&b, "Data-local maps=%d, rack-local=%d, off-rack=%d\n",
		c.NodeLocalMaps, c.RackLocalMaps, c.OffRackMaps)
	if c.OOMKills > 0 {
		fmt.Fprintf(&b, "OOM kills=%d\n", c.OOMKills)
	}
	if c.SpeculativeLaunches > 0 {
		fmt.Fprintf(&b, "Speculative: launched=%d won=%d killed=%d\n",
			c.SpeculativeLaunches, c.SpeculativeWins, c.SpeculativeKills)
	}
	if c.Preemptions > 0 {
		fmt.Fprintf(&b, "Preempted containers=%d\n", c.Preemptions)
	}
	if c.TaskFailures > 0 {
		fmt.Fprintf(&b, "Failed task attempts=%d\n", c.TaskFailures)
	}
	if c.NodeLossKills > 0 {
		fmt.Fprintf(&b, "Attempts lost to node failures=%d\n", c.NodeLossKills)
	}
	if c.MapsReExecuted > 0 {
		fmt.Fprintf(&b, "Re-executed maps=%d\n", c.MapsReExecuted)
	}
	return b.String()
}
