package mapreduce

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// rig bundles a fresh simulated cluster for one job run.
type rig struct {
	eng *sim.Engine
	c   *cluster.Cluster
	rm  *yarn.ResourceManager
	fs  *hdfs.FileSystem
}

func newRig() *rig {
	eng := sim.NewEngine()
	eng.MaxEvents = 50_000_000
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
	fs := hdfs.New(c, sim.NewSource(42).Stream("hdfs"))
	return &rig{eng: eng, c: c, rm: rm, fs: fs}
}

// run executes one job to completion and returns its result.
func (r *rig) run(t *testing.T, spec Spec) Result {
	t.Helper()
	var res Result
	got := false
	Submit(r.rm, r.fs, spec, func(rr Result) { res = rr; got = true })
	r.eng.Run()
	if !got {
		t.Fatalf("job %q never completed (deadlock?): pending events drained", spec.Name)
	}
	return res
}

func smallTerasort() workload.Benchmark { return workload.Terasort(10, 0, 0) }

func TestTerasortCompletes(t *testing.T) {
	r := newRig()
	res := r.run(t, Spec{Benchmark: smallTerasort(), BaseConfig: mrconf.Default()})
	if res.Failed {
		t.Fatalf("job failed: %v", res.Err)
	}
	if res.Duration <= 0 {
		t.Fatal("non-positive duration")
	}
	b := smallTerasort()
	if got := len(res.Reports); got != b.NumMaps+b.NumReduces {
		t.Fatalf("reports = %d, want %d", got, b.NumMaps+b.NumReduces)
	}
}

func TestDataVolumeConservation(t *testing.T) {
	r := newRig()
	b := smallTerasort()
	res := r.run(t, Spec{Benchmark: b, BaseConfig: mrconf.Default()})
	// Map output ≈ shuffle size (modulo skew averaging), reduce input
	// equals map output, job output ≈ reduce input for terasort.
	if math.Abs(res.Counters.MapOutputMB-b.ShuffleSizeMB)/b.ShuffleSizeMB > 0.1 {
		t.Errorf("map output %v far from table shuffle %v", res.Counters.MapOutputMB, b.ShuffleSizeMB)
	}
	if math.Abs(res.Counters.ReduceInputMB-res.Counters.MapOutputMB) > 1e-6*res.Counters.MapOutputMB {
		t.Errorf("reduce input %v != map output %v", res.Counters.ReduceInputMB, res.Counters.MapOutputMB)
	}
	if math.Abs(res.Counters.OutputMB-res.Counters.ReduceInputMB) > 1e-6*res.Counters.ReduceInputMB {
		t.Errorf("terasort output %v != reduce input %v", res.Counters.OutputMB, res.Counters.ReduceInputMB)
	}
}

func TestDefaultConfigSpillsRoughlyTripleOptimal(t *testing.T) {
	// Terasort with the default 100 MB sort buffer spills each ~136 MB
	// map output twice and rewrites it in the merge, and the reduce
	// side (input.buffer.percent=0) writes everything to disk once:
	// total spilled records land between 2x and 3.5x the combiner
	// output records (the paper's Fig 7 shows ~3x for default).
	r := newRig()
	res := r.run(t, Spec{Benchmark: smallTerasort(), BaseConfig: mrconf.Default()})
	optimal := res.Counters.CombineOutputRecs
	ratio := res.Counters.SpilledRecords() / optimal
	if ratio < 2 || ratio > 3.6 {
		t.Fatalf("default spill ratio = %.2f, want in [2, 3.6]", ratio)
	}
}

func TestTunedConfigReachesOptimalSpills(t *testing.T) {
	// A large sort buffer (single map spill) plus a reduce buffer that
	// retains everything in memory should bring spills to the optimal:
	// exactly the combiner output records, none on the reduce side.
	r := newRig()
	cfg := mrconf.Default().
		With(mrconf.MapMemoryMB, 2048).
		With(mrconf.IOSortMB, 400).
		With(mrconf.SortSpillPercent, 0.99).
		With(mrconf.ReduceMemoryMB, 2048).
		With(mrconf.ShuffleInputBufferPct, 0.85).
		With(mrconf.ShuffleMemoryLimitPct, 0.5).
		With(mrconf.ReduceInputBufferPct, 0.85)
	res := r.run(t, Spec{Benchmark: smallTerasort(), BaseConfig: cfg})
	if res.Failed {
		t.Fatalf("tuned job failed: %v", res.Err)
	}
	if res.Counters.SpilledRecordsRed != 0 {
		t.Errorf("reduce-side spills = %v, want 0", res.Counters.SpilledRecordsRed)
	}
	ratio := res.Counters.SpilledRecords() / res.Counters.CombineOutputRecs
	if math.Abs(ratio-1) > 1e-6 {
		t.Errorf("tuned spill ratio = %v, want 1 (optimal)", ratio)
	}
}

func TestTunedFasterThanDefault(t *testing.T) {
	b := workload.Terasort(20, 0, 0)
	def := newRig().run(t, Spec{Benchmark: b, BaseConfig: mrconf.Default()})
	cfg := mrconf.Default().
		With(mrconf.MapMemoryMB, 1536).
		With(mrconf.IOSortMB, 240).
		With(mrconf.SortSpillPercent, 0.99).
		With(mrconf.MapCPUVcores, 2).
		With(mrconf.ReduceMemoryMB, 2048).
		With(mrconf.ShuffleInputBufferPct, 0.85).
		With(mrconf.ShuffleMemoryLimitPct, 0.5).
		With(mrconf.ReduceInputBufferPct, 0.85).
		With(mrconf.ReduceCPUVcores, 2).
		With(mrconf.ShuffleParallelCopies, 20)
	tuned := newRig().run(t, Spec{Benchmark: b, BaseConfig: cfg})
	if tuned.Duration >= def.Duration {
		t.Fatalf("tuned (%.0fs) not faster than default (%.0fs)", tuned.Duration, def.Duration)
	}
}

func TestOOMRetryWithLargerContainer(t *testing.T) {
	// io.sort.mb close to the heap leaves no room for the working set:
	// first attempts OOM; a controller that reacts by growing the
	// container lets the job finish.
	base := mrconf.Default().With(mrconf.IOSortMB, 760) // heap 819, working set ~50 -> OOM
	b := workload.Terasort(2, 0, 0)
	ctrl := &growOnOOM{}
	r := newRig()
	res := r.run(t, Spec{Benchmark: b, BaseConfig: base, Controller: ctrl, Name: "oomjob"})
	if res.Failed {
		t.Fatalf("job failed despite adaptive controller: %v", res.Err)
	}
	if res.Counters.OOMKills == 0 {
		t.Fatal("expected at least one OOM kill")
	}
}

// growOnOOM bumps map memory once a task has failed.
type growOnOOM struct{ PassthroughController }

func (g *growOnOOM) TaskConfig(t *Task, base mrconf.Config) mrconf.Config {
	if t.Attempt > 0 {
		return base.With(mrconf.MapMemoryMB, 2048)
	}
	return base
}

func TestOOMExhaustsAttempts(t *testing.T) {
	base := mrconf.Default().With(mrconf.IOSortMB, 800).With(mrconf.MapMemoryMB, 1024)
	b := workload.Terasort(2, 0, 0)
	r := newRig()
	res := r.run(t, Spec{Benchmark: b, BaseConfig: base, MaxAttempts: 2})
	if !res.Failed {
		t.Fatal("job should have failed after exhausting attempts")
	}
	if res.Err == nil {
		t.Fatal("failed job carries no error")
	}
}

func TestPerTaskConfigsApplied(t *testing.T) {
	// Give even map tasks 2 vcores and odd ones 1; verify reports echo
	// the per-task configs (the paper's core framework capability).
	ctrl := &alternatingVcores{}
	r := newRig()
	res := r.run(t, Spec{Benchmark: workload.Terasort(2, 0, 0), BaseConfig: mrconf.Default(), Controller: ctrl})
	if res.Failed {
		t.Fatal(res.Err)
	}
	checked := 0
	for _, rep := range res.Reports {
		if rep.Type != MapTask {
			continue
		}
		want := 1
		if rep.ID%2 == 0 {
			want = 2
		}
		if rep.Config.MapVcores() != want {
			t.Fatalf("map %d ran with %d vcores, want %d", rep.ID, rep.Config.MapVcores(), want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no map reports")
	}
}

type alternatingVcores struct{ PassthroughController }

func (alternatingVcores) TaskConfig(t *Task, base mrconf.Config) mrconf.Config {
	if t.Type == MapTask && t.ID%2 == 0 {
		return base.With(mrconf.MapCPUVcores, 2)
	}
	return base
}

func TestLaunchGateHoldsWave(t *testing.T) {
	// A controller that only ever allows the first 4 map tasks: the
	// job cannot finish, but exactly 4 maps must have run when we stop.
	ctrl := &gateFirstN{n: 4}
	r := newRig()
	b := workload.Terasort(2, 0, 0)
	Submit(r.rm, r.fs, Spec{Benchmark: b, BaseConfig: mrconf.Default(), Controller: ctrl}, func(Result) {})
	r.eng.RunUntil(500)
	if got := ctrl.completed; got != 4 {
		t.Fatalf("completed %d maps under launch gate, want 4", got)
	}
}

type gateFirstN struct {
	PassthroughController
	n         int
	completed int
}

func (g *gateFirstN) AllowLaunch(t *Task) bool {
	if t.Type == ReduceTask {
		return false
	}
	return t.ID < g.n
}

func (g *gateFirstN) TaskCompleted(r TaskReport) {
	if r.Type == MapTask && !r.OOM {
		g.completed++
	}
}

func TestMostMapsNodeLocal(t *testing.T) {
	r := newRig()
	res := r.run(t, Spec{Benchmark: smallTerasort(), BaseConfig: mrconf.Default()})
	c := res.Counters
	total := c.NodeLocalMaps + c.RackLocalMaps + c.OffRackMaps
	if total != smallTerasort().NumMaps {
		t.Fatalf("locality counters %d != maps %d", total, smallTerasort().NumMaps)
	}
	if frac := float64(c.NodeLocalMaps) / float64(total); frac < 0.7 {
		t.Fatalf("node-local fraction = %.2f, want >= 0.7 (delay scheduling)", frac)
	}
}

func TestBBPComputeBound(t *testing.T) {
	r := newRig()
	res := r.run(t, Spec{Benchmark: workload.BBP(500000, 100), BaseConfig: mrconf.Default()})
	if res.Failed {
		t.Fatal(res.Err)
	}
	// One vcore = ~0.29 cores: the fixed 40 core-seconds per map run
	// at the cap, so BBP map CPU utilization should be ~100%.
	if res.MapCPUUtil < 0.9 {
		t.Fatalf("BBP map CPU utilization = %.2f, want ~1 (paper Fig 16)", res.MapCPUUtil)
	}
}

func TestMoreVcoresSpeedUpBBP(t *testing.T) {
	b := workload.BBP(500000, 100)
	slow := newRig().run(t, Spec{Benchmark: b, BaseConfig: mrconf.Default()})
	fast := newRig().run(t, Spec{Benchmark: b, BaseConfig: mrconf.Default().With(mrconf.MapCPUVcores, 4)})
	// With cpu.shares-style soft caps a 1-vcore container still bursts
	// to half a core, so 4 vcores (a full core for single-threaded map
	// code) buys about 2x.
	if fast.Duration >= slow.Duration*0.65 {
		t.Fatalf("4 vcores (%.0fs) should be much faster than 1 (%.0fs) for compute-bound BBP",
			fast.Duration, slow.Duration)
	}
}

func TestDefaultMemoryUnderutilized(t *testing.T) {
	// Paper Fig 15: under the default config memory utilization is
	// below 50%.
	r := newRig()
	res := r.run(t, Spec{Benchmark: smallTerasort(), BaseConfig: mrconf.Default()})
	if res.MapMemUtil >= 0.6 {
		t.Fatalf("default map memory utilization = %.2f, expected underutilization", res.MapMemUtil)
	}
}

func TestSortFactorLimitsMergePasses(t *testing.T) {
	if p := mergePasses(1, 10); p != 0 {
		t.Errorf("mergePasses(1,10) = %d, want 0", p)
	}
	if p := mergePasses(2, 10); p != 1 {
		t.Errorf("mergePasses(2,10) = %d, want 1", p)
	}
	if p := mergePasses(10, 10); p != 1 {
		t.Errorf("mergePasses(10,10) = %d, want 1", p)
	}
	if p := mergePasses(11, 10); p != 2 {
		t.Errorf("mergePasses(11,10) = %d, want 2", p)
	}
	if p := mergePasses(100, 10); p != 2 {
		t.Errorf("mergePasses(100,10) = %d, want 2", p)
	}
	if p := mergePasses(101, 10); p != 3 {
		t.Errorf("mergePasses(101,10) = %d, want 3", p)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := newRig().run(t, Spec{Benchmark: smallTerasort(), BaseConfig: mrconf.Default()})
	b := newRig().run(t, Spec{Benchmark: smallTerasort(), BaseConfig: mrconf.Default()})
	if a.Duration != b.Duration {
		t.Fatalf("same seed, different durations: %v vs %v", a.Duration, b.Duration)
	}
	if a.Counters.SpilledRecords() != b.Counters.SpilledRecords() {
		t.Fatal("same seed, different counters")
	}
}

func TestWikipediaWordcountCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size benchmark in -short mode")
	}
	b, err := workload.ByName("wordcount/Wikipedia")
	if err != nil {
		t.Fatal(err)
	}
	r := newRig()
	res := r.run(t, Spec{Benchmark: b, BaseConfig: mrconf.Default()})
	if res.Failed {
		t.Fatal(res.Err)
	}
	if res.Counters.MapInputMB < b.InputSizeMB*0.99 {
		t.Fatalf("map input %v, want %v", res.Counters.MapInputMB, b.InputSizeMB)
	}
}

func TestCountersSummary(t *testing.T) {
	r := newRig()
	res := r.run(t, Spec{Benchmark: workload.Terasort(2, 0, 0), BaseConfig: mrconf.Default()})
	s := res.Counters.Summary()
	for _, want := range []string{"Map input MB=2048", "Spilled records", "Data-local maps"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "OOM kills") {
		t.Fatal("clean run mentions OOM kills")
	}
}

func TestJobAccessors(t *testing.T) {
	r := newRig()
	b := workload.Terasort(2, 0, 0)
	j := Submit(r.rm, r.fs, Spec{Benchmark: b, BaseConfig: mrconf.Default().With(mrconf.IOSortMB, 200)}, nil)
	if j.Benchmark().Name != b.Name {
		t.Fatal("Benchmark accessor wrong")
	}
	if j.BaseConfig().SortMB() != 200 {
		t.Fatal("BaseConfig accessor wrong")
	}
	if j.Engine() != r.eng {
		t.Fatal("Engine accessor wrong")
	}
	if len(j.MapTasks()) != b.NumMaps || len(j.ReduceTasks()) != b.NumReduces {
		t.Fatal("task accessors wrong")
	}
	r.eng.Run()
	if j.CompletedMaps() != b.NumMaps || j.CompletedReduces() != b.NumReduces {
		t.Fatalf("completion accessors: %d/%d", j.CompletedMaps(), j.CompletedReduces())
	}
}
