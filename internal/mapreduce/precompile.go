package mapreduce

import "repro/internal/mrconf"

// PrecompiledConfig carries a base configuration's compiled artifacts
// — its snapshot, its repaired form, and the repaired snapshot — so
// that repeat submissions of the same job class skip the per-job
// Snapshot and Repair work. Build one with Precompile and cache it per
// (application, input scale); attach via Spec.Precompiled.
type PrecompiledConfig struct {
	base         mrconf.Config
	baseSnap     mrconf.Snapshot
	repaired     mrconf.Config
	repairedSnap mrconf.Snapshot
}

// Precompile compiles cfg once for reuse across submissions.
func Precompile(cfg mrconf.Config) *PrecompiledConfig {
	pc := &PrecompiledConfig{
		base:     cfg,
		baseSnap: cfg.Snapshot(),
		repaired: mrconf.Repair(cfg),
	}
	if pc.repaired.Same(cfg) {
		pc.repairedSnap = pc.baseSnap
	} else {
		pc.repairedSnap = pc.repaired.Snapshot()
	}
	return pc
}

// Base returns the configuration this precompile was built from.
func (pc *PrecompiledConfig) Base() mrconf.Config { return pc.base }
