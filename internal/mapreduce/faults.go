package mapreduce

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// Failure recovery: the application-master half of the fault-injection
// subsystem (internal/faults). Three things can go wrong for a job:
//
//   - a node hosting a RUNNING attempt dies → the RM reclaims the
//     container (after its liveness expiry) and taskLostNode requeues
//     the attempt with the same configuration, like a preemption — the
//     task did nothing wrong, so this does not count against
//     MaxAttempts;
//   - a node holding a COMPLETED map's output dies while reducers
//     still need that output → reducer fetches against the dead host
//     fail and the map re-executes (nodeLost/reexecMap), reversing
//     exactly the counters its completion added;
//   - an attempt itself fails (injected fault, permanently lost input
//     split) → taskFailedFault retries with a fresh configuration and
//     counts the failure against MaxAttempts, reporting it to the RM's
//     per-node blacklist tracker.
//
// Everything here is reached only through fault injection; with no
// faults configured none of these paths run and the job's event
// sequence is identical to a build without them.

// dropActiveReducer unregisters a reducer's shuffle-phase state.
func (j *Job) dropActiveReducer(t *Task) {
	for i, rr := range j.activeReducers {
		if rr.task == t {
			j.activeReducers = append(j.activeReducers[:i], j.activeReducers[i+1:]...)
			break
		}
	}
}

// armAttemptFault asks the fault injector whether this attempt should
// fail partway through, and schedules the failure if so.
func (j *Job) armAttemptFault(t *Task) {
	h := j.spec.Faults
	if h == nil {
		return
	}
	delay, ok := h.AttemptFailDelay(t.Type.String(), t.ID, t.Attempt)
	if !ok {
		return
	}
	att := t.Attempt
	j.shard.After(delay, func() {
		if j.finished || t.killed || t.Attempt != att || t.State != TaskRunning {
			return
		}
		if t.logical().logicalDone {
			return
		}
		j.rm.FaultCounters().TaskFailuresInjected++
		j.taskFailedFault(t, "injected")
	})
}

// taskFailedFault handles a non-OOM attempt failure: the failure
// counts toward MaxAttempts, feeds the RM's per-node blacklist, and
// the task re-requests a fresh configuration (the controller may know
// better by now). OOM kills deliberately do NOT report to the
// blacklist — a bad heap setting is the configuration's fault, not the
// node's, and blacklisting for it would distort tuning runs.
func (j *Job) taskFailedFault(t *Task, detail string) {
	if j.finished || t.killed || t.logical().logicalDone {
		return
	}
	var node *cluster.Node
	nodeName := ""
	if t.container != nil {
		node = t.container.Node
		nodeName = node.Name
	}
	j.cancelWork(t)
	j.counters.TaskFailures++
	j.spec.Trace.Add(trace.Event{Time: j.shard.Now(), Job: j.Name, Kind: trace.TaskFailed,
		TaskType: t.Type.String(), TaskID: t.ID, Attempt: t.Attempt, Node: nodeName, Detail: detail})
	if t.specOrigin != nil {
		// A failed speculative copy is simply dropped.
		t.killed = true
		t.State = TaskFailed
		j.liveShadows--
		t.specOrigin.specCopy = nil
		if t.Type == ReduceTask {
			j.reduceMemHeld -= t.snap.ReduceMemMB()
			j.dropActiveReducer(t)
		}
		j.releaseTask(t)
		if node != nil {
			j.rm.ReportTaskFailure(node)
		}
		j.pump()
		return
	}
	t.EndTime = j.shard.Now()
	r := j.report(t, false)
	r.Failed = true
	j.releaseTask(t)
	j.reports = append(j.reports, r)
	j.ctrl.TaskCompleted(r)
	if t.Type == ReduceTask {
		j.reduceMemHeld -= t.snap.ReduceMemMB()
		j.dropActiveReducer(t)
	}
	if node != nil {
		j.rm.ReportTaskFailure(node)
	}
	t.Attempt++
	if t.Attempt >= j.spec.MaxAttempts {
		j.finish(fmt.Errorf("mapreduce: task %s failed %d attempts: %s", t, t.Attempt, detail))
		return
	}
	t.State = TaskPending
	j.requestContainer(t)
}

// taskLostNode handles a container whose host was declared lost by the
// RM: like a preemption, the attempt's work is discarded and the task
// requeued with the same configuration, with no MaxAttempts penalty.
func (j *Job) taskLostNode(t *Task) {
	if j.finished || t.killed || t.State == TaskSucceeded || t.logical().logicalDone {
		return
	}
	j.cancelWork(t)
	if t.Type == ReduceTask {
		j.reduceMemHeld -= t.snap.ReduceMemMB()
		j.dropActiveReducer(t)
	}
	t.container = nil // the RM releases the container itself
	j.counters.NodeLossKills++
	j.rm.FaultCounters().AttemptsKilledNodeLoss++
	j.spec.Trace.Add(trace.Event{Time: j.shard.Now(), Job: j.Name, Kind: trace.TaskKilled,
		TaskType: t.Type.String(), TaskID: t.ID, Attempt: t.Attempt, Detail: "node-lost"})
	if t.specOrigin != nil {
		// A lost speculative copy is simply dropped.
		t.killed = true
		t.State = TaskFailed
		j.liveShadows--
		t.specOrigin.specCopy = nil
		return
	}
	t.Attempt++
	t.State = TaskPending
	j.requestContainerWithConfig(t, t.Config)
}

// nodeLost is the AM's node-loss notification (fired after the RM has
// reclaimed the node's containers): completed map outputs stored on n
// died with it. If any reducer still needs them, those maps re-run —
// Hadoop's response to repeated reducer fetch failures against a dead
// host. Reduce outputs are already durable in HDFS and need nothing.
func (j *Job) nodeLost(n *cluster.Node) {
	if j.finished || !j.anyReducerNeedsMapOutput() {
		return
	}
	reexeced := false
	for _, t := range j.mapTasks {
		if t.logicalDone && t.outputNode == n {
			j.reexecMap(t, n)
			reexeced = true
		}
	}
	if reexeced {
		j.pump()
	}
}

// anyReducerNeedsMapOutput reports whether some reducer has shuffle
// work left — once every reducer has left the shuffle phase (or the
// job has none), lost map outputs no longer matter.
func (j *Job) anyReducerNeedsMapOutput() bool {
	if len(j.reduceTasks) == 0 || j.completedReduces == len(j.reduceTasks) {
		return false
	}
	for _, t := range j.reduceTasks {
		if t.logicalDone {
			continue
		}
		shuffled := false
		for _, r := range j.activeReducers {
			if r.task == t && r.shuffled {
				shuffled = true
				break
			}
		}
		if !shuffled {
			return true
		}
	}
	return false
}

// reexecMap rolls a completed map back to pending: its counter
// contributions are reversed, the shuffle ledger shrinks by its output
// (reducers' fetched bytes scale down proportionally — what they had
// fetched of the lost output must be re-fetched from the new attempt),
// and the task re-requests a container. The re-executed attempt
// produces identical output (same split, same skew), so totals are
// conserved once it completes.
func (j *Job) reexecMap(t *Task, n *cluster.Node) {
	p := j.bench.Profile
	rawRecs := 0.0
	if p.RecordBytes > 0 {
		rawRecs = t.rawOutMB / p.RecordBytes
	}
	j.counters.MapInputMB -= t.inputMB
	j.counters.MapOutputRecords -= rawRecs
	j.counters.CombineOutputRecs -= t.outputRec
	j.counters.MapOutputMB -= t.dataMB
	j.counters.SpilledRecordsMap -= t.spilledRec
	j.counters.MapSpills -= float64(t.numSpills)
	j.counters.MapsReExecuted++
	j.rm.FaultCounters().FetchFailures++
	j.rm.FaultCounters().MapsReExecuted++
	j.spec.Trace.Add(trace.Event{Time: j.shard.Now(), Job: j.Name, Kind: trace.FetchFail,
		TaskType: t.Type.String(), TaskID: t.ID, Attempt: t.Attempt, Node: n.Name,
		Detail: "map output lost"})
	j.spec.Trace.Add(trace.Event{Time: j.shard.Now(), Job: j.Name, Kind: trace.ReexecMap,
		TaskType: t.Type.String(), TaskID: t.ID, Attempt: t.Attempt + 1, Node: n.Name})

	totalBefore := j.totalMapOutMB
	j.totalMapOutMB -= t.dataMB
	if j.totalMapOutMB < 0 {
		j.totalMapOutMB = 0
	}
	if totalBefore > 0 {
		scale := j.totalMapOutMB / totalBefore
		for _, r := range j.activeReducers {
			if !r.shuffled {
				r.fetchedMB *= scale
			}
		}
	}
	j.completedMaps--
	t.logicalDone = false
	t.outputNode = nil
	t.killed = false
	t.specCopy = nil
	t.State = TaskPending
	t.Attempt++
	j.requestContainer(t)
}
