package mapreduce

// Pool recycles Job and Task objects across submissions so a
// continuous stream of jobs reaches an allocation-lean steady state:
// after warm-up, submitting a job reuses the previous jobs' object
// graphs (including their slice capacity) instead of growing the heap
// with every arrival.
//
// Ownership contract — recycling is strictly opt-in and gated:
//
//   - Only jobs submitted with Spec.Pool set participate.
//   - A job is recycled only when it finishes cleanly AND ran with
//     Spec.Faults == nil and Spec.Speculation == nil. Under those
//     conditions no scheduled closure capturing the job or a task can
//     fire after the finish event, so nothing dangles.
//   - The recycle happens one zero-delay event after the finish, so
//     everything on the finishing event's stack (onDone included) sees
//     intact state.
//   - Result.Reports handed to onDone aliases pooled storage: it is
//     valid only during the onDone call. Callers that need reports
//     afterwards must copy them (or not pool).
//   - Pointers obtained from the job (tasks, *Job itself) must not be
//     retained past onDone for the same reason.
//
// A Pool is not safe for concurrent use; like the rest of the job
// layer it lives on the system shard.
type Pool struct {
	jobs  []*Job
	tasks []*Task
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// getJob pops a recycled job (zeroed, slice capacity retained) or
// allocates a fresh one. Safe on a nil pool.
func (p *Pool) getJob() *Job {
	if p == nil || len(p.jobs) == 0 {
		return &Job{}
	}
	j := p.jobs[len(p.jobs)-1]
	p.jobs = p.jobs[:len(p.jobs)-1]
	return j
}

// getTask pops a recycled task or allocates a fresh one. Safe on a
// nil pool.
func (p *Pool) getTask() *Task {
	if p == nil || len(p.tasks) == 0 {
		return &Task{}
	}
	t := p.tasks[len(p.tasks)-1]
	p.tasks = p.tasks[:len(p.tasks)-1]
	return t
}

// recycleJob resets the job and its tasks to zero values — keeping
// slice capacity — and returns everything to the free lists.
func (p *Pool) recycleJob(j *Job) {
	for _, t := range j.mapTasks {
		p.recycleTask(t)
	}
	for _, t := range j.reduceTasks {
		p.recycleTask(t)
	}
	mt := clearSlice(j.mapTasks)
	rt := clearSlice(j.reduceTasks)
	shares := j.reduceShare[:0]
	reports := clearSlice(j.reports)
	active := clearSlice(j.activeReducers)
	*j = Job{mapTasks: mt, reduceTasks: rt, reduceShare: shares, reports: reports, activeReducers: active,
		mapSkewRNG: j.mapSkewRNG, reduceRNG: j.reduceRNG}
	p.jobs = append(p.jobs, j)
}

// recycleTask zeroes one task, dropping every reference it holds
// (flows, ops, container, split, job) while keeping the tracking
// slices' capacity. Finished flows are handed back to their fabric's
// free list first: liveFlows is the sole surviving reference to them
// (the fabric drops its own on completion, and nothing else in this
// package retains *cluster.Flow), so the task is entitled to recycle.
// HDFS-internal flows live inside liveOps' operation objects and are
// deliberately left alone.
func (p *Pool) recycleTask(t *Task) {
	for _, f := range t.liveFlows {
		f.Recycle()
	}
	flows := clearSlice(t.liveFlows)
	ops := clearSlice(t.liveOps)
	*t = Task{liveFlows: flows, liveOps: ops,
		onAllocCB: t.onAllocCB, onPreemptCB: t.onPreemptCB, onNodeLostCB: t.onNodeLostCB}
	p.tasks = append(p.tasks, t)
}

// clearSlice nils out the elements (so pooled objects pin nothing) and
// reslices to length zero, preserving capacity.
func clearSlice[E any, S ~[]E](s S) S {
	var zero E
	for i := range s {
		s[i] = zero
	}
	return s[:0]
}
