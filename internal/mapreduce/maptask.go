package mapreduce

import (
	"errors"
	"math"

	"repro/internal/hdfs"
	"repro/internal/mrconf"
	"repro/internal/trace"
	"repro/internal/yarn"
)

var errOOM = errors.New("container killed: out of memory")

// runMap executes one map task attempt in its container. Phases:
//
//  1. launch overhead (JVM start, localization);
//  2. split read overlapped with the map function and, when spilling
//     more than once, with the pipelined spill writes;
//  3. final spill plus merge passes (disk + merge CPU).
func (j *Job) runMap(t *Task, c *yarn.Container) {
	t.State = TaskRunning
	t.StartTime = j.shard.Now()
	t.container = c
	t.cpuSecs = 0
	j.traceTask(t, trace.TaskStart)

	if t.Split != nil {
		switch j.fs.Locality(t.Split, c.Node) {
		case hdfs.NodeLocal:
			j.counters.NodeLocalMaps++
		case hdfs.RackLocal:
			j.counters.RackLocalMaps++
		default:
			j.counters.OffRackMaps++
		}
	}

	j.armAttemptFault(t)
	att := t.Attempt
	j.shard.After(TaskLaunchOverheadSecs, func() {
		if t.Attempt != att {
			return // the attempt was preempted during launch
		}
		j.mapMain(t)
	})
}

func (j *Job) mapMain(t *Task) {
	if j.finished || t.killed {
		return
	}
	if t.container.Node.Down() {
		// The host crashed during launch; the attempt goes quiet and the
		// RM's node-loss path requeues it after the liveness expiry.
		return
	}
	t.setConfig(j.ctrl.LiveConfig(t, t.Config)) // category-3 params may have moved
	p := j.bench.Profile
	node := t.container.Node

	inputMB := 0.0
	if t.Split != nil {
		inputMB = t.Split.SizeMB
	}
	rawOutMB := (inputMB*p.RawMapSelectivity + p.MapFixedOutputMB) * t.Skew
	combinedMB := rawOutMB * p.CombinerReduction

	bufferMB := t.snap.SortMB() * t.snap.SpillPct()
	numSpills := 1
	if rawOutMB > bufferMB && bufferMB > 0 {
		numSpills = int(math.Ceil(rawOutMB / bufferMB))
	}

	// Memory feasibility: heap must hold the sort buffer plus the map
	// function's working set.
	heapNeedMB := JVMBaseMB + t.snap.SortMB() + p.MapWorkingSetMB*math.Sqrt(t.Skew)
	t.peakMemMB = heapNeedMB / mrconf.HeapFraction // resident ≈ heap use / heap fraction
	coreCap := math.Min(MapComputeParallelism, math.Max(t.container.CoreCap(), BurstFloorCores))
	cpuSecs := inputMB*p.MapCPUPerMB*t.Skew + p.MapFixedCPUSecs*t.Skew + rawOutMB*p.SortCPUPerMB

	if heapNeedMB > t.snap.MapHeapMB() {
		// The JVM dies partway through filling the buffer.
		frac := t.snap.MapHeapMB() / heapNeedMB
		failAfter := math.Max(2, cpuSecs/coreCap*frac)
		t.cpuSecs = cpuSecs * frac
		att := t.Attempt
		j.shard.After(failAfter, func() {
			if t.Attempt != att {
				return // the attempt was already requeued (preempt/node loss)
			}
			j.taskFailed(t, errOOM)
		})
		return
	}

	t.cpuSecs += cpuSecs
	t.inputMB = inputMB

	overlapMB := 0.0
	if numSpills > 1 {
		eff := 1.0
		if t.snap.SpillPct() > 0.9 {
			// Too little headroom: the collector blocks while spilling.
			eff = PipelineEfficiencyHighSpillPct
		}
		overlapMB = combinedMB * float64(numSpills-1) / float64(numSpills) * eff
	}

	flows := 1 // compute
	if t.Split != nil {
		flows++
	}
	if overlapMB > 0 {
		flows++
	}
	next := join(flows, func() { j.mapMerge(t, combinedMB, overlapMB, numSpills) })
	t.track(node.Compute(cpuSecs, coreCap, next))
	if t.Split != nil {
		op := j.fs.StartRead(t.Split, node, next)
		att := t.Attempt
		op.OnFail = func() {
			if t.Attempt != att {
				return
			}
			j.taskFailedFault(t, "input split lost")
		}
		t.trackOp(op)
	}
	if overlapMB > 0 {
		t.track(node.DiskWrite(overlapMB, next))
	}
}

// mapMerge writes the final spill and runs the merge passes, then
// finalizes counters.
func (j *Job) mapMerge(t *Task, combinedMB, overlapMB float64, numSpills int) {
	if j.finished || t.killed {
		return
	}
	p := j.bench.Profile
	node := t.container.Node
	passes := mergePasses(numSpills, t.snap.SortFactor())

	finalSpillMB := combinedMB - overlapMB
	// Merge passes write their output through the disk; the reads hit
	// the page cache (the spill files were written moments ago on a
	// node with gigabytes of cache), so only writes are charged.
	mergeIOMB := finalSpillMB + combinedMB*float64(passes)
	mergeCPU := combinedMB * p.SortCPUPerMB * float64(passes)
	t.cpuSecs += mergeCPU

	coreCap := math.Min(MapComputeParallelism, math.Max(t.container.CoreCap(), BurstFloorCores))
	done := join(2, func() { j.mapFinish(t, combinedMB, numSpills, passes) })
	t.track(node.DiskWrite(mergeIOMB, done))
	t.track(node.Compute(mergeCPU, coreCap, done))
}

func (j *Job) mapFinish(t *Task, combinedMB float64, numSpills, passes int) {
	if j.finished || t.killed {
		return
	}
	if t.logical().logicalDone {
		// The speculative twin won while this copy was merging: discard
		// its output so the counters stay conserved.
		j.releaseTask(t)
		return
	}
	p := j.bench.Profile
	combinedRecs := 0.0
	rawRecs := 0.0
	if p.RecordBytes > 0 {
		combinedRecs = combinedMB / p.RecordBytes
		rawRecs = combinedMB / p.CombinerReduction / p.RecordBytes
	}
	spilled := combinedRecs * float64(1+passes)

	j.counters.MapInputMB += t.inputMB
	j.counters.MapOutputRecords += rawRecs
	j.counters.CombineOutputRecs += combinedRecs
	j.counters.MapOutputMB += combinedMB
	j.counters.SpilledRecordsMap += spilled
	j.counters.MapSpills += float64(numSpills)
	t.spilledRec = spilled
	t.outputRec = combinedRecs
	t.dataMB = combinedMB
	if p.CombinerReduction > 0 {
		t.rawOutMB = combinedMB / p.CombinerReduction
	}
	t.numSpills = numSpills

	// The winner's stats and output location live on the logical task so
	// a later node loss can reverse exactly what this completion added.
	lt := t.logical()
	if lt != t {
		lt.inputMB, lt.spilledRec, lt.outputRec = t.inputMB, t.spilledRec, t.outputRec
		lt.dataMB, lt.rawOutMB, lt.numSpills = t.dataMB, t.rawOutMB, t.numSpills
	}
	lt.outputNode = t.container.Node

	j.totalMapOutMB += combinedMB
	j.taskSucceeded(t)
	// New map output unblocks shuffle fetches.
	j.wakeReducers()
}

// join returns a callback that invokes done after n invocations.
func join(n int, done func()) func() {
	remaining := n
	return func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
}
