package mapreduce

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// stragglerRig interferes with two nodes right after the job starts so
// that tasks placed there crawl — the scenario speculation exists for.
func stragglerRig(t *testing.T, spec Spec) (Result, *rig) {
	t.Helper()
	r := newRig()
	r.eng.At(3, func() { // after the first wave has been placed
		for i := 0; i < 2; i++ {
			n := r.c.Nodes[i]
			for k := 0; k < 30; k++ {
				n.InjectDiskLoad(30, 3600, nil)
				n.InjectCPULoad(1, 3600, nil)
			}
		}
	})
	var res Result
	got := false
	Submit(r.rm, r.fs, spec, func(rr Result) { res = rr; got = true })
	r.eng.Run()
	if !got {
		t.Fatal("straggler job never completed")
	}
	return res, r
}

func TestSpeculationRescuesStragglers(t *testing.T) {
	b := workload.Terasort(20, 0, 0)
	without, _ := stragglerRig(t, Spec{Benchmark: b, BaseConfig: mrconf.Default()})
	with, _ := stragglerRig(t, Spec{Benchmark: b, BaseConfig: mrconf.Default(),
		Speculation: DefaultSpeculation()})

	if with.Failed || without.Failed {
		t.Fatalf("runs failed: %v / %v", with.Err, without.Err)
	}
	if with.Counters.SpeculativeLaunches == 0 {
		t.Fatal("no speculative attempts launched despite stragglers")
	}
	if with.Counters.SpeculativeWins == 0 {
		t.Fatal("no speculative attempt ever won")
	}
	if with.Duration >= without.Duration {
		t.Fatalf("speculation (%.0fs) did not beat no-speculation (%.0fs)",
			with.Duration, without.Duration)
	}
}

func TestSpeculationPreservesInvariants(t *testing.T) {
	b := workload.Terasort(20, 0, 0)
	res, _ := stragglerRig(t, Spec{Benchmark: b, BaseConfig: mrconf.Default(),
		Speculation: DefaultSpeculation()})
	if res.Failed {
		t.Fatal(res.Err)
	}
	checkInvariants(t, b, res)
	// Exactly one success report per logical task.
	seen := map[[2]int]int{}
	for _, r := range res.Reports {
		if r.OOM {
			continue
		}
		key := [2]int{int(r.Type), r.ID}
		seen[key]++
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("task %v has %d success reports", key, n)
		}
	}
	// Launch/win/kill bookkeeping is consistent: every launch ends in a
	// win (loser killed) or its own death.
	c := res.Counters
	if c.SpeculativeKills+c.OOMKills < c.SpeculativeWins {
		t.Fatalf("wins %d without matching kills %d", c.SpeculativeWins, c.SpeculativeKills)
	}
}

func TestSpeculationIdleOnHealthyCluster(t *testing.T) {
	// Without interference the lognormal skew tail may trigger an
	// occasional copy, but speculation must stay rare and never slow
	// the job down materially.
	b := workload.Terasort(20, 0, 0)
	plain := newRig().run(t, Spec{Benchmark: b, BaseConfig: mrconf.Default()})
	r := newRig()
	var res Result
	Submit(r.rm, r.fs, Spec{Benchmark: b, BaseConfig: mrconf.Default(),
		Speculation: DefaultSpeculation()}, func(rr Result) { res = rr })
	r.eng.Run()
	if res.Failed {
		t.Fatal(res.Err)
	}
	if res.Counters.SpeculativeLaunches > b.NumMaps/4 {
		t.Fatalf("%d speculative launches on a healthy cluster", res.Counters.SpeculativeLaunches)
	}
	if res.Duration > plain.Duration*1.1 {
		t.Fatalf("speculation slowed a healthy run: %.0fs vs %.0fs", res.Duration, plain.Duration)
	}
}

func TestSpeculationWithTunerCoexists(t *testing.T) {
	// Speculative copies reuse the original's per-task configuration;
	// a controller-driven job must still complete under interference.
	b := workload.Terasort(20, 0, 0)
	ctrl := &alternatingVcores{}
	res, _ := stragglerRig(t, Spec{Benchmark: b, BaseConfig: mrconf.Default(),
		Controller: ctrl, Speculation: DefaultSpeculation()})
	if res.Failed {
		t.Fatal(res.Err)
	}
}

func TestKillAttemptReleasesResources(t *testing.T) {
	// After a speculative job completes, no container memory may
	// remain allocated anywhere (kills released their containers).
	b := workload.Terasort(20, 0, 0)
	res, r := stragglerRig(t, Spec{Benchmark: b, BaseConfig: mrconf.Default(),
		Speculation: DefaultSpeculation()})
	if res.Failed {
		t.Fatal(res.Err)
	}
	for _, n := range r.c.Nodes {
		if n.Mem.Used() != 0 {
			t.Fatalf("node %s still holds %v MB after job end", n.Name, n.Mem.Used())
		}
	}
}

func TestPreemptionEndToEnd(t *testing.T) {
	// A long Terasort fills the cluster; a short job arrives later.
	// With fair-share preemption the short job finishes much earlier,
	// and the long job still completes with conserved counters.
	runPair := func(preempt bool) (longDur, shortDone float64, preemptions int) {
		eng := sim.NewEngine()
		c := cluster.New(eng, cluster.PaperConfig())
		rm := yarn.NewResourceManager(eng, c, yarn.FairScheduler{})
		fs := hdfs.New(c, sim.NewSource(42).Stream("hdfs"))
		if preempt {
			rm.EnablePreemption(yarn.DefaultPreemption())
		}
		long := workload.Terasort(60, 0, 0)
		short := workload.Terasort(2, 0, 0)
		var longRes Result
		Submit(rm, fs, Spec{Name: "long", Benchmark: long, BaseConfig: mrconf.Default()},
			func(r Result) { longRes = r })
		eng.At(30, func() {
			Submit(rm, fs, Spec{Name: "short", Benchmark: short, BaseConfig: mrconf.Default()},
				func(r Result) { shortDone = eng.Now() })
		})
		eng.Run()
		if longRes.Failed {
			t.Fatalf("long job failed: %v", longRes.Err)
		}
		checkInvariants(t, long, longRes)
		return longRes.Duration, shortDone, longRes.Counters.Preemptions
	}

	_, shortNo, _ := runPair(false)
	longP, shortYes, preempted := runPair(true)
	if preempted == 0 {
		t.Fatal("no tasks preempted")
	}
	if shortYes >= shortNo {
		t.Fatalf("preemption did not help the short job: %.0fs vs %.0fs", shortYes, shortNo)
	}
	if longP <= 0 {
		t.Fatal("long job broken")
	}
}

func TestSpeculationPlusPreemption(t *testing.T) {
	// All three mechanisms at once: stragglers (mid-job interference),
	// speculation, and a second job triggering fair-share preemption.
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FairScheduler{})
	rm.EnablePreemption(yarn.DefaultPreemption())
	fs := hdfs.New(c, sim.NewSource(5).Stream("hdfs"))
	eng.At(3, func() {
		for i := 0; i < 2; i++ {
			n := c.Nodes[i]
			for k := 0; k < 20; k++ {
				n.InjectDiskLoad(30, 3600, nil)
				n.InjectCPULoad(1, 3600, nil)
			}
		}
	})
	long := workload.Terasort(60, 0, 0)
	short := workload.Terasort(6, 0, 0)
	var longRes, shortRes Result
	Submit(rm, fs, Spec{Name: "long", Benchmark: long, BaseConfig: mrconf.Default(),
		Speculation: DefaultSpeculation()}, func(r Result) { longRes = r })
	eng.At(40, func() {
		Submit(rm, fs, Spec{Name: "short", Benchmark: short, BaseConfig: mrconf.Default(),
			Speculation: DefaultSpeculation()}, func(r Result) { shortRes = r })
	})
	eng.Run()
	if longRes.Failed || shortRes.Failed {
		t.Fatalf("jobs failed: %v / %v", longRes.Err, shortRes.Err)
	}
	checkInvariants(t, long, longRes)
	checkInvariants(t, short, shortRes)
	// Resources fully returned.
	for _, n := range c.Nodes {
		if n.Mem.Used() != 0 {
			t.Fatalf("node %s leaks %v MB", n.Name, n.Mem.Used())
		}
	}
}

func TestPreemptionWhilePending(t *testing.T) {
	// Preempting containers while other requests are still queued must
	// not corrupt the request bookkeeping: the preempted tasks requeue
	// and everything completes.
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FairScheduler{})
	rm.EnablePreemption(yarn.PreemptionConfig{CheckInterval: 3, StarvationFraction: 0.8, MaxKillsPerRound: 8})
	fs := hdfs.New(c, sim.NewSource(6).Stream("hdfs"))
	a := workload.Terasort(20, 0, 0)
	bb := workload.Terasort(20, 0, 0)
	done := 0
	var resA, resB Result
	Submit(rm, fs, Spec{Name: "a", Benchmark: a, BaseConfig: mrconf.Default()},
		func(r Result) { resA = r; done++ })
	eng.At(10, func() {
		Submit(rm, fs, Spec{Name: "b", Benchmark: bb, BaseConfig: mrconf.Default()},
			func(r Result) { resB = r; done++ })
	})
	eng.Run()
	if done != 2 || resA.Failed || resB.Failed {
		t.Fatalf("done=%d failedA=%v failedB=%v", done, resA.Failed, resB.Failed)
	}
	checkInvariants(t, a, resA)
	checkInvariants(t, bb, resB)
}

func TestShadowOOMDropsQuietly(t *testing.T) {
	// A speculative copy that OOMs must be dropped without failing the
	// job or blocking the original.
	base := mrconf.Default()
	b, err := workload.ByName("bigram/Freebase")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink to a quick variant with the same profile (high working
	// set -> shadows of skewed tasks can OOM under tight configs).
	b.NumMaps = 60
	b.NumReduces = 15
	b.InputSizeMB = 60 * b.SplitSizeMB()
	b.ShuffleSizeMB = b.InputSizeMB * b.Profile.RawMapSelectivity * b.Profile.CombinerReduction
	b.OutputSizeMB = b.ShuffleSizeMB * b.Profile.ReduceSelectivity

	res, _ := stragglerRig(t, Spec{Benchmark: b, BaseConfig: base,
		Speculation: DefaultSpeculation(), Name: "bigram-mini"})
	if res.Failed {
		t.Fatalf("job failed: %v", res.Err)
	}
}
