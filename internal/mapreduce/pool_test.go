package mapreduce

import (
	"testing"

	"repro/internal/mrconf"
)

// TestPooledAttemptReuseZeroAlloc pins the steady-state cost of the
// attempt pool: once warm, a get/recycle round trip reuses the Task
// object and its tracking slices without touching the heap.
func TestPooledAttemptReuseZeroAlloc(t *testing.T) {
	p := NewPool()
	// Warm the free list so the measured runs only pop and push.
	tk := p.getTask()
	p.recycleTask(tk)
	if avg := testing.AllocsPerRun(100, func() {
		tk := p.getTask()
		p.recycleTask(tk)
	}); avg != 0 {
		t.Fatalf("pooled attempt round trip allocates %v per run; want 0", avg)
	}
}

// TestSnapshotCacheHitZeroAlloc pins the per-attempt config cost on
// the serving path: installing the job's repaired base configuration
// reuses the snapshot compiled at submission instead of recompiling.
func TestSnapshotCacheHitZeroAlloc(t *testing.T) {
	cfg := mrconf.Default()
	j := &Job{baseRepaired: cfg, baseRepairedSnap: cfg.Snapshot()}
	tk := &Task{Job: j}
	tk.setConfig(cfg)
	if tk.snap != j.baseRepairedSnap {
		t.Fatal("setConfig on the repaired base did not reuse the submission snapshot")
	}
	if avg := testing.AllocsPerRun(100, func() {
		tk.setConfig(cfg)
	}); avg != 0 {
		t.Fatalf("snapshot cache hit allocates %v per run; want 0", avg)
	}
}
