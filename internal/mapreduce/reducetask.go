package mapreduce

import (
	"math"

	"repro/internal/mrconf"
	"repro/internal/trace"
	"repro/internal/yarn"
)

// reduceRun holds the shuffle-phase runtime state of one reducer.
type reduceRun struct {
	task *Task
	// attempt pins the run to one incarnation: a preempted-and-requeued
	// task gets a fresh reduceRun, and stale callbacks must not finish
	// the task on the old one's behalf.
	attempt int
	// Deferred counter contributions, applied only if this attempt
	// wins (speculative twins must not double-count).
	pendingInMB      float64
	pendingSpillRec  float64
	pendingOutputRec float64
	// share is this reducer's fraction of total map output.
	share float64
	// estTotalMB is the planning estimate of the reducer's input.
	estTotalMB float64
	// fetchedMB has completed fetching; fetchingMB is in flight.
	fetchedMB  float64
	fetchingMB float64
	busy       bool
	shuffled   bool
	// diskFrac of fetched bytes lands on disk (derived from the
	// shuffle buffer configuration).
	diskFrac    float64
	numDiskSegs int
}

// runReduce executes one reduce task attempt: shuffle (as map outputs
// become available), merge/sort, reduce function, and output write.
func (j *Job) runReduce(t *Task, c *yarn.Container) {
	t.State = TaskRunning
	t.StartTime = j.shard.Now()
	t.container = c
	t.cpuSecs = 0
	j.traceTask(t, trace.TaskStart)
	j.armAttemptFault(t)
	att := t.Attempt
	j.shard.After(TaskLaunchOverheadSecs, func() {
		if t.Attempt != att {
			return // the attempt was preempted during launch
		}
		j.reduceMain(t)
	})
}

func (j *Job) reduceMain(t *Task) {
	if j.finished || t.killed {
		return
	}
	if t.container.Node.Down() {
		// The host crashed during launch; the node-loss path requeues.
		return
	}
	t.setConfig(j.ctrl.LiveConfig(t, t.Config))
	p := j.bench.Profile

	share := j.reduceShare[t.ID]
	estTotalMB := j.bench.ShuffleSizeMB * share

	heap := t.snap.ReduceHeapMB()
	shuffleBufMB := t.snap.ShuffleBufferPct() * heap
	retainMB := math.Min(math.Min(estTotalMB, shuffleBufMB), t.snap.ReduceInputBufPct()*heap)

	// Peak heap: during shuffle the filled part of the buffer (the
	// shuffle buffer is allocated lazily, segment by segment, unlike
	// the map side's preallocated io.sort.mb array); during reduce the
	// retained bytes plus the user code working set.
	shufflePeak := JVMBaseMB + math.Min(shuffleBufMB, estTotalMB*math.Max(1, t.Skew))
	reducePeak := JVMBaseMB + retainMB + p.ReduceWorkingSetMB*math.Sqrt(math.Max(1, t.Skew))
	heapNeedMB := math.Max(shufflePeak, reducePeak)
	t.peakMemMB = heapNeedMB / mrconf.HeapFraction

	if heapNeedMB > heap {
		frac := heap / heapNeedMB
		failAfter := math.Max(2, 10*frac)
		att := t.Attempt
		j.shard.After(failAfter, func() {
			if t.Attempt != att {
				return // the attempt was already requeued (preempt/node loss)
			}
			j.taskFailed(t, errOOM)
		})
		return
	}

	r := &reduceRun{task: t, attempt: t.Attempt, share: share, estTotalMB: estTotalMB}

	// Segment routing: average segment size vs the in-memory fetch
	// limit decides whether fetches land in memory or stream to disk.
	segMB := estTotalMB / math.Max(1, float64(len(j.mapTasks)))
	segToMem := segMB <= t.snap.MemoryLimitPct()*shuffleBufMB
	var diskMB float64
	if !segToMem || shuffleBufMB <= 0 {
		diskMB = estTotalMB
		r.numDiskSegs = len(j.mapTasks)
	} else {
		diskMB = math.Max(0, estTotalMB-retainMB)
		flushUnit := t.snap.MergePct() * shuffleBufMB
		if th := t.snap.InmemThreshold(); th > 0 {
			flushUnit = math.Min(flushUnit, float64(th)*segMB)
		}
		flushUnit = math.Max(flushUnit, 1)
		r.numDiskSegs = int(math.Ceil(diskMB / flushUnit))
	}
	if estTotalMB > 0 {
		r.diskFrac = diskMB / estTotalMB
	}

	j.activeReducers = append(j.activeReducers, r)
	j.tryFetch(r)
}

// availableMB returns shuffle bytes ready for this reducer.
func (j *Job) availableMB(r *reduceRun) float64 {
	return j.totalMapOutMB*r.share - r.fetchedMB - r.fetchingMB
}

// wakeReducers pokes idle reducers after new map output appears.
func (j *Job) wakeReducers() {
	for _, r := range j.activeReducers {
		if !r.busy && !r.shuffled {
			j.tryFetch(r)
		}
	}
}

// wakeAllReducers runs when the last map finishes, releasing reducers
// waiting on the batching threshold.
func (j *Job) wakeAllReducers() { j.wakeReducers() }

// tryFetch starts the next batched shuffle fetch for r, or advances to
// the sort phase when everything has arrived.
func (j *Job) tryFetch(r *reduceRun) {
	if j.finished || r.task.killed || r.busy || r.shuffled {
		return
	}
	t := r.task
	if t.container == nil || t.container.Node.Down() {
		return // node crashed; the node-loss path requeues the attempt
	}
	allMapsDone := j.completedMaps == len(j.mapTasks)
	avail := j.availableMB(r)
	if avail <= 1e-9 {
		if allMapsDone && r.fetchingMB == 0 {
			r.shuffled = true
			j.reduceSort(r)
		}
		return
	}
	if !allMapsDone && avail < MinFetchChunkMB {
		return // batch small fetches; a later wake will retry
	}
	if h := j.spec.Faults; h != nil && h.FetchFails() {
		// The fetch attempt failed (dropped connection, bad checksum);
		// back off and retry, like the fetcher's exponential backoff.
		j.rm.FaultCounters().FetchFailures++
		j.spec.Trace.Add(trace.Event{Time: j.shard.Now(), Job: j.Name, Kind: trace.FetchFail,
			TaskType: t.Type.String(), TaskID: t.ID, Attempt: t.Attempt,
			Node: t.container.Node.Name, Detail: "injected"})
		r.busy = true
		att := t.Attempt
		j.shard.After(FetchRetryDelaySecs, func() {
			if j.finished || t.killed || t.Attempt != att {
				return
			}
			r.busy = false
			j.tryFetch(r)
		})
		return
	}
	chunk := avail
	r.busy = true
	r.fetchingMB = chunk
	rateCap := float64(t.snap.ParallelCopies()) * ShuffleStreamMBps

	diskPart := chunk * r.diskFrac
	flows := 1
	if diskPart > 0 {
		flows++
	}
	next := join(flows, func() {
		r.busy = false
		r.fetchingMB = 0
		r.fetchedMB += chunk
		j.tryFetch(r)
	})
	t.track(j.rm.Cluster().Fetch(t.container.Node, chunk, CrossRackFraction, rateCap, next)...)
	if diskPart > 0 {
		t.track(t.container.Node.DiskWrite(diskPart, next))
	}
}

// reduceSort merges spilled segments (possibly in multiple passes) and
// runs the reduce function, pipelined with the final merge read.
func (j *Job) reduceSort(r *reduceRun) {
	if j.finished || r.task.killed {
		return
	}
	t := r.task
	p := j.bench.Profile
	node := t.container.Node

	totalIn := r.fetchedMB
	diskMB := totalIn * r.diskFrac
	r.pendingInMB = totalIn

	extraPasses := 0
	if r.numDiskSegs > t.snap.SortFactor() {
		extraPasses = mergePasses(r.numDiskSegs, t.snap.SortFactor()) - 1
	}
	readMB := diskMB + 2*diskMB*float64(extraPasses)
	spilledMB := diskMB + diskMB*float64(extraPasses)
	if p.RecordBytes > 0 {
		t.spilledRec = spilledMB / p.RecordBytes
		t.outputRec = totalIn / p.RecordBytes
	}
	t.dataMB = totalIn
	r.pendingSpillRec = t.spilledRec

	cpu := totalIn * (p.SortCPUPerMB*float64(1+extraPasses) + p.ReduceCPUPerMB)
	t.cpuSecs += cpu
	coreCap := math.Min(ReduceComputeParallelism, math.Max(t.container.CoreCap(), BurstFloorCores))

	done := join(2, func() { j.reduceOutput(r, totalIn) })
	t.track(node.DiskRead(readMB, done))
	t.track(node.Compute(cpu, coreCap, done))
}

// reduceOutput writes the reducer's output file to HDFS.
func (j *Job) reduceOutput(r *reduceRun, totalIn float64) {
	if j.finished || r.task.killed {
		return
	}
	t := r.task
	outMB := totalIn * j.bench.Profile.ReduceSelectivity
	op := j.fs.StartWrite(t.container.Node, outMB, func() {
		j.reduceFinish(r, outMB)
	})
	t.trackOp(op)
}

// reduceFinish applies the winning attempt's counter contributions.
func (j *Job) reduceFinish(r *reduceRun, outMB float64) {
	t := r.task
	if t.Attempt != r.attempt {
		// Stale incarnation: its container was already reclaimed at
		// preemption time, and t.container now belongs to the retry.
		return
	}
	if j.finished || t.killed || t.logical().logicalDone {
		j.releaseTask(t)
		return
	}
	j.counters.ReduceInputMB += r.pendingInMB
	j.counters.SpilledRecordsRed += r.pendingSpillRec
	j.counters.OutputMB += outMB
	j.taskSucceeded(t)
}
