package mapreduce

import (
	"repro/internal/trace"
)

// Speculative execution: Hadoop's straggler mitigation. A periodic
// check compares each running task's elapsed time to the mean of
// completed tasks of the same type; tasks running far behind get a
// duplicate ("speculative") attempt on another container, and whichever
// copy finishes first wins while the loser is killed. The paper's
// experiments do not exercise speculation (and our figure calibration
// mirrors them), so it is off unless Spec.Speculation is set — but it
// matters whenever the cluster develops hot spots or heavy skew.

// SpeculationConfig tunes the straggler detector.
type SpeculationConfig struct {
	// CheckInterval is how often running tasks are examined (seconds).
	CheckInterval float64
	// SlowTaskThreshold: a task is a straggler when its elapsed time
	// exceeds this multiple of the mean completed-task duration.
	SlowTaskThreshold float64
	// MinCompleted tasks of a type must have finished before the mean
	// is trusted.
	MinCompleted int
	// MaxConcurrent bounds live speculative attempts per job.
	MaxConcurrent int
}

// DefaultSpeculation mirrors Hadoop's defaults closely enough:
// check every 5 s, speculate at 1.5x the mean, cap at 10 copies.
func DefaultSpeculation() *SpeculationConfig {
	return &SpeculationConfig{
		CheckInterval:     5,
		SlowTaskThreshold: 1.5,
		MinCompleted:      5,
		MaxConcurrent:     10,
	}
}

// scheduleSpeculation arms the periodic straggler check; the ticker
// stops itself when the job finishes so the event queue can drain.
func (j *Job) scheduleSpeculation() {
	cfg := j.spec.Speculation
	if cfg == nil {
		return
	}
	j.shard.Tick(cfg.CheckInterval, func() bool {
		if j.finished {
			return false
		}
		j.checkSpeculation()
		return true
	})
}

// meanSuccessDuration returns the mean duration of successful attempts
// of a type and how many there were.
func (j *Job) meanSuccessDuration(tt TaskType) (float64, int) {
	sum, n := 0.0, 0
	for _, r := range j.reports {
		if r.Type == tt && !r.OOM && !r.Failed {
			sum += r.Duration()
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

func (j *Job) checkSpeculation() {
	cfg := j.spec.Speculation
	now := j.shard.Now()
	for _, tasks := range [][]*Task{j.mapTasks, j.reduceTasks} {
		if len(tasks) == 0 {
			continue
		}
		mean, n := j.meanSuccessDuration(tasks[0].Type)
		if n < cfg.MinCompleted || mean <= 0 {
			continue
		}
		for _, t := range tasks {
			if j.liveShadows >= cfg.MaxConcurrent {
				return
			}
			if t.State != TaskRunning || t.killed || t.specCopy != nil || t.specOrigin != nil {
				continue
			}
			if now-t.StartTime > cfg.SlowTaskThreshold*mean {
				j.launchShadow(t)
			}
		}
	}
}

// launchShadow requests a duplicate attempt of a straggling task.
func (j *Job) launchShadow(orig *Task) {
	shadow := &Task{
		Job:        j,
		Type:       orig.Type,
		ID:         orig.ID,
		Attempt:    orig.Attempt + 100, // distinguishes speculative attempts
		Skew:       orig.Skew,
		Split:      orig.Split,
		specOrigin: orig,
	}
	orig.specCopy = shadow
	j.liveShadows++
	j.counters.SpeculativeLaunches++
	j.requestContainerWithConfig(shadow, orig.Config)
}

// logical returns the task identity a copy belongs to.
func (t *Task) logical() *Task {
	if t.specOrigin != nil {
		return t.specOrigin
	}
	return t
}

// otherCopy returns the twin attempt, if any.
func (t *Task) otherCopy() *Task {
	if t.specOrigin != nil {
		return t.specOrigin
	}
	return t.specCopy
}

// taskPreempted handles a container revoked by the resource manager's
// fair-share preemption: the attempt's work is discarded and the task
// re-queued with the same configuration. Unlike an OOM kill this does
// not count against MaxAttempts — the task did nothing wrong.
func (j *Job) taskPreempted(t *Task) {
	if j.finished || t.killed || t.State == TaskSucceeded || t.logical().logicalDone {
		return
	}
	j.cancelWork(t)
	if t.Type == ReduceTask {
		j.reduceMemHeld -= t.snap.ReduceMemMB()
		j.dropActiveReducer(t)
	}
	t.container = nil // the RM releases the container itself
	j.counters.Preemptions++
	j.spec.Trace.Add(trace.Event{Time: j.shard.Now(), Job: j.Name, Kind: trace.TaskKilled,
		TaskType: t.Type.String(), TaskID: t.ID, Attempt: t.Attempt, Detail: "preempted"})
	if t.specOrigin != nil {
		// A preempted speculative copy is simply dropped.
		t.killed = true
		t.State = TaskFailed
		j.liveShadows--
		t.specOrigin.specCopy = nil
		return
	}
	// Invalidate any pending phase timers of the old incarnation and
	// re-request with the same configuration.
	t.Attempt++
	t.State = TaskPending
	j.requestContainerWithConfig(t, t.Config)
}

// killAttempt aborts a running or pending attempt: cancels its flows,
// returns its container, and unregisters any reducer state. The
// attempt's phase callbacks are inert afterwards (t.killed guards).
func (j *Job) killAttempt(t *Task) {
	if t == nil || t.killed || t.State == TaskSucceeded {
		return
	}
	t.killed = true
	t.State = TaskFailed
	j.cancelWork(t)
	if t.pendingReq != nil {
		j.app.CancelRequest(t.pendingReq)
		t.pendingReq = nil
	}
	if t.Type == ReduceTask {
		j.reduceMemHeld -= t.snap.ReduceMemMB()
		j.dropActiveReducer(t)
	}
	j.releaseTask(t)
	if t.specOrigin != nil {
		j.liveShadows--
		t.specOrigin.specCopy = nil
	}
	j.spec.Trace.Add(trace.Event{Time: j.shard.Now(), Job: j.Name, Kind: trace.TaskKilled,
		TaskType: t.Type.String(), TaskID: t.ID, Attempt: t.Attempt})
	j.counters.SpeculativeKills++
	j.pump()
}
