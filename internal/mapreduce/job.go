package mapreduce

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// Job is a running MapReduce job: the application-master logic plus
// all task state. Create one with Submit.
type Job struct {
	Name string

	spec Spec
	// baseSnap is spec.BaseConfig compiled once at submission; pump
	// reads window sizes from it on every scheduling pass.
	baseSnap mrconf.Snapshot
	// baseRepaired is Repair(spec.BaseConfig), computed once so every
	// task whose controller returns the base config unchanged (the
	// common case on the serving path) skips the per-task Repair, and
	// baseRepairedSnap lets setConfig skip the per-task compile too.
	baseRepaired     mrconf.Config
	baseRepairedSnap mrconf.Snapshot
	bench            workload.Benchmark
	eng              *sim.Engine
	shard            *sim.Shard // system shard: the AM/job state machine is a cross-cutting actor
	rm               *yarn.ResourceManager
	fs               *hdfs.FileSystem
	app              *yarn.App
	ctrl             Controller

	inputFile   *hdfs.File
	mapTasks    []*Task
	reduceTasks []*Task
	// reduceShare is each reducer's fraction of the shuffle volume
	// (skewed partition sizes, normalized to sum 1).
	reduceShare []float64

	nextMapReq    int
	nextReduceReq int
	// reduceMemHeld tracks memory committed to reduce containers while
	// maps are still pending, for the anti-deadlock headroom policy.
	reduceMemHeld float64

	completedMaps    int
	completedReduces int
	totalMapOutMB    float64

	activeReducers []*reduceRun

	liveShadows int

	counters  Counters
	reports   []TaskReport
	startTime float64
	finished  bool
	failed    bool
	failErr   error
	onDone    func(Result)

	// mapSkewRNG/reduceRNG are the job's skew streams. They survive
	// pool recycling (a math/rand source is ~5 KB) and are re-seeded
	// per submission via sim.Source.StreamInto, which reproduces
	// Stream's output exactly.
	mapSkewRNG *rand.Rand
	reduceRNG  *rand.Rand
}

// ReduceHeadroomFraction caps reduce-container memory at this share of
// cluster container memory while map tasks are still incomplete,
// preventing the classic slowstart deadlock where reducers occupy
// every container and starve the maps they are waiting on.
const ReduceHeadroomFraction = 0.5

// Submit creates the job's input file in HDFS, registers the
// application with the resource manager, and starts scheduling. onDone
// fires (once) when the job completes or fails.
func Submit(rm *yarn.ResourceManager, fs *hdfs.FileSystem, spec Spec, onDone func(Result)) *Job {
	s := spec.withDefaults()
	j := s.Pool.getJob()
	j.Name = s.Name
	j.spec = s
	j.bench = s.Benchmark
	j.eng = rm.Engine()
	j.shard = rm.Shard()
	j.rm = rm
	j.fs = fs
	j.ctrl = s.Controller
	j.startTime = rm.Shard().Now()
	j.onDone = onDone
	if pc := s.Precompiled; pc != nil && pc.base.Same(s.BaseConfig) {
		j.baseSnap = pc.baseSnap
		j.baseRepaired = pc.repaired
		j.baseRepairedSnap = pc.repairedSnap
	} else {
		j.baseSnap = s.BaseConfig.Snapshot()
		j.baseRepaired = mrconf.Repair(s.BaseConfig)
		if j.baseRepaired.Same(s.BaseConfig) {
			j.baseRepairedSnap = j.baseSnap
		} else {
			j.baseRepairedSnap = j.baseRepaired.Snapshot()
		}
	}
	j.app = rm.Submit(s.Name, s.Weight)
	// Node-loss notifications drive map-output re-execution (the AM's
	// response to reducer fetch failures against a dead host).
	j.app.OnNodeLost = j.nodeLost

	src := sim.NewSource(uint64(len(s.Name))*1e9 + uint64(s.Benchmark.NumMaps)).Sub("job:" + s.Name)
	if s.Benchmark.InputSizeMB > 0 {
		j.inputFile = fs.CreateWithBlockSize(s.Name+"/input", s.Benchmark.InputSizeMB, s.Benchmark.SplitSizeMB())
	}
	j.mapSkewRNG = src.StreamInto(j.mapSkewRNG, "map-skew")
	skews := s.Benchmark.Splits(j.mapSkewRNG)
	for i := 0; i < s.Benchmark.NumMaps; i++ {
		t := s.Pool.getTask()
		t.Job, t.Type, t.ID, t.Skew = j, MapTask, i, skews[i]
		if j.inputFile != nil && i < len(j.inputFile.Blocks) {
			t.Split = j.inputFile.Blocks[i]
		}
		j.mapTasks = append(j.mapTasks, t)
	}
	j.reduceRNG = src.StreamInto(j.reduceRNG, "reduce-skew")
	rrng := j.reduceRNG
	shares := j.reduceShare
	if cap(shares) < s.Benchmark.NumReduces {
		shares = make([]float64, s.Benchmark.NumReduces)
	} else {
		shares = shares[:s.Benchmark.NumReduces]
	}
	total := 0.0
	for i := range shares {
		cv := 0.15
		sigma := math.Sqrt(math.Log(1 + cv*cv))
		shares[i] = math.Exp(-sigma*sigma/2 + sigma*rrng.NormFloat64())
		total += shares[i]
	}
	for i := range shares {
		shares[i] /= total
	}
	j.reduceShare = shares
	for i := 0; i < s.Benchmark.NumReduces; i++ {
		t := s.Pool.getTask()
		t.Job, t.Type, t.ID, t.Skew = j, ReduceTask, i, shares[i]*float64(s.Benchmark.NumReduces)
		j.reduceTasks = append(j.reduceTasks, t)
	}

	j.spec.Trace.Add(trace.Event{Time: j.shard.Now(), Job: j.Name, Kind: trace.JobSubmit,
		Detail: fmt.Sprintf("%d maps, %d reduces", len(j.mapTasks), len(j.reduceTasks))})
	j.shard.After(0, j.pump)
	j.scheduleSpeculation()
	return j
}

// traceTask emits one task lifecycle event.
func (j *Job) traceTask(t *Task, kind trace.Kind) {
	node := ""
	if t.container != nil {
		node = t.container.Node.Name
	}
	j.spec.Trace.Add(trace.Event{
		Time: j.shard.Now(), Job: j.Name, Kind: kind,
		TaskType: t.Type.String(), TaskID: t.ID, Attempt: t.Attempt, Node: node,
	})
}

// Benchmark returns the workload this job runs.
func (j *Job) Benchmark() workload.Benchmark { return j.bench }

// BaseConfig returns the job-level configuration.
func (j *Job) BaseConfig() mrconf.Config { return j.spec.BaseConfig }

// Engine returns the simulation engine (for controllers).
func (j *Job) Engine() *sim.Engine { return j.eng }

// Shard returns the shard the job's state machine schedules on.
func (j *Job) Shard() *sim.Shard { return j.shard }

// CompletedMaps returns the number of finished map tasks.
func (j *Job) CompletedMaps() int { return j.completedMaps }

// CompletedReduces returns the number of finished reduce tasks.
func (j *Job) CompletedReduces() int { return j.completedReduces }

// MapTasks and ReduceTasks expose task state to controllers.
func (j *Job) MapTasks() []*Task    { return j.mapTasks }
func (j *Job) ReduceTasks() []*Task { return j.reduceTasks }

// pump requests containers for every launchable pending task: maps in
// order, then reduces once slowstart has been reached, subject to the
// controller's launch gate and the reduce headroom policy.
func (j *Job) pump() {
	if j.finished {
		return
	}
	// Real AMs ramp container requests with heartbeats instead of
	// enqueueing every task at submission; modelling that window is
	// what lets MRONLINE bind a task's configuration shortly before
	// launch (the per-task configuration files of §4).
	mapWindow := j.requestWindow(j.baseSnap.MapMemMB())
	for j.nextMapReq < len(j.mapTasks) && float64(j.nextMapReq-j.completedMaps) < mapWindow {
		t := j.mapTasks[j.nextMapReq]
		if !j.ctrl.AllowLaunch(t) {
			break
		}
		j.requestContainer(t)
		j.nextMapReq++
	}
	slowstartMet := float64(j.completedMaps) >= j.spec.SlowstartFraction*float64(len(j.mapTasks))
	if len(j.mapTasks) == 0 {
		slowstartMet = true
	}
	if slowstartMet {
		reduceWindow := j.requestWindow(j.baseSnap.ReduceMemMB())
		for j.nextReduceReq < len(j.reduceTasks) && float64(j.nextReduceReq-j.completedReduces) < reduceWindow {
			t := j.reduceTasks[j.nextReduceReq]
			if !j.ctrl.AllowLaunch(t) {
				break
			}
			cfg := j.taskConfig(t)
			snap := cfg.Snapshot()
			if !j.reduceHeadroomOK(snap.ReduceMemMB()) {
				break
			}
			j.requestContainerWithConfig(t, cfg)
			j.nextReduceReq++
		}
	}
}

// requestWindow caps requested-but-unfinished tasks at roughly twice
// what the cluster can run at once for the given container size.
func (j *Job) requestWindow(memMB float64) float64 {
	slots := 2 * j.rm.TotalContainerMemMB() / memMB
	if slots < 36 {
		slots = 36
	}
	return slots
}

func (j *Job) reduceHeadroomOK(memMB float64) bool {
	if j.completedMaps == len(j.mapTasks) {
		return true
	}
	limit := ReduceHeadroomFraction * j.rm.TotalContainerMemMB()
	return j.reduceMemHeld+memMB <= limit
}

// taskConfig asks the controller for the attempt's configuration and
// repairs it against the dependency rules. When the controller hands
// the base config back untouched (identity-preserved, the default
// controller's behavior), the repair was already done at submission.
func (j *Job) taskConfig(t *Task) mrconf.Config {
	cfg := j.ctrl.TaskConfig(t, j.spec.BaseConfig)
	if cfg.Same(j.spec.BaseConfig) {
		return j.baseRepaired
	}
	return mrconf.Repair(cfg)
}

func (j *Job) requestContainer(t *Task) {
	j.requestContainerWithConfig(t, j.taskConfig(t))
}

func (j *Job) requestContainerWithConfig(t *Task, cfg mrconf.Config) {
	t.setConfig(cfg)
	t.State = TaskRequested
	var shape yarn.Resource
	var prefs []*cluster.Node
	if t.Type == MapTask {
		shape = yarn.Resource{MemMB: t.snap.MapMemMB(), VCores: t.snap.MapVcores()}
		if t.Split != nil {
			prefs = t.Split.Replicas
		}
	} else {
		shape = yarn.Resource{MemMB: t.snap.ReduceMemMB(), VCores: t.snap.ReduceVcores()}
		j.reduceMemHeld += shape.MemMB
	}
	if t.onAllocCB == nil {
		t.onAllocCB = func(c *yarn.Container) {
			j := t.Job
			t.pendingReq = nil
			if j.finished || t.killed {
				j.rm.Release(c)
				return
			}
			if t.Type == MapTask {
				j.runMap(t, c)
			} else {
				j.runReduce(t, c)
			}
		}
		t.onPreemptCB = func(c *yarn.Container) { t.Job.taskPreempted(t) }
		t.onNodeLostCB = func(c *yarn.Container) { t.Job.taskLostNode(t) }
	}
	t.req = yarn.Request{
		Resource:       shape,
		PreferredNodes: prefs,
		OnAllocate:     t.onAllocCB,
		OnPreempt:      t.onPreemptCB,
		OnNodeLost:     t.onNodeLostCB,
	}
	t.pendingReq = &t.req
	j.app.Request(&t.req)
}

// track registers an attempt's in-flight flows for kill support.
func (t *Task) track(flows ...*cluster.Flow) {
	t.liveFlows = append(t.liveFlows, flows...)
}

// trackOp registers an attempt's in-flight HDFS operation for kill
// support.
func (t *Task) trackOp(op canceler) {
	t.liveOps = append(t.liveOps, op)
}

// cancelWork aborts everything an attempt has in flight.
func (j *Job) cancelWork(t *Task) {
	for _, f := range t.liveFlows {
		if f != nil {
			f.Cancel()
		}
	}
	t.liveFlows = nil
	for _, op := range t.liveOps {
		op.Cancel()
	}
	t.liveOps = nil
}

// finishAttempt handles bookkeeping common to success and failure.
func (j *Job) releaseTask(t *Task) {
	if t.container != nil {
		j.rm.Release(t.container)
		t.container = nil
	}
}

func (j *Job) report(t *Task, oom bool) TaskReport {
	duration := t.EndTime - t.StartTime
	var contMem float64
	var coreCap float64
	if t.Type == MapTask {
		contMem = t.snap.MapMemMB()
		coreCap = float64(t.snap.MapVcores())
	} else {
		contMem = t.snap.ReduceMemMB()
		coreCap = float64(t.snap.ReduceVcores())
	}
	// Core ratio is per-node on heterogeneous clusters.
	ratio := j.rm.Cluster().Nodes[0].CoreRatio()
	if t.container != nil {
		ratio = t.container.Node.CoreRatio()
	}
	cpuUtil, memUtil := 0.0, 0.0
	if duration > 0 {
		cpuUtil = t.cpuSecs / (coreCap * ratio * duration)
	}
	if contMem > 0 {
		memUtil = t.peakMemMB / contMem
	}
	if cpuUtil > 1 {
		cpuUtil = 1
	}
	if memUtil > 1 {
		memUtil = 1
	}
	node := ""
	if t.container != nil {
		node = t.container.Node.Name
	}
	return TaskReport{
		JobName: j.Name, Type: t.Type, ID: t.ID, Attempt: t.Attempt,
		Config: t.Config, Node: node,
		Start: t.StartTime, End: t.EndTime,
		CPUUtil: cpuUtil, MemUtil: memUtil,
		SpilledRecords: t.spilledRec, OutputRecords: t.outputRec,
		DataMB: t.dataMB, RawOutputMB: t.rawOutMB, Spills: t.numSpills,
		OOM: oom,
	}
}

// taskSucceeded finalizes a successful attempt. With speculation, the
// first copy to arrive here wins; its twin is killed.
func (j *Job) taskSucceeded(t *Task) {
	if j.finished || t.killed {
		return
	}
	logical := t.logical()
	if logical.logicalDone {
		// The twin already won; this copy's work is discarded.
		j.releaseTask(t)
		return
	}
	logical.logicalDone = true
	if t.specOrigin != nil {
		j.counters.SpeculativeWins++
		j.liveShadows--
		t.specOrigin.specCopy = nil
	}
	if other := t.otherCopy(); other != nil {
		j.killAttempt(other)
	}
	t.State = TaskSucceeded
	t.EndTime = j.shard.Now()
	j.traceTask(t, trace.TaskFinish)
	r := j.report(t, false)
	j.releaseTask(t)
	j.reports = append(j.reports, r)
	j.ctrl.TaskCompleted(r)
	if t.Type == MapTask {
		j.completedMaps++
		if j.completedMaps == len(j.mapTasks) {
			j.wakeAllReducers()
		}
	} else {
		j.completedReduces++
		j.reduceMemHeld -= t.snap.ReduceMemMB()
	}
	if j.completedMaps == len(j.mapTasks) && j.completedReduces == len(j.reduceTasks) {
		j.finish(nil)
		return
	}
	j.pump()
}

// taskFailed handles an OOM-killed attempt: re-request (with a fresh
// configuration from the controller) up to MaxAttempts. A speculative
// copy that OOMs is simply dropped — its original is still running.
func (j *Job) taskFailed(t *Task, reason error) {
	if j.finished || t.killed {
		return
	}
	if t.specOrigin != nil {
		t.killed = true
		t.State = TaskFailed
		j.counters.OOMKills++
		j.liveShadows--
		t.specOrigin.specCopy = nil
		if t.Type == ReduceTask {
			j.reduceMemHeld -= t.snap.ReduceMemMB()
		}
		j.releaseTask(t)
		j.pump()
		return
	}
	t.EndTime = j.shard.Now()
	t.oomCount++
	j.traceTask(t, trace.TaskOOM)
	j.counters.OOMKills++
	r := j.report(t, true)
	j.releaseTask(t)
	j.reports = append(j.reports, r)
	j.ctrl.TaskCompleted(r)
	if t.Type == ReduceTask {
		j.reduceMemHeld -= t.snap.ReduceMemMB()
		// Drop any reducer runtime state; the retry re-registers.
		j.dropActiveReducer(t)
	}
	t.Attempt++
	if t.Attempt >= j.spec.MaxAttempts {
		j.finish(fmt.Errorf("mapreduce: task %s failed %d attempts: %w", t, t.Attempt, reason))
		return
	}
	t.State = TaskPending
	j.requestContainer(t)
}

func (j *Job) finish(err error) {
	if j.finished {
		return
	}
	j.finished = true
	j.failed = err != nil
	j.failErr = err
	j.spec.Trace.Add(trace.Event{Time: j.shard.Now(), Job: j.Name, Kind: trace.JobFinish,
		Detail: fmt.Sprintf("failed=%v", j.failed)})
	j.app.Finish()
	res := Result{
		JobName:  j.Name,
		Duration: j.shard.Now() - j.startTime,
		Counters: j.counters,
		Reports:  j.reports,
		Failed:   j.failed,
		Err:      err,
	}
	var mc, mm, rc, rmu metricAvg
	for _, r := range j.reports {
		if r.OOM || r.Failed {
			continue
		}
		if r.Type == MapTask {
			mc.add(r.CPUUtil)
			mm.add(r.MemUtil)
		} else {
			rc.add(r.CPUUtil)
			rmu.add(r.MemUtil)
		}
	}
	res.MapCPUUtil, res.MapMemUtil = mc.avg(), mm.avg()
	res.ReduceCPUUtil, res.ReduceMemUtil = rc.avg(), rmu.avg()
	if j.spec.ReleaseInputOnFinish && j.inputFile != nil {
		j.fs.Remove(j.inputFile)
		j.inputFile = nil
	}
	if j.onDone != nil {
		j.onDone(res)
	}
	// With no fault hooks, no speculation, and a clean finish, nothing
	// scheduled can reach the job or its tasks after this event (every
	// launch/OOM/retry closure has provably fired or is permanently
	// guarded), so the objects are safe to recycle. The recycle is
	// deferred one zero-delay event so callers still on the stack
	// (mapFinish's reducer wake-up, onDone itself) never see a reset
	// job. A failed job may still have attempts in flight and is never
	// recycled. See Pool.
	if p := j.spec.Pool; p != nil && !j.failed && j.spec.Faults == nil && j.spec.Speculation == nil {
		j.shard.After(0, func() { p.recycleJob(j) })
	}
}

type metricAvg struct {
	sum float64
	n   int
}

func (m *metricAvg) add(v float64) { m.sum += v; m.n++ }
func (m *metricAvg) avg() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// mergePasses returns how many full read+write passes over the data
// the merge phase performs for the given spill count and fan-in: zero
// for a single spill, one final merge up to factor spills, and extra
// intermediate passes beyond that (log base factor), the mechanism
// behind the paper's "3x map output records in the worst case".
func mergePasses(numSpills, factor int) int {
	if numSpills <= 1 {
		return 0
	}
	if factor < 2 {
		factor = 2
	}
	return int(math.Ceil(math.Log(float64(numSpills)) / math.Log(float64(factor))))
}
