package mapreduce

import (
	"strings"
	"testing"

	"repro/internal/mrconf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestJobEmitsTrace(t *testing.T) {
	r := newRig()
	rec := &trace.Recorder{}
	b := workload.Terasort(2, 0, 0)
	res := r.run(t, Spec{Benchmark: b, BaseConfig: mrconf.Default(), Trace: rec})
	if res.Failed {
		t.Fatal(res.Err)
	}
	// submit + (start+finish) per task + job finish
	want := 1 + 2*(b.NumMaps+b.NumReduces) + 1
	if rec.Len() != want {
		t.Fatalf("trace events = %d, want %d", rec.Len(), want)
	}
	events := rec.Events()
	if events[0].Kind != trace.JobSubmit {
		t.Fatal("first event not job_submit")
	}
	if events[len(events)-1].Kind != trace.JobFinish {
		t.Fatal("last event not job_finish")
	}
	// Times must be nondecreasing.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("trace not in time order")
		}
	}
	// Every task_start carries a node.
	for _, e := range events {
		if e.Kind == trace.TaskStart && e.Node == "" {
			t.Fatalf("task_start without node: %+v", e)
		}
	}
	g := rec.Gantt(60)
	if !strings.Contains(g, "node") {
		t.Fatalf("gantt rendering broken:\n%s", g)
	}
}

func TestNoTraceByDefault(t *testing.T) {
	r := newRig()
	res := r.run(t, Spec{Benchmark: workload.Terasort(2, 0, 0), BaseConfig: mrconf.Default()})
	if res.Failed {
		t.Fatal(res.Err)
	}
}
