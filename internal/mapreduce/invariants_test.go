package mapreduce

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mrconf"
	"repro/internal/workload"
)

// randomValidConfig draws a repaired configuration from the full
// parameter space.
func randomValidConfig(rng *rand.Rand) mrconf.Config {
	c := mrconf.Default()
	for _, p := range mrconf.Params() {
		c = c.With(p.Name, p.Min+rng.Float64()*(p.Max-p.Min))
	}
	return mrconf.Repair(c)
}

// checkInvariants asserts the conservation laws that must hold for any
// completed run, whatever the configuration.
func checkInvariants(t *testing.T, b workload.Benchmark, res Result) {
	t.Helper()
	c := res.Counters
	if res.Duration <= 0 {
		t.Fatal("non-positive duration")
	}
	// All input consumed.
	if math.Abs(c.MapInputMB-b.InputSizeMB) > 1e-6*math.Max(1, b.InputSizeMB) {
		t.Fatalf("map input %v != benchmark input %v", c.MapInputMB, b.InputSizeMB)
	}
	// Reduce input equals map output (nothing lost in the shuffle).
	if math.Abs(c.ReduceInputMB-c.MapOutputMB) > 1e-6*math.Max(1, c.MapOutputMB) {
		t.Fatalf("shuffle lost data: in %v out %v", c.ReduceInputMB, c.MapOutputMB)
	}
	// Spills are bounded: at least the combiner output once (map side
	// must write its output), at most ~3x plus the reduce side.
	if c.SpilledRecordsMap < c.CombineOutputRecs*(1-1e-9) {
		t.Fatalf("map spills %v below one pass of %v", c.SpilledRecordsMap, c.CombineOutputRecs)
	}
	maxSpills := c.CombineOutputRecs*3.001 + c.ReduceInputMB/b.Profile.RecordBytes*3.001
	if c.SpilledRecords() > maxSpills {
		t.Fatalf("spills %v exceed 3x bound %v", c.SpilledRecords(), maxSpills)
	}
	// Utilizations are fractions.
	for _, u := range []float64{res.MapCPUUtil, res.MapMemUtil, res.ReduceCPUUtil, res.ReduceMemUtil} {
		if u < 0 || u > 1 {
			t.Fatalf("utilization %v out of [0,1]", u)
		}
	}
	// Task reports are time-consistent: no negative spans, and every
	// task lies within the job's submit..finish window (reports use
	// absolute simulation time, so compare spans, not raw ends).
	minStart, maxEnd := math.Inf(1), 0.0
	for _, r := range res.Reports {
		if r.End < r.Start {
			t.Fatalf("task %v ends before it starts", r)
		}
		if r.Start < minStart {
			minStart = r.Start
		}
		if r.End > maxEnd {
			maxEnd = r.End
		}
	}
	if len(res.Reports) > 0 && maxEnd-minStart > res.Duration+1e-6 {
		t.Fatalf("task span %v exceeds job duration %v", maxEnd-minStart, res.Duration)
	}
}

// TestInvariantsUnderRandomConfigs is the failure-injection sweep: any
// valid configuration — however bad — must yield a consistent run
// (possibly with OOM retries, never a corrupted one).
func TestInvariantsUnderRandomConfigs(t *testing.T) {
	b := workload.Terasort(6, 0, 0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomValidConfig(rng)
		r := newRig()
		var res Result
		got := false
		Submit(r.rm, r.fs, Spec{Benchmark: b, BaseConfig: cfg}, func(rr Result) { res = rr; got = true })
		r.eng.Run()
		if !got {
			t.Logf("seed %d config %s: job never completed", seed, cfg)
			return false
		}
		if res.Failed {
			// A config can legitimately fail (hopeless OOM), but then it
			// must carry an error and have recorded the kills.
			return res.Err != nil && res.Counters.OOMKills > 0
		}
		checkInvariants(t, b, res)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsAcrossSuite runs every Table 3 benchmark under the
// default configuration and checks the same conservation laws.
func TestInvariantsAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep in -short mode")
	}
	for _, b := range workload.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			r := newRig()
			res := r.run(t, Spec{Benchmark: b, BaseConfig: mrconf.Default()})
			if res.Failed {
				t.Fatalf("failed: %v", res.Err)
			}
			checkInvariants(t, b, res)
		})
	}
}

// TestMonotoneSortBuffer checks a directional property the tuner
// relies on: growing io.sort.mb (with memory to hold it) never
// increases map-side spilled records.
func TestMonotoneSortBuffer(t *testing.T) {
	b := workload.Terasort(6, 0, 0)
	prev := math.Inf(1)
	for _, sortMB := range []float64{50, 100, 200, 400} {
		cfg := mrconf.Default().With(mrconf.MapMemoryMB, 2048).With(mrconf.IOSortMB, sortMB)
		r := newRig()
		res := r.run(t, Spec{Benchmark: b, BaseConfig: cfg})
		if res.Counters.SpilledRecordsMap > prev+1e-6 {
			t.Fatalf("spills increased when io.sort.mb grew to %v", sortMB)
		}
		prev = res.Counters.SpilledRecordsMap
	}
}

// TestMonotoneReduceBuffer mirrors the property on the reduce side:
// retaining more map output in memory never increases reduce spills.
func TestMonotoneReduceBuffer(t *testing.T) {
	b := workload.Terasort(6, 0, 0)
	prev := math.Inf(1)
	for _, ibp := range []float64{0, 0.3, 0.6, 0.85} {
		cfg := mrconf.Default().
			With(mrconf.ReduceMemoryMB, 2048).
			With(mrconf.ShuffleInputBufferPct, 0.85).
			With(mrconf.ShuffleMemoryLimitPct, 0.5).
			With(mrconf.ReduceInputBufferPct, ibp)
		r := newRig()
		res := r.run(t, Spec{Benchmark: b, BaseConfig: cfg})
		if res.Counters.SpilledRecordsRed > prev+1e-6 {
			t.Fatalf("reduce spills increased when input.buffer.percent grew to %v", ibp)
		}
		prev = res.Counters.SpilledRecordsRed
	}
}

// TestLiveConfigApplied verifies category-3 parameters reach running
// tasks: a controller that flips spill.percent at the live hook must
// see its value in the reports.
func TestLiveConfigApplied(t *testing.T) {
	ctrl := &liveSpill{}
	r := newRig()
	res := r.run(t, Spec{Benchmark: workload.Terasort(2, 0, 0), BaseConfig: mrconf.Default(), Controller: ctrl})
	if res.Failed {
		t.Fatal(res.Err)
	}
	for _, rep := range res.Reports {
		if rep.Type == MapTask && rep.Config.SpillPct() != 0.99 {
			t.Fatalf("live spill.percent not applied: %v", rep.Config.SpillPct())
		}
	}
}

type liveSpill struct{ PassthroughController }

func (liveSpill) LiveConfig(t *Task, current mrconf.Config) mrconf.Config {
	return current.With(mrconf.SortSpillPercent, 0.99)
}
