package core

import (
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

func newServiceRig(t *testing.T, opts ServiceOptions) (*sim.Engine, *Service) {
	t.Helper()
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FairScheduler{})
	fs := hdfs.New(c, sim.NewSource(9).Stream("hdfs"))
	return eng, NewService(rm, fs, opts)
}

func TestServiceConservativeByDefault(t *testing.T) {
	eng, svc := newServiceRig(t, ServiceOptions{})
	b := workload.Terasort(10, 0, 0)
	var res mapreduce.Result
	svc.Submit(mapreduce.Spec{Name: "job1", Benchmark: b, BaseConfig: mrconf.Default()},
		func(r mapreduce.Result) { res = r })
	eng.Run()
	if res.Failed {
		t.Fatal(res.Err)
	}
	// Conservative runs do not populate the knowledge base.
	if svc.KnowledgeBase().Len() != 0 {
		t.Fatal("conservative service stored a KB entry")
	}
}

func TestServiceAggressiveStoresAndReuses(t *testing.T) {
	eng, svc := newServiceRig(t, ServiceOptions{Strategy: Aggressive, ClusterName: "c1", Seed: 7})
	b := workload.Terasort(20, 0, 0)

	var first mapreduce.Result
	svc.Submit(mapreduce.Spec{Name: "run1", Benchmark: b, BaseConfig: mrconf.Default()},
		func(r mapreduce.Result) { first = r })
	eng.Run()
	if first.Failed {
		t.Fatal(first.Err)
	}
	if svc.KnowledgeBase().Len() != 1 {
		t.Fatalf("KB entries = %d, want 1 after aggressive run", svc.KnowledgeBase().Len())
	}

	// Second submission of the same app+size: must start from the KB
	// config (observable through the reports' configs) and be faster
	// than the instrumented first run.
	var second mapreduce.Result
	svc.Submit(mapreduce.Spec{Name: "run2", Benchmark: b, BaseConfig: mrconf.Default()},
		func(r mapreduce.Result) { second = r })
	eng.Run()
	if second.Failed {
		t.Fatal(second.Err)
	}
	if second.Duration >= first.Duration {
		t.Fatalf("KB-configured run (%.0fs) not faster than the test run (%.0fs)",
			second.Duration, first.Duration)
	}
	kbCfg, _ := svc.KnowledgeBase().Get(Key(b.Name, b.InputSizeMB, "c1"))
	for _, rep := range second.Reports {
		if rep.Type == mapreduce.MapTask && rep.Config.SortMB() != kbCfg.SortMB() {
			t.Fatalf("second run ignored the KB config: %v vs %v", rep.Config.SortMB(), kbCfg.SortMB())
		}
	}
}

func TestServicePreservesCallerController(t *testing.T) {
	eng, svc := newServiceRig(t, ServiceOptions{})
	b := workload.Terasort(2, 0, 0)
	custom := &countingController{}
	svc.Submit(mapreduce.Spec{Name: "job", Benchmark: b, BaseConfig: mrconf.Default(), Controller: custom},
		func(mapreduce.Result) {})
	eng.Run()
	if custom.calls == 0 {
		t.Fatal("service replaced the caller's controller")
	}
}

type countingController struct {
	mapreduce.PassthroughController
	calls int
}

func (c *countingController) TaskConfig(t *mapreduce.Task, base mrconf.Config) mrconf.Config {
	c.calls++
	return base
}

func TestServiceDistinctAppsDistinctEntries(t *testing.T) {
	eng, svc := newServiceRig(t, ServiceOptions{Strategy: Aggressive, Seed: 3})
	done := 0
	svc.Submit(mapreduce.Spec{Name: "a", Benchmark: workload.Terasort(10, 0, 0), BaseConfig: mrconf.Default()},
		func(mapreduce.Result) { done++ })
	eng.Run()
	svc.Submit(mapreduce.Spec{Name: "b", Benchmark: workload.Terasort(60, 0, 0), BaseConfig: mrconf.Default()},
		func(mapreduce.Result) { done++ })
	eng.Run()
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	// Different input scales land in different power-of-two buckets.
	if svc.KnowledgeBase().Len() != 2 {
		t.Fatalf("KB entries = %d, want 2 (size buckets differ)", svc.KnowledgeBase().Len())
	}
}

func TestServiceTunesStaticParams(t *testing.T) {
	eng, svc := newServiceRig(t, ServiceOptions{Strategy: Aggressive, Seed: 7, TuneStaticParams: true})
	b := workload.Terasort(20, 0, 0) // 150 maps, 37 reduces
	var first mapreduce.Result
	svc.Submit(mapreduce.Spec{Name: "r1", Benchmark: b, BaseConfig: mrconf.Default()},
		func(r mapreduce.Result) { first = r })
	eng.Run()
	if first.Failed {
		t.Fatal(first.Err)
	}
	key := Key(b.Name, b.InputSizeMB, svc.ClusterName)
	p, ok := svc.KnowledgeBase().GetStatic(key)
	if !ok {
		t.Fatal("no static recommendation stored")
	}
	if p.NumReduces <= 0 || p.Slowstart <= 0 {
		t.Fatalf("bad static recommendation: %+v", p)
	}
	// The second submission runs with the recommended reducer count.
	var second mapreduce.Result
	j := svc.Submit(mapreduce.Spec{Name: "r2", Benchmark: b, BaseConfig: mrconf.Default()},
		func(r mapreduce.Result) { second = r })
	if len(j.ReduceTasks()) != p.NumReduces {
		t.Fatalf("second run has %d reducers, recommendation was %d",
			len(j.ReduceTasks()), p.NumReduces)
	}
	eng.Run()
	if second.Failed {
		t.Fatal(second.Err)
	}
}

func TestKnowledgeBaseStaticsRoundTrip(t *testing.T) {
	kb := NewKnowledgeBase()
	kb.Put("k", mrconf.Default().With(mrconf.IOSortMB, 200))
	kb.PutStatic("k", StaticParams{NumReduces: 75, Slowstart: 0.5})
	path := t.TempDir() + "/kb.json"
	if err := kb.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := back.GetStatic("k")
	if !ok || p.NumReduces != 75 || p.Slowstart != 0.5 {
		t.Fatalf("statics lost in round trip: %+v ok=%v", p, ok)
	}
	if _, ok := back.Get("k"); !ok {
		t.Fatal("config lost in round trip")
	}
}

func TestKnowledgeBaseLegacyFormat(t *testing.T) {
	// The original flat format (key -> config) must still load.
	path := t.TempDir() + "/legacy.json"
	legacy := `{"k": {"mapreduce.task.io.sort.mb": 400}}`
	if err := osWriteFile(path, legacy); err != nil {
		t.Fatal(err)
	}
	kb, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := kb.Get("k")
	if !ok || cfg.SortMB() != 400 {
		t.Fatalf("legacy entry lost: ok=%v cfg=%s", ok, cfg)
	}
}

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestKBKeysSeparateClusters(t *testing.T) {
	// A configuration tuned on one cluster must not be applied on a
	// differently-named one: the key includes the cluster identity.
	kb := NewKnowledgeBase()
	eng1, svc1 := newServiceRig(t, ServiceOptions{Strategy: Aggressive, Seed: 3,
		ClusterName: "homogeneous", KnowledgeBase: kb})
	b := workload.Terasort(10, 0, 0)
	svc1.Submit(mapreduce.Spec{Name: "x", Benchmark: b, BaseConfig: mrconf.Default()}, nil)
	eng1.Run()
	if kb.Len() != 1 {
		t.Fatalf("KB entries = %d", kb.Len())
	}
	if _, ok := kb.Get(Key(b.Name, b.InputSizeMB, "heterogeneous")); ok {
		t.Fatal("cross-cluster KB hit")
	}
	if _, ok := kb.Get(Key(b.Name, b.InputSizeMB, "homogeneous")); !ok {
		t.Fatal("same-cluster KB miss")
	}
}
