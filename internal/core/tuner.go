package core

import (
	"math"
	"math/rand"

	"repro/internal/lhs"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/tuner"
)

// Strategy selects between the paper's two use cases (§2.3).
type Strategy int

const (
	// Aggressive tuning (expedited test runs): systematic gray-box hill
	// climbing with LHS, holding task waves to measure each sampled
	// configuration; the goal is the best configuration for future runs.
	Aggressive Strategy = iota + 1
	// Conservative tuning (fast single run): rule-driven adjustments
	// from observed statistics that never interrupt scheduling; the
	// goal is to speed up the current run.
	Conservative
)

func (s Strategy) String() string {
	if s == Aggressive {
		return "aggressive"
	}
	return "conservative"
}

// searchDims returns the hill-climbed parameters per scope. In
// gray-box mode the remaining Table 2 parameters are set by the §6
// rules at materialization time (spill.percent, merge.percent,
// inmem.threshold, input.buffer.percent,
// shuffle.input.buffer.percent), which shrinks the LHS space and
// speeds convergence — the paper's motivation for combining rules
// with the search. Black-box mode (the smart-hill-climbing baseline
// the paper builds on) searches the full scope instead.
func searchDims(scope mrconf.Scope, blackBox bool) []mrconf.Param {
	if blackBox {
		return mrconf.ParamsByScope(scope)
	}
	var names []string
	if scope == mrconf.ScopeMap {
		names = []string{mrconf.MapMemoryMB, mrconf.IOSortMB, mrconf.MapCPUVcores, mrconf.IOSortFactor}
	} else {
		names = []string{mrconf.ReduceMemoryMB, mrconf.ShuffleMemoryLimitPct, mrconf.ReduceCPUVcores, mrconf.ShuffleParallelCopies}
	}
	out := make([]mrconf.Param, len(names))
	for i, n := range names {
		out[i] = mrconf.MustLookup(n)
	}
	return out
}

// Tuner is the MRONLINE online tuner for one job: it implements
// mapreduce.Controller, so attaching it to a job submission is all
// that is needed ("a performance boost can be achieved by simply
// co-executing MRONLINE with target applications").
type Tuner struct {
	Strategy Strategy

	mon  *Monitor
	dc   *DynamicConfigurator
	base mrconf.Config
	rng  *rand.Rand

	jobName    string
	numMaps    int
	numReduces int
	blackBox   bool
	costW      CostWeights
	search     SearchParams
	backend    string

	// Per-scope optimizer RNGs. For the hill backend both point at the
	// legacy shared stream (t.rng); for other backends each scope gets
	// its own sim.Source sub-stream.
	mapRNG *rand.Rand
	redRNG *rand.Rand

	// aggressive state
	mapS        scopeSearch
	redS        scopeSearch
	assignments map[string][]float64 // taskID -> sampled point

	// conservative state
	cons consState

	// Percentile caches for the working-set samples: a percentile over
	// N observations is recomputed only when N changes, since the
	// samples are append-only.
	mapWSP95, redWSP95 pctCache
	mapWSP80, redWSP80 pctCache
}

// scopeSearch is one scope's (map or reduce) slice of the aggressive
// search: the searched dimensions, the optimizer backend walking them,
// and the wave buffer the §6.2 gray-box rules read at wave boundaries.
type scopeSearch struct {
	dims    []mrconf.Param
	opt     tuner.Optimizer
	waveBuf []mapreduce.TaskReport
	// waves counts wave boundaries this driver observed (differs from
	// opt.Waves only when a wave completes with no assignment routed
	// through this tuner).
	waves int
}

// pctCache memoizes one percentile of an append-only sample, keyed by
// the observation count.
type pctCache struct {
	n int
	v float64
}

func (c *pctCache) value(s *metrics.Sample, p float64) float64 {
	if s.N() != c.n {
		c.n = s.N()
		c.v = s.Percentile(p)
	}
	return c.v
}

type consState struct {
	mapOverrides map[string]float64
	redOverrides map[string]float64

	mapVcores     int
	mapVcoreDur   float64 // mean map duration at the previous vcore level
	mapVcoreStop  bool
	redVcores     int
	redVcoreDur   float64
	redVcoreStop  bool
	parCopies     int
	parCopiesDur  float64
	parCopiesStop bool
	sortFactorSet bool

	lastMapRecalc int
	lastRedRecalc int
}

// TunerOptions configure a Tuner.
type TunerOptions struct {
	Strategy Strategy
	Search   SearchParams
	Seed     uint64
	// BlackBox disables the gray-box extensions (§5/§6): no rule-set
	// parameters, no observation-driven bound tightening — pure smart
	// hill climbing over all 13 parameters, the baseline the paper
	// improves upon. Used by the ablation benchmarks.
	BlackBox bool
	// CostWeights scale the Eq. 1 terms; zero value means UnitWeights.
	CostWeights CostWeights
	// Backend names the optimizer backend driving the aggressive
	// search: "hill" (default, the paper's Algorithm 1), "spsa", or
	// "tpe" — any name in tuner.Backends(). The hill backend draws from
	// the tuner's legacy shared RNG stream so existing experiment
	// output stays byte-identical; other backends draw from dedicated
	// sim.Source sub-streams ("tuner/<backend>").
	Backend string
	// Warm, when non-nil and usable, warm-starts both scopes' searches
	// from a previous same-class job's outcome (see tuner.Store): the
	// backend begins in its refinement phase around the stored best and
	// issues strictly fewer test waves than a cold search.
	Warm *tuner.Entry
}

// NewTuner builds a tuner for a job with the given task counts. base
// is the configuration the job would otherwise run with.
func NewTuner(jobName string, numMaps, numReduces int, base mrconf.Config, opts TunerOptions) *Tuner {
	if opts.Strategy == 0 {
		opts.Strategy = Conservative
	}
	if opts.Search.M == 0 {
		opts.Search = DefaultSearchParams()
	}
	if opts.Backend == "" {
		opts.Backend = "hill"
	}
	rng := rand.New(rand.NewSource(int64(opts.Seed) ^ 0x6d726f6e6c696e65))
	if opts.CostWeights == (CostWeights{}) {
		opts.CostWeights = UnitWeights
	}
	t := &Tuner{
		Strategy:    opts.Strategy,
		mon:         NewMonitor(numMaps, numReduces),
		dc:          NewDynamicConfigurator(),
		base:        base,
		rng:         rng,
		jobName:     jobName,
		numMaps:     numMaps,
		numReduces:  numReduces,
		blackBox:    opts.BlackBox,
		costW:       opts.CostWeights,
		search:      opts.Search,
		backend:     opts.Backend,
		assignments: make(map[string][]float64),
	}
	// The hill backend shares the legacy RNG stream between both scopes
	// (map scope constructed first) — the exact pre-refactor draw
	// sequence, pinned by the figure pipeline's byte-identity contract.
	// Other backends get independent named sub-streams.
	t.mapRNG, t.redRNG = rng, rng
	if opts.Backend != "hill" {
		src := sim.NewSource(opts.Seed).Sub("tuner").Sub(opts.Backend)
		t.mapRNG, t.redRNG = src.Stream("map"), src.Stream("reduce")
	}
	if t.Strategy == Aggressive {
		t.mapS = t.newSearch(mrconf.ScopeMap, t.mapRNG, warmScope(opts.Warm, mrconf.ScopeMap))
		t.redS = t.newSearch(mrconf.ScopeReduce, t.redRNG, warmScope(opts.Warm, mrconf.ScopeReduce))
	} else {
		t.cons.mapOverrides = map[string]float64{}
		t.cons.redOverrides = map[string]float64{}
		t.cons.mapVcores = base.MapVcores()
		t.cons.redVcores = base.ReduceVcores()
		t.cons.parCopies = base.ParallelCopies()
	}
	return t
}

// newSearch builds one scope's optimizer through the backend registry.
// Both the gray-box and the black-box parameter spaces route through
// the same path — the search plumbing no longer cares which.
func (t *Tuner) newSearch(scope mrconf.Scope, rng *rand.Rand, warm *tuner.ScopeState) scopeSearch {
	dims := searchDims(scope, t.blackBox)
	opt, err := tuner.New(t.backend, tuner.Options{Params: dims, RNG: rng, Search: t.search, Warm: warm})
	if err != nil {
		panic(err) // CLI flags validate backend names before building a Tuner
	}
	return scopeSearch{dims: dims, opt: opt}
}

// warmScope extracts one scope's usable warm-start state from a Store
// entry, or nil.
func warmScope(e *tuner.Entry, scope mrconf.Scope) *tuner.ScopeState {
	if e == nil {
		return nil
	}
	s := e.Map
	if scope == mrconf.ScopeReduce {
		s = e.Reduce
	}
	if !s.HaveBest {
		return nil
	}
	return &s
}

// Reset re-targets the tuner at a fresh job, reusing the monitor's
// sample buffers and the tuner's maps instead of allocating new ones —
// the recycling hook for serving many jobs of the same class with one
// tuner. The RNG stream continues rather than reseeding, which keeps a
// same-seed job stream deterministic (the k-th job always sees the
// same draws). Strategy, black-box mode, and cost weights carry over.
func (t *Tuner) Reset(jobName string, numMaps, numReduces int, base mrconf.Config) {
	t.mon.Reset(numMaps, numReduces)
	t.dc = NewDynamicConfigurator()
	t.base = base
	t.jobName = jobName
	t.numMaps = numMaps
	t.numReduces = numReduces
	clear(t.assignments)
	t.mapWSP95, t.redWSP95 = pctCache{}, pctCache{}
	t.mapWSP80, t.redWSP80 = pctCache{}, pctCache{}
	if t.Strategy == Aggressive {
		// Fresh cold searches (a recycled tuner serves a new job; warm
		// starts are a per-job construction-time decision), reusing the
		// wave buffers' capacity.
		mapBuf, redBuf := t.mapS.waveBuf[:0], t.redS.waveBuf[:0]
		t.mapS = t.newSearch(mrconf.ScopeMap, t.mapRNG, nil)
		t.redS = t.newSearch(mrconf.ScopeReduce, t.redRNG, nil)
		t.mapS.waveBuf, t.redS.waveBuf = mapBuf, redBuf
		return
	}
	t.cons = consState{
		mapOverrides: clearedMap(t.cons.mapOverrides),
		redOverrides: clearedMap(t.cons.redOverrides),
		mapVcores:    base.MapVcores(),
		redVcores:    base.ReduceVcores(),
		parCopies:    base.ParallelCopies(),
	}
}

func clearedMap(m map[string]float64) map[string]float64 {
	if m == nil {
		return map[string]float64{}
	}
	clear(m)
	return m
}

// Monitor exposes the tuner's monitor (for experiments and tests).
func (t *Tuner) Monitor() *Monitor { return t.mon }

// Configurator exposes the Table 1 API instance backing this tuner.
func (t *Tuner) Configurator() *DynamicConfigurator { return t.dc }

func (t *Tuner) searchFor(tt mapreduce.TaskType) *scopeSearch {
	if tt == mapreduce.MapTask {
		return &t.mapS
	}
	return &t.redS
}

// ---------- mapreduce.Controller implementation ----------

// AllowLaunch implements the wave hold-off of aggressive tuning: no
// new task launches while the current wave is fully assigned but not
// yet measured. Conservative tuning never interferes with scheduling.
func (t *Tuner) AllowLaunch(task *mapreduce.Task) bool {
	if t.Strategy != Aggressive {
		return true
	}
	if _, ok := t.assignments[TaskID(task.Type == mapreduce.MapTask, task.ID)]; ok {
		// The task already holds a sampled point (its first launch was
		// deferred, e.g. by the reduce headroom policy); let it through.
		return true
	}
	s := t.searchFor(task.Type)
	return s.opt.Done() || s.opt.HasPending()
}

// TaskConfig hands each task its configuration: the next LHS sample
// under aggressive tuning, the current rule-tuned configuration under
// conservative tuning.
func (t *Tuner) TaskConfig(task *mapreduce.Task, base mrconf.Config) mrconf.Config {
	id := TaskID(task.Type == mapreduce.MapTask, task.ID)
	if task.Attempt >= 2 {
		// Two straight OOM kills: stop experimenting on this task and
		// fall back to the job's base configuration, which is known to
		// be feasible (the job ran under it before tuning).
		return base
	}
	if t.Strategy == Aggressive {
		s := t.searchFor(task.Type)
		if _, ok := t.assignments[id]; ok && task.Attempt == 0 {
			// Re-asked for a task that still holds its point (deferred
			// launch): idempotently return the same configuration.
			return t.materialize(t.dc.ConfigFor(t.jobName, id, t.base), task.Type)
		}
		if !s.opt.Done() && task.Attempt == 0 {
			if point := s.opt.Next(); point != nil {
				t.assignments[id] = point
				t.dc.SetTaskParameters(t.jobName, id, tuner.PointToOverrides(s.dims, point))
				return t.materialize(t.dc.ConfigFor(t.jobName, id, t.base), task.Type)
			}
		}
		// Search finished (or a retry): use the best configuration.
		return t.materialize(t.bestSoFar(task.Type), task.Type)
	}
	// Conservative: job-wide rule overrides via the configurator.
	overrides := t.cons.mapOverrides
	if task.Type == mapreduce.ReduceTask {
		overrides = t.cons.redOverrides
	}
	cfg := t.base
	for name, v := range overrides {
		cfg = cfg.With(name, v)
	}
	return t.materialize(cfg, task.Type)
}

// LiveConfig re-applies the live (category 3) rules just before the
// task's spill decisions, letting spill.percent and the in-memory
// merge threshold move for already-launched tasks.
func (t *Tuner) LiveConfig(task *mapreduce.Task, current mrconf.Config) mrconf.Config {
	return t.materialize(current, task.Type)
}

// TaskCompleted ingests monitor data and advances the search.
func (t *Tuner) TaskCompleted(r mapreduce.TaskReport) {
	t.mon.Observe(r)
	if t.Strategy == Aggressive {
		t.aggressiveObserve(r)
		return
	}
	t.conservativeObserve(r)
}

// ---------- aggressive strategy ----------

func (t *Tuner) aggressiveObserve(r mapreduce.TaskReport) {
	id := TaskID(r.Type == mapreduce.MapTask, r.ID)
	point, ok := t.assignments[id]
	if !ok {
		return
	}
	delete(t.assignments, id)
	t.dc.ClearTask(t.jobName, id)
	s := t.searchFor(r.Type)
	scope := mrconf.ScopeMap
	if r.Type != mapreduce.MapTask {
		scope = mrconf.ScopeReduce
	}
	prevWaves := s.opt.Waves()
	s.opt.Report(point, WeightedCost(r, t.mon.TMax(r.Type), t.costW))
	s.waveBuf = append(s.waveBuf, r)
	if s.opt.Waves() != prevWaves {
		t.applyGrayBoxRules(s, s.waveBuf, scope)
		s.waveBuf = nil
		s.waves++
	}
}

// applyGrayBoxRules narrows the search bounds from the completed
// wave's observations (§6.2): memory bounds chase the 80th percentile
// of sampled values on over/under-utilization, and io.sort.mb bounds
// chase the spill ratio. It applies to any backend that implements the
// tuner.Shaper capability (all built-in ones do).
func (t *Tuner) applyGrayBoxRules(sc *scopeSearch, wave []mapreduce.TaskReport, scope mrconf.Scope) {
	if len(wave) == 0 || t.blackBox {
		return
	}
	s, ok := sc.opt.(tuner.Shaper)
	if !ok {
		return
	}
	memParam := mrconf.MapMemoryMB
	if scope == mrconf.ScopeReduce {
		memParam = mrconf.ReduceMemoryMB
	}
	var memVals, sortVals []float64
	var memUtil metrics.Sample
	var spillRatio metrics.Sample
	for _, r := range wave {
		memVals = append(memVals, r.Config.Get(memParam))
		memUtil.Observe(r.MemUtil)
		if scope == mrconf.ScopeMap {
			sortVals = append(sortVals, r.Config.SortMB())
			if r.OutputRecords > 0 {
				spillRatio.Observe(r.SpilledRecords / r.OutputRecords)
			}
		}
	}
	lo, hi := s.Bounds(memParam)
	p80 := metrics.Percentile(memVals, 80)
	switch {
	case memUtil.Mean() > 0.9:
		// Over-utilization risk: raise the lower bound (§6.2) and bias
		// the weighted LHS toward larger values ("tries the higher
		// value with a higher probability").
		s.Tighten(memParam, math.Max(lo, p80), hi)
		s.Bias(memParam, lhs.Weights{1, 1, 2, 3})
	case memUtil.Mean() < 0.5:
		// Under-utilization: pull the upper bound down and bias the
		// sampling toward smaller values.
		s.Tighten(memParam, lo, math.Min(hi, p80))
		s.Bias(memParam, lhs.Weights{3, 2, 1, 1})
	default:
		s.Bias(memParam, nil) // in band: uniform again
	}
	if scope == mrconf.ScopeMap && spillRatio.N() > 0 {
		lo, hi := s.Bounds(mrconf.IOSortMB)
		p80 := metrics.Percentile(sortVals, 80)
		if spillRatio.Mean() > 1.05 {
			// Buffers too small to hold the map output: spills beyond
			// the final one observed.
			s.Tighten(mrconf.IOSortMB, math.Max(lo, p80), hi)
		} else {
			// Single-spill achieved: shrink the upper bound toward the
			// sampled values, but never below what actually holds the
			// raw map output — otherwise the bound ratchets past the
			// point where spilling resumes.
			newHi := math.Min(hi, p80)
			if est, ok := t.mon.EstMapRawOutputMB(); ok {
				newHi = math.Max(newHi, est*1.1)
			}
			s.Tighten(mrconf.IOSortMB, math.Min(lo, newHi), newHi)
		}
	}

	// Requirement-driven ceilings ("adjusting containers to meet the
	// task requirements", §6): once the monitor can estimate the data
	// volumes, memory beyond what the task can use only reduces
	// cluster utilization, so the upper bounds come down to the
	// estimated need plus margin.
	if scope == mrconf.ScopeMap {
		if est, ok := t.mon.EstMapRawOutputMB(); ok {
			lo, hi := s.Bounds(mrconf.IOSortMB)
			sortCap := math.Min(hi, math.Max(est*1.5, 60))
			s.Tighten(mrconf.IOSortMB, math.Min(lo, sortCap), sortCap)
			need := (mapreduce.JVMBaseMB + math.Min(est*1.3, sortCap) + t.mapWorkingSetReserve(false)) / mrconf.HeapFraction
			lo, hi = s.Bounds(mrconf.MapMemoryMB)
			memCap := math.Min(hi, math.Max(need, 512))
			s.Tighten(mrconf.MapMemoryMB, math.Min(lo, memCap), memCap)
		}
	} else if est, ok := t.mon.EstReduceInputMB(); ok {
		need := (mapreduce.JVMBaseMB + est*1.3 + t.reduceWorkingSetReserve(false)) / mrconf.HeapFraction
		lo, hi := s.Bounds(mrconf.ReduceMemoryMB)
		memCap := math.Min(hi, math.Max(need, 512))
		s.Tighten(mrconf.ReduceMemoryMB, math.Min(lo, memCap), memCap)
	}
}

// bestSoFar renders the current best sampled point (or the base
// config before any wave finished) for one scope.
func (t *Tuner) bestSoFar(tt mapreduce.TaskType) mrconf.Config {
	s := t.searchFor(tt)
	cfg := t.base
	if point, _, ok := s.opt.Best(); ok {
		for name, v := range tuner.PointToOverrides(s.dims, point) {
			cfg = cfg.With(name, v)
		}
	}
	return cfg
}

// BestConfig returns the tuner's final recommendation: both scopes'
// best points plus the rule-derived parameters — what the expedited
// test run stores in the knowledge base for future runs.
func (t *Tuner) BestConfig() mrconf.Config {
	var cfg mrconf.Config
	if t.Strategy == Aggressive {
		cfg = t.base
		for name, v := range overridesOf(&t.mapS) {
			cfg = cfg.With(name, v)
		}
		for name, v := range overridesOf(&t.redS) {
			cfg = cfg.With(name, v)
		}
	} else {
		cfg = t.base
		for name, v := range t.cons.mapOverrides {
			cfg = cfg.With(name, v)
		}
		for name, v := range t.cons.redOverrides {
			cfg = cfg.With(name, v)
		}
	}
	// The recommendation runs standalone: use worst-case reserves and
	// grow the containers to hold them (the search explored with lean
	// reserves; a static config must survive the skew tail).
	mapNeed := (mapreduce.JVMBaseMB + cfg.SortMB() + t.mapWorkingSetReserve(true)) / mrconf.HeapFraction
	if cfg.MapMemMB() < mapNeed {
		cfg = cfg.With(mrconf.MapMemoryMB, mapNeed)
	}
	redNeed := (mapreduce.JVMBaseMB + cfg.ShuffleBufferPct()*cfg.ReduceHeapMB() + t.reduceWorkingSetReserve(true)) / mrconf.HeapFraction
	if cfg.ReduceMemMB() < redNeed {
		cfg = cfg.With(mrconf.ReduceMemoryMB, redNeed)
	}
	cfg = t.materializeWith(t.materializeWith(cfg, mapreduce.MapTask, true), mapreduce.ReduceTask, true)
	return mrconf.Repair(cfg)
}

func overridesOf(s *scopeSearch) map[string]float64 {
	if point, _, ok := s.opt.Best(); ok {
		return tuner.PointToOverrides(s.dims, point)
	}
	return nil
}

// SearchDone reports whether both scopes' searches have converged.
func (t *Tuner) SearchDone() bool {
	if t.Strategy != Aggressive {
		return false
	}
	return t.mapS.opt.Done() && t.redS.opt.Done()
}

// Backend names the optimizer backend this tuner drives.
func (t *Tuner) Backend() string { return t.backend }

// ExportWarm snapshots both scopes' search states for the cross-job
// warm-start Store. Only meaningful for aggressive tuners.
func (t *Tuner) ExportWarm() tuner.Entry {
	if t.Strategy != Aggressive {
		return tuner.Entry{}
	}
	return tuner.Entry{Map: t.mapS.opt.Export(), Reduce: t.redS.opt.Export()}
}

// TestWaves returns the completed search wave counts per scope — the
// per-job cost a warm start is meant to shrink.
func (t *Tuner) TestWaves() (mapWaves, redWaves int) {
	if t.Strategy != Aggressive {
		return 0, 0
	}
	return t.mapS.opt.Waves(), t.redS.opt.Waves()
}

// Trajectories returns both scopes' best-cost-so-far series (one entry
// per completed evaluation) — the convergence curves the tournament
// experiment compares across backends.
func (t *Tuner) Trajectories() (mapTraj, redTraj []float64) {
	if t.Strategy != Aggressive {
		return nil, nil
	}
	return t.mapS.opt.Trajectory(), t.redS.opt.Trajectory()
}

// ---------- rule materialization (§6) ----------

// materialize applies the deterministic tuning rules for the
// parameters not in the search space, using the monitor's estimates.
func (t *Tuner) materialize(cfg mrconf.Config, tt mapreduce.TaskType) mrconf.Config {
	return t.materializeWith(cfg, tt, false)
}

// materializeWith applies the §6 rules; safe=true uses worst-case
// working-set reserves (for the final recommendation, which runs
// without an adaptive controller).
func (t *Tuner) materializeWith(cfg mrconf.Config, tt mapreduce.TaskType, safe bool) mrconf.Config {
	if t.blackBox {
		// Pure black box: the sampled point is the whole configuration.
		return mrconf.Repair(cfg)
	}
	if tt == mapreduce.MapTask {
		// Feasibility: the heap must hold the JVM base, the sort buffer,
		// and the map working set; clamp io.sort.mb below that line so
		// a best point assembled from different waves cannot OOM.
		maxSort := cfg.MapHeapMB() - mapreduce.JVMBaseMB - t.mapWorkingSetReserve(safe)
		if cfg.SortMB() > maxSort {
			cfg = cfg.With(mrconf.IOSortMB, math.Max(50, maxSort-10))
		}
		// spill.percent: 0.99 when the buffer holds the whole raw map
		// output in one spill, otherwise the default (§6.2).
		if est, ok := t.mon.EstMapRawOutputMB(); ok {
			if cfg.SortMB() >= est*1.05 {
				cfg = cfg.With(mrconf.SortSpillPercent, 0.99)
			} else {
				cfg = cfg.With(mrconf.SortSpillPercent, mrconf.MustLookup(mrconf.SortSpillPercent).Default)
			}
		}
		return mrconf.Repair(cfg)
	}
	// Reduce-side buffer rules.
	cfg = cfg.With(mrconf.MergeInmemThreshold, 0) // merge on memory consumption only
	heap := cfg.ReduceHeapMB()
	if est, ok := t.mon.EstReduceInputMB(); ok && heap > 0 {
		// Size the shuffle buffer to the estimated reduce input, but
		// never so large that the JVM base plus the user code working
		// set cannot fit next to it (that would guarantee an OOM kill).
		wsReserve := t.reduceWorkingSetReserve(safe)
		sbpMax := (heap - mapreduce.JVMBaseMB - wsReserve) / heap
		sbp := metrics.Clamp(est*1.15/heap, 0.2, math.Min(0.9, sbpMax))
		cfg = cfg.With(mrconf.ShuffleInputBufferPct, sbp)
		sbp = cfg.ShuffleBufferPct() // post-quantization
		if sbp*heap >= est {
			// Everything fits: retain through the reduce phase and merge
			// at the full buffer.
			cfg = cfg.With(mrconf.ReduceInputBufferPct, sbp)
			cfg = cfg.With(mrconf.ShuffleMergePct, sbp)
		} else {
			cfg = cfg.With(mrconf.ReduceInputBufferPct, math.Max(0, sbp-0.1))
			cfg = cfg.With(mrconf.ShuffleMergePct, math.Max(0.2, sbp-0.04))
		}
	}
	return mrconf.Repair(cfg)
}

// reduceWorkingSetReserve estimates how much heap the reduce user code
// needs beside the shuffle buffer: the 80th percentile of observed
// working sets, or a conservative prior before any reducer finished.
func (t *Tuner) reduceWorkingSetReserve(safe bool) float64 {
	ws := t.mon.ReduceWorkingSet()
	if ws.N() == 0 {
		return 350 // prior: fits every profile in the benchmark suite
	}
	if safe {
		// Final recommendations run without an adaptive controller, so
		// they must survive the skew tail.
		return math.Max(120, ws.Max()*1.3)
	}
	// Exploration: p95 with margin. Reserving for the lognormal max
	// squeezes the buffers out entirely; the occasional straggler OOM
	// during the test run is handled by the retry path and the cost
	// penalty.
	return math.Max(120, t.redWSP95.value(ws, 95)*1.15)
}

// mapWorkingSetReserve mirrors reduceWorkingSetReserve for the map
// side (heap beside the sort buffer).
func (t *Tuner) mapWorkingSetReserve(safe bool) float64 {
	ws := t.mon.MapWorkingSet()
	if ws.N() == 0 {
		return 120
	}
	if safe {
		return math.Max(60, ws.Max()*1.3)
	}
	return math.Max(60, t.mapWSP95.value(ws, 95)*1.15)
}

// ---------- conservative strategy (§6.1 fast single run) ----------

// conservativeWave is how many fresh reports trigger a rule recompute.
const conservativeWave = 5

func (t *Tuner) conservativeObserve(r mapreduce.TaskReport) {
	if r.Type == mapreduce.MapTask {
		if t.mon.Completed(mapreduce.MapTask)-t.cons.lastMapRecalc >= conservativeWave {
			t.cons.lastMapRecalc = t.mon.Completed(mapreduce.MapTask)
			t.recalcConservativeMap()
		}
		return
	}
	if t.mon.Completed(mapreduce.ReduceTask)-t.cons.lastRedRecalc >= conservativeWave {
		t.cons.lastRedRecalc = t.mon.Completed(mapreduce.ReduceTask)
		t.recalcConservativeReduce()
	}
}

// recalcConservativeMap re-derives the map-side overrides from
// observed statistics: io.sort.mb sized to the map output, container
// memory sized to actual peak usage plus margin, vcores escalated
// while CPU-saturated and still improving.
func (t *Tuner) recalcConservativeMap() {
	est, ok := t.mon.EstMapRawOutputMB()
	if !ok {
		return
	}
	o := t.cons.mapOverrides

	sortMB := mrconf.MustLookup(mrconf.IOSortMB).Quantize(est * 1.1)
	o[mrconf.IOSortMB] = sortMB

	// Estimate the user-code working set from observed peaks: peak
	// resident = (JVMBase + sortMB + ws) / heapFraction under the
	// configuration those tasks ran with.
	wsMB := math.Max(50, t.mapWSP80.value(t.mon.MapWorkingSet(), 80))
	needHeap := mapreduce.JVMBaseMB + sortMB + wsMB
	o[mrconf.MapMemoryMB] = mrconf.MustLookup(mrconf.MapMemoryMB).Quantize(needHeap * 1.15 / mrconf.HeapFraction)

	// CPU rule: full utilization -> one more vcore, while improving.
	t.escalate(&t.cons.mapVcores, &t.cons.mapVcoreDur, &t.cons.mapVcoreStop,
		t.mon.MeanCPUUtil(mapreduce.MapTask) > 0.9, 1, 8,
		t.mon.MeanDuration(mapreduce.MapTask))
	o[mrconf.MapCPUVcores] = float64(t.cons.mapVcores)
}

// recalcConservativeReduce mirrors the reduce-side rules: shuffle
// buffer from the estimated input, container sized to fit, parallel
// copies escalated in steps of 10 while improving.
func (t *Tuner) recalcConservativeReduce() {
	o := t.cons.redOverrides
	est, ok := t.mon.EstReduceInputMB()
	if ok {
		wsMB := math.Max(100, t.redWSP80.value(t.mon.ReduceWorkingSet(), 80))
		needHeap := mapreduce.JVMBaseMB + est*1.15 + wsMB
		o[mrconf.ReduceMemoryMB] = mrconf.MustLookup(mrconf.ReduceMemoryMB).Quantize(needHeap * 1.1 / mrconf.HeapFraction)
		o[mrconf.ShuffleMemoryLimitPct] = 0.5
	}

	t.escalate(&t.cons.redVcores, &t.cons.redVcoreDur, &t.cons.redVcoreStop,
		t.mon.MeanCPUUtil(mapreduce.ReduceTask) > 0.9, 1, 8,
		t.mon.MeanDuration(mapreduce.ReduceTask))
	o[mrconf.ReduceCPUVcores] = float64(t.cons.redVcores)

	// Shuffle concurrency: +10 until task time stops improving (§6.3).
	t.escalate(&t.cons.parCopies, &t.cons.parCopiesDur, &t.cons.parCopiesStop,
		true, 10, 50, t.mon.MeanDuration(mapreduce.ReduceTask))
	o[mrconf.ShuffleParallelCopies] = float64(t.cons.parCopies)

	// io.sort.factor: raise once if reduce-side disk merges happen.
	if !t.cons.sortFactorSet && t.mon.MeanSpillRatio(mapreduce.ReduceTask) > 0.5 {
		t.cons.sortFactorSet = true
		o[mrconf.IOSortFactor] = float64(t.base.SortFactor() + 20)
	}
}

// escalate implements the "increase while the task execution time
// keeps improving" pattern of §6.3.
func (t *Tuner) escalate(level *int, lastDur *float64, stopped *bool, saturated bool, step, max int, meanDur float64) {
	if *stopped || !saturated || meanDur <= 0 {
		return
	}
	if *lastDur > 0 && meanDur > *lastDur*0.97 {
		// Less than 3% improvement since the last escalation: stop.
		*stopped = true
		return
	}
	if *level+step <= max {
		*lastDur = meanDur
		*level += step
	} else {
		*stopped = true
	}
}

var _ mapreduce.Controller = (*Tuner)(nil)
