package core

import (
	"repro/internal/cluster"
	"repro/internal/yarn"
)

// Hot-spot avoidance (paper §1: "MRONLINE considers dynamic cluster
// utilization information to help MapReduce applications avoid hot
// spots"). The monitor's node-level utilization feed becomes a
// placement veto: containers prefer nodes whose disk and CPU are not
// saturated by other tenants or background services.

// HotSpotThresholds configure when a node counts as hot.
type HotSpotThresholds struct {
	// CPULoad and DiskLoad are instantaneous-load fractions above
	// which a node is avoided.
	CPULoad  float64
	DiskLoad float64
}

// DefaultHotSpotThresholds avoid nodes with ≥85% busy disk or CPU.
func DefaultHotSpotThresholds() HotSpotThresholds {
	return HotSpotThresholds{CPULoad: 0.85, DiskLoad: 0.85}
}

// HotSpotFilter returns a yarn node filter implementing the policy.
func HotSpotFilter(th HotSpotThresholds) func(*cluster.Node) bool {
	return func(n *cluster.Node) bool {
		return n.CPULoad() < th.CPULoad && n.DiskLoad() < th.DiskLoad
	}
}

// EnableHotSpotAvoidance installs the default policy on a resource
// manager. Returns the filter so tests can probe it.
func EnableHotSpotAvoidance(rm *yarn.ResourceManager) func(*cluster.Node) bool {
	f := HotSpotFilter(DefaultHotSpotThresholds())
	rm.NodeFilter = f
	return f
}
