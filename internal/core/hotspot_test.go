package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

func TestHotSpotFilterThresholds(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	f := HotSpotFilter(DefaultHotSpotThresholds())
	n := c.Nodes[0]
	if !f(n) {
		t.Fatal("idle node rejected")
	}
	// Saturate the disk: the node becomes hot.
	for k := 0; k < 4; k++ {
		n.InjectDiskLoad(30, 100, nil)
	}
	eng.RunUntil(0.001)
	if f(n) {
		t.Fatal("disk-saturated node accepted")
	}
	// A different node with only CPU saturation is also hot.
	m := c.Nodes[1]
	for k := 0; k < 10; k++ {
		m.InjectCPULoad(1, 100, nil)
	}
	eng.RunUntil(0.002)
	if f(m) {
		t.Fatal("CPU-saturated node accepted")
	}
}

func TestEnableHotSpotAvoidanceInstallsFilter(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
	f := EnableHotSpotAvoidance(rm)
	if rm.NodeFilter == nil {
		t.Fatal("filter not installed")
	}
	if !f(c.Nodes[0]) {
		t.Fatal("installed filter rejects an idle node")
	}
}

func TestHotSpotPlacementSkipsHotNodes(t *testing.T) {
	// Saturate the first node; all containers must land elsewhere.
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
	rm.SchedulingDelay = 0
	EnableHotSpotAvoidance(rm)
	hot := c.Nodes[0]
	for k := 0; k < 10; k++ {
		hot.InjectDiskLoad(30, 1000, nil)
	}
	app := rm.Submit("job", 1)
	placed := map[string]int{}
	for i := 0; i < 30; i++ {
		app.Request(&yarn.Request{
			Resource:   yarn.Resource{MemMB: 1024, VCores: 1},
			OnAllocate: func(cont *yarn.Container) { placed[cont.Node.Name]++ },
		})
	}
	eng.RunUntil(5)
	if placed[hot.Name] != 0 {
		t.Fatalf("%d containers placed on the hot node", placed[hot.Name])
	}
	total := 0
	for _, n := range placed {
		total += n
	}
	if total != 30 {
		t.Fatalf("placed %d of 30 containers", total)
	}
}

func TestHotSpotFallbackWhenEverythingHot(t *testing.T) {
	// All nodes hot: after the fallback delay, placement proceeds
	// anyway (liveness over placement quality).
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
	rm.SchedulingDelay = 0
	rm.HotSpotFallbackDelay = 10
	EnableHotSpotAvoidance(rm)
	for _, n := range c.Nodes {
		for k := 0; k < 10; k++ {
			n.InjectDiskLoad(30, 1000, nil)
		}
	}
	app := rm.Submit("job", 1)
	var at float64 = -1
	app.Request(&yarn.Request{
		Resource:   yarn.Resource{MemMB: 1024, VCores: 1},
		OnAllocate: func(*yarn.Container) { at = eng.Now() },
	})
	eng.RunUntil(60)
	if at < 0 {
		t.Fatal("request starved on an all-hot cluster")
	}
	if at < 10 {
		t.Fatalf("fallback placed at %v, before the %v delay", at, rm.HotSpotFallbackDelay)
	}
}

func TestMonitorAccessors(t *testing.T) {
	m := NewMonitor(10, 2)
	m.Observe(mapReport(0, mrconf.Default(), 100, 150, 10, 0.4, 0.6))
	if m.MeanMemUtil(mapreduce.MapTask) != 0.4 {
		t.Fatalf("MeanMemUtil = %v", m.MeanMemUtil(mapreduce.MapTask))
	}
	if m.MeanCPUUtil(mapreduce.MapTask) != 0.6 {
		t.Fatalf("MeanCPUUtil = %v", m.MeanCPUUtil(mapreduce.MapTask))
	}
	if m.MeanSpillRatio(mapreduce.MapTask) != 1 {
		t.Fatalf("MeanSpillRatio = %v", m.MeanSpillRatio(mapreduce.MapTask))
	}
	if m.MeanDuration(mapreduce.MapTask) != 10 {
		t.Fatalf("MeanDuration = %v", m.MeanDuration(mapreduce.MapTask))
	}
	if m.MeanMemUtil(mapreduce.ReduceTask) != 0 {
		t.Fatal("reduce accessors should be zero with no reports")
	}
	if len(m.MapReports()) != 1 || len(m.ReduceReports()) != 0 {
		t.Fatal("report accessors wrong")
	}
}

func TestTunerAccessors(t *testing.T) {
	tn := NewTuner("j", 10, 2, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 1})
	if tn.Monitor() == nil || tn.Configurator() == nil {
		t.Fatal("nil accessors")
	}
	if got := tn.Backend(); got != "hill" {
		t.Fatalf("default backend = %q, want hill", got)
	}
}

func TestBlackBoxSearchesAllParams(t *testing.T) {
	dims := searchDims(mrconf.ScopeMap, true)
	if len(dims) != 5 {
		t.Fatalf("black-box map dims = %d, want all 5 map-scope params", len(dims))
	}
	dims = searchDims(mrconf.ScopeReduce, true)
	if len(dims) != 8 {
		t.Fatalf("black-box reduce dims = %d, want all 8", len(dims))
	}
}

func TestBlackBoxTunerRunsJob(t *testing.T) {
	b := workload.Terasort(20, 0, 0)
	tn := NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		TunerOptions{Strategy: Aggressive, Seed: 5, BlackBox: true})
	res := runJob(t, b, mrconf.Default(), tn)
	if res.Failed {
		t.Fatalf("black-box test run failed: %v", res.Err)
	}
	if err := mrconf.Validate(tn.BestConfig()); err != nil {
		t.Fatalf("black-box best config invalid: %v", err)
	}
}
