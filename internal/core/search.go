package core

import "repro/internal/tuner"

// SearchParams re-exports the Algorithm 1 knobs. The search itself —
// the gray-box smart hill climbing plus the alternative SPSA and TPE
// backends — lives in internal/tuner behind the Optimizer interface;
// core.Tuner only drives whichever backend TunerOptions.Backend names.
type SearchParams = tuner.SearchParams

// DefaultSearchParams returns the values used in the paper's tests.
func DefaultSearchParams() SearchParams {
	return tuner.DefaultSearchParams()
}
