package core
