package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/mrconf"
)

// KnowledgeBase stores tuned configurations across application runs
// (the "tuning knowledge base" of Fig 3), keyed by benchmark identity
// and input scale. An expedited test run deposits its best
// configuration here; later production runs look it up. Alongside the
// category-2/3 configuration it can hold category-1 recommendations
// (reducer count, slowstart) produced by what-if analysis.
type KnowledgeBase struct {
	entries map[string]mrconf.Config
	statics map[string]StaticParams
}

// StaticParams are category-1 recommendations that must be applied at
// submission time (paper §2.2: they cannot change once a job starts).
type StaticParams struct {
	NumReduces int     `json:"num_reduces"`
	Slowstart  float64 `json:"slowstart"`
}

// NewKnowledgeBase returns an empty knowledge base.
func NewKnowledgeBase() *KnowledgeBase {
	return &KnowledgeBase{
		entries: make(map[string]mrconf.Config),
		statics: make(map[string]StaticParams),
	}
}

// Key builds the lookup key: the optimal configuration depends on the
// application, the data scale, and the cluster (paper §1), so all
// three identify an entry. Sizes are bucketed by power of two so
// near-identical inputs share a tuning.
func Key(app string, inputSizeMB float64, clusterName string) string {
	bucket := 0
	for s := 1.0; s < inputSizeMB; s *= 2 {
		bucket++
	}
	return fmt.Sprintf("%s|%s|2^%dMB", app, clusterName, bucket)
}

// Put stores a configuration.
func (kb *KnowledgeBase) Put(key string, cfg mrconf.Config) { kb.entries[key] = cfg }

// Get retrieves a configuration.
func (kb *KnowledgeBase) Get(key string) (mrconf.Config, bool) {
	cfg, ok := kb.entries[key]
	return cfg, ok
}

// Keys lists stored keys in sorted order.
func (kb *KnowledgeBase) Keys() []string {
	out := make([]string, 0, len(kb.entries))
	for k := range kb.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored configuration entries.
func (kb *KnowledgeBase) Len() int { return len(kb.entries) }

// PutStatic stores category-1 recommendations for a key.
func (kb *KnowledgeBase) PutStatic(key string, p StaticParams) { kb.statics[key] = p }

// GetStatic retrieves category-1 recommendations.
func (kb *KnowledgeBase) GetStatic(key string) (StaticParams, bool) {
	p, ok := kb.statics[key]
	return p, ok
}

// kbDocument is the on-disk format.
type kbDocument struct {
	Configs map[string]mrconf.Config `json:"configs"`
	Statics map[string]StaticParams  `json:"statics,omitempty"`
}

// Save writes the knowledge base as JSON.
func (kb *KnowledgeBase) Save(path string) error {
	doc := kbDocument{Configs: kb.entries, Statics: kb.statics}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal knowledge base: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: save knowledge base: %w", err)
	}
	return nil
}

// Load reads a knowledge base written by Save. The legacy flat format
// (a bare map of key → config) is still accepted.
func Load(path string) (*KnowledgeBase, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load knowledge base: %w", err)
	}
	kb := NewKnowledgeBase()
	var doc kbDocument
	if err := json.Unmarshal(data, &doc); err == nil && doc.Configs != nil {
		for k, v := range doc.Configs {
			kb.entries[k] = v
		}
		for k, v := range doc.Statics {
			kb.statics[k] = v
		}
		return kb, nil
	}
	var flat map[string]mrconf.Config
	if err := json.Unmarshal(data, &flat); err != nil {
		return nil, fmt.Errorf("core: parse knowledge base: %w", err)
	}
	for k, v := range flat {
		kb.entries[k] = v
	}
	return kb, nil
}
