package core

import (
	"fmt"
	"sort"

	"repro/internal/mrconf"
)

// DynamicConfigurator implements the paper's Table 1 API: querying the
// configurable parameter set and setting job-wide or per-task
// parameter values. The tuner writes new configurations through it;
// the application master reads the effective configuration for each
// task as it launches (the "slave configurator picks up the changed
// configuration files" path of §4).
type DynamicConfigurator struct {
	jobs map[string]*jobConfigs
}

type jobConfigs struct {
	job   map[string]float64
	tasks map[string]map[string]float64
}

// NewDynamicConfigurator returns an empty configurator.
func NewDynamicConfigurator() *DynamicConfigurator {
	return &DynamicConfigurator{jobs: make(map[string]*jobConfigs)}
}

func (d *DynamicConfigurator) jobEntry(jobID string) *jobConfigs {
	e, ok := d.jobs[jobID]
	if !ok {
		e = &jobConfigs{job: make(map[string]float64), tasks: make(map[string]map[string]float64)}
		d.jobs[jobID] = e
	}
	return e
}

// GetConfigurableJobParameters returns the parameters that can still
// be changed for the job's current and future tasks (categories 2 and
// 3 of §2.2), sorted for stable output.
func (d *DynamicConfigurator) GetConfigurableJobParameters(jobID string) []string {
	var names []string
	for _, p := range mrconf.Params() {
		if p.Category == mrconf.CategoryTaskLaunch || p.Category == mrconf.CategoryLive {
			names = append(names, p.Name)
		}
	}
	sort.Strings(names)
	return names
}

// GetConfigurableTaskParameters returns the parameters applicable to
// one task: its scope's parameters (a map task is not affected by
// reduce buffers).
func (d *DynamicConfigurator) GetConfigurableTaskParameters(jobID, taskID string) []string {
	scope := mrconf.ScopeMap
	if len(taskID) > 0 && taskID[0] == 'r' {
		scope = mrconf.ScopeReduce
	}
	var names []string
	for _, p := range mrconf.ParamsByScope(scope) {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}

// SetJobParameters sets job-wide parameter values, returning the
// number of parameters applied (unknown names are rejected wholesale,
// mirroring the int status code of the paper's API).
func (d *DynamicConfigurator) SetJobParameters(jobID string, kv map[string]float64) int {
	for name := range kv {
		if _, ok := mrconf.Lookup(name); !ok {
			return -1
		}
	}
	e := d.jobEntry(jobID)
	for name, v := range kv {
		e.job[name] = v
	}
	return len(kv)
}

// SetTaskParameters sets parameters for one task.
func (d *DynamicConfigurator) SetTaskParameters(jobID, taskID string, kv map[string]float64) int {
	for name := range kv {
		if _, ok := mrconf.Lookup(name); !ok {
			return -1
		}
	}
	e := d.jobEntry(jobID)
	tk, ok := e.tasks[taskID]
	if !ok {
		tk = make(map[string]float64)
		e.tasks[taskID] = tk
	}
	for name, v := range kv {
		tk[name] = v
	}
	return len(kv)
}

// SetAllTaskParameters sets parameters for every task of the job
// (clearing conflicting per-task overrides so the job-wide value
// wins, as the paper's setTaskParameters(jid, kv) overload does).
func (d *DynamicConfigurator) SetAllTaskParameters(jobID string, kv map[string]float64) int {
	n := d.SetJobParameters(jobID, kv)
	if n < 0 {
		return n
	}
	e := d.jobEntry(jobID)
	for _, tk := range e.tasks {
		for name := range kv {
			delete(tk, name)
		}
	}
	return n
}

// ClearTask removes per-task overrides (after the task has launched
// with them).
func (d *DynamicConfigurator) ClearTask(jobID, taskID string) {
	if e, ok := d.jobs[jobID]; ok {
		delete(e.tasks, taskID)
	}
}

// ConfigFor resolves the effective configuration for a task: base,
// then job-wide overrides, then per-task overrides.
func (d *DynamicConfigurator) ConfigFor(jobID, taskID string, base mrconf.Config) mrconf.Config {
	e, ok := d.jobs[jobID]
	if !ok {
		return base
	}
	cfg := base
	for name, v := range e.job {
		cfg = cfg.With(name, v)
	}
	if tk, ok := e.tasks[taskID]; ok {
		for name, v := range tk {
			cfg = cfg.With(name, v)
		}
	}
	return cfg
}

// TaskID renders the canonical task identifier used by the
// configurator ("m-00042" / "r-00007").
func TaskID(isMap bool, id int) string {
	if isMap {
		return fmt.Sprintf("m-%05d", id)
	}
	return fmt.Sprintf("r-%05d", id)
}
