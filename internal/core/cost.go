// Package core implements MRONLINE: the online tuner (monitor, tuner,
// dynamic configurator) of the paper, built on the task-level dynamic
// configuration framework (per-task configs and variable-sized
// containers in internal/yarn and internal/mapreduce), the gray-box
// smart hill-climbing search (§5) over the mrconf parameter space, and
// the MapReduce-specific tuning rules (§6).
package core

import (
	"repro/internal/mapreduce"
)

// OOMPenalty is added to the cost of an attempt whose container was
// killed for exceeding its memory, pushing the search away from
// infeasible configurations.
const OOMPenalty = 10.0

// CostWeights scale the four terms of Equation 1, in order: memory
// under-utilization, CPU under-utilization, spill ratio, relative
// time. UnitWeights is the paper's formula; zeroing a term is the
// ablation knob.
type CostWeights [4]float64

// UnitWeights is Equation 1 as published.
var UnitWeights = CostWeights{1, 1, 1, 1}

// Cost is the paper's Equation 1:
//
//	y = (1-umem) + (1-ucpu) + spills/outputRecords + t/tmax
//
// lower is better: fully used memory and CPU, no redundant spills, and
// a short run relative to the slowest task of the same type.
func Cost(r mapreduce.TaskReport, tmax float64) float64 {
	return WeightedCost(r, tmax, UnitWeights)
}

// WeightedCost is Cost with per-term weights (for ablations).
func WeightedCost(r mapreduce.TaskReport, tmax float64, w CostWeights) float64 {
	spillRatio := 0.0
	if r.OutputRecords > 0 {
		spillRatio = r.SpilledRecords / r.OutputRecords
	}
	trel := 0.0
	if tmax > 0 {
		trel = r.Duration() / tmax
	}
	y := w[0]*(1-r.MemUtil) + w[1]*(1-r.CPUUtil) + w[2]*spillRatio + w[3]*trel
	if r.OOM || r.Failed {
		// Failed attempts get the same penalty: their partial
		// measurements must never look like a good configuration.
		y += OOMPenalty
	}
	return y
}
