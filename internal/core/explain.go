package core

import (
	"fmt"
	"strings"

	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/tuner"
)

// Explain renders what the tuner learned and why its recommendation
// looks the way it does — the human-facing half of the paper's
// "performance advisor" (Figs 1 and 3). It is purely observational:
// calling it does not change tuner state.
func (t *Tuner) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MRONLINE %s tuning for %q\n", t.Strategy, t.jobName)

	mon := t.mon
	fmt.Fprintf(&b, "observed: %d map / %d reduce task completions\n",
		mon.Completed(mapreduce.MapTask), mon.Completed(mapreduce.ReduceTask))

	if raw, ok := mon.EstMapRawOutputMB(); ok {
		comb, _ := mon.EstMapOutputMB()
		fmt.Fprintf(&b, "map output:   %.0f MB/task raw, %.0f MB/task after combiner\n", raw, comb)
		fmt.Fprintf(&b, "  -> io.sort.mb must hold ~%.0f MB for a single spill\n", raw*1.05)
	}
	if in, ok := mon.EstReduceInputMB(); ok {
		fmt.Fprintf(&b, "reduce input: %.0f MB/task estimated\n", in)
		fmt.Fprintf(&b, "  -> shuffle buffer sized to retain it in memory when the heap allows\n")
	}
	if n := mon.Completed(mapreduce.MapTask); n > 0 {
		fmt.Fprintf(&b, "map utilization:    mem %.0f%%, cpu %.0f%% (spill ratio %.2fx)\n",
			100*mon.MeanMemUtil(mapreduce.MapTask), 100*mon.MeanCPUUtil(mapreduce.MapTask),
			mon.MeanSpillRatio(mapreduce.MapTask))
	}
	if n := mon.Completed(mapreduce.ReduceTask); n > 0 {
		fmt.Fprintf(&b, "reduce utilization: mem %.0f%%, cpu %.0f%% (spill ratio %.2fx)\n",
			100*mon.MeanMemUtil(mapreduce.ReduceTask), 100*mon.MeanCPUUtil(mapreduce.ReduceTask),
			mon.MeanSpillRatio(mapreduce.ReduceTask))
	}

	if t.Strategy == Aggressive {
		fmt.Fprintf(&b, "search: map scope %s (%d waves), reduce scope %s (%d waves)\n",
			searchStateString(t.mapS.opt), t.mapS.waves,
			searchStateString(t.redS.opt), t.redS.waves)
		scopes := []struct {
			name   string
			search tuner.Optimizer
		}{{"map", t.mapS.opt}, {"reduce", t.redS.opt}}
		for _, sc := range scopes {
			if _, cost, ok := sc.search.Best(); ok {
				fmt.Fprintf(&b, "  best %s-scope point: Eq.1 cost %.3f\n", sc.name, cost)
			}
		}
	}

	best := t.BestConfig()
	fmt.Fprintf(&b, "recommended configuration:\n")
	if best.NumOverrides() == 0 {
		fmt.Fprintf(&b, "  (defaults — not enough observations to improve on them)\n")
	}
	best.EachOverride(func(p mrconf.Param, v float64) {
		fmt.Fprintf(&b, "  %-52s %g (default %g)\n", p.Name, v, p.Default)
	})
	return b.String()
}

func searchStateString(opt tuner.Optimizer) string {
	if opt == nil {
		return "off"
	}
	if opt.Done() {
		return "converged"
	}
	return fmt.Sprintf("in %s phase", opt.State())
}
