package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// runJob executes one job on a fresh paper cluster.
func runJob(t *testing.T, b workload.Benchmark, cfg mrconf.Config, ctrl mapreduce.Controller) mapreduce.Result {
	t.Helper()
	eng := sim.NewEngine()
	eng.MaxEvents = 50_000_000
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
	fs := hdfs.New(c, sim.NewSource(42).Stream("hdfs"))
	var res mapreduce.Result
	got := false
	mapreduce.Submit(rm, fs, mapreduce.Spec{Benchmark: b, BaseConfig: cfg, Controller: ctrl},
		func(r mapreduce.Result) { res = r; got = true })
	eng.Run()
	if !got {
		t.Fatalf("job did not complete")
	}
	return res
}

func TestProbeTunerEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	b := workload.Terasort(100, 752, 200)

	def := runJob(t, b, mrconf.Default(), nil)
	t.Logf("default:      dur=%6.0fs spills=%.2e\n", def.Duration, def.Counters.SpilledRecords())

	// Expedited: aggressive test run, then re-run with the best config.
	tuner := NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 7})
	test := runJob(t, b, mrconf.Default(), tuner)
	t.Logf("test run:     dur=%6.0fs searchDone=%v mapWaves=%d redWaves=%d failed=%v\n",
		test.Duration, tuner.SearchDone(), tuner.mapS.waves, tuner.redS.waves, test.Failed)
	best := tuner.BestConfig()
	t.Logf("best config:  %s\n", best)
	tuned := runJob(t, b, best, nil)
	t.Logf("tuned run:    dur=%6.0fs spills=%.2e (%.0f%% vs default)\n",
		tuned.Duration, tuned.Counters.SpilledRecords(), 100*(def.Duration-tuned.Duration)/def.Duration)

	// Fast single run: conservative tuning inline.
	cons := NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(), TunerOptions{Strategy: Conservative, Seed: 7})
	fast := runJob(t, b, mrconf.Default(), cons)
	t.Logf("conservative: dur=%6.0fs spills=%.2e (%.0f%% vs default) failed=%v\n",
		fast.Duration, fast.Counters.SpilledRecords(), 100*(def.Duration-fast.Duration)/def.Duration, fast.Failed)
	t.Logf("cons util: mapMem=%.2f redMem=%.2f mapCPU=%.2f\n", fast.MapMemUtil, fast.ReduceMemUtil, fast.MapCPUUtil)
}
