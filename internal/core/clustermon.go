package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// ClusterMonitor implements the per-node slave monitors of the paper's
// architecture (Fig 2): it periodically samples every node's CPU load,
// disk load, and container-memory allocation and keeps a bounded
// history per node. The centralized tuner reads it for hot-spot
// detection and for the cluster-level statistics the monitor "sends to
// the centralized monitor".
type ClusterMonitor struct {
	Interval float64
	// Capacity bounds the per-node history length (ring buffer).
	Capacity int

	eng     *sim.Engine
	c       *cluster.Cluster
	samples map[string][]NodeSample
	ticker  *sim.Ticker
}

// NodeSample is one observation of one node.
type NodeSample struct {
	Time        float64
	CPULoad     float64
	DiskLoad    float64
	MemUsedFrac float64
}

// StartClusterMonitor begins sampling every interval seconds. The
// monitor keeps the simulation alive while running; call Stop when the
// observed workload completes, or the event queue never drains.
func StartClusterMonitor(eng *sim.Engine, c *cluster.Cluster, interval float64) *ClusterMonitor {
	if interval <= 0 {
		interval = 5
	}
	m := &ClusterMonitor{
		Interval: interval,
		Capacity: 720,
		eng:      eng,
		c:        c,
		samples:  make(map[string][]NodeSample, len(c.Nodes)),
	}
	// The monitor samples every node on every rack, so it carries
	// system-shard affinity.
	m.ticker = c.Sys().Tick(interval, func() bool {
		m.sample()
		return true
	})
	return m
}

func (m *ClusterMonitor) sample() {
	now := m.eng.Now()
	for _, n := range m.c.Nodes {
		s := NodeSample{
			Time:        now,
			CPULoad:     n.CPULoad(),
			DiskLoad:    n.DiskLoad(),
			MemUsedFrac: n.Mem.Used() / n.Mem.Capacity,
		}
		h := append(m.samples[n.Name], s)
		if len(h) > m.Capacity {
			h = h[len(h)-m.Capacity:]
		}
		m.samples[n.Name] = h
	}
}

// Stop halts sampling (idempotent).
func (m *ClusterMonitor) Stop() { m.ticker.Stop() }

// Latest returns the most recent sample for a node.
func (m *ClusterMonitor) Latest(node string) (NodeSample, bool) {
	h := m.samples[node]
	if len(h) == 0 {
		return NodeSample{}, false
	}
	return h[len(h)-1], true
}

// History returns a copy of the retained samples for a node.
func (m *ClusterMonitor) History(node string) []NodeSample {
	h := m.samples[node]
	out := make([]NodeSample, len(h))
	copy(out, h)
	return out
}

// WindowAverage averages a node's samples over the trailing window
// seconds; ok is false when no samples fall in the window.
func (m *ClusterMonitor) WindowAverage(node string, window float64) (NodeSample, bool) {
	h := m.samples[node]
	if len(h) == 0 {
		return NodeSample{}, false
	}
	cutoff := h[len(h)-1].Time - window
	var avg NodeSample
	n := 0
	for i := len(h) - 1; i >= 0 && h[i].Time >= cutoff; i-- {
		avg.CPULoad += h[i].CPULoad
		avg.DiskLoad += h[i].DiskLoad
		avg.MemUsedFrac += h[i].MemUsedFrac
		avg.Time = h[i].Time
		n++
	}
	if n == 0 {
		return NodeSample{}, false
	}
	avg.CPULoad /= float64(n)
	avg.DiskLoad /= float64(n)
	avg.MemUsedFrac /= float64(n)
	return avg, true
}

// HotNodes lists nodes whose trailing-window load exceeds the
// thresholds — the smoothed variant of the instantaneous HotSpotFilter,
// robust against sampling a momentary spike.
func (m *ClusterMonitor) HotNodes(th HotSpotThresholds, window float64) []*cluster.Node {
	var out []*cluster.Node
	for _, n := range m.c.Nodes {
		if avg, ok := m.WindowAverage(n.Name, window); ok {
			if avg.CPULoad >= th.CPULoad || avg.DiskLoad >= th.DiskLoad {
				out = append(out, n)
			}
		}
	}
	return out
}

// SmoothedHotSpotFilter returns a yarn node filter backed by the
// monitor's trailing-window averages instead of instantaneous loads.
func (m *ClusterMonitor) SmoothedHotSpotFilter(th HotSpotThresholds, window float64) func(*cluster.Node) bool {
	return func(n *cluster.Node) bool {
		avg, ok := m.WindowAverage(n.Name, window)
		if !ok {
			return true // no data yet: do not veto
		}
		return avg.CPULoad < th.CPULoad && avg.DiskLoad < th.DiskLoad
	}
}

// Summary renders a one-line load overview, for CLI diagnostics.
func (m *ClusterMonitor) Summary() string {
	var cpu, disk, mem float64
	n := 0
	for _, node := range m.c.Nodes {
		if s, ok := m.Latest(node.Name); ok {
			cpu += s.CPULoad
			disk += s.DiskLoad
			mem += s.MemUsedFrac
			n++
		}
	}
	if n == 0 {
		return "cluster-monitor: no samples"
	}
	f := float64(n)
	return fmt.Sprintf("cluster avg load: cpu %.0f%%, disk %.0f%%, mem %.0f%% (%d nodes)",
		100*cpu/f, 100*disk/f, 100*mem/f, n)
}
