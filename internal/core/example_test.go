package core_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// The one-call workflow: attach a conservative tuner to a job and it
// gets faster with zero test runs.
func ExampleTuner() {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
	fs := hdfs.New(c, sim.NewSource(42).Stream("hdfs"))

	b := workload.Terasort(20, 0, 0)
	tuner := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		core.TunerOptions{Strategy: core.Conservative, Seed: 42})

	var res mapreduce.Result
	mapreduce.Submit(rm, fs, mapreduce.Spec{
		Benchmark:  b,
		BaseConfig: mrconf.Default(),
		Controller: tuner,
	}, func(r mapreduce.Result) { res = r })
	eng.Run()

	fmt.Println("failed:", res.Failed)
	fmt.Println("tuned io.sort.mb:", tuner.BestConfig().SortMB())
	// Output:
	// failed: false
	// tuned io.sort.mb: 150
}

// The Table 1 API: other tuning algorithms can drive per-task
// configurations through the dynamic configurator.
func ExampleDynamicConfigurator() {
	dc := core.NewDynamicConfigurator()
	dc.SetJobParameters("job-7", map[string]float64{mrconf.IOSortMB: 400})
	dc.SetTaskParameters("job-7", core.TaskID(true, 3), map[string]float64{mrconf.MapCPUVcores: 2})

	wide := dc.ConfigFor("job-7", core.TaskID(true, 0), mrconf.Default())
	task3 := dc.ConfigFor("job-7", core.TaskID(true, 3), mrconf.Default())
	fmt.Println(wide.SortMB(), wide.MapVcores())
	fmt.Println(task3.SortMB(), task3.MapVcores())
	// Output:
	// 400 1
	// 400 2
}

// Service is the deployment facade: one aggressive test run stores a
// tuned configuration in the knowledge base; repeat submissions start
// from it automatically.
func ExampleService() {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, yarn.FairScheduler{})
	fs := hdfs.New(c, sim.NewSource(7).Stream("hdfs"))

	svc := core.NewService(rm, fs, core.ServiceOptions{
		Strategy: core.Aggressive, ClusterName: "prod", Seed: 7,
	})
	b := workload.Terasort(20, 0, 0)

	var testRun, tunedRun float64
	svc.Submit(mapreduce.Spec{Name: "run1", Benchmark: b, BaseConfig: mrconf.Default()},
		func(r mapreduce.Result) { testRun = r.Duration })
	eng.Run()
	svc.Submit(mapreduce.Spec{Name: "run2", Benchmark: b, BaseConfig: mrconf.Default()},
		func(r mapreduce.Result) { tunedRun = r.Duration })
	eng.Run()

	fmt.Println("knowledge base entries:", svc.KnowledgeBase().Len())
	fmt.Println("second run faster:", tunedRun < testRun)
	// Output:
	// knowledge base entries: 1
	// second run faster: true
}
