package core

import (
	"math"
	"testing"

	"repro/internal/mrconf"
)

// The search algorithm tests moved to internal/tuner with the search
// itself; what stays here is the Eq. 1 cost model the tuner feeds the
// optimizer backends.

func TestCostEquation(t *testing.T) {
	r := reportFor(0.5, 0.25, 200, 100, 30, false)
	// y = (1-0.5) + (1-0.25) + 200/100 + 30/60 = 0.5+0.75+2+0.5 = 3.75
	if got := Cost(r, 60); math.Abs(got-3.75) > 1e-9 {
		t.Fatalf("Cost = %v, want 3.75", got)
	}
}

func TestCostOOMPenalty(t *testing.T) {
	ok := Cost(reportFor(0.5, 0.5, 100, 100, 10, false), 10)
	oom := Cost(reportFor(0.5, 0.5, 100, 100, 10, true), 10)
	if oom-ok != OOMPenalty {
		t.Fatalf("OOM penalty = %v, want %v", oom-ok, OOMPenalty)
	}
}

func TestCostZeroGuards(t *testing.T) {
	r := reportFor(1, 1, 0, 0, 10, false)
	if got := Cost(r, 0); got != 0 {
		t.Fatalf("Cost with zero outputs and tmax = %v, want 0", got)
	}
}

func TestWeightedCostTerms(t *testing.T) {
	r := reportFor(0.5, 0.25, 200, 100, 30, false)
	// Terms: mem 0.5, cpu 0.75, spill 2.0, time 0.5 (tmax 60).
	cases := []struct {
		w    CostWeights
		want float64
	}{
		{UnitWeights, 3.75},
		{CostWeights{0, 1, 1, 1}, 3.25},
		{CostWeights{1, 0, 1, 1}, 3.00},
		{CostWeights{1, 1, 0, 1}, 1.75},
		{CostWeights{1, 1, 1, 0}, 3.25},
		{CostWeights{2, 2, 2, 2}, 7.50},
	}
	for _, c := range cases {
		if got := WeightedCost(r, 60, c.w); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("weights %v: cost = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestZeroCostWeightsDefaultToUnit(t *testing.T) {
	tn := NewTuner("j", 10, 2, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 1})
	if tn.costW != UnitWeights {
		t.Fatalf("zero-value weights = %v, want unit", tn.costW)
	}
}

func TestUnknownBackendFailsFast(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewTuner with unknown backend did not panic")
		}
	}()
	NewTuner("j", 10, 2, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 1, Backend: "nope"})
}
