package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mrconf"
)

func TestConfiguratorJobParameters(t *testing.T) {
	dc := NewDynamicConfigurator()
	names := dc.GetConfigurableJobParameters("job1")
	// All 13 Table-2 parameters are category 2 or 3, hence tunable.
	if len(names) != 13 {
		t.Fatalf("configurable job parameters = %d, want 13", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("parameter names not sorted")
		}
	}
}

func TestConfiguratorTaskParametersByScope(t *testing.T) {
	dc := NewDynamicConfigurator()
	m := dc.GetConfigurableTaskParameters("job1", TaskID(true, 0))
	r := dc.GetConfigurableTaskParameters("job1", TaskID(false, 0))
	if len(m) != 5 {
		t.Fatalf("map task parameters = %d, want 5", len(m))
	}
	if len(r) != 8 {
		t.Fatalf("reduce task parameters = %d, want 8", len(r))
	}
}

func TestSetJobParameters(t *testing.T) {
	dc := NewDynamicConfigurator()
	n := dc.SetJobParameters("job1", map[string]float64{mrconf.IOSortMB: 300})
	if n != 1 {
		t.Fatalf("SetJobParameters = %d, want 1", n)
	}
	cfg := dc.ConfigFor("job1", TaskID(true, 0), mrconf.Default())
	if cfg.SortMB() != 300 {
		t.Fatalf("job-wide override not applied: %v", cfg.SortMB())
	}
	// Unknown names are rejected wholesale.
	if n := dc.SetJobParameters("job1", map[string]float64{"bad.key": 1}); n != -1 {
		t.Fatalf("unknown key accepted: %d", n)
	}
}

func TestPerTaskOverridesWinOverJob(t *testing.T) {
	dc := NewDynamicConfigurator()
	dc.SetJobParameters("job1", map[string]float64{mrconf.IOSortMB: 300})
	dc.SetTaskParameters("job1", TaskID(true, 7), map[string]float64{mrconf.IOSortMB: 500})
	if got := dc.ConfigFor("job1", TaskID(true, 7), mrconf.Default()).SortMB(); got != 500 {
		t.Fatalf("task override lost: %v", got)
	}
	if got := dc.ConfigFor("job1", TaskID(true, 8), mrconf.Default()).SortMB(); got != 300 {
		t.Fatalf("other task affected: %v", got)
	}
}

func TestSetAllTaskParametersClearsPerTask(t *testing.T) {
	dc := NewDynamicConfigurator()
	dc.SetTaskParameters("job1", TaskID(true, 7), map[string]float64{mrconf.IOSortMB: 500})
	dc.SetAllTaskParameters("job1", map[string]float64{mrconf.IOSortMB: 200})
	if got := dc.ConfigFor("job1", TaskID(true, 7), mrconf.Default()).SortMB(); got != 200 {
		t.Fatalf("SetAllTaskParameters did not override per-task value: %v", got)
	}
}

func TestClearTask(t *testing.T) {
	dc := NewDynamicConfigurator()
	dc.SetTaskParameters("job1", TaskID(true, 7), map[string]float64{mrconf.IOSortMB: 500})
	dc.ClearTask("job1", TaskID(true, 7))
	if got := dc.ConfigFor("job1", TaskID(true, 7), mrconf.Default()).SortMB(); got != 100 {
		t.Fatalf("ClearTask left override: %v", got)
	}
}

func TestConfigForUnknownJobIsBase(t *testing.T) {
	dc := NewDynamicConfigurator()
	base := mrconf.Default().With(mrconf.MapCPUVcores, 2)
	if got := dc.ConfigFor("nope", TaskID(true, 0), base); !got.Equal(base) {
		t.Fatal("unknown job should return base config")
	}
}

func TestTaskIDFormat(t *testing.T) {
	if TaskID(true, 42) != "m-00042" {
		t.Fatalf("map task id = %s", TaskID(true, 42))
	}
	if TaskID(false, 7) != "r-00007" {
		t.Fatalf("reduce task id = %s", TaskID(false, 7))
	}
}

func TestKnowledgeBaseRoundTrip(t *testing.T) {
	kb := NewKnowledgeBase()
	cfg := mrconf.Default().With(mrconf.IOSortMB, 400).With(mrconf.MapCPUVcores, 2)
	key := Key("terasort", 100*1024, "paper-19")
	kb.Put(key, cfg)
	if kb.Len() != 1 {
		t.Fatalf("Len = %d", kb.Len())
	}
	got, ok := kb.Get(key)
	if !ok || !got.Equal(cfg) {
		t.Fatal("Get returned wrong config")
	}

	path := filepath.Join(t.TempDir(), "kb.json")
	if err := kb.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = back.Get(key)
	if !ok || !got.Equal(cfg) {
		t.Fatal("loaded knowledge base differs")
	}
	if len(back.Keys()) != 1 {
		t.Fatal("Keys() wrong")
	}
}

func TestKnowledgeBaseKeyBuckets(t *testing.T) {
	// Nearby sizes share a bucket; far sizes do not.
	a := Key("terasort", 100*1024, "c")
	b := Key("terasort", 90*1024, "c")
	c := Key("terasort", 2*1024, "c")
	if a != b {
		t.Fatalf("90GB and 100GB should share a power-of-two bucket: %s vs %s", a, b)
	}
	if a == c {
		t.Fatal("2GB and 100GB should not share a bucket")
	}
	if Key("terasort", 100, "c1") == Key("terasort", 100, "c2") {
		t.Fatal("different clusters share a key")
	}
}

func TestKnowledgeBaseLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file load succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("corrupt file load succeeded")
	}
}
