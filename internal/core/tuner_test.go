package core

import (
	"strings"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/mrconf"
)

// reportFor builds a synthetic task report.
func reportFor(memUtil, cpuUtil, spilled, output, dur float64, oom bool) mapreduce.TaskReport {
	return mapreduce.TaskReport{
		JobName: "j", Type: mapreduce.MapTask, Config: mrconf.Default(),
		Start: 0, End: dur,
		MemUtil: memUtil, CPUUtil: cpuUtil,
		SpilledRecords: spilled, OutputRecords: output,
		OOM: oom,
	}
}

func mapReport(id int, cfg mrconf.Config, dataMB, rawMB, dur, memU, cpuU float64) mapreduce.TaskReport {
	return mapreduce.TaskReport{
		JobName: "j", Type: mapreduce.MapTask, ID: id, Config: cfg,
		Start: 0, End: dur, MemUtil: memU, CPUUtil: cpuU,
		DataMB: dataMB, RawOutputMB: rawMB,
		SpilledRecords: dataMB / 100e-6, OutputRecords: dataMB / 100e-6,
	}
}

func TestMonitorEstimates(t *testing.T) {
	m := NewMonitor(100, 10)
	for i := 0; i < 5; i++ {
		m.Observe(mapReport(i, mrconf.Default(), 100, 150, 10, 0.5, 0.5))
	}
	est, ok := m.EstMapOutputMB()
	if !ok || est != 100 {
		t.Fatalf("EstMapOutputMB = %v/%v", est, ok)
	}
	raw, ok := m.EstMapRawOutputMB()
	if !ok || raw != 150 {
		t.Fatalf("EstMapRawOutputMB = %v/%v", raw, ok)
	}
	// Reduce input estimate: 100 MB * 100 maps / 10 reducers = 1000.
	rin, ok := m.EstReduceInputMB()
	if !ok || rin != 1000 {
		t.Fatalf("EstReduceInputMB = %v/%v", rin, ok)
	}
	if m.TMax(mapreduce.MapTask) != 10 {
		t.Fatalf("TMax = %v", m.TMax(mapreduce.MapTask))
	}
}

func TestMonitorIgnoresOOMForEstimates(t *testing.T) {
	m := NewMonitor(10, 2)
	r := mapReport(0, mrconf.Default(), 100, 150, 10, 0.5, 0.5)
	r.OOM = true
	m.Observe(r)
	if _, ok := m.EstMapOutputMB(); ok {
		t.Fatal("OOM report contributed to estimates")
	}
	// But TMax still tracks it (it occupied the cluster that long).
	if m.TMax(mapreduce.MapTask) != 10 {
		t.Fatal("OOM report should still update TMax")
	}
}

func TestAggressiveTunerAssignsDistinctConfigs(t *testing.T) {
	tn := NewTuner("j", 100, 10, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 1})
	seen := map[string]bool{}
	job := &mapreduce.Job{}
	_ = job
	distinct := 0
	for i := 0; i < 10; i++ {
		task := &mapreduce.Task{Type: mapreduce.MapTask, ID: i}
		if !tn.AllowLaunch(task) {
			t.Fatalf("launch of task %d not allowed during first wave", i)
		}
		cfg := tn.TaskConfig(task, mrconf.Default())
		key := cfg.String()
		if !seen[key] {
			seen[key] = true
			distinct++
		}
	}
	if distinct < 8 {
		t.Fatalf("only %d distinct configs over 10 tasks; LHS should spread", distinct)
	}
}

func TestAggressiveTunerIdempotentForDeferredTask(t *testing.T) {
	tn := NewTuner("j", 100, 10, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 1})
	task := &mapreduce.Task{Type: mapreduce.ReduceTask, ID: 3}
	c1 := tn.TaskConfig(task, mrconf.Default())
	c2 := tn.TaskConfig(task, mrconf.Default())
	if !c1.Equal(c2) {
		t.Fatalf("re-asking for a deferred task changed its config:\n%s\nvs\n%s", c1, c2)
	}
	if !tn.AllowLaunch(task) {
		t.Fatal("task holding an assignment must be allowed to launch")
	}
}

func TestAggressiveGateClosesWhenWaveAssigned(t *testing.T) {
	tn := NewTuner("j", 1000, 10, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 1})
	i := 0
	for ; i < 100; i++ {
		task := &mapreduce.Task{Type: mapreduce.MapTask, ID: i}
		if !tn.AllowLaunch(task) {
			break
		}
		tn.TaskConfig(task, mrconf.Default())
	}
	want := DefaultSearchParams().M + 1 // LHS wave plus the default seed
	if i != want {
		t.Fatalf("gate closed after %d tasks, want %d", i, want)
	}
}

func TestAggressiveRetryFallsBackToBase(t *testing.T) {
	base := mrconf.Default().With(mrconf.IOSortMB, 150)
	tn := NewTuner("j", 100, 10, base, TunerOptions{Strategy: Aggressive, Seed: 1})
	task := &mapreduce.Task{Type: mapreduce.MapTask, ID: 0, Attempt: 2}
	cfg := tn.TaskConfig(task, base)
	if !cfg.Equal(base) {
		t.Fatalf("attempt>=2 config = %s, want base", cfg)
	}
}

func TestConservativeRulesKickInAfterWave(t *testing.T) {
	tn := NewTuner("j", 100, 10, mrconf.Default(), TunerOptions{Strategy: Conservative, Seed: 1})
	// Before any reports: defaults.
	task := &mapreduce.Task{Type: mapreduce.MapTask, ID: 0}
	cfg := tn.TaskConfig(task, mrconf.Default())
	if cfg.SortMB() != 100 {
		t.Fatalf("pre-stats conservative config changed io.sort.mb to %v", cfg.SortMB())
	}
	// Feed a wave of reports: map raw output 180 MB, low mem util.
	for i := 0; i < 6; i++ {
		tn.TaskCompleted(mapReport(i, mrconf.Default(), 120, 180, 10, 0.37, 0.3))
	}
	cfg = tn.TaskConfig(task, mrconf.Default())
	if cfg.SortMB() < 180 {
		t.Fatalf("conservative io.sort.mb = %v, want >= raw output 180", cfg.SortMB())
	}
	if cfg.SpillPct() != 0.99 {
		t.Fatalf("spill.percent = %v, want 0.99 once the buffer fits", cfg.SpillPct())
	}
	// Memory is sized to fit the new buffer.
	if cfg.MapHeapMB() < mapreduce.JVMBaseMB+cfg.SortMB() {
		t.Fatalf("map heap %v cannot hold base+buffer %v",
			cfg.MapHeapMB(), mapreduce.JVMBaseMB+cfg.SortMB())
	}
}

func TestConservativeVcoreEscalation(t *testing.T) {
	tn := NewTuner("j", 1000, 10, mrconf.Default(), TunerOptions{Strategy: Conservative, Seed: 1})
	task := &mapreduce.Task{Type: mapreduce.MapTask, ID: 0}
	// Saturated CPU and improving durations: vcores should escalate.
	dur := 40.0
	for wave := 0; wave < 4; wave++ {
		for i := 0; i < 6; i++ {
			tn.TaskCompleted(mapReport(wave*6+i, tn.TaskConfig(task, mrconf.Default()), 50, 50, dur, 0.5, 0.98))
		}
		dur *= 0.7 // keeps improving
	}
	cfg := tn.TaskConfig(task, mrconf.Default())
	if cfg.MapVcores() < 2 {
		t.Fatalf("vcores = %d after sustained CPU saturation, want >= 2", cfg.MapVcores())
	}
}

func TestConservativeVcoreStopsWhenNotImproving(t *testing.T) {
	tn := NewTuner("j", 1000, 10, mrconf.Default(), TunerOptions{Strategy: Conservative, Seed: 1})
	task := &mapreduce.Task{Type: mapreduce.MapTask, ID: 0}
	for wave := 0; wave < 6; wave++ {
		for i := 0; i < 6; i++ {
			// Saturated but duration never improves.
			tn.TaskCompleted(mapReport(wave*6+i, tn.TaskConfig(task, mrconf.Default()), 50, 50, 40, 0.5, 0.98))
		}
	}
	cfg := tn.TaskConfig(task, mrconf.Default())
	if cfg.MapVcores() > 2 {
		t.Fatalf("vcores = %d kept escalating without improvement", cfg.MapVcores())
	}
}

func TestMaterializeReduceRulesRespectHeap(t *testing.T) {
	tn := NewTuner("j", 100, 10, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 1})
	// Feed map reports so the reduce-input estimate exists and is large.
	for i := 0; i < 5; i++ {
		tn.TaskCompleted(mapReport(i, mrconf.Default(), 80, 80, 10, 0.5, 0.5))
	}
	cfg := tn.materialize(mrconf.Default(), mapreduce.ReduceTask)
	heap := cfg.ReduceHeapMB()
	// JVM base + shuffle buffer must fit in the heap with working-set
	// reserve to spare.
	if mapreduce.JVMBaseMB+cfg.ShuffleBufferPct()*heap > heap {
		t.Fatalf("materialized shuffle buffer %v overflows heap %v",
			cfg.ShuffleBufferPct()*heap, heap)
	}
	if cfg.InmemThreshold() != 0 {
		t.Fatalf("inmem threshold = %d, want 0 (rule §6.2)", cfg.InmemThreshold())
	}
	if err := mrconf.Validate(cfg); err != nil {
		t.Fatalf("materialized config invalid: %v", err)
	}
}

func TestBestConfigValidAndRepairable(t *testing.T) {
	tn := NewTuner("j", 100, 10, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 1})
	// Run a full synthetic wave through the tuner.
	tasks := make([]*mapreduce.Task, 0, 30)
	for i := 0; i < 30; i++ {
		task := &mapreduce.Task{Type: mapreduce.MapTask, ID: i}
		if !tn.AllowLaunch(task) {
			break
		}
		cfg := tn.TaskConfig(task, mrconf.Default())
		task.Config = cfg
		tasks = append(tasks, task)
	}
	for i, task := range tasks {
		tn.TaskCompleted(mapReport(task.ID, task.Config, 100, 150, 10+float64(i), 0.6, 0.6))
	}
	best := tn.BestConfig()
	if err := mrconf.Validate(best); err != nil {
		t.Fatalf("BestConfig invalid: %v", err)
	}
}

func TestTunerImplementsController(t *testing.T) {
	var _ mapreduce.Controller = NewTuner("j", 1, 1, mrconf.Default(), TunerOptions{})
}

func TestStrategyString(t *testing.T) {
	if Aggressive.String() != "aggressive" || Conservative.String() != "conservative" {
		t.Fatal("Strategy.String broken")
	}
}

func TestExplainMentionsWhatItLearned(t *testing.T) {
	tn := NewTuner("wordjob", 100, 10, mrconf.Default(), TunerOptions{Strategy: Conservative, Seed: 1})
	// Before any observations: defaults, no crash.
	out := tn.Explain()
	if !strings.Contains(out, "conservative") || !strings.Contains(out, "wordjob") {
		t.Fatalf("explain header wrong:\n%s", out)
	}
	for i := 0; i < 6; i++ {
		tn.TaskCompleted(mapReport(i, mrconf.Default(), 120, 180, 10, 0.37, 0.3))
	}
	out = tn.Explain()
	for _, want := range []string{"180 MB/task raw", "io.sort.mb", "recommended configuration"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainAggressiveShowsSearchState(t *testing.T) {
	tn := NewTuner("j", 100, 10, mrconf.Default(), TunerOptions{Strategy: Aggressive, Seed: 1})
	out := tn.Explain()
	if !strings.Contains(out, "search:") || !strings.Contains(out, "global") {
		t.Fatalf("aggressive explain missing search state:\n%s", out)
	}
}
