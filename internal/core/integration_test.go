package core

import (
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/workload"
)

// These integration tests assert the headline behaviours of the paper
// end-to-end on the simulated cluster (runJob lives in probe_test.go).

func TestAggressiveTestRunProducesFasterConfig(t *testing.T) {
	b := workload.Terasort(100, 752, 200)
	def := runJob(t, b, mrconf.Default(), nil)

	tuner := NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		TunerOptions{Strategy: Aggressive, Seed: 7})
	test := runJob(t, b, mrconf.Default(), tuner)
	if test.Failed {
		t.Fatalf("aggressive test run failed: %v", test.Err)
	}
	tuned := runJob(t, b, tuner.BestConfig(), nil)
	if tuned.Failed {
		t.Fatalf("tuned run failed: %v", tuned.Err)
	}
	imp := (def.Duration - tuned.Duration) / def.Duration
	if imp < 0.10 || imp > 0.45 {
		t.Fatalf("expedited improvement = %.0f%%, want 10-45%% (paper: ~23%% for Terasort)", imp*100)
	}
	// Spill records drop to near-optimal (Fig 7).
	optimal := tuned.Counters.CombineOutputRecs
	if ratio := tuned.Counters.SpilledRecords() / optimal; ratio > 1.5 {
		t.Fatalf("tuned spill ratio = %.2f, want near 1", ratio)
	}
}

func TestConservativeSingleRunImproves(t *testing.T) {
	b := workload.Terasort(100, 752, 200)
	def := runJob(t, b, mrconf.Default(), nil)
	cons := NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		TunerOptions{Strategy: Conservative, Seed: 7})
	fast := runJob(t, b, mrconf.Default(), cons)
	if fast.Failed {
		t.Fatalf("conservative run failed: %v", fast.Err)
	}
	imp := (def.Duration - fast.Duration) / def.Duration
	if imp < 0.05 || imp > 0.35 {
		t.Fatalf("fast-single-run improvement = %.0f%%, want 5-35%% (paper: 8-22%%)", imp*100)
	}
}

func TestConservativeNeverHoldsLaunches(t *testing.T) {
	cons := NewTuner("j", 10, 2, mrconf.Default(), TunerOptions{Strategy: Conservative, Seed: 1})
	for i := 0; i < 10; i++ {
		if !cons.AllowLaunch(&mapreduce.Task{Type: mapreduce.MapTask, ID: i}) {
			t.Fatal("conservative tuner held a launch")
		}
	}
}

func TestSmallJobSearchStarves(t *testing.T) {
	// Fig 13: a 2 GB Terasort has only 16 maps, fewer than one global
	// wave (m=24); the search cannot complete a single wave, so the
	// tuned config stays near the default and gains are marginal.
	b := workload.Terasort(2, 0, 0)
	tuner := NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		TunerOptions{Strategy: Aggressive, Seed: 7})
	test := runJob(t, b, mrconf.Default(), tuner)
	if test.Failed {
		t.Fatal(test.Err)
	}
	if tuner.SearchDone() {
		t.Fatal("search should not converge with 16 map tasks")
	}
	best := tuner.BestConfig()
	// No map wave completed, so the map-scope parameters are the base
	// values (only rule-derived live parameters may differ).
	if best.SortMB() != mrconf.Default().SortMB() ||
		best.MapMemMB() != mrconf.Default().MapMemMB() {
		t.Fatalf("map-scope parameters changed without a completed wave: %s", best)
	}
}

func TestAggressiveOOMConfigsRecovered(t *testing.T) {
	// bigram has a 300 MB map working set: LHS samples with io.sort.mb
	// near the heap will OOM. The run must still complete, and the
	// best config must not be one of the OOM ones.
	b, err := workload.ByName("bigram/Freebase")
	if err != nil {
		t.Fatal(err)
	}
	tuner := NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		TunerOptions{Strategy: Aggressive, Seed: 3})
	test := runJob(t, b, mrconf.Default(), tuner)
	if test.Failed {
		t.Fatalf("test run failed: %v", test.Err)
	}
	tuned := runJob(t, b, tuner.BestConfig(), nil)
	if tuned.Failed {
		t.Fatalf("best config fails outright: %v", tuned.Err)
	}
	if tuned.Counters.OOMKills > 0 {
		t.Fatalf("best config caused %d OOM kills", tuned.Counters.OOMKills)
	}
}

func TestKnowledgeBaseWorkflow(t *testing.T) {
	// The Fig 3 workflow: test run -> store in KB -> later run looks
	// it up instead of re-tuning.
	b := workload.Terasort(20, 0, 0)
	tuner := NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		TunerOptions{Strategy: Aggressive, Seed: 7})
	runJob(t, b, mrconf.Default(), tuner)

	kb := NewKnowledgeBase()
	key := Key(b.Name, b.InputSizeMB, "paper-19node")
	kb.Put(key, tuner.BestConfig())

	cfg, ok := kb.Get(Key(b.Name, b.InputSizeMB*1.02, "paper-19node"))
	if !ok {
		t.Fatal("KB lookup with near-identical size failed")
	}
	res := runJob(t, b, cfg, nil)
	if res.Failed {
		t.Fatal("KB config failed")
	}
}

func TestUtilizationRisesUnderConservativeTuning(t *testing.T) {
	// Fig 15's mechanism in single-tenant form: conservative tuning
	// right-sizes containers, so memory utilization rises well above
	// the default's.
	b := workload.Terasort(60, 0, 0)
	def := runJob(t, b, mrconf.Default(), nil)
	cons := NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		TunerOptions{Strategy: Conservative, Seed: 7})
	fast := runJob(t, b, mrconf.Default(), cons)
	if fast.MapMemUtil <= def.MapMemUtil+0.1 {
		t.Fatalf("map memory utilization %0.2f -> %0.2f: no meaningful rise",
			def.MapMemUtil, fast.MapMemUtil)
	}
}
