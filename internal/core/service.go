package core

import (
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/whatif"
	"repro/internal/yarn"
)

// Service is the deployment facade: the online-tuner daemon of Fig 2
// that co-exists with the resource manager and tunes every job
// submitted through it ("MRONLINE provides the ability to tune
// multiple jobs' performance in a multi-tenant environment"). It
// attaches a per-job Tuner, consults the knowledge base for a starting
// configuration, and deposits aggressive results back for future runs.
type Service struct {
	rm *yarn.ResourceManager
	fs *hdfs.FileSystem
	kb *KnowledgeBase

	// Strategy applied to submitted jobs (default Conservative).
	Strategy Strategy
	// TuneStaticParams, with the Aggressive strategy, additionally runs
	// a what-if sweep after each test run to recommend the category-1
	// parameters (reducer count, slowstart) for future submissions —
	// the paper's stated future work, closed via the simulator.
	TuneStaticParams bool
	// ClusterName keys knowledge-base entries.
	ClusterName string
	// Seed derives per-job tuner randomness.
	Seed uint64

	nextJob uint64
}

// ServiceOptions configure NewService.
type ServiceOptions struct {
	Strategy         Strategy
	ClusterName      string
	Seed             uint64
	TuneStaticParams bool
	// KnowledgeBase to consult/extend; a fresh one when nil.
	KnowledgeBase *KnowledgeBase
}

// NewService wires a service to a resource manager and file system.
func NewService(rm *yarn.ResourceManager, fs *hdfs.FileSystem, opts ServiceOptions) *Service {
	if opts.Strategy == 0 {
		opts.Strategy = Conservative
	}
	if opts.ClusterName == "" {
		opts.ClusterName = "default-cluster"
	}
	kb := opts.KnowledgeBase
	if kb == nil {
		kb = NewKnowledgeBase()
	}
	return &Service{
		rm: rm, fs: fs, kb: kb,
		Strategy: opts.Strategy, ClusterName: opts.ClusterName, Seed: opts.Seed,
		TuneStaticParams: opts.TuneStaticParams,
	}
}

// KnowledgeBase returns the service's (shared) knowledge base.
func (s *Service) KnowledgeBase() *KnowledgeBase { return s.kb }

// Submit runs a job through MRONLINE:
//
//   - if the knowledge base holds a tuned configuration for this
//     application and input scale, the job starts from it;
//   - otherwise the configured strategy's tuner is attached;
//   - a completed aggressive run deposits its best configuration.
//
// The caller's Controller, if any, is preserved (the tuner is only
// attached when the spec has none).
func (s *Service) Submit(spec mapreduce.Spec, onDone func(mapreduce.Result)) *mapreduce.Job {
	b := spec.Benchmark
	key := Key(b.Name, b.InputSizeMB, s.ClusterName)

	var tuner *Tuner
	if cfg, ok := s.kb.Get(key); ok {
		// Known application: run with the stored configuration, no
		// tuning interference. Apply stored category-1 recommendations
		// too — they can only be set at submission time.
		spec.BaseConfig = cfg
		if p, ok := s.kb.GetStatic(key); ok {
			if p.NumReduces > 0 {
				spec.Benchmark.NumReduces = p.NumReduces
			}
			if p.Slowstart > 0 {
				spec.SlowstartFraction = p.Slowstart
			}
		}
	} else if spec.Controller == nil {
		base := spec.BaseConfig
		if base.NumOverrides() == 0 {
			base = mrconf.Default()
		}
		tuner = NewTuner(spec.Name, b.NumMaps, b.NumReduces, base,
			TunerOptions{Strategy: s.Strategy, Seed: s.Seed + s.nextJob})
		spec.Controller = tuner
	}
	s.nextJob++

	return mapreduce.Submit(s.rm, s.fs, spec, func(res mapreduce.Result) {
		if tuner != nil && s.Strategy == Aggressive && !res.Failed {
			best := tuner.BestConfig()
			s.kb.Put(key, best)
			if s.TuneStaticParams {
				s.kb.PutStatic(key, s.recommendStatics(spec, res, best))
			}
		}
		if onDone != nil {
			onDone(res)
		}
	})
}

// recommendStatics runs the what-if sweep on a calibrated copy of the
// observed job and returns the best category-1 settings.
func (s *Service) recommendStatics(spec mapreduce.Spec, res mapreduce.Result, cfg mrconf.Config) StaticParams {
	calibrated := whatif.CalibrateFromRun(spec.Benchmark, res)
	best := whatif.Recommend(whatif.Question{
		Benchmark:  calibrated,
		Config:     cfg,
		Slowstarts: []float64{0.05, 0.5},
		Seed:       s.Seed + 1,
	})
	return StaticParams{NumReduces: best.NumReduces, Slowstart: best.Slowstart}
}
