package core

import (
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/mrconf"
)

// Monitor is MRONLINE's centralized monitor (§3): it aggregates the
// per-task statistics the slave monitors report and derives the
// runtime estimates the tuner and the tuning rules consume — maximum
// task times for Eq. 1, map-output and reduce-input size estimates for
// the buffer rules, and utilization summaries.
type Monitor struct {
	numMaps    int
	numReduces int

	mapReports    []mapreduce.TaskReport
	reduceReports []mapreduce.TaskReport

	tmaxMap    float64
	tmaxReduce float64

	mapOutMB     metrics.Sample // per successful map task (post-combiner)
	mapRawMB     metrics.Sample // pre-combiner map output
	mapMemUtil   metrics.Sample
	mapCPUUtil   metrics.Sample
	mapSpillRat  metrics.Sample
	redInMB      metrics.Sample
	redMemUtil   metrics.Sample
	redCPUUtil   metrics.Sample
	redSpillRat  metrics.Sample
	mapDurations metrics.Sample
	redDurations metrics.Sample

	// mapWS and redWS accumulate the user-code working-set estimates
	// (heap beside the sort/shuffle buffer) incrementally at ingestion,
	// so the tuning rules stop re-deriving them from every report on
	// each recompute. Fed under the same filter and in the same order as
	// a scan over MapReports/ReduceReports would observe.
	mapWS metrics.Sample
	redWS metrics.Sample
}

// NewMonitor returns a monitor for a job with the given task counts.
func NewMonitor(numMaps, numReduces int) *Monitor {
	return &Monitor{numMaps: numMaps, numReduces: numReduces}
}

// Reset re-targets the monitor at a fresh job, forgetting every
// observation while keeping the report slices' and samples' capacity —
// the recycling hook the continuous-serving path uses so per-job
// monitor state stops growing with the number of jobs ever run.
func (m *Monitor) Reset(numMaps, numReduces int) {
	m.numMaps, m.numReduces = numMaps, numReduces
	m.mapReports = resetReports(m.mapReports)
	m.reduceReports = resetReports(m.reduceReports)
	m.tmaxMap, m.tmaxReduce = 0, 0
	m.mapOutMB.Reset()
	m.mapRawMB.Reset()
	m.mapMemUtil.Reset()
	m.mapCPUUtil.Reset()
	m.mapSpillRat.Reset()
	m.redInMB.Reset()
	m.redMemUtil.Reset()
	m.redCPUUtil.Reset()
	m.redSpillRat.Reset()
	m.mapDurations.Reset()
	m.redDurations.Reset()
	m.mapWS.Reset()
	m.redWS.Reset()
}

// resetReports zeroes the retained reports (they hold Config map
// references) and keeps the backing array.
func resetReports(rs []mapreduce.TaskReport) []mapreduce.TaskReport {
	for i := range rs {
		rs[i] = mapreduce.TaskReport{}
	}
	return rs[:0]
}

// Observe ingests one task report.
func (m *Monitor) Observe(r mapreduce.TaskReport) {
	d := r.Duration()
	if r.Type == mapreduce.MapTask {
		m.mapReports = append(m.mapReports, r)
		// Failed attempts (injected fault, node loss) carry partial,
		// misleading measurements: keep the report for bookkeeping but
		// feed none of the estimators, not even tmax — a fault is not
		// evidence about the configuration.
		if d > m.tmaxMap && !r.Failed {
			m.tmaxMap = d
		}
		if !r.OOM && !r.Failed {
			m.mapOutMB.Observe(r.DataMB)
			m.mapRawMB.Observe(r.RawOutputMB)
			m.mapMemUtil.Observe(r.MemUtil)
			m.mapCPUUtil.Observe(r.CPUUtil)
			m.mapDurations.Observe(d)
			if r.OutputRecords > 0 {
				m.mapSpillRat.Observe(r.SpilledRecords / r.OutputRecords)
			}
			peakHeap := r.MemUtil * r.Config.MapMemMB() * mrconf.HeapFraction
			if w := peakHeap - mapreduce.JVMBaseMB - r.Config.SortMB(); w > 0 {
				m.mapWS.Observe(w)
			}
		}
		return
	}
	m.reduceReports = append(m.reduceReports, r)
	if d > m.tmaxReduce && !r.Failed {
		m.tmaxReduce = d
	}
	if !r.OOM && !r.Failed {
		m.redInMB.Observe(r.DataMB)
		m.redMemUtil.Observe(r.MemUtil)
		m.redCPUUtil.Observe(r.CPUUtil)
		m.redDurations.Observe(d)
		if r.OutputRecords > 0 {
			m.redSpillRat.Observe(r.SpilledRecords / r.OutputRecords)
		}
		peakHeap := r.MemUtil * r.Config.ReduceMemMB() * mrconf.HeapFraction
		w := peakHeap - mapreduce.JVMBaseMB - r.Config.ShuffleBufferPct()*r.Config.ReduceHeapMB()
		if w > 0 {
			m.redWS.Observe(w)
		}
	}
}

// MapWorkingSet returns the accumulated map-side user-code working-set
// sample (heap beside the sort buffer, successful attempts only).
func (m *Monitor) MapWorkingSet() *metrics.Sample { return &m.mapWS }

// ReduceWorkingSet returns the accumulated reduce-side working-set
// sample (heap beside the shuffle buffer, successful attempts only).
func (m *Monitor) ReduceWorkingSet() *metrics.Sample { return &m.redWS }

// TMax returns the slowest observed task time of the given type, the
// denominator of Eq. 1's relative-time term.
func (m *Monitor) TMax(t mapreduce.TaskType) float64 {
	if t == mapreduce.MapTask {
		return m.tmaxMap
	}
	return m.tmaxReduce
}

// EstMapOutputMB estimates per-map-task post-combiner output from
// completed tasks; ok is false before any map has finished.
func (m *Monitor) EstMapOutputMB() (float64, bool) {
	if m.mapOutMB.N() == 0 {
		return 0, false
	}
	return m.mapOutMB.Mean(), true
}

// EstMapRawOutputMB estimates the pre-combiner map output per task —
// the volume that must fit in io.sort.mb for a single spill.
func (m *Monitor) EstMapRawOutputMB() (float64, bool) {
	if m.mapRawMB.N() == 0 {
		return 0, false
	}
	return m.mapRawMB.Mean(), true
}

// EstReduceInputMB estimates per-reducer shuffle input by scaling the
// observed mean map output to the full map count and dividing across
// reducers — available before the first reducer finishes, which is
// when the shuffle-buffer rules need it.
func (m *Monitor) EstReduceInputMB() (float64, bool) {
	if m.mapOutMB.N() == 0 || m.numReduces == 0 {
		return 0, false
	}
	total := m.mapOutMB.Mean() * float64(m.numMaps)
	return total / float64(m.numReduces), true
}

// MapReports and ReduceReports return all ingested reports.
func (m *Monitor) MapReports() []mapreduce.TaskReport    { return m.mapReports }
func (m *Monitor) ReduceReports() []mapreduce.TaskReport { return m.reduceReports }

// Completed returns how many attempts have been observed for a type.
func (m *Monitor) Completed(t mapreduce.TaskType) int {
	if t == mapreduce.MapTask {
		return len(m.mapReports)
	}
	return len(m.reduceReports)
}

// MeanCPUUtil returns the running mean CPU utilization for a type.
func (m *Monitor) MeanCPUUtil(t mapreduce.TaskType) float64 {
	if t == mapreduce.MapTask {
		return m.mapCPUUtil.Mean()
	}
	return m.redCPUUtil.Mean()
}

// MeanMemUtil returns the running mean memory utilization for a type.
func (m *Monitor) MeanMemUtil(t mapreduce.TaskType) float64 {
	if t == mapreduce.MapTask {
		return m.mapMemUtil.Mean()
	}
	return m.redMemUtil.Mean()
}

// MeanSpillRatio returns the mean spilled/output record ratio.
func (m *Monitor) MeanSpillRatio(t mapreduce.TaskType) float64 {
	if t == mapreduce.MapTask {
		return m.mapSpillRat.Mean()
	}
	return m.redSpillRat.Mean()
}

// MeanDuration returns the mean successful-attempt duration.
func (m *Monitor) MeanDuration(t mapreduce.TaskType) float64 {
	if t == mapreduce.MapTask {
		return m.mapDurations.Mean()
	}
	return m.redDurations.Mean()
}
