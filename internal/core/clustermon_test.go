package core

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newClusterMon(t *testing.T, interval float64) (*sim.Engine, *cluster.Cluster, *ClusterMonitor) {
	t.Helper()
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	return eng, c, StartClusterMonitor(eng, c, interval)
}

func TestClusterMonitorSamples(t *testing.T) {
	eng, c, m := newClusterMon(t, 5)
	c.Nodes[0].InjectCPULoad(4, 100, nil) // half the node, long-lived
	eng.RunUntil(21)
	m.Stop()
	eng.Run()

	s, ok := m.Latest(c.Nodes[0].Name)
	if !ok {
		t.Fatal("no samples for node00")
	}
	if s.CPULoad < 0.45 || s.CPULoad > 0.55 {
		t.Fatalf("sampled CPU load = %v, want ~0.5", s.CPULoad)
	}
	if len(m.History(c.Nodes[0].Name)) != 4 { // t=5,10,15,20
		t.Fatalf("history length = %d, want 4", len(m.History(c.Nodes[0].Name)))
	}
	if _, ok := m.Latest("no-such-node"); ok {
		t.Fatal("sample for unknown node")
	}
}

func TestClusterMonitorStops(t *testing.T) {
	eng, _, m := newClusterMon(t, 5)
	eng.RunUntil(12)
	m.Stop()
	eng.Run() // must drain without the monitor keeping it alive
	if eng.Pending() != 0 {
		t.Fatalf("events pending after Stop: %d", eng.Pending())
	}
}

func TestClusterMonitorRingBound(t *testing.T) {
	eng, c, m := newClusterMon(t, 1)
	m.Capacity = 10
	eng.RunUntil(50)
	m.Stop()
	eng.Run()
	if got := len(m.History(c.Nodes[0].Name)); got != 10 {
		t.Fatalf("history = %d samples, want capacity 10", got)
	}
}

func TestWindowAverageSmoothsSpikes(t *testing.T) {
	eng, c, m := newClusterMon(t, 1)
	n := c.Nodes[0]
	// Busy only from t=9 to t=10: one hot sample out of the window.
	eng.At(9, func() { n.InjectDiskLoad(90, 1, nil) })
	eng.RunUntil(10.5)
	m.Stop()
	eng.Run()

	peak := 0.0
	for _, smp := range m.History(n.Name) {
		if smp.DiskLoad > peak {
			peak = smp.DiskLoad
		}
	}
	if peak < 0.9 {
		t.Fatalf("no sample caught the spike, peak %v", peak)
	}
	avg, ok := m.WindowAverage(n.Name, 10)
	if !ok {
		t.Fatal("no window average")
	}
	if avg.DiskLoad > 0.3 {
		t.Fatalf("10s window average %v should smooth a 1s spike", avg.DiskLoad)
	}
}

func TestHotNodesAndSmoothedFilter(t *testing.T) {
	eng, c, m := newClusterMon(t, 1)
	hot := c.Nodes[3]
	for k := 0; k < 4; k++ {
		hot.InjectDiskLoad(30, 100, nil)
	}
	eng.RunUntil(10)
	m.Stop()
	eng.Run()

	hots := m.HotNodes(DefaultHotSpotThresholds(), 5)
	if len(hots) != 1 || hots[0] != hot {
		t.Fatalf("HotNodes = %v, want exactly node03", hots)
	}
	f := m.SmoothedHotSpotFilter(DefaultHotSpotThresholds(), 5)
	if f(hot) {
		t.Fatal("smoothed filter accepts the hot node")
	}
	if !f(c.Nodes[0]) {
		t.Fatal("smoothed filter rejects an idle node")
	}
}

func TestSmoothedFilterNoDataAccepts(t *testing.T) {
	eng, c, _ := newClusterMon(t, 1000)
	m2 := StartClusterMonitor(eng, c, 1000)
	f := m2.SmoothedHotSpotFilter(DefaultHotSpotThresholds(), 5)
	if !f(c.Nodes[0]) {
		t.Fatal("filter with no samples must not veto")
	}
}

func TestClusterMonitorSummary(t *testing.T) {
	eng, _, m := newClusterMon(t, 5)
	if !strings.Contains(m.Summary(), "no samples") {
		t.Fatal("pre-sample summary wrong")
	}
	eng.RunUntil(6)
	m.Stop()
	eng.Run()
	if !strings.Contains(m.Summary(), "cluster avg load") {
		t.Fatalf("summary = %q", m.Summary())
	}
}
