// Package lhs implements Latin hypercube sampling over bounded
// parameter spaces, including the weighted variant used by the smart
// hill-climbing algorithm MRONLINE builds on (Xi et al., WWW'04):
// each dimension's range is partitioned into equal-probability
// intervals and exactly one sample is drawn per interval, which covers
// the space far more evenly than independent uniform draws.
package lhs

import (
	"fmt"
	"math/rand"
)

// Dim is one sampled dimension.
type Dim struct {
	Name     string
	Min, Max float64
}

// Range returns the dimension width.
func (d Dim) Range() float64 { return d.Max - d.Min }

// Space is an ordered set of dimensions.
type Space []Dim

// Sample draws m Latin-hypercube points from the space: per dimension,
// the range is cut into m strata and a random permutation assigns one
// stratum to each point, with jitter inside the stratum.
func Sample(rng *rand.Rand, space Space, m int) [][]float64 {
	if m <= 0 {
		panic(fmt.Sprintf("lhs: sample count %d must be positive", m))
	}
	points := make([][]float64, m)
	for i := range points {
		points[i] = make([]float64, len(space))
	}
	for d, dim := range space {
		perm := rng.Perm(m)
		for i := 0; i < m; i++ {
			u := (float64(perm[i]) + rng.Float64()) / float64(m)
			points[i][d] = dim.Min + u*dim.Range()
		}
	}
	return points
}

// Weights bias sampling within one dimension: k intervals of equal
// width with relative weights. Higher weight makes a stratum denser in
// samples (probability-proportional stratification).
type Weights []float64

// Uniform returns k equal weights.
func Uniform(k int) Weights {
	w := make(Weights, k)
	for i := range w {
		w[i] = 1
	}
	return w
}

// cdfInvert maps u in [0,1) through the inverse CDF implied by the
// weights, returning a position in [0,1).
func (w Weights) cdfInvert(u float64) float64 {
	total := 0.0
	for _, v := range w {
		if v < 0 {
			panic("lhs: negative weight")
		}
		total += v
	}
	if total == 0 {
		return u
	}
	target := u * total
	acc := 0.0
	for i, v := range w {
		if target < acc+v || i == len(w)-1 {
			frac := 0.0
			if v > 0 {
				frac = (target - acc) / v
			}
			return (float64(i) + frac) / float64(len(w))
		}
		acc += v
	}
	return u
}

// WeightedSample draws m LHS points where each dimension d is biased
// by weights[d] (nil entry = uniform). The stratification happens in
// probability space, so each of the m samples still covers a distinct
// probability quantile — the weighted-LHS construction of the smart
// hill-climbing paper.
func WeightedSample(rng *rand.Rand, space Space, weights []Weights, m int) [][]float64 {
	if weights != nil && len(weights) != len(space) {
		panic(fmt.Sprintf("lhs: %d weight vectors for %d dims", len(weights), len(space)))
	}
	points := make([][]float64, m)
	for i := range points {
		points[i] = make([]float64, len(space))
	}
	for d, dim := range space {
		perm := rng.Perm(m)
		var w Weights
		if weights != nil {
			w = weights[d]
		}
		for i := 0; i < m; i++ {
			u := (float64(perm[i]) + rng.Float64()) / float64(m)
			if w != nil {
				u = w.cdfInvert(u)
			}
			points[i][d] = dim.Min + u*dim.Range()
		}
	}
	return points
}

// Neighborhood returns the sub-space centered at center whose width in
// every dimension is size (a fraction of the full range), clamped to
// the original bounds — the local-search region of Algorithm 1.
func Neighborhood(space Space, center []float64, size float64) Space {
	if len(center) != len(space) {
		panic(fmt.Sprintf("lhs: center has %d coords for %d dims", len(center), len(space)))
	}
	out := make(Space, len(space))
	for d, dim := range space {
		half := size * dim.Range() / 2
		lo, hi := center[d]-half, center[d]+half
		if lo < dim.Min {
			lo = dim.Min
		}
		if hi > dim.Max {
			hi = dim.Max
		}
		if hi < lo {
			hi = lo
		}
		out[d] = Dim{Name: dim.Name, Min: lo, Max: hi}
	}
	return out
}
