package lhs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func space2() Space {
	return Space{{Name: "x", Min: 0, Max: 100}, {Name: "y", Min: -1, Max: 1}}
}

func TestSampleCountAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := Sample(rng, space2(), 24)
	if len(pts) != 24 {
		t.Fatalf("got %d points, want 24", len(pts))
	}
	for _, p := range pts {
		if len(p) != 2 {
			t.Fatalf("point has %d coords", len(p))
		}
		if p[0] < 0 || p[0] > 100 || p[1] < -1 || p[1] > 1 {
			t.Fatalf("point %v out of bounds", p)
		}
	}
}

// The defining LHS property: exactly one sample per stratum per
// dimension.
func TestLatinProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := 16
	pts := Sample(rng, space2(), m)
	for d, dim := range space2() {
		seen := make([]bool, m)
		for _, p := range pts {
			stratum := int((p[d] - dim.Min) / dim.Range() * float64(m))
			if stratum == m {
				stratum = m - 1
			}
			if seen[stratum] {
				t.Fatalf("dim %d stratum %d sampled twice", d, stratum)
			}
			seen[stratum] = true
		}
	}
}

func TestSampleZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 did not panic")
		}
	}()
	Sample(rand.New(rand.NewSource(1)), space2(), 0)
}

func TestWeightedSampleSkews(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	space := Space{{Name: "x", Min: 0, Max: 1}}
	// Weight the top half 9x: most samples should land above 0.5.
	w := []Weights{{1, 9}}
	high := 0
	const rounds = 50
	for r := 0; r < rounds; r++ {
		pts := WeightedSample(rng, space, w, 10)
		for _, p := range pts {
			if p[0] > 0.5 {
				high++
			}
		}
	}
	frac := float64(high) / float64(rounds*10)
	if frac < 0.8 || frac > 0.95 {
		t.Fatalf("high fraction = %v, want ~0.9", frac)
	}
}

func TestWeightedNilIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := WeightedSample(rng, space2(), nil, 100)
	mean := 0.0
	for _, p := range pts {
		mean += p[0]
	}
	mean /= 100
	if mean < 40 || mean > 60 {
		t.Fatalf("uniform mean = %v, want ~50", mean)
	}
}

func TestUniformWeights(t *testing.T) {
	w := Uniform(4)
	for _, v := range w {
		if v != 1 {
			t.Fatalf("Uniform weights = %v", w)
		}
	}
	// Inverse CDF of uniform weights is identity.
	for _, u := range []float64{0, 0.25, 0.5, 0.99} {
		if got := w.cdfInvert(u); math.Abs(got-u) > 1e-9 {
			t.Fatalf("cdfInvert(%v) = %v under uniform weights", u, got)
		}
	}
}

func TestNeighborhoodClamping(t *testing.T) {
	space := space2()
	nb := Neighborhood(space, []float64{0, 0}, 0.5)
	// x centered at min: [0-25, 0+25] clamps to [0, 25].
	if nb[0].Min != 0 || math.Abs(nb[0].Max-25) > 1e-9 {
		t.Fatalf("clamped x = [%v, %v], want [0, 25]", nb[0].Min, nb[0].Max)
	}
	if math.Abs(nb[1].Min+0.5) > 1e-9 || math.Abs(nb[1].Max-0.5) > 1e-9 {
		t.Fatalf("y = [%v, %v], want [-0.5, 0.5]", nb[1].Min, nb[1].Max)
	}
}

func TestNeighborhoodShrinksMonotonically(t *testing.T) {
	space := space2()
	center := []float64{50, 0}
	prev := space
	for _, size := range []float64{0.8, 0.4, 0.2, 0.1} {
		nb := Neighborhood(space, center, size)
		for d := range nb {
			if nb[d].Range() > prev[d].Range()+1e-9 {
				t.Fatalf("neighborhood grew at size %v", size)
			}
		}
		prev = nb
	}
}

// Property: weighted sampling never escapes the dimension bounds and
// the inverse CDF is monotone.
func TestWeightedBoundsProperty(t *testing.T) {
	f := func(seed int64, w1, w2, w3 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		space := Space{{Name: "x", Min: 10, Max: 20}}
		w := []Weights{{float64(w1), float64(w2), float64(w3)}}
		pts := WeightedSample(rng, space, w, 8)
		for _, p := range pts {
			if p[0] < 10 || p[0] > 20 {
				return false
			}
		}
		us := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
		vals := make([]float64, len(us))
		for i, u := range us {
			vals[i] = w[0].cdfInvert(u)
		}
		return sort.Float64sAreSorted(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkWeightedSample measures sampling cost at the tuner's scale.
func BenchmarkWeightedSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	space := Space{
		{Name: "a", Min: 0, Max: 100}, {Name: "b", Min: 0, Max: 1},
		{Name: "c", Min: 512, Max: 4096}, {Name: "d", Min: 1, Max: 8},
	}
	w := []Weights{nil, {1, 2, 3}, nil, {3, 1}}
	for i := 0; i < b.N; i++ {
		WeightedSample(rng, space, w, 24)
	}
}
