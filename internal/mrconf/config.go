package mrconf

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
)

// Config is one point in the parameter space: a full assignment of the
// Table 2 parameters. Unset parameters take their defaults. Config
// values behave like immutable values — With returns a modified copy —
// so configurations can be shared between tasks safely.
type Config struct {
	overrides map[string]float64
}

// Default returns the default YARN configuration (Table 2, rightmost
// column).
func Default() Config { return Config{} }

// FromMap builds a Config from explicit overrides. Unknown names panic.
func FromMap(values map[string]float64) Config {
	c := Config{}
	for name, v := range values {
		c = c.With(name, v)
	}
	return c
}

// Get returns the value of a parameter (the default if not overridden).
// Unknown names panic: a misspelled key silently returning 0 would
// corrupt a simulation.
func (c Config) Get(name string) float64 {
	if v, ok := c.overrides[name]; ok {
		return v
	}
	return MustLookup(name).Default
}

// With returns a copy of c with name set to value. The value is
// quantized to the parameter's granularity and clamped into range.
func (c Config) With(name string, value float64) Config {
	p := MustLookup(name)
	if math.IsNaN(value) || math.IsInf(value, 0) {
		panic(fmt.Sprintf("mrconf: non-finite value %v for %s", value, name))
	}
	v := p.Quantize(value)
	// Fast path: the effective value is unchanged, so the receiver can
	// be returned as-is — override maps are never mutated after
	// construction, making the share safe.
	if cur, ok := c.overrides[name]; ok {
		if cur == v {
			return c
		}
	} else if v == p.Default {
		return c
	}
	out := Config{overrides: make(map[string]float64, len(c.overrides)+1)}
	for k, ov := range c.overrides {
		out.overrides[k] = ov
	}
	if v == p.Default {
		delete(out.overrides, name)
	} else {
		out.overrides[name] = v
	}
	return out
}

// Merge returns c with all of other's overrides applied on top.
func (c Config) Merge(other Config) Config {
	out := c
	for name, v := range other.overrides {
		out = out.With(name, v)
	}
	return out
}

// Equal reports whether two configs assign identical values to every
// parameter.
func (c Config) Equal(other Config) bool {
	for _, p := range registry {
		if c.Get(p.Name) != other.Get(p.Name) {
			return false
		}
	}
	return true
}

// Same reports whether two configs share the identical override set —
// an O(1) identity check, not a value comparison. It is the fast path
// behind snapshot caching: With and Repair return their receiver
// unchanged when nothing changes effectively, so a config that came
// through a no-op pipeline is Same as the original and its compiled
// snapshot can be reused. Same never returns a false positive; it may
// return false for configs that are Equal but built separately (two
// independently built empty-override maps compare different).
func (c Config) Same(other Config) bool {
	if c.overrides == nil || other.overrides == nil {
		return c.overrides == nil && other.overrides == nil
	}
	return mapsShareStorage(c.overrides, other.overrides)
}

// mapsShareStorage reports whether two non-nil maps are the very same
// map object. Go has no == on maps; reflect exposes the header pointer.
func mapsShareStorage(a, b map[string]float64) bool {
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// Overrides returns the non-default assignments, for reporting. Each
// call copies the map; callers that only need to iterate or count
// should use EachOverride or NumOverrides instead.
func (c Config) Overrides() map[string]float64 {
	out := make(map[string]float64, len(c.overrides))
	for k, v := range c.overrides {
		out[k] = v
	}
	return out
}

// NumOverrides returns the number of non-default assignments without
// copying them.
func (c Config) NumOverrides() int { return len(c.overrides) }

// EachOverride calls fn for every non-default assignment in registry
// order, without allocating.
func (c Config) EachOverride(fn func(p Param, v float64)) {
	if len(c.overrides) == 0 {
		return
	}
	for _, p := range registry {
		if v, ok := c.overrides[p.Name]; ok {
			fn(p, v)
		}
	}
}

// String renders the non-default assignments in a stable order.
func (c Config) String() string {
	if len(c.overrides) == 0 {
		return "defaults"
	}
	keys := make([]string, 0, len(c.overrides))
	for k := range c.overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%g", k, c.overrides[k])
	}
	return b.String()
}

// MarshalJSON encodes the full parameter assignment.
func (c Config) MarshalJSON() ([]byte, error) {
	m := make(map[string]float64, len(registry))
	for _, p := range registry {
		m[p.Name] = c.Get(p.Name)
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes a full or partial parameter assignment.
func (c *Config) UnmarshalJSON(data []byte) error {
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	out := Config{}
	for name, v := range m {
		if _, ok := Lookup(name); !ok {
			return fmt.Errorf("mrconf: unknown parameter %q in JSON", name)
		}
		out = out.With(name, v)
	}
	*c = out
	return nil
}

// Typed accessors for the parameters the runtime consults constantly.

// MapMemMB returns the map container memory in MB.
func (c Config) MapMemMB() float64 { return c.Get(MapMemoryMB) }

// ReduceMemMB returns the reduce container memory in MB.
func (c Config) ReduceMemMB() float64 { return c.Get(ReduceMemoryMB) }

// SortMB returns the map-side sort buffer size in MB.
func (c Config) SortMB() float64 { return c.Get(IOSortMB) }

// SpillPct returns the sort-buffer spill threshold fraction.
func (c Config) SpillPct() float64 { return c.Get(SortSpillPercent) }

// ShuffleBufferPct returns the shuffle input buffer heap fraction.
func (c Config) ShuffleBufferPct() float64 { return c.Get(ShuffleInputBufferPct) }

// MergePct returns the in-memory merge trigger fraction.
func (c Config) MergePct() float64 { return c.Get(ShuffleMergePct) }

// MemoryLimitPct returns the single-segment in-memory fetch limit.
func (c Config) MemoryLimitPct() float64 { return c.Get(ShuffleMemoryLimitPct) }

// InmemThreshold returns the in-memory merge segment-count trigger.
func (c Config) InmemThreshold() int { return int(c.Get(MergeInmemThreshold)) }

// ReduceInputBufPct returns the reduce-phase retained-buffer fraction.
func (c Config) ReduceInputBufPct() float64 { return c.Get(ReduceInputBufferPct) }

// MapVcores returns vcores per map container.
func (c Config) MapVcores() int { return int(c.Get(MapCPUVcores)) }

// ReduceVcores returns vcores per reduce container.
func (c Config) ReduceVcores() int { return int(c.Get(ReduceCPUVcores)) }

// SortFactor returns the merge fan-in.
func (c Config) SortFactor() int { return int(c.Get(IOSortFactor)) }

// ParallelCopies returns the shuffle fetch concurrency.
func (c Config) ParallelCopies() int { return int(c.Get(ShuffleParallelCopies)) }

// HeapFraction is the fraction of container memory available as JVM
// heap (the rest is JVM and native overhead). Hadoop guides recommend
// ~0.8; the simulator uses the same constant.
const HeapFraction = 0.8

// MapHeapMB returns the usable map-task heap in MB.
func (c Config) MapHeapMB() float64 { return c.MapMemMB() * HeapFraction }

// ReduceHeapMB returns the usable reduce-task heap in MB.
func (c Config) ReduceHeapMB() float64 { return c.ReduceMemMB() * HeapFraction }
