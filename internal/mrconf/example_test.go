package mrconf_test

import (
	"fmt"

	"repro/internal/mrconf"
)

// Configurations are immutable values: With returns a modified copy,
// quantized to the parameter's granularity and clamped into range.
func ExampleConfig_With() {
	cfg := mrconf.Default().
		With(mrconf.IOSortMB, 317). // snaps to the 10 MB grid
		With(mrconf.MapCPUVcores, 2)
	fmt.Println(cfg.SortMB(), cfg.MapVcores())
	fmt.Println(cfg)
	// Output:
	// 320 2
	// mapreduce.map.cpu.vcores=2 mapreduce.task.io.sort.mb=320
}

// Repair pulls dependent parameters into agreement (§5 rules): the
// sort buffer cannot exceed the map heap, and the merge trigger cannot
// exceed the shuffle buffer.
func ExampleRepair() {
	bad := mrconf.Default().
		With(mrconf.MapMemoryMB, 512). // heap ≈ 410 MB
		With(mrconf.IOSortMB, 800)
	fmt.Println(mrconf.Validate(bad) != nil)
	fixed := mrconf.Repair(bad)
	fmt.Println(mrconf.Validate(fixed) == nil, fixed.SortMB() <= fixed.MapHeapMB())
	// Output:
	// true
	// true true
}

// The registry is the paper's Table 2.
func ExampleParams() {
	fmt.Println(len(mrconf.Params()), "tunable parameters")
	p := mrconf.MustLookup(mrconf.IOSortMB)
	fmt.Println(p.Default, p.Category, p.Scope)
	// Output:
	// 13 tunable parameters
	// 100 task-launch map
}
