package mrconf

import (
	"errors"
	"fmt"
)

// Dependency rules from the paper (§5): the search must respect
// relationships between parameters, not just per-parameter ranges.
//
//   - io.sort.mb must fit in the map task's heap;
//   - shuffle.merge.percent must not exceed shuffle.input.buffer.percent;
//   - reduce.input.buffer.percent must not exceed
//     shuffle.input.buffer.percent (it retains data in the same heap).

// ErrInvalid is wrapped by all validation errors.
var ErrInvalid = errors.New("invalid configuration")

// Validate checks per-parameter ranges and the cross-parameter
// dependency rules. It returns nil for a usable configuration.
func Validate(c Config) error {
	for _, p := range registry {
		v := c.Get(p.Name)
		if v < p.Min || v > p.Max {
			return fmt.Errorf("%w: %s=%g outside [%g, %g]", ErrInvalid, p.Name, v, p.Min, p.Max)
		}
	}
	if c.SortMB() > c.MapHeapMB() {
		return fmt.Errorf("%w: %s=%g exceeds map heap %.0f MB (%s=%g)",
			ErrInvalid, IOSortMB, c.SortMB(), c.MapHeapMB(), MapMemoryMB, c.MapMemMB())
	}
	if c.MergePct() > c.ShuffleBufferPct() {
		return fmt.Errorf("%w: %s=%g exceeds %s=%g",
			ErrInvalid, ShuffleMergePct, c.MergePct(), ShuffleInputBufferPct, c.ShuffleBufferPct())
	}
	if c.ReduceInputBufPct() > c.ShuffleBufferPct() {
		return fmt.Errorf("%w: %s=%g exceeds %s=%g",
			ErrInvalid, ReduceInputBufferPct, c.ReduceInputBufPct(), ShuffleInputBufferPct, c.ShuffleBufferPct())
	}
	return nil
}

// Repair returns the nearest valid configuration to c: values are
// clamped into range (With already quantizes) and dependent parameters
// are pulled down to satisfy the §5 rules. Sampling algorithms call
// this after generating a candidate so that every evaluated point is
// feasible, mirroring how MRONLINE adjusts sampled configurations
// "based on the task-related information".
func Repair(c Config) Config {
	out := c
	if maxSort := out.MapHeapMB(); out.SortMB() > maxSort {
		out = out.With(IOSortMB, maxSort)
		// Quantization rounds to nearest, which may land one step above
		// the heap bound; round down in that case.
		if out.SortMB() > maxSort {
			out = out.With(IOSortMB, out.SortMB()-MustLookup(IOSortMB).Step)
		}
	}
	if out.MergePct() > out.ShuffleBufferPct() {
		out = out.With(ShuffleMergePct, out.ShuffleBufferPct())
	}
	if out.ReduceInputBufPct() > out.ShuffleBufferPct() {
		out = out.With(ReduceInputBufferPct, out.ShuffleBufferPct())
	}
	return out
}
