package mrconf

import "testing"

// TestSnapshotMatchesConfig pins the compile step: every typed
// accessor on a snapshot must agree with the string-keyed lookup on
// the config it was compiled from, for defaults and for overrides.
func TestSnapshotMatchesConfig(t *testing.T) {
	cfgs := []Config{
		Default(),
		Default().With(IOSortMB, 412).With(MapMemoryMB, 1536).With(ShuffleParallelCopies, 10),
	}
	for _, cfg := range cfgs {
		s := cfg.Snapshot()
		for _, p := range Params() {
			id, ok := ID(p.Name)
			if !ok {
				t.Fatalf("no ParamID for %s", p.Name)
			}
			if got, want := s.Get(id), cfg.Get(p.Name); got != want {
				t.Errorf("snapshot %s = %g, config says %g", p.Name, got, want)
			}
		}
		if s.MapHeapMB() != cfg.MapHeapMB() {
			t.Errorf("MapHeapMB: snapshot %g, config %g", s.MapHeapMB(), cfg.MapHeapMB())
		}
		if s.ReduceHeapMB() != cfg.ReduceHeapMB() {
			t.Errorf("ReduceHeapMB: snapshot %g, config %g", s.ReduceHeapMB(), cfg.ReduceHeapMB())
		}
	}
}

// TestSnapshotReadsAllocationFree pins the whole point of the type:
// compiling a snapshot and reading it never touches the heap.
func TestSnapshotReadsAllocationFree(t *testing.T) {
	cfg := Default().With(IOSortMB, 412).With(MapMemoryMB, 1536)
	s := cfg.Snapshot()
	var sink float64
	if a := testing.AllocsPerRun(100, func() {
		sink += s.SortMB() + s.MapMemMB() + s.ReduceHeapMB() + s.Get(IDSortSpillPercent)
	}); a != 0 {
		t.Errorf("snapshot reads allocate %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		snap := cfg.Snapshot()
		sink += snap.SortMB()
	}); a != 0 {
		t.Errorf("Snapshot() allocates %v per run, want 0", a)
	}
	_ = sink
}

// BenchmarkConfigSnapshot measures the compile-once cost a task pays
// at setup, plus a representative read mix (what the inner loops do).
func BenchmarkConfigSnapshot(b *testing.B) {
	cfg := Default().With(IOSortMB, 412).With(MapMemoryMB, 1536).With(ShuffleParallelCopies, 10)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		s := cfg.Snapshot()
		sink += s.SortMB() + s.SpillPct() + s.MapHeapMB() + float64(s.SortFactor())
	}
	_ = sink
}
