package mrconf

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTable2Defaults pins the registry to the paper's Table 2.
func TestTable2Defaults(t *testing.T) {
	want := map[string]float64{
		MapMemoryMB:           1024,
		ReduceMemoryMB:        1024,
		IOSortMB:              100,
		SortSpillPercent:      0.80,
		ShuffleInputBufferPct: 0.70,
		ShuffleMergePct:       0.66,
		ShuffleMemoryLimitPct: 0.25,
		MergeInmemThreshold:   1000,
		ReduceInputBufferPct:  0.0,
		MapCPUVcores:          1,
		ReduceCPUVcores:       1,
		IOSortFactor:          10,
		ShuffleParallelCopies: 5,
	}
	if len(Params()) != len(want) {
		t.Fatalf("registry has %d params, Table 2 has %d", len(Params()), len(want))
	}
	c := Default()
	for name, def := range want {
		if got := c.Get(name); got != def {
			t.Errorf("default %s = %g, want %g", name, got, def)
		}
	}
}

func TestScopePartition(t *testing.T) {
	m := ParamsByScope(ScopeMap)
	r := ParamsByScope(ScopeReduce)
	if len(m)+len(r) != len(Params()) {
		t.Fatalf("scopes do not partition: %d + %d != %d", len(m), len(r), len(Params()))
	}
	if len(m) != 5 {
		t.Errorf("map-scope params = %d, want 5", len(m))
	}
	if len(r) != 8 {
		t.Errorf("reduce-scope params = %d, want 8", len(r))
	}
}

func TestWithQuantizesAndClamps(t *testing.T) {
	c := Default().With(IOSortMB, 1e9)
	if got := c.SortMB(); got != 1600 {
		t.Errorf("clamp high: io.sort.mb = %g, want 1600", got)
	}
	c = Default().With(IOSortMB, -5)
	if got := c.SortMB(); got != 50 {
		t.Errorf("clamp low: io.sort.mb = %g, want 50", got)
	}
	c = Default().With(SortSpillPercent, 0.834)
	if got := c.SpillPct(); got != 0.83 {
		t.Errorf("quantize: spill pct = %g, want 0.83", got)
	}
	c = Default().With(MapCPUVcores, 2.7)
	if got := c.MapVcores(); got != 3 {
		t.Errorf("quantize vcores = %d, want 3", got)
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	base := Default().With(IOSortMB, 200)
	derived := base.With(IOSortMB, 400)
	if base.SortMB() != 200 {
		t.Fatalf("With mutated the receiver: %g", base.SortMB())
	}
	if derived.SortMB() != 400 {
		t.Fatalf("derived config wrong: %g", derived.SortMB())
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get of unknown parameter did not panic")
		}
	}()
	//mrlint:ignore conf-key-literal deliberately unknown key: this test asserts the panic
	Default().Get("mapreduce.no.such.parameter")
}

func TestEqualAndMerge(t *testing.T) {
	a := Default().With(IOSortMB, 200)
	b := Default().With(IOSortMB, 200)
	if !a.Equal(b) {
		t.Fatal("identical configs not Equal")
	}
	c := b.With(MapCPUVcores, 2)
	if a.Equal(c) {
		t.Fatal("different configs Equal")
	}
	merged := a.Merge(Default().With(MapCPUVcores, 2))
	if !merged.Equal(c) {
		t.Fatal("Merge result wrong")
	}
}

func TestDefaultOverrideRemoved(t *testing.T) {
	c := Default().With(IOSortMB, 200).With(IOSortMB, 100)
	if len(c.Overrides()) != 0 {
		t.Fatalf("setting a param back to default should clear the override, got %v", c.Overrides())
	}
	if c.String() != "defaults" {
		t.Fatalf("String() = %q, want \"defaults\"", c.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Default().With(IOSortMB, 400).With(ReduceCPUVcores, 2)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back) {
		t.Fatalf("round trip changed config: %s vs %s", c, back)
	}
}

func TestJSONUnknownKey(t *testing.T) {
	var c Config
	if err := json.Unmarshal([]byte(`{"bogus.key": 1}`), &c); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestValidateDefault(t *testing.T) {
	if err := Validate(Default()); err != nil {
		t.Fatalf("default configuration invalid: %v", err)
	}
}

func TestValidateSortBufferVsHeap(t *testing.T) {
	// 1024 MB container -> 819 MB heap; io.sort.mb 1600 exceeds it.
	c := Default().With(IOSortMB, 1600)
	if err := Validate(c); err == nil {
		t.Fatal("io.sort.mb > heap accepted")
	}
	fixed := Repair(c)
	if err := Validate(fixed); err != nil {
		t.Fatalf("Repair did not fix sort buffer: %v", err)
	}
	if fixed.SortMB() > fixed.MapHeapMB() {
		t.Fatalf("repaired sort mb %g still exceeds heap %g", fixed.SortMB(), fixed.MapHeapMB())
	}
}

func TestValidateMergeVsInputBuffer(t *testing.T) {
	c := Default().With(ShuffleMergePct, 0.9).With(ShuffleInputBufferPct, 0.5)
	if err := Validate(c); err == nil {
		t.Fatal("merge.percent > input.buffer.percent accepted")
	}
	if err := Validate(Repair(c)); err != nil {
		t.Fatalf("Repair did not fix merge percent: %v", err)
	}
}

func TestValidateReduceInputBuffer(t *testing.T) {
	c := Default().With(ReduceInputBufferPct, 0.9).With(ShuffleInputBufferPct, 0.5)
	if err := Validate(c); err == nil {
		t.Fatal("input.buffer.percent > shuffle buffer accepted")
	}
	if err := Validate(Repair(c)); err != nil {
		t.Fatalf("Repair failed: %v", err)
	}
}

func TestQuantizeRespectsStep(t *testing.T) {
	p := MustLookup(IOSortFactor) // step 5, min 5
	if got := p.Quantize(12); got != 10 {
		t.Errorf("Quantize(12) = %g, want 10", got)
	}
	if got := p.Quantize(13); got != 15 {
		t.Errorf("Quantize(13) = %g, want 15", got)
	}
}

// Property: Repair always yields a Validate-clean config, for any
// random assignment within per-parameter ranges.
func TestRepairAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Default()
		for _, p := range Params() {
			v := p.Min + rng.Float64()*(p.Max-p.Min)
			c = c.With(p.Name, v)
		}
		return Validate(Repair(c)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: With is idempotent — setting the same value twice yields an
// Equal config, and Get returns what was set (post-quantization).
func TestWithGetProperty(t *testing.T) {
	params := Params()
	f := func(idx uint8, raw float64) bool {
		p := params[int(idx)%len(params)]
		if raw != raw { // NaN
			return true
		}
		if raw > 1e12 || raw < -1e12 {
			return true
		}
		c1 := Default().With(p.Name, raw)
		c2 := c1.With(p.Name, raw)
		return c1.Equal(c2) && c1.Get(p.Name) == p.Quantize(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromMap(t *testing.T) {
	c := FromMap(map[string]float64{IOSortMB: 200, MapCPUVcores: 2})
	if c.SortMB() != 200 || c.MapVcores() != 2 {
		t.Fatalf("FromMap lost values: %s", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromMap with unknown key did not panic")
		}
	}()
	FromMap(map[string]float64{"bogus": 1})
}

func TestStringStableOrder(t *testing.T) {
	c := Default().With(ReduceCPUVcores, 2).With(IOSortMB, 200).With(MapCPUVcores, 3)
	want := "mapreduce.map.cpu.vcores=3 mapreduce.reduce.cpu.vcores=2 mapreduce.task.io.sort.mb=200"
	if c.String() != want {
		t.Fatalf("String() = %q, want %q", c.String(), want)
	}
}

func TestTypedAccessorsRoundTrip(t *testing.T) {
	c := Default().
		With(ReduceMemoryMB, 2048).
		With(ShuffleMemoryLimitPct, 0.4).
		With(MergeInmemThreshold, 500).
		With(ReduceCPUVcores, 3).
		With(IOSortFactor, 25).
		With(ShuffleParallelCopies, 15)
	if c.ReduceMemMB() != 2048 {
		t.Errorf("ReduceMemMB = %v", c.ReduceMemMB())
	}
	if c.MemoryLimitPct() != 0.4 {
		t.Errorf("MemoryLimitPct = %v", c.MemoryLimitPct())
	}
	if c.InmemThreshold() != 500 {
		t.Errorf("InmemThreshold = %v", c.InmemThreshold())
	}
	if c.ReduceVcores() != 3 {
		t.Errorf("ReduceVcores = %v", c.ReduceVcores())
	}
	if c.SortFactor() != 25 {
		t.Errorf("SortFactor = %v", c.SortFactor())
	}
	if c.ParallelCopies() != 15 {
		t.Errorf("ParallelCopies = %v", c.ParallelCopies())
	}
	if got := c.ReduceHeapMB(); got != 2048*HeapFraction {
		t.Errorf("ReduceHeapMB = %v", got)
	}
}

func TestCategoryAndScopeStrings(t *testing.T) {
	if CategoryStatic.String() != "static" ||
		CategoryTaskLaunch.String() != "task-launch" ||
		CategoryLive.String() != "live" {
		t.Fatal("Category strings broken")
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category has empty string")
	}
	if ScopeMap.String() != "map" || ScopeReduce.String() != "reduce" {
		t.Fatal("Scope strings broken")
	}
	if Scope(99).String() == "" {
		t.Fatal("unknown scope has empty string")
	}
}

func TestOverridesIsolated(t *testing.T) {
	c := Default().With(IOSortMB, 200)
	ov := c.Overrides()
	ov[IOSortMB] = 999
	if c.SortMB() != 200 {
		t.Fatal("Overrides exposed internal map")
	}
}

// FuzzConfigJSON exercises the JSON decoder with arbitrary inputs: it
// must never panic, and any accepted config must round-trip.
func FuzzConfigJSON(f *testing.F) {
	f.Add(`{"mapreduce.task.io.sort.mb": 200}`)
	f.Add(`{}`)
	f.Add(`{"mapreduce.map.cpu.vcores": 1e308}`)
	f.Fuzz(func(t *testing.T, data string) {
		var c Config
		if err := json.Unmarshal([]byte(data), &c); err != nil {
			return
		}
		out, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("accepted config failed to marshal: %v", err)
		}
		var back Config
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !c.Equal(back) {
			t.Fatalf("round trip changed config: %s vs %s", c, back)
		}
	})
}
