package mrconf

// Snapshot is a compiled Config: the full parameter assignment laid out
// as a dense array indexed by ParamID. It is built once per job or task
// setup (Config.Snapshot) so that the per-event hot path — sort-buffer
// checks, shuffle thresholds, heap math — costs an index load instead
// of a string-hash map probe. The string-keyed Config API remains the
// interface at the edges (tuner, JSON, tests); a Snapshot is a frozen
// read-only view and never flows back into a Config.
type Snapshot struct {
	v [NumParams]float64
}

// Snapshot compiles the full effective assignment of c.
func (c Config) Snapshot() Snapshot {
	var s Snapshot
	for i := range registry {
		s.v[i] = registry[i].Default
	}
	for name, v := range c.overrides {
		s.v[idByName[name]] = v
	}
	return s
}

// Get returns the value of a parameter by dense index.
func (s *Snapshot) Get(id ParamID) float64 { return s.v[id] }

// Typed accessors mirroring Config's, as index loads.

// MapMemMB returns the map container memory in MB.
func (s *Snapshot) MapMemMB() float64 { return s.v[IDMapMemoryMB] }

// ReduceMemMB returns the reduce container memory in MB.
func (s *Snapshot) ReduceMemMB() float64 { return s.v[IDReduceMemoryMB] }

// SortMB returns the map-side sort buffer size in MB.
func (s *Snapshot) SortMB() float64 { return s.v[IDIOSortMB] }

// SpillPct returns the sort-buffer spill threshold fraction.
func (s *Snapshot) SpillPct() float64 { return s.v[IDSortSpillPercent] }

// ShuffleBufferPct returns the shuffle input buffer heap fraction.
func (s *Snapshot) ShuffleBufferPct() float64 { return s.v[IDShuffleInputBufferPct] }

// MergePct returns the in-memory merge trigger fraction.
func (s *Snapshot) MergePct() float64 { return s.v[IDShuffleMergePct] }

// MemoryLimitPct returns the single-segment in-memory fetch limit.
func (s *Snapshot) MemoryLimitPct() float64 { return s.v[IDShuffleMemoryLimitPct] }

// InmemThreshold returns the in-memory merge segment-count trigger.
func (s *Snapshot) InmemThreshold() int { return int(s.v[IDMergeInmemThreshold]) }

// ReduceInputBufPct returns the reduce-phase retained-buffer fraction.
func (s *Snapshot) ReduceInputBufPct() float64 { return s.v[IDReduceInputBufferPct] }

// MapVcores returns vcores per map container.
func (s *Snapshot) MapVcores() int { return int(s.v[IDMapCPUVcores]) }

// ReduceVcores returns vcores per reduce container.
func (s *Snapshot) ReduceVcores() int { return int(s.v[IDReduceCPUVcores]) }

// SortFactor returns the merge fan-in.
func (s *Snapshot) SortFactor() int { return int(s.v[IDIOSortFactor]) }

// ParallelCopies returns the shuffle fetch concurrency.
func (s *Snapshot) ParallelCopies() int { return int(s.v[IDShuffleParallelCopies]) }

// MapHeapMB returns the usable map-task heap in MB.
func (s *Snapshot) MapHeapMB() float64 { return s.v[IDMapMemoryMB] * HeapFraction }

// ReduceHeapMB returns the usable reduce-task heap in MB.
func (s *Snapshot) ReduceHeapMB() float64 { return s.v[IDReduceMemoryMB] * HeapFraction }
