// Package mrconf defines the MapReduce configuration parameter space
// that MRONLINE tunes: the 13 key parameters of the paper's Table 2,
// their defaults, ranges, tuning categories (§2.2), and the
// cross-parameter dependency rules from §5.
package mrconf

import (
	"fmt"
	"math"
)

// Category classifies when a changed parameter value can take effect
// (paper §2.2).
type Category int

const (
	// CategoryStatic parameters are fixed once the job starts (number
	// of mappers/reducers, slow start). MRONLINE does not tune these.
	CategoryStatic Category = iota + 1
	// CategoryTaskLaunch parameters apply to tasks launched after the
	// change (container sizes, buffer sizes).
	CategoryTaskLaunch
	// CategoryLive parameters take effect immediately, even for running
	// tasks (spill thresholds).
	CategoryLive
)

func (c Category) String() string {
	switch c {
	case CategoryStatic:
		return "static"
	case CategoryTaskLaunch:
		return "task-launch"
	case CategoryLive:
		return "live"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Scope says which task type a parameter configures, which determines
// the search subspace (map-task costs drive map-scope parameters,
// reduce-task costs drive reduce-scope ones).
type Scope int

const (
	ScopeMap Scope = iota + 1
	ScopeReduce
)

func (s Scope) String() string {
	switch s {
	case ScopeMap:
		return "map"
	case ScopeReduce:
		return "reduce"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Param describes one tunable parameter.
type Param struct {
	Name     string
	Default  float64
	Min, Max float64
	// Step is the value granularity: samples are rounded to multiples
	// of Step (1 for integers, 0.01 for percentages, 64 for MB sizes).
	Step     float64
	Category Category
	Scope    Scope
	Desc     string
}

// Quantize rounds v to the parameter's granularity and clamps it into
// [Min, Max].
func (p Param) Quantize(v float64) float64 {
	if p.Step > 0 {
		steps := math.Round((v - p.Min) / p.Step)
		v = p.Min + steps*p.Step
		// Snap away binary-float dust (0.8300000000000001 -> 0.83) so
		// that grid-aligned values compare equal across parameters.
		v = math.Round(v*1e9) / 1e9
	}
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	return v
}

// Canonical parameter names (Hadoop property keys, as in Table 2).
const (
	MapMemoryMB            = "mapreduce.map.memory.mb"
	ReduceMemoryMB         = "mapreduce.reduce.memory.mb"
	IOSortMB               = "mapreduce.task.io.sort.mb"
	SortSpillPercent       = "mapreduce.map.sort.spill.percent"
	ShuffleInputBufferPct  = "mapreduce.reduce.shuffle.input.buffer.percent"
	ShuffleMergePct        = "mapreduce.reduce.shuffle.merge.percent"
	ShuffleMemoryLimitPct  = "mapreduce.reduce.shuffle.memory.limit.percent"
	MergeInmemThreshold    = "mapreduce.reduce.merge.inmem.threshold"
	ReduceInputBufferPct   = "mapreduce.reduce.input.buffer.percent"
	MapCPUVcores           = "mapreduce.map.cpu.vcores"
	ReduceCPUVcores        = "mapreduce.reduce.cpu.vcores"
	IOSortFactor           = "mapreduce.task.io.sort.factor"
	ShuffleParallelCopies  = "mapreduce.reduce.shuffle.parallelcopies"
	ReduceSlowstartPercent = "mapreduce.job.reduce.slowstart.completedmaps" // category 1, not tuned
)

// ParamID is a dense index into the registry, used by Snapshot for
// array-indexed (rather than string-hashed) parameter access on the
// simulation hot path.
type ParamID int

// Registry indices, in registry order. These are fixed by the Table 2
// ordering; an init-time assertion below keeps them in sync.
const (
	IDMapMemoryMB ParamID = iota
	IDReduceMemoryMB
	IDIOSortMB
	IDSortSpillPercent
	IDShuffleInputBufferPct
	IDShuffleMergePct
	IDShuffleMemoryLimitPct
	IDMergeInmemThreshold
	IDReduceInputBufferPct
	IDMapCPUVcores
	IDReduceCPUVcores
	IDIOSortFactor
	IDShuffleParallelCopies

	// NumParams is the registry size; Snapshot's backing array length.
	NumParams
)

// registry holds the Table 2 parameters in a stable order.
var registry = []Param{
	{MapMemoryMB, 1024, 512, 4096, 64, CategoryTaskLaunch, ScopeMap,
		"container memory for map tasks (MB)"},
	{ReduceMemoryMB, 1024, 512, 4096, 64, CategoryTaskLaunch, ScopeReduce,
		"container memory for reduce tasks (MB)"},
	{IOSortMB, 100, 50, 1600, 10, CategoryTaskLaunch, ScopeMap,
		"map-side sort buffer (MB)"},
	{SortSpillPercent, 0.80, 0.50, 0.99, 0.01, CategoryLive, ScopeMap,
		"sort-buffer fill fraction that triggers a spill"},
	{ShuffleInputBufferPct, 0.70, 0.20, 0.90, 0.01, CategoryTaskLaunch, ScopeReduce,
		"fraction of reduce heap used as shuffle buffer"},
	{ShuffleMergePct, 0.66, 0.20, 0.90, 0.01, CategoryTaskLaunch, ScopeReduce,
		"shuffle-buffer fill fraction that triggers in-memory merge"},
	{ShuffleMemoryLimitPct, 0.25, 0.05, 0.50, 0.01, CategoryTaskLaunch, ScopeReduce,
		"max single-segment fraction of the shuffle buffer fetched to memory"},
	{MergeInmemThreshold, 1000, 0, 10000, 100, CategoryLive, ScopeReduce,
		"in-memory segment count that triggers merge (0 disables)"},
	{ReduceInputBufferPct, 0.0, 0.0, 0.90, 0.01, CategoryTaskLaunch, ScopeReduce,
		"fraction of reduce heap that may retain map outputs during reduce"},
	{MapCPUVcores, 1, 1, 8, 1, CategoryTaskLaunch, ScopeMap,
		"vcores per map container"},
	{ReduceCPUVcores, 1, 1, 8, 1, CategoryTaskLaunch, ScopeReduce,
		"vcores per reduce container"},
	{IOSortFactor, 10, 5, 100, 5, CategoryTaskLaunch, ScopeMap,
		"max segments merged at once (disk-to-disk merge fan-in)"},
	{ShuffleParallelCopies, 5, 5, 50, 5, CategoryTaskLaunch, ScopeReduce,
		"concurrent shuffle fetch threads per reducer"},
}

var byName = func() map[string]Param {
	m := make(map[string]Param, len(registry))
	for _, p := range registry {
		m[p.Name] = p
	}
	return m
}()

// idByName maps parameter names to their dense registry index.
var idByName = func() map[string]ParamID {
	m := make(map[string]ParamID, len(registry))
	for i, p := range registry {
		m[p.Name] = ParamID(i)
	}
	return m
}()

func init() {
	// The ParamID constants must mirror the registry ordering exactly;
	// a drift here would silently misroute Snapshot reads.
	if len(registry) != int(NumParams) {
		panic(fmt.Sprintf("mrconf: registry has %d params, NumParams is %d",
			len(registry), int(NumParams)))
	}
	want := []struct {
		id   ParamID
		name string
	}{
		{IDMapMemoryMB, MapMemoryMB},
		{IDReduceMemoryMB, ReduceMemoryMB},
		{IDIOSortMB, IOSortMB},
		{IDSortSpillPercent, SortSpillPercent},
		{IDShuffleInputBufferPct, ShuffleInputBufferPct},
		{IDShuffleMergePct, ShuffleMergePct},
		{IDShuffleMemoryLimitPct, ShuffleMemoryLimitPct},
		{IDMergeInmemThreshold, MergeInmemThreshold},
		{IDReduceInputBufferPct, ReduceInputBufferPct},
		{IDMapCPUVcores, MapCPUVcores},
		{IDReduceCPUVcores, ReduceCPUVcores},
		{IDIOSortFactor, IOSortFactor},
		{IDShuffleParallelCopies, ShuffleParallelCopies},
	}
	for _, w := range want {
		if registry[w.id].Name != w.name {
			panic(fmt.Sprintf("mrconf: ParamID %d expects %q, registry has %q",
				int(w.id), w.name, registry[w.id].Name))
		}
	}
}

// ID returns the dense registry index for name.
func ID(name string) (ParamID, bool) {
	id, ok := idByName[name]
	return id, ok
}

// Params returns all tunable parameters in registry order.
func Params() []Param {
	out := make([]Param, len(registry))
	copy(out, registry)
	return out
}

// ParamsByScope returns the parameters for one search subspace, in
// registry order.
func ParamsByScope(s Scope) []Param {
	var out []Param
	for _, p := range registry {
		if p.Scope == s {
			out = append(out, p)
		}
	}
	return out
}

// Lookup returns the parameter descriptor for name.
func Lookup(name string) (Param, bool) {
	p, ok := byName[name]
	return p, ok
}

// MustLookup is Lookup for known-good names; it panics on a typo.
func MustLookup(name string) Param {
	p, ok := byName[name]
	if !ok {
		panic(fmt.Sprintf("mrconf: unknown parameter %q", name))
	}
	return p
}
