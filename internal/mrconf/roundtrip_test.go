package mrconf

import "testing"

// TestRegistryRoundTrip pushes every registered parameter through
// FromMap -> Overrides -> FromMap and asserts the assignment survives
// unchanged. This is the source-of-truth guarantee behind mrlint's
// conf-key-literal rule: every constant in params.go names a real,
// fully round-trippable parameter.
func TestRegistryRoundTrip(t *testing.T) {
	for _, p := range Params() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			// A non-default value inside the range, snapped to the
			// parameter's own grid so quantization is lossless.
			v := p.Quantize(p.Min + (p.Max-p.Min)/2)
			if v == p.Default {
				v = p.Quantize(p.Min)
				if v == p.Default {
					v = p.Quantize(p.Max)
				}
			}
			if v == p.Default {
				t.Fatalf("%s: cannot pick a non-default value in [%g,%g]", p.Name, p.Min, p.Max)
			}

			c1 := FromMap(map[string]float64{p.Name: v})
			if got := c1.Get(p.Name); got != v {
				t.Fatalf("FromMap lost value: got %g, want %g", got, v)
			}
			over := c1.Overrides()
			if len(over) != 1 || over[p.Name] != v {
				t.Fatalf("Overrides = %v, want {%s: %g}", over, p.Name, v)
			}
			c2 := FromMap(over)
			if !c1.Equal(c2) {
				t.Fatalf("round-trip changed config: %s vs %s", c1, c2)
			}
		})
	}
}

// TestValidateAcceptsAllDefaults asserts the registry's own defaults
// form a valid configuration — individually and all together.
func TestValidateAcceptsAllDefaults(t *testing.T) {
	if err := Validate(Default()); err != nil {
		t.Fatalf("Validate(Default()) = %v", err)
	}
	// Explicitly materialize every default through FromMap, too: the
	// identity that "defaults written out" == "defaults implied".
	m := make(map[string]float64, len(Params()))
	for _, p := range Params() {
		m[p.Name] = p.Default
	}
	c := FromMap(m)
	if err := Validate(c); err != nil {
		t.Fatalf("Validate(explicit defaults) = %v", err)
	}
	if !c.Equal(Default()) {
		t.Fatal("explicit defaults differ from Default()")
	}
	if n := len(c.Overrides()); n != 0 {
		t.Fatalf("explicit defaults produced %d overrides, want 0", n)
	}
}

// TestRoundTripAllAtOnce round-trips a config overriding every
// parameter simultaneously, under Validate+Repair so cross-parameter
// rules hold.
func TestRoundTripAllAtOnce(t *testing.T) {
	c := Default()
	for _, p := range Params() {
		v := p.Quantize(p.Min + (p.Max-p.Min)/3)
		c = c.With(p.Name, v)
	}
	c = Repair(c)
	if err := Validate(c); err != nil {
		t.Fatalf("repaired config still invalid: %v", err)
	}
	back := FromMap(c.Overrides())
	if !c.Equal(back) {
		t.Fatalf("bulk round-trip changed config:\n  %s\nvs\n  %s", c, back)
	}
}
