package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ConfKeyAnalyzer implements the conf-key-literal rule: string literals
// passed to mrconf.Config.Get / Config.With must match a canonical
// parameter-name constant declared in internal/mrconf/params.go.
// Config.Get panics on unknown names, but only at runtime and only on
// the paths a test happens to exercise; the linter catches the typo at
// review time. Passing the named constant (mrconf.IOSortMB, ...) is the
// preferred style and a literal that exactly matches a registered name
// is tolerated.
var ConfKeyAnalyzer = &Analyzer{
	Name: "conf-key-literal",
	Doc:  "flag string literals passed to mrconf Config.Get/With that match no registered parameter",
	Run:  runConfKey,
}

// confKeyMethods are the Config methods whose first argument is a
// parameter name.
var confKeyMethods = map[string]bool{"Get": true, "With": true}

func runConfKey(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !confKeyMethods[sel.Sel.Name] {
				return true
			}
			fn := p.funcFor(sel)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !recvIsMrconfConfig(sig) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			key, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if p.ConfKeys[key] {
				return true
			}
			p.Report("conf-key-literal", lit.Pos(),
				"%q is not a parameter constant declared in internal/mrconf/params.go; use the named constant (typo?)", key)
			return true
		})
	}
}

// recvIsMrconfConfig reports whether the method receiver is the Config
// type of an internal/mrconf package (suffix-matched so test fixtures
// qualify too).
func recvIsMrconfConfig(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Config" && pathHasSuffix(named.Obj().Pkg().Path(), "internal/mrconf")
}
