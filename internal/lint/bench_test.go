package lint

import "testing"

// BenchmarkLintModule measures the full whole-module lint: load,
// typecheck, per-package rules, and the interprocedural taint fixpoint.
// CI runs the same work through cmd/mrlint with a warn-only 10s budget;
// this benchmark is the tracked number behind that budget.
func BenchmarkLintModule(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		mod, err := LoadModule(root)
		if err != nil {
			b.Fatal(err)
		}
		if findings := mod.Run(All()); len(findings) != 0 {
			b.Fatalf("repository not clean: %v", findings)
		}
	}
}
