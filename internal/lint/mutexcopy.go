package lint

import (
	"go/ast"
	"go/types"
)

// copySensitiveSyncTypes are the sync primitives whose value semantics
// break when copied: a copied Mutex is a different lock, a copied
// WaitGroup a different counter. The experiments fan-out worker pool
// relies on the one true WaitGroup being shared.
var copySensitiveSyncTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Pool":      true,
	"Map":       true,
}

// MutexCopyAnalyzer implements the mutex-copy rule: functions (and
// methods, via their receiver) must not take sync.Mutex, sync.WaitGroup
// and friends by value.
var MutexCopyAnalyzer = &Analyzer{
	Name: "mutex-copy",
	Doc:  "flag parameters and receivers that take sync.Mutex/sync.WaitGroup etc. by value",
	Run:  runMutexCopy,
}

func runMutexCopy(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var recv *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, recv = fn.Type, fn.Recv
			case *ast.FuncLit:
				ftype = fn.Type
			default:
				return true
			}
			checkFieldList(p, recv, "receiver")
			checkFieldList(p, ftype.Params, "parameter")
			return true
		})
	}
}

func checkFieldList(p *Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		name := syncValueTypeName(t)
		if name == "" {
			continue
		}
		p.Report("mutex-copy", field.Pos(),
			"sync.%s %s passed by value copies the lock/counter state; pass *sync.%s", name, kind, name)
	}
}

// syncValueTypeName returns the sync type name when t is one of the
// copy-sensitive sync types by value (not behind a pointer), else "".
func syncValueTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || !copySensitiveSyncTypes[obj.Name()] {
		return ""
	}
	return obj.Name()
}
