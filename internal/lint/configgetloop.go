package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ConfigGetLoopAnalyzer implements the config-get-in-loop rule: inside
// the hot scheduling packages (internal/mapreduce, internal/yarn,
// internal/cluster) no loop body may call mrconf.Config methods —
// Get and the named accessors resolve string-keyed override maps on
// every call, and profiles showed those lookups dominating the per-tick
// cost. The fix is to hoist one cfg.Snapshot() above the loop and read
// the compiled snapshot (array-indexed, allocation-free) inside it;
// the Snapshot call itself is therefore exempt.
var ConfigGetLoopAnalyzer = &Analyzer{
	Name: "config-get-in-loop",
	Doc:  "flag mrconf Config accessor calls inside loops in hot packages; hoist a Snapshot instead",
	Run:  runConfigGetLoop,
}

// configLoopHotPkgs are the package-path suffixes where per-iteration
// Config lookups are a measured tax (suffix-matched so test fixtures
// qualify too).
var configLoopHotPkgs = []string{
	"internal/mapreduce",
	"internal/yarn",
	"internal/cluster",
}

func runConfigGetLoop(p *Pass) {
	hot := false
	for _, suffix := range configLoopHotPkgs {
		if pathHasSuffix(p.Pkg.Path(), suffix) {
			hot = true
			break
		}
	}
	if !hot {
		return
	}
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		// Pass 1: collect every loop body span in the file.
		type span struct{ lo, hi token.Pos }
		var loops []span
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, span{s.Body.Pos(), s.Body.End()})
			case *ast.RangeStmt:
				loops = append(loops, span{s.Body.Pos(), s.Body.End()})
			}
			return true
		})
		if len(loops) == 0 {
			continue
		}
		// Pass 2: flag Config method calls positioned inside any span.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := p.funcFor(sel)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !recvIsMrconfConfig(sig) {
				return true
			}
			// Snapshot is the sanctioned way to pay the lookup cost once;
			// calling it per outer item (e.g. per task in a dispatch loop)
			// is exactly the hoist the rule asks for.
			if fn.Name() == "Snapshot" {
				return true
			}
			inLoop := false
			for _, l := range loops {
				if call.Pos() >= l.lo && call.Pos() < l.hi {
					inLoop = true
					break
				}
			}
			if !inLoop {
				return true
			}
			p.Report("config-get-in-loop", call.Pos(),
				"mrconf.Config.%s called inside a loop in a hot package; hoist cfg.Snapshot() out of the loop and read the snapshot", fn.Name())
			return true
		})
	}
}
