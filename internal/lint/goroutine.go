package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineInSimAnalyzer implements the no-goroutine-in-sim rule. The
// discrete-event engine is single-threaded by design: every state
// change happens inside an event callback, and same-timestamp events
// fire in scheduling order. That invariant is what makes runs
// bit-reproducible, and it is exactly what the sharded engine of
// ROADMAP item 2 must preserve *per shard*. A goroutine, channel, or
// ad-hoc sync.* coordination inside a simulated package introduces OS
// scheduler ordering into the model — irreproducible by construction.
//
// The rule forbids `go` statements, channel types and operations
// (send, receive, select, close, range-over-channel), and any use of
// sync / sync/atomic inside the simulated packages. The sanctioned
// concurrency lives in internal/experiments (the fan-out worker pool
// that runs *whole simulations* in parallel), which is not a simulated
// package and is therefore exempt. Test files are also exempt: tests
// may legitimately exercise the engine from multiple goroutines to
// prove it detects misuse.
var GoroutineInSimAnalyzer = &Analyzer{
	Name: "no-goroutine-in-sim",
	Doc:  "forbid goroutines, channels, and sync primitives inside simulated packages (single-threaded event-loop invariant)",
	Run:  runGoroutineInSim,
}

// simulatedPkgs are the import-path suffixes of the packages whose
// state may only change inside sim event callbacks.
var simulatedPkgs = []string{
	"internal/sim",
	"internal/cluster",
	"internal/hdfs",
	"internal/yarn",
	"internal/mapreduce",
	"internal/faults",
	"internal/tuner",
}

func runGoroutineInSim(p *Pass) {
	simulated := false
	for _, suffix := range simulatedPkgs {
		if pathHasSuffix(p.Pkg.Path(), suffix) {
			simulated = true
			break
		}
	}
	if !simulated {
		return
	}
	const rule = "no-goroutine-in-sim"
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				p.Report(rule, x.Pos(),
					"go statement in a simulated package breaks the single-threaded event-loop invariant; schedule a sim event instead")
			case *ast.SendStmt:
				p.Report(rule, x.Pos(),
					"channel send in a simulated package introduces OS-scheduler ordering; use sim events")
			case *ast.UnaryExpr:
				if x.Op.String() == "<-" {
					p.Report(rule, x.Pos(),
						"channel receive in a simulated package introduces OS-scheduler ordering; use sim events")
				}
			case *ast.SelectStmt:
				p.Report(rule, x.Pos(),
					"select in a simulated package introduces nondeterministic case choice; use sim events")
			case *ast.ChanType:
				p.Report(rule, x.Pos(),
					"channel type in a simulated package invites cross-goroutine ordering; simulated state must change only inside event callbacks")
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(x.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						p.Report(rule, x.Pos(),
							"range over channel in a simulated package introduces OS-scheduler ordering; use sim events")
					}
				}
			case *ast.SelectorExpr:
				if id, ok := x.X.(*ast.Ident); ok {
					if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
						path := pn.Imported().Path()
						if path == "sync" || path == "sync/atomic" {
							p.Report(rule, x.Pos(),
								"%s.%s in a simulated package is ad-hoc cross-goroutine ordering; the event loop is the only scheduler",
								pn.Imported().Name(), x.Sel.Name)
						}
					}
				}
			}
			return true
		})
	}
}
