package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatMapAccumAnalyzer implements the float-map-accum rule.
// Floating-point addition and multiplication are not associative:
// summing the values of a map in iteration order produces different
// low-order bits on different runs, which breaks bit-reproducibility
// even though "just summing" looks order-insensitive (it is — over
// ints). This was a known false negative of ordered-map-iter, whose
// aggregation escape deliberately tolerates accumulation.
//
// Flagged: a compound assignment (+=, -=, *=, /=) or x = x op ...
// whose target is floating-point, inside the body of a range over a
// map, when the accumulated expression depends on the iteration
// variables (accumulating a loop-invariant adds the same value each
// round in every order, which is exact). The fix is to iterate sorted
// keys, or to accumulate in integers when the values are integral.
var FloatMapAccumAnalyzer = &Analyzer{
	Name: "float-map-accum",
	Doc:  "flag floating-point accumulation inside map-range loops (FP non-associativity makes it order-dependent)",
	Run:  runFloatMapAccum,
}

func runFloatMapAccum(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkFloatAccum(p, rs)
			return true
		})
	}
}

// accumOps are the compound-assignment operators whose float semantics
// are order-dependent.
var accumOps = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD,
	token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL,
	token.QUO_ASSIGN: token.QUO,
}

func checkFloatAccum(p *Pass, rs *ast.RangeStmt) {
	iterVars := rangeIterObjects(p, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if x != rs {
				// A nested map range gets its own visit; its body's
				// accumulations belong to the inner (also nondet) loop.
				if t := p.Info.TypeOf(x.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
			return true
		case *ast.AssignStmt:
			checkAccumAssign(p, rs, iterVars, x)
			return true
		}
		return true
	})
}

func checkAccumAssign(p *Pass, rs *ast.RangeStmt, iterVars map[types.Object]bool, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, rhs := as.Lhs[0], as.Rhs[0]
	if !isFloatExpr(p, lhs) {
		return
	}
	var accumulated ast.Expr // the per-iteration contribution
	if _, ok := accumOps[as.Tok]; ok {
		accumulated = rhs
	} else if as.Tok == token.ASSIGN {
		// x = x op expr (or x = expr op x).
		bin, ok := rhs.(*ast.BinaryExpr)
		if !ok {
			return
		}
		if _, isAccum := map[token.Token]bool{token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true}[bin.Op]; !isAccum {
			return
		}
		target := rootIdentObj(p, lhs)
		if target == nil {
			return
		}
		switch {
		case rootIdentObj(p, bin.X) == target:
			accumulated = bin.Y
		case rootIdentObj(p, bin.Y) == target:
			accumulated = bin.X
		default:
			return
		}
	} else {
		return
	}
	// Accumulating the same loop-invariant value every iteration is
	// exact in any order; only iteration-dependent contributions vary.
	if !mentionsAny(p, accumulated, iterVars) {
		return
	}
	p.Report("float-map-accum", as.Pos(),
		"floating-point accumulation into %s inside range over map %s depends on iteration order (FP is not associative); iterate sorted keys instead",
		exprString(lhs), exprString(rs.X))
}

// rangeIterObjects collects the objects bound by the range statement's
// key and value positions.
func rangeIterObjects(p *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := p.Info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := p.Info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	return out
}

// mentionsAny reports whether e references any of the given objects.
func mentionsAny(p *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil && objs[obj] {
			found = true
			return false
		}
		return true
	})
	return found
}

// isFloatExpr reports whether e has floating-point (or complex) type.
func isFloatExpr(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
