package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// CrossShardEventAnalyzer implements the cross-shard-event rule. In the
// sharded engine every scheduled callback runs with the affinity of the
// shard it was scheduled on, and may only touch that shard's state;
// the one sanctioned way to reach another shard is the owning shard's
// Send method. A closure scheduled on shard X that calls a scheduling
// method (At/After/Tick/Reschedule/Cancel/Send) through a *different*
// shard or engine handle is therefore a latent cross-shard mutation:
// harmless under the serial engine (which fires everything in global
// order anyway), a determinism bug or a data race the moment the same
// model runs under parallel windows.
//
// The rule also enforces the parallel-window timing contract on Send
// itself: a Send whose delay argument is a compile-time constant below
// MinSendDelaySecs is flagged wherever it appears. Such a send is
// harmless on the serial engine but panics the moment the model runs
// under parallel windows (sim.Shard.Send rejects delays below the
// configured lookahead), so the linter rejects it statically. Delays
// that are not constants cannot be judged here and are left to the
// runtime check.
//
// Flagged: inside a function literal passed to a scheduling method on
// a sim Shard or Engine, any scheduling call whose receiver expression
// differs from the receiver expression of the outer scheduling call.
// Receivers are compared as ident/selector paths (`j.shard`, `s`,
// `fb.shard`); a receiver that is not a plain path (method call,
// index) cannot be attributed and is skipped — the rule is
// deliberately conservative. The fix is either to schedule through the
// same handle the closure runs on, or to route the hop through
// `own.Send(other, delay, fn)` (Send's receiver is the owning shard;
// its destination argument is free).
var CrossShardEventAnalyzer = &Analyzer{
	Name: "cross-shard-event",
	Doc:  "flag sim-scheduled closures that schedule through a different shard handle instead of the cross-shard Send API",
	Run:  runCrossShardEvent,
}

// shardSchedulers are the scheduling methods whose receiver pins shard
// affinity. Send is included: calling other.Send(...) from a closure
// that runs on s is just as cross-shard as other.At(...).
var shardSchedulers = map[string]bool{
	"At": true, "After": true, "Tick": true,
	"Reschedule": true, "Cancel": true, "Send": true,
}

// MinSendDelaySecs is the smallest constant Send delay the rule
// accepts: the parallel-window lookahead the serving path runs with
// (experiments.DefaultStreamLookahead). A model whose cross-shard
// sends all cover this bound can run under parallel windows at that
// lookahead without the runtime delay check ever firing.
const MinSendDelaySecs = 1.0

func runCrossShardEvent(p *Pass) {
	simulated := false
	for _, suffix := range simulatedPkgs {
		if pathHasSuffix(p.Pkg.Path(), suffix) {
			simulated = true
			break
		}
	}
	if !simulated {
		return
	}
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			outer, outerPath := schedulingCall(p, call)
			if outer == "" {
				return true
			}
			if outer == "Send" {
				checkSendDelay(p, call)
				// A Send closure fires on the destination shard, so that
				// is the affinity its body must honor.
				if len(call.Args) == 0 {
					return true
				}
				if outerPath = receiverPath(call.Args[0]); outerPath == "" {
					return true
				}
			}
			if outerPath == "" {
				return true
			}
			for _, arg := range call.Args {
				fl, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkShardAffinity(p, fl, outer, outerPath)
			}
			return true
		})
	}
}

// checkSendDelay flags a Send whose delay argument constant-folds to a
// value below MinSendDelaySecs. The type checker has already folded
// named constants and constant arithmetic, so `s.Send(d, shortConst,
// fn)` is caught no matter how the constant is spelled; non-constant
// delays are skipped (the engine's runtime check owns those).
func checkSendDelay(p *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	v := p.Info.Types[call.Args[1]].Value
	if v == nil || (v.Kind() != constant.Int && v.Kind() != constant.Float) {
		return
	}
	delay, _ := constant.Float64Val(v)
	if delay >= MinSendDelaySecs {
		return
	}
	p.Report("cross-shard-event", call.Pos(),
		"Send with constant delay %v below the parallel-window lookahead %v; the engine rejects such sends under parallel windows — widen the delay or restructure the interaction to stay shard-local",
		delay, MinSendDelaySecs)
}

// schedulingCall reports the method name and receiver path of call if
// it is a scheduling call on a sim Shard or Engine with a plain-path
// receiver; otherwise ("", "").
func schedulingCall(p *Pass, call *ast.CallExpr) (method, recvPath string) {
	fn := p.funcFor(call.Fun)
	if fn == nil || !shardSchedulers[fn.Name()] {
		return "", ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !pathIsSimEngine(recvPkgPath(sig), sig) {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return fn.Name(), receiverPath(sel.X)
}

// receiverPath renders e as a dotted ident path ("j.shard", "s"), or
// "" when e is anything but parenthesized idents and field selections.
func receiverPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := receiverPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// checkShardAffinity walks a scheduled closure and reports scheduling
// calls whose receiver path differs from the outer scheduling
// receiver. Nested scheduled closures are skipped here — the outer
// file walk reaches their scheduling call and checks their bodies
// against their own receiver.
func checkShardAffinity(p *Pass, fl *ast.FuncLit, outerMethod, outerPath string) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, path := schedulingCall(p, call)
		if method == "" {
			return true
		}
		if path != "" && path != outerPath {
			p.Report("cross-shard-event", call.Pos(),
				"closure scheduled via %s.%s calls %s.%s on a different shard handle; a callback owns only its shard's state — schedule through %s, or hop shards with %s.Send",
				outerPath, outerMethod, path, method, outerPath, outerPath)
		}
		// A scheduled closure hanging off this inner call is governed
		// by the inner call's own receiver; don't rescan it against the
		// outer one.
		for _, arg := range call.Args {
			if _, isLit := arg.(*ast.FuncLit); isLit {
				return false
			}
		}
		return true
	})
}
