package lint

import (
	"go/ast"
	"go/types"
)

// MapIterAnalyzer implements the ordered-map-iter rule. Go randomizes
// map iteration order on purpose, so a `range` over a map whose body
// has an order-sensitive effect — appending to a slice, writing output,
// or scheduling simulation events — produces different results on every
// run. Order-insensitive bodies (summing, counting, writing into
// another map) are fine and not flagged.
//
// The canonical safe pattern is recognized: a loop that only collects
// keys/values into a slice is allowed when that slice is passed to a
// sort call (sort.Strings, sort.Slice, slices.Sort, sort.Sort, ...)
// later in the same function.
var MapIterAnalyzer = &Analyzer{
	Name: "ordered-map-iter",
	Doc:  "flag map iteration whose order reaches slices, output, or the event queue unsorted",
	Run:  runMapIter,
}

// outputFuncs are package-level printers whose call order is the output
// order.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writeMethods order bytes into a stream or builder.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
}

// simSchedulers are the sim.Engine entry points that enqueue events;
// enqueue order is tie-break order for same-timestamp events.
var simSchedulers = map[string]bool{"At": true, "After": true, "Tick": true}

func runMapIter(p *Pass) {
	// Examine each function body independently so the sorted-later
	// escape can search the enclosing function.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkFuncMapRanges(p, body)
			return true // keep descending: nested func lits are revisited with their own scope
		})
	}
}

// checkFuncMapRanges flags order-sensitive map ranges directly inside
// this function body (nested function literals are handled by their own
// visit).
func checkFuncMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed separately
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(p, body, rs)
		return true
	})
}

func checkMapRangeBody(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if e != rs {
				// Inner ranges get their own report if they are map
				// ranges; their bodies shouldn't double-report here.
				if t := p.Info.TypeOf(e.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
			return true
		case *ast.CallExpr:
			reportMapRangeCall(p, funcBody, rs, e)
			return true
		}
		return true
	})
}

// reportMapRangeCall decides whether one call inside a map-range body is
// an order-sensitive effect and reports it.
func reportMapRangeCall(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, call *ast.CallExpr) {
	// append(s, ...) — order-sensitive unless s is sorted later in the
	// same function.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			target := rootIdentObj(p, call.Args[0])
			if target != nil && sortedAfter(p, funcBody, rs, target) {
				return
			}
			// A slice declared inside the loop (including the range
			// variables themselves) is rebuilt every iteration: nothing
			// accumulates across iterations, so iteration order cannot
			// leak through it. Likewise when the first argument has no
			// identifier root (append([]T{}, ...), append(f(), ...)):
			// each iteration appends to a fresh value.
			if target == nil || (target.Pos() >= rs.Pos() && target.Pos() < rs.End()) {
				return
			}
			p.Report("ordered-map-iter", call.Pos(),
				"append inside range over map %s leaks nondeterministic iteration order into a slice; collect keys and sort them first",
				exprString(rs.X))
			return
		}
	}

	fn := p.funcFor(call.Fun)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)

	// Package-level printers: fmt.Printf and friends.
	if sig != nil && sig.Recv() == nil && pkgPath(fn) == "fmt" && outputFuncs[fn.Name()] {
		p.Report("ordered-map-iter", call.Pos(),
			"fmt.%s inside range over map %s writes output in nondeterministic iteration order; sort the keys first",
			fn.Name(), exprString(rs.X))
		return
	}

	if sig == nil || sig.Recv() == nil {
		return
	}
	recvPkg := recvPkgPath(sig)

	// Stream/builder writers: w.Write, b.WriteString, ...
	if writeMethods[fn.Name()] {
		p.Report("ordered-map-iter", call.Pos(),
			"%s inside range over map %s writes output in nondeterministic iteration order; sort the keys first",
			fn.Name(), exprString(rs.X))
		return
	}

	// Simulation event scheduling: engine.At/After/Tick.
	if simSchedulers[fn.Name()] && pathIsSimEngine(recvPkg, sig) {
		p.Report("ordered-map-iter", call.Pos(),
			"scheduling sim events inside range over map %s makes same-timestamp tie-breaking (seq order) nondeterministic; sort the keys first",
			exprString(rs.X))
		return
	}
}

// pathIsSimEngine reports whether the method receiver is the sim
// package's Engine or a Shard of it (matched by import-path suffix so
// fixtures and the real tree both qualify). Shards carry the same
// scheduling API — every determinism rule that watches Engine.At/After
// must watch Shard.At/After too, or sharded call sites go unlinted.
func pathIsSimEngine(recvPkg string, sig *types.Signature) bool {
	if !pathHasSuffix(recvPkg, "internal/sim") {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Engine" || name == "Shard"
}

func recvPkgPath(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

func pathHasSuffix(path, suffix string) bool {
	return path == suffix || (len(path) > len(suffix) &&
		path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix)
}

// rootIdentObj resolves the base identifier of an expression like s,
// s.field, or s[i] to its object, or nil when there isn't a simple one.
func rootIdentObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether obj is passed to a recognized sort call
// somewhere in funcBody after the range statement ends — the
// collect-then-sort idiom.
func sortedAfter(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := p.funcFor(call.Fun)
		if fn == nil {
			return true
		}
		if !isSortFunc(fn) {
			return true
		}
		for _, arg := range call.Args {
			if rootIdentObj(p, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortFunc recognizes the standard sorting entry points.
func isSortFunc(fn *types.Func) bool {
	switch pkgPath(fn) {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// exprString renders a short source form of e for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	default:
		return "map"
	}
}
