// Package order is the cross-package nondeterminism source for the
// nondet-flow fixture: Keys returns map keys in iteration order, and
// the violation only becomes visible in the caller (internal/bad),
// two functions and one package away.
package order

// Keys returns m's keys unsorted. The local append is suppressed with
// a reasoned directive so the fixture demonstrates that suppressing
// the intraprocedural rule does not hide the interprocedural leak.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) //mrlint:ignore ordered-map-iter fixture: the interprocedural escape is the point
	}
	return ks
}
