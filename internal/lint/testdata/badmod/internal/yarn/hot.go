// Package yarn is a miniature hot-package stand-in: its import-path
// suffix matches internal/yarn, so the config-get-in-loop analyzer
// treats it as a scheduling hot path.
package yarn

import "badmod/internal/mrconf"

// SumInLoop violates config-get-in-loop: the string-keyed lookup runs
// once per iteration instead of being hoisted into a snapshot.
func SumInLoop(c mrconf.Config, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += c.Get(mrconf.IOSortMB) // want config-get-in-loop
	}
	return total
}
