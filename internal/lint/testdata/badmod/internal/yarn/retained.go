package yarn

// EventLog violates retained-append: its entries only ever grow, so a
// long serving run retains every event forever.
type EventLog struct {
	entries []string
}

// Log appends without any reset or recycle anywhere in the package.
func (l *EventLog) Log(msg string) {
	l.entries = append(l.entries, msg) // want retained-append
}

// Scratch is the negative control: it also appends to a struct field,
// but the package truncates it, so the rule must stay quiet.
type Scratch struct {
	buf []string
}

// Push grows the scratch buffer.
func (s *Scratch) Push(msg string) {
	s.buf = append(s.buf, msg)
}

// Reset releases the scratch buffer, keeping capacity.
func (s *Scratch) Reset() {
	s.buf = s.buf[:0]
}
