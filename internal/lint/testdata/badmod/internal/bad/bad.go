// Package bad contains exactly one violation of every mrlint rule; the
// integration test asserts each is reported, and `go run ./cmd/mrlint
// -C internal/lint/testdata/badmod ./...` demonstrates the non-zero
// exit on a dirty tree.
package bad

import (
	"math/rand"
	"sync"
	"time"

	"badmod/internal/mrconf"
	"badmod/internal/sim"
)

// Wallclock violates no-wallclock.
func Wallclock() float64 {
	return float64(time.Now().UnixNano()) // want no-wallclock
}

// GlobalRand violates no-global-rand.
func GlobalRand() float64 {
	return rand.Float64() // want no-global-rand
}

// UnsortedIter violates ordered-map-iter: the append target is never
// sorted.
func UnsortedIter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want ordered-map-iter
	}
	return keys
}

// ScheduleFromMap violates ordered-map-iter via event scheduling.
func ScheduleFromMap(e *sim.Engine, m map[string]float64) {
	for _, d := range m {
		e.After(d, func() {}) // want ordered-map-iter
	}
}

// TypoKey violates conf-key-literal ("sortt").
func TypoKey(c mrconf.Config) float64 {
	return c.Get("mapreduce.task.io.sortt.mb") // want conf-key-literal
}

// LockByValue violates mutex-copy.
func LockByValue(mu sync.Mutex, wg sync.WaitGroup) { // want mutex-copy
	mu.Lock()
	defer mu.Unlock()
	wg.Wait()
}
