// Package bad contains exactly one violation of every mrlint rule; the
// integration test asserts each is reported, and `go run ./cmd/mrlint
// -C internal/lint/testdata/badmod ./...` demonstrates the non-zero
// exit on a dirty tree.
package bad

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"badmod/internal/mrconf"
	"badmod/internal/order"
	"badmod/internal/sim"
)

// Wallclock violates no-wallclock.
func Wallclock() float64 {
	return float64(time.Now().UnixNano()) // want no-wallclock
}

// GlobalRand violates no-global-rand.
func GlobalRand() float64 {
	return rand.Float64() // want no-global-rand
}

// UnsortedIter violates ordered-map-iter: the append target is never
// sorted.
func UnsortedIter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want ordered-map-iter
	}
	return keys
}

// ScheduleFromMap violates ordered-map-iter via event scheduling.
func ScheduleFromMap(e *sim.Engine, m map[string]float64) {
	for _, d := range m {
		e.After(d, func() {}) // want ordered-map-iter
	}
}

// TypoKey violates conf-key-literal ("sortt").
func TypoKey(c mrconf.Config) float64 {
	return c.Get("mapreduce.task.io.sortt.mb") // want conf-key-literal
}

// LockByValue violates mutex-copy.
func LockByValue(mu sync.Mutex, wg sync.WaitGroup) { // want mutex-copy
	mu.Lock()
	defer mu.Unlock()
	wg.Wait()
}

// FloatAccum violates float-map-accum: FP addition is not associative,
// so the low-order bits of the sum depend on iteration order.
func FloatAccum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want float-map-accum
	}
	return sum
}

// PrintUnsorted violates nondet-flow: the nondeterministic order
// escapes order.Keys and only reaches an output sink here, one package
// and two functions away from the map range.
func PrintUnsorted(m map[string]int) {
	for _, k := range order.Keys(m) {
		fmt.Println(k) // want nondet-flow
	}
}

// lastID records what the scheduled event observed at fire time.
var lastID string

// CaptureMutated violates event-closure-capture: idx is rewritten
// after the event is scheduled, so the closure reads the mutated value
// when it fires, not the value at schedule time.
func CaptureMutated(e *sim.Engine, ids []string) {
	idx := 0
	e.At(5, func() { lastID = ids[idx] }) // want event-closure-capture
	idx = len(ids) - 1
}

// MalformedSuppression carries a directive that names no rule: it
// suppresses nothing and is itself a finding.
func MalformedSuppression() int {
	//mrlint:ignore
	return 42 // want malformed-directive (reported on the directive line)
}
