// crossshard.go deliberately violates cross-shard-event: closures
// scheduled on one shard reach into other shards' queues directly
// instead of hopping through the owning shard's Send.
package sim

// Racks holds two shard handles plus the engine, the shape of a model
// component that straddles shard boundaries.
type Racks struct {
	eng *Engine
	a   *Shard
	b   *Shard
}

// BadDirectHop schedules on shard b from a closure running on shard a.
func (r *Racks) BadDirectHop() {
	r.a.After(1, func() {
		r.b.At(5, func() {}) // want cross-shard-event
	})
}

// BadEngineFallback slides back to the affinity-blind engine API from
// inside a shard callback.
func (r *Racks) BadEngineFallback() {
	r.a.After(1, func() {
		r.eng.After(2, func() {}) // want cross-shard-event
	})
}

// BadForeignSend calls Send on someone else's shard; only the owning
// shard may issue the hop.
func (r *Racks) BadForeignSend() {
	r.a.After(1, func() {
		r.b.Send(r.a, 2, func() {}) // want cross-shard-event
	})
}

// BadForeignCancel cancels through the wrong shard handle.
func (r *Racks) BadForeignCancel(ev any) {
	r.a.Tick(func() {
		r.b.Cancel(ev) // want cross-shard-event
	})
}

// BadShortSend hops shards with a constant delay below the
// parallel-window lookahead: legal on the serial engine, an immediate
// panic under parallel windows.
func (r *Racks) BadShortSend() {
	r.a.After(1, func() {
		r.a.Send(r.b, 0.25, func() {}) // want cross-shard-event
	})
}

// GoodSameShard keeps every scheduling call on the closure's own shard.
func (r *Racks) GoodSameShard() {
	r.a.After(1, func() {
		r.a.At(5, func() {})
		r.a.Cancel(nil)
	})
}

// GoodSend hops shards through the sanctioned API: the receiver is the
// owning shard, the destination is an argument.
func (r *Racks) GoodSend() {
	r.a.After(1, func() {
		r.a.Send(r.b, 2, func() {})
	})
}

// GoodNested re-anchors affinity at each nesting level: the inner
// closure belongs to the inner scheduling call's receiver.
func (r *Racks) GoodNested() {
	r.a.After(1, func() {
		r.a.Send(r.b, 2, func() {
			r.b.After(3, func() {})
		})
	})
}
