// Package sim is a miniature stand-in for the real discrete-event
// engine, just enough surface for the ordered-map-iter analyzer's
// event-scheduling check.
package sim

// Engine is a stub scheduler.
type Engine struct{ n int }

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.n++ }
