// Package sim is a miniature stand-in for the real discrete-event
// engine, just enough surface for the analyzers that key on the
// Engine scheduling API (ordered-map-iter, event-closure-capture).
package sim

// Engine is a stub scheduler.
type Engine struct{ n int }

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.n++ }

// At schedules fn at absolute time t.
func (e *Engine) At(t float64, fn func()) { e.n++ }

// Tick schedules fn at the current timestamp.
func (e *Engine) Tick(fn func()) { e.n++ }
