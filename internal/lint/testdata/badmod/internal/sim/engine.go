// Package sim is a miniature stand-in for the real discrete-event
// engine, just enough surface for the analyzers that key on the
// Engine scheduling API (ordered-map-iter, event-closure-capture).
package sim

// Engine is a stub scheduler.
type Engine struct{ n int }

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.n++ }

// At schedules fn at absolute time t.
func (e *Engine) At(t float64, fn func()) { e.n++ }

// Tick schedules fn at the current timestamp.
func (e *Engine) Tick(fn func()) { e.n++ }

// Shard is a stub per-shard scheduler mirroring the sharded engine's
// affinity-carrying API (cross-shard-event keys on it).
type Shard struct{ n int }

// NewShard returns a stub shard.
func (e *Engine) NewShard(name string) *Shard { return &Shard{} }

// After schedules fn d seconds from now on this shard.
func (s *Shard) After(d float64, fn func()) { s.n++ }

// At schedules fn at absolute time t on this shard.
func (s *Shard) At(t float64, fn func()) { s.n++ }

// Tick schedules fn periodically on this shard.
func (s *Shard) Tick(fn func()) { s.n++ }

// Cancel drops a pending event of this shard.
func (s *Shard) Cancel(ev any) { s.n++ }

// Send schedules fn on shard dst, delay seconds from now.
func (s *Shard) Send(dst *Shard, delay float64, fn func()) { s.n++ }
