// worker.go deliberately violates no-goroutine-in-sim: badmod/internal/sim
// has the import-path suffix of a simulated package, where goroutines,
// channels, and sync primitives break the single-threaded event-loop
// invariant.
package sim

import "sync"

// Fanout runs callbacks on goroutines and joins them over a channel —
// exactly the OS-scheduler ordering the rule forbids.
func (e *Engine) Fanout(fns []func()) {
	var mu sync.Mutex // want no-goroutine-in-sim
	done := make(chan struct{}, len(fns))
	for _, fn := range fns {
		go func() { // want no-goroutine-in-sim
			mu.Lock()
			fn()
			mu.Unlock()
			done <- struct{}{} // want no-goroutine-in-sim
		}()
	}
	for range fns {
		<-done // want no-goroutine-in-sim
	}
}
