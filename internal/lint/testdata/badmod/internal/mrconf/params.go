// Package mrconf is a miniature stand-in for the real configuration
// package, so the fixture exercises the conf-key-literal analyzer
// without importing across module boundaries.
package mrconf

// IOSortMB is the one registered parameter name.
const IOSortMB = "mapreduce.task.io.sort.mb"

// Config mimics the real immutable configuration value.
type Config struct{ v float64 }

// Get returns the value for a registered parameter name.
func (c Config) Get(name string) float64 { return c.v }

// With returns a copy with the parameter set.
func (c Config) With(name string, v float64) Config { return Config{v: v} }
