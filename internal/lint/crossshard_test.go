package lint

import "testing"

// miniShardSim gives the cross-shard-event analyzer the sharded engine
// surface: an Engine plus Shards carrying the scheduling API.
const miniShardSim = `package sim

type Engine struct{ n int }

func (e *Engine) After(d float64, fn func()) { e.n++ }
func (e *Engine) At(t float64, fn func())    { e.n++ }

type Shard struct{ n int }

func (s *Shard) After(d float64, fn func())            { s.n++ }
func (s *Shard) At(t float64, fn func())               { s.n++ }
func (s *Shard) Tick(fn func())                        { s.n++ }
func (s *Shard) Cancel(ev any)                         { s.n++ }
func (s *Shard) Send(dst *Shard, d float64, fn func()) { s.n++ }
`

func TestCrossShardEventTableDriven(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{
			name: "direct hop to another shard flagged",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.After(1, func() { b.At(5, func() {}) })
}
`,
			want: 1,
		},
		{
			name: "engine fallback inside shard closure flagged",
			src: `package cluster
import "fixture/internal/sim"
func f(eng *sim.Engine, a *sim.Shard) {
	a.After(1, func() { eng.After(2, func() {}) })
}
`,
			want: 1,
		},
		{
			name: "foreign Send receiver flagged",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.After(1, func() { b.Send(a, 2, func() {}) })
}
`,
			want: 1,
		},
		{
			name: "foreign cancel in ticker flagged",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.Tick(func() { b.Cancel(nil) })
}
`,
			want: 1,
		},
		{
			name: "field-path mismatch flagged",
			src: `package cluster
import "fixture/internal/sim"
type job struct{ shard, other *sim.Shard }
func (j *job) f() {
	j.shard.After(1, func() { j.other.After(2, func() {}) })
}
`,
			want: 1,
		},
		{
			name: "same shard clean",
			src: `package cluster
import "fixture/internal/sim"
func f(a *sim.Shard) {
	a.After(1, func() {
		a.At(5, func() {})
		a.Cancel(nil)
	})
}
`,
			want: 0,
		},
		{
			name: "own Send hop clean",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.After(1, func() { a.Send(b, 2, func() {}) })
}
`,
			want: 0,
		},
		{
			name: "send closure owned by destination clean",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.Send(b, 2, func() { b.After(3, func() {}) })
}
`,
			want: 0,
		},
		{
			name: "send closure scheduling on source flagged",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.Send(b, 2, func() { a.After(3, func() {}) })
}
`,
			want: 1,
		},
		{
			name: "nested closure re-anchors affinity",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.After(1, func() {
		a.Send(b, 2, func() { b.After(3, func() {}) })
	})
}
`,
			want: 0,
		},
		{
			name: "short constant send delay flagged",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.After(1, func() { a.Send(b, 0.5, func() {}) })
}
`,
			want: 1,
		},
		{
			name: "short send outside any closure flagged",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.Send(b, 0.25, func() {})
}
`,
			want: 1,
		},
		{
			name: "short named-constant send delay flagged",
			src: `package cluster
import "fixture/internal/sim"
const heartbeatGap = 0.5
func f(a, b *sim.Shard) {
	a.Send(b, heartbeatGap, func() {})
}
`,
			want: 1,
		},
		{
			name: "send delay at the lookahead clean",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.Send(b, 1, func() {})
}
`,
			want: 0,
		},
		{
			name: "non-constant send delay left to the runtime check",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard, d float64) {
	a.Send(b, d, func() {})
}
`,
			want: 0,
		},
		{
			name: "short send on unresolvable receiver still flagged",
			src: `package cluster
import "fixture/internal/sim"
func f(ss []*sim.Shard, b *sim.Shard) {
	ss[0].Send(b, 0.5, func() {})
}
`,
			want: 1,
		},
		{
			name: "unresolvable receiver skipped",
			src: `package cluster
import "fixture/internal/sim"
func pick(ss []*sim.Shard, i int) *sim.Shard { return ss[i] }
func f(a *sim.Shard, ss []*sim.Shard) {
	a.After(1, func() { pick(ss, 0).At(5, func() {}) })
	a.After(1, func() { ss[0].At(5, func() {}) })
}
`,
			want: 0,
		},
		{
			name: "non-simulated package not scanned",
			src: `package experiments
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.After(1, func() { b.At(5, func() {}) })
}
`,
			want: 0,
		},
		{
			name: "suppressed by directive",
			src: `package cluster
import "fixture/internal/sim"
func f(a, b *sim.Shard) {
	a.After(1, func() {
		//mrlint:ignore cross-shard-event audited window-coordinator internals
		b.At(5, func() {})
	})
}
`,
			want: 0,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := "internal/cluster/f.go"
			if tc.name == "non-simulated package not scanned" {
				dir = "internal/experiments/f.go"
			}
			findings := lintFiles(t, "cross-shard-event", map[string]string{
				"go.mod":              "module fixture\n\ngo 1.22\n",
				"internal/sim/sim.go": miniShardSim,
				dir:                   tc.src,
			})
			if got := countRule(findings, "cross-shard-event"); got != tc.want {
				t.Fatalf("got %d cross-shard-event findings, want %d: %v", got, tc.want, findings)
			}
		})
	}
}
