package lint

import (
	"go/ast"
	"strings"
)

// wallclockFuncs are the package time functions that read or wait on
// the real clock. Simulated components must take time from
// sim.Engine.Now (float64 seconds) instead; a single time.Now leaking
// into a model makes runs diverge between machines and executions.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// WallclockAnalyzer implements the no-wallclock rule: real-time clock
// reads are forbidden in non-test files under internal/ and cmd/.
var WallclockAnalyzer = &Analyzer{
	Name: "no-wallclock",
	Doc:  "forbid time.Now/Sleep/Since etc. in simulated components (internal/, cmd/)",
	Run:  runWallclock,
}

func runWallclock(p *Pass) {
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		rel := p.RelFile(file.Pos())
		if !strings.HasPrefix(rel, "internal/") && !strings.HasPrefix(rel, "cmd/") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := p.funcFor(sel)
			if fn == nil || pkgPath(fn) != "time" || !wallclockFuncs[fn.Name()] {
				return true
			}
			p.Report("no-wallclock", sel.Pos(),
				"time.%s reads the real clock; simulated components must use sim.Engine time (float64 seconds)", fn.Name())
			return true
		})
	}
}
