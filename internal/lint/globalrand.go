package lint

import (
	"go/ast"
	"go/types"
)

// globalRandExempt names the one file allowed to touch math/rand
// package-level state: the seeded-stream factory. (It doesn't, today —
// it only calls rand.New — but it is the sanctioned gateway.)
const globalRandExempt = "internal/sim/rng.go"

// randConstructors create explicitly-seeded generators; they are the
// approved pattern, not a violation.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// GlobalRandAnalyzer implements the no-global-rand rule: package-level
// math/rand draws use a process-global, implicitly seeded source, so
// their output depends on what every other goroutine has drawn —
// irreproducible by construction. All randomness must flow through an
// explicitly seeded *rand.Rand (see internal/sim.Source).
var GlobalRandAnalyzer = &Analyzer{
	Name: "no-global-rand",
	Doc:  "forbid package-level math/rand functions; use an explicitly seeded *rand.Rand",
	Run:  runGlobalRand,
}

func runGlobalRand(p *Pass) {
	for _, file := range p.Files {
		if p.RelFile(file.Pos()) == globalRandExempt {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := p.funcFor(sel)
			if fn == nil {
				return true
			}
			if path := pkgPath(fn); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand / *rand.Zipf carry a receiver: those
			// are the explicitly seeded instances the rule steers toward.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if randConstructors[fn.Name()] {
				return true
			}
			p.Report("no-global-rand", sel.Pos(),
				"package-level rand.%s draws from the implicitly seeded global source; use an explicitly seeded *rand.Rand (sim.Source) instead", fn.Name())
			return true
		})
	}
}
