package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked compilation unit of the module
// under analysis. In-package _test.go files are checked together with
// the package; external test packages (package foo_test) form their own
// unit.
type Package struct {
	// ImportPath is the unit's import path. External test units carry
	// the synthetic suffix ".test" and are never importable.
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Module is a fully loaded and type-checked module tree.
type Module struct {
	Root     string // absolute module root directory
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // deterministic order (sorted by import path)

	// ConfKeys is the set of canonical parameter-name constant values
	// declared in the module's internal/mrconf package (empty when the
	// module has none).
	ConfKeys map[string]bool

	dirs *directiveIndex // lazily built module-wide suppression index
}

// directives returns the module-wide suppression-directive index,
// building it on first use from every file of every package.
func (m *Module) directives() *directiveIndex {
	if m.dirs == nil {
		m.dirs = newDirectiveIndex(m.Fset, m.Root)
		for _, pkg := range m.Packages {
			for _, f := range pkg.Files {
				m.dirs.indexFile(f)
			}
		}
	}
	return m.dirs
}

// Suppressions lists every //mrlint:ignore directive in the module,
// well-formed or not, ordered by file then line — the audit trail for
// `mrlint -suppressions`.
func (m *Module) Suppressions() []Directive {
	return m.directives().sortedList()
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file without
// depending on golang.org/x/mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest == "" {
				continue
			}
			if unquoted, err := strconv.Unquote(rest); err == nil {
				return unquoted, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// dirUnit is the raw parse of one directory before type checking.
type dirUnit struct {
	importPath string
	dir        string
	pkgFiles   []*ast.File // package + in-package tests
	extFiles   []*ast.File // external test package (foo_test)
	imports    []string    // local (module-internal) imports of pkgFiles
	extImports []string    // local imports of extFiles
}

// LoadModule parses and type-checks every package in the module rooted
// at root, resolving module-internal imports itself and delegating the
// standard library to the toolchain importer. It returns an error for
// unparseable or untypeable code — mrlint only analyzes code that
// compiles.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	units := make(map[string]*dirUnit) // by import path
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			// A nested module is its own world; don't absorb it.
			if path != root {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasPrefix(filepath.Base(path), ".") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		u := units[ip]
		if u == nil {
			u = &dirUnit{importPath: ip, dir: dir}
			units[ip] = u
		}
		if strings.HasSuffix(file.Name.Name, "_test") {
			u.extFiles = append(u.extFiles, file)
		} else {
			u.pkgFiles = append(u.pkgFiles, file)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	isLocal := func(path string) bool {
		return path == modPath || strings.HasPrefix(path, modPath+"/")
	}
	collectImports := func(files []*ast.File) []string {
		seen := make(map[string]bool)
		var out []string
		for _, f := range files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !isLocal(p) || seen[p] {
					continue
				}
				seen[p] = true
				out = append(out, p)
			}
		}
		sort.Strings(out)
		return out
	}
	for _, u := range units {
		u.imports = collectImports(u.pkgFiles)
		u.extImports = collectImports(u.extFiles)
	}

	// Topologically order the units so every module-internal import is
	// checked before its importers.
	paths := make([]string, 0, len(units))
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		white = iota
		gray
		black
	)
	state := make(map[string]int)
	var order []string
	var visit func(p string, trail []string) error
	visit = func(p string, trail []string) error {
		u, ok := units[p]
		if !ok {
			return nil // import of a local path with no Go files; types will complain later
		}
		switch state[p] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("import cycle: %s -> %s", strings.Join(trail, " -> "), p)
		}
		state[p] = gray
		for _, dep := range u.imports {
			if dep == p {
				continue
			}
			if err := visit(dep, append(trail, p)); err != nil {
				return err
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}

	mod := &Module{Root: root, Path: modPath, Fset: fset, ConfKeys: make(map[string]bool)}
	imp := &moduleImporter{
		modPath:  modPath,
		local:    make(map[string]*types.Package),
		fallback: importer.Default(),
	}

	check := func(ip string, files []*ast.File) (*Package, error) {
		if len(files) == 0 {
			return nil, nil
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(ip, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", ip, err)
		}
		return &Package{ImportPath: ip, Files: files, Types: pkg, Info: info}, nil
	}

	for _, ip := range order {
		u := units[ip]
		pkg, err := check(ip, u.pkgFiles)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkg.Dir = u.dir
			imp.local[ip] = pkg.Types
			mod.Packages = append(mod.Packages, pkg)
			if strings.HasSuffix(ip, "internal/mrconf") {
				collectStringConsts(pkg.Types, mod.ConfKeys)
			}
		}
	}
	// External test packages import (at least) their own package, and
	// possibly any other local package, so check them all last.
	for _, ip := range paths {
		u := units[ip]
		ext, err := check(ip+".test", u.extFiles)
		if err != nil {
			return nil, err
		}
		if ext != nil {
			ext.Dir = u.dir
			mod.Packages = append(mod.Packages, ext)
		}
	}
	sort.Slice(mod.Packages, func(i, j int) bool {
		return mod.Packages[i].ImportPath < mod.Packages[j].ImportPath
	})
	return mod, nil
}

// collectStringConsts adds the values of all exported package-level
// string constants of pkg to dst. For internal/mrconf these are exactly
// the canonical Hadoop parameter names.
func collectStringConsts(pkg *types.Package, dst map[string]bool) {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			continue
		}
		dst[constStringValue(c)] = true
	}
}

func constStringValue(c *types.Const) string {
	s := c.Val().ExactString()
	if unq, err := strconv.Unquote(s); err == nil {
		return unq
	}
	return s
}

// moduleImporter resolves module-internal imports from the packages
// already checked this run, and everything else (the standard library)
// through the compiler's importer.
type moduleImporter struct {
	modPath  string
	local    map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		if pkg, ok := m.local[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("internal import %q not yet checked (missing Go files or import cycle?)", path)
	}
	return m.fallback.Import(path)
}

// Run executes the given analyzers over every package of the module
// (per-package analyzers), then over the module as a whole (module
// analyzers), and returns the sorted findings.
func (m *Module) Run(analyzers []*Analyzer) []Finding {
	var findings []Finding
	dirs := m.directives()
	for _, pkg := range m.Packages {
		pass := NewPass(m.Fset, pkg.Files, pkg.Types, pkg.Info, m.Root, dirs, &findings)
		pass.ConfKeys = m.ConfKeys
		for _, a := range analyzers {
			if a.Run != nil {
				a.Run(pass)
			}
		}
	}
	mp := &ModulePass{Module: m, dirs: dirs, findings: &findings}
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(mp)
		}
	}
	SortFindings(findings)
	return findings
}
