package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EventClosureCaptureAnalyzer implements the event-closure-capture
// rule. A closure handed to sim.Engine.At/After/Tick fires later, at
// its simulated timestamp — but it reads captured variables at *fire*
// time. When the scheduling code keeps mutating a captured variable
// after the call (directly below it, or on the next loop iteration),
// the event's behavior depends on what the scheduler happened to do in
// the meantime, not on the values at schedule time. That coupling is
// exactly what breaks when events are reordered across shards
// (ROADMAP item 2) or when code is hoisted during refactors.
//
// Flagged: a function literal passed to At/After/Tick that captures a
// variable of the enclosing function which is (a) written after the
// scheduling call, or (b) declared outside an enclosing loop and
// written inside it while the call is also inside that loop (mutated
// across iterations while the event is pending). Writes inside
// function literals (including the closure itself) are event-time
// state and are fine. The fix is to bind a per-iteration copy
// (`v := v`) or pass the value explicitly at schedule time.
var EventClosureCaptureAnalyzer = &Analyzer{
	Name: "event-closure-capture",
	Doc:  "flag sim-scheduled closures that capture variables mutated before the event fires",
	Run:  runEventClosureCapture,
}

func runEventClosureCapture(p *Pass) {
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkScheduledClosures(p, fd.Body)
			return true
		})
	}
}

func checkScheduledClosures(p *Pass, body *ast.BlockStmt) {
	// Every function-literal span in the body: writes inside any of
	// them happen at event-fire time, not scheduler time.
	var litSpans []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			litSpans = append(litSpans, fl)
		}
		return true
	})
	inAnyLit := func(pos token.Pos) bool {
		for _, fl := range litSpans {
			if pos >= fl.Pos() && pos < fl.End() {
				return true
			}
		}
		return false
	}

	// Enclosing loops, innermost last, for the cross-iteration check.
	var loops []ast.Node
	collectLoops := func(call *ast.CallExpr) []ast.Node {
		var enclosing []ast.Node
		for _, l := range loops {
			if call.Pos() >= l.Pos() && call.Pos() < l.End() {
				enclosing = append(enclosing, l)
			}
		}
		return enclosing
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.funcFor(call.Fun)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil || !simSchedulers[fn.Name()] || !pathIsSimEngine(recvPkgPath(sig), sig) {
			return true
		}
		for _, arg := range call.Args {
			fl, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			checkClosureCaptures(p, body, call, fl, inAnyLit, collectLoops(call))
		}
		return true
	})
}

// checkClosureCaptures inspects one scheduled closure's free variables
// for mutate-before-fire hazards.
func checkClosureCaptures(p *Pass, body *ast.BlockStmt, call *ast.CallExpr, fl *ast.FuncLit,
	inAnyLit func(token.Pos) bool, enclosingLoops []ast.Node) {

	reported := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || reported[obj] {
			return true
		}
		// Free variable: declared in the enclosing function (inside the
		// body, before the closure) — not a package-level or closure-own
		// variable, not a field.
		if obj.Pos() < body.Pos() || obj.Pos() >= body.End() || (obj.Pos() >= fl.Pos() && obj.Pos() < fl.End()) {
			return true
		}
		if hazard := mutateBeforeFire(p, body, call, obj, inAnyLit, enclosingLoops); hazard != "" {
			reported[obj] = true
			p.Report("event-closure-capture", id.Pos(),
				"closure scheduled by Engine.%s captures %s, which is %s; the event will read the mutated value at fire time — bind a copy (%s := %s) or pass the value at schedule time",
				schedulerName(p, call), obj.Name(), hazard, obj.Name(), obj.Name())
		}
		return true
	})
}

func schedulerName(p *Pass, call *ast.CallExpr) string {
	if fn := p.funcFor(call.Fun); fn != nil {
		return fn.Name()
	}
	return "At"
}

// mutateBeforeFire describes how obj is mutated between scheduling and
// firing, or returns "" when it is not.
//
// Only direct rebinding of the variable itself counts (`v = ...`,
// `v++`): that is the classic capture hazard where the closure observes
// a different binding than the one live at schedule time. Field and
// index writes *through* the variable (`rig.RM.X = 5`, `f.done = fn`)
// are deliberately excluded — capturing a struct or pointer and
// mutating its fields is the normal live-state pattern of the
// single-threaded engine, and the mutation order is itself
// deterministic event-loop order.
func mutateBeforeFire(p *Pass, body *ast.BlockStmt, call *ast.CallExpr, obj types.Object,
	inAnyLit func(token.Pos) bool, enclosingLoops []ast.Node) string {

	// The innermost loop that both contains the call and was declared
	// after obj: writes anywhere in it run again before the event fires.
	var loop ast.Node
	for _, l := range enclosingLoops {
		if obj.Pos() < l.Pos() {
			loop = l // keep innermost (slice is outermost-first)
		}
	}

	hazard := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		var target ast.Expr
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if directIdentObj(p, lhs) == obj {
					target = lhs
					break
				}
			}
		case *ast.IncDecStmt:
			if directIdentObj(p, x.X) == obj {
				target = x.X
			}
		}
		if target == nil {
			return true
		}
		pos := target.Pos()
		if inAnyLit(pos) {
			return true // event-time mutation, not scheduler-time
		}
		switch {
		case pos >= call.End():
			hazard = "mutated after the event is scheduled"
		case loop != nil && pos >= loop.Pos() && pos < loop.End():
			hazard = "mutated across loop iterations while the event is pending"
		}
		return hazard == ""
	})
	return hazard
}

// directIdentObj resolves e to its object only when e is the bare
// identifier (possibly parenthesized) — not a field/index expression
// rooted at it.
func directIdentObj(p *Pass, e ast.Expr) types.Object {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = pe.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}
