package lint

import (
	"go/ast"
	"go/types"
)

// FuncNode is one module-declared function (or method) with a body, the
// unit of the interprocedural analysis.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Callees are the module-internal functions this body calls, in
	// first-call-site order, deduplicated.
	Callees []*types.Func
}

// QualifiedName renders the node's name as package.Func or
// package.(Recv).Method, matching how explanation paths refer to it.
func (n *FuncNode) QualifiedName() string {
	name := n.Fn.Name()
	if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if n.Fn.Pkg() != nil {
		return n.Fn.Pkg().Name() + "." + name
	}
	return name
}

// CallGraph is the module-wide function call graph: every declared
// function with a body, plus caller→callee edges between them. Node
// order is deterministic (package import-path order, then source
// order), so every downstream traversal is reproducible.
type CallGraph struct {
	// Order lists every node in deterministic order.
	Order []*FuncNode

	// Nodes resolves a *types.Func to its node.
	Nodes map[*types.Func]*FuncNode
}

// buildCallGraph indexes every function declaration of the module and
// records the module-internal calls each body makes.
func buildCallGraph(m *Module) *CallGraph {
	cg := &CallGraph{Nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				cg.Nodes[fn] = node
				cg.Order = append(cg.Order, node)
			}
		}
	}
	// Second pass: edges. The node map must be complete first so calls
	// to functions declared later (or in other packages) resolve.
	for _, node := range cg.Order {
		seen := make(map[*types.Func]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcForInfo(node.Pkg.Info, call.Fun)
			if callee == nil || seen[callee] {
				return true
			}
			if _, inModule := cg.Nodes[callee]; !inModule {
				return true
			}
			seen[callee] = true
			node.Callees = append(node.Callees, callee)
			return true
		})
	}
	return cg
}
