// Package lint implements mrlint, the project's determinism and
// simulation-safety static analysis suite. It is built on the standard
// library only (go/ast, go/parser, go/token, go/types): the build
// environment is offline and the module carries zero dependencies.
//
// The analyzers lock in the invariants that make every simulation
// bit-for-bit reproducible (see docs/LINTING.md):
//
//	no-wallclock       real time never leaks into simulated components
//	no-global-rand     all randomness flows through seeded *rand.Rand
//	ordered-map-iter   map iteration order never reaches output/events
//	conf-key-literal   Hadoop parameter names come from mrconf constants
//	config-get-in-loop hot scheduling loops read compiled config snapshots
//	mutex-copy         sync.Mutex / sync.WaitGroup never passed by value
//
// Any finding can be suppressed — with a recorded reason — by a
// directive comment on the offending line or on the line directly
// above it:
//
//	//mrlint:ignore <rule>[,<rule>...] <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	File    string `json:"file"` // module-root-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		GlobalRandAnalyzer,
		MapIterAnalyzer,
		ConfKeyAnalyzer,
		ConfigGetLoopAnalyzer,
		MutexCopyAnalyzer,
	}
}

// Select returns the analyzers whose names appear in the comma-separated
// list. An empty list selects all.
func Select(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(RuleNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// RuleNames lists every analyzer name.
func RuleNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// Pass carries one type-checked package through the analyzers.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// ModuleRoot is the absolute directory of the module under
	// analysis; findings report paths relative to it.
	ModuleRoot string

	// ConfKeys holds the canonical Hadoop parameter names: the values
	// of the string constants declared in internal/mrconf. The loader
	// populates it after checking that package.
	ConfKeys map[string]bool

	ignores  map[string]map[int]map[string]bool // file -> line -> rule set
	findings *[]Finding
}

// NewPass assembles a pass and indexes its ignore directives.
func NewPass(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, moduleRoot string, sink *[]Finding) *Pass {
	p := &Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		ModuleRoot: moduleRoot,
		findings:   sink,
		ignores:    make(map[string]map[int]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p.indexDirective(c)
			}
		}
	}
	return p
}

const directivePrefix = "//mrlint:ignore"

func (p *Pass) indexDirective(c *ast.Comment) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	// Require a space (or end) after the prefix so "//mrlint:ignorex"
	// is not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return // malformed: no rule named; never silently ignore everything
	}
	pos := p.Fset.Position(c.Pos())
	byLine := p.ignores[pos.Filename]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		p.ignores[pos.Filename] = byLine
	}
	for _, rule := range strings.Split(fields[0], ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		// The directive covers its own line and the line below, so it
		// works both trailing the offending code and on its own line
		// above it.
		for _, line := range []int{pos.Line, pos.Line + 1} {
			if byLine[line] == nil {
				byLine[line] = make(map[string]bool)
			}
			byLine[line][rule] = true
		}
	}
}

// Ignored reports whether findings for rule at pos are suppressed by an
// ignore directive.
func (p *Pass) Ignored(rule string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	byLine := p.ignores[position.Filename]
	if byLine == nil {
		return false
	}
	return byLine[position.Line][rule]
}

// Rel converts an absolute file name to a module-root-relative path.
func (p *Pass) Rel(file string) string {
	if rel, err := filepath.Rel(p.ModuleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// RelFile returns the module-relative path of the file containing pos.
func (p *Pass) RelFile(pos token.Pos) string {
	return p.Rel(p.Fset.Position(pos).Filename)
}

// Report records a finding unless an ignore directive covers it.
func (p *Pass) Report(rule string, pos token.Pos, format string, args ...any) {
	if p.Ignored(rule, pos) {
		return
	}
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:    p.Rel(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// SortFindings orders findings by file, line, column, then rule, so
// output is stable across runs.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// funcFor resolves an identifier or selector use to the *types.Func it
// denotes, or nil.
func (p *Pass) funcFor(expr ast.Expr) *types.Func {
	switch e := expr.(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.ParenExpr:
		return p.funcFor(e.X)
	}
	return nil
}

// pkgPath returns the import path of the package a function belongs to
// ("" for builtins and universe-scope objects).
func pkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
