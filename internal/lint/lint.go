// Package lint implements mrlint, the project's determinism and
// simulation-safety static analysis suite. It is built on the standard
// library only (go/ast, go/parser, go/token, go/types): the build
// environment is offline and the module carries zero dependencies.
//
// The analyzers lock in the invariants that make every simulation
// bit-for-bit reproducible (see docs/LINTING.md):
//
//	no-wallclock          real time never leaks into simulated components
//	no-global-rand        all randomness flows through seeded *rand.Rand
//	ordered-map-iter      map iteration order never reaches output/events
//	float-map-accum       no floating-point accumulation in map-range order
//	nondet-flow           map-iteration order never reaches a sink through calls
//	conf-key-literal      Hadoop parameter names come from mrconf constants
//	config-get-in-loop    hot scheduling loops read compiled config snapshots
//	mutex-copy            sync.Mutex / sync.WaitGroup never passed by value
//	no-goroutine-in-sim   simulated packages stay single-threaded
//	event-closure-capture scheduled closures snapshot state at schedule time
//	malformed-directive   every suppression names a rule and a reason
//
// Most rules are intraprocedural and run per package. nondet-flow is
// interprocedural: it builds a module-wide call graph and per-function
// taint summaries (callgraph.go, taint.go) and propagates them to a
// fixpoint, so a nondeterministically ordered value is tracked from its
// source through any chain of calls to an order-sensitive sink. Its
// findings carry the full source→call-chain→sink path (Finding.Path).
//
// Any finding can be suppressed — with a recorded reason — by a
// directive comment on the offending line or on the line directly
// above it:
//
//	//mrlint:ignore <rule>[,<rule>...] <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Step is one hop of a source→sink explanation: where nondeterminism
// entered, which calls carried it, and where it became observable.
type Step struct {
	File string `json:"file"` // module-root-relative path
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Func string `json:"func"` // enclosing function, package-qualified
	What string `json:"what"` // what happens at this hop
}

func (s Step) String() string {
	return fmt.Sprintf("%s:%d:%d: in %s: %s", s.File, s.Line, s.Col, s.Func, s.What)
}

// Finding is one rule violation at a source position. Interprocedural
// findings additionally carry the source→sink path that explains them.
type Finding struct {
	File    string `json:"file"` // module-root-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`

	// Path explains an interprocedural finding as an ordered chain of
	// steps from the nondeterminism source to the order-sensitive sink
	// (nondet-flow only; nil for intraprocedural rules).
	Path []Step `json:"path,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Explain renders the finding with its full path, one hop per indented
// line, so a violation three functions deep reads like a stack trace.
func (f Finding) Explain() string {
	var b strings.Builder
	b.WriteString(f.String())
	for i, s := range f.Path {
		fmt.Fprintf(&b, "\n    %d. %s", i+1, s)
	}
	return b.String()
}

// Analyzer is one named check. Per-package analyzers set Run and see
// one type-checked package at a time; module analyzers set RunModule
// and see the whole module (call graph, taint summaries) at once.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		GlobalRandAnalyzer,
		MapIterAnalyzer,
		FloatMapAccumAnalyzer,
		ConfKeyAnalyzer,
		ConfigGetLoopAnalyzer,
		RetainedAppendAnalyzer,
		MutexCopyAnalyzer,
		GoroutineInSimAnalyzer,
		CrossShardEventAnalyzer,
		EventClosureCaptureAnalyzer,
		NondetFlowAnalyzer,
		MalformedDirectiveAnalyzer,
	}
}

// Select returns the analyzers whose names appear in the comma-separated
// list. An empty list selects all.
func Select(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(RuleNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// RuleNames lists every analyzer name.
func RuleNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// knownRule reports whether name is one of the suite's rule names.
func knownRule(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Pass carries one type-checked package through the per-package
// analyzers.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// ModuleRoot is the absolute directory of the module under
	// analysis; findings report paths relative to it.
	ModuleRoot string

	// ConfKeys holds the canonical Hadoop parameter names: the values
	// of the string constants declared in internal/mrconf. The loader
	// populates it after checking that package.
	ConfKeys map[string]bool

	dirs     *directiveIndex
	findings *[]Finding
}

// NewPass assembles a pass over one package, sharing the module-wide
// directive index (nil to index only this package's own files).
func NewPass(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, moduleRoot string, dirs *directiveIndex, sink *[]Finding) *Pass {
	if dirs == nil {
		dirs = newDirectiveIndex(fset, moduleRoot)
		for _, f := range files {
			dirs.indexFile(f)
		}
	}
	return &Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		ModuleRoot: moduleRoot,
		findings:   sink,
		dirs:       dirs,
	}
}

// Ignored reports whether findings for rule at pos are suppressed by an
// ignore directive.
func (p *Pass) Ignored(rule string, pos token.Pos) bool {
	return p.dirs.ignored(rule, p.Fset.Position(pos))
}

// Rel converts an absolute file name to a module-root-relative path.
func (p *Pass) Rel(file string) string {
	return relPath(p.ModuleRoot, file)
}

func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// RelFile returns the module-relative path of the file containing pos.
func (p *Pass) RelFile(pos token.Pos) string {
	return p.Rel(p.Fset.Position(pos).Filename)
}

// Report records a finding unless an ignore directive covers it.
func (p *Pass) Report(rule string, pos token.Pos, format string, args ...any) {
	if p.Ignored(rule, pos) {
		return
	}
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:    p.Rel(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ModulePass carries the whole module through the module-level
// analyzers. The call graph and taint summaries are built once, on
// first use, and shared by every module analyzer.
type ModulePass struct {
	Module *Module

	dirs     *directiveIndex
	findings *[]Finding

	cg    *CallGraph
	taint *taintResult
}

// CallGraph returns the module call graph, building it on first use.
func (mp *ModulePass) CallGraph() *CallGraph {
	if mp.cg == nil {
		mp.cg = buildCallGraph(mp.Module)
	}
	return mp.cg
}

// Taint returns the interprocedural taint summaries, computing them on
// first use.
func (mp *ModulePass) Taint() *taintResult {
	if mp.taint == nil {
		mp.taint = computeTaint(mp.Module, mp.CallGraph())
	}
	return mp.taint
}

// Rel converts an absolute file name to a module-root-relative path.
func (mp *ModulePass) Rel(file string) string {
	return relPath(mp.Module.Root, file)
}

// Ignored reports whether findings for rule at pos are suppressed.
func (mp *ModulePass) Ignored(rule string, pos token.Pos) bool {
	return mp.dirs.ignored(rule, mp.Module.Fset.Position(pos))
}

// Report records a module-level finding (with an optional explanation
// path) unless an ignore directive covers its position.
func (mp *ModulePass) Report(rule string, pos token.Pos, path []Step, format string, args ...any) {
	if mp.Ignored(rule, pos) {
		return
	}
	position := mp.Module.Fset.Position(pos)
	*mp.findings = append(*mp.findings, Finding{
		File:    mp.Rel(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
		Path:    path,
	})
}

// SortFindings orders findings by file, line, column, then rule, so
// output is stable across runs.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// funcFor resolves an identifier or selector use to the *types.Func it
// denotes, or nil.
func (p *Pass) funcFor(expr ast.Expr) *types.Func {
	return funcForInfo(p.Info, expr)
}

// funcForInfo resolves an identifier or selector use to the *types.Func
// it denotes in the given type info, or nil.
func funcForInfo(info *types.Info, expr ast.Expr) *types.Func {
	switch e := expr.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.ParenExpr:
		return funcForInfo(info, e.X)
	}
	return nil
}

// pkgPath returns the import path of the package a function belongs to
// ("" for builtins and universe-scope objects).
func pkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
