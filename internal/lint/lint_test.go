package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixtureModule materializes the given files as a temporary
// module (adding a default go.mod when absent) and returns its root.
func writeFixtureModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module fixture\n\ngo 1.22\n"
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// lintFiles writes the given files into a temporary module, loads it
// with the production loader, and runs the selected rules (all when
// rules is empty).
func lintFiles(t *testing.T, rules string, files map[string]string) []Finding {
	t.Helper()
	mod, err := LoadModule(writeFixtureModule(t, files))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	analyzers, err := Select(rules)
	if err != nil {
		t.Fatalf("Select(%q): %v", rules, err)
	}
	return mod.Run(analyzers)
}

func countRule(fs []Finding, rule string) int {
	n := 0
	for _, f := range fs {
		if f.Rule == rule {
			n++
		}
	}
	return n
}

// miniMrconf gives the conf-key-literal analyzer a Config type and one
// registered constant to resolve against.
const miniMrconf = `package mrconf

const IOSortMB = "mapreduce.task.io.sort.mb"

type Config struct{ v float64 }

func (c Config) Get(name string) float64            { return c.v }
func (c Config) With(name string, v float64) Config { return Config{v: v} }
func (c Config) SortMB() float64                    { return c.v }
func (c Config) Snapshot() Snapshot                 { return Snapshot{v: c.v} }

type Snapshot struct{ v float64 }

func (s *Snapshot) SortMB() float64 { return s.v }
`

// miniSim gives the ordered-map-iter analyzer an Engine with scheduler
// methods.
const miniSim = `package sim

type Engine struct{ n int }

func (e *Engine) After(d float64, fn func()) { e.n++ }
func (e *Engine) At(t float64, fn func())    { e.n++ }
`

func TestAnalyzersTableDriven(t *testing.T) {
	cases := []struct {
		name  string
		rule  string
		file  string // path inside the fixture module
		src   string
		extra map[string]string // additional support files
		want  int               // findings expected for rule
	}{
		// ---- no-wallclock ----
		{
			name: "wallclock positive time.Now",
			rule: "no-wallclock",
			file: "internal/x/x.go",
			src: `package x
import "time"
func Now() int64 { return time.Now().UnixNano() }
`,
			want: 1,
		},
		{
			name: "wallclock positive Sleep and Since",
			rule: "no-wallclock",
			file: "cmd/tool/main.go",
			src: `package main
import "time"
func main() {
	t := time.Now()
	time.Sleep(time.Second)
	_ = time.Since(t)
}
`,
			want: 3,
		},
		{
			name: "wallclock negative duration arithmetic ok",
			rule: "no-wallclock",
			file: "internal/x/x.go",
			src: `package x
import "time"
func D() time.Duration { return 3 * time.Second }
`,
			want: 0,
		},
		{
			name: "wallclock negative outside internal and cmd",
			rule: "no-wallclock",
			file: "examples/demo/main.go",
			src: `package main
import "time"
func main() { _ = time.Now() }
`,
			want: 0,
		},
		{
			name: "wallclock negative test file",
			rule: "no-wallclock",
			file: "internal/x/x_test.go",
			src: `package x
import (
	"testing"
	"time"
)
func TestReal(t *testing.T) { _ = time.Now() }
`,
			extra: map[string]string{"internal/x/x.go": "package x\n"},
			want:  0,
		},
		{
			name: "wallclock ignore directive same line",
			rule: "no-wallclock",
			file: "internal/x/x.go",
			src: `package x
import "time"
func Now() int64 { return time.Now().UnixNano() } //mrlint:ignore no-wallclock process startup stamp
`,
			want: 0,
		},
		{
			name: "wallclock ignore directive line above",
			rule: "no-wallclock",
			file: "internal/x/x.go",
			src: `package x
import "time"
func Now() int64 {
	//mrlint:ignore no-wallclock process startup stamp
	return time.Now().UnixNano()
}
`,
			want: 0,
		},
		{
			name: "wallclock directive for other rule does not suppress",
			rule: "no-wallclock",
			file: "internal/x/x.go",
			src: `package x
import "time"
func Now() int64 { return time.Now().UnixNano() } //mrlint:ignore no-global-rand wrong rule
`,
			want: 1,
		},

		// ---- no-global-rand ----
		{
			name: "globalrand positive Float64",
			rule: "no-global-rand",
			file: "internal/x/x.go",
			src: `package x
import "math/rand"
func F() float64 { return rand.Float64() }
`,
			want: 1,
		},
		{
			name: "globalrand positive in test file too",
			rule: "no-global-rand",
			file: "internal/x/x_test.go",
			src: `package x
import (
	"math/rand"
	"testing"
)
func TestF(t *testing.T) { _ = rand.Intn(5) }
`,
			extra: map[string]string{"internal/x/x.go": "package x\n"},
			want:  1,
		},
		{
			name: "globalrand negative seeded instance",
			rule: "no-global-rand",
			file: "internal/x/x.go",
			src: `package x
import "math/rand"
func F(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
`,
			want: 0,
		},
		{
			name: "globalrand negative exempt rng.go",
			rule: "no-global-rand",
			file: "internal/sim/rng.go",
			src: `package sim
import "math/rand"
func F() float64 { return rand.Float64() }
`,
			want: 0,
		},
		{
			name: "globalrand ignore directive",
			rule: "no-global-rand",
			file: "internal/x/x.go",
			src: `package x
import "math/rand"
func F() float64 { return rand.Float64() } //mrlint:ignore no-global-rand demo only
`,
			want: 0,
		},

		// ---- ordered-map-iter ----
		{
			name: "mapiter positive append unsorted",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`,
			want: 1,
		},
		{
			name: "mapiter positive output",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
import "fmt"
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`,
			want: 1,
		},
		{
			name: "mapiter positive builder write",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
import "strings"
func Dump(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`,
			want: 1,
		},
		{
			name: "mapiter positive sim scheduling",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/sim"
func Schedule(e *sim.Engine, m map[string]float64) {
	for _, d := range m {
		e.After(d, func() {})
	}
}
`,
			extra: map[string]string{"internal/sim/engine.go": miniSim},
			want:  1,
		},
		{
			name: "mapiter negative collect then sort",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
import "sort"
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`,
			want: 0,
		},
		{
			name: "mapiter negative sort.Slice",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
import "sort"
func Vals(m map[string]float64) []float64 {
	var vs []float64
	for _, v := range m {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}
`,
			want: 0,
		},
		{
			name: "mapiter negative order-insensitive aggregation",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
`,
			want: 0,
		},
		{
			name: "mapiter negative map-to-map copy",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
func Copy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
`,
			want: 0,
		},
		{
			name: "mapiter negative range over slice",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
import "fmt"
func Dump(s []string) {
	for _, v := range s {
		fmt.Println(v)
	}
}
`,
			want: 0,
		},
		{
			name: "mapiter ignore directive",
			rule: "ordered-map-iter",
			file: "internal/x/x.go",
			src: `package x
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //mrlint:ignore ordered-map-iter order irrelevant, set semantics
	}
	return keys
}
`,
			want: 0,
		},

		// ---- conf-key-literal ----
		{
			name: "confkey positive typo in Get",
			rule: "conf-key-literal",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/mrconf"
func F(c mrconf.Config) float64 { return c.Get("mapreduce.task.io.sortt.mb") }
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  1,
		},
		{
			name: "confkey positive typo in With",
			rule: "conf-key-literal",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/mrconf"
func F(c mrconf.Config) mrconf.Config { return c.With("mapreduce.map.sort.mb", 1) }
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  1,
		},
		{
			name: "confkey negative registered literal",
			rule: "conf-key-literal",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/mrconf"
func F(c mrconf.Config) float64 { return c.Get("mapreduce.task.io.sort.mb") }
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  0,
		},
		{
			name: "confkey negative named constant",
			rule: "conf-key-literal",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/mrconf"
func F(c mrconf.Config) float64 { return c.Get(mrconf.IOSortMB) }
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  0,
		},
		{
			name: "confkey negative unrelated Get method",
			rule: "conf-key-literal",
			file: "internal/x/x.go",
			src: `package x
type KB struct{}
func (KB) Get(key string) (float64, bool) { return 0, false }
func F(kb KB) { kb.Get("anything") }
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  0,
		},
		{
			name: "confkey ignore directive",
			rule: "conf-key-literal",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/mrconf"
func F(c mrconf.Config) float64 {
	//mrlint:ignore conf-key-literal deliberately unknown key for a panic test
	return c.Get("mapreduce.no.such.parameter")
}
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  0,
		},

		// ---- config-get-in-loop ----
		{
			name: "configloop positive Get in hot-package loop",
			rule: "config-get-in-loop",
			file: "internal/yarn/x.go",
			src: `package yarn
import "fixture/internal/mrconf"
func Sum(c mrconf.Config, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += c.Get(mrconf.IOSortMB)
	}
	return total
}
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  1,
		},
		{
			name: "configloop positive named accessor in range loop",
			rule: "config-get-in-loop",
			file: "internal/mapreduce/x.go",
			src: `package mapreduce
import "fixture/internal/mrconf"
func Sum(c mrconf.Config, xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x * c.SortMB()
	}
	return total
}
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  1,
		},
		{
			name: "configloop negative cold package",
			rule: "config-get-in-loop",
			file: "internal/core/x.go",
			src: `package core
import "fixture/internal/mrconf"
func Sum(c mrconf.Config, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += c.Get(mrconf.IOSortMB)
	}
	return total
}
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  0,
		},
		{
			name: "configloop negative call outside loop",
			rule: "config-get-in-loop",
			file: "internal/yarn/x.go",
			src: `package yarn
import "fixture/internal/mrconf"
func F(c mrconf.Config) float64 { return c.Get(mrconf.IOSortMB) }
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  0,
		},
		{
			name: "configloop negative hoisted snapshot",
			rule: "config-get-in-loop",
			file: "internal/yarn/x.go",
			src: `package yarn
import "fixture/internal/mrconf"
func Sum(c mrconf.Config, n int) float64 {
	s := c.Snapshot()
	total := 0.0
	for i := 0; i < n; i++ {
		total += s.SortMB()
	}
	return total
}
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  0,
		},
		{
			name: "configloop negative Snapshot call inside loop",
			rule: "config-get-in-loop",
			file: "internal/yarn/x.go",
			src: `package yarn
import "fixture/internal/mrconf"
func Sum(cs []mrconf.Config) float64 {
	total := 0.0
	for _, c := range cs {
		s := c.Snapshot()
		total += s.SortMB()
	}
	return total
}
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  0,
		},
		{
			name: "configloop negative test file in hot package",
			rule: "config-get-in-loop",
			file: "internal/yarn/x_test.go",
			src: `package yarn
import (
	"testing"

	"fixture/internal/mrconf"
)
func TestSum(t *testing.T) {
	var c mrconf.Config
	for i := 0; i < 3; i++ {
		_ = c.Get(mrconf.IOSortMB)
	}
}
`,
			extra: map[string]string{
				"internal/mrconf/params.go": miniMrconf,
				"internal/yarn/x.go":        "package yarn\n",
			},
			want: 0,
		},
		{
			name: "configloop ignore directive",
			rule: "config-get-in-loop",
			file: "internal/yarn/x.go",
			src: `package yarn
import "fixture/internal/mrconf"
func Sum(c mrconf.Config, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += c.Get(mrconf.IOSortMB) //mrlint:ignore config-get-in-loop one-shot setup loop
	}
	return total
}
`,
			extra: map[string]string{"internal/mrconf/params.go": miniMrconf},
			want:  0,
		},

		// ---- retained-append ----
		{
			name: "retainedappend positive grow-only field",
			rule: "retained-append",
			file: "internal/yarn/x.go",
			src: `package yarn
type Log struct{ entries []string }
func (l *Log) Add(m string) { l.entries = append(l.entries, m) }
`,
			want: 1,
		},
		{
			name: "retainedappend negative truncation reset",
			rule: "retained-append",
			file: "internal/yarn/x.go",
			src: `package yarn
type Buf struct{ items []int }
func (b *Buf) Push(v int) { b.items = append(b.items, v) }
func (b *Buf) Reset()     { b.items = b.items[:0] }
`,
			want: 0,
		},
		{
			name: "retainedappend negative append onto truncation",
			rule: "retained-append",
			file: "internal/cluster/x.go",
			src: `package cluster
type Wave struct{ flows []int }
func (w *Wave) Start(f, g int) { w.flows = append(w.flows[:0], f, g) }
func (w *Wave) More(f int)     { w.flows = append(w.flows, f) }
`,
			want: 0,
		},
		{
			name: "retainedappend negative whole-struct recycle",
			rule: "retained-append",
			file: "internal/mapreduce/x.go",
			src: `package mapreduce
type Task struct{ flows []int }
func (t *Task) Track(f int) { t.flows = append(t.flows, f) }
func Recycle(t *Task)       { *t = Task{flows: t.flows[:0]} }
`,
			want: 0,
		},
		{
			name: "retainedappend negative cold package",
			rule: "retained-append",
			file: "internal/report/x.go",
			src: `package report
type Doc struct{ lines []string }
func (d *Doc) Add(m string) { d.lines = append(d.lines, m) }
`,
			want: 0,
		},
		{
			name: "retainedappend negative local slice append",
			rule: "retained-append",
			file: "internal/yarn/x.go",
			src: `package yarn
func Collect(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
`,
			want: 0,
		},
		{
			name: "retainedappend ignore directive",
			rule: "retained-append",
			file: "internal/yarn/x.go",
			src: `package yarn
type Log struct{ entries []string }
func (l *Log) Add(m string) {
	l.entries = append(l.entries, m) //mrlint:ignore retained-append opt-in retained log for tests
}
`,
			want: 0,
		},

		// ---- mutex-copy ----
		{
			name: "mutexcopy positive parameter",
			rule: "mutex-copy",
			file: "internal/x/x.go",
			src: `package x
import "sync"
func F(mu sync.Mutex) { mu.Lock() }
`,
			want: 1,
		},
		{
			name: "mutexcopy positive waitgroup and receiver",
			rule: "mutex-copy",
			file: "internal/x/x.go",
			src: `package x
import "sync"
type S struct{ mu sync.Mutex }
func (s S) Wait(wg sync.WaitGroup) { wg.Wait() }
`,
			want: 1, // the wg parameter; value receiver S embeds, not is, a Mutex
		},
		{
			name: "mutexcopy positive func literal",
			rule: "mutex-copy",
			file: "internal/x/x.go",
			src: `package x
import "sync"
var F = func(wg sync.WaitGroup) { wg.Wait() }
`,
			want: 1,
		},
		{
			name: "mutexcopy negative pointers",
			rule: "mutex-copy",
			file: "internal/x/x.go",
			src: `package x
import "sync"
func F(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait()
}
`,
			want: 0,
		},
		{
			name: "mutexcopy ignore directive",
			rule: "mutex-copy",
			file: "internal/x/x.go",
			src: `package x
import "sync"
func F(mu sync.Mutex) { mu.Lock() } //mrlint:ignore mutex-copy demo of a broken pattern
`,
			want: 0,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{tc.file: tc.src}
			for name, src := range tc.extra {
				files[name] = src
			}
			findings := lintFiles(t, tc.rule, files)
			if got := countRule(findings, tc.rule); got != tc.want {
				t.Errorf("got %d findings for %s, want %d\nall findings: %v",
					got, tc.rule, tc.want, findings)
			}
		})
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := Select("no-wallclock, mutex-copy")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select two = %d, err %v", len(two), err)
	}
	if _, err := Select("no-such-rule"); err == nil {
		t.Fatal("Select of unknown rule did not error")
	}
}

func TestFindingStringFormat(t *testing.T) {
	f := Finding{File: "internal/x/x.go", Line: 3, Col: 7, Rule: "no-wallclock", Message: "msg"}
	want := "internal/x/x.go:3:7: [no-wallclock] msg"
	if f.String() != want {
		t.Fatalf("String() = %q, want %q", f.String(), want)
	}
}

func TestMalformedDirectiveDoesNotSuppress(t *testing.T) {
	// A bare //mrlint:ignore with no rule must not become a blanket
	// suppression.
	findings := lintFiles(t, "no-wallclock", map[string]string{
		"internal/x/x.go": `package x
import "time"
func Now() int64 { return time.Now().UnixNano() } //mrlint:ignore
`,
	})
	if countRule(findings, "no-wallclock") != 1 {
		t.Fatalf("malformed directive suppressed the finding: %v", findings)
	}
}

func TestSortFindingsStable(t *testing.T) {
	fs := []Finding{
		{File: "b.go", Line: 1, Rule: "r"},
		{File: "a.go", Line: 9, Rule: "r"},
		{File: "a.go", Line: 2, Rule: "r"},
	}
	SortFindings(fs)
	if fs[0].File != "a.go" || fs[0].Line != 2 || fs[2].File != "b.go" {
		t.Fatalf("unexpected order: %v", fs)
	}
}

func TestExternalTestPackagesAreLinted(t *testing.T) {
	findings := lintFiles(t, "no-global-rand", map[string]string{
		"internal/x/x.go": "package x\nfunc X() int { return 1 }\n",
		"internal/x/ext_test.go": `package x_test
import (
	"math/rand"
	"testing"

	"fixture/internal/x"
)
func TestX(t *testing.T) {
	if x.X() != 1 {
		t.Fatal(rand.Intn(2))
	}
}
`,
	})
	if countRule(findings, "no-global-rand") != 1 {
		t.Fatalf("external test package not linted: %v", findings)
	}
}

func TestModuleRootRelativePaths(t *testing.T) {
	findings := lintFiles(t, "mutex-copy", map[string]string{
		"internal/x/x.go": `package x
import "sync"
func F(mu sync.Mutex) { mu.Lock() }
`,
	})
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	if f := findings[0]; f.File != "internal/x/x.go" || strings.Contains(f.File, "..") {
		t.Fatalf("finding path not module-relative: %q", f.File)
	}
}
