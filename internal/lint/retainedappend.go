package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RetainedAppendAnalyzer implements the retained-append rule: in the
// hot simulation packages, a struct field that only ever grows —
// `x.f = append(x.f, ...)` with no reset, truncation, or whole-struct
// recycle anywhere in the package — is a memory leak in disguise on
// the continuous-serving path, where the same objects live for a
// simulated day of arrivals. The pre-serving-path trace.Recorder was
// exactly this shape: every event appended, nothing ever released.
//
// A field counts as released if the package ever (a) assigns it
// anything other than a self-append (nil, [:0], make, a fresh slice),
// (b) self-appends onto a truncation (`x.f = append(x.f[:0], ...)`),
// or (c) clears the whole struct (`*x = T{...}`), the idiom the object
// pools use. Deliberate retention — construction-time topology, the
// opt-in Recorder — carries a reasoned //mrlint:ignore directive.
var RetainedAppendAnalyzer = &Analyzer{
	Name: "retained-append",
	Doc:  "flag struct-field appends with no reset/recycle in hot packages; grow-forever state breaks the flat-memory serving path",
	Run:  runRetainedAppend,
}

// retainedAppendHotPkgs are the package-path suffixes whose objects
// survive across jobs in a serving run (suffix-matched so test
// fixtures qualify too).
var retainedAppendHotPkgs = []string{
	"internal/mapreduce",
	"internal/yarn",
	"internal/cluster",
	"internal/hdfs",
	"internal/trace",
	"internal/tuner",
}

func runRetainedAppend(p *Pass) {
	hot := false
	for _, suffix := range retainedAppendHotPkgs {
		if pathHasSuffix(p.Pkg.Path(), suffix) {
			hot = true
			break
		}
	}
	if !hot {
		return
	}

	type fieldState struct {
		owner    *types.TypeName // named type declaring the field
		name     string
		growPos  token.Pos // first grow site
		grown    bool
		released bool
	}
	fields := make(map[*types.Var]*fieldState)
	cleared := make(map[*types.TypeName]bool)

	// fieldOf resolves expr to a slice-typed struct field declared in
	// this package, along with its owning named type.
	fieldOf := func(expr ast.Expr) (*types.Var, *types.TypeName) {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return nil, nil
		}
		f, ok := s.Obj().(*types.Var)
		if !ok || f.Pkg() != p.Pkg {
			return nil, nil
		}
		if _, isSlice := f.Type().Underlying().(*types.Slice); !isSlice {
			return nil, nil
		}
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() != p.Pkg {
			return nil, nil
		}
		return f, named.Obj()
	}

	state := func(f *types.Var, owner *types.TypeName) *fieldState {
		st, ok := fields[f]
		if !ok {
			st = &fieldState{owner: owner, name: f.Name()}
			fields[f] = st
		}
		return st
	}

	// selfAppend reports whether rhs is append(...) growing exactly the
	// given field: first argument selects the same field object (a
	// truncating `append(x.f[:0], ...)` does not count — that releases).
	selfAppend := func(rhs ast.Expr, f *types.Var) bool {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			return false
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		af, _ := fieldOf(call.Args[0])
		return af == f
	}

	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range as.Lhs {
				// Whole-struct clear: `*x = T{...}` (or any assignment
				// through a named struct value) rewrites every field —
				// the pools' recycle idiom.
				if star, ok := lhs.(*ast.StarExpr); ok {
					t := p.Info.TypeOf(star)
					if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == p.Pkg {
						if _, isStruct := named.Underlying().(*types.Struct); isStruct {
							cleared[named.Obj()] = true
						}
					}
					continue
				}
				f, owner := fieldOf(lhs)
				if f == nil {
					continue
				}
				st := state(f, owner)
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs != nil && selfAppend(rhs, f) {
					if !st.grown {
						st.grown = true
						st.growPos = as.Pos()
					}
				} else {
					st.released = true
				}
			}
			return true
		})
	}

	var flagged []*fieldState
	for _, st := range fields {
		if st.grown && !st.released && !cleared[st.owner] {
			flagged = append(flagged, st)
		}
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].growPos < flagged[j].growPos })
	for _, st := range flagged {
		p.Report("retained-append", st.growPos,
			"%s.%s only ever grows (append with no reset, truncation, or recycle in this package); on the serving path this retains forever — release it or document intended retention with an ignore directive",
			st.owner.Name(), st.name)
	}
}
