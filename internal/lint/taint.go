package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the interprocedural nondeterminism-taint engine
// behind the nondet-flow rule (nondetflow.go).
//
// The model: a value is "order-tainted" when its content depends on Go
// map iteration order — the canonical example is a slice of keys
// appended while ranging over a map. Taint propagates through
// assignments, append, index/slice expressions, composite literals, a
// few order-preserving stdlib helpers (fmt.Sprint*, strings.Join), and
// — the interprocedural part — through module-internal calls, using a
// per-function summary computed to a fixpoint over the call graph:
//
//	returnTaint[r]  result r is order-tainted regardless of arguments
//	paramFlow[p][r] argument p flows into result r
//	paramSink[p]    argument p reaches an order-sensitive sink inside
//	                (or transitively below) the function
//
// Inserting into a map kills taint (maps have no order); passing a
// slice to a recognized sort call kills the taint of that object (the
// collect-then-sort idiom). Sinks are order-sensitive effects: fmt
// output, io.Writer/Builder writes, and sim.Engine event scheduling.
//
// Every taint fact carries a witness path ([]Step) so a finding three
// functions deep explains itself like a stack trace. Paths are set
// once per summary slot and never replaced, which keeps the fixpoint
// monotone and the output deterministic.
//
// Known limits (deliberate, to stay stdlib-only and false-positive
// shy): no field-sensitivity (a tainted value stored in a struct field
// taints the whole object only locally), no flow through pointer
// out-parameters, receivers are not tracked as parameters, and
// function values called indirectly are not resolved.

// originKind distinguishes real nondeterminism sources from the
// assumed-tainted parameters used to compute summaries.
type originKind uint8

const (
	originSource originKind = iota // a range over a map in this module
	originParam                    // parameter p of the function under analysis
)

type origin struct {
	kind  originKind
	param int
}

// taintSet maps each origin that may taint a value to the first
// witness path discovered for it.
type taintSet map[origin][]Step

// merge adds the origins of src not already present in dst, returning
// dst (allocating it when needed).
func (dst taintSet) merge(src taintSet) taintSet {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(taintSet, len(src))
	}
	for o, path := range src {
		if _, ok := dst[o]; !ok {
			dst[o] = path
		}
	}
	return dst
}

// withStep returns a copy of ts with step appended to every path.
func (ts taintSet) withStep(step Step) taintSet {
	if len(ts) == 0 {
		return nil
	}
	out := make(taintSet, len(ts))
	for o, path := range ts {
		np := make([]Step, 0, len(path)+1)
		np = append(np, path...)
		np = append(np, step)
		out[o] = np
	}
	return out
}

// summary is the interprocedural behavior of one function, as far as
// order-taint is concerned. Slots are filled at most once.
type summary struct {
	returnTaint [][]Step         // per result; nil = clean
	paramFlow   []map[int][]Step // per param: result index -> internal path
	paramSink   [][]Step         // per param; nil = never reaches a sink
}

func newSummary(sig *types.Signature) *summary {
	np := sig.Params().Len()
	s := &summary{
		returnTaint: make([][]Step, sig.Results().Len()),
		paramFlow:   make([]map[int][]Step, np),
		paramSink:   make([][]Step, np),
	}
	return s
}

// taintResult is the converged output of the engine: summaries for
// every module function plus the interprocedural findings.
type taintResult struct {
	summaries map[*types.Func]*summary

	// Flows are the source→sink violations whose path crosses at least
	// one function boundary, in deterministic discovery order.
	Flows []Flow
}

// Flow is one interprocedural source→sink violation.
type Flow struct {
	Pos  token.Pos
	Path []Step
	Msg  string
}

// computeTaint runs the engine over the whole module: summaries to a
// fixpoint, then one reporting pass that records cross-function flows.
func computeTaint(m *Module, cg *CallGraph) *taintResult {
	res := &taintResult{summaries: make(map[*types.Func]*summary, len(cg.Order))}
	for _, node := range cg.Order {
		res.summaries[node.Fn] = newSummary(node.Fn.Type().(*types.Signature))
	}
	// Round-robin fixpoint. Taint facts are monotone bits (each summary
	// slot is written at most once), so this terminates; the iteration
	// cap is pure paranoia.
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, node := range cg.Order {
			fa := newFuncAnalysis(m, cg, res, node)
			fa.analyze()
			if fa.mergeSummary() {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting pass: with summaries stable, collect real-source flows.
	seen := make(map[token.Pos]bool)
	for _, node := range cg.Order {
		fa := newFuncAnalysis(m, cg, res, node)
		fa.report = func(pos token.Pos, path []Step, msg string) {
			if seen[pos] || !crossesFunctions(path) {
				return
			}
			seen[pos] = true
			res.Flows = append(res.Flows, Flow{Pos: pos, Path: path, Msg: msg})
		}
		fa.analyze()
	}
	return res
}

// crossesFunctions reports whether the path spans at least two distinct
// functions — intraprocedural violations are ordered-map-iter's job.
func crossesFunctions(path []Step) bool {
	for _, s := range path[1:] {
		if s.Func != path[0].Func {
			return true
		}
	}
	return false
}

// funcAnalysis walks one function body, propagating taint and
// recording summary facts (and, in the reporting pass, findings).
type funcAnalysis struct {
	m    *Module
	cg   *CallGraph
	res  *taintResult
	node *FuncNode
	info *types.Info

	taints     map[types.Object]taintSet
	paramIndex map[types.Object]int
	resultObjs []types.Object // named results, for bare returns

	sum    *summary // facts discovered this round, merged afterwards
	report func(pos token.Pos, path []Step, msg string)

	funcLits []*ast.FuncLit // spans, to attribute returns to the right function
}

func newFuncAnalysis(m *Module, cg *CallGraph, res *taintResult, node *FuncNode) *funcAnalysis {
	sig := node.Fn.Type().(*types.Signature)
	fa := &funcAnalysis{
		m:          m,
		cg:         cg,
		res:        res,
		node:       node,
		info:       node.Pkg.Info,
		taints:     make(map[types.Object]taintSet),
		paramIndex: make(map[types.Object]int),
		sum:        newSummary(sig),
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		fa.paramIndex[p] = i
		fa.taints[p] = taintSet{origin{originParam, i}: nil}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if r.Name() != "" {
			fa.resultObjs = append(fa.resultObjs, r)
		}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			fa.funcLits = append(fa.funcLits, fl)
		}
		return true
	})
	return fa
}

// step builds one explanation hop at pos.
func (fa *funcAnalysis) step(pos token.Pos, format string, args ...any) Step {
	position := fa.m.Fset.Position(pos)
	return Step{
		File: relPath(fa.m.Root, position.Filename),
		Line: position.Line,
		Col:  position.Column,
		Func: fa.node.QualifiedName(),
		What: fmt.Sprintf(format, args...),
	}
}

// analyze walks the body three times in source order. Source order
// approximates program order; the repeat passes carry taint across
// loop back-edges. Sort kills are applied in encounter order, which
// preserves the collect-then-sort idiom.
func (fa *funcAnalysis) analyze() {
	for pass := 0; pass < 3; pass++ {
		ast.Inspect(fa.node.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				fa.handleRange(x)
			case *ast.AssignStmt:
				fa.handleAssign(x)
			case *ast.ValueSpec:
				fa.handleValueSpec(x)
			case *ast.CallExpr:
				fa.handleCall(x)
			case *ast.ReturnStmt:
				fa.handleReturn(x)
			}
			return true
		})
	}
}

// mergeSummary folds this round's facts into the stored summary,
// reporting whether anything new was learned.
func (fa *funcAnalysis) mergeSummary() bool {
	stored := fa.res.summaries[fa.node.Fn]
	changed := false
	for i, path := range fa.sum.returnTaint {
		if path != nil && stored.returnTaint[i] == nil {
			stored.returnTaint[i] = path
			changed = true
		}
	}
	for p, flows := range fa.sum.paramFlow {
		for r, path := range flows {
			if stored.paramFlow[p] == nil {
				stored.paramFlow[p] = make(map[int][]Step)
			}
			if _, ok := stored.paramFlow[p][r]; !ok {
				stored.paramFlow[p][r] = path
				changed = true
			}
		}
	}
	for p, path := range fa.sum.paramSink {
		if path != nil && stored.paramSink[p] == nil {
			stored.paramSink[p] = path
			changed = true
		}
	}
	return changed
}

// inFuncLit reports whether pos lies inside a nested function literal
// (whose returns must not be attributed to the declaration).
func (fa *funcAnalysis) inFuncLit(pos token.Pos) bool {
	for _, fl := range fa.funcLits {
		if pos >= fl.Pos() && pos < fl.End() {
			return true
		}
	}
	return false
}

// addTaint merges ts into obj's taint, keeping existing witnesses.
func (fa *funcAnalysis) addTaint(obj types.Object, ts taintSet) {
	if obj == nil || len(ts) == 0 {
		return
	}
	fa.taints[obj] = fa.taints[obj].merge(ts)
}

// killTaint removes every origin from obj — the value has been sorted.
func (fa *funcAnalysis) killTaint(obj types.Object) {
	if obj != nil {
		delete(fa.taints, obj)
	}
}

// objFor resolves the root object of an lvalue-ish expression.
func (fa *funcAnalysis) objFor(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := fa.info.Uses[x]; obj != nil {
				return obj
			}
			return fa.info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMapType reports whether e's type is (or is underlyingly) a map.
func (fa *funcAnalysis) isMapType(e ast.Expr) bool {
	t := fa.info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// exprTaint computes the taint carried by an expression.
func (fa *funcAnalysis) exprTaint(e ast.Expr) taintSet {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := fa.info.Uses[x]; obj != nil {
			return fa.taints[obj]
		}
		if obj := fa.info.Defs[x]; obj != nil {
			return fa.taints[obj]
		}
	case *ast.ParenExpr:
		return fa.exprTaint(x.X)
	case *ast.StarExpr:
		return fa.exprTaint(x.X)
	case *ast.UnaryExpr:
		return fa.exprTaint(x.X)
	case *ast.TypeAssertExpr:
		return fa.exprTaint(x.X)
	case *ast.BinaryExpr:
		var ts taintSet
		ts = ts.merge(fa.exprTaint(x.X))
		ts = ts.merge(fa.exprTaint(x.Y))
		return ts
	case *ast.IndexExpr:
		var ts taintSet
		if !fa.isMapType(x.X) {
			// Element of an order-tainted slice.
			ts = ts.merge(fa.exprTaint(x.X))
		}
		// Selecting by an order-tainted key is order-driven either way.
		ts = ts.merge(fa.exprTaint(x.Index))
		return ts
	case *ast.SliceExpr:
		return fa.exprTaint(x.X)
	case *ast.SelectorExpr:
		if fa.info.Uses[x.Sel] != nil {
			if _, isFunc := fa.info.Uses[x.Sel].(*types.Func); isFunc {
				return nil
			}
		}
		return fa.exprTaint(x.X)
	case *ast.CompositeLit:
		if fa.isMapType(x) {
			return nil // maps carry no order
		}
		var ts taintSet
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			ts = ts.merge(fa.exprTaint(el))
		}
		return ts
	case *ast.CallExpr:
		return fa.callResultTaint(x)
	}
	return nil
}

// sprintFuncs are fmt formatters that preserve argument order into
// their result instead of writing it out.
var sprintFuncs = map[string]bool{"Sprint": true, "Sprintf": true, "Sprintln": true}

// callResultTaint computes the taint of a call's result value(s),
// merged (multi-result calls are handled element-wise by handleAssign).
func (fa *funcAnalysis) callResultTaint(call *ast.CallExpr) taintSet {
	// Type conversions preserve content, hence order.
	if tv, ok := fa.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return fa.exprTaint(call.Args[0])
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := fa.info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				var ts taintSet
				for _, a := range call.Args {
					ts = ts.merge(fa.exprTaint(a))
				}
				return ts
			}
			return nil // len, cap, make, ... carry no order
		}
	}
	fn := funcForInfo(fa.info, call.Fun)
	if fn == nil {
		return nil
	}
	// Order-preserving stdlib helpers.
	if pkgPath(fn) == "fmt" && sprintFuncs[fn.Name()] ||
		(pkgPath(fn) == "strings" || pkgPath(fn) == "bytes") && fn.Name() == "Join" {
		var ts taintSet
		for _, a := range call.Args {
			ts = ts.merge(fa.exprTaint(a))
		}
		return ts
	}
	node, ok := fa.cg.Nodes[fn]
	if !ok {
		return nil
	}
	sum := fa.res.summaries[fn]
	var ts taintSet
	// Results tainted by the callee's own sources.
	for r := 0; r < len(sum.returnTaint); r++ {
		if sum.returnTaint[r] == nil {
			continue
		}
		path := append(append([]Step{}, sum.returnTaint[r]...),
			fa.step(call.Pos(), "call to %s yields a nondeterministically ordered value", node.QualifiedName()))
		ts = ts.merge(taintSet{origin{originSource, 0}: path})
		break // one witness is enough for a merged result set
	}
	// Results tainted by order-tainted arguments flowing through.
	sig := fn.Type().(*types.Signature)
	for i, arg := range call.Args {
		argTaint := fa.exprTaint(arg)
		if len(argTaint) == 0 {
			continue
		}
		p := paramIndexFor(sig, i)
		if p < 0 || p >= len(sum.paramFlow) || len(sum.paramFlow[p]) == 0 {
			continue
		}
		// Deterministic witness: the lowest result index that p flows to.
		var internal []Step
		for r := 0; r < sig.Results().Len(); r++ {
			if path, ok := sum.paramFlow[p][r]; ok {
				internal = path
				break
			}
		}
		through := argTaint.withStep(fa.step(arg.Pos(), "passed to %s (argument %d)", node.QualifiedName(), i+1))
		for o, path := range through {
			through[o] = append(path, internal...)
		}
		ts = ts.merge(through)
	}
	return ts
}

// paramIndexFor maps argument index i to the callee's parameter index,
// clamping variadic tails.
func paramIndexFor(sig *types.Signature, i int) int {
	np := sig.Params().Len()
	if np == 0 {
		return -1
	}
	if sig.Variadic() && i >= np-1 {
		return np - 1
	}
	if i >= np {
		return -1
	}
	return i
}

// handleRange seeds taint at range statements: map ranges are the
// nondeterminism source; ranging over a tainted slice propagates.
func (fa *funcAnalysis) handleRange(rs *ast.RangeStmt) {
	if fa.isMapType(rs.X) {
		src := fa.step(rs.Pos(), "range over map %s yields elements in nondeterministic order", exprString(rs.X))
		seed := taintSet{origin{originSource, 0}: []Step{src}}
		fa.addTaint(fa.objFor(rs.Key), seed)
		fa.addTaint(fa.objFor(rs.Value), seed)
		return
	}
	if xt := fa.exprTaint(rs.X); len(xt) > 0 {
		prop := xt.withStep(fa.step(rs.Pos(), "ranges over the nondeterministically ordered %s", exprString(rs.X)))
		fa.addTaint(fa.objFor(rs.Value), prop)
	}
}

// handleAssign propagates taint through assignments, including
// multi-value calls and compound assignment operators.
func (fa *funcAnalysis) handleAssign(as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// x, y := f(...) — a merged result set is assigned to each LHS;
		// element-wise precision is not worth the complexity here.
		ts := fa.exprTaint(as.Rhs[0])
		for _, lhs := range as.Lhs {
			fa.assignTo(lhs, ts)
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		ts := fa.exprTaint(rhs)
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// Compound ops keep whatever taint the target already has.
			ts = ts.merge(fa.exprTaint(as.Lhs[i]))
		}
		fa.assignTo(as.Lhs[i], ts)
	}
}

// assignTo taints the root object of lhs, unless the write lands in a
// map (which erases order).
func (fa *funcAnalysis) assignTo(lhs ast.Expr, ts taintSet) {
	if len(ts) == 0 {
		return
	}
	if ix, ok := lhs.(*ast.IndexExpr); ok && fa.isMapType(ix.X) {
		return // m[k] = v: map insertion kills order
	}
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	fa.addTaint(fa.objFor(lhs), ts)
}

// handleValueSpec propagates taint through var declarations.
func (fa *funcAnalysis) handleValueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		var ts taintSet
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			ts = fa.exprTaint(vs.Values[0])
		} else if i < len(vs.Values) {
			ts = fa.exprTaint(vs.Values[i])
		}
		if obj := fa.info.Defs[name]; obj != nil {
			fa.addTaint(obj, ts)
		}
	}
}

// handleCall applies call side effects: sort kills, sink checks, and
// taint handoff into module-internal callees that sink a parameter.
func (fa *funcAnalysis) handleCall(call *ast.CallExpr) {
	fn := funcForInfo(fa.info, call.Fun)
	if fn == nil {
		return
	}
	// Sorting re-establishes a deterministic order: kill the taint.
	if isSortFunc(fn) && len(call.Args) > 0 {
		fa.killTaint(fa.objFor(call.Args[0]))
		return
	}
	sig, _ := fn.Type().(*types.Signature)

	// Package-level output sinks: fmt printers and io.WriteString.
	if sig != nil && sig.Recv() == nil &&
		(pkgPath(fn) == "fmt" && outputFuncs[fn.Name()] ||
			pkgPath(fn) == "io" && fn.Name() == "WriteString") {
		fa.sinkArgs(call, "%s.%s writes it to output", fn.Pkg().Name(), fn.Name())
		return
	}
	if sig != nil && sig.Recv() != nil {
		// Stream/builder writers.
		if writeMethods[fn.Name()] {
			fa.sinkArgs(call, "%s writes it to the output stream", fn.Name())
			return
		}
		// Simulation event scheduling.
		if simSchedulers[fn.Name()] && pathIsSimEngine(recvPkgPath(sig), sig) {
			fa.sinkArgs(call, "Engine.%s schedules an event with it (same-timestamp tie-break order becomes nondeterministic)", fn.Name())
			return
		}
	}

	// Module-internal callee whose parameter reaches a sink.
	node, ok := fa.cg.Nodes[fn]
	if !ok {
		return
	}
	sum := fa.res.summaries[fn]
	for i, arg := range call.Args {
		argTaint := fa.exprTaint(arg)
		if len(argTaint) == 0 {
			continue
		}
		p := paramIndexFor(sig, i)
		if p < 0 || p >= len(sum.paramSink) || sum.paramSink[p] == nil {
			continue
		}
		handoff := fa.step(arg.Pos(), "passed to %s (argument %d)", node.QualifiedName(), i+1)
		for o, path := range argTaint {
			full := make([]Step, 0, len(path)+1+len(sum.paramSink[p]))
			full = append(full, path...)
			full = append(full, handoff)
			full = append(full, sum.paramSink[p]...)
			fa.recordSink(o, call.Pos(), full,
				"order-tainted value reaches an order-sensitive sink inside %s", node.QualifiedName())
		}
	}
}

// sinkArgs records a sink hit for every order-tainted argument.
func (fa *funcAnalysis) sinkArgs(call *ast.CallExpr, format string, args ...any) {
	for _, arg := range call.Args {
		ts := fa.exprTaint(arg)
		if len(ts) == 0 {
			continue
		}
		sink := fa.step(call.Pos(), format, args...)
		for o, path := range ts {
			full := make([]Step, 0, len(path)+1)
			full = append(full, path...)
			full = append(full, sink)
			fa.recordSink(o, call.Pos(), full, "%s", sink.What)
		}
	}
}

// recordSink routes a sink hit: parameter-origin hits become summary
// facts (the caller is responsible); source-origin hits become
// findings in the reporting pass.
func (fa *funcAnalysis) recordSink(o origin, pos token.Pos, path []Step, format string, args ...any) {
	switch o.kind {
	case originParam:
		if o.param < len(fa.sum.paramSink) && fa.sum.paramSink[o.param] == nil {
			fa.sum.paramSink[o.param] = path
		}
	case originSource:
		if fa.report != nil && len(path) > 0 {
			src := path[0]
			fa.report(pos, path, fmt.Sprintf(
				"map-iteration order (from %s:%d) reaches an order-sensitive sink: %s; sort before it escapes (run with -explain for the path)",
				src.File, src.Line, fmt.Sprintf(format, args...)))
		}
	}
}

// handleReturn records summary facts for returns of the declaration
// itself (returns inside nested function literals are skipped).
func (fa *funcAnalysis) handleReturn(ret *ast.ReturnStmt) {
	if fa.inFuncLit(ret.Pos()) {
		return
	}
	record := func(r int, ts taintSet) {
		for o, path := range ts {
			switch o.kind {
			case originSource:
				if r < len(fa.sum.returnTaint) && fa.sum.returnTaint[r] == nil {
					full := append(append([]Step{}, path...),
						fa.step(ret.Pos(), "returned to caller still in nondeterministic order"))
					fa.sum.returnTaint[r] = full
				}
			case originParam:
				if o.param >= len(fa.sum.paramFlow) {
					continue
				}
				if fa.sum.paramFlow[o.param] == nil {
					fa.sum.paramFlow[o.param] = make(map[int][]Step)
				}
				if _, ok := fa.sum.paramFlow[o.param][r]; !ok {
					full := append(append([]Step{}, path...),
						fa.step(ret.Pos(), "returned to caller"))
					fa.sum.paramFlow[o.param][r] = full
				}
			}
		}
	}
	if len(ret.Results) == 0 {
		// Bare return with named results.
		for r, obj := range fa.resultObjs {
			record(r, fa.taints[obj])
		}
		return
	}
	for r, expr := range ret.Results {
		record(r, fa.exprTaint(expr))
	}
}
