package lint

// NondetFlowAnalyzer implements the nondet-flow rule, the
// interprocedural generalization of ordered-map-iter: a value whose
// content depends on map iteration order is tracked from its source
// (a range over a map, possibly in a helper) through any chain of
// module-internal calls to an order-sensitive sink — fmt output,
// io.Writer/Builder writes, or sim.Engine event scheduling. It
// catches the helper that returns unsorted map keys which a *caller*
// then prints, which the per-function rule cannot see.
//
// Findings carry the full source→call-chain→sink path (Finding.Path);
// `mrlint -explain` prints it like a stack trace and `-json` carries
// it structurally. Flows whose source and sink are in the same
// function are ordered-map-iter's job and are not re-reported here.
var NondetFlowAnalyzer = &Analyzer{
	Name:      "nondet-flow",
	Doc:       "track map-iteration order across calls to output/event sinks (interprocedural, explainable paths)",
	RunModule: runNondetFlow,
}

func runNondetFlow(mp *ModulePass) {
	res := mp.Taint()
	for _, flow := range res.Flows {
		mp.Report("nondet-flow", flow.Pos, flow.Path, "%s", flow.Msg)
	}
}
