package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment.
const directivePrefix = "//mrlint:ignore"

// Directive is one parsed //mrlint:ignore comment. Well-formed
// directives name at least one rule and carry a free-text reason;
// anything else is recorded with a non-empty Problem and reported by
// the malformed-directive analyzer.
type Directive struct {
	File   string   `json:"file"` // module-root-relative path
	Line   int      `json:"line"`
	Rules  []string `json:"rules,omitempty"`
	Reason string   `json:"reason,omitempty"`

	// Problem is empty for a well-formed directive; otherwise it
	// explains what is wrong (no rule, no reason, unknown rule).
	Problem string `json:"problem,omitempty"`
}

// directiveIndex holds every parsed suppression directive of the
// module, plus the file→line→rule lookup the analyzers consult.
type directiveIndex struct {
	fset *token.FileSet
	root string

	// byFile maps absolute filename → line → suppressed rule set. A
	// directive covers its own line and the line directly below it.
	byFile map[string]map[int]map[string]bool

	list []Directive
}

func newDirectiveIndex(fset *token.FileSet, root string) *directiveIndex {
	return &directiveIndex{
		fset:   fset,
		root:   root,
		byFile: make(map[string]map[int]map[string]bool),
	}
}

// indexFile parses and records every directive comment in f.
func (d *directiveIndex) indexFile(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d.indexComment(c)
		}
	}
}

func (d *directiveIndex) indexComment(c *ast.Comment) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	// Require a space (or end) after the prefix so "//mrlint:ignorex"
	// is not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return
	}
	pos := d.fset.Position(c.Pos())
	dir := Directive{File: relPath(d.root, pos.Filename), Line: pos.Line}

	fields := strings.Fields(rest)
	if len(fields) == 0 {
		// Malformed: no rule named; never silently ignore everything.
		dir.Problem = "directive names no rule; write //mrlint:ignore <rule> <reason>"
		d.list = append(d.list, dir)
		return
	}
	for _, rule := range strings.Split(fields[0], ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		dir.Rules = append(dir.Rules, rule)
		if dir.Problem == "" && !knownRule(rule) {
			dir.Problem = fmt.Sprintf("directive names unknown rule %q", rule)
		}
	}
	dir.Reason = strings.Join(fields[1:], " ")
	if dir.Problem == "" && dir.Reason == "" {
		dir.Problem = "directive has no reason; every suppression must say why"
	}
	d.list = append(d.list, dir)

	byLine := d.byFile[pos.Filename]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		d.byFile[pos.Filename] = byLine
	}
	for _, rule := range dir.Rules {
		// The directive covers its own line and the line below, so it
		// works both trailing the offending code and on its own line
		// above it.
		for _, line := range []int{pos.Line, pos.Line + 1} {
			if byLine[line] == nil {
				byLine[line] = make(map[string]bool)
			}
			byLine[line][rule] = true
		}
	}
}

// ignored reports whether rule findings at position are suppressed.
func (d *directiveIndex) ignored(rule string, position token.Position) bool {
	byLine := d.byFile[position.Filename]
	if byLine == nil {
		return false
	}
	return byLine[position.Line][rule]
}

// sortedList returns the directives ordered by file then line.
func (d *directiveIndex) sortedList() []Directive {
	out := make([]Directive, len(d.list))
	copy(out, d.list)
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// MalformedDirectiveAnalyzer implements the malformed-directive rule: a
// suppression that names no rule would otherwise silently do nothing
// (or worse, be believed to work), and one without a reason defeats the
// audit trail the directives exist to provide.
var MalformedDirectiveAnalyzer = &Analyzer{
	Name: "malformed-directive",
	Doc:  "flag //mrlint:ignore directives that name no rule, an unknown rule, or give no reason",
}

// The Run hook is attached in init: runMalformedDirective validates
// rule names against All(), which includes this analyzer — assigning
// it in the composite literal would be an initialization cycle.
func init() { MalformedDirectiveAnalyzer.RunModule = runMalformedDirective }

func runMalformedDirective(mp *ModulePass) {
	for _, dir := range mp.Module.Suppressions() {
		if dir.Problem == "" {
			continue
		}
		*mp.findings = append(*mp.findings, Finding{
			File:    dir.File,
			Line:    dir.Line,
			Col:     1,
			Rule:    "malformed-directive",
			Message: dir.Problem,
		})
	}
}
