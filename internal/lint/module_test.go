package lint

import (
	"path/filepath"
	"testing"
)

// TestRepositoryIsClean is the enforcement test: the repository at HEAD
// must produce zero findings. If this fails, fix the violation (or, for
// a deliberate exception, add a reasoned //mrlint:ignore directive) —
// do not weaken the analyzers.
func TestRepositoryIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(repo): %v", err)
	}
	if mod.Path != "repro" {
		t.Fatalf("loaded module %q, want repro", mod.Path)
	}
	if len(mod.ConfKeys) == 0 {
		t.Fatal("no mrconf parameter constants collected")
	}
	findings := mod.Run(All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestFixtureTripsEveryRule loads the purpose-built bad module and
// asserts every analyzer reports at least one finding there.
func TestFixtureTripsEveryRule(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatalf("LoadModule(badmod): %v", err)
	}
	findings := mod.Run(All())
	for _, a := range All() {
		if countRule(findings, a.Name) == 0 {
			t.Errorf("fixture produced no %s finding; findings: %v", a.Name, findings)
		}
	}
}

// TestLoaderSkipsNestedModules ensures testdata fixtures and nested
// modules don't leak into an enclosing module's analysis.
func TestLoaderSkipsNestedModules(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range mod.Packages {
		if pkg.ImportPath == "repro/internal/lint/testdata/badmod/internal/bad" {
			t.Fatal("loader descended into a nested module under testdata")
		}
	}
}
