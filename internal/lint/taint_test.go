package lint

import (
	"strings"
	"testing"
)

// orderPkg is a helper package whose Keys function leaks map-iteration
// order to its callers; the intraprocedural finding is suppressed so
// the tests exercise the interprocedural path alone.
const orderPkg = `package order

func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) //mrlint:ignore ordered-map-iter test fixture source
	}
	return ks
}

func SortedKeys(m map[string]int) []string {
	return nil
}

func Vals(m map[string]float64) []float64 {
	var vs []float64
	for _, v := range m {
		vs = append(vs, v) //mrlint:ignore ordered-map-iter test fixture source
	}
	return vs
}
`

func TestNewAnalyzersTableDriven(t *testing.T) {
	cases := []struct {
		name  string
		rule  string
		file  string
		src   string
		extra map[string]string
		want  int
	}{
		// ---- nondet-flow ----
		{
			name: "nondetflow positive cross-package print",
			rule: "nondet-flow",
			file: "internal/x/x.go",
			src: `package x
import (
	"fmt"

	"fixture/internal/order"
)
func Dump(m map[string]int) {
	for _, k := range order.Keys(m) {
		fmt.Println(k)
	}
}
`,
			extra: map[string]string{"internal/order/order.go": orderPkg},
			want:  1,
		},
		{
			name: "nondetflow positive tainted argument reaches sink in callee",
			rule: "nondet-flow",
			file: "internal/x/x.go",
			src: `package x
import (
	"fmt"

	"fixture/internal/order"
)
func emit(ks []string) { fmt.Println(ks) }
func Dump(m map[string]int) { emit(order.Keys(m)) }
`,
			extra: map[string]string{"internal/order/order.go": orderPkg},
			want:  1,
		},
		{
			name: "nondetflow positive scheduling sink",
			rule: "nondet-flow",
			file: "internal/x/x.go",
			src: `package x
import (
	"fixture/internal/order"
	"fixture/internal/sim"
)
func Schedule(e *sim.Engine, m map[string]float64) {
	for _, d := range order.Vals(m) {
		e.After(d, func() {})
	}
}
`,
			extra: map[string]string{
				"internal/order/order.go": orderPkg,
				"internal/sim/engine.go":  miniSim,
			},
			want: 1,
		},
		{
			name: "nondetflow negative sorted before sink",
			rule: "nondet-flow",
			file: "internal/x/x.go",
			src: `package x
import (
	"fmt"
	"sort"

	"fixture/internal/order"
)
func Dump(m map[string]int) {
	ks := order.Keys(m)
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Println(k)
	}
}
`,
			extra: map[string]string{"internal/order/order.go": orderPkg},
			want:  0,
		},
		{
			name: "nondetflow negative map insertion kills order",
			rule: "nondet-flow",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/order"
func Set(m map[string]int) map[string]bool {
	out := make(map[string]bool)
	for _, k := range order.Keys(m) {
		out[k] = true
	}
	return out
}
`,
			extra: map[string]string{"internal/order/order.go": orderPkg},
			want:  0,
		},
		{
			name: "nondetflow negative intraprocedural is ordered-map-iter's job",
			rule: "nondet-flow",
			file: "internal/x/x.go",
			src: `package x
import "fmt"
func Dump(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`,
			want: 0,
		},
		{
			name: "nondetflow negative untainted helper",
			rule: "nondet-flow",
			file: "internal/x/x.go",
			src: `package x
import (
	"fmt"

	"fixture/internal/order"
)
func Dump(m map[string]int) {
	for _, k := range order.SortedKeys(m) {
		fmt.Println(k)
	}
}
`,
			extra: map[string]string{"internal/order/order.go": orderPkg},
			want:  0,
		},
		{
			name: "nondetflow ignore directive at sink",
			rule: "nondet-flow",
			file: "internal/x/x.go",
			src: `package x
import (
	"fmt"

	"fixture/internal/order"
)
func Dump(m map[string]int) {
	for _, k := range order.Keys(m) {
		fmt.Println(k) //mrlint:ignore nondet-flow diagnostic dump, order irrelevant
	}
}
`,
			extra: map[string]string{"internal/order/order.go": orderPkg},
			want:  0,
		},

		// ---- float-map-accum ----
		{
			name: "floataccum positive compound add",
			rule: "float-map-accum",
			file: "internal/x/x.go",
			src: `package x
func Sum(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}
`,
			want: 1,
		},
		{
			name: "floataccum positive x equals x plus v",
			rule: "float-map-accum",
			file: "internal/x/x.go",
			src: `package x
func Prod(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p = p * v
	}
	return p
}
`,
			want: 1,
		},
		{
			name: "floataccum positive derived from key",
			rule: "float-map-accum",
			file: "internal/x/x.go",
			src: `package x
func Weighted(m map[int]float64) float64 {
	t := 0.0
	for k, v := range m {
		t += float64(k) * v
	}
	return t
}
`,
			want: 1,
		},
		{
			name: "floataccum negative integer accumulation is exact",
			rule: "float-map-accum",
			file: "internal/x/x.go",
			src: `package x
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`,
			want: 0,
		},
		{
			name: "floataccum negative loop-invariant contribution",
			rule: "float-map-accum",
			file: "internal/x/x.go",
			src: `package x
func Penalty(m map[string]int, w float64) float64 {
	t := 0.0
	for range m {
		t += w
	}
	return t
}
`,
			want: 0,
		},
		{
			name: "floataccum negative range over slice",
			rule: "float-map-accum",
			file: "internal/x/x.go",
			src: `package x
func Sum(vs []float64) float64 {
	t := 0.0
	for _, v := range vs {
		t += v
	}
	return t
}
`,
			want: 0,
		},
		{
			name: "floataccum ignore directive",
			rule: "float-map-accum",
			file: "internal/x/x.go",
			src: `package x
func Sum(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v //mrlint:ignore float-map-accum tolerance test, bits don't matter
	}
	return t
}
`,
			want: 0,
		},

		// ---- no-goroutine-in-sim ----
		{
			name: "goroutine positive go statement in sim package",
			rule: "no-goroutine-in-sim",
			file: "internal/sim/x.go",
			src: `package sim
func F(fn func()) {
	go fn()
}
`,
			want: 1,
		},
		{
			name: "goroutine positive sync in mapreduce package",
			rule: "no-goroutine-in-sim",
			file: "internal/mapreduce/x.go",
			src: `package mapreduce
import "sync"
func F() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}
`,
			want: 1, // the sync.Mutex type use; mu.Lock/Unlock are not pkg selectors
		},
		{
			name: "goroutine positive channel ops in yarn package",
			rule: "no-goroutine-in-sim",
			file: "internal/yarn/x.go",
			src: `package yarn
func F(c chan int) int {
	c <- 1
	return <-c
}
`,
			want: 3, // chan type in signature, send, receive
		},
		{
			name: "goroutine negative experiments fan-out exempt",
			rule: "no-goroutine-in-sim",
			file: "internal/experiments/x.go",
			src: `package experiments
func F(fn func()) {
	done := make(chan struct{})
	go func() { fn(); close(done) }()
	<-done
}
`,
			want: 0,
		},
		{
			name: "goroutine negative test file exempt",
			rule: "no-goroutine-in-sim",
			file: "internal/sim/x_test.go",
			src: `package sim
import "testing"
func TestF(t *testing.T) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
`,
			extra: map[string]string{"internal/sim/x.go": "package sim\n"},
			want:  0,
		},
		{
			name: "goroutine ignore directive",
			rule: "no-goroutine-in-sim",
			file: "internal/sim/x.go",
			src: `package sim
func F(fn func()) {
	go fn() //mrlint:ignore no-goroutine-in-sim measured, bounded startup helper
}
`,
			want: 0,
		},

		// ---- event-closure-capture ----
		{
			name: "eventcapture positive mutated after scheduling",
			rule: "event-closure-capture",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/sim"
var out int
func F(e *sim.Engine) {
	n := 1
	e.At(5, func() { out = n })
	n = 2
}
`,
			extra: map[string]string{"internal/sim/engine.go": miniSim},
			want:  1,
		},
		{
			name: "eventcapture positive mutated across loop iterations",
			rule: "event-closure-capture",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/sim"
var out float64
func F(e *sim.Engine, ds []float64) {
	total := 0.0
	for _, d := range ds {
		total += d
		e.After(d, func() { out = total })
	}
}
`,
			extra: map[string]string{"internal/sim/engine.go": miniSim},
			want:  1,
		},
		{
			name: "eventcapture negative per-iteration copy",
			rule: "event-closure-capture",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/sim"
var out float64
func F(e *sim.Engine, ds []float64) {
	total := 0.0
	for _, d := range ds {
		total += d
		snapshot := total
		e.After(d, func() { out = snapshot })
	}
}
`,
			extra: map[string]string{"internal/sim/engine.go": miniSim},
			want:  0,
		},
		{
			name: "eventcapture negative field writes through captured var",
			rule: "event-closure-capture",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/sim"
type rig struct{ n int }
var out int
func F(e *sim.Engine) {
	r := &rig{}
	e.At(3, func() { out = r.n })
	r.n = 7
}
`,
			extra: map[string]string{"internal/sim/engine.go": miniSim},
			want:  0,
		},
		{
			name: "eventcapture negative mutation only inside closures",
			rule: "event-closure-capture",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/sim"
var out int
func F(e *sim.Engine) {
	n := 1
	e.At(5, func() { n = 2 })
	e.At(6, func() { out = n })
}
`,
			extra: map[string]string{"internal/sim/engine.go": miniSim},
			want:  0,
		},
		{
			name: "eventcapture negative loop var not mutated after",
			rule: "event-closure-capture",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/sim"
var out float64
func F(e *sim.Engine, ds []float64) {
	for _, d := range ds {
		e.After(d, func() { out = d })
	}
}
`,
			extra: map[string]string{"internal/sim/engine.go": miniSim},
			want:  0, // go1.22 per-iteration semantics: d is not rebound under the closure
		},
		{
			name: "eventcapture ignore directive",
			rule: "event-closure-capture",
			file: "internal/x/x.go",
			src: `package x
import "fixture/internal/sim"
var out int
func F(e *sim.Engine) {
	n := 1
	e.At(5, func() { out = n }) //mrlint:ignore event-closure-capture event wants the final value
	n = 2
}
`,
			extra: map[string]string{"internal/sim/engine.go": miniSim},
			want:  0,
		},

		// ---- malformed-directive ----
		{
			name: "malformed positive no rule",
			rule: "malformed-directive",
			file: "internal/x/x.go",
			src: `package x
//mrlint:ignore
func F() {}
`,
			want: 1,
		},
		{
			name: "malformed positive unknown rule",
			rule: "malformed-directive",
			file: "internal/x/x.go",
			src: `package x
//mrlint:ignore no-such-rule some reason
func F() {}
`,
			want: 1,
		},
		{
			name: "malformed positive missing reason",
			rule: "malformed-directive",
			file: "internal/x/x.go",
			src: `package x
//mrlint:ignore no-wallclock
func F() {}
`,
			want: 1,
		},
		{
			name: "malformed negative well-formed directive",
			rule: "malformed-directive",
			file: "internal/x/x.go",
			src: `package x
//mrlint:ignore no-wallclock startup stamp only
func F() {}
`,
			want: 0,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{tc.file: tc.src}
			for name, src := range tc.extra {
				files[name] = src
			}
			findings := lintFiles(t, tc.rule, files)
			if got := countRule(findings, tc.rule); got != tc.want {
				t.Errorf("got %d findings for %s, want %d\nall findings: %v",
					got, tc.rule, tc.want, findings)
			}
		})
	}
}

// TestNondetFlowExplainPath asserts the witness path is complete and
// ordered: it starts at the map range in the helper package, ends at
// the sink, and spans at least two functions.
func TestNondetFlowExplainPath(t *testing.T) {
	findings := lintFiles(t, "nondet-flow", map[string]string{
		"internal/order/order.go": orderPkg,
		"internal/x/x.go": `package x
import (
	"fmt"

	"fixture/internal/order"
)
func Dump(m map[string]int) {
	for _, k := range order.Keys(m) {
		fmt.Println(k)
	}
}
`,
	})
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %v", findings)
	}
	f := findings[0]
	if len(f.Path) < 3 {
		t.Fatalf("witness path too short: %v", f.Path)
	}
	first, last := f.Path[0], f.Path[len(f.Path)-1]
	if first.File != "internal/order/order.go" || !strings.Contains(first.What, "range over map") {
		t.Errorf("path does not start at the map-range source: %+v", first)
	}
	if last.File != "internal/x/x.go" || !strings.Contains(last.What, "fmt.Println") {
		t.Errorf("path does not end at the sink: %+v", last)
	}
	funcs := map[string]bool{}
	for _, s := range f.Path {
		funcs[s.Func] = true
	}
	if len(funcs) < 2 {
		t.Errorf("witness path does not span two functions: %v", f.Path)
	}
	explain := f.Explain()
	if !strings.Contains(explain, "1. internal/order/order.go") ||
		!strings.Contains(explain, "in order.Keys") ||
		!strings.Contains(explain, "in x.Dump") {
		t.Errorf("Explain() missing hops:\n%s", explain)
	}
	if !strings.HasPrefix(explain, f.String()) {
		t.Errorf("Explain() does not lead with the finding line:\n%s", explain)
	}
}

// TestTaintSummariesAcrossThreeFunctions checks propagation through an
// intermediate function that neither sources nor sinks.
func TestTaintSummariesAcrossThreeFunctions(t *testing.T) {
	findings := lintFiles(t, "nondet-flow", map[string]string{
		"internal/order/order.go": orderPkg,
		"internal/x/x.go": `package x
import (
	"fmt"

	"fixture/internal/order"
)
func relay(m map[string]int) []string { return order.Keys(m) }
func Dump(m map[string]int) { fmt.Println(relay(m)) }
`,
	})
	if countRule(findings, "nondet-flow") != 1 {
		t.Fatalf("taint did not propagate through relay: %v", findings)
	}
	funcs := map[string]bool{}
	for _, s := range findings[0].Path {
		funcs[s.Func] = true
	}
	for _, want := range []string{"order.Keys", "x.relay", "x.Dump"} {
		if !funcs[want] {
			t.Errorf("witness path missing hop in %s: %v", want, findings[0].Path)
		}
	}
}

func TestSuppressionsList(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"internal/x/x.go": `package x
import "time"
func Now() int64 { return time.Now().UnixNano() } //mrlint:ignore no-wallclock startup stamp
//mrlint:ignore
func F() {}
`,
	})
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	dirs := mod.Suppressions()
	if len(dirs) != 2 {
		t.Fatalf("want 2 directives, got %v", dirs)
	}
	well, bad := dirs[0], dirs[1]
	if well.File != "internal/x/x.go" || well.Line != 3 ||
		len(well.Rules) != 1 || well.Rules[0] != "no-wallclock" ||
		well.Reason != "startup stamp" || well.Problem != "" {
		t.Errorf("well-formed directive parsed wrong: %+v", well)
	}
	if bad.Line != 4 || bad.Problem == "" {
		t.Errorf("malformed directive not recorded: %+v", bad)
	}
}
