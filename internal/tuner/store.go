package tuner

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Entry is what one aggressive test run teaches the Store about a job
// class: both scopes' search outcomes. A later job of the same class
// warm-starts its optimizers from these states.
type Entry struct {
	Map    ScopeState `json:"map"`
	Reduce ScopeState `json:"reduce"`
	// Jobs counts how many test runs contributed to the entry.
	Jobs int `json:"jobs,omitempty"`
}

// Usable reports whether the entry can seed at least one scope.
func (e Entry) Usable() bool { return e.Map.HaveBest || e.Reduce.HaveBest }

// Key builds the Store lookup key for a job class: the application
// name plus the power-of-two input-size bucket, mirroring
// core.Key's insight that near-identical inputs share a tuning. The
// cluster is implicit — a Store lives with one serving fleet.
func Key(app string, inputSizeMB float64) string {
	bucket := 0
	for s := 1.0; s < inputSizeMB; s *= 2 {
		bucket++
	}
	return fmt.Sprintf("%s|2^%dMB", app, bucket)
}

// Store persists per-(app, input-scale) best points and search states
// across jobs — the cross-job-learning half of the knowledge base
// (Fig 3): the KnowledgeBase keeps finished configurations for reuse
// as-is, the Store keeps search state so the next search starts where
// the last one ended. Safe for concurrent use; per-key updates keep
// whichever scope state has the lower best cost, so a fleet of jobs
// monotonically improves its class's best-known point.
type Store struct {
	//mrlint:ignore no-goroutine-in-sim the Store lives outside the event loop: it is shared across whole simulations (tournament cells, CLI invocations), not across events
	mu      sync.Mutex
	entries map[string]Entry
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: make(map[string]Entry)}
}

// Get retrieves a class entry.
func (s *Store) Get(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

// Update merges a test run's outcome into the class entry: each scope
// keeps the state with the lower best cost (a warm-started run can
// only match or improve its seed, so the class record never regresses).
func (s *Store) Update(key string, e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.entries[key]
	if !ok {
		e.Jobs = 1
		s.entries[key] = e
		return
	}
	cur.Jobs++
	cur.Map = betterScope(cur.Map, e.Map)
	cur.Reduce = betterScope(cur.Reduce, e.Reduce)
	s.entries[key] = cur
}

func betterScope(a, b ScopeState) ScopeState {
	switch {
	case !b.HaveBest:
		return a
	case !a.HaveBest:
		return b
	case b.BestCost < a.BestCost:
		return b
	default:
		return a
	}
}

// Keys lists stored class keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored class entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Save writes the store as JSON.
func (s *Store) Save(path string) error {
	s.mu.Lock()
	data, err := json.MarshalIndent(s.entries, "", "  ")
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("tuner: marshal store: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("tuner: save store: %w", err)
	}
	return nil
}

// LoadStore reads a store written by Save.
func LoadStore(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tuner: load store: %w", err)
	}
	entries := make(map[string]Entry)
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("tuner: parse store: %w", err)
	}
	return &Store{entries: entries}, nil
}
