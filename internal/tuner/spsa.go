package tuner

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/lhs"
	"repro/internal/metrics"
	"repro/internal/mrconf"
)

func init() {
	Register("spsa", func(o Options) Optimizer { return newSPSA(o) })
}

// SPSA gain-sequence constants (Spall's practically-universal choices:
// a_k = a/(A+k+1)^alpha, c_k = c/(k+1)^gamma). The step sizes live in
// the normalized [0,1]^d space, so one set of constants serves every
// mrconf subspace regardless of raw parameter ranges.
const (
	spsaA     = 0.25
	spsaC     = 0.12
	spsaBigA  = 3
	spsaAlpha = 0.602
	spsaGamma = 0.101
)

// spsa is simultaneous-perturbation stochastic approximation adapted
// to MRONLINE's wave discipline (cf. "Performance Tuning of Hadoop
// MapReduce: A Noisy Gradient Approach", which tunes the same Hadoop
// parameter space this way). Each wave measures the current iterate θ
// plus B simultaneous ±c_k Rademacher perturbation pairs — batching
// the pairs into one task wave is what maps a serial gradient method
// onto the cluster's parallelism — then averages the B two-point
// gradient estimates and takes one projected descent step.
//
// The iterate lives in the normalized [0,1]^d space; proposals cross
// the Optimizer interface denormalized into raw parameter coordinates
// and projected into the current (rule-tightened) mrconf bounds.
type spsa struct {
	params []mrconf.Param
	space  lhs.Space // current (rule-tightened) bounds
	full   lhs.Space // original bounds
	rng    *rand.Rand
	sp     SearchParams

	theta []float64 // normalized current iterate
	k     int       // SPSA iteration (== completed waves)
	pairs int       // B perturbation pairs per wave

	// budgetWaves bounds the search; derived from SearchParams so the
	// test-run footprint is comparable to the hill backend's.
	budgetWaves int

	// One wave of proposals. kind: 0 = θ probe, 1 = +c_kΔ, 2 = −c_kΔ;
	// pair indexes the Δ vector. Reports are matched to probes by
	// slice identity (the driver returns the exact slice Next gave it).
	probes      []spsaProbe
	pending     [][]float64
	outstanding int
	reported    int
	waveSize    int
	deltas      [][]float64 // per-pair Rademacher vectors, normalized

	best     []float64
	bestCost float64
	haveBest bool
	done     bool

	waves int
	evals int
	traj  trajectory
}

type spsaProbe struct {
	point []float64 // raw-space proposal handed to the driver
	kind  int
	pair  int
	cost  float64
	seen  bool
}

func newSPSA(o Options) *spsa {
	params, sp := o.Params, o.Search
	space := make(lhs.Space, len(params))
	for i, p := range params {
		space[i] = lhs.Dim{Name: p.Name, Min: p.Min, Max: p.Max}
	}
	s := &spsa{
		params: params,
		space:  space,
		full:   append(lhs.Space(nil), space...),
		rng:    o.RNG,
		sp:     sp,
		theta:  make([]float64, len(params)),
		pairs:  (sp.N + 1) / 2,
		// Cold budget ≈ the hill backend's typical eval count: with
		// the paper's knobs (N=16 → B=8, g=5) this is 15 waves of
		// 17 probes ≈ 255 evaluations.
		budgetWaves: 3 * sp.GlobalBudget,
	}
	if w := o.warmFor(); w != nil {
		// Warm start: descend from the class's best-known point with
		// the schedule advanced past the large early steps and half
		// the wave budget — refinement, not re-exploration.
		for i := range s.theta {
			s.theta[i] = s.normalize(i, w.Best[i])
		}
		s.best = append([]float64(nil), w.Best...)
		s.bestCost = w.BestCost
		s.haveBest = true
		s.k = s.budgetWaves                     // past the large early steps
		s.budgetWaves = (s.budgetWaves + 1) / 2 // half the cold wave budget
	} else {
		// θ0 is the default configuration, the same starting point the
		// hill backend seeds its first wave with.
		for i, p := range params {
			s.theta[i] = s.normalize(i, p.Default)
		}
	}
	s.startWave()
	return s
}

// normalize maps a raw coordinate into [0,1] over the full bounds.
func (s *spsa) normalize(d int, v float64) float64 {
	r := s.full[d].Range()
	if r <= 0 {
		return 0
	}
	return metrics.Clamp((v-s.full[d].Min)/r, 0, 1)
}

// denormalize maps a normalized coordinate back to raw space, projected
// into the current (possibly rule-tightened) bounds.
func (s *spsa) denormalize(d int, x float64) float64 {
	v := s.full[d].Min + x*s.full[d].Range()
	return metrics.Clamp(v, s.space[d].Min, s.space[d].Max)
}

func (s *spsa) rawPoint(x []float64) []float64 {
	p := make([]float64, len(x))
	for d := range x {
		p[d] = s.denormalize(d, x[d])
	}
	return p
}

func (s *spsa) ck() float64 { return spsaC / math.Pow(float64(s.k+1), spsaGamma) }
func (s *spsa) ak() float64 { return spsaA / math.Pow(float64(s.k+spsaBigA+1), spsaAlpha) }

// startWave generates the θ probe plus B perturbation pairs. All RNG
// draws for the wave happen here, in a fixed order, so the proposal
// trace is a pure function of the seed.
func (s *spsa) startWave() {
	d := len(s.params)
	ck := s.ck()
	s.probes = s.probes[:0]
	s.deltas = s.deltas[:0]
	s.reported = 0
	s.outstanding = 0

	add := func(x []float64, kind, pair int) {
		s.probes = append(s.probes, spsaProbe{point: s.rawPoint(x), kind: kind, pair: pair})
	}
	add(s.theta, 0, -1)
	for b := 0; b < s.pairs; b++ {
		delta := make([]float64, d)
		for i := range delta {
			if s.rng.Intn(2) == 0 {
				delta[i] = -1
			} else {
				delta[i] = 1
			}
		}
		s.deltas = append(s.deltas, delta)
		plus := make([]float64, d)
		minus := make([]float64, d)
		for i := range delta {
			plus[i] = metrics.Clamp(s.theta[i]+ck*delta[i], 0, 1)
			minus[i] = metrics.Clamp(s.theta[i]-ck*delta[i], 0, 1)
		}
		add(plus, 1, b)
		add(minus, 2, b)
	}
	s.waveSize = len(s.probes)
	s.pending = s.pending[:0]
	for i := range s.probes {
		s.pending = append(s.pending, s.probes[i].point)
	}
}

func (s *spsa) Done() bool            { return s.done }
func (s *spsa) HasPending() bool      { return len(s.pending) > 0 }
func (s *spsa) Waves() int            { return s.waves }
func (s *spsa) State() string         { return "gradient" }
func (s *spsa) Trajectory() []float64 { return s.traj.Trajectory() }

func (s *spsa) Next() []float64 {
	if s.done || len(s.pending) == 0 {
		return nil
	}
	p := s.pending[0]
	s.pending = s.pending[1:]
	s.outstanding++
	return p
}

func (s *spsa) Report(point []float64, cost float64) {
	if s.done {
		return
	}
	s.evals++
	s.traj.observe(cost)
	if pr := s.probeFor(point); pr != nil && !pr.seen {
		pr.cost = cost
		pr.seen = true
	}
	if !s.haveBest || cost < s.bestCost {
		s.best = append(s.best[:0], point...)
		s.bestCost = cost
		s.haveBest = true
	}
	s.reported++
	s.outstanding--
	if s.reported >= s.waveSize && s.outstanding <= 0 && len(s.pending) == 0 {
		s.endWave()
	}
}

// probeFor matches a reported point back to its probe by slice
// identity: the driver contract is that Report hands back the exact
// slice Next returned.
func (s *spsa) probeFor(point []float64) *spsaProbe {
	if len(point) == 0 {
		return nil
	}
	for i := range s.probes {
		if len(s.probes[i].point) > 0 && &s.probes[i].point[0] == &point[0] {
			return &s.probes[i]
		}
	}
	return nil
}

func (s *spsa) Abandon() {
	if s.outstanding > 0 {
		s.outstanding--
		s.waveSize--
		if s.reported >= s.waveSize && s.outstanding <= 0 && len(s.pending) == 0 && s.waveSize > 0 {
			s.endWave()
		}
	}
}

// endWave averages the completed pairs' two-point gradient estimates
// and takes one projected descent step. For Rademacher ±1 components,
// 1/Δ_i = Δ_i, so ĝ_i = (y⁺−y⁻)/(2 c_k) · Δ_i.
func (s *spsa) endWave() {
	s.waves++
	ck := s.ck()
	ak := s.ak()
	d := len(s.theta)
	grad := make([]float64, d)
	complete := 0
	for b := 0; b < s.pairs; b++ {
		var plus, minus *spsaProbe
		for i := range s.probes {
			pr := &s.probes[i]
			if pr.pair != b || !pr.seen {
				continue
			}
			switch pr.kind {
			case 1:
				plus = pr
			case 2:
				minus = pr
			}
		}
		if plus == nil || minus == nil {
			continue // an abandoned probe voids the pair
		}
		complete++
		scale := (plus.cost - minus.cost) / (2 * ck)
		for i := range grad {
			grad[i] += scale * s.deltas[b][i]
		}
	}
	if complete > 0 {
		inv := 1 / float64(complete)
		for i := range grad {
			s.theta[i] = metrics.Clamp(s.theta[i]-ak*grad[i]*inv, 0, 1)
		}
	}
	// Keep θ inside the normalized image of the rule-tightened bounds,
	// so descent cannot wander where the §6.2 rules forbid sampling.
	for i := range s.theta {
		s.theta[i] = metrics.Clamp(s.theta[i], s.normalize(i, s.space[i].Min), s.normalize(i, s.space[i].Max))
	}
	s.k++
	if s.waves >= s.budgetWaves {
		s.done = true
		return
	}
	s.startWave()
}

func (s *spsa) Best() ([]float64, float64, bool) {
	return s.best, s.bestCost, s.haveBest
}

func (s *spsa) Export() ScopeState {
	st := ScopeState{
		Backend:  "spsa",
		Names:    paramNames(s.params),
		BestCost: s.bestCost,
		HaveBest: s.haveBest,
		Evals:    s.evals,
		Waves:    s.waves,
	}
	if s.haveBest {
		st.Best = append([]float64(nil), s.best...)
	}
	return st
}

// Tighten narrows a dimension's bounds (§6.2 gray-box rule); the
// iterate and best point are clamped into the new bounds.
func (s *spsa) Tighten(name string, lo, hi float64) {
	d := s.dimIndex(name)
	fullLo, fullHi := s.full[d].Min, s.full[d].Max
	lo = metrics.Clamp(lo, fullLo, fullHi)
	hi = metrics.Clamp(hi, fullLo, fullHi)
	if hi < lo {
		hi = lo
	}
	s.space[d].Min, s.space[d].Max = lo, hi
	s.theta[d] = metrics.Clamp(s.theta[d], s.normalize(d, lo), s.normalize(d, hi))
	if s.haveBest {
		s.best[d] = metrics.Clamp(s.best[d], lo, hi)
	}
}

// Bias is a no-op: SPSA has no stratified sampler to bias; the §6.2
// preference for a range is already expressed through Tighten.
func (s *spsa) Bias(name string, w lhs.Weights) {
	s.dimIndex(name) // still validate the dimension
}

// Bounds returns the current bounds of a dimension.
func (s *spsa) Bounds(name string) (lo, hi float64) {
	d := s.dimIndex(name)
	return s.space[d].Min, s.space[d].Max
}

func (s *spsa) dimIndex(name string) int {
	for d := range s.space {
		if s.space[d].Name == name {
			return d
		}
	}
	panic(fmt.Sprintf("tuner: unknown dimension %q", name))
}

var (
	_ Optimizer = (*spsa)(nil)
	_ Shaper    = (*spsa)(nil)
)
