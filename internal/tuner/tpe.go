package tuner

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/lhs"
	"repro/internal/metrics"
	"repro/internal/mrconf"
)

func init() {
	Register("tpe", func(o Options) Optimizer { return newTPE(o) })
}

const (
	// tpeGamma is the good/bad quantile split: the best quarter of the
	// history models l(x), the rest models g(x).
	tpeGamma = 0.25
	// tpeCandidates is how many samples from l(x) compete per proposed
	// coordinate; the l/g density-ratio argmax wins.
	tpeCandidates = 24
	// tpeMinBandwidth floors the normalized kernel width so the model
	// never collapses onto its observations.
	tpeMinBandwidth = 0.04
)

// tpe is a Tree-structured Parzen Estimator in the style of Bergstra
// et al., reduced to what the stdlib provides: the history is split at
// the γ-quantile of cost into good and bad sets, each dimension gets a
// pair of Parzen (Gaussian-kernel) densities l(x) and g(x) built over
// the normalized coordinates of those sets, and each proposed
// coordinate is the best of tpeCandidates draws from l(x) scored by
// the density ratio l(x)/g(x) — maximizing which is equivalent to
// maximizing expected improvement. Dimensions are modeled
// independently (the "tree" of the original is the per-dimension
// factorization of the search space).
//
// The first wave is the same LHS startup the hill backend uses (the
// model needs observations before it has an opinion); subsequent waves
// are model-guided. Like the other backends it is wave-oriented, and
// every draw comes from Options.RNG in a fixed order: same seed, same
// proposal trace.
type tpe struct {
	params []mrconf.Param
	space  lhs.Space // current (rule-tightened) bounds
	full   lhs.Space // original bounds
	rng    *rand.Rand
	sp     SearchParams

	history []evaluation // all completed evaluations, normalized points
	budget  int          // total evaluation budget

	pending     [][]float64
	waveCount   int // completed reports in the current wave
	waveSize    int
	outstanding int

	best     []float64 // raw space
	bestCost float64
	haveBest bool
	done     bool

	warmCenter []float64 // normalized; non-nil on warm start

	waves int
	evals int
	traj  trajectory
}

func newTPE(o Options) *tpe {
	params, sp := o.Params, o.Search
	space := make(lhs.Space, len(params))
	for i, p := range params {
		space[i] = lhs.Dim{Name: p.Name, Min: p.Min, Max: p.Max}
	}
	t := &tpe{
		params: params,
		space:  space,
		full:   append(lhs.Space(nil), space...),
		rng:    o.RNG,
		sp:     sp,
		// Cold budget ≈ the hill backend's footprint: one LHS startup
		// wave of M+1 plus GlobalBudget+2 model waves of N (the paper's
		// knobs give 25 + 7·16 = 137 evaluations).
		budget: sp.M + 1 + (sp.GlobalBudget+2)*sp.N,
	}
	if w := o.warmFor(); w != nil {
		// Warm start: skip the global LHS startup. The stored best
		// seeds both the history (so the model has an anchor) and the
		// first wave, which samples its neighborhood; the budget drops
		// to a refinement's worth of model waves.
		t.best = append([]float64(nil), w.Best...)
		for d, dim := range t.space {
			t.best[d] = metrics.Clamp(t.best[d], dim.Min, dim.Max)
		}
		t.bestCost = w.BestCost
		t.haveBest = true
		t.warmCenter = make([]float64, len(params))
		for d := range t.warmCenter {
			t.warmCenter[d] = t.normalize(d, t.best[d])
		}
		t.history = append(t.history, evaluation{point: append([]float64(nil), t.warmCenter...), cost: w.BestCost}) //mrlint:ignore retained-append bounded by the search budget; a search lives for one job's test run
		t.budget = (t.sp.GlobalBudget/2 + 1) * t.sp.N
	}
	t.startWave()
	return t
}

func (t *tpe) normalize(d int, v float64) float64 {
	r := t.full[d].Range()
	if r <= 0 {
		return 0
	}
	return metrics.Clamp((v-t.full[d].Min)/r, 0, 1)
}

func (t *tpe) denormalize(d int, x float64) float64 {
	v := t.full[d].Min + x*t.full[d].Range()
	return metrics.Clamp(v, t.space[d].Min, t.space[d].Max)
}

// startWave fills pending with the next batch of proposals.
func (t *tpe) startWave() {
	t.waveCount = 0
	t.outstanding = 0
	t.pending = t.pending[:0]
	switch {
	case t.warmCenter != nil && t.waves == 0:
		// Warm first wave: the stored best plus an LHS sample of its
		// neighborhood under the current bounds.
		nb := lhs.Neighborhood(t.space, t.rawOf(t.warmCenter), t.sp.InitialNeighbors)
		t.pending = append(t.pending, append([]float64(nil), t.best...))
		t.pending = append(t.pending, lhs.Sample(t.rng, nb, t.sp.N)...)
	case len(t.history) == 0:
		// Cold startup: defaults-seeded LHS over the whole space, the
		// same shape as the hill backend's first global wave.
		seed := make([]float64, len(t.params))
		for i, p := range t.params {
			seed[i] = p.Default
		}
		t.pending = append(t.pending, seed)
		t.pending = append(t.pending, lhs.Sample(t.rng, t.space, t.sp.M)...)
	default:
		for i := 0; i < t.sp.N; i++ {
			t.pending = append(t.pending, t.propose())
		}
	}
	if remain := t.budget - len(t.history); len(t.pending) > remain {
		t.pending = t.pending[:remain]
	}
	t.waveSize = len(t.pending)
}

func (t *tpe) rawOf(norm []float64) []float64 {
	p := make([]float64, len(norm))
	for d := range norm {
		p[d] = t.denormalize(d, norm[d])
	}
	return p
}

// propose builds one model-guided point: per dimension, tpeCandidates
// draws from the good-set kernel density, scored by l/g.
func (t *tpe) propose() []float64 {
	good, bad := t.split()
	point := make([]float64, len(t.params))
	for d := range t.params {
		bw := t.bandwidth(len(good))
		loN, hiN := t.normalize(d, t.space[d].Min), t.normalize(d, t.space[d].Max)
		bestX, bestScore := 0.0, math.Inf(-1)
		for c := 0; c < tpeCandidates; c++ {
			// Draw from l(x): a random good observation jittered by the
			// kernel, truncated to the current bounds.
			center := good[t.rng.Intn(len(good))].point[d]
			x := metrics.Clamp(center+t.rng.NormFloat64()*bw, loN, hiN)
			score := parzen(good, d, x, bw) / (parzen(bad, d, x, bw) + 1e-9)
			if score > bestScore {
				bestX, bestScore = x, score
			}
		}
		point[d] = t.denormalize(d, bestX)
	}
	return point
}

// split orders the history by cost and cuts it at the γ-quantile.
// Ties break on insertion order, so the split is deterministic.
func (t *tpe) split() (good, bad []evaluation) {
	idx := make([]int, len(t.history))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return t.history[idx[a]].cost < t.history[idx[b]].cost
	})
	nGood := int(math.Ceil(tpeGamma * float64(len(idx))))
	if nGood < 1 {
		nGood = 1
	}
	if nGood > len(idx) {
		nGood = len(idx)
	}
	good = make([]evaluation, 0, nGood)
	bad = make([]evaluation, 0, len(idx)-nGood)
	for i, j := range idx {
		if i < nGood {
			good = append(good, t.history[j])
		} else {
			bad = append(bad, t.history[j])
		}
	}
	return good, bad
}

// bandwidth scales the kernel width down as the good set grows.
func (t *tpe) bandwidth(nGood int) float64 {
	return math.Max(tpeMinBandwidth, 1/float64(nGood+2))
}

// parzen evaluates a Gaussian kernel-density mixture over set's
// normalized d-coordinates at x, plus a small uniform floor so empty
// or distant sets don't zero the ratio.
func parzen(set []evaluation, d int, x, bw float64) float64 {
	if len(set) == 0 {
		return 1
	}
	sum := 0.0
	for _, e := range set {
		z := (x - e.point[d]) / bw
		sum += math.Exp(-0.5 * z * z)
	}
	return sum/float64(len(set)) + 0.05
}

func (t *tpe) Done() bool            { return t.done }
func (t *tpe) HasPending() bool      { return len(t.pending) > 0 }
func (t *tpe) Waves() int            { return t.waves }
func (t *tpe) Trajectory() []float64 { return t.traj.Trajectory() }

func (t *tpe) State() string {
	if len(t.history) <= t.sp.M {
		return "startup"
	}
	return "model"
}

func (t *tpe) Next() []float64 {
	if t.done || len(t.pending) == 0 {
		return nil
	}
	p := t.pending[0]
	t.pending = t.pending[1:]
	t.outstanding++
	return p
}

func (t *tpe) Report(point []float64, cost float64) {
	if t.done {
		return
	}
	t.evals++
	t.traj.observe(cost)
	norm := make([]float64, len(point))
	for d := range point {
		norm[d] = t.normalize(d, point[d])
	}
	// The history is the model's training set; it is bounded by the
	// evaluation budget and read on every model wave, never trimmed.
	t.history = append(t.history, evaluation{point: norm, cost: cost}) //mrlint:ignore retained-append bounded by the evaluation budget; the history IS the surrogate model
	if !t.haveBest || cost < t.bestCost {
		t.best = append(t.best[:0], point...)
		t.bestCost = cost
		t.haveBest = true
	}
	t.waveCount++
	t.outstanding--
	if t.waveCount >= t.waveSize && t.outstanding <= 0 && len(t.pending) == 0 {
		t.endWave()
	}
}

func (t *tpe) Abandon() {
	if t.outstanding > 0 {
		t.outstanding--
		t.waveSize--
		if t.waveCount >= t.waveSize && t.outstanding <= 0 && len(t.pending) == 0 && t.waveSize > 0 {
			t.endWave()
		}
	}
}

func (t *tpe) endWave() {
	t.waves++
	if len(t.history) >= t.budget {
		t.done = true
		return
	}
	t.startWave()
}

func (t *tpe) Best() ([]float64, float64, bool) {
	return t.best, t.bestCost, t.haveBest
}

func (t *tpe) Export() ScopeState {
	st := ScopeState{
		Backend:  "tpe",
		Names:    paramNames(t.params),
		BestCost: t.bestCost,
		HaveBest: t.haveBest,
		Evals:    t.evals,
		Waves:    t.waves,
	}
	if t.haveBest {
		st.Best = append([]float64(nil), t.best...)
	}
	return st
}

// Tighten narrows a dimension's bounds (§6.2 gray-box rule); the best
// point is clamped and future proposals are truncated to the new
// range. History stays as observed — the model may know about regions
// the rules later forbade, but it can no longer propose into them.
func (t *tpe) Tighten(name string, lo, hi float64) {
	d := t.dimIndex(name)
	fullLo, fullHi := t.full[d].Min, t.full[d].Max
	lo = metrics.Clamp(lo, fullLo, fullHi)
	hi = metrics.Clamp(hi, fullLo, fullHi)
	if hi < lo {
		hi = lo
	}
	t.space[d].Min, t.space[d].Max = lo, hi
	if t.haveBest {
		t.best[d] = metrics.Clamp(t.best[d], lo, hi)
	}
}

// Bias is a no-op: the Parzen model already concentrates sampling
// where observed costs are low, which subsumes the §6.2 bias hints.
func (t *tpe) Bias(name string, w lhs.Weights) {
	t.dimIndex(name) // still validate the dimension
}

// Bounds returns the current bounds of a dimension.
func (t *tpe) Bounds(name string) (lo, hi float64) {
	d := t.dimIndex(name)
	return t.space[d].Min, t.space[d].Max
}

func (t *tpe) dimIndex(name string) int {
	for d := range t.space {
		if t.space[d].Name == name {
			return d
		}
	}
	panic(fmt.Sprintf("tuner: unknown dimension %q", name))
}

var (
	_ Optimizer = (*tpe)(nil)
	_ Shaper    = (*tpe)(nil)
)
