package tuner

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mrconf"
)

// proposalTrace drives a backend over a deterministic cost surface and
// renders every proposal (and the final best) into one string — the
// byte-level fingerprint the determinism tests compare.
func proposalTrace(backend string, seed int64, warm *ScopeState) string {
	params := mapDims()
	opt := MustNew(backend, Options{
		Params: params,
		RNG:    rand.New(rand.NewSource(seed)),
		Warm:   warm,
	})
	cost := scriptedCost(params)
	var b strings.Builder
	for i := 0; i < 5000 && !opt.Done(); i++ {
		p := opt.Next()
		if p == nil {
			break
		}
		fmt.Fprintf(&b, "%x\n", p) // %x on floats: exact bits, no rounding
		opt.Report(p, cost(p))
	}
	best, bestCost, ok := opt.Best()
	fmt.Fprintf(&b, "best=%x cost=%x ok=%v waves=%d\n", best, bestCost, ok, opt.Waves())
	return b.String()
}

// TestBackendsSameSeedBitReproducible is the tentpole determinism
// contract: for every registered backend, two runs with the same seed
// produce byte-identical proposal traces, and a different seed
// produces a different one.
func TestBackendsSameSeedBitReproducible(t *testing.T) {
	for _, backend := range Backends() {
		a := proposalTrace(backend, 11, nil)
		b := proposalTrace(backend, 11, nil)
		if a != b {
			t.Fatalf("%s: same-seed proposal traces differ", backend)
		}
		c := proposalTrace(backend, 12, nil)
		if a == c {
			t.Fatalf("%s: different seeds produced identical traces", backend)
		}
	}
}

// TestBackendsConvergeReasonably checks each backend finds a point
// much better than the default on the scripted surface and terminates
// within its budget.
func TestBackendsConvergeReasonably(t *testing.T) {
	params := mapDims()
	cost := scriptedCost(params)
	defaults := make([]float64, len(params))
	for i, p := range params {
		defaults[i] = p.Default
	}
	defCost := cost(defaults)
	for _, backend := range Backends() {
		opt := MustNew(backend, Options{Params: params, RNG: rand.New(rand.NewSource(5))})
		evals := drive(opt, cost, 20000)
		if !opt.Done() {
			t.Fatalf("%s: not done after %d evals", backend, evals)
		}
		_, bestCost, ok := opt.Best()
		if !ok {
			t.Fatalf("%s: no best point", backend)
		}
		if bestCost >= defCost {
			t.Fatalf("%s: best cost %v no better than default %v after %d evals",
				backend, bestCost, defCost, evals)
		}
		if got := len(opt.Trajectory()); got != evals {
			t.Fatalf("%s: trajectory length %d != %d evals", backend, got, evals)
		}
	}
}

// TestTrajectoryIsRunningMin checks the convergence curve invariant.
func TestTrajectoryIsRunningMin(t *testing.T) {
	params := mapDims()
	opt := MustNew("spsa", Options{Params: params, RNG: rand.New(rand.NewSource(2))})
	drive(opt, scriptedCost(params), 500)
	traj := opt.Trajectory()
	for i := 1; i < len(traj); i++ {
		if traj[i] > traj[i-1] {
			t.Fatalf("trajectory rose at %d: %v -> %v", i-1, traj[i-1], traj[i])
		}
	}
}

// TestWarmStartFewerWaves: for every backend, a warm start from a
// finished search's exported state issues strictly fewer waves (and
// evaluations) than the cold search did — the Store's whole point.
func TestWarmStartFewerWaves(t *testing.T) {
	params := mapDims()
	cost := scriptedCost(params)
	for _, backend := range Backends() {
		cold := MustNew(backend, Options{Params: params, RNG: rand.New(rand.NewSource(21))})
		coldEvals := drive(cold, cost, 20000)
		st := cold.Export()
		if !st.HaveBest || st.Backend != backend {
			t.Fatalf("%s: export incomplete: %+v", backend, st)
		}

		warm := MustNew(backend, Options{Params: params, RNG: rand.New(rand.NewSource(22)), Warm: &st})
		warmEvals := drive(warm, cost, 20000)
		if !warm.Done() {
			t.Fatalf("%s: warm search did not terminate", backend)
		}
		if warm.Waves() >= cold.Waves() {
			t.Fatalf("%s: warm waves %d not fewer than cold %d", backend, warm.Waves(), cold.Waves())
		}
		if warmEvals >= coldEvals {
			t.Fatalf("%s: warm evals %d not fewer than cold %d", backend, warmEvals, coldEvals)
		}
		// The warm search re-anchors on the stored best: it must never
		// end up worse than what it was seeded with.
		_, warmCost, ok := warm.Best()
		if !ok || warmCost > st.BestCost+1e-12 {
			t.Fatalf("%s: warm best %v regressed below seed %v", backend, warmCost, st.BestCost)
		}
	}
}

// TestWarmStateScopeMismatchIgnored: state recorded over different
// dimensions (e.g. black-box vs gray-box spaces) must not seed a
// search; the backend silently falls back to a cold start.
func TestWarmStateScopeMismatchIgnored(t *testing.T) {
	params := mapDims()
	st := ScopeState{
		Backend: "hill", Names: []string{"something", "else"},
		Best: []float64{1, 2}, BestCost: 0.1, HaveBest: true,
	}
	warm := MustNew("hill", Options{Params: params, RNG: rand.New(rand.NewSource(3)), Warm: &st})
	cold := MustNew("hill", Options{Params: params, RNG: rand.New(rand.NewSource(3))})
	for i := 0; i < 10; i++ {
		wp, cp := warm.Next(), cold.Next()
		for d := range wp {
			if wp[d] != cp[d] {
				t.Fatalf("mismatched warm state changed the search (step %d)", i)
			}
		}
		warm.Report(wp, 1)
		cold.Report(cp, 1)
	}
}

// TestWarmStateCrossBackend: a state exported by one backend seeds
// another (the Store is keyed by job class, not by backend), as long
// as the dimension names line up.
func TestWarmStateCrossBackend(t *testing.T) {
	params := mapDims()
	cost := scriptedCost(params)
	cold := MustNew("hill", Options{Params: params, RNG: rand.New(rand.NewSource(31))})
	drive(cold, cost, 20000)
	st := cold.Export()
	for _, backend := range []string{"spsa", "tpe"} {
		warm := MustNew(backend, Options{Params: params, RNG: rand.New(rand.NewSource(32)), Warm: &st})
		drive(warm, cost, 20000)
		_, warmCost, ok := warm.Best()
		if !ok || warmCost > st.BestCost+1e-12 {
			t.Fatalf("%s warm-started from hill state regressed: %v > %v", backend, warmCost, st.BestCost)
		}
	}
}

func TestUnknownBackendError(t *testing.T) {
	_, err := New("bogus", Options{Params: mapDims(), RNG: rand.New(rand.NewSource(1))})
	if err == nil {
		t.Fatal("unknown backend did not error")
	}
	for _, want := range Backends() {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list registered backend %q", err, want)
		}
	}
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New("hill", Options{Params: mapDims()}); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := New("hill", Options{RNG: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("empty parameter space accepted")
	}
}

func TestRegisteredBackends(t *testing.T) {
	got := strings.Join(Backends(), ",")
	if got != "hill,spsa,tpe" {
		t.Fatalf("registered backends = %q, want hill,spsa,tpe", got)
	}
}

// TestBackendsRespectTighten: proposals after a Tighten stay inside
// the narrowed bounds for every backend. For hill the check covers
// global-phase waves only: the legacy search (pinned bit-exact by
// TestHillMatchesFrozenLegacySearch) may recenter a local wave on an
// old-bounds point measured in the wave that was in flight when the
// rule fired. SPSA and TPE clamp every proposal into the live space.
func TestBackendsRespectTighten(t *testing.T) {
	params := mapDims()
	var ioSortDim int
	for i, p := range params {
		if p.Name == mrconf.IOSortMB {
			ioSortDim = i
		}
	}
	for _, backend := range Backends() {
		opt := MustNew(backend, Options{Params: params, RNG: rand.New(rand.NewSource(9))})
		sh := opt.(Shaper)
		cost := scriptedCost(params)
		// Let the first wave finish, then clamp io.sort.mb hard.
		for i := 0; i < 30; i++ {
			p := opt.Next()
			if p == nil {
				break
			}
			opt.Report(p, cost(p))
		}
		sh.Tighten(params[ioSortDim].Name, 200, 400)
		// The wave in flight was sampled under the old bounds (rules fire
		// at wave boundaries); only waves started after the Tighten must
		// respect it.
		tightenedAt := opt.Waves()
		for i := 0; i < 4000 && !opt.Done(); i++ {
			p := opt.Next()
			if p == nil {
				break
			}
			strict := backend != "hill" || opt.State() == "global"
			if strict && opt.Waves() > tightenedAt && (p[ioSortDim] < 200-1e-9 || p[ioSortDim] > 400+1e-9) {
				t.Fatalf("%s proposed io.sort.mb %v outside tightened [200,400]", backend, p[ioSortDim])
			}
			opt.Report(p, cost(p))
		}
	}
}
