package tuner

// This file freezes the pre-refactor core.Tuner hill-climbing search
// verbatim (modulo `legacy` name prefixes) and pins the refactored
// hill backend bit-exact against it: same RNG seed, same scripted cost
// sequence, same gray-box Tighten/Bias interventions — every proposal
// and the final best point must match to the last bit. This is the
// byte-identity contract that lets the committed figure pipeline
// survive the move into internal/tuner.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lhs"
	"repro/internal/metrics"
	"repro/internal/mrconf"
)

type legacyPhase int

const (
	legacyGlobal legacyPhase = iota
	legacyLocal
	legacyDone
)

type legacyEval struct {
	point []float64
	cost  float64
}

type legacyHillClimb struct {
	params []mrconf.Param
	space  lhs.Space
	full   lhs.Space
	rng    *rand.Rand
	sp     SearchParams

	weights []lhs.Weights

	phase       legacyPhase
	pending     [][]float64
	waveSize    int
	wave        []legacyEval
	outstanding int

	best     []float64
	bestCost float64
	haveBest bool
	nbSize   float64
	globals  int

	waves int
}

func newLegacyHillClimb(params []mrconf.Param, rng *rand.Rand, sp SearchParams) *legacyHillClimb {
	space := make(lhs.Space, len(params))
	for i, p := range params {
		space[i] = lhs.Dim{Name: p.Name, Min: p.Min, Max: p.Max}
	}
	h := &legacyHillClimb{
		params:  params,
		space:   space,
		full:    append(lhs.Space(nil), space...),
		rng:     rng,
		sp:      sp,
		weights: make([]lhs.Weights, len(params)),
	}
	h.startWave(sp.M, h.space)
	seed := make([]float64, len(params))
	for i, p := range params {
		seed[i] = p.Default
	}
	h.pending = append([][]float64{seed}, h.pending...)
	h.waveSize++
	return h
}

func (h *legacyHillClimb) startWave(size int, space lhs.Space) {
	if h.sp.PlainRandom {
		h.pending = uniformSample(h.rng, space, size)
	} else {
		h.pending = lhs.WeightedSample(h.rng, space, h.weights, size)
	}
	if h.sp.K > 1 {
		for _, p := range h.pending {
			snapToGrid(p, space, h.sp.K)
		}
	}
	h.waveSize = size
	h.wave = h.wave[:0]
	h.outstanding = 0
}

func (h *legacyHillClimb) Next() []float64 {
	if h.phase == legacyDone || len(h.pending) == 0 {
		return nil
	}
	p := h.pending[0]
	h.pending = h.pending[1:]
	h.outstanding++
	return p
}

func (h *legacyHillClimb) Report(point []float64, cost float64) {
	if h.phase == legacyDone {
		return
	}
	h.wave = append(h.wave, legacyEval{point: point, cost: cost})
	h.outstanding--
	if len(h.wave) >= h.waveSize && h.outstanding <= 0 && len(h.pending) == 0 {
		h.endWave()
	}
}

func (h *legacyHillClimb) endWave() {
	h.waves++
	cand, candCost := h.waveBest()
	switch h.phase {
	case legacyGlobal:
		if !h.haveBest || candCost < h.bestCost {
			h.best, h.bestCost, h.haveBest = cand, candCost, true
			h.nbSize = h.sp.InitialNeighbors
			h.phase = legacyLocal
			h.startWave(h.sp.N, lhs.Neighborhood(h.space, h.best, h.nbSize))
			return
		}
		h.globals++
		if h.globals >= h.sp.GlobalBudget {
			h.phase = legacyDone
			return
		}
		h.startWave(h.sp.M, h.space)
	case legacyLocal:
		if candCost < h.bestCost {
			h.best, h.bestCost = cand, candCost
		} else {
			h.nbSize *= h.sp.ShrinkFactor
		}
		if h.nbSize < h.sp.Nt {
			h.globals++
			if h.globals >= h.sp.GlobalBudget {
				h.phase = legacyDone
				return
			}
			h.phase = legacyGlobal
			h.startWave(h.sp.M, h.space)
			return
		}
		h.startWave(h.sp.N, lhs.Neighborhood(h.space, h.best, h.nbSize))
	}
}

func (h *legacyHillClimb) waveBest() ([]float64, float64) {
	if len(h.wave) == 0 {
		return h.best, h.bestCost
	}
	best := h.wave[0]
	for _, e := range h.wave[1:] {
		if e.cost < best.cost {
			best = e
		}
	}
	return best.point, best.cost
}

func (h *legacyHillClimb) Best() ([]float64, float64, bool) {
	return h.best, h.bestCost, h.haveBest
}

func (h *legacyHillClimb) Tighten(name string, lo, hi float64) {
	for d := range h.space {
		if h.space[d].Name != name {
			continue
		}
		fullLo, fullHi := h.full[d].Min, h.full[d].Max
		lo = metrics.Clamp(lo, fullLo, fullHi)
		hi = metrics.Clamp(hi, fullLo, fullHi)
		if hi < lo {
			hi = lo
		}
		h.space[d].Min, h.space[d].Max = lo, hi
		if h.haveBest {
			h.best[d] = metrics.Clamp(h.best[d], lo, hi)
		}
		return
	}
	panic(fmt.Sprintf("legacy: Tighten of unknown dimension %q", name))
}

func (h *legacyHillClimb) Bias(name string, w lhs.Weights) {
	for d := range h.space {
		if h.space[d].Name == name {
			h.weights[d] = w
			return
		}
	}
	panic(fmt.Sprintf("legacy: Bias of unknown dimension %q", name))
}

// scriptedCost is a deterministic, seed-free cost surface with enough
// structure to push the search through global and local phases.
func scriptedCost(params []mrconf.Param) func([]float64) float64 {
	return func(p []float64) float64 {
		c := 0.0
		for i := range p {
			span := params[i].Max - params[i].Min
			x := (p[i] - params[i].Min) / span
			c += (x - 0.37) * (x - 0.37)
			c += 0.05 * math.Sin(9*x)
		}
		return c
	}
}

// TestHillMatchesFrozenLegacySearch drives the refactored hill backend
// and the frozen pre-refactor copy in lock-step — same seed, same
// costs, same mid-search Tighten/Bias interventions — and requires a
// bit-exact proposal trace and best point.
func TestHillMatchesFrozenLegacySearch(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		params := mapDims()
		sp := DefaultSearchParams()
		cost := scriptedCost(params)
		legacy := newLegacyHillClimb(params, rand.New(rand.NewSource(seed)), sp)
		fresh := newHillClimb(Options{Params: params, RNG: rand.New(rand.NewSource(seed)), Search: sp})

		shaped := false
		for step := 0; step < 5000; step++ {
			lp, np := legacy.Next(), fresh.Next()
			if (lp == nil) != (np == nil) {
				t.Fatalf("seed %d step %d: legacy=%v fresh=%v", seed, step, lp, np)
			}
			if lp == nil {
				break
			}
			if len(lp) != len(np) {
				t.Fatalf("seed %d step %d: dim mismatch", seed, step)
			}
			for d := range lp {
				if lp[d] != np[d] { // bit-exact, no tolerance
					t.Fatalf("seed %d step %d dim %d: legacy %v != fresh %v", seed, step, d, lp[d], np[d])
				}
			}
			c := cost(lp)
			legacy.Report(lp, c)
			fresh.Report(np, c)
			// After the second wave boundary, fire the same §6.2 rules at
			// both searches once: the RNG-consuming weighted sampler must
			// stay in lock-step through bias and bound changes.
			if !shaped && legacy.waves >= 2 {
				shaped = true
				legacy.Tighten(mrconf.IOSortMB, 120, 900)
				fresh.Tighten(mrconf.IOSortMB, 120, 900)
				legacy.Bias(mrconf.MapMemoryMB, lhs.Weights{1, 1, 2, 3})
				fresh.Bias(mrconf.MapMemoryMB, lhs.Weights{1, 1, 2, 3})
			}
		}
		lb, lc, lok := legacy.Best()
		nb, nc, nok := fresh.Best()
		if lok != nok || lc != nc {
			t.Fatalf("seed %d: best cost legacy (%v,%v) != fresh (%v,%v)", seed, lc, lok, nc, nok)
		}
		for d := range lb {
			if lb[d] != nb[d] {
				t.Fatalf("seed %d: best point dim %d legacy %v != fresh %v", seed, d, lb[d], nb[d])
			}
		}
		if legacy.waves != fresh.Waves() {
			t.Fatalf("seed %d: wave counts legacy %d != fresh %d", seed, legacy.waves, fresh.Waves())
		}
	}
}
