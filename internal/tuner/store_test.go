package tuner

import (
	"path/filepath"
	"sync"
	"testing"
)

func stateWithCost(c float64) ScopeState {
	return ScopeState{
		Backend: "hill", Names: []string{"a", "b"},
		Best: []float64{1, 2}, BestCost: c, HaveBest: true,
		Evals: 10, Waves: 3,
	}
}

func TestKeyBucketsByPowerOfTwo(t *testing.T) {
	cases := []struct {
		app  string
		mb   float64
		want string
	}{
		{"wordcount", 1, "wordcount|2^0MB"},
		{"wordcount", 1.5, "wordcount|2^1MB"},
		{"wordcount", 2048, "wordcount|2^11MB"},
		{"wordcount", 2049, "wordcount|2^12MB"},
		{"sort", 2048, "sort|2^11MB"},
	}
	for _, c := range cases {
		if got := Key(c.app, c.mb); got != c.want {
			t.Errorf("Key(%s, %v) = %q, want %q", c.app, c.mb, got, c.want)
		}
	}
	// Near-identical input sizes share a class; different scales don't.
	if Key("wc", 1000) != Key("wc", 1020) {
		t.Error("similar sizes landed in different classes")
	}
	if Key("wc", 1000) == Key("wc", 9000) {
		t.Error("different scales share a class")
	}
}

func TestStoreKeepsLowerCostScope(t *testing.T) {
	s := NewStore()
	key := Key("wc", 2048)
	s.Update(key, Entry{Map: stateWithCost(2.0), Reduce: stateWithCost(3.0)})
	s.Update(key, Entry{Map: stateWithCost(1.5), Reduce: stateWithCost(4.0)})
	e, ok := s.Get(key)
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Map.BestCost != 1.5 {
		t.Fatalf("map scope kept cost %v, want the lower 1.5", e.Map.BestCost)
	}
	if e.Reduce.BestCost != 3.0 {
		t.Fatalf("reduce scope kept cost %v, want the original 3.0", e.Reduce.BestCost)
	}
	if e.Jobs != 2 {
		t.Fatalf("Jobs = %d, want 2", e.Jobs)
	}
}

func TestStoreMergeFillsEmptyScope(t *testing.T) {
	s := NewStore()
	s.Update("k", Entry{Map: stateWithCost(2.0)})
	s.Update("k", Entry{Reduce: stateWithCost(1.0)})
	e, _ := s.Get("k")
	if !e.Map.HaveBest || !e.Reduce.HaveBest {
		t.Fatalf("merge lost a scope: %+v", e)
	}
	if !e.Usable() {
		t.Fatal("entry with both scopes not usable")
	}
	if (Entry{}).Usable() {
		t.Fatal("empty entry reported usable")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.Update("wc|2^11MB", Entry{Map: stateWithCost(2.0), Reduce: stateWithCost(3.0)})
	s.Update("ts|2^12MB", Entry{Map: stateWithCost(0.5)})
	path := filepath.Join(t.TempDir(), "store.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", got.Len())
	}
	e, ok := got.Get("wc|2^11MB")
	if !ok || e.Map.BestCost != 2.0 || len(e.Map.Best) != 2 || e.Map.Best[1] != 2 {
		t.Fatalf("round trip mangled entry: %+v", e)
	}
	keys := got.Keys()
	if len(keys) != 2 || keys[0] != "ts|2^12MB" || keys[1] != "wc|2^11MB" {
		t.Fatalf("Keys() = %v, want sorted", keys)
	}
}

func TestLoadStoreMissingFile(t *testing.T) {
	if _, err := LoadStore(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestStoreConcurrentUpdates exercises the mutex under the race
// detector: a fleet of jobs updating the same class concurrently.
func TestStoreConcurrentUpdates(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Update("k", Entry{Map: stateWithCost(float64(i*50+j) + 1)})
				s.Get("k")
				s.Len()
			}
		}(i)
	}
	wg.Wait()
	e, _ := s.Get("k")
	if e.Map.BestCost != 1 {
		t.Fatalf("concurrent merge kept %v, want the global min 1", e.Map.BestCost)
	}
	if e.Jobs != 16*50 {
		t.Fatalf("Jobs = %d, want %d", e.Jobs, 16*50)
	}
}
