package tuner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mrconf"
)

// mapDims mirrors core's gray-box map-scope search space.
func mapDims() []mrconf.Param {
	names := []string{mrconf.MapMemoryMB, mrconf.IOSortMB, mrconf.MapCPUVcores, mrconf.IOSortFactor}
	out := make([]mrconf.Param, len(names))
	for i, n := range names {
		out[i] = mrconf.MustLookup(n)
	}
	return out
}

func hillOver(params []mrconf.Param, seed int64, sp SearchParams) *hillClimb {
	return newHillClimb(Options{Params: params, RNG: rand.New(rand.NewSource(seed)), Search: sp})
}

// drive runs an optimizer against a synthetic cost surface until it
// converges or maxEvals is hit, returning the evaluation count.
func drive(o Optimizer, cost func([]float64) float64, maxEvals int) int {
	evals := 0
	for !o.Done() && evals < maxEvals {
		p := o.Next()
		if p == nil {
			// Wave fully assigned; with a synchronous driver this
			// cannot happen because we report immediately.
			break
		}
		evals++
		o.Report(p, cost(p))
	}
	return evals
}

// sphere builds a convex cost with minimum at target (normalized).
func sphere(params []mrconf.Param, target []float64) func([]float64) float64 {
	return func(p []float64) float64 {
		sum := 0.0
		for i := range p {
			span := params[i].Max - params[i].Min
			d := (p[i] - target[i]) / span
			sum += d * d
		}
		return sum
	}
}

func TestHillClimbConvergesOnConvexSurface(t *testing.T) {
	params := mapDims()
	target := make([]float64, len(params))
	for i, p := range params {
		target[i] = p.Min + 0.7*(p.Max-p.Min)
	}
	h := hillOver(params, 1, DefaultSearchParams())
	evals := drive(h, sphere(params, target), 5000)
	best, bestCost, ok := h.Best()
	if !ok {
		t.Fatal("no best point found")
	}
	if bestCost > 0.05 {
		t.Fatalf("best cost %v after %d evals, want < 0.05 (best %v, target %v)",
			bestCost, evals, best, target)
	}
	if !h.Done() {
		t.Fatalf("search not done after %d evals", evals)
	}
}

func TestHillClimbBeatsPureRandom(t *testing.T) {
	params := mapDims()
	target := make([]float64, len(params))
	for i, p := range params {
		target[i] = p.Min + 0.31*(p.Max-p.Min)
	}
	cost := sphere(params, target)

	h := hillOver(params, 3, DefaultSearchParams())
	evals := drive(h, cost, 5000)
	_, hcCost, _ := h.Best()

	rng := rand.New(rand.NewSource(3))
	randBest := math.Inf(1)
	for i := 0; i < evals; i++ {
		p := make([]float64, len(params))
		for d, prm := range params {
			p[d] = prm.Min + rng.Float64()*(prm.Max-prm.Min)
		}
		if c := cost(p); c < randBest {
			randBest = c
		}
	}
	if hcCost > randBest {
		t.Fatalf("hill climbing (%v) worse than random search (%v) at equal budget %d",
			hcCost, randBest, evals)
	}
}

func TestFirstWaveSeededWithDefaults(t *testing.T) {
	params := mapDims()
	h := hillOver(params, 4, DefaultSearchParams())
	first := h.Next()
	for i, p := range params {
		if first[i] != p.Default {
			t.Fatalf("first point dim %s = %v, want default %v", p.Name, first[i], p.Default)
		}
	}
}

func TestSeedPointProtectsAgainstBadSamples(t *testing.T) {
	// Cost surface where the default is optimal: the search must
	// return (essentially) the default, never something worse.
	params := mapDims()
	target := make([]float64, len(params))
	for i, p := range params {
		target[i] = p.Default
	}
	cost := sphere(params, target)
	h := hillOver(params, 5, DefaultSearchParams())
	drive(h, cost, 5000)
	_, bestCost, _ := h.Best()
	if bestCost > 1e-9 {
		t.Fatalf("seeded default not retained as best: cost %v", bestCost)
	}
}

func TestWaveGating(t *testing.T) {
	params := mapDims()
	sp := DefaultSearchParams()
	h := hillOver(params, 6, sp)
	// Drain the first wave without reporting: Next must eventually
	// return nil (gate closed).
	var points [][]float64
	for {
		p := h.Next()
		if p == nil {
			break
		}
		points = append(points, p)
	}
	if len(points) != sp.M+1 { // +1 for the default seed
		t.Fatalf("first wave handed out %d points, want %d", len(points), sp.M+1)
	}
	if h.HasPending() {
		t.Fatal("HasPending true after draining the wave")
	}
	// Report all but one: still gated.
	for _, p := range points[:len(points)-1] {
		h.Report(p, 1.0)
	}
	if h.Next() != nil {
		t.Fatal("gate opened before the wave completed")
	}
	h.Report(points[len(points)-1], 0.5)
	if h.Next() == nil {
		t.Fatal("no new wave after the previous one completed")
	}
}

func TestAbandonShrinksWave(t *testing.T) {
	params := mapDims()
	h := hillOver(params, 7, DefaultSearchParams())
	var points [][]float64
	for {
		p := h.Next()
		if p == nil {
			break
		}
		points = append(points, p)
	}
	// Abandon one, report the rest: the wave must still complete.
	h.Abandon()
	for _, p := range points[:len(points)-1] {
		h.Report(p, 1.0)
	}
	if h.Next() == nil {
		t.Fatal("wave with an abandoned task never completed")
	}
}

func TestTightenClampsBestAndBounds(t *testing.T) {
	params := mapDims()
	h := hillOver(params, 8, DefaultSearchParams())
	target := make([]float64, len(params))
	for i, p := range params {
		target[i] = p.Min
	}
	drive(h, sphere(params, target), 200)
	h.Tighten(mrconf.IOSortMB, 500, 800)
	lo, hi := h.Bounds(mrconf.IOSortMB)
	if lo != 500 || hi != 800 {
		t.Fatalf("bounds = [%v, %v], want [500, 800]", lo, hi)
	}
	best, _, ok := h.Best()
	if ok {
		for i, p := range params {
			if p.Name == mrconf.IOSortMB {
				if best[i] < 500 || best[i] > 800 {
					t.Fatalf("best io.sort.mb %v outside tightened bounds", best[i])
				}
			}
		}
	}
	// Degenerate tighten (hi < lo) must not panic and must keep
	// lo <= hi.
	h.Tighten(mrconf.IOSortMB, 700, 600)
	lo, hi = h.Bounds(mrconf.IOSortMB)
	if hi < lo {
		t.Fatalf("degenerate bounds [%v, %v]", lo, hi)
	}
}

func TestTightenUnknownPanics(t *testing.T) {
	h := hillOver(mapDims(), 9, DefaultSearchParams())
	defer func() {
		if recover() == nil {
			t.Fatal("Tighten of unknown dim did not panic")
		}
	}()
	h.Tighten("nope", 0, 1)
}

func TestSearchTerminatesWithinBudget(t *testing.T) {
	// Even with a pathological (constant) cost surface the search must
	// terminate: global budget g bounds the iterations.
	params := mapDims()
	h := hillOver(params, 10, DefaultSearchParams())
	evals := drive(h, func([]float64) float64 { return 1 }, 100000)
	if !h.Done() {
		t.Fatalf("search did not terminate (evals=%d)", evals)
	}
	if evals > 2000 {
		t.Fatalf("search used %d evals on a constant surface", evals)
	}
}

func TestPointToOverridesQuantized(t *testing.T) {
	params := mapDims()
	point := make([]float64, len(params))
	for i, p := range params {
		point[i] = p.Min + 0.333*(p.Max-p.Min)
	}
	kv := PointToOverrides(params, point)
	for _, p := range params {
		v, ok := kv[p.Name]
		if !ok {
			t.Fatalf("override for %s missing", p.Name)
		}
		if v != p.Quantize(v) {
			t.Fatalf("override %s=%v not quantized", p.Name, v)
		}
	}
}

// Property: for any cost surface drawn from random quadratics the
// search returns a point no worse than the first wave's best.
func TestSearchMonotoneProperty(t *testing.T) {
	params := mapDims()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := make([]float64, len(params))
		for i, p := range params {
			target[i] = p.Min + rng.Float64()*(p.Max-p.Min)
		}
		cost := sphere(params, target)
		h := hillOver(params, seed+1, DefaultSearchParams())
		firstWaveBest := math.Inf(1)
		evals := 0
		for !h.Done() && evals < 3000 {
			p := h.Next()
			if p == nil {
				break
			}
			c := cost(p)
			if evals <= DefaultSearchParams().M && c < firstWaveBest {
				firstWaveBest = c
			}
			evals++
			h.Report(p, c)
		}
		_, bestCost, ok := h.Best()
		return ok && bestCost <= firstWaveBest+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestLHSBeatsPlainRandomSampling quantifies the weighted-LHS design
// choice (§5: LHS "leads to higher quality sampling"): over many random
// convex surfaces, the best point of the FIRST global wave — where
// stratification governs coverage — must beat independent uniform
// draws on average. (After full convergence both samplers are limited
// by the k-interval grid, so the first wave is where the choice shows.)
func TestLHSBeatsPlainRandomSampling(t *testing.T) {
	params := mapDims()
	m := DefaultSearchParams().M
	sumLHS, sumRand := 0.0, 0.0
	const trials = 500
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		target := make([]float64, len(params))
		for i, p := range params {
			target[i] = p.Min + rng.Float64()*(p.Max-p.Min)
		}
		cost := sphere(params, target)

		firstWaveBest := func(plain bool) float64 {
			sp := DefaultSearchParams()
			sp.PlainRandom = plain
			h := hillOver(params, seed+1000, sp)
			h.Next() // discard the deterministic default seed point
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				p := h.Next()
				if p == nil {
					break
				}
				if c := cost(p); c < best {
					best = c
				}
			}
			return best
		}
		sumLHS += firstWaveBest(false)
		sumRand += firstWaveBest(true)
	}
	if sumLHS >= sumRand {
		t.Fatalf("first-wave LHS mean cost %.4f not better than uniform %.4f",
			sumLHS/trials, sumRand/trials)
	}
}

// TestSamplesOnKGrid checks the §5 granularity: every sampled
// coordinate lies on the midpoint grid of k=24 intervals.
func TestSamplesOnKGrid(t *testing.T) {
	params := mapDims()
	sp := DefaultSearchParams()
	h := hillOver(params, 12, sp)
	h.Next() // skip the default-config seed point
	for {
		p := h.Next()
		if p == nil {
			break
		}
		for d, prm := range params {
			r := prm.Max - prm.Min
			pos := (p[d] - prm.Min) / r * float64(sp.K)
			// Must be at an interval midpoint: pos - 0.5 is an integer.
			frac := pos - 0.5
			if math.Abs(frac-math.Round(frac)) > 1e-9 {
				t.Fatalf("dim %s sample %v not on the k=%d grid", prm.Name, p[d], sp.K)
			}
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	if phaseGlobal.String() != "global" || phaseLocal.String() != "local" || phaseDone.String() != "done" {
		t.Fatal("phase strings broken")
	}
}
