package tuner

import (
	"fmt"
	"math/rand"

	"repro/internal/lhs"
	"repro/internal/metrics"
	"repro/internal/mrconf"
)

func init() {
	Register("hill", func(o Options) Optimizer { return newHillClimb(o) })
}

type searchPhase int

const (
	phaseGlobal searchPhase = iota
	phaseLocal
	phaseDone
)

func (p searchPhase) String() string {
	switch p {
	case phaseGlobal:
		return "global"
	case phaseLocal:
		return "local"
	default:
		return "done"
	}
}

// hillClimb is the gray-box smart hill-climbing search over one
// parameter subspace (map-scope or reduce-scope), restructured as a
// streaming state machine: points are handed out one at a time to
// tasks, costs come back asynchronously, and each completed wave
// triggers one step of Algorithm 1. This is the paper's own search,
// moved verbatim from internal/core behind the Optimizer interface —
// its RNG draw sequence is pinned bit-exact by a golden test against
// a frozen copy of the pre-refactor code.
type hillClimb struct {
	params []mrconf.Param
	space  lhs.Space // current (rule-tightened) bounds
	full   lhs.Space // original bounds
	rng    *rand.Rand
	sp     SearchParams

	weights []lhs.Weights // optional per-dim sampling bias

	phase       searchPhase
	pending     [][]float64
	waveSize    int
	wave        []evaluation
	outstanding int

	best     []float64
	bestCost float64
	haveBest bool
	nbSize   float64
	globals  int

	// waves counts completed waves, for diagnostics.
	waves int

	evals int
	traj  trajectory
}

// newHillClimb builds a search over the given parameters. A valid
// warm state skips the initial global wave entirely: the search starts
// in the local phase centered on the stored best with the global
// budget nearly spent, so one neighborhood refinement is all a
// warm-started job pays.
func newHillClimb(o Options) *hillClimb {
	params, sp := o.Params, o.Search
	space := make(lhs.Space, len(params))
	for i, p := range params {
		space[i] = lhs.Dim{Name: p.Name, Min: p.Min, Max: p.Max}
	}
	h := &hillClimb{
		params:  params,
		space:   space,
		full:    append(lhs.Space(nil), space...),
		rng:     o.RNG,
		sp:      sp,
		weights: make([]lhs.Weights, len(params)),
	}
	if w := o.warmFor(); w != nil {
		h.best = append([]float64(nil), w.Best...)
		for d, dim := range h.space {
			h.best[d] = metrics.Clamp(h.best[d], dim.Min, dim.Max)
		}
		h.bestCost = w.BestCost
		h.haveBest = true
		h.nbSize = sp.InitialNeighbors
		h.phase = phaseLocal
		h.globals = sp.GlobalBudget - 1
		h.startWave(sp.N, lhs.Neighborhood(h.space, h.best, h.nbSize))
		// Seed the wave with the stored best itself, so this job's
		// measurements re-anchor its cost under current conditions and
		// the recommendation never regresses below the class's
		// best-known configuration.
		seed := append([]float64(nil), h.best...)
		h.pending = append([][]float64{seed}, h.pending...)
		h.waveSize++
		return h
	}
	h.startWave(sp.M, h.space)
	// Seed the first wave with the current (default) configuration so
	// the search never recommends something worse than its starting
	// point — the tuning process of Fig 3 starts from "a default
	// configuration or a configuration based on rough understanding".
	seed := make([]float64, len(params))
	for i, p := range params {
		seed[i] = p.Default
	}
	h.pending = append([][]float64{seed}, h.pending...)
	h.waveSize++
	return h
}

func (h *hillClimb) startWave(size int, space lhs.Space) {
	if h.sp.PlainRandom {
		h.pending = uniformSample(h.rng, space, size)
	} else {
		h.pending = lhs.WeightedSample(h.rng, space, h.weights, size)
	}
	// Snap each coordinate to the paper's k-interval grid (§5: "the
	// LHS interval k indicates the granularity of each parameter
	// interval, set to 24"): samples land on interval midpoints.
	if h.sp.K > 1 {
		for _, p := range h.pending {
			snapToGrid(p, space, h.sp.K)
		}
	}
	h.waveSize = size
	h.wave = h.wave[:0]
	h.outstanding = 0
}

// snapToGrid moves point coordinates to the midpoints of k equal
// intervals of each dimension.
func snapToGrid(point []float64, space lhs.Space, k int) {
	for d, dim := range space {
		r := dim.Range()
		if r <= 0 {
			point[d] = dim.Min
			continue
		}
		idx := int((point[d] - dim.Min) / r * float64(k))
		if idx >= k {
			idx = k - 1
		}
		if idx < 0 {
			idx = 0
		}
		point[d] = dim.Min + (float64(idx)+0.5)*r/float64(k)
	}
}

// uniformSample draws points independently (no stratification), for
// the LHS ablation.
func uniformSample(rng *rand.Rand, space lhs.Space, m int) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		p := make([]float64, len(space))
		for d, dim := range space {
			p[d] = dim.Min + rng.Float64()*dim.Range()
		}
		out[i] = p
	}
	return out
}

// Done reports whether the search has converged.
func (h *hillClimb) Done() bool { return h.phase == phaseDone }

// HasPending reports whether an unassigned sampled point exists.
func (h *hillClimb) HasPending() bool { return len(h.pending) > 0 }

// Next pops the next sampled point for assignment to a task. It
// returns nil when the current wave is fully assigned (the launch gate
// then holds further tasks until the wave completes).
func (h *hillClimb) Next() []float64 {
	if h.phase == phaseDone || len(h.pending) == 0 {
		return nil
	}
	p := h.pending[0]
	h.pending = h.pending[1:]
	h.outstanding++
	return p
}

// Report feeds back the measured cost of an assigned point. When the
// wave is complete it advances Algorithm 1 by one step.
func (h *hillClimb) Report(point []float64, cost float64) {
	if h.phase == phaseDone {
		return
	}
	h.evals++
	h.traj.observe(cost)
	h.wave = append(h.wave, evaluation{point: point, cost: cost})
	h.outstanding--
	if len(h.wave) >= h.waveSize && h.outstanding <= 0 && len(h.pending) == 0 {
		h.endWave()
	}
}

// Abandon returns an assigned-but-unmeasured point to the accounting
// (task could not run); the wave completes without it.
func (h *hillClimb) Abandon() {
	if h.outstanding > 0 {
		h.outstanding--
		h.waveSize--
		if len(h.wave) >= h.waveSize && h.outstanding <= 0 && len(h.pending) == 0 && h.waveSize > 0 {
			h.endWave()
		}
	}
}

func (h *hillClimb) endWave() {
	h.waves++
	cand, candCost := h.waveBest()
	switch h.phase {
	case phaseGlobal:
		if !h.haveBest || candCost < h.bestCost {
			h.best, h.bestCost, h.haveBest = cand, candCost, true
			h.nbSize = h.sp.InitialNeighbors
			h.phase = phaseLocal
			h.startWave(h.sp.N, lhs.Neighborhood(h.space, h.best, h.nbSize))
			return
		}
		h.globals++
		if h.globals >= h.sp.GlobalBudget {
			h.phase = phaseDone
			return
		}
		h.startWave(h.sp.M, h.space)
	case phaseLocal:
		if candCost < h.bestCost {
			// A better point: recenter and keep exploring (adjust_neighbor).
			h.best, h.bestCost = cand, candCost
		} else {
			h.nbSize *= h.sp.ShrinkFactor
		}
		if h.nbSize < h.sp.Nt {
			// Local optimum found; resume the global phase.
			h.globals++
			if h.globals >= h.sp.GlobalBudget {
				h.phase = phaseDone
				return
			}
			h.phase = phaseGlobal
			h.startWave(h.sp.M, h.space)
			return
		}
		h.startWave(h.sp.N, lhs.Neighborhood(h.space, h.best, h.nbSize))
	}
}

func (h *hillClimb) waveBest() ([]float64, float64) {
	if len(h.wave) == 0 {
		return h.best, h.bestCost
	}
	best := h.wave[0]
	for _, e := range h.wave[1:] {
		if e.cost < best.cost {
			best = e
		}
	}
	return best.point, best.cost
}

// Best returns the best point found so far (nil before any wave
// completes) and its cost.
func (h *hillClimb) Best() ([]float64, float64, bool) {
	return h.best, h.bestCost, h.haveBest
}

// Waves counts completed waves.
func (h *hillClimb) Waves() int { return h.waves }

// State names the current Algorithm 1 phase.
func (h *hillClimb) State() string { return h.phase.String() }

// Trajectory returns the best-cost-so-far series.
func (h *hillClimb) Trajectory() []float64 { return h.traj.Trajectory() }

// Export snapshots the search outcome for the warm-start Store.
func (h *hillClimb) Export() ScopeState {
	s := ScopeState{
		Backend:  "hill",
		Names:    paramNames(h.params),
		BestCost: h.bestCost,
		HaveBest: h.haveBest,
		Evals:    h.evals,
		Waves:    h.waves,
	}
	if h.haveBest {
		s.Best = append([]float64(nil), h.best...)
	}
	return s
}

// Tighten narrows a dimension's bounds (gray-box rule §6.2). The
// current best point is clamped into the new bounds.
func (h *hillClimb) Tighten(name string, lo, hi float64) {
	for d := range h.space {
		if h.space[d].Name != name {
			continue
		}
		fullLo, fullHi := h.full[d].Min, h.full[d].Max
		lo = metrics.Clamp(lo, fullLo, fullHi)
		hi = metrics.Clamp(hi, fullLo, fullHi)
		if hi < lo {
			hi = lo
		}
		h.space[d].Min, h.space[d].Max = lo, hi
		if h.haveBest {
			h.best[d] = metrics.Clamp(h.best[d], lo, hi)
		}
		return
	}
	panic(fmt.Sprintf("tuner: Tighten of unknown dimension %q", name))
}

// Bias sets a sampling weight profile for one dimension (weighted
// LHS): nil restores uniform sampling.
func (h *hillClimb) Bias(name string, w lhs.Weights) {
	for d := range h.space {
		if h.space[d].Name == name {
			h.weights[d] = w
			return
		}
	}
	panic(fmt.Sprintf("tuner: Bias of unknown dimension %q", name))
}

// Bounds returns the current bounds of a dimension.
func (h *hillClimb) Bounds(name string) (lo, hi float64) {
	for _, d := range h.space {
		if d.Name == name {
			return d.Min, d.Max
		}
	}
	panic(fmt.Sprintf("tuner: Bounds of unknown dimension %q", name))
}

var (
	_ Optimizer = (*hillClimb)(nil)
	_ Shaper    = (*hillClimb)(nil)
)
