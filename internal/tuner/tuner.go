// Package tuner holds the pluggable optimizer backends behind
// MRONLINE's aggressive (expedited test run) strategy. The search that
// was historically hard-wired into core.Tuner — the paper's gray-box
// smart hill-climbing (Algorithm 1) — is one backend among several
// here; SPSA (simultaneous-perturbation stochastic approximation) and
// a TPE-style Bayesian optimizer tune the same mrconf parameter space
// through the same wave-oriented interface, which is what lets the
// tournament experiment ask whether the paper's convergence claim is a
// property of the algorithm or of online tuning itself.
//
// Every backend is deterministic given its Options.RNG: same seed,
// same proposal trace, bit for bit. Callers derive that RNG from a
// sim.Source sub-stream (core.Tuner uses "tuner/<backend>"), except
// the hill backend under core.Tuner, which keeps the pre-refactor
// shared stream so the committed figure pipeline stays byte-identical.
package tuner

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/lhs"
	"repro/internal/mrconf"
)

// SearchParams are Algorithm 1's knobs with the paper's defaults (§5):
// m sampled configurations per global wave, n per local wave, LHS
// granularity k, neighborhood-size threshold Nt, shrink factor f, and
// the global-iteration budget g. The SPSA and TPE backends reuse M/N
// as their wave sizes and derive their evaluation budgets from the
// same knobs, so a single SearchParams configures any backend with a
// comparable test-run footprint.
type SearchParams struct {
	M                int
	N                int
	K                int
	Nt               float64
	ShrinkFactor     float64
	GlobalBudget     int
	InitialNeighbors float64
	// PlainRandom replaces Latin hypercube sampling with independent
	// uniform draws — the ablation knob for the LHS design choice
	// (hill backend only).
	PlainRandom bool
}

// DefaultSearchParams returns the values used in the paper's tests.
func DefaultSearchParams() SearchParams {
	return SearchParams{M: 24, N: 16, K: 24, Nt: 0.1, ShrinkFactor: 0.75, GlobalBudget: 5, InitialNeighbors: 0.2}
}

// Optimizer is the propose-a-wave / observe-costs / best-so-far
// contract every search backend implements. Points live in the raw
// bounded parameter space defined by Options.Params (coordinate i in
// [Params[i].Min, Params[i].Max]); backends are free to work in a
// normalized [0,1]^d space internally, but what crosses this interface
// is always raw coordinates, because that is what the hill-climber
// historically handed out and the byte-identity contract pins it.
//
// The driver hands each proposed point to one task (Next), feeds the
// measured Eq. 1 cost back (Report, with the same slice it got from
// Next), and may drop a point whose task never ran (Abandon). Backends
// gate proposals in waves: Next returns nil while a wave is fully
// assigned but not yet measured, and the launch gate upstream holds
// further tasks until the wave completes.
type Optimizer interface {
	// Next pops the next proposal, or nil when the current wave is
	// fully assigned (or the search is done).
	Next() []float64
	// HasPending reports whether an unassigned proposal exists.
	HasPending() bool
	// Done reports whether the search has converged or exhausted its
	// budget.
	Done() bool
	// Report feeds back the measured cost of a point obtained from
	// Next. Completing a wave advances the backend by one step.
	Report(point []float64, cost float64)
	// Abandon returns one assigned-but-unmeasured point to the
	// accounting; the wave completes without it.
	Abandon()
	// Best returns the best point found so far and its cost; ok is
	// false before any evaluation completed.
	Best() ([]float64, float64, bool)
	// Waves counts completed waves, for diagnostics and warm-start
	// accounting.
	Waves() int
	// State describes the search phase for human-facing output
	// (e.g. "global", "local", "gradient", "model").
	State() string
	// Export snapshots the search outcome for the cross-job Store.
	Export() ScopeState
	// Trajectory returns the best-cost-so-far series, one entry per
	// completed evaluation — the convergence curve the tournament
	// experiment reads.
	Trajectory() []float64
}

// Shaper is the optional capability behind the §6.2 gray-box rules:
// observation-driven bound tightening and sampling bias. All built-in
// backends implement it (Bias is a no-op where the backend has no
// stratified sampler to bias).
type Shaper interface {
	// Tighten narrows a dimension's bounds; the current best point is
	// clamped into the new bounds.
	Tighten(name string, lo, hi float64)
	// Bias sets a sampling weight profile for one dimension; nil
	// restores uniform sampling.
	Bias(name string, w Weights)
	// Bounds returns the current bounds of a dimension.
	Bounds(name string) (lo, hi float64)
}

// Weights aliases lhs.Weights so Shaper users can spell the bias
// profile without importing internal/lhs directly.
type Weights = lhs.Weights

// ScopeState is the persistable outcome of one scope's search (map or
// reduce side): what the Store keeps per (app, input-scale) class and
// what a warm-started backend resumes from.
type ScopeState struct {
	// Backend that produced the state, informational.
	Backend string `json:"backend,omitempty"`
	// Names are the searched parameter names, in point-coordinate
	// order. Warm starts are refused when the names don't match the
	// new search's dimensions (e.g. gray-box state offered to a
	// black-box search).
	Names []string `json:"names"`
	// Best point and its Eq. 1 cost; meaningful when HaveBest.
	Best     []float64 `json:"best,omitempty"`
	BestCost float64   `json:"best_cost,omitempty"`
	HaveBest bool      `json:"have_best,omitempty"`
	// Evals and Waves measure the search effort spent producing the
	// state.
	Evals int `json:"evals"`
	Waves int `json:"waves"`
}

// Matches reports whether the stored state describes a search over
// exactly the given parameters (same names, same order).
func (s ScopeState) Matches(params []mrconf.Param) bool {
	if !s.HaveBest || len(s.Names) != len(params) || len(s.Best) != len(params) {
		return false
	}
	for i, p := range params {
		if s.Names[i] != p.Name {
			return false
		}
	}
	return true
}

// paramNames renders the dimension names of a search space.
func paramNames(params []mrconf.Param) []string {
	out := make([]string, len(params))
	for i, p := range params {
		out[i] = p.Name
	}
	return out
}

// Options configure a backend instance.
type Options struct {
	// Params define the searched dimensions and their bounds.
	Params []mrconf.Param
	// RNG drives every random draw the backend makes. Callers seed it
	// from a sim.Source sub-stream; sharing one RNG between two
	// backends couples their draw sequences (the hill backend under
	// core.Tuner does exactly that, by byte-identity contract).
	RNG *rand.Rand
	// Search supplies the Algorithm 1 knobs (zero M means defaults).
	Search SearchParams
	// Warm, when non-nil and matching Params, resumes the search from
	// a previous job's outcome instead of exploring from scratch: the
	// backend starts in its refinement phase around Warm.Best with a
	// reduced budget, so a warm-started job issues strictly fewer test
	// waves than a cold one.
	Warm *ScopeState
}

// warmFor validates o.Warm against o.Params, returning nil when the
// stored state cannot seed this search.
func (o Options) warmFor() *ScopeState {
	if o.Warm == nil || !o.Warm.Matches(o.Params) {
		return nil
	}
	return o.Warm
}

// Factory builds one backend instance.
type Factory func(Options) Optimizer

var backends = map[string]Factory{}

// Register installs a backend under a name. Called from init
// functions; duplicate names panic.
func Register(name string, f Factory) {
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("tuner: duplicate backend %q", name))
	}
	backends[name] = f
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds a named backend. Unknown names return an error listing
// what is registered, so CLI flags can fail fast and helpfully.
func New(name string, o Options) (Optimizer, error) {
	f, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("tuner: unknown backend %q (registered: %s)",
			name, strings.Join(Backends(), ", "))
	}
	if o.Search.M == 0 {
		o.Search = DefaultSearchParams()
	}
	if o.RNG == nil {
		return nil, fmt.Errorf("tuner: backend %q needs an RNG (seed it from a sim.Source stream)", name)
	}
	if len(o.Params) == 0 {
		return nil, fmt.Errorf("tuner: backend %q needs a non-empty parameter space", name)
	}
	return f(o), nil
}

// MustNew is New for callers that already validated the name.
func MustNew(name string, o Options) Optimizer {
	opt, err := New(name, o)
	if err != nil {
		panic(err)
	}
	return opt
}

// PointToOverrides renders a sampled point as quantized parameter
// overrides, ready for mrconf.Config.With.
func PointToOverrides(params []mrconf.Param, point []float64) map[string]float64 {
	kv := make(map[string]float64, len(params))
	for i, p := range params {
		kv[p.Name] = p.Quantize(point[i])
	}
	return kv
}

// evaluation pairs a sampled point with its measured cost.
type evaluation struct {
	point []float64
	cost  float64
}

// trajectory tracks the best-cost-so-far series across evaluations.
type trajectory struct {
	series []float64
}

func (t *trajectory) observe(cost float64) {
	best := cost
	if n := len(t.series); n > 0 && t.series[n-1] < best {
		best = t.series[n-1]
	}
	// The series is a per-run diagnostic bounded by the backend's
	// evaluation budget (a few hundred entries); it is read wholesale
	// by Trajectory and never trimmed, by design.
	t.series = append(t.series, best) //mrlint:ignore retained-append bounded by the search's evaluation budget; the convergence curve is the product
}

func (t *trajectory) Trajectory() []float64 { return t.series }
