package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// The tests in this file assert the *shape* of each reproduced figure:
// who wins, in which direction, and roughly by how much — the criteria
// the reproduction targets (absolute seconds differ from the authors'
// physical testbed).

func TestFig4TerasortShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	r := DefaultEnv().Fig4()[0]
	if imp := r.Improvement(); imp < 0.10 || imp > 0.45 {
		t.Fatalf("Terasort expedited improvement = %.0f%%, paper ~23%%", imp*100)
	}
	// MRONLINE quality ≈ offline-guide quality (§8.2).
	if math.Abs(r.MronlineDur-r.OfflineDur)/r.OfflineDur > 0.25 {
		t.Fatalf("MRONLINE (%.0fs) far from offline guide (%.0fs)", r.MronlineDur, r.OfflineDur)
	}
}

func TestFig7SpillShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	r := DefaultEnv().Fig4()[0]
	defRatio := r.DefaultSpills / r.OptimalSpills
	mroRatio := r.MronlineSpills / r.OptimalSpills
	if defRatio < 2 || defRatio > 3.6 {
		t.Fatalf("default spill ratio = %.2f, paper ~3x", defRatio)
	}
	if mroRatio > 1.5 {
		t.Fatalf("MRONLINE spill ratio = %.2f, paper ~1x (optimal)", mroRatio)
	}
	if r.OfflineSpills/r.OptimalSpills > 1.5 {
		t.Fatalf("offline guide spill ratio = %.2f, paper ~1x", r.OfflineSpills/r.OptimalSpills)
	}
}

func TestFig5WikipediaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	rows := DefaultEnv().Fig5()
	if len(rows) != 4 {
		t.Fatalf("Fig5 rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper: 11-25% improvements across the Wikipedia apps.
		if imp := r.Improvement(); imp < 0.05 || imp > 0.50 {
			t.Errorf("%s improvement = %.0f%%, outside plausible band", r.Bench, imp*100)
		}
		// Spills at or near optimal under MRONLINE.
		if r.MronlineSpills/r.OptimalSpills > 2.0 {
			t.Errorf("%s MRONLINE spills %.1fx optimal", r.Bench, r.MronlineSpills/r.OptimalSpills)
		}
		// bigram shuffles the most and has the largest absolute times.
		if r.Bench != "bigram/Wikipedia" && r.DefaultDur > rows[0].DefaultDur {
			t.Errorf("%s slower than bigram under default — wrong workload ordering", r.Bench)
		}
	}
}

func TestFig6FreebaseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	for _, r := range DefaultEnv().Fig6() {
		if imp := r.Improvement(); imp < 0.0 || imp > 0.55 {
			t.Errorf("%s improvement = %.0f%%, outside plausible band", r.Bench, imp*100)
		}
	}
}

func TestFig10to12SingleRunShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	e := DefaultEnv()
	var rows []SingleRunRow
	rows = append(rows, e.Fig10()...)
	rows = append(rows, e.Fig11()...)
	rows = append(rows, e.Fig12()...)
	if len(rows) != 9 {
		t.Fatalf("single-run rows = %d, want 9", len(rows))
	}
	improved := 0
	for _, r := range rows {
		imp := r.Improvement()
		// Paper band: 8% to 22%; allow moderate slack but never a
		// meaningful regression.
		if imp < -0.03 {
			t.Errorf("%s regressed by %.0f%% under conservative tuning", r.Bench, -imp*100)
		}
		if imp > 0.40 {
			t.Errorf("%s improved %.0f%%, implausibly high for conservative tuning", r.Bench, imp*100)
		}
		if imp >= 0.05 {
			improved++
		}
	}
	if improved < 6 {
		t.Fatalf("only %d/9 apps improved >= 5%%; paper improves all", improved)
	}
}

func TestFig13JobSizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	rows := DefaultEnv().Fig13()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Small jobs: marginal; big jobs: ~20-35%; improvement does not
	// keep growing once the search has enough tasks (paper §8.4).
	small := rows[0] // 2 GB
	if imp := small.Improvement(); math.Abs(imp) > 0.10 {
		t.Errorf("2GB improvement = %.0f%%, want marginal", imp*100)
	}
	for _, r := range rows[3:] { // 20, 60, 100 GB
		if imp := r.Improvement(); imp < 0.15 || imp > 0.40 {
			t.Errorf("%dGB improvement = %.0f%%, paper ~20-23%%", r.SizeGB, imp*100)
		}
	}
	// Default durations must grow with size.
	for i := 1; i < len(rows); i++ {
		if rows[i].DefaultDur <= rows[i-1].DefaultDur {
			t.Errorf("default duration not monotone at %dGB", rows[i].SizeGB)
		}
	}
}

func TestFig14to16MultiTenantShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	mt := DefaultEnv().MultiTenant()
	tsImp := (mt.Default.Terasort.Duration - mt.Mronline.Terasort.Duration) / mt.Default.Terasort.Duration
	bbpImp := (mt.Default.BBP.Duration - mt.Mronline.BBP.Duration) / mt.Default.BBP.Duration
	if tsImp < 0.05 {
		t.Errorf("multi-tenant Terasort improvement = %.0f%%, paper 13%%", tsImp*100)
	}
	if bbpImp < 0.10 {
		t.Errorf("multi-tenant BBP improvement = %.0f%%, paper 28%%", bbpImp*100)
	}
	// Fig 15: memory utilization rises above ~80% for terasort tasks
	// and BBP maps.
	if mt.Mronline.Terasort.MapMemUtil < 0.8 {
		t.Errorf("tuned terasort map mem util = %.2f, paper > 80%%", mt.Mronline.Terasort.MapMemUtil)
	}
	if mt.Mronline.BBP.MapMemUtil < 0.8 {
		t.Errorf("tuned BBP map mem util = %.2f, paper > 80%%", mt.Mronline.BBP.MapMemUtil)
	}
	if mt.Default.Terasort.MapMemUtil > 0.5 {
		t.Errorf("default terasort map mem util = %.2f, paper < 50%%", mt.Default.Terasort.MapMemUtil)
	}
	// Fig 16: BBP maps are CPU-saturated under the default allocation.
	if mt.Default.BBP.MapCPUUtil < 0.9 {
		t.Errorf("default BBP map CPU util = %.2f, paper ~99%%", mt.Default.BBP.MapCPUUtil)
	}
	// Terasort spilled records: paper 1.8e9 -> 0.6e9.
	defSp := mt.Default.Terasort.Counters.SpilledRecords()
	mroSp := mt.Mronline.Terasort.Counters.SpilledRecords()
	if defSp < 1.4e9 || defSp > 2.4e9 {
		t.Errorf("default terasort spills = %.2e, paper 1.8e9", defSp)
	}
	if mroSp > 0.9e9 {
		t.Errorf("MRONLINE terasort spills = %.2e, paper 0.6e9", mroSp)
	}
}

func TestTestRunCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	// A smaller job keeps the GA's dozens of test runs cheap.
	rows := DefaultEnv().TestRunCounts(workload.Terasort(20, 0, 0), 4)
	if rows[0].Runs != 1 {
		t.Fatalf("MRONLINE runs = %d, want 1", rows[0].Runs)
	}
	if rows[1].Runs < 8 {
		t.Fatalf("GA runs = %d; paper reports 20-40 for Gunther", rows[1].Runs)
	}
}

func TestTable3Regenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	for _, r := range DefaultEnv().Table3() {
		if r.ShuffleMB == 0 {
			continue
		}
		if math.Abs(r.MeasShuffleMB-r.ShuffleMB) > math.Max(1, 0.10*r.ShuffleMB) {
			t.Errorf("%s measured shuffle %v vs table %v", r.Bench, r.MeasShuffleMB, r.ShuffleMB)
		}
		if r.OutputMB > 0 && math.Abs(r.MeasOutputMB-r.OutputMB) > math.Max(1, 0.10*r.OutputMB) {
			t.Errorf("%s measured output %v vs table %v", r.Bench, r.MeasOutputMB, r.OutputMB)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	e := DefaultEnv()
	a := e.RunOne(workload.Terasort(10, 0, 0), mrconf.Default(), nil)
	b := e.RunOne(workload.Terasort(10, 0, 0), mrconf.Default(), nil)
	if a.Duration != b.Duration {
		t.Fatalf("same env, different durations: %v vs %v", a.Duration, b.Duration)
	}
}

func TestHotSpotAvoidanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	r := DefaultEnv().HotSpotStudy(4)
	// Interference must hurt blind placement badly...
	if r.DefaultDur < r.CleanDur*1.5 {
		t.Fatalf("interference too weak: clean %.0fs vs hot %.0fs", r.CleanDur, r.DefaultDur)
	}
	// ...and utilization-aware placement must claw back a meaningful
	// part of the loss (paper §1: avoid performance-degrading hot spots).
	if imp := r.Improvement(); imp < 0.08 {
		t.Fatalf("hot-spot avoidance improvement = %.0f%%, want >= 8%%", imp*100)
	}
	// Avoidance cannot beat an uninterfered cluster.
	if r.AvoidDur < r.CleanDur {
		t.Fatalf("avoidance (%.0fs) faster than clean cluster (%.0fs)?", r.AvoidDur, r.CleanDur)
	}
}

func TestStragglerMitigationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	r := DefaultEnv().StragglerStudy(3)
	if r.SpecLaunches == 0 || r.SpecWins == 0 {
		t.Fatalf("speculation idle under stragglers: %d launches, %d wins", r.SpecLaunches, r.SpecWins)
	}
	// Speculation helps, but only partially: the winning copies still
	// write HDFS replicas through the hot disks. Combining it with
	// load-aware placement must be the best of the four.
	if r.SpeculationDur >= r.NoneDur {
		t.Fatalf("speculation (%.0fs) did not beat nothing (%.0fs)", r.SpeculationDur, r.NoneDur)
	}
	if r.BothDur >= r.SpeculationDur || r.BothDur >= r.AvoidanceDur || r.BothDur >= r.NoneDur {
		t.Fatalf("both mitigations (%.0fs) should win: none=%.0f spec=%.0f avoid=%.0f",
			r.BothDur, r.NoneDur, r.SpeculationDur, r.AvoidanceDur)
	}
}

func TestAmortizationCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	rows := DefaultEnv().Amortization(workload.Terasort(60, 0, 0), 8)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Run 1: the aggressive test run costs more than a default run.
	if rows[0].CumulativeMronline <= rows[0].CumulativeDefault {
		t.Fatalf("test run (%.0fs) should cost more than one default run (%.0fs)",
			rows[0].CumulativeMronline, rows[0].CumulativeDefault)
	}
	// By the last run the tuned configuration has paid for itself.
	last := rows[len(rows)-1]
	if last.CumulativeMronline >= last.CumulativeDefault {
		t.Fatalf("after %d runs MRONLINE (%.0fs) never beat default (%.0fs)",
			last.Runs, last.CumulativeMronline, last.CumulativeDefault)
	}
	// Conservative always beats default cumulatively (it never costs a
	// test run).
	if last.CumulativeConserv >= last.CumulativeDefault {
		t.Fatal("conservative tuning should always beat default cumulatively")
	}
}

func TestJobStreamImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	row := DefaultEnv().JobStream(9, 30)
	if row.Jobs != 9 {
		t.Fatalf("jobs = %d", row.Jobs)
	}
	if imp := row.Improvement(); imp < 0.03 || imp > 0.45 {
		t.Fatalf("job-stream mean completion improvement = %.0f%%, want meaningful and plausible", imp*100)
	}
	if row.MakespanMron > row.MakespanDefault*1.02 {
		t.Fatalf("makespan regressed: %.0fs vs %.0fs", row.MakespanMron, row.MakespanDefault)
	}
}

func TestSeedSweepRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	st := DefaultEnv().SeedSweep(workload.Terasort(60, 0, 0), 5)
	if st.Seeds != 5 {
		t.Fatalf("seeds = %d", st.Seeds)
	}
	// The expedited gain must be robust across seeds: always positive,
	// mean in the paper's neighborhood.
	if st.MinImp < 0.05 {
		t.Fatalf("worst-seed improvement = %.0f%%, tuning not robust", st.MinImp*100)
	}
	if st.MeanImp < 0.15 || st.MeanImp > 0.40 {
		t.Fatalf("mean improvement = %.0f%%, outside plausible band", st.MeanImp*100)
	}
	if st.StdDev > 0.12 {
		t.Fatalf("improvement stddev = %.2f, too unstable", st.StdDev)
	}
}

func TestTuningOnHeterogeneousCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	// The tuner must keep working on mixed hardware (the paper notes
	// the optimal configuration depends on the cluster): conservative
	// tuning still improves Terasort on the 12-big/6-small cluster.
	e := DefaultEnv()
	b := workload.Terasort(60, 0, 0)
	run := func(ctrl mapreduce.Controller) mapreduce.Result {
		eng := sim.NewEngine()
		c := cluster.New(eng, cluster.HeterogeneousPaperConfig())
		rm := yarn.NewResourceManager(eng, c, yarn.FIFOScheduler{})
		fs := hdfs.New(c, sim.NewSource(e.Seed).Stream("hdfs"))
		var res mapreduce.Result
		mapreduce.Submit(rm, fs, mapreduce.Spec{Benchmark: b, BaseConfig: mrconf.Default(), Controller: ctrl},
			func(r mapreduce.Result) { res = r })
		eng.Run()
		return res
	}
	def := run(nil)
	if def.Failed {
		t.Fatal(def.Err)
	}
	cons := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		core.TunerOptions{Strategy: core.Conservative, Seed: e.Seed})
	tuned := run(cons)
	if tuned.Failed {
		t.Fatal(tuned.Err)
	}
	imp := (def.Duration - tuned.Duration) / def.Duration
	if imp < 0.05 {
		t.Fatalf("heterogeneous-cluster improvement = %.0f%%, tuner not robust to mixed hardware", imp*100)
	}
}

func TestBuildReportRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	var buf bytes.Buffer
	doc := DefaultEnv().BuildReport()
	if err := doc.RenderHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 13") || !strings.Contains(out, "<svg") {
		t.Fatal("report missing expected content")
	}
	if strings.Count(out, "<svg") < 12 {
		t.Fatalf("only %d charts rendered", strings.Count(out, "<svg"))
	}
}

func TestSeedSweepConservativeRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	st := DefaultEnv().SeedSweepConservative(workload.Terasort(60, 0, 0), 5)
	if st.MinImp < 0.03 {
		t.Fatalf("worst-seed conservative improvement = %.0f%%", st.MinImp*100)
	}
	if st.MeanImp < 0.10 || st.MeanImp > 0.35 {
		t.Fatalf("mean conservative improvement = %.0f%%, outside band", st.MeanImp*100)
	}
}
