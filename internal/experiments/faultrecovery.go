package experiments

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// FaultRecoveryRow is one leg of the tuning-under-churn experiment.
type FaultRecoveryRow struct {
	Leg      string
	Duration float64
	Failed   bool

	// Cluster-side recovery counters for the run.
	Faults metrics.FaultCounters
	// Job-side recovery counters.
	NodeLossKills  int
	MapsReExecuted int
	TaskFailures   int
}

// DefaultCrashSpec is the canonical mid-job crash: node 3 dies 40
// seconds in (first map wave running, some outputs already produced)
// and restarts two minutes later.
func DefaultCrashSpec() *faults.Spec {
	return &faults.Spec{
		NodeCrashes: []faults.NodeCrash{{At: 40, Node: 3, RestartAfter: 120}},
	}
}

// FaultRecovery measures the full failure-recovery path end to end:
// Terasort 20 GB on the paper testbed, clean versus with a mid-job
// node crash, under the static default configuration and under
// MRONLINE's conservative tuner. The job must complete in every leg —
// killed attempts requeue, lost map outputs re-execute, and the tuner
// keeps working because failed-attempt samples are discarded. Uses
// e.FaultSpec when set, DefaultCrashSpec otherwise.
func (e Env) FaultRecovery() []FaultRecoveryRow {
	b := workload.Terasort(20, 0, 0)
	fspec := e.FaultSpec
	if fspec == nil || fspec.Empty() {
		fspec = DefaultCrashSpec()
	}
	run := func(leg string, inject bool, ctrl mapreduce.Controller, rec *trace.Recorder) FaultRecoveryRow {
		r := e.NewRig(yarn.FIFOScheduler{})
		js := mapreduce.Spec{Benchmark: b, BaseConfig: mrconf.Default(), Controller: ctrl, Trace: rec}
		if inject {
			inj, err := faults.New(r.C, sim.NewSource(e.Seed), *fspec, rec)
			if err != nil {
				panic(err)
			}
			js.Faults = inj
		}
		var res mapreduce.Result
		done := false
		mapreduce.Submit(r.RM, r.FS, js, func(rr mapreduce.Result) { res = rr; done = true })
		r.Eng.Run()
		if !done {
			panic("experiments: fault-recovery run did not complete")
		}
		return FaultRecoveryRow{
			Leg: leg, Duration: res.Duration, Failed: res.Failed,
			Faults:         *r.C.Faults,
			NodeLossKills:  res.Counters.NodeLossKills,
			MapsReExecuted: res.Counters.MapsReExecuted,
			TaskFailures:   res.Counters.TaskFailures,
		}
	}
	rows := []FaultRecoveryRow{
		run("clean/default", false, nil, nil),
		run("faults/default", true, nil, nil),
	}
	cons := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		core.TunerOptions{Strategy: core.Conservative, Seed: e.Seed})
	rows = append(rows, run("faults/mronline", true, cons, nil))
	return rows
}
