package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// smallStreamSpec is the test-scale serving run: a couple of simulated
// hours of small-job arrivals on a 192-node cluster — big enough to
// exercise fair-share contention and every job class, small enough for
// the race detector.
func smallStreamSpec(seed uint64) StreamSpec {
	return StreamSpec{
		Seed:             seed,
		Racks:            24,
		NodesPerRack:     8,
		MeanPerHour:      120,
		DiurnalAmplitude: 0.5,
		HorizonSecs:      1800,
		MaxJobs:          40,
	}
}

// TestStreamSameSeedByteIdentical pins the determinism contract of the
// serving path: two runs of the same spec produce byte-identical
// aggregate reports (totals, makespan, and the per-class latency
// table).
func TestStreamSameSeedByteIdentical(t *testing.T) {
	a := RunStream(smallStreamSpec(11))
	b := RunStream(smallStreamSpec(11))
	if a.Report() != b.Report() {
		t.Fatalf("same-seed reports differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Report(), b.Report())
	}
	if a.Events != b.Events {
		t.Fatalf("same-seed event counts differ: %d vs %d", a.Events, b.Events)
	}
	c := RunStream(smallStreamSpec(12))
	if a.Report() == c.Report() {
		t.Fatal("different seeds produced identical reports; arrivals are not seeded")
	}
}

// TestStreamLegacyLegIdentical asserts the A/B contract of the
// benchmark: the Legacy leg (no pooling, no precompiled snapshots, no
// input release, grow-forever recorder) reproduces the optimized leg's
// trace event-for-event — the optimizations change cost, not behavior.
// The legs differ only in retained memory: the legacy recorder holds
// every event, the optimized path holds none.
func TestStreamLegacyLegIdentical(t *testing.T) {
	var optRec, legRec trace.Recorder

	opt := smallStreamSpec(11)
	opt.Sink = &optRec
	a := RunStream(opt)

	leg := smallStreamSpec(11)
	leg.Legacy = true
	leg.Sink = &legRec
	b := RunStream(leg)

	if a.Report() != b.Report() {
		t.Fatalf("legacy leg report differs:\n--- optimized ---\n%s--- legacy ---\n%s", a.Report(), b.Report())
	}
	if !reflect.DeepEqual(optRec.Events(), legRec.Events()) {
		t.Fatalf("legacy leg trace differs: %d vs %d events", optRec.Len(), legRec.Len())
	}
	if a.RetainedEvents != 0 {
		t.Fatalf("optimized leg retained %d events; want 0", a.RetainedEvents)
	}
	if b.RetainedEvents != b.SinkEvents || b.RetainedEvents == 0 {
		t.Fatalf("legacy leg retained %d of %d events; want all", b.RetainedEvents, b.SinkEvents)
	}
}

// TestStreamSoloTraceMatchesInStream runs the same first arrival twice
// — once as the only job of the stream, once followed by two more —
// and asserts its per-event trace is byte-identical. Placement
// contention is excluded by construction: the arrival rate is fixed
// low enough that job 0 finishes before job 1 arrives, so the cluster,
// HDFS placement state, and RNG streams it sees are the same in both
// runs. This is the "a job in the fleet behaves like the job alone"
// guarantee the pooled/recycled serving path must preserve.
func TestStreamSoloTraceMatchesInStream(t *testing.T) {
	run := func(maxJobs int) []trace.Event {
		var rec trace.Recorder
		spec := smallStreamSpec(11)
		spec.MeanPerHour = 6 // mean gap 600s >> job duration
		spec.HorizonSecs = 3600
		spec.MaxJobs = maxJobs
		spec.Sink = &rec
		res := RunStream(spec)
		if res.Jobs != maxJobs {
			t.Fatalf("stream submitted %d jobs, want %d", res.Jobs, maxJobs)
		}
		var first string
		var out []trace.Event
		for _, e := range rec.Events() {
			if e.Kind == trace.JobSubmit && first == "" {
				first = e.Job
			}
			if e.Job == first {
				out = append(out, e)
			}
		}
		return out
	}

	solo := run(1)
	inStream := run(3)
	if !reflect.DeepEqual(solo, inStream) {
		t.Fatalf("first job's trace differs alone (%d events) vs in-stream (%d events)",
			len(solo), len(inStream))
	}
}

// TestStreamSmokeThreeSeeds is the CI serving smoke (run with -race
// there): a short simulated stream across three seeds, asserting every
// job completes and that the sink's retained state stays flat — the
// stats sink ingests every event yet holds only per-class aggregates,
// and nothing else in the run retains the trace.
func TestStreamSmokeThreeSeeds(t *testing.T) {
	for _, seed := range []uint64{3, 5, 7} {
		res := RunStream(smallStreamSpec(seed))
		if res.Completed != res.Jobs || res.Jobs == 0 {
			t.Fatalf("seed %d: %d of %d jobs completed", seed, res.Completed, res.Jobs)
		}
		if res.SinkEvents != res.Stats.EventCount() || res.SinkEvents < res.Jobs*4 {
			t.Fatalf("seed %d: sink saw %d events for %d jobs", seed, res.SinkEvents, res.Jobs)
		}
		// Flat memory: retained state is bounded by the class mix, not
		// the stream length.
		if n := len(res.Stats.Classes()); n > len(DefaultStreamClasses())+1 {
			t.Fatalf("seed %d: stats sink retains %d classes", seed, n)
		}
		if res.Stats.InFlight() != 0 {
			t.Fatalf("seed %d: %d jobs still in flight after drain", seed, res.Stats.InFlight())
		}
		if res.RetainedEvents != 0 {
			t.Fatalf("seed %d: optimized path retained %d events", seed, res.RetainedEvents)
		}
	}
}

// TestStreamTunedRuns exercises the fleet-wide per-job MRONLINE leg:
// tuners attach to every submission, recycle across jobs, and the run
// still drains deterministically.
func TestStreamTunedRuns(t *testing.T) {
	spec := smallStreamSpec(11)
	spec.Tuned = true
	a := RunStream(spec)
	b := RunStream(spec)
	if a.Completed != a.Jobs || a.Jobs == 0 {
		t.Fatalf("tuned stream: %d of %d jobs completed", a.Completed, a.Jobs)
	}
	if a.Report() != b.Report() {
		t.Fatalf("tuned stream is not deterministic:\n%s\nvs\n%s", a.Report(), b.Report())
	}
}

// TestStreamReportShape sanity-checks the report format the
// determinism tests pin, so a formatting change fails loudly here
// rather than silently re-baselining.
func TestStreamReportShape(t *testing.T) {
	res := RunStream(smallStreamSpec(11))
	rep := res.Report()
	if !strings.HasPrefix(rep, "jobs=") || !strings.Contains(rep, "p99~(s)") {
		t.Fatalf("unexpected report shape:\n%s", rep)
	}
}
