// Package experiments reproduces every table and figure of the
// MRONLINE evaluation (§8). Each runner builds fresh simulated
// 19-node clusters, executes the required job runs, and returns the
// rows the paper reports; cmd/mrexperiments prints them and
// bench_test.go exposes one benchmark per artifact.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tuner"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// parallelFor runs fn(0..n-1) on up to GOMAXPROCS goroutines and
// waits. Simulations are single-threaded but independent (each builds
// its own engine and cluster), so experiment sweeps parallelize
// perfectly; results must be written to index-distinct slots.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Env fixes the reproducibility seed for a set of runs.
type Env struct {
	Seed uint64
	// Reps is how many independently-seeded repetitions the
	// search-based (MRONLINE) leg of each experiment averages over,
	// mirroring the paper's "we repeat each experiment four times and
	// report the average" (§8.1). Zero means 3.
	Reps int
	// FaultSpec, when non-nil and non-empty, is armed against the
	// cluster of every single-job run (RunSpec and the experiments
	// built on it), injecting the described faults deterministically
	// from the run's seed. Nil (the default) changes nothing.
	FaultSpec *faults.Spec
	// Backend names the optimizer backend aggressive test runs drive:
	// "" or "hill" is the paper's Algorithm 1 (byte-identical to the
	// committed figures); "spsa" and "tpe" are the alternatives the
	// tournament compares. See tuner.Backends().
	Backend string
	// WarmStore, when non-nil, closes the cross-job learning loop:
	// AggressiveTestRun warm-starts each job from its class's stored
	// search state and feeds the outcome back afterwards.
	WarmStore *tuner.Store
	// Parallel, when positive, runs the continuous-serving legs on the
	// rack-cell architecture with that many window workers (see
	// StreamSpec.Parallel). Zero keeps the serial reference path the
	// committed figures pin.
	Parallel int
	// Lookahead is the parallel-window width for Parallel runs
	// (0 = DefaultStreamLookahead).
	Lookahead float64
}

// DefaultEnv matches the committed EXPERIMENTS.md numbers.
func DefaultEnv() Env { return Env{Seed: 42} }

func (e Env) reps() int {
	if e.Reps <= 0 {
		return 3
	}
	return e.Reps
}

// Rig is one fresh simulated cluster.
type Rig struct {
	Eng *sim.Engine
	C   *cluster.Cluster
	RM  *yarn.ResourceManager
	FS  *hdfs.FileSystem
}

// NewRig builds the paper's 19-node testbed with the given scheduler.
func (e Env) NewRig(sched yarn.Scheduler) *Rig {
	eng := sim.NewEngine()
	eng.MaxEvents = 200_000_000
	c := cluster.New(eng, cluster.PaperConfig())
	rm := yarn.NewResourceManager(eng, c, sched)
	fs := hdfs.New(c, sim.NewSource(e.Seed).Stream("hdfs"))
	return &Rig{Eng: eng, C: c, RM: rm, FS: fs}
}

// RunOne executes a single job on a fresh FIFO cluster.
func (e Env) RunOne(b workload.Benchmark, cfg mrconf.Config, ctrl mapreduce.Controller) mapreduce.Result {
	return e.RunTraced(b, cfg, ctrl, nil)
}

// RunTraced is RunOne with an optional timeline recorder attached.
func (e Env) RunTraced(b workload.Benchmark, cfg mrconf.Config, ctrl mapreduce.Controller, rec *trace.Recorder) mapreduce.Result {
	return e.RunSpec(mapreduce.Spec{Benchmark: b, BaseConfig: cfg, Controller: ctrl, Trace: rec})
}

// RunSpec executes one fully-specified job submission on a fresh FIFO
// cluster (the most general single-job entry point).
func (e Env) RunSpec(spec mapreduce.Spec) mapreduce.Result {
	r := e.NewRig(yarn.FIFOScheduler{})
	e.ArmFaults(r, &spec)
	var res mapreduce.Result
	done := false
	mapreduce.Submit(r.RM, r.FS, spec, func(rr mapreduce.Result) { res = rr; done = true })
	r.Eng.Run()
	if !done {
		panic(fmt.Sprintf("experiments: job %s never completed", spec.Benchmark.Name))
	}
	return res
}

// ArmFaults schedules e.FaultSpec (if any) against the rig's cluster
// and installs the probabilistic hooks on the job spec. Node-state
// trace events land in spec.Trace alongside the job's own events.
func (e Env) ArmFaults(r *Rig, spec *mapreduce.Spec) {
	if e.FaultSpec == nil || e.FaultSpec.Empty() {
		return
	}
	inj, err := faults.New(r.C, sim.NewSource(e.Seed), *e.FaultSpec, spec.Trace)
	if err != nil {
		panic(err)
	}
	spec.Faults = inj
}

// AggressiveTestRun runs one expedited test run with the aggressive
// tuner and returns the tuner (for BestConfig) and the run result.
// With a WarmStore it first consults the job's class entry for a warm
// start and afterwards feeds the search outcome back into the store.
func (e Env) AggressiveTestRun(b workload.Benchmark) (*core.Tuner, mapreduce.Result) {
	opts := core.TunerOptions{Strategy: core.Aggressive, Seed: e.Seed, Backend: e.Backend}
	var key string
	if e.WarmStore != nil {
		key = tuner.Key(b.Name, b.InputSizeMB)
		if ent, ok := e.WarmStore.Get(key); ok && ent.Usable() {
			w := ent
			opts.Warm = &w
		}
	}
	tn := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(), opts)
	res := e.RunOne(b, mrconf.Default(), tn)
	if e.WarmStore != nil {
		e.WarmStore.Update(key, tn.ExportWarm())
	}
	return tn, res
}

// ExpeditedRow is one bar group of Figs 4–6 plus the spill counts of
// Figs 7–9.
type ExpeditedRow struct {
	Bench string

	DefaultDur  float64
	OfflineDur  float64
	MronlineDur float64
	TestRunDur  float64

	OptimalSpills  float64 // combiner output records
	DefaultSpills  float64
	OfflineSpills  float64
	MronlineSpills float64

	BestConfig mrconf.Config
}

// Improvement returns MRONLINE's relative gain over the default.
func (r ExpeditedRow) Improvement() float64 {
	if r.DefaultDur == 0 {
		return 0
	}
	return (r.DefaultDur - r.MronlineDur) / r.DefaultDur
}

// Expedited reproduces one bar group of the expedited-test-runs
// experiment (§8.2): default vs offline-guide vs MRONLINE-tuned
// configuration, plus the spill-record study.
func (e Env) Expedited(b workload.Benchmark) ExpeditedRow {
	def := e.RunOne(b, mrconf.Default(), nil)

	// Offline guide: heuristics applied to profiling-run statistics
	// (the profiling run is the default run we already have; the guide
	// process repeats trial runs, which the §7 comparison counts).
	guideCfg := baseline.OfflineGuide(baseline.ProfileFromResult(def))
	off := e.RunOne(b, guideCfg, nil)

	// The search is stochastic; average the MRONLINE leg over
	// independently seeded repetitions as the paper does (§8.1).
	reps := e.reps()
	type repOut struct {
		cfg               mrconf.Config
		dur, test, spills float64
	}
	outs := make([]repOut, reps)
	parallelFor(reps, func(r int) {
		sub := Env{Seed: e.Seed + uint64(r)*101, Reps: 1, Backend: e.Backend}
		tuner, test := sub.AggressiveTestRun(b)
		cfg := tuner.BestConfig()
		run := sub.RunOne(b, cfg, nil)
		outs[r] = repOut{cfg: cfg, dur: run.Duration, test: test.Duration, spills: run.Counters.SpilledRecords()}
	})
	var mroDur, testDur, mroSpills float64
	var best mrconf.Config
	var bestDur float64
	for r, o := range outs {
		mroDur += o.dur
		testDur += o.test
		mroSpills += o.spills
		if r == 0 || o.dur < bestDur {
			best, bestDur = o.cfg, o.dur
		}
	}
	n := float64(reps)

	return ExpeditedRow{
		Bench:          b.Name,
		DefaultDur:     def.Duration,
		OfflineDur:     off.Duration,
		MronlineDur:    mroDur / n,
		TestRunDur:     testDur / n,
		OptimalSpills:  def.Counters.CombineOutputRecs,
		DefaultSpills:  def.Counters.SpilledRecords(),
		OfflineSpills:  off.Counters.SpilledRecords(),
		MronlineSpills: mroSpills / n,
		BestConfig:     best,
	}
}

// Fig4 is the Terasort expedited experiment.
func (e Env) Fig4() []ExpeditedRow {
	return []ExpeditedRow{e.Expedited(workload.Terasort(100, 752, 200))}
}

// Fig5 covers the four Wikipedia applications (expedited).
func (e Env) Fig5() []ExpeditedRow { return e.expeditedSet("Wikipedia") }

// Fig6 covers the four Freebase applications (expedited).
func (e Env) Fig6() []ExpeditedRow { return e.expeditedSet("Freebase") }

func (e Env) expeditedSet(dataset string) []ExpeditedRow {
	apps := []string{"bigram", "invertedindex", "wordcount", "textsearch"}
	rows := make([]ExpeditedRow, len(apps))
	parallelFor(len(apps), func(i int) {
		b, err := workload.ByName(apps[i] + "/" + dataset)
		if err != nil {
			panic(err)
		}
		rows[i] = e.Expedited(b)
	})
	return rows
}

// SingleRunRow is one bar pair of Figs 10–12.
type SingleRunRow struct {
	Bench       string
	DefaultDur  float64
	MronlineDur float64
}

// Improvement returns MRONLINE's relative gain over the default.
func (r SingleRunRow) Improvement() float64 {
	if r.DefaultDur == 0 {
		return 0
	}
	return (r.DefaultDur - r.MronlineDur) / r.DefaultDur
}

// SingleRun reproduces the fast-single-run experiment (§8.3):
// conservative tuning co-executing with the job.
func (e Env) SingleRun(b workload.Benchmark) SingleRunRow {
	def := e.RunOne(b, mrconf.Default(), nil)
	cons := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		core.TunerOptions{Strategy: core.Conservative, Seed: e.Seed})
	mro := e.RunOne(b, mrconf.Default(), cons)
	return SingleRunRow{Bench: b.Name, DefaultDur: def.Duration, MronlineDur: mro.Duration}
}

// Fig10 is the Terasort fast single run.
func (e Env) Fig10() []SingleRunRow {
	return []SingleRunRow{e.SingleRun(workload.Terasort(100, 752, 200))}
}

// Fig11 covers the Wikipedia applications (fast single run).
func (e Env) Fig11() []SingleRunRow { return e.singleRunSet("Wikipedia") }

// Fig12 covers the Freebase applications (fast single run).
func (e Env) Fig12() []SingleRunRow { return e.singleRunSet("Freebase") }

func (e Env) singleRunSet(dataset string) []SingleRunRow {
	apps := []string{"bigram", "invertedindex", "wordcount", "textsearch"}
	rows := make([]SingleRunRow, len(apps))
	parallelFor(len(apps), func(i int) {
		b, err := workload.ByName(apps[i] + "/" + dataset)
		if err != nil {
			panic(err)
		}
		rows[i] = e.SingleRun(b)
	})
	return rows
}

// JobSizeRow is one x position of Fig 13.
type JobSizeRow struct {
	SizeGB      int
	Maps        int
	Reduces     int
	DefaultDur  float64
	MronlineDur float64
}

// Improvement returns the relative gain.
func (r JobSizeRow) Improvement() float64 {
	if r.DefaultDur == 0 {
		return 0
	}
	return (r.DefaultDur - r.MronlineDur) / r.DefaultDur
}

// Fig13 reproduces the job-size study (§8.4): Terasort from 2 to
// 100 GB with reducers ≈ maps/4, aggressive tuning in a single test
// run, then re-run with the generated configuration.
func (e Env) Fig13() []JobSizeRow {
	sizes := []int{2, 6, 10, 20, 60, 100}
	rows := make([]JobSizeRow, len(sizes))
	parallelFor(len(sizes), func(i int) {
		gb := sizes[i]
		b := workload.Terasort(gb, 0, 0)
		def := e.RunOne(b, mrconf.Default(), nil)
		tuner, _ := e.AggressiveTestRun(b)
		mro := e.RunOne(b, tuner.BestConfig(), nil)
		rows[i] = JobSizeRow{
			SizeGB: gb, Maps: b.NumMaps, Reduces: b.NumReduces,
			DefaultDur: def.Duration, MronlineDur: mro.Duration,
		}
	})
	return rows
}

// MultiTenantResult carries Figs 14, 15 and 16: per-application job
// execution times and map/reduce CPU and memory utilization under the
// default configuration and under MRONLINE, with Terasort 60 GB and
// BBP sharing the cluster under fair scheduling.
type MultiTenantResult struct {
	Default  MultiTenantRun
	Mronline MultiTenantRun
}

// MultiTenantRun is one co-execution of the two applications.
type MultiTenantRun struct {
	Terasort mapreduce.Result
	BBP      mapreduce.Result
}

// MultiTenant reproduces §8.5. The MRONLINE side first performs
// aggressive test runs (co-located, fair share) to generate per-app
// configurations, then co-runs both applications under them.
func (e Env) MultiTenant() MultiTenantResult {
	ts := workload.Terasort(60, 448, 200)
	bbp := workload.BBP(500000, 100)

	runPair := func(tsCfg, bbpCfg mrconf.Config, tsCtrl, bbpCtrl mapreduce.Controller) MultiTenantRun {
		r := e.NewRig(yarn.FairScheduler{})
		var out MultiTenantRun
		done := 0
		mapreduce.Submit(r.RM, r.FS, mapreduce.Spec{Name: "terasort60", Benchmark: ts, BaseConfig: tsCfg, Controller: tsCtrl},
			func(rr mapreduce.Result) { out.Terasort = rr; done++ })
		mapreduce.Submit(r.RM, r.FS, mapreduce.Spec{Name: "bbp", Benchmark: bbp, BaseConfig: bbpCfg, Controller: bbpCtrl},
			func(rr mapreduce.Result) { out.BBP = rr; done++ })
		r.Eng.Run()
		if done != 2 {
			panic("experiments: multi-tenant pair did not complete")
		}
		return out
	}

	def := runPair(mrconf.Default(), mrconf.Default(), nil, nil)

	tsTuner := core.NewTuner("terasort60", ts.NumMaps, ts.NumReduces, mrconf.Default(),
		core.TunerOptions{Strategy: core.Aggressive, Seed: e.Seed})
	bbpTuner := core.NewTuner("bbp", bbp.NumMaps, bbp.NumReduces, mrconf.Default(),
		core.TunerOptions{Strategy: core.Aggressive, Seed: e.Seed + 1})
	runPair(mrconf.Default(), mrconf.Default(), tsTuner, bbpTuner)

	mro := runPair(tsTuner.BestConfig(), bbpTuner.BestConfig(), nil, nil)
	return MultiTenantResult{Default: def, Mronline: mro}
}

// Fig14 returns the §8.5 execution times.
func (e Env) Fig14() MultiTenantResult { return e.MultiTenant() }

// TestRunCountRow compares how many test runs each tuning approach
// needs to reach a near-optimal configuration (§7: MRONLINE finishes
// in one trial, Gunther-class GAs take 20–40).
type TestRunCountRow struct {
	Approach string
	Runs     int
	BestDur  float64
}

// TestRunCounts runs MRONLINE (one aggressive test run) and the
// genetic baseline on the same job; the GA's run count is the number
// of evaluations until its best stays within 5% of its final best.
func (e Env) TestRunCounts(b workload.Benchmark, generations int) []TestRunCountRow {
	tuner, _ := e.AggressiveTestRun(b)
	mroDur := e.RunOne(b, tuner.BestConfig(), nil).Duration

	ga := baseline.NewGenetic(sim.NewSource(e.Seed).Stream("ga"))
	eval := func(cfg mrconf.Config) float64 {
		return e.RunOne(b, cfg, nil).Duration
	}
	ga.Run(eval, generations)
	_, gaBest := ga.Best()
	// Runs-to-converge: the evaluation at which the GA last improved —
	// an offline operator cannot stop before that without giving up
	// the final configuration quality.
	runs := 1
	for i := 1; i < len(ga.History); i++ {
		if ga.History[i] < ga.History[i-1] {
			runs = i + 1
		}
	}
	return []TestRunCountRow{
		{Approach: "MRONLINE (aggressive)", Runs: 1, BestDur: mroDur},
		{Approach: "Gunther-style GA", Runs: runs, BestDur: gaBest},
	}
}

// Table3Row verifies that the simulated workloads regenerate the
// paper's Table 3 characteristics.
type Table3Row struct {
	Bench                        string
	InputMB, ShuffleMB, OutputMB float64
	MeasShuffleMB, MeasOutputMB  float64
	Maps, Reduces                int
	JobType                      string
}

// Table3 runs every suite benchmark under the default configuration
// and reports table-vs-measured data volumes.
func (e Env) Table3() []Table3Row {
	suite := workload.Suite()
	rows := make([]Table3Row, len(suite))
	parallelFor(len(suite), func(i int) {
		b := suite[i]
		res := e.RunOne(b, mrconf.Default(), nil)
		rows[i] = Table3Row{
			Bench:   b.Name,
			InputMB: b.InputSizeMB, ShuffleMB: b.ShuffleSizeMB, OutputMB: b.OutputSizeMB,
			MeasShuffleMB: res.Counters.MapOutputMB, MeasOutputMB: res.Counters.OutputMB,
			Maps: b.NumMaps, Reduces: b.NumReduces,
			JobType: string(b.Type),
		}
	})
	return rows
}

// HotSpotRow compares job time on a cluster with interfered ("hot")
// nodes, with and without MRONLINE's utilization-aware placement —
// the hot-spot avoidance claim of §1.
type HotSpotRow struct {
	HotNodes   int
	DefaultDur float64
	AvoidDur   float64
	CleanDur   float64 // same job on an uninterfered cluster
}

// Improvement returns the gain of hot-spot avoidance over blind
// placement on the interfered cluster.
func (r HotSpotRow) Improvement() float64 {
	if r.DefaultDur == 0 {
		return 0
	}
	return (r.DefaultDur - r.AvoidDur) / r.DefaultDur
}

// HotSpotStudy injects sustained disk and CPU interference on hotNodes
// nodes (co-located services hogging ~90% of the disk and most cores),
// then runs Terasort 20 GB with and without the hot-spot filter.
func (e Env) HotSpotStudy(hotNodes int) HotSpotRow {
	b := workload.Terasort(20, 0, 0)
	run := func(interfere, avoid bool) float64 {
		r := e.NewRig(yarn.FIFOScheduler{})
		if interfere {
			// Max-min sharing means one background flow is just one more
			// competitor; a service that truly hogs a node runs many
			// streams, so inject several parallel flows per resource.
			for i := 0; i < hotNodes && i < len(r.C.Nodes); i++ {
				n := r.C.Nodes[i]
				for k := 0; k < 30; k++ {
					n.InjectDiskLoad(30, 3600, nil)
					n.InjectCPULoad(1, 3600, nil)
				}
			}
		}
		if avoid {
			core.EnableHotSpotAvoidance(r.RM)
			r.FS.HotThreshold = 0.85
			// The interference is sustained for the whole job, so
			// falling back to hot nodes never pays; wait out cold
			// capacity instead.
			r.RM.HotSpotFallbackDelay = 600
		}
		dur := -1.0
		mapreduce.Submit(r.RM, r.FS, mapreduce.Spec{Benchmark: b, BaseConfig: mrconf.Default()},
			func(res mapreduce.Result) { dur = res.Duration })
		r.Eng.Run()
		if dur < 0 {
			panic("experiments: hot-spot run did not complete")
		}
		return dur
	}
	return HotSpotRow{
		HotNodes:   hotNodes,
		DefaultDur: run(true, false),
		AvoidDur:   run(true, true),
		CleanDur:   run(false, false),
	}
}

// StragglerRow compares mitigation strategies on a cluster that
// develops hot spots mid-job: nothing, speculative execution,
// hot-spot-aware placement, and both combined.
type StragglerRow struct {
	NoneDur        float64
	SpeculationDur float64
	AvoidanceDur   float64
	BothDur        float64
	SpecLaunches   int
	SpecWins       int
}

// StragglerStudy injects severe interference on `hotNodes` nodes three
// seconds into a Terasort 20 GB run (after the first wave has been
// placed) and measures each mitigation.
func (e Env) StragglerStudy(hotNodes int) StragglerRow {
	b := workload.Terasort(20, 0, 0)
	run := func(speculate, avoid bool) mapreduce.Result {
		r := e.NewRig(yarn.FIFOScheduler{})
		r.Eng.At(3, func() {
			for i := 0; i < hotNodes && i < len(r.C.Nodes); i++ {
				n := r.C.Nodes[i]
				for k := 0; k < 30; k++ {
					n.InjectDiskLoad(30, 3600, nil)
					n.InjectCPULoad(1, 3600, nil)
				}
			}
		})
		if avoid {
			core.EnableHotSpotAvoidance(r.RM)
			r.RM.HotSpotFallbackDelay = 600
			r.FS.HotThreshold = 0.85
		}
		spec := mapreduce.Spec{Benchmark: b, BaseConfig: mrconf.Default()}
		if speculate {
			spec.Speculation = mapreduce.DefaultSpeculation()
		}
		var res mapreduce.Result
		done := false
		mapreduce.Submit(r.RM, r.FS, spec, func(rr mapreduce.Result) { res = rr; done = true })
		r.Eng.Run()
		if !done {
			panic("experiments: straggler run did not complete")
		}
		return res
	}
	none := run(false, false)
	spec := run(true, false)
	avoid := run(false, true)
	both := run(true, true)
	return StragglerRow{
		NoneDur:        none.Duration,
		SpeculationDur: spec.Duration,
		AvoidanceDur:   avoid.Duration,
		BothDur:        both.Duration,
		SpecLaunches:   spec.Counters.SpeculativeLaunches,
		SpecWins:       spec.Counters.SpeculativeWins,
	}
}

// AmortizationRow tracks cumulative execution time over a sequence of
// runs of the same application — the paper's core economic argument:
// one instrumented test run plus knowledge-base reuse beats both
// never tuning and re-tuning conservatively every run.
type AmortizationRow struct {
	Runs               int
	CumulativeDefault  float64
	CumulativeMronline float64 // run 1 = aggressive test run, rest = KB config
	CumulativeConserv  float64 // conservative tuning every run
}

// Amortization simulates `runs` executions of the benchmark under the
// three policies.
func (e Env) Amortization(b workload.Benchmark, runs int) []AmortizationRow {
	defDur := e.RunOne(b, mrconf.Default(), nil).Duration

	tuner, test := e.AggressiveTestRun(b)
	best := tuner.BestConfig()
	kb := core.NewKnowledgeBase()
	kb.Put(core.Key(b.Name, b.InputSizeMB, "paper-19node"), best)
	cfg, _ := kb.Get(core.Key(b.Name, b.InputSizeMB, "paper-19node"))
	tunedDur := e.RunOne(b, cfg, nil).Duration

	consTuner := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
		core.TunerOptions{Strategy: core.Conservative, Seed: e.Seed})
	consDur := e.RunOne(b, mrconf.Default(), consTuner).Duration

	var rows []AmortizationRow
	cumDef, cumMro, cumCons := 0.0, 0.0, 0.0
	for i := 1; i <= runs; i++ {
		cumDef += defDur
		if i == 1 {
			cumMro += test.Duration // the instrumented test run
		} else {
			cumMro += tunedDur
		}
		cumCons += consDur
		rows = append(rows, AmortizationRow{
			Runs:               i,
			CumulativeDefault:  cumDef,
			CumulativeMronline: cumMro,
			CumulativeConserv:  cumCons,
		})
	}
	return rows
}

// JobStreamRow summarizes a multi-job arrival stream (the multi-tenant
// environment of the paper's second use case, generalized beyond two
// jobs): mean job completion time with and without MRONLINE's
// conservative tuner attached to every job.
type JobStreamRow struct {
	Jobs            int
	MeanDefault     float64
	MeanMronline    float64
	MakespanDefault float64
	MakespanMron    float64
}

// Improvement returns the mean-completion-time gain.
func (r JobStreamRow) Improvement() float64 {
	if r.MeanDefault == 0 {
		return 0
	}
	return (r.MeanDefault - r.MeanMronline) / r.MeanDefault
}

// JobStream submits `count` jobs drawn round-robin from a small mix
// (Terasort 20 GB, wordcount-like, compute-heavy) with exponential
// inter-arrival times, under fair-share scheduling.
func (e Env) JobStream(count int, meanGapSecs float64) JobStreamRow {
	mix := []workload.Benchmark{
		workload.Terasort(20, 0, 0),
		mustSpec(workload.BenchmarkSpec{
			Name: "logcount", InputGB: 15, Maps: 112, Reduces: 28,
			MapCPUPerMB: 0.015, RawMapSelectivity: 1.1, CombinerReduction: 0.3,
			ReduceSelectivity: 0.3, RecordBytes: 20, SkewCV: 0.15,
			MapWorkingSetMB: 200, ReduceWorkingSetMB: 150,
		}),
		mustSpec(workload.BenchmarkSpec{
			Name: "featurize", InputGB: 10, Maps: 75, Reduces: 19,
			MapCPUPerMB: 0.05, RawMapSelectivity: 0.4, CombinerReduction: 1,
			ReduceSelectivity: 0.5, RecordBytes: 80, SkewCV: 0.1,
			MapWorkingSetMB: 150, ReduceWorkingSetMB: 150,
		}),
	}
	run := func(tuned bool) (mean, makespan float64) {
		r := e.NewRig(yarn.FairScheduler{})
		rng := sim.NewSource(e.Seed).Stream("arrivals")
		at := 0.0
		completions := 0
		total := 0.0
		for i := 0; i < count; i++ {
			i := i
			b := mix[i%len(mix)]
			submitAt := at
			r.Eng.At(submitAt, func() {
				name := fmt.Sprintf("%s-%02d", b.Name, i)
				var ctrl mapreduce.Controller
				if tuned {
					ctrl = core.NewTuner(name, b.NumMaps, b.NumReduces, mrconf.Default(),
						core.TunerOptions{Strategy: core.Conservative, Seed: e.Seed + uint64(i)})
				}
				mapreduce.Submit(r.RM, r.FS, mapreduce.Spec{
					Name: name, Benchmark: b, BaseConfig: mrconf.Default(), Controller: ctrl,
				}, func(res mapreduce.Result) {
					completions++
					total += res.Duration
					if t := r.Eng.Now(); t > makespan {
						makespan = t
					}
				})
			})
			at += rng.ExpFloat64() * meanGapSecs
		}
		r.Eng.Run()
		if completions != count {
			panic(fmt.Sprintf("experiments: job stream completed %d of %d", completions, count))
		}
		return total / float64(count), makespan
	}
	row := JobStreamRow{Jobs: count}
	row.MeanDefault, row.MakespanDefault = run(false)
	row.MeanMronline, row.MakespanMron = run(true)
	return row
}

func mustSpec(s workload.BenchmarkSpec) workload.Benchmark {
	b, err := s.Benchmark()
	if err != nil {
		panic(err)
	}
	return b
}

// SweepStat summarizes an improvement metric across seeds.
type SweepStat struct {
	Seeds   int
	MeanImp float64
	MinImp  float64
	MaxImp  float64
	StdDev  float64
}

// SeedSweep quantifies run-to-run variance of the expedited use case
// on one benchmark: the full tune-then-run pipeline repeated across
// `seeds` independent seeds (each with Reps=1 so the sweep measures
// raw variance, not averaged results).
func (e Env) SeedSweep(b workload.Benchmark, seeds int) SweepStat {
	imps := make([]float64, seeds)
	parallelFor(seeds, func(i int) {
		sub := Env{Seed: e.Seed + uint64(i)*977, Reps: 1}
		def := sub.RunOne(b, mrconf.Default(), nil)
		tuner, _ := sub.AggressiveTestRun(b)
		run := sub.RunOne(b, tuner.BestConfig(), nil)
		imps[i] = (def.Duration - run.Duration) / def.Duration
	})
	st := SweepStat{Seeds: seeds, MinImp: imps[0], MaxImp: imps[0]}
	sum, sumSq := 0.0, 0.0
	for _, v := range imps {
		sum += v
		sumSq += v * v
		if v < st.MinImp {
			st.MinImp = v
		}
		if v > st.MaxImp {
			st.MaxImp = v
		}
	}
	n := float64(seeds)
	st.MeanImp = sum / n
	variance := sumSq/n - st.MeanImp*st.MeanImp
	if variance > 0 {
		st.StdDev = math.Sqrt(variance)
	}
	return st
}

// SeedSweepConservative mirrors SeedSweep for the fast-single-run use
// case: the conservative tuner attached to one run, across seeds.
func (e Env) SeedSweepConservative(b workload.Benchmark, seeds int) SweepStat {
	imps := make([]float64, seeds)
	parallelFor(seeds, func(i int) {
		sub := Env{Seed: e.Seed + uint64(i)*977, Reps: 1}
		def := sub.RunOne(b, mrconf.Default(), nil)
		tuner := core.NewTuner(b.Name, b.NumMaps, b.NumReduces, mrconf.Default(),
			core.TunerOptions{Strategy: core.Conservative, Seed: sub.Seed})
		run := sub.RunOne(b, mrconf.Default(), tuner)
		imps[i] = (def.Duration - run.Duration) / def.Duration
	})
	st := SweepStat{Seeds: seeds, MinImp: imps[0], MaxImp: imps[0]}
	sum, sumSq := 0.0, 0.0
	for _, v := range imps {
		sum += v
		sumSq += v * v
		if v < st.MinImp {
			st.MinImp = v
		}
		if v > st.MaxImp {
			st.MaxImp = v
		}
	}
	n := float64(seeds)
	st.MeanImp = sum / n
	if variance := sumSq/n - st.MeanImp*st.MeanImp; variance > 0 {
		st.StdDev = math.Sqrt(variance)
	}
	return st
}
