package experiments

import (
	"math"

	"repro/internal/faults"
	"repro/internal/tuner"
	"repro/internal/workload"
)

// TournamentSpec configures the optimizer-backend tournament: every
// backend tunes every app, cold and warm, clean and under churn.
type TournamentSpec struct {
	Apps     []workload.Benchmark
	Backends []string
	// Faults is the churn leg's fault spec; nil uses DefaultCrashSpec.
	Faults *faults.Spec
}

// DefaultTournamentSpec covers three Table 3 apps with distinct
// resource profiles (map-, compute-, and shuffle-intensive-adjacent)
// and all registered backends, crashed mid-job per PR 4's canonical
// fault spec on the churn leg.
func DefaultTournamentSpec() TournamentSpec {
	apps := []string{"wordcount/Wikipedia", "invertedindex/Freebase", "textsearch/Wikipedia"}
	spec := TournamentSpec{Backends: tuner.Backends()}
	for _, name := range apps {
		b, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		spec.Apps = append(spec.Apps, b)
	}
	return spec
}

// TournamentRow is one (app, backend) cell of the tournament.
type TournamentRow struct {
	Bench   string
	Backend string

	// Clean leg: one cold expedited test run, then the recommendation
	// re-run standalone.
	Evals      int     // total search evaluations (both scopes)
	Waves      int     // total completed search waves (both scopes)
	TestRunDur float64 // test-run duration (the tuning overhead)
	TunedDur   float64 // run duration under BestConfig
	FinalCost  float64 // summed per-scope best Eq. 1 cost
	// TestsTo15 counts the evaluations each scope needed to get within
	// 15% of the best final cost ANY backend reached on this app
	// (summed over scopes) — the paper's tests-to-convergence metric,
	// scored against the cross-backend frontier.
	TestsTo15 int

	// Churn leg: the same tuning with the fault spec armed, then the
	// churn-derived recommendation re-run under the same faults.
	ChurnTestDur  float64
	ChurnTunedDur float64
	ChurnFailed   bool

	// Warm leg: a second same-class job warm-started from the clean
	// leg's store entry. ColdWaves repeats Waves for side-by-side
	// reading; WarmWaves must come out strictly smaller.
	ColdWaves int
	WarmWaves int
	WarmDur   float64 // warm test run duration

	mapTraj []float64 // clean-leg convergence curves, for TestsTo15
	redTraj []float64
}

// Tournament runs the backend tournament and returns one row per
// (app, backend), grouped by app in spec order. TestsTo15 is scored
// after all backends of an app have run, against the app's
// cross-backend best final cost.
func (e Env) Tournament(spec TournamentSpec) []TournamentRow {
	if len(spec.Backends) == 0 {
		spec.Backends = tuner.Backends()
	}
	fspec := spec.Faults
	if fspec == nil || fspec.Empty() {
		fspec = DefaultCrashSpec()
	}
	nb := len(spec.Backends)
	rows := make([]TournamentRow, len(spec.Apps)*nb)
	parallelFor(len(rows), func(i int) {
		rows[i] = e.tournamentCell(spec.Apps[i/nb], spec.Backends[i%nb], fspec)
	})
	// Score tests-to-within-15% against each app's cross-backend best.
	for a := 0; a < len(spec.Apps); a++ {
		group := rows[a*nb : (a+1)*nb]
		bestMap, bestRed := math.Inf(1), math.Inf(1)
		for _, r := range group {
			bestMap = math.Min(bestMap, finalCost(r.mapTraj))
			bestRed = math.Min(bestRed, finalCost(r.redTraj))
		}
		for i := range group {
			group[i].TestsTo15 = evalsToWithin(group[i].mapTraj, bestMap, 1.15) +
				evalsToWithin(group[i].redTraj, bestRed, 1.15)
		}
	}
	return rows
}

func (e Env) tournamentCell(b workload.Benchmark, backend string, fspec *faults.Spec) TournamentRow {
	row := TournamentRow{Bench: b.Name, Backend: backend}

	// Clean leg, feeding a private store for the warm leg below.
	store := tuner.NewStore()
	clean := Env{Seed: e.Seed, Backend: backend, WarmStore: store}
	tn, test := clean.AggressiveTestRun(b)
	row.TestRunDur = test.Duration
	row.TunedDur = clean.RunOne(b, tn.BestConfig(), nil).Duration
	row.mapTraj, row.redTraj = tn.Trajectories()
	row.Evals = len(row.mapTraj) + len(row.redTraj)
	mw, rw := tn.TestWaves()
	row.Waves = mw + rw
	row.ColdWaves = row.Waves
	row.FinalCost = finalCost(row.mapTraj) + finalCost(row.redTraj)

	// Churn leg: tune and re-run with the fault spec armed.
	churn := Env{Seed: e.Seed, Backend: backend, FaultSpec: fspec}
	ctn, ctest := churn.AggressiveTestRun(b)
	crun := churn.RunOne(b, ctn.BestConfig(), nil)
	row.ChurnTestDur = ctest.Duration
	row.ChurnTunedDur = crun.Duration
	row.ChurnFailed = ctest.Failed || crun.Failed

	// Warm leg: a later job of the same class, different seed, seeded
	// from the clean leg's store entry.
	warm := Env{Seed: e.Seed + 1, Backend: backend, WarmStore: store}
	wtn, wtest := warm.AggressiveTestRun(b)
	wmw, wrw := wtn.TestWaves()
	row.WarmWaves = wmw + wrw
	row.WarmDur = wtest.Duration
	return row
}

// finalCost is the last value of a best-cost-so-far trajectory.
func finalCost(traj []float64) float64 {
	if len(traj) == 0 {
		return math.Inf(1)
	}
	return traj[len(traj)-1]
}

// evalsToWithin returns the 1-based index of the first trajectory
// entry within factor× of target (the evaluations spent to get there),
// or the full trajectory length when the search never got that close.
func evalsToWithin(traj []float64, target, factor float64) int {
	for i, v := range traj {
		if v <= target*factor {
			return i + 1
		}
	}
	return len(traj)
}
