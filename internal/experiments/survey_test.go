package experiments

import (
	"fmt"
	"testing"
)

// TestSurveyAll prints the full paper-vs-measured picture. It is the
// calibration harness used while developing; run with
//
//	go test ./internal/experiments -run SurveyAll -v
func TestSurveyAll(t *testing.T) {
	if testing.Short() {
		t.Skip("survey in -short mode")
	}
	e := DefaultEnv()

	fmt.Println("== Figs 4-6 / 7-9 (expedited) ==")
	for _, rows := range [][]ExpeditedRow{e.Fig4(), e.Fig5(), e.Fig6()} {
		for _, r := range rows {
			fmt.Printf("%-28s def=%6.0fs off=%6.0fs mro=%6.0fs test=%6.0fs imp=%4.0f%% | spills opt=%.2e def=%.2e off=%.2e mro=%.2e\n",
				r.Bench, r.DefaultDur, r.OfflineDur, r.MronlineDur, r.TestRunDur, 100*r.Improvement(),
				r.OptimalSpills, r.DefaultSpills, r.OfflineSpills, r.MronlineSpills)
		}
	}

	fmt.Println("== Figs 10-12 (fast single run) ==")
	for _, rows := range [][]SingleRunRow{e.Fig10(), e.Fig11(), e.Fig12()} {
		for _, r := range rows {
			fmt.Printf("%-28s def=%6.0fs mro=%6.0fs imp=%4.0f%%\n",
				r.Bench, r.DefaultDur, r.MronlineDur, 100*r.Improvement())
		}
	}

	fmt.Println("== Fig 13 (job size) ==")
	for _, r := range e.Fig13() {
		fmt.Printf("%3dGB maps=%3d red=%3d def=%6.0fs mro=%6.0fs imp=%4.0f%%\n",
			r.SizeGB, r.Maps, r.Reduces, r.DefaultDur, r.MronlineDur, 100*r.Improvement())
	}

	fmt.Println("== Figs 14-16 (multi-tenant) ==")
	mt := e.MultiTenant()
	fmt.Printf("terasort: def=%6.0fs mro=%6.0fs imp=%4.0f%%\n",
		mt.Default.Terasort.Duration, mt.Mronline.Terasort.Duration,
		100*(mt.Default.Terasort.Duration-mt.Mronline.Terasort.Duration)/mt.Default.Terasort.Duration)
	fmt.Printf("bbp:      def=%6.0fs mro=%6.0fs imp=%4.0f%%\n",
		mt.Default.BBP.Duration, mt.Mronline.BBP.Duration,
		100*(mt.Default.BBP.Duration-mt.Mronline.BBP.Duration)/mt.Default.BBP.Duration)
	fmt.Printf("mem util: ts-m %0.2f->%0.2f ts-r %0.2f->%0.2f bbp-m %0.2f->%0.2f bbp-r %0.2f->%0.2f\n",
		mt.Default.Terasort.MapMemUtil, mt.Mronline.Terasort.MapMemUtil,
		mt.Default.Terasort.ReduceMemUtil, mt.Mronline.Terasort.ReduceMemUtil,
		mt.Default.BBP.MapMemUtil, mt.Mronline.BBP.MapMemUtil,
		mt.Default.BBP.ReduceMemUtil, mt.Mronline.BBP.ReduceMemUtil)
	fmt.Printf("cpu util: ts-m %0.2f->%0.2f ts-r %0.2f->%0.2f bbp-m %0.2f->%0.2f bbp-r %0.2f->%0.2f\n",
		mt.Default.Terasort.MapCPUUtil, mt.Mronline.Terasort.MapCPUUtil,
		mt.Default.Terasort.ReduceCPUUtil, mt.Mronline.Terasort.ReduceCPUUtil,
		mt.Default.BBP.MapCPUUtil, mt.Mronline.BBP.MapCPUUtil,
		mt.Default.BBP.ReduceCPUUtil, mt.Mronline.BBP.ReduceCPUUtil)
	fmt.Printf("ts spills: def=%.2e mro=%.2e\n",
		mt.Default.Terasort.Counters.SpilledRecords(), mt.Mronline.Terasort.Counters.SpilledRecords())
}
