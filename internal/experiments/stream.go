package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/mrconf"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tuner"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// StreamClass is one entry of the continuous-serving job mix: a
// benchmark submitted with relative frequency Weight. Class names must
// not contain '-' after the last path segment, because job names are
// "<class>-<index>" and trace.DefaultClassify folds them back by
// stripping the final "-<suffix>".
type StreamClass struct {
	Weight int
	Bench  workload.Benchmark
}

// DefaultStreamClasses returns the serving mix: the Table 3
// applications rescaled to the small-job sizes that dominate shared
// clusters (the full-corpus Table 3 runs are batch jobs; a day of
// thousands of arrivals is made of their scaled-down siblings), plus
// Terasort and BBP representatives. Weights sum to 100.
func DefaultStreamClasses() []StreamClass {
	return []StreamClass{
		{Weight: 30, Bench: mustSpec(workload.BenchmarkSpec{
			Name: "wordcount2g", InputGB: 2, Maps: 16, Reduces: 4,
			MapCPUPerMB: 0.012, RawMapSelectivity: 1.4, CombinerReduction: 0.2,
			ReduceSelectivity: 0.3, RecordBytes: 16, SkewCV: 0.2,
			MapWorkingSetMB: 300, ReduceWorkingSetMB: 250,
		})},
		{Weight: 20, Bench: mustSpec(workload.BenchmarkSpec{
			Name: "invidx2g", InputGB: 2, Maps: 16, Reduces: 4,
			MapCPUPerMB: 0.02, RawMapSelectivity: 1.2, CombinerReduction: 0.25,
			ReduceSelectivity: 0.8, RecordBytes: 40, SkewCV: 0.25,
			MapWorkingSetMB: 350, ReduceWorkingSetMB: 300,
		})},
		{Weight: 15, Bench: mustSpec(workload.BenchmarkSpec{
			Name: "bigram3g", InputGB: 3, Maps: 24, Reduces: 6,
			MapCPUPerMB: 0.018, RawMapSelectivity: 1.8, CombinerReduction: 0.35,
			ReduceSelectivity: 0.5, RecordBytes: 25, SkewCV: 0.3,
			MapWorkingSetMB: 300, ReduceWorkingSetMB: 250,
		})},
		{Weight: 20, Bench: mustSpec(workload.BenchmarkSpec{
			Name: "textsearch1g", InputGB: 1, Maps: 8, Reduces: 2,
			MapCPUPerMB: 0.08, RawMapSelectivity: 0.2, CombinerReduction: 1,
			ReduceSelectivity: 0.5, RecordBytes: 100, SkewCV: 0.15,
			MapWorkingSetMB: 200, ReduceWorkingSetMB: 150,
		})},
		{Weight: 10, Bench: workload.Terasort(2, 0, 0)},
		{Weight: 5, Bench: workload.BBP(25000, 8)},
	}
}

// StreamSpec describes a continuous multi-tenant serving run: a
// Poisson+diurnal arrival stream of mixed job classes against one
// shared cluster under fair scheduling. The zero value is not usable;
// start from DefaultStreamSpec.
type StreamSpec struct {
	Seed uint64

	// Racks × NodesPerRack worker nodes, each with the paper's node
	// hardware (8 cores, 28 vcores, 6 GB container memory, one ~90 MB/s
	// disk, 1 GbE).
	Racks        int
	NodesPerRack int

	// Arrival process (see workload.ArrivalSpec): MeanPerHour jobs/hour
	// on average, day/night modulated by DiurnalAmplitude, stopping at
	// HorizonSecs. MaxJobs, when positive, caps submissions (later
	// arrivals are dropped).
	MeanPerHour      float64
	DiurnalAmplitude float64
	HorizonSecs      float64
	MaxJobs          int

	// Classes is the job mix; nil means DefaultStreamClasses().
	Classes []StreamClass

	// Tuned attaches a per-job MRONLINE conservative tuner to every
	// submission (the fast-single-run use case applied fleet-wide).
	// Tuner objects are recycled across jobs via core.Tuner.Reset.
	Tuned bool

	// WarmStart (requires Tuned) switches the per-job tuner to the
	// aggressive strategy backed by a shared cross-job tuner.Store:
	// each job consults its class's stored search state for a warm
	// start and feeds its outcome back on completion, so later jobs of
	// a class issue strictly fewer test waves than the first. Warm
	// tuners are built per job (a warm start is a construction-time
	// decision), not recycled. Default-off, leaving the committed
	// conservative-stream results byte-identical.
	WarmStart bool
	// Backend names the optimizer backend for WarmStart runs ("" =
	// "hill"); see tuner.Backends().
	Backend string
	// Store is the shared warm-start store; nil allocates a private
	// one. Pass a store to persist learning across stream runs.
	Store *tuner.Store

	// Legacy disables every steady-state optimization — no object pool,
	// no precompiled config snapshots, no input release, and a
	// grow-forever trace.Recorder teeing off the stats sink — restoring
	// the pre-PR per-job costs. It exists for the A/B benchmark; results
	// are byte-identical to the optimized path, only slower and bigger.
	Legacy bool

	// Sink, when non-nil, additionally receives every trace event
	// (tee'd with the internal stats sink).
	Sink trace.Sink

	// Faults, when non-nil, injects the spec's faults into the run. On
	// the classic path a single injector serves the whole cluster; in
	// rack-cell mode each cell gets its own injector carrying exactly
	// the faults that land on its nodes.
	Faults *faults.Spec

	// Parallel, when positive, runs the stream on the rack-cell
	// architecture with parallel windows: each rack is a self-contained
	// cell (scoped resource manager, scoped single-rack namenode,
	// rack-local fabric, private stats sink) and the only cross-shard
	// traffic is job submission, delivered by Send with delay
	// StreamSubmitDelaySecs. Workers drain rack windows concurrently;
	// results are identical at any worker count (pinned by tests).
	// Parallel is incompatible with WarmStart, Legacy, and Sink —
	// those paths retain cross-cell state on the system shard.
	Parallel int
	// Lookahead is the parallel-window width in simulated seconds
	// (0 = DefaultStreamLookahead). It must not exceed
	// StreamSubmitDelaySecs, the minimum cross-shard Send delay.
	Lookahead float64

	// cellSerial runs the rack-cell architecture on the serial engine:
	// the reference leg the window-invariance tests compare parallel
	// runs against (cell results legally differ from the classic
	// single-namenode path, so the classic path cannot be that
	// reference).
	cellSerial bool
}

// Rack-cell serving timing contract: every cross-shard interaction is
// a Send with delay ≥ the window lookahead.
const (
	// DefaultStreamLookahead is the parallel-window width used when
	// StreamSpec.Lookahead is zero. Wider windows amortize the
	// per-window barrier over more events; the ceiling is the
	// submission delay below. 1s already yields near-full window
	// occupancy at 313 racks — widening it further was measured to
	// make no difference.
	DefaultStreamLookahead = 1.0
	// StreamSubmitDelaySecs is the latency from a job's arrival (drawn
	// on the system shard) to its delivery at the target rack cell —
	// the stream's only cross-shard edge, and therefore the upper
	// bound on the usable lookahead.
	StreamSubmitDelaySecs = 1.0
)

// DefaultStreamSpec is the flagship workload: a simulated day of
// ~21k jobs (875/hour mean, ±50% diurnal swing) on a 10,016-node
// cluster (313 racks × 32 nodes, matching the sharded-engine
// acceptance benchmark).
func DefaultStreamSpec(seed uint64) StreamSpec {
	return StreamSpec{
		Seed:             seed,
		Racks:            313,
		NodesPerRack:     32,
		MeanPerHour:      875,
		DiurnalAmplitude: 0.5,
		HorizonSecs:      86400,
	}
}

// StreamResult summarizes one serving run.
type StreamResult struct {
	Jobs      int     // jobs submitted
	Completed int     // jobs finished (== Jobs unless something is wrong)
	Makespan  float64 // finish time of the last job, seconds
	MeanDur   float64 // mean job completion latency, seconds

	// Events is the number of simulation events processed; SinkEvents
	// is the number of trace events the stats sink ingested. Both grow
	// with the stream while the sink's retained state stays flat.
	Events     uint64
	SinkEvents int

	// RetainedEvents is the legacy recorder's length: O(total events)
	// in Legacy mode, 0 on the optimized path.
	RetainedEvents int

	// Stats holds the per-class aggregates the run folded into.
	Stats *trace.StatsSink

	// ClassWaves records, for WarmStart runs, every job's total test
	// waves (both scopes) per class name in completion order — the
	// evidence that warm-started jobs issue fewer waves. Nil otherwise.
	ClassWaves map[string][]int
}

// Report renders the deterministic aggregate summary: run totals plus
// the per-class latency table. Same seed and spec → byte-identical
// output, which is what the determinism tests pin.
func (r *StreamResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs=%d completed=%d makespan=%.1fs mean=%.1fs sink_events=%d\n",
		r.Jobs, r.Completed, r.Makespan, r.MeanDur, r.SinkEvents)
	r.Stats.WriteSummary(&b)
	return b.String()
}

// RunStream executes one continuous-serving run to completion: every
// arrival inside the horizon is submitted (subject to MaxJobs) and the
// engine drains until the last job finishes. Parallel > 0 selects the
// rack-cell architecture (see StreamSpec.Parallel); the default path
// is the serial single-RM reference the figure pipeline pins.
func RunStream(spec StreamSpec) StreamResult {
	classes := spec.Classes
	if classes == nil {
		classes = DefaultStreamClasses()
	}
	totalWeight := 0
	for _, cl := range classes {
		if cl.Weight <= 0 {
			panic(fmt.Sprintf("experiments: stream class %s needs positive weight", cl.Bench.Name))
		}
		totalWeight += cl.Weight
	}
	if spec.Parallel > 0 || spec.cellSerial {
		return runStreamCells(spec, classes, totalWeight)
	}

	eng := sim.NewEngine()
	eng.MaxEvents = 2_000_000_000
	sizes := make([]int, spec.Racks)
	for i := range sizes {
		sizes[i] = spec.NodesPerRack
	}
	c := cluster.New(eng, cluster.Config{
		RackSizes:      sizes,
		CoresPerNode:   8,
		VCoresPerNode:  28,
		ContainerMemMB: 6 * 1024,
		DiskMBps:       90,
		NICMBps:        117,
		// ~4:1 oversubscribed uplink for a 32-node rack of 1 GbE nodes.
		UplinkMBps: 1000,
	})
	rm := yarn.NewResourceManager(eng, c, yarn.FairScheduler{})
	src := sim.NewSource(spec.Seed)
	fs := hdfs.New(c, src.Stream("hdfs"))

	stats := trace.NewStatsSink()
	var sink trace.Sink = stats
	var legacyRec *trace.Recorder
	if spec.Legacy {
		legacyRec = &trace.Recorder{}
		sink = trace.Tee(stats, legacyRec)
	}
	if spec.Sink != nil {
		sink = trace.Tee(sink, spec.Sink)
	}

	var hooks mapreduce.FaultHooks
	if spec.Faults != nil {
		inj, err := faults.New(c, src, *spec.Faults, sink)
		if err != nil {
			panic(err)
		}
		hooks = inj
	}

	base := mrconf.Default()
	var pool *mapreduce.Pool
	var pre *mapreduce.PrecompiledConfig
	if !spec.Legacy {
		pool = mapreduce.NewPool()
		pre = mapreduce.Precompile(base)
	}

	// Tuner recycling: per-class free lists, since Reset keeps the
	// monitor's report-slice capacity which is sized by task counts.
	tunerFree := make([][]*core.Tuner, len(classes))
	getTuner := func(ci int, name string, b workload.Benchmark, seq int) *core.Tuner {
		if n := len(tunerFree[ci]); n > 0 {
			tu := tunerFree[ci][n-1]
			tunerFree[ci][n-1] = nil
			tunerFree[ci] = tunerFree[ci][:n-1]
			tu.Reset(name, b.NumMaps, b.NumReduces, base)
			return tu
		}
		return core.NewTuner(name, b.NumMaps, b.NumReduces, base,
			core.TunerOptions{Strategy: core.Conservative, Seed: spec.Seed + uint64(seq)})
	}

	classRNG := src.Sub("stream").Stream("classes")
	pickClass := func() int {
		w := classRNG.Intn(totalWeight)
		for i, cl := range classes {
			w -= cl.Weight
			if w < 0 {
				return i
			}
		}
		return len(classes) - 1
	}

	var store *tuner.Store
	if spec.Tuned && spec.WarmStart {
		store = spec.Store
		if store == nil {
			store = tuner.NewStore()
		}
	}

	res := StreamResult{Stats: stats}
	if store != nil {
		res.ClassWaves = make(map[string][]int)
	}
	totalDur := 0.0
	submit := func(i int, t float64) {
		if spec.MaxJobs > 0 && res.Jobs >= spec.MaxJobs {
			return
		}
		res.Jobs++
		ci := pickClass()
		cl := classes[ci]
		name := fmt.Sprintf("%s-%05d", cl.Bench.Name, i)
		var ctrl mapreduce.Controller
		var tun *core.Tuner
		var warmKey string
		if spec.Tuned {
			if store != nil {
				// Aggressive warm-start path: per-job tuner seeded from
				// the class's best-known search state.
				warmKey = tuner.Key(cl.Bench.Name, cl.Bench.InputSizeMB)
				opts := core.TunerOptions{Strategy: core.Aggressive,
					Seed: spec.Seed + uint64(i), Backend: spec.Backend}
				if ent, ok := store.Get(warmKey); ok && ent.Usable() {
					w := ent
					opts.Warm = &w
				}
				tun = core.NewTuner(name, cl.Bench.NumMaps, cl.Bench.NumReduces, base, opts)
			} else {
				tun = getTuner(ci, name, cl.Bench, i)
			}
			ctrl = tun
		}
		mapreduce.Submit(rm, fs, mapreduce.Spec{
			Name:                 name,
			Benchmark:            cl.Bench,
			BaseConfig:           base,
			Controller:           ctrl,
			Trace:                sink,
			Pool:                 pool,
			Precompiled:          pre,
			Faults:               hooks,
			ReleaseInputOnFinish: !spec.Legacy,
		}, func(rr mapreduce.Result) {
			res.Completed++
			totalDur += rr.Duration
			if now := eng.Now(); now > res.Makespan {
				res.Makespan = now
			}
			if tun != nil {
				if store != nil {
					store.Update(warmKey, tun.ExportWarm())
					mw, rw := tun.TestWaves()
					res.ClassWaves[cl.Bench.Name] = append(res.ClassWaves[cl.Bench.Name], mw+rw)
				} else {
					tunerFree[ci] = append(tunerFree[ci], tun)
				}
			}
		})
	}

	_, err := workload.ScheduleArrivals(c.Sys(), src.Sub("stream"), workload.ArrivalSpec{
		MeanPerHour:      spec.MeanPerHour,
		DiurnalAmplitude: spec.DiurnalAmplitude,
		Horizon:          spec.HorizonSecs,
	}, submit)
	if err != nil {
		panic(err)
	}
	eng.Run()
	if res.Completed != res.Jobs {
		panic(fmt.Sprintf("experiments: stream completed %d of %d jobs", res.Completed, res.Jobs))
	}
	if res.Jobs > 0 {
		res.MeanDur = totalDur / float64(res.Jobs)
	}
	res.Events = eng.Processed()
	res.SinkEvents = stats.EventCount()
	if legacyRec != nil {
		res.RetainedEvents = legacyRec.Len()
	}
	return res
}

// streamCell is one rack's self-contained serving stack: everything a
// job touches after submission lives on the rack's shard, so cells
// drain concurrently inside parallel windows with no shared state.
type streamCell struct {
	shard     *sim.Shard
	rm        *yarn.ResourceManager
	fs        *hdfs.FileSystem
	sink      *trace.StatsSink
	pool      *mapreduce.Pool
	hooks     mapreduce.FaultHooks
	tunerFree [][]*core.Tuner

	completed int
	totalDur  float64
	makespan  float64
}

// runStreamCells is RunStream on the rack-cell architecture: arrivals
// are drawn on the system shard exactly as on the classic path, then
// handed round-robin to per-rack cells via Send (the run's only
// cross-shard edge). Per-cell results fold in rack order after the
// drain, so every aggregate is identical at any worker count —
// including cellSerial, the plain-engine reference leg.
func runStreamCells(spec StreamSpec, classes []StreamClass, totalWeight int) StreamResult {
	switch {
	case spec.WarmStart:
		panic("experiments: stream Parallel is incompatible with WarmStart (the shared store is cross-cell state)")
	case spec.Legacy:
		panic("experiments: stream Parallel is incompatible with Legacy (the recorder is cross-cell state)")
	case spec.Sink != nil:
		panic("experiments: stream Parallel is incompatible with Sink (an external sink is cross-cell state)")
	}
	la := spec.Lookahead
	if la == 0 {
		la = DefaultStreamLookahead
	}
	if la < 0 || la > StreamSubmitDelaySecs {
		panic(fmt.Sprintf("experiments: stream lookahead %v outside (0, %v]", la, StreamSubmitDelaySecs))
	}

	eng := sim.NewEngine()
	eng.MaxEvents = 2_000_000_000
	sizes := make([]int, spec.Racks)
	for i := range sizes {
		sizes[i] = spec.NodesPerRack
	}
	c := cluster.New(eng, cluster.Config{
		RackSizes:      sizes,
		CoresPerNode:   8,
		VCoresPerNode:  28,
		ContainerMemMB: 6 * 1024,
		DiskMBps:       90,
		NICMBps:        117,
		UplinkMBps:     1000,
		RackLocalNet:   true,
	})
	if spec.Parallel > 0 {
		eng.EnableParallelWindows(spec.Parallel, la)
	}
	src := sim.NewSource(spec.Seed)
	base := mrconf.Default()
	// The precompiled snapshot is immutable after construction, so one
	// copy serves every cell.
	pre := mapreduce.Precompile(base)

	cells := make([]*streamCell, spec.Racks)
	for r := range cells {
		rackSrc := src.Sub(fmt.Sprintf("rack%03d", r))
		cell := &streamCell{
			shard:     c.RackShard(r),
			sink:      trace.NewStatsSink(),
			pool:      mapreduce.NewPool(),
			tunerFree: make([][]*core.Tuner, len(classes)),
		}
		cell.rm = yarn.NewScopedResourceManager(eng, c, yarn.FairScheduler{}, r)
		cell.fs = hdfs.NewScoped(c, rackSrc.Stream("hdfs"), r)
		if spec.Faults != nil {
			rack := r
			filtered := spec.Faults.FilterNodes(func(node int) bool {
				return c.Nodes[node].Rack == rack
			})
			inj, err := faults.New(c, rackSrc, filtered, cell.sink)
			if err != nil {
				panic(err)
			}
			cell.hooks = inj
		}
		cells[r] = cell
	}

	classRNG := src.Sub("stream").Stream("classes")
	pickClass := func() int {
		w := classRNG.Intn(totalWeight)
		for i, cl := range classes {
			w -= cl.Weight
			if w < 0 {
				return i
			}
		}
		return len(classes) - 1
	}

	sys := c.Sys()
	res := StreamResult{}
	submit := func(i int, t float64) {
		if spec.MaxJobs > 0 && res.Jobs >= spec.MaxJobs {
			return
		}
		res.Jobs++
		ci := pickClass()
		cl := classes[ci]
		cell := cells[(res.Jobs-1)%len(cells)]
		// Name, class, and tuner seed are all fixed here on the system
		// shard; the closure only touches its cell's state after the
		// Send delivers on the rack shard.
		name := fmt.Sprintf("%s-%05d", cl.Bench.Name, i)
		seq := i
		sys.Send(cell.shard, StreamSubmitDelaySecs, func() {
			var ctrl mapreduce.Controller
			var tun *core.Tuner
			if spec.Tuned {
				tun = cell.getTuner(ci, name, cl.Bench, base, spec.Seed, seq)
				ctrl = tun
			}
			mapreduce.Submit(cell.rm, cell.fs, mapreduce.Spec{
				Name:                 name,
				Benchmark:            cl.Bench,
				BaseConfig:           base,
				Controller:           ctrl,
				Trace:                cell.sink,
				Pool:                 cell.pool,
				Precompiled:          pre,
				Faults:               cell.hooks,
				ReleaseInputOnFinish: true,
			}, func(rr mapreduce.Result) {
				cell.completed++
				cell.totalDur += rr.Duration
				if now := cell.shard.Now(); now > cell.makespan {
					cell.makespan = now
				}
				if tun != nil {
					cell.tunerFree[ci] = append(cell.tunerFree[ci], tun)
				}
			})
		})
	}

	_, err := workload.ScheduleArrivals(sys, src.Sub("stream"), workload.ArrivalSpec{
		MeanPerHour:      spec.MeanPerHour,
		DiurnalAmplitude: spec.DiurnalAmplitude,
		Horizon:          spec.HorizonSecs,
	}, submit)
	if err != nil {
		panic(err)
	}
	eng.Run()

	// Fold per-cell results in rack order: the float sums and the sink
	// merge see the same sequence at every worker count.
	stats := trace.NewStatsSink()
	totalDur := 0.0
	for _, cell := range cells {
		res.Completed += cell.completed
		totalDur += cell.totalDur
		if cell.makespan > res.Makespan {
			res.Makespan = cell.makespan
		}
		stats.Merge(cell.sink)
	}
	res.Stats = stats
	if res.Completed != res.Jobs {
		panic(fmt.Sprintf("experiments: stream completed %d of %d jobs", res.Completed, res.Jobs))
	}
	if res.Jobs > 0 {
		res.MeanDur = totalDur / float64(res.Jobs)
	}
	res.Events = eng.Processed()
	res.SinkEvents = stats.EventCount()
	return res
}

func (cell *streamCell) getTuner(ci int, name string, b workload.Benchmark,
	base mrconf.Config, seed uint64, seq int) *core.Tuner {
	if n := len(cell.tunerFree[ci]); n > 0 {
		tu := cell.tunerFree[ci][n-1]
		cell.tunerFree[ci][n-1] = nil
		cell.tunerFree[ci] = cell.tunerFree[ci][:n-1]
		tu.Reset(name, b.NumMaps, b.NumReduces, base)
		return tu
	}
	return core.NewTuner(name, b.NumMaps, b.NumReduces, base,
		core.TunerOptions{Strategy: core.Conservative, Seed: seed + uint64(seq)})
}
