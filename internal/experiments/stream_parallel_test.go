package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/trace"
)

// cellLegs runs the same rack-cell spec on the serial engine and under
// parallel windows at 1 and 8 workers, returning the three results in
// that order. Every leg shares the seed and topology; only the
// engine's execution strategy differs.
func cellLegs(t *testing.T, spec StreamSpec) [3]StreamResult {
	t.Helper()
	var out [3]StreamResult
	serial := spec
	serial.cellSerial = true
	out[0] = RunStream(serial)
	for i, workers := range []int{1, 8} {
		p := spec
		p.Parallel = workers
		out[i+1] = RunStream(p)
	}
	return out
}

// assertLegsIdentical pins the tentpole's invariance contract: a
// parallel-window run at any worker count produces exactly the serial
// rack-cell run's aggregates — the report, the overall fold, every
// per-class aggregate including the latency histogram (ClassStats is
// comparable, so == covers durHist), and the engine's event count.
func assertLegsIdentical(t *testing.T, legs [3]StreamResult) {
	t.Helper()
	names := []string{"serial", "workers=1", "workers=8"}
	ref := legs[0]
	if ref.Jobs < 10 || ref.Completed != ref.Jobs {
		t.Fatalf("serial leg: %d of %d jobs completed", ref.Completed, ref.Jobs)
	}
	if ref.SinkEvents < ref.Jobs*4 {
		t.Fatalf("serial leg: sink saw only %d events for %d jobs", ref.SinkEvents, ref.Jobs)
	}
	for i := 1; i < len(legs); i++ {
		leg := legs[i]
		if leg.Report() != ref.Report() {
			t.Fatalf("%s report differs from serial:\n--- serial ---\n%s--- %s ---\n%s",
				names[i], ref.Report(), names[i], leg.Report())
		}
		if leg.Events != ref.Events {
			t.Fatalf("%s processed %d events; serial processed %d", names[i], leg.Events, ref.Events)
		}
		if leg.Stats.Overall() != ref.Stats.Overall() {
			t.Fatalf("%s overall aggregate differs:\n%+v\nvs serial\n%+v",
				names[i], leg.Stats.Overall(), ref.Stats.Overall())
		}
		if !reflect.DeepEqual(leg.Stats.Classes(), ref.Stats.Classes()) {
			t.Fatalf("%s classes %v; serial %v", names[i], leg.Stats.Classes(), ref.Stats.Classes())
		}
		for _, class := range ref.Stats.Classes() {
			if leg.Stats.Class(class) != ref.Stats.Class(class) {
				t.Fatalf("%s class %s differs:\n%+v\nvs serial\n%+v",
					names[i], class, leg.Stats.Class(class), ref.Stats.Class(class))
			}
		}
	}
}

// TestStreamWindowInvariance is the core acceptance test of parallel
// serving: across three seeds, RunStream with EnableParallelWindows at
// 1 and 8 workers matches the serial rack-cell run exactly.
func TestStreamWindowInvariance(t *testing.T) {
	for _, seed := range []uint64{11, 12, 13} {
		assertLegsIdentical(t, cellLegs(t, smallStreamSpec(seed)))
	}
}

// churnSpec is the crash-churn fault schedule for the invariance test:
// rolling crash+restart waves across several racks (different nodes,
// overlapping windows), plus probabilistic shuffle-fetch and task
// attempt failures so the retry machinery runs inside windows too.
// Every crash restarts, so the stream still drains completely.
func churnSpec() *faults.Spec {
	s := &faults.Spec{
		FetchFailRate:   0.02,
		TaskAttemptFail: &faults.TaskAttemptFail{Rate: 0.02},
	}
	// smallStreamSpec topology: 24 racks × 8 nodes, node IDs contiguous
	// per rack. Crash one node in every third rack, staggered through
	// the first half of the horizon.
	for r := 0; r < 24; r += 3 {
		s.NodeCrashes = append(s.NodeCrashes, faults.NodeCrash{
			At:           100 + float64(r)*35,
			Node:         r*8 + (r/3)%8,
			RestartAfter: 300,
		})
	}
	return s
}

// TestStreamWindowInvarianceFaults re-runs the invariance contract
// under crash churn: node loss, re-replication, container reclaim, and
// probabilistic retries all happen on rack shards inside windows, and
// the aggregates still match the serial leg bit for bit. Tuned mode
// rides along so per-cell tuner recycling is exercised as well.
func TestStreamWindowInvarianceFaults(t *testing.T) {
	spec := smallStreamSpec(11)
	spec.Faults = churnSpec()
	spec.Tuned = true
	legs := cellLegs(t, spec)
	assertLegsIdentical(t, legs)
	if legs[0].Stats.Class("cluster").Jobs != 0 {
		t.Fatal("cluster pseudo-class should never finish jobs")
	}
}

// TestStreamParallelRejectsCrossCellState pins the guard rails: the
// rack-cell path refuses spec combinations that would share mutable
// state across cells.
func TestStreamParallelRejectsCrossCellState(t *testing.T) {
	mustPanic := func(name string, mutate func(*StreamSpec)) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: parallel stream did not panic", name)
			}
			msg := fmt.Sprint(r)
			if !strings.Contains(msg, "incompatible") && !strings.Contains(msg, "lookahead") {
				t.Fatalf("%s: unexpected panic %v", name, r)
			}
		}()
		spec := smallStreamSpec(11)
		spec.Parallel = 2
		mutate(&spec)
		RunStream(spec)
	}
	mustPanic("legacy", func(s *StreamSpec) { s.Legacy = true })
	mustPanic("warmstart", func(s *StreamSpec) { s.Tuned = true; s.WarmStart = true })
	mustPanic("sink", func(s *StreamSpec) { s.Sink = trace.Discard })
	mustPanic("lookahead", func(s *StreamSpec) { s.Lookahead = 2 * StreamSubmitDelaySecs })
}
