package experiments

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/tuner"
	"repro/internal/workload"
)

// smallTournamentSpec runs all registered backends on one full-size
// Table 3 app — big enough for every backend to complete multiple
// search waves, small enough for the race detector.
func smallTournamentSpec(t *testing.T) TournamentSpec {
	b, err := workload.ByName("wordcount/Wikipedia")
	if err != nil {
		t.Fatal(err)
	}
	return TournamentSpec{Apps: []workload.Benchmark{b}}
}

// TestTournamentShape checks every cell of a one-app tournament is
// structurally sound: evaluations and waves happened, costs are
// finite, the convergence metric lands inside the trajectory, the
// churn leg survived the crash spec, and the warm leg restarted in
// strictly fewer waves than the cold one.
func TestTournamentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament in -short mode")
	}
	rows := DefaultEnv().Tournament(smallTournamentSpec(t))
	if len(rows) != len(tuner.Backends()) {
		t.Fatalf("got %d rows, want one per backend (%d)", len(rows), len(tuner.Backends()))
	}
	for _, r := range rows {
		if r.Evals <= 0 || r.Waves <= 0 {
			t.Errorf("%s/%s: evals=%d waves=%d, want both > 0", r.Bench, r.Backend, r.Evals, r.Waves)
		}
		if math.IsInf(r.FinalCost, 0) || math.IsNaN(r.FinalCost) || r.FinalCost <= 0 {
			t.Errorf("%s/%s: final cost %v not finite positive", r.Bench, r.Backend, r.FinalCost)
		}
		if r.TestsTo15 < 1 || r.TestsTo15 > r.Evals {
			t.Errorf("%s/%s: TestsTo15=%d outside [1,%d]", r.Bench, r.Backend, r.TestsTo15, r.Evals)
		}
		if r.TunedDur <= 0 || r.TunedDur >= r.TestRunDur {
			t.Errorf("%s/%s: tuned run %vs not faster than test run %vs",
				r.Bench, r.Backend, r.TunedDur, r.TestRunDur)
		}
		if r.ChurnFailed {
			t.Errorf("%s/%s: churn leg failed under the crash spec", r.Bench, r.Backend)
		}
		if r.WarmWaves <= 0 || r.WarmWaves >= r.ColdWaves {
			t.Errorf("%s/%s: warm waves %d not strictly fewer than cold %d",
				r.Bench, r.Backend, r.WarmWaves, r.ColdWaves)
		}
	}
}

// TestTournamentDeterministic pins the same-seed contract across the
// parallelFor fan-out: cell results depend only on (app, backend,
// seed), never on scheduling order.
func TestTournamentDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament in -short mode")
	}
	spec := smallTournamentSpec(t)
	a := DefaultEnv().Tournament(spec)
	b := DefaultEnv().Tournament(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed tournaments differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestStreamWarmStartFewerWaves drives a near-serial single-class
// stream with WarmStart on: the first job of the class tunes cold, and
// every later job — seeded from the store entry the first one wrote —
// must issue strictly fewer test waves.
func TestStreamWarmStartFewerWaves(t *testing.T) {
	bench := workload.Terasort(60, 0, 0)
	spec := StreamSpec{
		Seed:         7,
		Racks:        24,
		NodesPerRack: 8,
		MeanPerHour:  6, // sparse arrivals: jobs run serially, so job 2 sees job 1's store entry
		HorizonSecs:  3 * 3600,
		MaxJobs:      3,
		Classes:      []StreamClass{{Weight: 1, Bench: bench}},
		Tuned:        true,
		WarmStart:    true,
	}
	res := RunStream(spec)
	waves := res.ClassWaves[bench.Name]
	if len(waves) != res.Completed || len(waves) < 2 {
		t.Fatalf("ClassWaves[%s] = %v for %d completed jobs", bench.Name, waves, res.Completed)
	}
	cold := waves[0]
	if cold <= 0 {
		t.Fatalf("cold job completed %d waves, want > 0", cold)
	}
	for i, w := range waves[1:] {
		if w >= cold {
			t.Fatalf("warm job %d issued %d waves, not fewer than the cold job's %d (all: %v)",
				i+2, w, cold, waves)
		}
	}
}

// TestStreamWarmStartBackends runs the same warm-start stream under
// every non-default backend: the plumbing (per-job tuner construction,
// store feedback, wave accounting) must be backend-agnostic.
func TestStreamWarmStartBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("backend sweep in -short mode")
	}
	bench := workload.Terasort(60, 0, 0)
	for _, backend := range []string{"spsa", "tpe"} {
		spec := StreamSpec{
			Seed:         7,
			Racks:        24,
			NodesPerRack: 8,
			MeanPerHour:  6,
			HorizonSecs:  3 * 3600,
			MaxJobs:      2,
			Classes:      []StreamClass{{Weight: 1, Bench: bench}},
			Tuned:        true,
			WarmStart:    true,
			Backend:      backend,
		}
		res := RunStream(spec)
		waves := res.ClassWaves[bench.Name]
		if len(waves) < 2 {
			t.Fatalf("%s: ClassWaves = %v, want 2 jobs", backend, waves)
		}
		if waves[1] >= waves[0] {
			t.Fatalf("%s: warm job issued %d waves, not fewer than cold %d", backend, waves[1], waves[0])
		}
	}
}
