package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/workload"
)

// BuildReport runs every artifact and assembles the visual report that
// cmd/mrexperiments -html writes: one chart or table per paper figure,
// in paper order, plus the extension studies.
func (e Env) BuildReport() *report.Document {
	doc := &report.Document{
		Title: "MRONLINE reproduction — results",
		Subtitle: "Every table and figure of 'MRONLINE: MapReduce Online Performance Tuning' " +
			"(HPDC'14), regenerated on the simulated 19-node cluster. Absolute seconds are " +
			"simulator time; shapes are the reproduction target (see EXPERIMENTS.md).",
	}

	// Table 3.
	t3 := &report.Table{Header: []string{"benchmark", "input GB", "shuffle GB (measured)", "output GB (measured)", "maps", "reduces", "type"}}
	for _, r := range e.Table3() {
		t3.Rows = append(t3.Rows, []string{
			r.Bench,
			fmt.Sprintf("%.1f", r.InputMB/1024),
			fmt.Sprintf("%.1f (%.1f)", r.ShuffleMB/1024, r.MeasShuffleMB/1024),
			fmt.Sprintf("%.1f (%.1f)", r.OutputMB/1024, r.MeasOutputMB/1024),
			fmt.Sprintf("%d", r.Maps), fmt.Sprintf("%d", r.Reduces), r.JobType,
		})
	}
	doc.AddTable("Table 3 — benchmark characteristics",
		"Paper volumes with measured values in parentheses.", t3)

	expSeries := []string{"Default", "Offline tuning", "MRONLINE"}
	addExpedited := func(title, caption string, rows []ExpeditedRow) {
		chart := &report.BarChart{YLabel: "job execution time (s)", Series: expSeries}
		spills := &report.BarChart{YLabel: "spilled records", Series: []string{"Optimal", "Default", "Offline", "MRONLINE"}, ValueFormat: "%.2g"}
		for _, r := range rows {
			chart.Groups = append(chart.Groups, report.BarGroup{
				Label: r.Bench, Values: []float64{r.DefaultDur, r.OfflineDur, r.MronlineDur}})
			spills.Groups = append(spills.Groups, report.BarGroup{
				Label: r.Bench, Values: []float64{r.OptimalSpills, r.DefaultSpills, r.OfflineSpills, r.MronlineSpills}})
		}
		doc.AddChart(title, caption, chart)
		doc.AddChart(title+" — spilled records",
			"Optimal is the combiner output record count (Figs 7–9 in the paper).", spills)
	}
	addExpedited("Figure 4 — Terasort, expedited test runs",
		"Aggressive gray-box tuning in one instrumented run, then re-run with the best configuration.",
		e.Fig4())
	addExpedited("Figure 5 — Wikipedia applications, expedited test runs", "", e.Fig5())
	addExpedited("Figure 6 — Freebase applications, expedited test runs", "", e.Fig6())

	addSingle := func(title string, rows []SingleRunRow) {
		chart := &report.BarChart{YLabel: "job execution time (s)", Series: []string{"Default", "MRONLINE"}}
		for _, r := range rows {
			chart.Groups = append(chart.Groups, report.BarGroup{
				Label: r.Bench, Values: []float64{r.DefaultDur, r.MronlineDur}})
		}
		doc.AddChart(title, "Conservative tuning co-executing with a single run (no test runs).", chart)
	}
	addSingle("Figure 10 — Terasort, fast single run", e.Fig10())
	addSingle("Figure 11 — Wikipedia applications, fast single run", e.Fig11())
	addSingle("Figure 12 — Freebase applications, fast single run", e.Fig12())

	sizes := &report.BarChart{YLabel: "job execution time (s)", Series: []string{"Default", "MRONLINE"}}
	for _, r := range e.Fig13() {
		sizes.Groups = append(sizes.Groups, report.BarGroup{
			Label: fmt.Sprintf("%dGB", r.SizeGB), Values: []float64{r.DefaultDur, r.MronlineDur}})
	}
	doc.AddChart("Figure 13 — job-size study",
		"Below ~10 GB the search cannot complete a sampling wave (m=24) and gains vanish.", sizes)

	mt := e.MultiTenant()
	doc.AddChart("Figure 14 — multi-tenant execution time",
		"Terasort 60 GB and BBP under fair-share scheduling; per-application tuning.",
		&report.BarChart{YLabel: "job execution time (s)", Series: []string{"Default", "MRONLINE"},
			Groups: []report.BarGroup{
				{Label: "Terasort", Values: []float64{mt.Default.Terasort.Duration, mt.Mronline.Terasort.Duration}},
				{Label: "BBP", Values: []float64{mt.Default.BBP.Duration, mt.Mronline.BBP.Duration}},
			}})
	util := func(pick func(MultiTenantRun) [4]float64) []report.BarGroup {
		d, m := pick(mt.Default), pick(mt.Mronline)
		labels := [4]string{"Terasort-m", "Terasort-r", "BBP-m", "BBP-r"}
		var out []report.BarGroup
		for i, l := range labels {
			out = append(out, report.BarGroup{Label: l, Values: []float64{d[i] * 100, m[i] * 100}})
		}
		return out
	}
	doc.AddChart("Figure 15 — multi-tenant memory utilization", "",
		&report.BarChart{YLabel: "utilization (%)", Series: []string{"Default", "MRONLINE"},
			Groups: util(func(r MultiTenantRun) [4]float64 {
				return [4]float64{r.Terasort.MapMemUtil, r.Terasort.ReduceMemUtil, r.BBP.MapMemUtil, r.BBP.ReduceMemUtil}
			})})
	doc.AddChart("Figure 16 — multi-tenant CPU utilization", "",
		&report.BarChart{YLabel: "utilization (%)", Series: []string{"Default", "MRONLINE"},
			Groups: util(func(r MultiTenantRun) [4]float64 {
				return [4]float64{r.Terasort.MapCPUUtil, r.Terasort.ReduceCPUUtil, r.BBP.MapCPUUtil, r.BBP.ReduceCPUUtil}
			})})

	tr := e.TestRunCounts(workload.Terasort(20, 0, 0), 4)
	doc.AddChart("Test runs to a tuned configuration (§7)",
		"MRONLINE finishes inside one instrumented run; a Gunther-style GA needs tens.",
		&report.BarChart{YLabel: "test runs", Series: []string{"runs"},
			Groups: []report.BarGroup{
				{Label: tr[0].Approach, Values: []float64{float64(tr[0].Runs)}},
				{Label: tr[1].Approach, Values: []float64{float64(tr[1].Runs)}},
			}})

	hs := e.HotSpotStudy(4)
	doc.AddChart("Extension — hot-spot avoidance",
		"Terasort 20 GB with 4 interfered nodes: blind placement vs utilization-aware placement.",
		&report.BarChart{YLabel: "job execution time (s)", Series: []string{"seconds"},
			Groups: []report.BarGroup{
				{Label: "clean cluster", Values: []float64{hs.CleanDur}},
				{Label: "hot, blind", Values: []float64{hs.DefaultDur}},
				{Label: "hot, avoiding", Values: []float64{hs.AvoidDur}},
			}})

	st := e.StragglerStudy(3)
	doc.AddChart("Extension — straggler mitigation",
		"Interference arrives mid-job: speculation re-runs stragglers elsewhere; replica-aware placement keeps HDFS writes off hot disks.",
		&report.BarChart{YLabel: "job execution time (s)", Series: []string{"seconds"},
			Groups: []report.BarGroup{
				{Label: "none", Values: []float64{st.NoneDur}},
				{Label: "speculation", Values: []float64{st.SpeculationDur}},
				{Label: "hot-spot avoidance", Values: []float64{st.AvoidanceDur}},
				{Label: "both", Values: []float64{st.BothDur}},
			}})

	am := e.Amortization(workload.Terasort(60, 0, 0), 8)
	amChart := &report.BarChart{YLabel: "cumulative time (s)",
		Series: []string{"Default every run", "Test run + knowledge base", "Conservative every run"}}
	for _, r := range am {
		amChart.Groups = append(amChart.Groups, report.BarGroup{
			Label:  fmt.Sprintf("%d", r.Runs),
			Values: []float64{r.CumulativeDefault, r.CumulativeMronline, r.CumulativeConserv},
		})
	}
	doc.AddChart("Extension — knowledge-base amortization (Terasort 60 GB)",
		"The aggressive test run costs more than one default run, then the stored configuration overtakes from the second run on.",
		amChart)

	js := e.JobStream(9, 30)
	doc.AddChart("Extension — multi-job arrival stream",
		"Nine mixed jobs with exponential arrivals under fair share, a conservative tuner attached to each.",
		&report.BarChart{YLabel: "seconds", Series: []string{"Default", "MRONLINE"},
			Groups: []report.BarGroup{
				{Label: "mean completion", Values: []float64{js.MeanDefault, js.MeanMronline}},
				{Label: "makespan", Values: []float64{js.MakespanDefault, js.MakespanMron}},
			}})

	sw := e.SeedSweep(workload.Terasort(60, 0, 0), 5)
	doc.AddChart("Robustness — expedited gain across 5 seeds (Terasort 60 GB)",
		fmt.Sprintf("mean %.0f%%, min %.0f%%, max %.0f%%, σ %.1f points",
			100*sw.MeanImp, 100*sw.MinImp, 100*sw.MaxImp, 100*sw.StdDev),
		&report.BarChart{YLabel: "improvement (%)", Series: []string{"percent"},
			Groups: []report.BarGroup{
				{Label: "min", Values: []float64{100 * sw.MinImp}},
				{Label: "mean", Values: []float64{100 * sw.MeanImp}},
				{Label: "max", Values: []float64{100 * sw.MaxImp}},
			}})

	return doc
}
