package hdfs

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestPruneKeepsAliasedReplicasNonNil pins the fix for a crash found
// by the tournament churn leg: mapreduce captures Split.Replicas by
// slice header into pending yarn.Request.PreferredNodes, so pruning a
// dead node's replica must never write nil into the backing array —
// a stale alias with the pre-prune length would hand the scheduler a
// nil node.
func TestPruneKeepsAliasedReplicasNonNil(t *testing.T) {
	eng, c, fs := newFS(t)
	f := fs.Create("input", 128*20)

	// Alias every block's replica list at its pre-crash length, the way
	// an already-issued container request does.
	aliases := make([][]*cluster.Node, len(f.Blocks))
	for i, b := range f.Blocks {
		aliases[i] = b.Replicas
	}
	victim := f.Blocks[0].Replicas[0]
	eng.At(1, func() { c.KillNode(victim) })
	eng.RunUntil(2) // before any re-replication repairs land

	for i, alias := range aliases {
		for j, n := range alias {
			if n == nil {
				t.Fatalf("block %d alias slot %d is nil after prune", f.Blocks[i].ID, j)
			}
		}
	}
}

// TestReReplicationRestoresRF kills a replica holder and checks the
// namenode re-replicates every under-replicated block back to full RF
// on surviving nodes.
func TestReReplicationRestoresRF(t *testing.T) {
	eng, c, fs := newFS(t)
	f := fs.Create("input", 128*20)

	victim := f.Blocks[0].Replicas[0]
	held := 0
	for _, b := range f.Blocks {
		if b.HasReplicaOn(victim) {
			held++
		}
	}
	if held == 0 {
		t.Fatal("victim holds no replicas")
	}

	eng.At(1, func() { c.KillNode(victim) })
	eng.Run()

	if got := c.Faults.ReplicasLost; got != held {
		t.Fatalf("ReplicasLost = %d, want %d", got, held)
	}
	if c.Faults.BlocksReReplicated != held {
		t.Fatalf("BlocksReReplicated = %d, want %d", c.Faults.BlocksReReplicated, held)
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) != fs.Replication {
			t.Fatalf("block %d has %d replicas, want %d", b.ID, len(b.Replicas), fs.Replication)
		}
		if b.HasReplicaOn(victim) {
			t.Fatalf("block %d still lists the dead node", b.ID)
		}
	}
}

// TestReadFailsOverToSurvivor starts a fault-tolerant read, kills the
// serving replica mid-transfer, and checks the read completes from a
// survivor.
func TestReadFailsOverToSurvivor(t *testing.T) {
	eng, c, fs := newFS(t)
	f := fs.Create("input", 128)
	b := f.Blocks[0]

	var reader *cluster.Node
	for _, n := range c.Nodes {
		if !b.HasReplicaOn(n) {
			reader = n
			break
		}
	}
	src := fs.closestReplica(b, reader)

	done := false
	op := fs.StartRead(b, reader, func() { done = true })
	op.OnFail = func() { t.Fatal("read reported permanent failure") }
	eng.At(0.5, func() { c.KillNode(src) })
	eng.Run()

	if !done {
		t.Fatal("read never completed after replica loss")
	}
	if c.Faults.ReadFailovers == 0 {
		t.Fatal("failover not counted")
	}
}

// TestReadFailsPermanentlyAtZeroReplicas kills every replica holder
// and checks OnFail fires instead of the read hanging forever.
func TestReadFailsPermanentlyAtZeroReplicas(t *testing.T) {
	eng, c, fs := newFS(t)
	// Shrink RF so killing all holders leaves survivors to read from.
	fs.Replication = 2
	f := fs.Create("input", 128)
	b := f.Blocks[0]

	var reader *cluster.Node
	for _, n := range c.Nodes {
		if !b.HasReplicaOn(n) {
			reader = n
			break
		}
	}
	holders := append([]*cluster.Node(nil), b.Replicas...)

	failed := false
	op := fs.StartRead(b, reader, func() { t.Fatal("read completed without replicas") })
	op.OnFail = func() { failed = true }
	eng.At(0.5, func() {
		for _, n := range holders {
			c.KillNode(n)
		}
	})
	eng.Run()

	if !failed {
		t.Fatal("OnFail never fired for a block with zero live replicas")
	}
}

// TestRestoredNodeServesNewReplicas checks a restarted node comes back
// empty but becomes a valid re-replication target again.
func TestRestoredNodeServesNewReplicas(t *testing.T) {
	eng := sim.NewEngine()
	// 4 nodes, RF capped at 3: after one node dies, repair has exactly
	// one target; after restore, placement may use it again.
	cfg := cluster.PaperConfig()
	cfg.RackSizes = []int{2, 2}
	c := cluster.New(eng, cfg)
	fs := New(c, sim.NewSource(1).Stream("hdfs"))

	f := fs.Create("input", 128*4)
	victim := f.Blocks[0].Replicas[0]
	eng.At(1, func() { c.KillNode(victim) })
	eng.At(100, func() { c.RestoreNode(victim) })
	eng.Run()

	for _, b := range f.Blocks {
		if len(b.Replicas) != fs.Replication {
			t.Fatalf("block %d has %d replicas, want %d", b.ID, len(b.Replicas), fs.Replication)
		}
	}
	if c.Faults.NodesRestored != 1 {
		t.Fatalf("NodesRestored = %d, want 1", c.Faults.NodesRestored)
	}
}
