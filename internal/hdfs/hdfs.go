// Package hdfs models the distributed file system under the MapReduce
// substrate: block placement with rack-aware replication, locality
// classification for the scheduler, and read/write data paths that
// exercise the cluster's disk and network channels.
package hdfs

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Locality classifies a reader's distance from a block replica.
type Locality int

const (
	NodeLocal Locality = iota
	RackLocal
	OffRack
)

func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case RackLocal:
		return "rack-local"
	default:
		return "off-rack"
	}
}

// Block is one HDFS block with its replica locations. Replicas only
// ever lists live nodes: when a node crashes the namenode prunes it
// from every block and re-replicates from the survivors (see repair.go).
type Block struct {
	ID       int
	SizeMB   float64
	Replicas []*cluster.Node

	repairing bool // a re-replication transfer is in flight
	// regIdx is the block's position in the namenode registry
	// (FileSystem.blocks), maintained so Remove is O(1) per block; -1
	// once deregistered.
	regIdx int
}

// File is a sequence of blocks.
type File struct {
	Name   string
	SizeMB float64
	Blocks []*Block
}

// FileSystem is the namenode + datanode ensemble.
type FileSystem struct {
	BlockSizeMB float64
	Replication int
	// HotThreshold, when positive, enables load-aware replica
	// selection: reads prefer replicas whose disk load is below the
	// threshold and writes prefer cold targets (HDFS's slow-datanode
	// avoidance, used by MRONLINE's hot-spot policy).
	HotThreshold float64
	// ReReplicationDelaySecs is how long the namenode waits after
	// losing replicas before re-replicating under-replicated blocks
	// (a scaled-down dfs.namenode.replication pending window).
	ReReplicationDelaySecs float64
	// OpRetryDelaySecs is the backoff before a fault-tolerant read or
	// write op (StartRead/StartWrite) retries after a replica died
	// mid-transfer.
	OpRetryDelaySecs float64

	c *cluster.Cluster
	// nodes is the datanode set this namenode places over: all of
	// c.Nodes for the stock constructor, one rack for NewScoped.
	nodes []*cluster.Node
	// faults is the counter sheet this namenode's shard may write.
	faults *metrics.FaultCounters
	// sys is the shard every namenode and op-state-machine event
	// carries: the system shard normally (HDFS is a cross-cutting
	// actor), the rack shard for a scoped namenode.
	sys     *sim.Shard
	rng     *rand.Rand
	nextID  int
	writeAt int // round-robin cursor for first-replica placement
	// blocks is the namenode's registry of every placed block, used
	// only by the failure path (replica pruning and re-replication).
	blocks          []*Block
	repairScheduled bool
	// scratch buffers for randomNode; the pick is consumed before the
	// next call, so the backing arrays are safe to reuse.
	scratchCand []*cluster.Node
	scratchCold []*cluster.Node
	// downNodes counts currently-crashed nodes; rackContig records
	// whether every rack's node IDs form one contiguous run (true for
	// homogeneous layouts, false for interleaved node classes). Together
	// they gate placeReplicas' arithmetic fast path, which must only run
	// when a candidate set can be indexed without scanning.
	downNodes  int
	rackContig bool
	// freeBlocks recycles Block objects (and their Replicas capacity)
	// from Removed files into new Creates, so a continuous job stream
	// stops allocating per-block state.
	freeBlocks []*Block
}

// New returns a file system over the cluster with the paper's layout:
// 128 MB blocks, 3-way replication (capped by cluster size).
func New(c *cluster.Cluster, rng *rand.Rand) *FileSystem {
	fs := newFileSystem(c, rng, c.Nodes, c.Sys(), c.Faults)
	fs.rackContig = true
	for _, r := range c.Racks {
		if len(r) == 0 || r[len(r)-1].ID-r[0].ID != len(r)-1 {
			fs.rackContig = false
			break
		}
	}
	c.SubscribeNodeState(fs.onNodeState)
	return fs
}

// NewScoped returns a namenode whose datanode set is exactly rack's
// nodes, scheduling on that rack's shard and writing the rack's fault
// counters — the rack-cell building block for parallel-window serving.
// Placement behaves like New over a single-rack cluster (no off-rack
// replica), which is the documented rack-cell difference from the
// cluster-wide namenode.
func NewScoped(c *cluster.Cluster, rng *rand.Rand, rack int) *FileSystem {
	nodes := c.Racks[rack]
	if len(nodes) == 0 {
		panic(fmt.Sprintf("hdfs: scoped namenode over empty rack %d", rack))
	}
	fs := newFileSystem(c, rng, nodes, c.RackShard(rack), c.FaultsFor(rack))
	// The contiguous-ID fast path indexes the cluster-wide node table;
	// a scoped namenode always takes the scan path over its own set.
	fs.rackContig = false
	c.SubscribeNodeStateRack(rack, fs.onNodeState)
	return fs
}

func newFileSystem(c *cluster.Cluster, rng *rand.Rand, nodes []*cluster.Node,
	sys *sim.Shard, faults *metrics.FaultCounters) *FileSystem {
	repl := 3
	if len(nodes) < repl {
		repl = len(nodes)
	}
	return &FileSystem{
		BlockSizeMB:            128,
		Replication:            repl,
		ReReplicationDelaySecs: 15,
		OpRetryDelaySecs:       2,
		c:                      c,
		nodes:                  nodes,
		faults:                 faults,
		sys:                    sys,
		rng:                    rng,
	}
}

// Create places a file of sizeMB across the cluster using the HDFS
// default placement policy: first replica on a round-robin "writer"
// node, second on a different rack, third on the second's rack.
func (fs *FileSystem) Create(name string, sizeMB float64) *File {
	return fs.CreateWithBlockSize(name, sizeMB, fs.BlockSizeMB)
}

// CreateWithBlockSize is Create with a per-file block size, used to
// model jobs whose input-split size differs from the filesystem
// default (the paper's corpora use ~137 MB splits).
func (fs *FileSystem) CreateWithBlockSize(name string, sizeMB, blockMB float64) *File {
	if sizeMB < 0 {
		panic(fmt.Sprintf("hdfs: negative file size %v", sizeMB))
	}
	if blockMB <= 0 {
		panic(fmt.Sprintf("hdfs: non-positive block size %v", blockMB))
	}
	f := &File{Name: name, SizeMB: sizeMB}
	remaining := sizeMB
	for remaining > 1e-9 {
		size := blockMB
		if remaining < size {
			size = remaining
		}
		writer := fs.nodes[fs.writeAt%len(fs.nodes)]
		fs.writeAt++
		for i := 0; writer.Down() && i < len(fs.nodes); i++ {
			writer = fs.nodes[fs.writeAt%len(fs.nodes)]
			fs.writeAt++
		}
		var b *Block
		if n := len(fs.freeBlocks); n > 0 {
			b = fs.freeBlocks[n-1]
			fs.freeBlocks[n-1] = nil
			fs.freeBlocks = fs.freeBlocks[:n-1]
			*b = Block{Replicas: b.Replicas[:0]}
		} else {
			b = &Block{}
		}
		b.ID, b.SizeMB, b.regIdx = fs.nextID, size, len(fs.blocks)
		b.Replicas = fs.placeReplicasInto(writer, b.Replicas[:0])
		fs.nextID++
		fs.blocks = append(fs.blocks, b)
		f.Blocks = append(f.Blocks, b) //mrlint:ignore retained-append bounded by file size; Remove releases the whole File and pools its blocks
		remaining -= size
	}
	return f
}

// Remove deletes the file's blocks from the namenode registry, so a
// finished job's input stops costing failure-path scans and the
// registry stays flat over a continuous job stream. Removing a file
// twice is a no-op. Remove transfers block ownership back to the
// filesystem: the blocks are recycled into future Creates, so the
// caller must be done with them — no reads in flight and no new reads
// started (the job layer removes a file only after every task that
// read it has finished).
func (fs *FileSystem) Remove(f *File) {
	for _, b := range f.Blocks {
		i := b.regIdx
		if i < 0 || i >= len(fs.blocks) || fs.blocks[i] != b {
			continue
		}
		last := len(fs.blocks) - 1
		fs.blocks[i] = fs.blocks[last]
		fs.blocks[i].regIdx = i
		fs.blocks[last] = nil
		fs.blocks = fs.blocks[:last]
		b.regIdx = -1
		// Recycle the block unless a repair transfer still references it
		// (it would append a replica to a reused object).
		if !b.repairing {
			for j := range b.Replicas {
				b.Replicas[j] = nil
			}
			b.Replicas = b.Replicas[:0]
			fs.freeBlocks = append(fs.freeBlocks, b)
		}
	}
}

func (fs *FileSystem) placeReplicas(first *cluster.Node) []*cluster.Node {
	return fs.placeReplicasInto(first, nil)
}

// placeReplicasInto is placeReplicas appending into buf (which must be
// empty), letting callers with recycled blocks reuse replica-slice
// capacity.
func (fs *FileSystem) placeReplicasInto(first *cluster.Node, buf []*cluster.Node) []*cluster.Node {
	if fs.HotThreshold <= 0 && fs.downNodes == 0 && fs.rackContig {
		if replicas := fs.placeReplicasFast(first, buf); replicas != nil {
			return replicas
		}
	}
	replicas := append(buf, first)
	if fs.Replication >= 2 {
		if second := fs.randomNode(func(n *cluster.Node) bool {
			return n.Rack != first.Rack
		}); second != nil {
			replicas = append(replicas, second)
			if fs.Replication >= 3 {
				if third := fs.randomNode(func(n *cluster.Node) bool {
					return n.Rack == second.Rack && n != second && n != first
				}); third != nil {
					replicas = append(replicas, third)
				}
			}
		} else if fs.Replication >= 2 {
			// Single-rack cluster: fall back to any other node.
			if second := fs.randomNode(func(n *cluster.Node) bool { return n != first }); second != nil {
				replicas = append(replicas, second)
			}
		}
	}
	return replicas
}

// placeReplicasFast is placeReplicas without the O(nodes) candidate
// scans. When no node is down and load-aware selection is off, the
// candidate set of each randomNode call is a pure function of rack
// membership, and candidates appear in node-ID order — so with
// contiguous per-rack ID runs the k-th candidate is index arithmetic.
// It consumes exactly the same rng.Intn draws (same bounds, same
// order) as the scan path and picks the same nodes, keeping
// same-seed runs byte-identical. Returns nil to fall back (single
// effective rack); the caller guarantees the gate conditions.
func (fs *FileSystem) placeReplicasFast(first *cluster.Node, buf []*cluster.Node) []*cluster.Node {
	nodes := fs.c.Nodes
	rack := fs.c.Racks[first.Rack]
	offRack := len(nodes) - len(rack)
	if fs.Replication < 2 {
		return append(buf, first)
	}
	if offRack == 0 {
		// Every other node shares first's rack: the scan path's
		// single-rack fallback applies. Let it run.
		return nil
	}
	// Second replica: the k-th node outside first's rack, in ID order.
	// The rack is one contiguous ID run, so indices below it map
	// straight through and indices at or past its start skip over it.
	k := fs.rng.Intn(offRack)
	if k >= rack[0].ID {
		k += len(rack)
	}
	second := nodes[k]
	replicas := append(buf, first, second)
	if fs.Replication >= 3 {
		// Third replica: a node in second's rack other than second
		// (first is in a different rack by construction). The scan path
		// draws only when the candidate set is non-empty.
		r2 := fs.c.Racks[second.Rack]
		if len(r2) > 1 {
			k := fs.rng.Intn(len(r2) - 1)
			if k >= second.ID-r2[0].ID {
				k++
			}
			replicas = append(replicas, r2[k])
		}
	}
	return replicas
}

func (fs *FileSystem) randomNode(ok func(*cluster.Node) bool) *cluster.Node {
	candidates, cold := fs.scratchCand[:0], fs.scratchCold[:0]
	for _, n := range fs.nodes {
		if n.Down() {
			continue
		}
		if ok(n) {
			candidates = append(candidates, n)
			if !fs.hot(n) {
				cold = append(cold, n)
			}
		}
	}
	fs.scratchCand, fs.scratchCold = candidates, cold
	if len(cold) > 0 {
		candidates = cold
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[fs.rng.Intn(len(candidates))]
}

// hot reports whether load-aware selection should avoid the node.
func (fs *FileSystem) hot(n *cluster.Node) bool {
	return fs.HotThreshold > 0 && n.DiskLoad() >= fs.HotThreshold
}

// Locality returns the best locality the reader has to any replica.
func (fs *FileSystem) Locality(b *Block, reader *cluster.Node) Locality {
	best := OffRack
	for _, r := range b.Replicas {
		switch {
		case r == reader:
			return NodeLocal
		case r.Rack == reader.Rack:
			best = RackLocal
		}
	}
	return best
}

// HasReplicaOn reports whether node holds a replica of b.
func (b *Block) HasReplicaOn(node *cluster.Node) bool {
	for _, r := range b.Replicas {
		if r == node {
			return true
		}
	}
	return false
}

// Read streams block b to the reader node: a local disk read when a
// replica is node-local, otherwise a pipelined remote read (source
// disk read in parallel with the network transfer; completion when
// both finish, approximating the streaming bottleneck). The returned
// flows let the caller cancel an in-flight read (speculative-attempt
// kills).
func (fs *FileSystem) Read(b *Block, reader *cluster.Node, done func()) []*cluster.Flow {
	if b.HasReplicaOn(reader) {
		return []*cluster.Flow{reader.DiskRead(b.SizeMB, done)}
	}
	src := fs.closestReplica(b, reader)
	remaining := 2
	child := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	return []*cluster.Flow{
		src.DiskRead(b.SizeMB, child),
		fs.c.Transfer(src, reader, b.SizeMB, child),
	}
}

func (fs *FileSystem) closestReplica(b *Block, reader *cluster.Node) *cluster.Node {
	var rackLocal, rackLocalCold, cold *cluster.Node
	for _, r := range b.Replicas {
		if !fs.hot(r) && cold == nil {
			cold = r
		}
		if r.Rack == reader.Rack {
			if rackLocal == nil {
				rackLocal = r
			}
			if !fs.hot(r) && rackLocalCold == nil {
				rackLocalCold = r
			}
		}
	}
	switch {
	case rackLocalCold != nil:
		return rackLocalCold
	case cold != nil:
		return cold
	case rackLocal != nil:
		return rackLocal
	}
	return b.Replicas[fs.rng.Intn(len(b.Replicas))]
}

// Write stores sizeMB of new data originating at node, running the
// replica pipeline: a local disk write plus, per extra replica, a
// network transfer and remote disk write, all in parallel (HDFS
// pipelines chunks through the replica chain). done fires when every
// replica is durable. It returns the replica nodes chosen and the
// in-flight flows (for cancellation).
func (fs *FileSystem) Write(node *cluster.Node, sizeMB float64, done func()) ([]*cluster.Node, []*cluster.Flow) {
	replicas := fs.placeReplicas(node)
	remaining := 0
	child := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	// Count the flows first so an early completion cannot fire done
	// prematurely.
	count := 0
	for i := range replicas {
		count++ // disk write at each replica
		if i > 0 {
			count++ // transfer from previous pipeline stage
		}
	}
	remaining = count
	if sizeMB == 0 {
		// Still asynchronous: model a metadata-only commit.
		fs.sys.After(0, func() {
			if done != nil {
				done()
			}
		})
		return replicas, nil
	}
	flows := make([]*cluster.Flow, 0, count)
	for i, r := range replicas {
		flows = append(flows, r.DiskWrite(sizeMB, child))
		if i > 0 {
			flows = append(flows, fs.c.Transfer(replicas[i-1], r, sizeMB, child))
		}
	}
	return replicas, flows
}
