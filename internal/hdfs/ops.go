package hdfs

import "repro/internal/cluster"

// Fault-tolerant data-path operations. StartRead and StartWrite wrap
// the plain Read/Write flow construction with failure handling: if a
// remote replica dies mid-transfer the operation restarts against the
// surviving replicas after OpRetryDelaySecs; if the local node (the
// reader or writer — i.e. the task's own container host) dies, the op
// goes quiet and lets YARN's node-loss path requeue the whole attempt.
// With no faults injected the flows created, their order, and the
// completion callbacks are identical to Read/Write, so fault tolerance
// costs nothing when it is not exercised.

// ReadOp is a cancellable, fault-tolerant block read.
type ReadOp struct {
	fs     *FileSystem
	b      *Block
	reader *cluster.Node
	done   func()

	// OnFail, when set, fires if the block becomes permanently
	// unreadable (every replica lost with no repair possible), letting
	// the owning task fail its attempt instead of hanging.
	OnFail func()

	flows    []*cluster.Flow
	left     int
	finished bool
	canceled bool
	retrying bool
}

// StartRead begins streaming block b to the reader node, like Read,
// but survives source-replica failure by failing over to another
// replica. done fires exactly once, when a full copy has streamed.
func (fs *FileSystem) StartRead(b *Block, reader *cluster.Node, done func()) *ReadOp {
	op := &ReadOp{fs: fs, b: b, reader: reader, done: done}
	op.start()
	return op
}

func (op *ReadOp) start() {
	op.retrying = false
	fs, b, reader := op.fs, op.b, op.reader
	if reader.Down() {
		return // the attempt is being requeued by the node-loss path
	}
	if len(b.Replicas) == 0 {
		if b.repairing {
			// A repair raced the last loss; wait for it to land.
			op.retry()
			return
		}
		// Every replica is gone and nothing can restore one: the data
		// is permanently lost. Fail the op instead of hanging. Deferred
		// one event so a caller assigning OnFail right after StartRead
		// still hears about a loss detected at start time.
		op.canceled = true
		fs.sys.After(0, func() {
			if op.OnFail != nil {
				op.OnFail()
			}
		})
		return
	}
	if b.HasReplicaOn(reader) {
		f := reader.DiskRead(b.SizeMB, op.child)
		f.SetOnAbort(op.aborted)
		op.left = 1
		op.flows = append(op.flows[:0], f)
		return
	}
	src := fs.closestReplica(b, reader)
	op.left = 2
	op.flows = append(op.flows[:0],
		src.DiskRead(b.SizeMB, op.child),
		fs.c.Transfer(src, reader, b.SizeMB, op.child),
	)
	for _, f := range op.flows {
		f.SetOnAbort(op.aborted)
	}
}

func (op *ReadOp) child() {
	if op.finished || op.canceled {
		return
	}
	op.left--
	if op.left == 0 {
		op.finished = true
		// Every flow of the wave has completed and the op is their sole
		// remaining holder (the fabric drops its reference on
		// completion), so hand them back to their fabrics' pools.
		for _, f := range op.flows {
			f.Recycle()
		}
		op.flows = op.flows[:0]
		if op.done != nil {
			op.done()
		}
	}
}

// aborted runs when any flow of the current wave was killed by a node
// crash. Both flows of a remote read can abort at the same instant
// (the source node carried both); retrying coalesces them.
func (op *ReadOp) aborted() {
	if op.finished || op.canceled || op.retrying {
		return
	}
	for _, f := range op.flows {
		f.Cancel()
	}
	op.flows = op.flows[:0]
	if op.reader.Down() {
		// The reader itself crashed: the attempt is being requeued by
		// the node-loss path; a fresh attempt issues a fresh read.
		return
	}
	op.fs.faults.ReadFailovers++
	op.retry()
}

func (op *ReadOp) retry() {
	op.retrying = true
	op.fs.sys.After(op.fs.OpRetryDelaySecs, func() {
		if op.finished || op.canceled {
			return
		}
		op.start()
	})
}

// Cancel aborts the read; done will not fire.
func (op *ReadOp) Cancel() {
	if op.finished || op.canceled {
		return
	}
	op.canceled = true
	for _, f := range op.flows {
		f.Cancel()
	}
	op.flows = nil
}

// WriteOp is a cancellable, fault-tolerant replica-pipeline write.
type WriteOp struct {
	fs     *FileSystem
	node   *cluster.Node
	sizeMB float64
	done   func()

	flows    []*cluster.Flow
	left     int
	finished bool
	canceled bool
	retrying bool
}

// StartWrite begins storing sizeMB originating at node through the
// replica pipeline, like Write, but survives the death of a downstream
// replica by rebuilding the pipeline from scratch on fresh targets.
// done fires exactly once, when every replica of a complete pipeline
// is durable.
func (fs *FileSystem) StartWrite(node *cluster.Node, sizeMB float64, done func()) *WriteOp {
	op := &WriteOp{fs: fs, node: node, sizeMB: sizeMB, done: done}
	op.start()
	return op
}

func (op *WriteOp) start() {
	op.retrying = false
	fs := op.fs
	if op.node.Down() {
		return // the attempt is being requeued by the node-loss path
	}
	replicas := fs.placeReplicas(op.node)
	count := 0
	for i := range replicas {
		count++ // disk write at each replica
		if i > 0 {
			count++ // transfer from previous pipeline stage
		}
	}
	op.left = count
	if op.sizeMB == 0 {
		fs.sys.After(0, func() {
			if op.finished || op.canceled {
				return
			}
			op.finished = true
			if op.done != nil {
				op.done()
			}
		})
		return
	}
	op.flows = op.flows[:0]
	for i, r := range replicas {
		op.flows = append(op.flows, r.DiskWrite(op.sizeMB, op.child))
		if i > 0 {
			op.flows = append(op.flows, fs.c.Transfer(replicas[i-1], r, op.sizeMB, op.child))
		}
	}
	for _, f := range op.flows {
		f.SetOnAbort(op.aborted)
	}
}

func (op *WriteOp) child() {
	if op.finished || op.canceled {
		return
	}
	op.left--
	if op.left == 0 {
		op.finished = true
		// As in ReadOp.child: the pipeline's flows are all complete and
		// exclusively ours — recycle before signalling completion.
		for _, f := range op.flows {
			f.Recycle()
		}
		op.flows = op.flows[:0]
		if op.done != nil {
			op.done()
		}
	}
}

func (op *WriteOp) aborted() {
	if op.finished || op.canceled || op.retrying {
		return
	}
	for _, f := range op.flows {
		f.Cancel()
	}
	op.flows = op.flows[:0]
	if op.node.Down() {
		// The writer crashed: the reduce attempt re-runs elsewhere and
		// re-writes its output in full.
		return
	}
	op.fs.faults.WriteRestarts++
	op.retrying = true
	op.fs.sys.After(op.fs.OpRetryDelaySecs, func() {
		if op.finished || op.canceled {
			return
		}
		op.start()
	})
}

// Cancel aborts the write; done will not fire.
func (op *WriteOp) Cancel() {
	if op.finished || op.canceled {
		return
	}
	op.canceled = true
	for _, f := range op.flows {
		f.Cancel()
	}
	op.flows = nil
}
