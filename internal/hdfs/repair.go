package hdfs

import "repro/internal/cluster"

// Namenode failure handling: when a datanode dies, its replicas are
// pruned from every block immediately (the namenode learns of the
// loss via the missed heartbeat, collapsed to one event here), and
// under-replicated blocks are queued for re-replication after
// ReReplicationDelaySecs. A restored node comes back empty — replicas
// it held are not resurrected; only re-replication restores the
// replication factor.

func (fs *FileSystem) onNodeState(n *cluster.Node, down bool) {
	if !down {
		fs.downNodes--
		// A fresh node is a new re-replication target: retry blocks
		// that previously had no viable destination.
		if fs.anyUnderReplicated() {
			fs.scheduleRepair()
		}
		return
	}
	fs.downNodes++
	lost := false
	for _, b := range fs.blocks {
		for i, r := range b.Replicas {
			if r == n {
				// Swap-delete, keeping the downed node in the backing
				// array past the new length: pending yarn.Requests alias
				// this slice as PreferredNodes (mapreduce captures
				// Split.Replicas by header), so the slot must stay a valid
				// node pointer, not nil — the scheduler tolerates a down
				// preference but not a nil one.
				last := len(b.Replicas) - 1
				b.Replicas[i], b.Replicas[last] = b.Replicas[last], b.Replicas[i]
				b.Replicas = b.Replicas[:last]
				fs.faults.ReplicasLost++
				lost = true
				break
			}
		}
	}
	if lost {
		fs.scheduleRepair()
	}
}

func (fs *FileSystem) anyUnderReplicated() bool {
	for _, b := range fs.blocks {
		if len(b.Replicas) < fs.Replication && len(b.Replicas) > 0 && !b.repairing {
			return true
		}
	}
	return false
}

// scheduleRepair arms one pending repair sweep; repeated calls before
// the sweep fires coalesce.
func (fs *FileSystem) scheduleRepair() {
	if fs.repairScheduled {
		return
	}
	fs.repairScheduled = true
	fs.sys.After(fs.ReReplicationDelaySecs, func() {
		fs.repairScheduled = false
		fs.repairSweep()
	})
}

// repairSweep starts one re-replication transfer per under-replicated
// block that has a live source and a viable target. Blocks with no
// live replica are permanently lost (nothing to copy from); blocks
// with no viable target wait for the next node-up event.
func (fs *FileSystem) repairSweep() {
	for _, b := range fs.blocks {
		if len(b.Replicas) >= fs.Replication || len(b.Replicas) == 0 || b.repairing {
			continue
		}
		fs.startRepair(b)
	}
}

// startRepair copies one new replica of b from its first live replica
// to a random node not already holding it: a source disk read, the
// network transfer, and the target disk write run as a pipeline. If
// either endpoint dies mid-copy the repair is rescheduled.
func (fs *FileSystem) startRepair(b *Block) {
	src := b.Replicas[0]
	dst := fs.randomNode(func(n *cluster.Node) bool {
		return !b.HasReplicaOn(n)
	})
	if dst == nil {
		return // no viable target right now; retried on node-up
	}
	b.repairing = true
	left := 3
	aborted := false
	var flows []*cluster.Flow
	child := func() {
		left--
		if left == 0 {
			b.repairing = false
			b.Replicas = append(b.Replicas, dst)
			fs.faults.BlocksReReplicated++
			if len(b.Replicas) < fs.Replication {
				fs.scheduleRepair()
			}
		}
	}
	onAbort := func() {
		if aborted || left == 0 {
			return
		}
		aborted = true
		for _, f := range flows {
			f.Cancel()
		}
		b.repairing = false
		if len(b.Replicas) > 0 {
			fs.scheduleRepair()
		}
	}
	flows = []*cluster.Flow{
		src.DiskRead(b.SizeMB, child),
		fs.c.Transfer(src, dst, b.SizeMB, child),
		dst.DiskWrite(b.SizeMB, child),
	}
	for _, f := range flows {
		f.SetOnAbort(onAbort)
	}
}
