package hdfs

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newFS(t *testing.T) (*sim.Engine, *cluster.Cluster, *FileSystem) {
	t.Helper()
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	fs := New(c, sim.NewSource(1).Stream("hdfs"))
	return eng, c, fs
}

func TestCreateBlockCount(t *testing.T) {
	_, _, fs := newFS(t)
	f := fs.Create("input", 1000)
	// 1000 MB / 128 MB = 7 full + 1 partial.
	if len(f.Blocks) != 8 {
		t.Fatalf("blocks = %d, want 8", len(f.Blocks))
	}
	total := 0.0
	for _, b := range f.Blocks {
		total += b.SizeMB
		if b.SizeMB > fs.BlockSizeMB {
			t.Fatalf("block %d oversize: %v", b.ID, b.SizeMB)
		}
	}
	if total != 1000 {
		t.Fatalf("total block size = %v, want 1000", total)
	}
}

func TestReplicationPolicy(t *testing.T) {
	_, _, fs := newFS(t)
	f := fs.Create("input", 128*20)
	for _, b := range f.Blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", b.ID, len(b.Replicas))
		}
		r0, r1, r2 := b.Replicas[0], b.Replicas[1], b.Replicas[2]
		if r0 == r1 || r1 == r2 || r0 == r2 {
			t.Fatalf("block %d has duplicate replica nodes", b.ID)
		}
		if r0.Rack == r1.Rack {
			t.Fatalf("block %d: second replica on writer's rack", b.ID)
		}
		if r1.Rack != r2.Rack {
			t.Fatalf("block %d: third replica not on second's rack", b.ID)
		}
	}
}

func TestBlocksSpreadAcrossNodes(t *testing.T) {
	_, c, fs := newFS(t)
	f := fs.Create("input", 128*float64(len(c.Nodes)))
	firstReplicas := map[int]int{}
	for _, b := range f.Blocks {
		firstReplicas[b.Replicas[0].ID]++
	}
	if len(firstReplicas) != len(c.Nodes) {
		t.Fatalf("round-robin placement covered %d nodes, want %d", len(firstReplicas), len(c.Nodes))
	}
}

func TestLocality(t *testing.T) {
	_, c, fs := newFS(t)
	f := fs.Create("input", 128)
	b := f.Blocks[0]
	if got := fs.Locality(b, b.Replicas[0]); got != NodeLocal {
		t.Fatalf("locality on replica holder = %v, want node-local", got)
	}
	// Find a node with no replica but sharing the first replica's rack.
	for _, n := range c.Nodes {
		if b.HasReplicaOn(n) {
			continue
		}
		got := fs.Locality(b, n)
		sameRack := false
		for _, r := range b.Replicas {
			if r.Rack == n.Rack {
				sameRack = true
			}
		}
		want := OffRack
		if sameRack {
			want = RackLocal
		}
		if got != want {
			t.Fatalf("locality for node %s = %v, want %v", n.Name, got, want)
		}
	}
}

func TestLocalReadUsesOnlyDisk(t *testing.T) {
	eng, _, fs := newFS(t)
	f := fs.Create("input", 90) // one block, 90 MB
	b := f.Blocks[0]
	var done float64
	fs.Read(b, b.Replicas[0], func() { done = eng.Now() })
	eng.Run()
	// 90 MB at 90 MB/s disk = 1 s, no network involvement.
	if done < 0.99 || done > 1.01 {
		t.Fatalf("local read took %v, want ~1", done)
	}
}

func TestRemoteReadSlowerThanLocal(t *testing.T) {
	eng, c, fs := newFS(t)
	f := fs.Create("input", 117)
	b := f.Blocks[0]
	var reader *cluster.Node
	for _, n := range c.Nodes {
		if !b.HasReplicaOn(n) {
			reader = n
			break
		}
	}
	var done float64
	fs.Read(b, reader, func() { done = eng.Now() })
	eng.Run()
	// Bottleneck is max(disk 117/90, net 117/117) = 1.3 s.
	if done < 1.29 || done > 1.4 {
		t.Fatalf("remote read took %v, want ~1.3", done)
	}
}

func TestWritePipeline(t *testing.T) {
	eng, c, fs := newFS(t)
	n := c.Nodes[0]
	var done float64
	replicas, _ := fs.Write(n, 90, func() { done = eng.Now() })
	eng.Run()
	if len(replicas) != 3 {
		t.Fatalf("write produced %d replicas, want 3", len(replicas))
	}
	if replicas[0] != n {
		t.Fatal("first replica not local")
	}
	// Local disk write of 90 MB at 90 MB/s = 1 s; transfers at 117 MB/s
	// are faster. Expect ~1 s, certainly under 2.
	if done < 0.99 || done > 2 {
		t.Fatalf("pipelined write took %v, want ~1", done)
	}
}

func TestZeroByteWrite(t *testing.T) {
	eng, c, fs := newFS(t)
	fired := false
	fs.Write(c.Nodes[0], 0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-byte write never completed")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	_, _, fs1 := newFS(t)
	_, _, fs2 := newFS(t)
	f1 := fs1.Create("input", 128*50)
	f2 := fs2.Create("input", 128*50)
	for i := range f1.Blocks {
		for j := range f1.Blocks[i].Replicas {
			if f1.Blocks[i].Replicas[j].ID != f2.Blocks[i].Replicas[j].ID {
				t.Fatalf("placement diverged at block %d replica %d", i, j)
			}
		}
	}
}

// Property: for any file size and any cluster, replicas are distinct
// nodes, at most Replication per block, and block sizes sum to the
// file size.
func TestPlacementProperty(t *testing.T) {
	f := func(sizeRaw uint16, seed int64) bool {
		eng := sim.NewEngine()
		c := cluster.New(eng, cluster.PaperConfig())
		fs := New(c, sim.NewSource(uint64(seed)).Stream("hdfs"))
		size := float64(sizeRaw%5000) + 0.5
		file := fs.Create("f", size)
		total := 0.0
		for _, b := range file.Blocks {
			total += b.SizeMB
			if len(b.Replicas) > fs.Replication || len(b.Replicas) == 0 {
				return false
			}
			seen := map[int]bool{}
			for _, r := range b.Replicas {
				if seen[r.ID] {
					return false
				}
				seen[r.ID] = true
			}
		}
		return total > size-1e-6 && total < size+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalityStrings(t *testing.T) {
	if NodeLocal.String() != "node-local" || RackLocal.String() != "rack-local" || OffRack.String() != "off-rack" {
		t.Fatal("Locality strings broken")
	}
}
