package yarn

import "repro/internal/cluster"

// Node liveness and blacklisting. The RM hears about crashes through
// the cluster's node-state subscription (the NodeManager heartbeat
// stream, collapsed to one edge-triggered event), but — like the real
// liveness monitor — waits NodeExpirySecs before declaring the node
// lost and reclaiming its containers. A node restored before expiry is
// still declared lost first: the restarted NodeManager resyncs with no
// live containers, so the RM must reclaim what it thought was running
// there (otherwise tasks whose flows died with the crash would wait
// forever). Blacklisting is the AM-side failure tracker: nodes hosting
// BlacklistThreshold task failures stop receiving placements until
// they next recover.

func (rm *ResourceManager) onNodeState(n *cluster.Node, down bool) {
	id := n.ID - rm.baseID
	if down {
		rm.nodeDown[id] = true
		rm.declaredLost[id] = false
		rm.downEpoch[id]++
		epoch := rm.downEpoch[id]
		rm.shard.After(rm.NodeExpirySecs, func() {
			if rm.nodeDown[id] && rm.downEpoch[id] == epoch && !rm.declaredLost[id] {
				rm.declareNodeLost(n)
			}
		})
		return
	}
	if !rm.declaredLost[id] {
		// Restored before expiry: NM resync reports no containers, so
		// reclaim the ones the RM still has booked there.
		rm.declareNodeLost(n)
	}
	rm.nodeDown[id] = false
	rm.downEpoch[id]++
	rm.declaredLost[id] = false
	rm.nodeFailures[id] = 0
	if rm.blacklisted[id] {
		rm.blacklisted[id] = false
		rm.blackCount--
		rm.faults.NodesUnblacklisted++
	}
	rm.kick()
}

// declareNodeLost reclaims every live container on the node — each
// owner is told through OnNodeLost (or OnPreempt as the fallback) and
// the container is released — then notifies each application master so
// it can handle node-scoped state (completed map outputs), and re-runs
// assignment for the freed demand.
func (rm *ResourceManager) declareNodeLost(n *cluster.Node) {
	rm.declaredLost[n.ID-rm.baseID] = true
	// Collect first: Release rewrites liveByApp. Iterating the apps
	// slice (never the map) keeps the reclaim order deterministic.
	var lost []*Container
	for _, app := range rm.apps {
		for _, c := range rm.liveByApp[app] {
			if c.Node == n && !c.released {
				lost = append(lost, c)
			}
		}
	}
	for _, c := range lost {
		rm.reclaimLost(c)
	}
	for _, app := range rm.apps {
		if app.OnNodeLost != nil {
			app.OnNodeLost(n)
		}
	}
	rm.kick()
}

// reclaimLost reclaims one container from a lost node.
func (rm *ResourceManager) reclaimLost(c *Container) {
	if c.released {
		return
	}
	rm.faults.ContainersLost++
	switch {
	case c.OnNodeLost != nil:
		c.OnNodeLost(c)
	case c.OnPreempt != nil:
		c.OnPreempt(c)
	}
	if !c.released {
		rm.Release(c)
	}
}

// ReportTaskFailure records a task failure hosted on node; reaching
// BlacklistThreshold failures blacklists the node until it next
// recovers. Failures on an already-down node are ignored (the whole
// node is being handled by the loss path).
func (rm *ResourceManager) ReportTaskFailure(n *cluster.Node) {
	id := n.ID - rm.baseID
	if rm.nodeDown[id] || rm.BlacklistThreshold <= 0 {
		return
	}
	rm.nodeFailures[id]++
	if !rm.blacklisted[id] && rm.nodeFailures[id] >= rm.BlacklistThreshold {
		rm.blacklisted[id] = true
		rm.blackCount++
		rm.faults.NodesBlacklisted++
	}
}

// Blacklisted reports whether the node is currently blacklisted.
func (rm *ResourceManager) Blacklisted(n *cluster.Node) bool {
	return rm.blacklisted[n.ID-rm.baseID]
}

// NodeDeclaredLost reports whether the node is down and its containers
// have been reclaimed (for tests).
func (rm *ResourceManager) NodeDeclaredLost(n *cluster.Node) bool {
	id := n.ID - rm.baseID
	return rm.nodeDown[id] && rm.declaredLost[id]
}
