package yarn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newRM(t *testing.T, sched Scheduler) (*sim.Engine, *cluster.Cluster, *ResourceManager) {
	t.Helper()
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := NewResourceManager(eng, c, sched)
	rm.SchedulingDelay = 0 // keep arithmetic simple in tests
	return eng, c, rm
}

func TestAllocateAndRelease(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	var got *Container
	app.Request(&Request{
		Resource:   Resource{MemMB: 1024, VCores: 1},
		OnAllocate: func(cont *Container) { got = cont },
	})
	eng.Run()
	if got == nil {
		t.Fatal("container never allocated")
	}
	if got.Node.Mem.Used() != 1024 {
		t.Fatalf("node memory used = %v, want 1024", got.Node.Mem.Used())
	}
	if app.Running() != 1 || app.UsedMemMB() != 1024 {
		t.Fatalf("app accounting wrong: running=%d used=%v", app.Running(), app.UsedMemMB())
	}
	rm.Release(got)
	eng.Run()
	if got.Node.Mem.Used() != 0 {
		t.Fatalf("memory not freed: %v", got.Node.Mem.Used())
	}
	if app.Running() != 0 {
		t.Fatalf("running = %d after release", app.Running())
	}
	_ = c
}

func TestDoubleReleasePanics(t *testing.T) {
	eng, _, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	var got *Container
	app.Request(&Request{Resource: Resource{MemMB: 512, VCores: 1}, OnAllocate: func(c *Container) { got = c }})
	eng.Run()
	rm.Release(got)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	rm.Release(got)
}

func TestMemoryCapacityLimitsConcurrency(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	allocated := 0
	// 6 GB per node, 18 nodes: 108 containers of 1 GB fit; request 150.
	for i := 0; i < 150; i++ {
		app.Request(&Request{
			Resource:   Resource{MemMB: 1024, VCores: 1},
			OnAllocate: func(*Container) { allocated++ },
		})
	}
	eng.Run()
	want := 6 * len(c.Nodes)
	if allocated != want {
		t.Fatalf("allocated %d containers, want %d", allocated, want)
	}
	if app.Pending() != 150-want {
		t.Fatalf("pending = %d, want %d", app.Pending(), 150-want)
	}
}

func TestVcoreCapacityLimitsConcurrency(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	allocated := 0
	// 28 vcores per node; 8-vcore, small-memory containers: 3 per node.
	for i := 0; i < 100; i++ {
		app.Request(&Request{
			Resource:   Resource{MemMB: 512, VCores: 8},
			OnAllocate: func(*Container) { allocated++ },
		})
	}
	eng.Run()
	want := (28 / 8) * len(c.Nodes)
	if allocated != want {
		t.Fatalf("allocated %d containers, want %d", allocated, want)
	}
}

func TestReleaseUnblocksQueued(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	var conts []*Container
	total := 6*len(c.Nodes) + 10
	for i := 0; i < total; i++ {
		app.Request(&Request{
			Resource:   Resource{MemMB: 1024, VCores: 1},
			OnAllocate: func(c *Container) { conts = append(conts, c) },
		})
	}
	eng.Run()
	first := len(conts)
	for _, c := range conts {
		rm.Release(c)
	}
	eng.Run()
	if len(conts) != first+10 {
		t.Fatalf("after releases, %d allocations, want %d", len(conts), first+10)
	}
}

func TestVariableSizedContainers(t *testing.T) {
	eng, _, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	shapes := []Resource{
		{MemMB: 512, VCores: 1},
		{MemMB: 1024, VCores: 2},
		{MemMB: 2048, VCores: 4},
	}
	for _, s := range shapes {
		s := s
		app.Request(&Request{Resource: s, OnAllocate: func(c *Container) {
			if c.Resource != s {
				t.Errorf("container shape %v, want %v", c.Resource, s)
			}
		}})
	}
	eng.Run()
	counts := map[Resource]int{}
	rm.EachShape(func(r Resource, n int) { counts[r] = n })
	for _, s := range shapes {
		if counts[s] != 1 {
			t.Errorf("shape %v count = %d, want 1", s, counts[s])
		}
	}
}

func TestLocalityPreference(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	want := c.Nodes[7]
	var got *Container
	app.Request(&Request{
		Resource:       Resource{MemMB: 1024, VCores: 1},
		PreferredNodes: []*cluster.Node{want},
		OnAllocate:     func(cont *Container) { got = cont },
	})
	eng.Run()
	if got == nil || got.Node != want {
		t.Fatalf("locality preference ignored: got %v, want %s", got.Node.Name, want.Name)
	}
}

func TestFIFOOrdering(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	a := rm.Submit("first", 1)
	b := rm.Submit("second", 1)
	capacity := 6 * len(c.Nodes)
	aGot, bGot := 0, 0
	for i := 0; i < capacity; i++ {
		a.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { aGot++ }})
	}
	for i := 0; i < 20; i++ {
		b.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { bGot++ }})
	}
	eng.Run()
	if aGot != capacity {
		t.Fatalf("FIFO first app got %d, want %d", aGot, capacity)
	}
	if bGot != 0 {
		t.Fatalf("FIFO second app got %d before first finished", bGot)
	}
}

func TestFairSharing(t *testing.T) {
	eng, c, rm := newRM(t, FairScheduler{})
	a := rm.Submit("a", 1)
	b := rm.Submit("b", 1)
	capacity := 6 * len(c.Nodes)
	aGot, bGot := 0, 0
	for i := 0; i < capacity; i++ {
		a.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { aGot++ }})
		b.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { bGot++ }})
	}
	eng.Run()
	if aGot+bGot != capacity {
		t.Fatalf("total = %d, want %d", aGot+bGot, capacity)
	}
	if aGot < capacity/2-2 || aGot > capacity/2+2 {
		t.Fatalf("fair split %d/%d not balanced", aGot, bGot)
	}
}

func TestFairWeights(t *testing.T) {
	eng, c, rm := newRM(t, FairScheduler{})
	a := rm.Submit("heavy", 3)
	b := rm.Submit("light", 1)
	capacity := 6 * len(c.Nodes)
	aGot, bGot := 0, 0
	for i := 0; i < capacity; i++ {
		a.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { aGot++ }})
		b.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { bGot++ }})
	}
	eng.Run()
	// Weight 3:1 should give roughly 3/4 of capacity to "heavy".
	if aGot < capacity*3/4-4 {
		t.Fatalf("weighted fair share: heavy got %d of %d", aGot, capacity)
	}
}

func TestCancelRequest(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	// Saturate the cluster so a later request stays pending.
	capacity := 6 * len(c.Nodes)
	for i := 0; i < capacity; i++ {
		app.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) {}})
	}
	fired := false
	req := &Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { fired = true }}
	app.Request(req)
	eng.Run()
	if !app.CancelRequest(req) {
		t.Fatal("CancelRequest failed for pending request")
	}
	eng.Run()
	if fired {
		t.Fatal("canceled request was allocated")
	}
	if app.CancelRequest(req) {
		t.Fatal("second cancel succeeded")
	}
}

func TestFinishDropsPending(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	a := rm.Submit("a", 1)
	b := rm.Submit("b", 1)
	capacity := 6 * len(c.Nodes)
	var aConts []*Container
	for i := 0; i < capacity+10; i++ {
		a.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(c *Container) { aConts = append(aConts, c) }})
	}
	bGot := 0
	for i := 0; i < 5; i++ {
		b.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { bGot++ }})
	}
	eng.Run()
	// Release a's containers and finish it; b should now be served.
	for _, c := range aConts {
		rm.Release(c)
	}
	a.Finish()
	eng.Run()
	if bGot != 5 {
		t.Fatalf("b got %d containers after a finished, want 5", bGot)
	}
}

func TestSchedulingDelayApplied(t *testing.T) {
	eng, _, rm := newRM(t, FIFOScheduler{})
	rm.SchedulingDelay = 2.5
	app := rm.Submit("job", 1)
	var at float64 = -1
	app.Request(&Request{Resource: Resource{MemMB: 512, VCores: 1}, OnAllocate: func(*Container) { at = eng.Now() }})
	eng.Run()
	if at != 2.5 {
		t.Fatalf("allocation callback at %v, want 2.5", at)
	}
}

func TestSchedulerNamesAndResourceString(t *testing.T) {
	if (FIFOScheduler{}).Name() != "fifo" || (FairScheduler{}).Name() != "fair" {
		t.Fatal("scheduler names broken")
	}
	r := Resource{MemMB: 1024, VCores: 2}
	if r.String() != "<1024MB,2vc>" {
		t.Fatalf("Resource.String = %q", r.String())
	}
}

func TestContainerCoreCap(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	var got *Container
	app.Request(&Request{Resource: Resource{MemMB: 512, VCores: 4}, OnAllocate: func(cc *Container) { got = cc }})
	eng.Run()
	want := 4 * c.Nodes[0].CoreRatio()
	if got.CoreCap() != want {
		t.Fatalf("CoreCap = %v, want %v", got.CoreCap(), want)
	}
}

func TestRMAccessors(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	if rm.Cluster() != c || rm.Engine() != eng {
		t.Fatal("RM accessors broken")
	}
}

func TestDelayedLocalityRelaxation(t *testing.T) {
	// Preferred node is full: the request must wait out RackDelay and
	// then place rack-locally, not immediately.
	eng, c, rm := newRM(t, FIFOScheduler{})
	rm.RackDelay = 4
	rm.OffRackDelay = 50
	app := rm.Submit("job", 1)
	target := c.Racks[0][0]
	// Fill the target node completely.
	filled := 0
	for i := 0; i < 6; i++ {
		app.Request(&Request{
			Resource:       Resource{MemMB: 1024, VCores: 1},
			PreferredNodes: []*cluster.Node{target},
			OnAllocate:     func(*Container) { filled++ },
		})
	}
	eng.Run()
	if filled != 6 {
		t.Fatalf("prefill placed %d", filled)
	}
	var at float64 = -1
	var where *cluster.Node
	app.Request(&Request{
		Resource:       Resource{MemMB: 1024, VCores: 1},
		PreferredNodes: []*cluster.Node{target},
		OnAllocate:     func(cc *Container) { at = eng.Now(); where = cc.Node },
	})
	eng.RunUntil(100)
	if at < 0 {
		t.Fatal("request never placed")
	}
	if at < 4 {
		t.Fatalf("placed at %v, before RackDelay expired", at)
	}
	if where.Rack != target.Rack {
		t.Fatalf("placed off-rack at %v despite rack capacity", at)
	}
}

// Property: under random request/release/cancel churn, allocated
// memory and vcores never exceed any node's capacity, and accounting
// returns to zero when everything is released.
func TestYarnChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng, c, rm := newRMQuiet(FairScheduler{})
		apps := []*App{rm.Submit("a", 1), rm.Submit("b", 2)}
		var live []*Container
		shapes := []Resource{{MemMB: 512, VCores: 1}, {MemMB: 1024, VCores: 2}, {MemMB: 2048, VCores: 4}}
		n := 30 + rng.Intn(60)
		for i := 0; i < n; i++ {
			at := rng.Float64() * 50
			app := apps[rng.Intn(len(apps))]
			shape := shapes[rng.Intn(len(shapes))]
			eng.At(at, func() {
				app.Request(&Request{Resource: shape, OnAllocate: func(cc *Container) {
					live = append(live, cc)
				}})
			})
			if rng.Intn(3) == 0 {
				eng.At(at+rng.Float64()*20, func() {
					if len(live) > 0 {
						cc := live[0]
						live = live[1:]
						rm.Release(cc)
					}
				})
			}
		}
		// Periodic capacity audit.
		ok := true
		audit := eng.Tick(5, func() bool {
			for _, node := range c.Nodes {
				if node.Mem.Used() > node.Mem.Capacity+1e-6 {
					ok = false
				}
			}
			return eng.Now() < 100
		})
		eng.Run()
		audit.Stop()
		// Drain everything.
		for _, cc := range live {
			rm.Release(cc)
		}
		eng.Run()
		for _, node := range c.Nodes {
			if node.Mem.Used() != 0 {
				// Containers still allocated are fine only if never
				// released; we released all we were given.
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// newRMQuiet is newRM without the *testing.T (for property functions).
func newRMQuiet(sched Scheduler) (*sim.Engine, *cluster.Cluster, *ResourceManager) {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.PaperConfig())
	rm := NewResourceManager(eng, c, sched)
	rm.SchedulingDelay = 0
	return eng, c, rm
}
