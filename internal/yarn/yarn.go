// Package yarn models the YARN resource management layer: a resource
// manager tracking per-node capacity, applications submitting
// container requests, and pluggable scheduling (FIFO and fair share).
//
// Following MRONLINE's system-level extension (paper §4), container
// requests carry their own resource shape, so every task can run in a
// different-sized container; the stock YARN restriction of one fixed
// size per task type does not exist here.
package yarn

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Resource is a container shape: memory plus virtual cores.
type Resource struct {
	MemMB  float64
	VCores int
}

func (r Resource) String() string {
	return fmt.Sprintf("<%gMB,%dvc>", r.MemMB, r.VCores)
}

// Container is an allocated slice of one node.
type Container struct {
	ID       int
	Node     *cluster.Node
	Resource Resource
	App      *App
	// OnPreempt is copied from the granting request.
	OnPreempt func(*Container)
	released  bool
}

// CoreCap returns the physical-core allowance of the container
// (vcores × the node's core ratio), the cgroup-style CPU cap used by
// compute flows.
func (c *Container) CoreCap() float64 {
	return float64(c.Resource.VCores) * c.Node.CoreRatio()
}

// Request asks for one container of a given shape. PreferredNodes
// expresses data locality (the input split's replica holders); the
// scheduler relaxes node-local → rack-local → off-rack.
type Request struct {
	Resource       Resource
	PreferredNodes []*cluster.Node
	// OnAllocate runs when a container is granted. It must eventually
	// lead to Release.
	OnAllocate func(*Container)
	// OnPreempt, if set, is invoked when the resource manager preempts
	// the granted container: stop its work; the RM releases it.
	OnPreempt func(*Container)

	app      *App
	seq      int
	index    int // position in the app's pending list
	enqueued float64
}

// App is an application registered with the resource manager.
type App struct {
	ID     int
	Name   string
	Weight float64 // fair-share weight

	rm        *ResourceManager
	pending   []*Request
	usedMemMB float64
	usedVC    int
	running   int
	finished  bool
}

// UsedMemMB returns the memory currently allocated to the app.
func (a *App) UsedMemMB() float64 { return a.usedMemMB }

// Running returns the app's live container count.
func (a *App) Running() int { return a.running }

// Pending returns the number of unsatisfied requests.
func (a *App) Pending() int { return len(a.pending) }

// Scheduler picks which application gets the next free capacity.
type Scheduler interface {
	// Pick returns the index into apps of the application to serve
	// next on node, or -1 if none should be served. Only apps with at
	// least one pending request that fits the node are candidates.
	Pick(apps []*App, node *cluster.Node) int
	Name() string
}

// ResourceManager owns cluster capacity and runs the allocation loop.
type ResourceManager struct {
	eng   *sim.Engine
	c     *cluster.Cluster
	sched Scheduler

	apps        []*App
	nextAppID   int
	nextContID  int
	nextReqSeq  int
	assignCur   int // round-robin node cursor
	assigning   bool
	shapeCounts map[Resource]int // the §4 "hash map" of container shapes
	vcUsed      map[*cluster.Node]int
	liveByApp   map[*App][]*Container
	preemptions int
	// SchedulingDelay adds latency between a container becoming
	// available and the task launch, modelling heartbeat granularity.
	SchedulingDelay float64
	// RackDelay and OffRackDelay implement delay scheduling: a request
	// with node preferences accepts a rack-local (resp. off-rack)
	// placement only after waiting this long.
	RackDelay    float64
	OffRackDelay float64
	// NodeFilter, when set, vetoes placements on nodes it rejects
	// (MRONLINE's hot-spot avoidance: the tuner installs a filter that
	// skips nodes with saturated disk or CPU). A request that has
	// waited longer than HotSpotFallbackDelay may place on a filtered
	// node anyway, so a fully hot cluster cannot starve.
	NodeFilter           func(*cluster.Node) bool
	HotSpotFallbackDelay float64
}

// NewResourceManager returns an RM over the cluster with the given
// scheduling policy.
func NewResourceManager(eng *sim.Engine, c *cluster.Cluster, sched Scheduler) *ResourceManager {
	return &ResourceManager{
		eng: eng, c: c, sched: sched,
		shapeCounts:     make(map[Resource]int),
		vcUsed:          make(map[*cluster.Node]int),
		liveByApp:       make(map[*App][]*Container),
		SchedulingDelay: 0.5,
		RackDelay:       2,
		OffRackDelay:    5,

		HotSpotFallbackDelay: 15,
	}
}

// Cluster returns the managed cluster.
func (rm *ResourceManager) Cluster() *cluster.Cluster { return rm.c }

// Engine returns the simulation engine.
func (rm *ResourceManager) Engine() *sim.Engine { return rm.eng }

// Submit registers a new application.
func (rm *ResourceManager) Submit(name string, weight float64) *App {
	if weight <= 0 {
		weight = 1
	}
	app := &App{ID: rm.nextAppID, Name: name, Weight: weight, rm: rm}
	rm.nextAppID++
	rm.apps = append(rm.apps, app)
	return app
}

// Finish deregisters the app. Outstanding requests are dropped;
// containers must already have been released.
func (a *App) Finish() {
	if a.finished {
		return
	}
	a.finished = true
	a.pending = nil
	apps := a.rm.apps[:0]
	for _, app := range a.rm.apps {
		if app != a {
			apps = append(apps, app)
		}
	}
	a.rm.apps = apps
	a.rm.kick()
}

// Request enqueues a container request and triggers assignment.
func (a *App) Request(req *Request) {
	if a.finished {
		panic(fmt.Sprintf("yarn: request on finished app %s", a.Name))
	}
	if req.Resource.MemMB <= 0 || req.Resource.VCores <= 0 {
		panic(fmt.Sprintf("yarn: invalid container shape %v", req.Resource))
	}
	req.app = a
	req.seq = a.rm.nextReqSeq
	a.rm.nextReqSeq++
	req.index = len(a.pending)
	req.enqueued = a.rm.eng.Now()
	a.pending = append(a.pending, req)
	a.rm.kick()
}

// CancelRequest removes a not-yet-satisfied request.
func (a *App) CancelRequest(req *Request) bool {
	for i, r := range a.pending {
		if r == req {
			a.pending = append(a.pending[:i], a.pending[i+1:]...)
			for j := i; j < len(a.pending); j++ {
				a.pending[j].index = j
			}
			return true
		}
	}
	return false
}

// Release frees a container's resources and re-runs assignment.
func (rm *ResourceManager) Release(c *Container) {
	if c.released {
		panic(fmt.Sprintf("yarn: double release of container %d", c.ID))
	}
	c.released = true
	c.Node.Mem.Release(c.Resource.MemMB)
	rm.vcUsed[c.Node] -= c.Resource.VCores
	live := rm.liveByApp[c.App]
	for i, lc := range live {
		if lc == c {
			rm.liveByApp[c.App] = append(live[:i], live[i+1:]...)
			break
		}
	}
	c.App.usedMemMB -= c.Resource.MemMB
	c.App.usedVC -= c.Resource.VCores
	c.App.running--
	rm.kick()
}

// ShapeCounts returns how many containers of each distinct resource
// shape have been allocated, mirroring the paper's hash-map bookkeeping
// for different-sized containers.
func (rm *ResourceManager) ShapeCounts() map[Resource]int {
	out := make(map[Resource]int, len(rm.shapeCounts))
	for k, v := range rm.shapeCounts {
		out[k] = v
	}
	return out
}

// kick schedules an assignment pass; multiple kicks in one instant
// coalesce.
func (rm *ResourceManager) kick() {
	if rm.assigning {
		return
	}
	rm.assigning = true
	rm.eng.After(0, func() {
		rm.assigning = false
		rm.assign()
	})
}

// fits reports whether a request shape fits node's free capacity.
// YARN accounts vcores logically; the cluster model enforces the CPU
// cap physically via flow rate caps.
func (rm *ResourceManager) fits(node *cluster.Node, r Resource) bool {
	return node.Mem.CanAllocate(r.MemMB) && rm.vcUsed[node]+r.VCores <= node.VCores
}

// assign walks nodes round-robin, letting the scheduler pick an app
// for each node with free capacity, until no more placements succeed.
func (rm *ResourceManager) assign() {
	n := len(rm.c.Nodes)
	if n == 0 {
		return
	}
	placedAny := false
	pass := func(useFilter bool, minAge float64) {
		progress := true
		for progress {
			progress = false
			for i := 0; i < n; i++ {
				node := rm.c.Nodes[(rm.assignCur+i)%n]
				if useFilter && rm.NodeFilter != nil && !rm.NodeFilter(node) {
					continue
				}
				idx := rm.sched.Pick(rm.apps, node)
				if idx < 0 {
					continue
				}
				app := rm.apps[idx]
				req := rm.selectRequest(app, node, minAge)
				if req == nil {
					continue
				}
				rm.place(app, req, node)
				progress = true
				placedAny = true
			}
			rm.assignCur = (rm.assignCur + 1) % n
		}
	}
	pass(true, 0)
	if !placedAny && rm.NodeFilter != nil && rm.hasPending() {
		// Nothing placed on acceptable nodes: requests that have waited
		// past the fallback delay may take a hot node rather than
		// stall the job.
		pass(false, rm.HotSpotFallbackDelay)
	}
	rm.scheduleRelaxRetry()
}

func (rm *ResourceManager) hasPending() bool {
	for _, app := range rm.apps {
		if len(app.pending) > 0 {
			return true
		}
	}
	return false
}

// scheduleRelaxRetry arranges another assignment pass when a pending
// locality-restricted request's delay-scheduling timer next expires;
// without it a request could wait for a release forever even though
// relaxation would let it place off-node.
func (rm *ResourceManager) scheduleRelaxRetry() {
	now := rm.eng.Now()
	earliest := -1.0
	for _, app := range rm.apps {
		for _, req := range app.pending {
			expiries := []float64{}
			if len(req.PreferredNodes) > 0 {
				expiries = append(expiries, req.enqueued+rm.RackDelay, req.enqueued+rm.OffRackDelay)
			}
			if rm.NodeFilter != nil {
				expiries = append(expiries, req.enqueued+rm.HotSpotFallbackDelay)
			}
			for _, expiry := range expiries {
				if expiry > now && (earliest < 0 || expiry < earliest) {
					earliest = expiry
				}
			}
		}
	}
	if earliest > now {
		rm.eng.At(earliest, func() { rm.kick() })
	}
}

// selectRequest picks the app's best pending request for the node:
// node-local first; rack-local and off-rack placements are accepted
// only after the request has waited past the delay-scheduling
// thresholds.
func (rm *ResourceManager) selectRequest(app *App, node *cluster.Node, minAge float64) *Request {
	now := rm.eng.Now()
	var rackLocal, relaxed, unconstrained *Request
	for _, req := range app.pending {
		if !rm.fits(node, req.Resource) {
			continue
		}
		if minAge > 0 && now-req.enqueued < minAge {
			continue
		}
		if len(req.PreferredNodes) == 0 {
			if unconstrained == nil {
				unconstrained = req
			}
			continue
		}
		waited := now - req.enqueued
		sameRack := false
		for _, pref := range req.PreferredNodes {
			if pref == node {
				return req
			}
			if pref.Rack == node.Rack {
				sameRack = true
			}
		}
		if sameRack && waited >= rm.RackDelay && rackLocal == nil {
			rackLocal = req
		}
		if waited >= rm.OffRackDelay && relaxed == nil {
			relaxed = req
		}
	}
	if rackLocal != nil {
		return rackLocal
	}
	if relaxed != nil {
		return relaxed
	}
	return unconstrained
}

func (rm *ResourceManager) place(app *App, req *Request, node *cluster.Node) {
	if err := node.Mem.Allocate(req.Resource.MemMB); err != nil {
		panic(fmt.Sprintf("yarn: placement race: %v", err))
	}
	rm.vcUsed[node] += req.Resource.VCores
	if !app.CancelRequest(req) {
		panic("yarn: placed request not pending")
	}
	cont := &Container{ID: rm.nextContID, Node: node, Resource: req.Resource, App: app, OnPreempt: req.OnPreempt}
	rm.nextContID++
	rm.liveByApp[app] = append(rm.liveByApp[app], cont)
	app.usedMemMB += req.Resource.MemMB
	app.usedVC += req.Resource.VCores
	app.running++
	rm.shapeCounts[req.Resource]++
	delay := rm.SchedulingDelay
	rm.eng.After(delay, func() {
		if req.OnAllocate != nil {
			req.OnAllocate(cont)
		}
	})
}
