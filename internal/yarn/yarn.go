// Package yarn models the YARN resource management layer: a resource
// manager tracking per-node capacity, applications submitting
// container requests, and pluggable scheduling (FIFO and fair share).
//
// Following MRONLINE's system-level extension (paper §4), container
// requests carry their own resource shape, so every task can run in a
// different-sized container; the stock YARN restriction of one fixed
// size per task type does not exist here.
package yarn

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Resource is a container shape: memory plus virtual cores.
type Resource struct {
	MemMB  float64
	VCores int
}

func (r Resource) String() string {
	return fmt.Sprintf("<%gMB,%dvc>", r.MemMB, r.VCores)
}

// Container is an allocated slice of one node.
type Container struct {
	ID       int
	Node     *cluster.Node
	Resource Resource
	App      *App
	// OnPreempt is copied from the granting request.
	OnPreempt func(*Container)
	// OnNodeLost is copied from the granting request; see Request.
	OnNodeLost func(*Container)
	released   bool
}

// CoreCap returns the physical-core allowance of the container
// (vcores × the node's core ratio), the cgroup-style CPU cap used by
// compute flows.
func (c *Container) CoreCap() float64 {
	return float64(c.Resource.VCores) * c.Node.CoreRatio()
}

// Request asks for one container of a given shape. PreferredNodes
// expresses data locality (the input split's replica holders); the
// scheduler relaxes node-local → rack-local → off-rack.
type Request struct {
	Resource       Resource
	PreferredNodes []*cluster.Node
	// OnAllocate runs when a container is granted. It must eventually
	// lead to Release.
	OnAllocate func(*Container)
	// OnPreempt, if set, is invoked when the resource manager preempts
	// the granted container: stop its work; the RM releases it.
	OnPreempt func(*Container)
	// OnNodeLost, if set, is invoked when the container's node is
	// declared lost: the work is gone; the RM releases the container.
	// When unset, OnPreempt is used as the fallback notification.
	OnNodeLost func(*Container)

	app      *App
	seq      int
	index    int // position in the app's pending list
	enqueued float64
}

// shapeCount tracks how many pending requests share one resource shape.
// Distinct shapes stay few (one per task type per configuration wave),
// so a linear scan beats hashing on the placement hot path.
type shapeCount struct {
	r Resource
	n int
}

// addShape records one more pending request of shape r.
func addShape(shapes []shapeCount, r Resource) []shapeCount {
	for i := range shapes {
		if shapes[i].r == r {
			shapes[i].n++
			return shapes
		}
	}
	return append(shapes, shapeCount{r: r, n: 1})
}

// removeShape drops one pending request of shape r (swap-removing the
// entry when its count reaches zero; shape-set queries are
// order-independent).
func removeShape(shapes []shapeCount, r Resource) []shapeCount {
	for i := range shapes {
		if shapes[i].r == r {
			shapes[i].n--
			if shapes[i].n == 0 {
				last := len(shapes) - 1
				shapes[i] = shapes[last]
				shapes = shapes[:last]
			}
			return shapes
		}
	}
	panic(fmt.Sprintf("yarn: removing untracked pending shape %v", r))
}

// App is an application registered with the resource manager.
type App struct {
	ID     int
	Name   string
	Weight float64 // fair-share weight

	// OnNodeLost, if set, is invoked after a lost node's containers
	// have been reclaimed, so the application master can handle
	// node-scoped state it kept there (completed map outputs).
	OnNodeLost func(*cluster.Node)

	rm      *ResourceManager
	pending []*Request
	// pendingShapes summarizes pending by distinct resource shape, so
	// fitting checks touch shapes instead of every request.
	pendingShapes []shapeCount
	usedMemMB     float64
	usedVC        int
	running       int
	finished      bool
}

// UsedMemMB returns the memory currently allocated to the app.
func (a *App) UsedMemMB() float64 { return a.usedMemMB }

// Running returns the app's live container count.
func (a *App) Running() int { return a.running }

// Pending returns the number of unsatisfied requests.
func (a *App) Pending() int { return len(a.pending) }

// Scheduler picks which application gets the next free capacity.
type Scheduler interface {
	// Pick returns the index into apps of the application to serve
	// next on node, or -1 if none should be served. Only apps with at
	// least one pending request that fits the node are candidates.
	Pick(apps []*App, node *cluster.Node) int
	Name() string
}

// ResourceManager owns cluster capacity and runs the allocation loop.
// The stock constructor manages the whole cluster from the system
// shard; NewScopedResourceManager manages one rack from that rack's
// shard (the rack-cell serving layout), with the same behavior over
// its node subset.
type ResourceManager struct {
	eng   *sim.Engine
	shard *sim.Shard // system shard, or the rack shard for a scoped RM
	c     *cluster.Cluster
	sched Scheduler

	// nodes is the managed node set (all of c.Nodes, or one rack);
	// baseID rebases the dense per-node arrays onto it, and faults is
	// the counter sheet this RM's shard may write.
	nodes  []*cluster.Node
	baseID int
	faults *metrics.FaultCounters
	// totalMemMB caches container memory across the managed nodes.
	totalMemMB float64

	apps        []*App
	nextAppID   int
	nextContID  int
	nextReqSeq  int
	assignCur   int // round-robin node cursor
	assigning   bool
	kickFn      func()           // cached kick callback (one closure per RM, not per kick)
	shapeCounts map[Resource]int // the §4 "hash map" of container shapes
	// shapeOrder records first-allocation order of distinct shapes so
	// EachShape iterates deterministically.
	shapeOrder []Resource
	liveByApp  map[*App][]*Container
	// Free-capacity index: per-node used/capacity arrays keyed by the
	// dense Node.ID, mirroring each node's MemPool arithmetic exactly so
	// that fits() is two array loads instead of a method call plus a map
	// probe. nodeUsedMem tracks MemPool.used bit-for-bit (yarn is the
	// pool's only writer); the pool itself still sees every
	// Allocate/Release for its utilization meters.
	nodeCapMem  []float64
	nodeUsedMem []float64
	nodeUsedVC  []int
	nodeVCores  []int
	// pendingShapes aggregates all apps' pending shapes; totalPending
	// counts pending requests so assign can skip empty passes.
	pendingShapes []shapeCount
	totalPending  int
	// Placement-possibility index for assign's node skip: prefNode[id]
	// counts pending requests that prefer node id, prefRack[r] counts
	// pending requests with at least one preference in rack r (one per
	// preferred node, so decrements mirror increments without dedup),
	// and unconstrained counts pending requests with no preference.
	// While every constrained request is still inside its delay-
	// scheduling window, a node with no preference pointing at it (or
	// at its rack, once rack-eligible) cannot receive a placement, and
	// the sweep skips it without consulting the scheduler.
	prefNode      []int
	prefRack      []int
	unconstrained int
	// retryAt is the expiry of the latest scheduled relax-retry wakeup
	// (-1 when none); duplicate wakeups at the same instant coalesce.
	retryAt        float64
	retryScheduled int
	preemptions    int
	// SchedulingDelay adds latency between a container becoming
	// available and the task launch, modelling heartbeat granularity.
	SchedulingDelay float64
	// RackDelay and OffRackDelay implement delay scheduling: a request
	// with node preferences accepts a rack-local (resp. off-rack)
	// placement only after waiting this long.
	RackDelay    float64
	OffRackDelay float64
	// NodeFilter, when set, vetoes placements on nodes it rejects
	// (MRONLINE's hot-spot avoidance: the tuner installs a filter that
	// skips nodes with saturated disk or CPU). A request that has
	// waited longer than HotSpotFallbackDelay may place on a filtered
	// node anyway, so a fully hot cluster cannot starve.
	NodeFilter           func(*cluster.Node) bool
	HotSpotFallbackDelay float64

	// Node liveness and blacklisting (see nodestate.go). All slices are
	// keyed by the dense Node.ID like the capacity mirrors above.
	nodeDown     []bool
	declaredLost []bool   // containers already reclaimed this down-epoch
	downEpoch    []uint64 // guards stale expiry timers across transitions
	blacklisted  []bool
	nodeFailures []int
	blackCount   int // number of currently blacklisted nodes
	// NodeExpirySecs is how long a node must stay down before the RM
	// declares it lost and reclaims its containers (the NM liveness
	// monitor's expiry interval, scaled to simulation time).
	NodeExpirySecs float64
	// BlacklistThreshold is how many task failures a node may host
	// before the scheduler stops placing on it
	// (mapreduce.job.maxtaskfailures.per.tracker). Zero disables
	// blacklisting.
	BlacklistThreshold int
}

// NewResourceManager returns an RM over the whole cluster with the
// given scheduling policy, scheduling on the system shard.
func NewResourceManager(eng *sim.Engine, c *cluster.Cluster, sched Scheduler) *ResourceManager {
	rm := newResourceManager(eng, c, sched, c.Nodes, c.Sys(), c.Faults)
	c.SubscribeNodeState(rm.onNodeState)
	return rm
}

// NewScopedResourceManager returns an RM that manages exactly rack's
// nodes, scheduling on that rack's shard and writing the rack's fault
// counters — the rack-cell building block for parallel-window serving.
// It requires the rack's node IDs to be contiguous (true for the
// homogeneous RackSizes layout) and, for fault delivery, the cluster
// to be in RackLocalNet mode.
func NewScopedResourceManager(eng *sim.Engine, c *cluster.Cluster, sched Scheduler, rack int) *ResourceManager {
	nodes := c.Racks[rack]
	if len(nodes) == 0 {
		panic(fmt.Sprintf("yarn: scoped RM over empty rack %d", rack))
	}
	rm := newResourceManager(eng, c, sched, nodes, c.RackShard(rack), c.FaultsFor(rack))
	c.SubscribeNodeStateRack(rack, rm.onNodeState)
	return rm
}

func newResourceManager(eng *sim.Engine, c *cluster.Cluster, sched Scheduler,
	nodes []*cluster.Node, shard *sim.Shard, faults *metrics.FaultCounters) *ResourceManager {
	rm := &ResourceManager{
		eng: eng, shard: shard, c: c, sched: sched,
		nodes: nodes, faults: faults,
		shapeCounts:     make(map[Resource]int),
		liveByApp:       make(map[*App][]*Container),
		SchedulingDelay: 0.5,
		RackDelay:       2,
		OffRackDelay:    5,

		HotSpotFallbackDelay: 15,
		retryAt:              -1,

		NodeExpirySecs:     30,
		BlacklistThreshold: 3,
	}
	rm.baseID = nodes[0].ID
	n := len(nodes)
	rm.nodeCapMem = make([]float64, n)
	rm.nodeUsedMem = make([]float64, n)
	rm.nodeUsedVC = make([]int, n)
	rm.nodeVCores = make([]int, n)
	for i, node := range nodes {
		if node.ID != rm.baseID+i {
			panic(fmt.Sprintf("yarn: node %s has ID %d at index %d (base %d); managed node IDs must be contiguous",
				node.Name, node.ID, i, rm.baseID))
		}
		rm.nodeCapMem[i] = node.Mem.Capacity
		rm.nodeUsedMem[i] = node.Mem.Used()
		rm.nodeVCores[i] = node.VCores
		rm.totalMemMB += node.Mem.Capacity
	}
	rm.nodeDown = make([]bool, n)
	rm.declaredLost = make([]bool, n)
	rm.downEpoch = make([]uint64, n)
	rm.blacklisted = make([]bool, n)
	rm.nodeFailures = make([]int, n)
	rm.prefNode = make([]int, n)
	rm.prefRack = make([]int, len(c.Racks))
	rm.kickFn = func() {
		rm.assigning = false
		rm.assign()
	}
	return rm
}

// Cluster returns the managed cluster.
func (rm *ResourceManager) Cluster() *cluster.Cluster { return rm.c }

// Nodes returns the managed node set: the whole cluster for the stock
// RM, one rack for a scoped RM.
func (rm *ResourceManager) Nodes() []*cluster.Node { return rm.nodes }

// TotalContainerMemMB returns container memory across the managed
// nodes. Consumers sizing against the RM (the mapreduce AM's reduce
// slot estimate) must use this, not the cluster-wide total, so a
// scoped RM is sized like the rack it owns.
func (rm *ResourceManager) TotalContainerMemMB() float64 { return rm.totalMemMB }

// FaultCounters returns the counter sheet the RM and the jobs it runs
// must write: the cluster-wide sheet for the stock RM, the rack's own
// sheet for a scoped RM (so rack-shard callbacks never share state).
func (rm *ResourceManager) FaultCounters() *metrics.FaultCounters { return rm.faults }

// Engine returns the simulation engine.
func (rm *ResourceManager) Engine() *sim.Engine { return rm.eng }

// Shard returns the system shard the RM schedules on; the AMs and job
// state machines it drives share this affinity.
func (rm *ResourceManager) Shard() *sim.Shard { return rm.shard }

// Submit registers a new application.
func (rm *ResourceManager) Submit(name string, weight float64) *App {
	if weight <= 0 {
		weight = 1
	}
	app := &App{ID: rm.nextAppID, Name: name, Weight: weight, rm: rm}
	rm.nextAppID++
	rm.apps = append(rm.apps, app)
	return app
}

// Finish deregisters the app. Outstanding requests are dropped;
// containers must already have been released.
func (a *App) Finish() {
	if a.finished {
		return
	}
	a.finished = true
	for _, req := range a.pending {
		a.rm.pendingShapes = removeShape(a.rm.pendingShapes, req.Resource)
		a.rm.totalPending--
		a.rm.indexRequest(req, -1)
	}
	a.pending = nil
	a.pendingShapes = nil
	// All containers were released before Finish (precondition above),
	// so the live list is empty — drop the map entry so a long stream of
	// finished apps does not grow liveByApp forever.
	delete(a.rm.liveByApp, a)
	apps := a.rm.apps[:0]
	for _, app := range a.rm.apps {
		if app != a {
			apps = append(apps, app)
		}
	}
	a.rm.apps = apps
	a.rm.kick()
}

// Request enqueues a container request and triggers assignment.
func (a *App) Request(req *Request) {
	if a.finished {
		panic(fmt.Sprintf("yarn: request on finished app %s", a.Name))
	}
	if req.Resource.MemMB <= 0 || req.Resource.VCores <= 0 {
		panic(fmt.Sprintf("yarn: invalid container shape %v", req.Resource))
	}
	req.app = a
	req.seq = a.rm.nextReqSeq
	a.rm.nextReqSeq++
	req.index = len(a.pending)
	req.enqueued = a.rm.shard.Now()
	a.pending = append(a.pending, req)
	a.pendingShapes = addShape(a.pendingShapes, req.Resource)
	a.rm.pendingShapes = addShape(a.rm.pendingShapes, req.Resource)
	a.rm.totalPending++
	a.rm.indexRequest(req, 1)
	a.rm.kick()
}

// CancelRequest removes a not-yet-satisfied request.
func (a *App) CancelRequest(req *Request) bool {
	for i, r := range a.pending {
		if r == req {
			a.pending = append(a.pending[:i], a.pending[i+1:]...)
			for j := i; j < len(a.pending); j++ {
				a.pending[j].index = j
			}
			a.pendingShapes = removeShape(a.pendingShapes, req.Resource)
			a.rm.pendingShapes = removeShape(a.rm.pendingShapes, req.Resource)
			a.rm.totalPending--
			a.rm.indexRequest(req, -1)
			return true
		}
	}
	return false
}

// Release frees a container's resources and re-runs assignment.
func (rm *ResourceManager) Release(c *Container) {
	if c.released {
		panic(fmt.Sprintf("yarn: double release of container %d", c.ID))
	}
	c.released = true
	c.Node.Mem.Release(c.Resource.MemMB)
	id := c.Node.ID - rm.baseID
	rm.nodeUsedMem[id] -= c.Resource.MemMB
	if rm.nodeUsedMem[id] < 0 {
		rm.nodeUsedMem[id] = 0 // mirrors MemPool.Release's clamp
	}
	rm.nodeUsedVC[id] -= c.Resource.VCores
	live := rm.liveByApp[c.App]
	for i, lc := range live {
		if lc == c {
			rm.liveByApp[c.App] = append(live[:i], live[i+1:]...)
			break
		}
	}
	c.App.usedMemMB -= c.Resource.MemMB
	c.App.usedVC -= c.Resource.VCores
	c.App.running--
	rm.kick()
}

// ShapeCounts returns how many containers of each distinct resource
// shape have been allocated, mirroring the paper's hash-map bookkeeping
// for different-sized containers. Each call copies the map; use
// EachShape to iterate without allocating.
func (rm *ResourceManager) ShapeCounts() map[Resource]int {
	out := make(map[Resource]int, len(rm.shapeCounts))
	for k, v := range rm.shapeCounts {
		out[k] = v
	}
	return out
}

// EachShape calls fn for every allocated container shape and its count,
// in first-allocation order, without allocating.
func (rm *ResourceManager) EachShape(fn func(r Resource, count int)) {
	for _, r := range rm.shapeOrder {
		fn(r, rm.shapeCounts[r])
	}
}

// RetryWakeupsScheduled returns how many relax-retry wakeup events have
// been scheduled (after coalescing), for tests.
func (rm *ResourceManager) RetryWakeupsScheduled() int { return rm.retryScheduled }

// kick schedules an assignment pass; multiple kicks in one instant
// coalesce.
func (rm *ResourceManager) kick() {
	if rm.assigning {
		return
	}
	rm.assigning = true
	rm.shard.After(0, rm.kickFn)
}

// indexRequest adds (delta=+1) or removes (delta=-1) one pending
// request from the placement-possibility index.
func (rm *ResourceManager) indexRequest(req *Request, delta int) {
	if len(req.PreferredNodes) == 0 {
		rm.unconstrained += delta
		return
	}
	for _, n := range req.PreferredNodes {
		rm.prefNode[n.ID-rm.baseID] += delta
		rm.prefRack[n.Rack] += delta
	}
}

// oldestConstrainedEnqueue returns the enqueue time of the oldest
// pending request that has node preferences, or -1 when none is
// pending. O(total pending), called once per assignment pass.
func (rm *ResourceManager) oldestConstrainedEnqueue() float64 {
	oldest := -1.0
	for _, app := range rm.apps {
		for _, req := range app.pending {
			if len(req.PreferredNodes) > 0 && (oldest < 0 || req.enqueued < oldest) {
				oldest = req.enqueued
			}
		}
	}
	return oldest
}

// fits reports whether a request shape fits node's free capacity.
// YARN accounts vcores logically; the cluster model enforces the CPU
// cap physically via flow rate caps. The memory comparison replicates
// MemPool.CanAllocate (mb <= Capacity-used+1e-9) against the RM's
// mirror arrays.
func (rm *ResourceManager) fits(node *cluster.Node, r Resource) bool {
	id := node.ID - rm.baseID
	return r.MemMB <= rm.nodeCapMem[id]-rm.nodeUsedMem[id]+1e-9 &&
		rm.nodeUsedVC[id]+r.VCores <= rm.nodeVCores[id]
}

// anyPendingFits reports whether any pending request shape, across all
// apps, fits node — the cheap pre-filter that lets assign skip nodes no
// scheduler could place on.
func (rm *ResourceManager) anyPendingFits(node *cluster.Node) bool {
	for i := range rm.pendingShapes {
		if rm.fits(node, rm.pendingShapes[i].r) {
			return true
		}
	}
	return false
}

// assign walks nodes round-robin, letting the scheduler pick an app
// for each node with free capacity, until no more placements succeed.
func (rm *ResourceManager) assign() {
	n := len(rm.nodes)
	if n == 0 {
		return
	}
	if rm.totalPending == 0 {
		// An empty pass places nothing but still rotates the round-robin
		// cursor once (the progress loop runs exactly once).
		rm.assignCur = (rm.assignCur + 1) % n
		return
	}
	placedAny := false
	// When a third or more of the cluster is blacklisted, ignore the
	// blacklist rather than starve (the AM node-blacklisting ignore
	// threshold, 33% in Hadoop).
	ignoreBlacklist := rm.blackCount*3 >= n
	// Delay-scheduling eligibility for the whole pass: while no
	// unconstrained request is pending and every constrained request is
	// younger than the rack (resp. off-rack) threshold, only preferred
	// nodes (resp. their racks) can receive a placement. assign runs at
	// one instant and placements only remove requests, so computing
	// this once up front errs, if at all, toward scanning a node the
	// sweep could have skipped — never toward skipping a placeable one.
	now := rm.shard.Now()
	oldest := rm.oldestConstrainedEnqueue()
	rackEligible := oldest >= 0 && now-oldest >= rm.RackDelay
	offRackEligible := oldest >= 0 && now-oldest >= rm.OffRackDelay
	pass := func(useFilter bool, minAge float64) {
		progress := true
		for progress {
			progress = false
			for i := 0; i < n; i++ {
				if rm.totalPending == 0 {
					// The last placement drained the pending set; the rest
					// of the sweep cannot place anything. Bailing here is
					// behavior-identical (anyPendingFits would reject every
					// remaining node, and the cursor rotates after the loop
					// either way) but turns the common one-request case on
					// a 10k-node cluster from O(nodes) into O(1).
					break
				}
				node := rm.nodes[(rm.assignCur+i)%n]
				nid := node.ID - rm.baseID
				if rm.nodeDown[nid] || (rm.blacklisted[nid] && !ignoreBlacklist) {
					continue
				}
				if rm.unconstrained == 0 && !offRackEligible &&
					rm.prefNode[nid] == 0 &&
					(!rackEligible || rm.prefRack[node.Rack] == 0) {
					// No request may place here: selectRequest would
					// return nil for every app the scheduler could pick,
					// and neither Pick nor selectRequest has side effects.
					continue
				}
				if useFilter && rm.NodeFilter != nil && !rm.NodeFilter(node) {
					continue
				}
				if !rm.anyPendingFits(node) {
					continue // no scheduler could place here
				}
				idx := rm.sched.Pick(rm.apps, node)
				if idx < 0 {
					continue
				}
				app := rm.apps[idx]
				req := rm.selectRequest(app, node, minAge)
				if req == nil {
					continue
				}
				rm.place(app, req, node)
				progress = true
				placedAny = true
			}
			rm.assignCur = (rm.assignCur + 1) % n
		}
	}
	pass(true, 0)
	if !placedAny && rm.NodeFilter != nil && rm.hasPending() {
		// Nothing placed on acceptable nodes: requests that have waited
		// past the fallback delay may take a hot node rather than
		// stall the job.
		pass(false, rm.HotSpotFallbackDelay)
	}
	rm.scheduleRelaxRetry()
}

func (rm *ResourceManager) hasPending() bool {
	for _, app := range rm.apps {
		if len(app.pending) > 0 {
			return true
		}
	}
	return false
}

// scheduleRelaxRetry arranges another assignment pass when a pending
// locality-restricted request's delay-scheduling timer next expires;
// without it a request could wait for a release forever even though
// relaxation would let it place off-node. A wakeup already queued for
// exactly the chosen instant makes a second one redundant — the
// duplicate's kick would find assigning already set — so it is
// coalesced away.
func (rm *ResourceManager) scheduleRelaxRetry() {
	now := rm.shard.Now()
	earliest := -1.0
	for _, app := range rm.apps {
		for _, req := range app.pending {
			if len(req.PreferredNodes) > 0 {
				if e := req.enqueued + rm.RackDelay; e > now && (earliest < 0 || e < earliest) {
					earliest = e
				}
				if e := req.enqueued + rm.OffRackDelay; e > now && (earliest < 0 || e < earliest) {
					earliest = e
				}
			}
			if rm.NodeFilter != nil {
				if e := req.enqueued + rm.HotSpotFallbackDelay; e > now && (earliest < 0 || e < earliest) {
					earliest = e
				}
			}
		}
	}
	if earliest > now && rm.retryAt != earliest {
		at := earliest
		rm.retryAt = at
		rm.retryScheduled++
		rm.shard.At(at, func() {
			if rm.retryAt == at {
				rm.retryAt = -1
			}
			rm.kick()
		})
	}
}

// selectRequest picks the app's best pending request for the node:
// node-local first; rack-local and off-rack placements are accepted
// only after the request has waited past the delay-scheduling
// thresholds.
func (rm *ResourceManager) selectRequest(app *App, node *cluster.Node, minAge float64) *Request {
	now := rm.shard.Now()
	var rackLocal, relaxed, unconstrained *Request
	for _, req := range app.pending {
		if !rm.fits(node, req.Resource) {
			continue
		}
		if minAge > 0 && now-req.enqueued < minAge {
			continue
		}
		if len(req.PreferredNodes) == 0 {
			if unconstrained == nil {
				unconstrained = req
			}
			continue
		}
		waited := now - req.enqueued
		sameRack := false
		for _, pref := range req.PreferredNodes {
			if pref == node {
				return req
			}
			if pref.Rack == node.Rack {
				sameRack = true
			}
		}
		if sameRack && waited >= rm.RackDelay && rackLocal == nil {
			rackLocal = req
		}
		if waited >= rm.OffRackDelay && relaxed == nil {
			relaxed = req
		}
	}
	if rackLocal != nil {
		return rackLocal
	}
	if relaxed != nil {
		return relaxed
	}
	return unconstrained
}

func (rm *ResourceManager) place(app *App, req *Request, node *cluster.Node) {
	if err := node.Mem.Allocate(req.Resource.MemMB); err != nil {
		panic(fmt.Sprintf("yarn: placement race: %v", err))
	}
	nid := node.ID - rm.baseID
	rm.nodeUsedMem[nid] += req.Resource.MemMB // mirrors MemPool.Allocate
	rm.nodeUsedVC[nid] += req.Resource.VCores
	if !app.CancelRequest(req) {
		panic("yarn: placed request not pending")
	}
	cont := &Container{ID: rm.nextContID, Node: node, Resource: req.Resource, App: app,
		OnPreempt: req.OnPreempt, OnNodeLost: req.OnNodeLost}
	rm.nextContID++
	rm.liveByApp[app] = append(rm.liveByApp[app], cont)
	app.usedMemMB += req.Resource.MemMB
	app.usedVC += req.Resource.VCores
	app.running++
	if rm.shapeCounts[req.Resource] == 0 {
		rm.shapeOrder = append(rm.shapeOrder, req.Resource) //mrlint:ignore retained-append bounded by distinct container shapes ever seen (a handful)
	}
	rm.shapeCounts[req.Resource]++
	delay := rm.SchedulingDelay
	// Copy the callback out of the request: once the request leaves the
	// pending list the caller may reuse the object (the mapreduce AM
	// embeds it in the task and re-populates it per attempt), so the
	// deferred launch must not read through req.
	onAllocate := req.OnAllocate
	rm.shard.After(delay, func() {
		if cont.released {
			return // reclaimed by a node-loss declaration in the window
		}
		if rm.nodeDown[nid] {
			// The node died inside the scheduling-delay window; the
			// launch never happens. Reclaim the container right away
			// (its loss notification would otherwise wait for expiry).
			rm.reclaimLost(cont)
			return
		}
		if onAllocate != nil {
			onAllocate(cont)
		}
	})
}
