package yarn

import (
	"math"
	"sort"
)

// Fair-share preemption: when an application starves below a fraction
// of its weighted fair share while others run above theirs, the
// resource manager kills the over-share application's newest
// containers and reassigns the capacity — YARN's fair-scheduler
// preemption, which keeps the paper's multi-tenant scenario responsive
// when a long job has already filled the cluster.

// PreemptionConfig tunes the policy.
type PreemptionConfig struct {
	// CheckInterval between evaluations (seconds).
	CheckInterval float64
	// StarvationFraction: an app with pending demand is starved when
	// its memory share is below this fraction of its fair share.
	StarvationFraction float64
	// MaxKillsPerRound bounds disruption per check.
	MaxKillsPerRound int
}

// DefaultPreemption mirrors common fair-scheduler settings.
func DefaultPreemption() PreemptionConfig {
	return PreemptionConfig{CheckInterval: 10, StarvationFraction: 0.5, MaxKillsPerRound: 4}
}

// EnablePreemption starts the periodic check. The ticker stops itself
// once no applications remain (so simulations drain); enable again
// after submitting a new batch if needed.
func (rm *ResourceManager) EnablePreemption(cfg PreemptionConfig) {
	if cfg.CheckInterval <= 0 {
		cfg = DefaultPreemption()
	}
	rm.shard.Tick(cfg.CheckInterval, func() bool {
		if len(rm.apps) == 0 {
			return false
		}
		rm.preemptRound(cfg)
		return true
	})
}

// preemptRound kills up to MaxKillsPerRound containers from over-share
// apps when starved demand exists.
func (rm *ResourceManager) preemptRound(cfg PreemptionConfig) {
	total := rm.c.TotalContainerMemMB()
	var weightSum float64
	for _, app := range rm.apps {
		if app.running > 0 || len(app.pending) > 0 {
			weightSum += app.Weight
		}
	}
	if weightSum == 0 {
		return
	}
	share := func(app *App) float64 { return total * app.Weight / weightSum }

	starvedDemand := 0.0
	for _, app := range rm.apps {
		if len(app.pending) > 0 && app.usedMemMB < cfg.StarvationFraction*share(app) {
			starvedDemand += math.Min(pendingMemMB(app), share(app)-app.usedMemMB)
		}
	}
	if starvedDemand <= 0 {
		return
	}

	// Victims: apps above their fair share, most over-share first.
	victims := make([]*App, 0, len(rm.apps))
	for _, app := range rm.apps {
		if app.usedMemMB > share(app) {
			victims = append(victims, app)
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		return victims[i].usedMemMB-share(victims[i]) > victims[j].usedMemMB-share(victims[j])
	})

	kills := 0
	for _, victim := range victims {
		for kills < cfg.MaxKillsPerRound && starvedDemand > 0 && victim.usedMemMB > share(victim) {
			c := rm.newestContainer(victim)
			if c == nil {
				break
			}
			starvedDemand -= c.Resource.MemMB
			kills++
			rm.preempt(c)
		}
	}
}

func pendingMemMB(app *App) float64 {
	sum := 0.0
	for _, req := range app.pending {
		sum += req.Resource.MemMB
	}
	return sum
}

// newestContainer returns the victim's most recently allocated live
// container (least work lost when killed).
func (rm *ResourceManager) newestContainer(app *App) *Container {
	live := rm.liveByApp[app]
	for i := len(live) - 1; i >= 0; i-- {
		if !live[i].released {
			return live[i]
		}
	}
	return nil
}

// preempt notifies the owner (which must stop the container's work
// without releasing it) and then releases the container.
func (rm *ResourceManager) preempt(c *Container) {
	rm.preemptions++
	if c.OnPreempt != nil {
		c.OnPreempt(c)
	}
	if !c.released {
		rm.Release(c)
	}
}

// Preemptions returns how many containers have been preempted.
func (rm *ResourceManager) Preemptions() int { return rm.preemptions }
