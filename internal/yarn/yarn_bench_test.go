package yarn

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// BenchmarkSchedulerChurn storms a 128-node cluster with
// variable-shape container place/release cycles against a standing
// load, the placement hot path of every multi-job experiment. Each
// request prefers one node, so delay scheduling, the free-capacity
// index, and the relax-retry machinery are all on the measured path.
func BenchmarkSchedulerChurn(b *testing.B) {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.Config{
		RackSizes:      []int{64, 64},
		CoresPerNode:   8,
		VCoresPerNode:  28,
		ContainerMemMB: 6 * 1024,
		DiskMBps:       90,
		NICMBps:        117,
		UplinkMBps:     2000,
	})
	rm := NewResourceManager(eng, c, FIFOScheduler{})
	app := rm.Submit("churn", 1)
	// Standing load: two thirds of every node held by long-lived
	// containers, so placement always works against a loaded index.
	for range c.Nodes {
		for k := 0; k < 4; k++ {
			app.Request(&Request{
				Resource:   Resource{MemMB: 1024, VCores: 4},
				OnAllocate: func(*Container) {},
			})
		}
	}
	eng.Run() // settle the standing load before the clock starts
	shapes := []Resource{
		{MemMB: 512, VCores: 1},
		{MemMB: 1024, VCores: 2},
		{MemMB: 1536, VCores: 3},
		{MemMB: 2048, VCores: 4},
		{MemMB: 768, VCores: 1},
	}
	n := len(c.Nodes)
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	var launch func(k int)
	launch = func(k int) {
		app.Request(&Request{
			Resource:       shapes[k%len(shapes)],
			PreferredNodes: []*cluster.Node{c.Nodes[(k*13)%n]},
			OnAllocate: func(cont *Container) {
				eng.After(0.25, func() {
					rm.Release(cont)
					done++
					if done < b.N {
						launch(done)
					}
				})
			},
		})
	}
	for i := 0; i < 32 && i < b.N; i++ {
		launch(i)
	}
	eng.Run()
}

// TestPlacementHotPathAllocationFree pins the allocation behavior the
// PR's free-capacity index bought: the per-node, per-pass placement
// queries and the coalesced relax-retry re-check must not allocate.
func TestPlacementHotPathAllocationFree(t *testing.T) {
	eng, c, rm := newRMQuiet(FIFOScheduler{})
	app := rm.Submit("alloc", 1)
	// A satisfiable request warms the placement path, and an
	// unsatisfiably large one keeps the pending shape sets non-empty.
	app.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) {}})
	eng.Run()
	app.Request(&Request{
		Resource:       Resource{MemMB: 1 << 30, VCores: 1},
		PreferredNodes: []*cluster.Node{c.Nodes[0]},
	})

	node := c.Nodes[0]
	shape := Resource{MemMB: 512, VCores: 1}
	if a := testing.AllocsPerRun(100, func() { rm.fits(node, shape) }); a != 0 {
		t.Errorf("fits allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { app.hasFittingRequest(node) }); a != 0 {
		t.Errorf("hasFittingRequest allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { rm.anyPendingFits(node) }); a != 0 {
		t.Errorf("anyPendingFits allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { rm.EachShape(func(Resource, int) {}) }); a != 0 {
		t.Errorf("EachShape allocates %v per run, want 0", a)
	}
	// First call arms the wakeup for the pending preferred request;
	// every further call finds it coalesced and must be free.
	rm.scheduleRelaxRetry()
	if rm.RetryWakeupsScheduled() != 1 {
		t.Fatalf("retry wakeups = %d, want 1", rm.RetryWakeupsScheduled())
	}
	if a := testing.AllocsPerRun(100, func() { rm.scheduleRelaxRetry() }); a != 0 {
		t.Errorf("coalesced scheduleRelaxRetry allocates %v per run, want 0", a)
	}
	if rm.RetryWakeupsScheduled() != 1 {
		t.Fatalf("coalesced calls scheduled more wakeups: %d", rm.RetryWakeupsScheduled())
	}
}
