package yarn

import (
	"testing"
)

func TestPreemptionRescuesStarvedApp(t *testing.T) {
	eng, c, rm := newRM(t, FairScheduler{})
	rm.EnablePreemption(PreemptionConfig{CheckInterval: 5, StarvationFraction: 0.5, MaxKillsPerRound: 4})

	capacity := 6 * len(c.Nodes)
	hog := rm.Submit("hog", 1)
	hogKilled := 0
	for i := 0; i < capacity; i++ {
		hog.Request(&Request{
			Resource:   Resource{MemMB: 1024, VCores: 1},
			OnAllocate: func(*Container) {},
			OnPreempt:  func(*Container) { hogKilled++ },
		})
	}
	eng.RunUntil(1) // hog owns the whole cluster

	late := rm.Submit("late", 1)
	lateGot := 0
	for i := 0; i < 20; i++ {
		late.Request(&Request{
			Resource:   Resource{MemMB: 1024, VCores: 1},
			OnAllocate: func(*Container) { lateGot++ },
		})
	}
	eng.RunUntil(120)
	if hogKilled == 0 {
		t.Fatal("no containers preempted from the hog")
	}
	if lateGot == 0 {
		t.Fatal("late app never received capacity")
	}
	if rm.Preemptions() != hogKilled {
		t.Fatalf("Preemptions() = %d, callbacks = %d", rm.Preemptions(), hogKilled)
	}
	// Preemption must stop once the late app reaches its share region:
	// it never kills below the victim's fair share (54 containers).
	if hogKilled > capacity/2 {
		t.Fatalf("preempted %d containers, beyond the victim's fair share excess", hogKilled)
	}
}

func TestPreemptionIdleWhenFair(t *testing.T) {
	eng, c, rm := newRM(t, FairScheduler{})
	rm.EnablePreemption(DefaultPreemption())
	a := rm.Submit("a", 1)
	b := rm.Submit("b", 1)
	capacity := 6 * len(c.Nodes)
	killed := 0
	onPreempt := func(*Container) { killed++ }
	for i := 0; i < capacity/2; i++ {
		a.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) {}, OnPreempt: onPreempt})
		b.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) {}, OnPreempt: onPreempt})
	}
	eng.RunUntil(100)
	if killed != 0 {
		t.Fatalf("%d containers preempted in a balanced cluster", killed)
	}
}

func TestPreemptionTickerStopsWhenAppsGone(t *testing.T) {
	eng, _, rm := newRM(t, FairScheduler{})
	rm.EnablePreemption(PreemptionConfig{CheckInterval: 5, StarvationFraction: 0.5, MaxKillsPerRound: 1})
	app := rm.Submit("only", 1)
	var cont *Container
	app.Request(&Request{Resource: Resource{MemMB: 512, VCores: 1}, OnAllocate: func(c *Container) { cont = c }})
	eng.RunUntil(6)
	rm.Release(cont)
	app.Finish()
	eng.Run() // the queue must drain (ticker self-stops)
	if eng.Pending() != 0 {
		t.Fatalf("%d events pending: preemption ticker leaked", eng.Pending())
	}
}

func TestPreemptionRespectsWeights(t *testing.T) {
	// The heavy app deserves 3/4 of the cluster; when it holds all of
	// it and a light app arrives, preemption should stop near the
	// weighted share, not at half.
	eng, c, rm := newRM(t, FairScheduler{})
	rm.EnablePreemption(PreemptionConfig{CheckInterval: 5, StarvationFraction: 0.9, MaxKillsPerRound: 8})
	capacity := 6 * len(c.Nodes)
	heavy := rm.Submit("heavy", 3)
	killed := 0
	for i := 0; i < capacity; i++ {
		heavy.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1},
			OnAllocate: func(*Container) {}, OnPreempt: func(*Container) { killed++ }})
	}
	eng.RunUntil(1)
	light := rm.Submit("light", 1)
	lightGot := 0
	for i := 0; i < capacity; i++ {
		light.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1},
			OnAllocate: func(*Container) { lightGot++ }})
	}
	eng.RunUntil(300)
	// Light's weighted share is 1/4 of capacity = 27 containers.
	if killed > capacity/4+4 {
		t.Fatalf("killed %d, far beyond the light app's weighted share", killed)
	}
	if lightGot == 0 {
		t.Fatal("light app starved despite preemption")
	}
}
