package yarn

import "repro/internal/cluster"

// FIFOScheduler serves applications in submission order, like YARN's
// capacity scheduler with a single queue.
type FIFOScheduler struct{}

// Name implements Scheduler.
func (FIFOScheduler) Name() string { return "fifo" }

// Pick implements Scheduler: the first app with a fitting request wins.
func (FIFOScheduler) Pick(apps []*App, node *cluster.Node) int {
	for i, app := range apps {
		if app.hasFittingRequest(node) {
			return i
		}
	}
	return -1
}

// FairScheduler serves the application with the smallest
// weight-normalized memory share, YARN's fair share policy used in the
// paper's multi-tenant experiment (§8.5).
type FairScheduler struct{}

// Name implements Scheduler.
func (FairScheduler) Name() string { return "fair" }

// Pick implements Scheduler.
func (FairScheduler) Pick(apps []*App, node *cluster.Node) int {
	best := -1
	var bestShare float64
	for i, app := range apps {
		if !app.hasFittingRequest(node) {
			continue
		}
		share := app.usedMemMB / app.Weight
		if best == -1 || share < bestShare {
			best = i
			bestShare = share
		}
	}
	return best
}

// hasFittingRequest reports whether any pending request fits node. It
// scans the app's distinct pending shapes rather than every request;
// fitting is purely shape-based, so the answer is identical.
func (a *App) hasFittingRequest(node *cluster.Node) bool {
	for i := range a.pendingShapes {
		if a.rm.fits(node, a.pendingShapes[i].r) {
			return true
		}
	}
	return false
}
