package yarn

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestRelaxRetryCoalescing pins the wakeup coalescing: K locality-
// restricted requests enqueued at the same instant on a full cluster
// share their delay-scheduling expiries, so exactly two retry wakeups
// are scheduled in total (rack delay, then off-rack delay) — not 2K.
func TestRelaxRetryCoalescing(t *testing.T) {
	eng, c, rm := newRMQuiet(FIFOScheduler{})
	holder := rm.Submit("holder", 1)
	for range c.Nodes {
		holder.Request(&Request{
			Resource:   Resource{MemMB: c.Nodes[0].Mem.Capacity, VCores: c.Nodes[0].VCores},
			OnAllocate: func(*Container) {}, // held forever
		})
	}
	eng.Run()
	if got := rm.RetryWakeupsScheduled(); got != 0 {
		t.Fatalf("wakeups after fill = %d, want 0", got)
	}

	app := rm.Submit("blocked", 1)
	const K = 16
	for i := 0; i < K; i++ {
		app.Request(&Request{
			Resource:       Resource{MemMB: 1024, VCores: 1},
			PreferredNodes: []*cluster.Node{c.Nodes[i%len(c.Nodes)]},
		})
	}
	eng.Run()
	// One wakeup at enqueued+RackDelay, one at enqueued+OffRackDelay,
	// shared by all K requests.
	if got := rm.RetryWakeupsScheduled(); got != 2 {
		t.Fatalf("retry wakeups = %d, want 2 for %d same-instant requests", got, K)
	}
	if app.Pending() != K {
		t.Fatalf("pending = %d, want %d (cluster is full)", app.Pending(), K)
	}
}

// TestPlacementDeterministicAcrossRuns runs an identical mixed
// place/release workload on two fresh engines and requires the full
// allocation trace — container IDs, nodes, and simulated timestamps —
// to match event for event. This is the same-seed identity guarantee
// the free-capacity index and wakeup coalescing must preserve.
func TestPlacementDeterministicAcrossRuns(t *testing.T) {
	trace := func() []string {
		eng := sim.NewEngine()
		c := cluster.New(eng, cluster.PaperConfig())
		rm := NewResourceManager(eng, c, FairScheduler{})
		var log []string
		shapes := []Resource{
			{MemMB: 1024, VCores: 2},
			{MemMB: 2048, VCores: 4},
			{MemMB: 1536, VCores: 2},
		}
		for a := 0; a < 3; a++ {
			app := rm.Submit(fmt.Sprintf("app%d", a), float64(a+1))
			for i := 0; i < 40; i++ {
				i := i
				name := app.Name
				app.Request(&Request{
					Resource:       shapes[(a+i)%len(shapes)],
					PreferredNodes: []*cluster.Node{c.Nodes[(a*7+i*5)%len(c.Nodes)]},
					OnAllocate: func(cont *Container) {
						log = append(log, fmt.Sprintf("%.6f %s c%d %s %v",
							eng.Now(), name, cont.ID, cont.Node.Name, cont.Resource))
						eng.After(1.5+float64(i%4), func() { rm.Release(cont) })
					},
				})
			}
		}
		eng.Run()
		return log
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at event %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
	if len(a) != 120 {
		t.Fatalf("trace has %d allocations, want 120", len(a))
	}
}

// TestFreeCapacityIndexMirrorsMemPools churns placements and releases
// and checks after every step that the RM's free-capacity mirror
// arrays agree bit-for-bit with the nodes' MemPool accounting.
func TestFreeCapacityIndexMirrorsMemPools(t *testing.T) {
	eng, c, rm := newRMQuiet(FIFOScheduler{})
	check := func(when string) {
		for i, n := range c.Nodes {
			if rm.nodeUsedMem[i] != n.Mem.Used() {
				t.Fatalf("%s: node %d mirror=%v pool=%v", when, i, rm.nodeUsedMem[i], n.Mem.Used())
			}
		}
	}
	app := rm.Submit("mirror", 1)
	var live []*Container
	for i := 0; i < 60; i++ {
		app.Request(&Request{
			Resource: Resource{MemMB: 700 + float64(i%5)*256, VCores: 1 + i%3},
			OnAllocate: func(cont *Container) {
				live = append(live, cont)
				check("after place")
			},
		})
	}
	eng.Run()
	check("after churn")
	for _, cont := range live {
		rm.Release(cont)
		check("after release")
	}
}
