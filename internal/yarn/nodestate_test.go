package yarn

import (
	"testing"

	"repro/internal/cluster"
)

// TestNodeLossReclaimsContainers kills a node and checks the RM
// declares it lost after the liveness expiry, releases its containers
// through OnNodeLost, and excludes the node from placement until it
// restarts.
func TestNodeLossReclaimsContainers(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)

	var got *Container
	lost := 0
	app.Request(&Request{
		Resource:   Resource{MemMB: 1024, VCores: 1},
		OnAllocate: func(cont *Container) { got = cont },
		OnNodeLost: func(cont *Container) { lost++ },
	})
	eng.Run()
	if got == nil {
		t.Fatal("container never allocated")
	}

	victim := got.Node
	eng.At(10, func() { c.KillNode(victim) })
	eng.Run()

	if lost != 1 {
		t.Fatalf("OnNodeLost fired %d times, want 1", lost)
	}
	if !rm.NodeDeclaredLost(victim) {
		t.Fatal("node not declared lost after expiry")
	}
	if c.Faults.ContainersLost != 1 {
		t.Fatalf("ContainersLost = %d, want 1", c.Faults.ContainersLost)
	}
	if app.Running() != 0 {
		t.Fatalf("app still running %d containers", app.Running())
	}

	// New requests must avoid the dead node.
	var again *Container
	app.Request(&Request{
		Resource:       Resource{MemMB: 1024, VCores: 1},
		PreferredNodes: []*cluster.Node{victim},
		OnAllocate:     func(cont *Container) { again = cont },
	})
	eng.Run()
	if again == nil {
		t.Fatal("replacement container never allocated")
	}
	if again.Node == victim {
		t.Fatal("replacement placed on the dead node")
	}
}

// TestRestoreBeforeExpiryStillDeclaresLost pins the NM-resync rule: a
// node that bounces faster than the expiry window still loses its
// containers (the restarted NM has none), then rejoins.
func TestRestoreBeforeExpiryStillDeclaresLost(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)

	var got *Container
	lost := 0
	app.Request(&Request{
		Resource:   Resource{MemMB: 1024, VCores: 1},
		OnAllocate: func(cont *Container) { got = cont },
		OnNodeLost: func(cont *Container) { lost++ },
	})
	eng.Run()
	victim := got.Node

	eng.At(10, func() { c.KillNode(victim) })
	eng.At(10+rm.NodeExpirySecs/2, func() { c.RestoreNode(victim) })
	eng.Run()

	if lost != 1 {
		t.Fatalf("OnNodeLost fired %d times, want 1 (resync must reclaim)", lost)
	}
	if rm.NodeDeclaredLost(victim) {
		t.Fatal("node still declared lost after restore")
	}

	// The rejoined node is placeable again.
	var again *Container
	app.Request(&Request{
		Resource:       Resource{MemMB: 1024, VCores: 1},
		PreferredNodes: []*cluster.Node{victim},
		OnAllocate:     func(cont *Container) { again = cont },
	})
	eng.Run()
	if again == nil || again.Node != victim {
		t.Fatal("restored node not used for a preferred placement")
	}
}

// TestBlacklistRoundTrip drives a node over the failure threshold,
// checks placement avoids it, and checks a restart clears the
// blacklist (Hadoop's NM-resync forgiveness).
func TestBlacklistRoundTrip(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)
	n := c.Nodes[0]

	for i := 0; i < rm.BlacklistThreshold-1; i++ {
		rm.ReportTaskFailure(n)
		if rm.Blacklisted(n) {
			t.Fatalf("blacklisted after %d failures (threshold %d)", i+1, rm.BlacklistThreshold)
		}
	}
	rm.ReportTaskFailure(n)
	if !rm.Blacklisted(n) {
		t.Fatal("not blacklisted at threshold")
	}
	if c.Faults.NodesBlacklisted != 1 {
		t.Fatalf("NodesBlacklisted = %d, want 1", c.Faults.NodesBlacklisted)
	}

	// Placement must skip the blacklisted node even when preferred.
	var got *Container
	app.Request(&Request{
		Resource:       Resource{MemMB: 1024, VCores: 1},
		PreferredNodes: []*cluster.Node{n},
		OnAllocate:     func(cont *Container) { got = cont },
	})
	eng.Run()
	if got == nil {
		t.Fatal("container never allocated")
	}
	if got.Node == n {
		t.Fatal("placed on a blacklisted node")
	}

	// Restart clears the blacklist and the failure count.
	eng.At(100, func() { c.KillNode(n) })
	eng.At(200, func() { c.RestoreNode(n) })
	eng.Run()
	if rm.Blacklisted(n) {
		t.Fatal("blacklist survived a node restart")
	}
	if c.Faults.NodesUnblacklisted != 1 {
		t.Fatalf("NodesUnblacklisted = %d, want 1", c.Faults.NodesUnblacklisted)
	}
	rm.ReportTaskFailure(n)
	if rm.Blacklisted(n) {
		t.Fatal("failure count not reset by restart")
	}
}

// TestBlacklistIgnoredWhenTooWide pins the 33% ignore threshold: when
// blacklisting would exclude too much of the cluster, placement uses
// blacklisted nodes anyway rather than starving.
func TestBlacklistIgnoredWhenTooWide(t *testing.T) {
	eng, c, rm := newRM(t, FIFOScheduler{})
	app := rm.Submit("job", 1)

	// Blacklist 7 of 18 nodes (> 33%).
	for i := 0; i < 7; i++ {
		for j := 0; j < rm.BlacklistThreshold; j++ {
			rm.ReportTaskFailure(c.Nodes[i])
		}
	}

	// Ask for one whole-node container per node: if the blacklist were
	// honored, 7 of the 18 requests could never place.
	mem := c.Nodes[0].Mem.Capacity
	placed := 0
	onBlacklisted := 0
	for i := 0; i < len(c.Nodes); i++ {
		app.Request(&Request{Resource: Resource{MemMB: mem, VCores: 1}, OnAllocate: func(cont *Container) {
			placed++
			if rm.Blacklisted(cont.Node) {
				onBlacklisted++
			}
		}})
	}
	eng.Run()
	if placed != len(c.Nodes) {
		t.Fatalf("placed %d of %d requests: blacklist not ignored above threshold", placed, len(c.Nodes))
	}
	if onBlacklisted == 0 {
		t.Fatal("no placement used a blacklisted node")
	}
}
