package yarn

import (
	"fmt"

	"repro/internal/cluster"
)

// CapacityScheduler implements YARN's default scheduler: named queues
// with guaranteed fractions of cluster memory, elastic up to a maximum
// fraction when other queues are idle. Applications are mapped to
// queues by name at submission (RegisterApp); unknown apps fall into
// the default queue.
type CapacityScheduler struct {
	queues   []*Queue
	byName   map[string]*Queue
	appQueue map[string]string // app name -> queue name
	// usedBy is Pick's per-call scratch (cleared, not reallocated).
	usedBy map[*Queue]float64
}

// Queue is one capacity-scheduler queue.
type Queue struct {
	Name string
	// Capacity is the guaranteed fraction of cluster memory.
	Capacity float64
	// MaxCapacity bounds elastic growth (0 = no bound).
	MaxCapacity float64
}

// NewCapacityScheduler builds the scheduler. Queue capacities must sum
// to (approximately) 1; a queue named "default" is required as the
// fallback.
func NewCapacityScheduler(queues []Queue) *CapacityScheduler {
	if len(queues) == 0 {
		panic("yarn: capacity scheduler needs at least one queue")
	}
	total := 0.0
	s := &CapacityScheduler{
		byName:   make(map[string]*Queue, len(queues)),
		appQueue: make(map[string]string),
		usedBy:   make(map[*Queue]float64, len(queues)),
	}
	hasDefault := false
	for i := range queues {
		q := queues[i]
		if q.Capacity <= 0 {
			panic(fmt.Sprintf("yarn: queue %q needs positive capacity", q.Name))
		}
		if q.MaxCapacity == 0 {
			q.MaxCapacity = 1
		}
		if q.MaxCapacity < q.Capacity {
			panic(fmt.Sprintf("yarn: queue %q max capacity below guarantee", q.Name))
		}
		total += q.Capacity
		s.queues = append(s.queues, &q) //mrlint:ignore retained-append one entry per configured queue, fixed at construction
		s.byName[q.Name] = &q
		if q.Name == "default" {
			hasDefault = true
		}
	}
	if total < 0.999 || total > 1.001 {
		panic(fmt.Sprintf("yarn: queue capacities sum to %v, want 1", total))
	}
	if !hasDefault {
		panic("yarn: capacity scheduler requires a 'default' queue")
	}
	return s
}

// RegisterApp maps an application name to a queue. Must be called
// before the app's first request; unmapped apps use "default".
func (s *CapacityScheduler) RegisterApp(appName, queueName string) {
	if _, ok := s.byName[queueName]; !ok {
		panic(fmt.Sprintf("yarn: unknown queue %q", queueName))
	}
	s.appQueue[appName] = queueName
}

// Name implements Scheduler.
func (s *CapacityScheduler) Name() string { return "capacity" }

func (s *CapacityScheduler) queueOf(app *App) *Queue {
	if qn, ok := s.appQueue[app.Name]; ok {
		return s.byName[qn]
	}
	return s.byName["default"]
}

// Pick implements Scheduler: among apps with fitting requests, serve
// the one in the queue with the lowest used/guaranteed ratio, skipping
// queues at their maximum capacity. Within a queue, FIFO.
func (s *CapacityScheduler) Pick(apps []*App, node *cluster.Node) int {
	if len(apps) == 0 {
		return -1
	}
	totalMem := apps[0].rm.Cluster().TotalContainerMemMB()
	usedBy := s.usedBy
	for q := range usedBy {
		delete(usedBy, q)
	}
	for _, app := range apps {
		usedBy[s.queueOf(app)] += app.usedMemMB
	}
	best := -1
	var bestRatio float64
	for i, app := range apps {
		if !app.hasFittingRequest(node) {
			continue
		}
		q := s.queueOf(app)
		used := usedBy[q]
		if q.MaxCapacity < 1 && used >= q.MaxCapacity*totalMem {
			continue // queue capped
		}
		ratio := used / (q.Capacity * totalMem)
		if best == -1 || ratio < bestRatio {
			best = i
			bestRatio = ratio
		}
	}
	return best
}

var _ Scheduler = (*CapacityScheduler)(nil)
