package yarn

import (
	"testing"
)

func twoQueueScheduler() *CapacityScheduler {
	return NewCapacityScheduler([]Queue{
		{Name: "prod", Capacity: 0.7},
		{Name: "default", Capacity: 0.3},
	})
}

func TestCapacitySchedulerValidation(t *testing.T) {
	for _, bad := range [][]Queue{
		{},
		{{Name: "default", Capacity: 0.5}}, // sums to 0.5
		{{Name: "a", Capacity: 1}},         // no default
		{{Name: "default", Capacity: 0.5}, {Name: "b", Capacity: -0.5}}, // negative
		{{Name: "default", Capacity: 1, MaxCapacity: 0.5}},              // max < guarantee
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid queue set %v accepted", bad)
				}
			}()
			NewCapacityScheduler(bad)
		}()
	}
}

func TestCapacityGuaranteedShares(t *testing.T) {
	sched := twoQueueScheduler()
	eng, c, rm := newRM(t, sched)
	prod := rm.Submit("prodjob", 1)
	batch := rm.Submit("batchjob", 1)
	sched.RegisterApp("prodjob", "prod")
	// batchjob is unmapped -> default queue.
	capacity := 6 * len(c.Nodes)
	prodGot, batchGot := 0, 0
	for i := 0; i < capacity; i++ {
		prod.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { prodGot++ }})
		batch.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { batchGot++ }})
	}
	eng.Run()
	if prodGot+batchGot != capacity {
		t.Fatalf("total = %d, want %d", prodGot+batchGot, capacity)
	}
	// Demand saturates both queues: the split should track 70/30.
	wantProd := int(0.7 * float64(capacity))
	if prodGot < wantProd-5 || prodGot > wantProd+5 {
		t.Fatalf("prod got %d of %d, want ~%d (70%%)", prodGot, capacity, wantProd)
	}
}

func TestCapacityElasticity(t *testing.T) {
	// Only the default (30%) queue has demand: it may grow past its
	// guarantee up to the whole cluster.
	sched := twoQueueScheduler()
	eng, c, rm := newRM(t, sched)
	batch := rm.Submit("batchjob", 1)
	capacity := 6 * len(c.Nodes)
	got := 0
	for i := 0; i < capacity; i++ {
		batch.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { got++ }})
	}
	eng.Run()
	if got != capacity {
		t.Fatalf("idle-cluster elasticity: got %d of %d", got, capacity)
	}
}

func TestCapacityMaxCap(t *testing.T) {
	sched := NewCapacityScheduler([]Queue{
		{Name: "capped", Capacity: 0.2, MaxCapacity: 0.25},
		{Name: "default", Capacity: 0.8},
	})
	eng, c, rm := newRM(t, sched)
	app := rm.Submit("job", 1)
	sched.RegisterApp("job", "capped")
	capacity := 6 * len(c.Nodes)
	got := 0
	for i := 0; i < capacity; i++ {
		app.Request(&Request{Resource: Resource{MemMB: 1024, VCores: 1}, OnAllocate: func(*Container) { got++ }})
	}
	eng.Run()
	// 25% of cluster memory = 27 containers of 1 GB.
	want := int(0.25 * float64(capacity))
	if got != want {
		t.Fatalf("capped queue got %d containers, want %d", got, want)
	}
}

func TestCapacityUnknownQueuePanics(t *testing.T) {
	sched := twoQueueScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown queue accepted")
		}
	}()
	sched.RegisterApp("x", "nope")
}
