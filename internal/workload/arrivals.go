package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ArrivalSpec describes an open job-arrival process: a Poisson stream
// whose rate is modulated by a diurnal cycle — the shape of ROADMAP
// item 1's multi-tenant "thousands of jobs/day" workload. All
// randomness is drawn from named sim.Source sub-streams, so a given
// (seed, spec) pair always yields the same arrival sequence regardless
// of what else the simulation draws.
type ArrivalSpec struct {
	// MeanPerHour is the average arrival rate over a full day, jobs
	// per hour of simulated time.
	MeanPerHour float64
	// DiurnalAmplitude in [0, 1) scales the day/night swing: the
	// instantaneous rate is MeanPerHour * (1 + A*sin(2π(t-Phase)/Period)).
	// 0 is a flat Poisson process.
	DiurnalAmplitude float64
	// PeriodSecs is the cycle length (default 86400, one day).
	PeriodSecs float64
	// PhaseSecs shifts the cycle; with the default 0 the rate crosses
	// the mean going up at t=0 and peaks a quarter period in.
	PhaseSecs float64
	// Horizon stops the stream: no arrivals are generated at or past
	// this simulated time.
	Horizon float64
}

func (s ArrivalSpec) withDefaults() (ArrivalSpec, error) {
	if s.PeriodSecs == 0 {
		s.PeriodSecs = 86400
	}
	switch {
	case s.MeanPerHour <= 0 || math.IsNaN(s.MeanPerHour) || math.IsInf(s.MeanPerHour, 0):
		return s, fmt.Errorf("workload: arrival rate must be positive and finite, got %v", s.MeanPerHour)
	case s.DiurnalAmplitude < 0 || s.DiurnalAmplitude >= 1:
		return s, fmt.Errorf("workload: diurnal amplitude must be in [0, 1), got %v", s.DiurnalAmplitude)
	case s.PeriodSecs <= 0:
		return s, fmt.Errorf("workload: diurnal period must be positive, got %v", s.PeriodSecs)
	case s.Horizon <= 0 || math.IsNaN(s.Horizon) || math.IsInf(s.Horizon, 0):
		return s, fmt.Errorf("workload: arrival horizon must be positive and finite, got %v", s.Horizon)
	}
	return s, nil
}

// rate returns the instantaneous arrival rate in jobs/second at time t.
func (s ArrivalSpec) rate(t float64) float64 {
	base := s.MeanPerHour / 3600
	if s.DiurnalAmplitude == 0 {
		return base
	}
	return base * (1 + s.DiurnalAmplitude*math.Sin(2*math.Pi*(t-s.PhaseSecs)/s.PeriodSecs))
}

// Arrivals generates the arrival times of the nonhomogeneous Poisson
// process described by spec, deterministically from the "arrivals"
// sub-stream of src. It uses Lewis-Shedler thinning: candidate gaps
// are drawn from a homogeneous process at the peak rate
// mean*(1+amplitude) and accepted with probability rate(t)/peak, which
// is exact for any bounded rate function. Each accepted time is
// strictly later than the one before it.
func Arrivals(src *sim.Source, spec ArrivalSpec) ([]float64, error) {
	s, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	gaps := src.Sub("arrivals").Stream("gaps")
	accept := src.Sub("arrivals").Stream("thinning")
	peak := (s.MeanPerHour / 3600) * (1 + s.DiurnalAmplitude)

	var times []float64
	t := 0.0
	for {
		// Exponential gap at the peak rate. ExpFloat64 has mean 1.
		t += gaps.ExpFloat64() / peak
		if t >= s.Horizon {
			return times, nil
		}
		if s.DiurnalAmplitude == 0 || accept.Float64()*peak < s.rate(t) {
			times = append(times, t)
		}
	}
}

// ScheduleArrivals posts one event per arrival on the given shard,
// invoking submit(i, t) for the i-th arrival at simulated time t. It
// returns the number of arrivals scheduled. The caller owns what
// "submit" means — typically mapreduce.Submit of a job drawn from the
// Table 3 mix — which keeps this generator free of job-layer
// dependencies.
func ScheduleArrivals(shard *sim.Shard, src *sim.Source, spec ArrivalSpec, submit func(i int, t float64)) (int, error) {
	times, err := Arrivals(src, spec)
	if err != nil {
		return 0, err
	}
	for i, t := range times {
		i, t := i, t
		shard.At(t, func() { submit(i, t) })
	}
	return len(times), nil
}
