package workload

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchmarkSpec is the JSON schema for user-defined benchmarks, so
// downstream users can model their own applications without touching
// Go code:
//
//	{
//	  "name": "sessionize",
//	  "input_gb": 250,
//	  "maps": 1870, "reduces": 400,
//	  "map_cpu_per_mb": 0.02,
//	  "raw_map_selectivity": 0.9,
//	  "combiner_reduction": 0.6,
//	  "reduce_selectivity": 0.3,
//	  "record_bytes": 48,
//	  "map_working_set_mb": 220,
//	  "reduce_working_set_mb": 260,
//	  "skew_cv": 0.2
//	}
type BenchmarkSpec struct {
	Name    string  `json:"name"`
	InputGB float64 `json:"input_gb"`
	Maps    int     `json:"maps"`
	Reduces int     `json:"reduces"`

	MapCPUPerMB        float64 `json:"map_cpu_per_mb"`
	MapFixedCPUSecs    float64 `json:"map_fixed_cpu_secs"`
	ReduceCPUPerMB     float64 `json:"reduce_cpu_per_mb"`
	SortCPUPerMB       float64 `json:"sort_cpu_per_mb"`
	RawMapSelectivity  float64 `json:"raw_map_selectivity"`
	CombinerReduction  float64 `json:"combiner_reduction"`
	ReduceSelectivity  float64 `json:"reduce_selectivity"`
	RecordBytes        float64 `json:"record_bytes"` // bytes, not MB
	MapWorkingSetMB    float64 `json:"map_working_set_mb"`
	ReduceWorkingSetMB float64 `json:"reduce_working_set_mb"`
	SkewCV             float64 `json:"skew_cv"`
	CPUFactor          float64 `json:"cpu_factor"`
}

// Validate checks the spec for the mistakes that would make a
// simulation silently meaningless.
func (s BenchmarkSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: spec needs a name")
	case s.Maps <= 0:
		return fmt.Errorf("workload: %s: maps must be positive", s.Name)
	case s.Reduces < 0:
		return fmt.Errorf("workload: %s: negative reduces", s.Name)
	case s.InputGB < 0:
		return fmt.Errorf("workload: %s: negative input size", s.Name)
	case s.InputGB > 0 && s.RawMapSelectivity <= 0:
		return fmt.Errorf("workload: %s: raw_map_selectivity must be positive", s.Name)
	case s.CombinerReduction < 0 || s.CombinerReduction > 1:
		return fmt.Errorf("workload: %s: combiner_reduction outside [0,1]", s.Name)
	case s.ReduceSelectivity < 0:
		return fmt.Errorf("workload: %s: negative reduce_selectivity", s.Name)
	case s.RecordBytes <= 0:
		return fmt.Errorf("workload: %s: record_bytes must be positive", s.Name)
	case s.SkewCV < 0 || s.SkewCV > 1:
		return fmt.Errorf("workload: %s: skew_cv outside [0,1]", s.Name)
	case s.InputGB == 0 && s.MapFixedCPUSecs <= 0:
		return fmt.Errorf("workload: %s: a job with no input needs map_fixed_cpu_secs", s.Name)
	}
	return nil
}

// Benchmark materializes the spec.
func (s BenchmarkSpec) Benchmark() (Benchmark, error) {
	if err := s.Validate(); err != nil {
		return Benchmark{}, err
	}
	comb := s.CombinerReduction
	if comb == 0 {
		comb = 1 // no combiner
	}
	cpuFactor := s.CPUFactor
	if cpuFactor == 0 {
		cpuFactor = 1
	}
	inputMB := s.InputGB * 1024
	shuffleMB := inputMB * s.RawMapSelectivity * comb
	p := Profile{
		Name:               s.Name,
		MapCPUPerMB:        s.MapCPUPerMB * cpuFactor,
		MapFixedCPUSecs:    s.MapFixedCPUSecs,
		ReduceCPUPerMB:     s.ReduceCPUPerMB * cpuFactor,
		SortCPUPerMB:       defaultIfZero(s.SortCPUPerMB, 0.003),
		RawMapSelectivity:  s.RawMapSelectivity,
		CombinerReduction:  comb,
		ReduceSelectivity:  s.ReduceSelectivity,
		RecordBytes:        s.RecordBytes * 1e-6, // bytes -> MB
		MapWorkingSetMB:    defaultIfZero(s.MapWorkingSetMB, 100),
		ReduceWorkingSetMB: defaultIfZero(s.ReduceWorkingSetMB, 150),
	}
	return Benchmark{
		Name:          s.Name,
		Profile:       p,
		Dataset:       Dataset{Name: s.Name + "-data", SizeMB: inputMB, SkewCV: s.SkewCV, CPUFactor: 1},
		InputSizeMB:   inputMB,
		ShuffleSizeMB: shuffleMB,
		OutputSizeMB:  shuffleMB * s.ReduceSelectivity,
		NumMaps:       s.Maps,
		NumReduces:    s.Reduces,
		Type:          classify(inputMB, shuffleMB, p),
	}, nil
}

func defaultIfZero(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// classify applies the paper's three-way job typing heuristically.
func classify(inputMB, shuffleMB float64, p Profile) JobType {
	if inputMB == 0 || p.MapCPUPerMB > 0.03 || p.MapFixedCPUSecs > 0 {
		return ComputeIntensive
	}
	if shuffleMB > inputMB*0.5 {
		return ShuffleIntensive
	}
	return MapIntensive
}

// LoadBenchmark reads a BenchmarkSpec from a JSON file.
func LoadBenchmark(path string) (Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Benchmark{}, fmt.Errorf("workload: read spec: %w", err)
	}
	return ParseBenchmark(data)
}

// ParseBenchmark decodes a BenchmarkSpec from JSON bytes.
func ParseBenchmark(data []byte) (Benchmark, error) {
	var s BenchmarkSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return Benchmark{}, fmt.Errorf("workload: parse spec: %w", err)
	}
	return s.Benchmark()
}
