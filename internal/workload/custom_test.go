package workload

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func validSpec() BenchmarkSpec {
	return BenchmarkSpec{
		Name: "sessionize", InputGB: 250, Maps: 1870, Reduces: 400,
		MapCPUPerMB: 0.02, RawMapSelectivity: 0.9, CombinerReduction: 0.6,
		ReduceSelectivity: 0.3, RecordBytes: 48,
		MapWorkingSetMB: 220, ReduceWorkingSetMB: 260, SkewCV: 0.2,
	}
}

func TestSpecToBenchmark(t *testing.T) {
	b, err := validSpec().Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	if b.InputSizeMB != 250*1024 {
		t.Errorf("input = %v", b.InputSizeMB)
	}
	wantShuffle := 250 * 1024 * 0.9 * 0.6
	if math.Abs(b.ShuffleSizeMB-wantShuffle) > 1e-6 {
		t.Errorf("shuffle = %v, want %v", b.ShuffleSizeMB, wantShuffle)
	}
	if math.Abs(b.OutputSizeMB-wantShuffle*0.3) > 1e-6 {
		t.Errorf("output = %v", b.OutputSizeMB)
	}
	if b.Profile.RecordBytes != 48e-6 {
		t.Errorf("record bytes = %v MB, want 48e-6", b.Profile.RecordBytes)
	}
	if b.Type != ShuffleIntensive {
		t.Errorf("type = %s, want Shuffle (0.54 selectivity)", b.Type)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []func(*BenchmarkSpec){
		func(s *BenchmarkSpec) { s.Name = "" },
		func(s *BenchmarkSpec) { s.Maps = 0 },
		func(s *BenchmarkSpec) { s.Reduces = -1 },
		func(s *BenchmarkSpec) { s.InputGB = -1 },
		func(s *BenchmarkSpec) { s.RawMapSelectivity = 0 },
		func(s *BenchmarkSpec) { s.CombinerReduction = 1.5 },
		func(s *BenchmarkSpec) { s.ReduceSelectivity = -0.1 },
		func(s *BenchmarkSpec) { s.RecordBytes = 0 },
		func(s *BenchmarkSpec) { s.SkewCV = 2 },
		func(s *BenchmarkSpec) { s.InputGB = 0; s.MapFixedCPUSecs = 0 },
	}
	for i, mutate := range cases {
		s := validSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	s := validSpec()
	s.CombinerReduction = 0 // means "no combiner"
	s.SortCPUPerMB = 0
	s.MapWorkingSetMB = 0
	b, err := s.Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	if b.Profile.CombinerReduction != 1 {
		t.Errorf("combiner default = %v, want 1", b.Profile.CombinerReduction)
	}
	if b.Profile.SortCPUPerMB != 0.003 {
		t.Errorf("sort cpu default = %v", b.Profile.SortCPUPerMB)
	}
	if b.Profile.MapWorkingSetMB != 100 {
		t.Errorf("map working set default = %v", b.Profile.MapWorkingSetMB)
	}
}

func TestComputeOnlySpec(t *testing.T) {
	s := BenchmarkSpec{Name: "pi", Maps: 50, Reduces: 1,
		MapFixedCPUSecs: 30, RecordBytes: 50}
	b, err := s.Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	if b.Type != ComputeIntensive {
		t.Errorf("type = %s, want Compute", b.Type)
	}
}

func TestLoadBenchmarkJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	doc := `{
	  "name": "sessionize", "input_gb": 250, "maps": 1870, "reduces": 400,
	  "map_cpu_per_mb": 0.02, "raw_map_selectivity": 0.9,
	  "combiner_reduction": 0.6, "reduce_selectivity": 0.3,
	  "record_bytes": 48, "skew_cv": 0.2
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBenchmark(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "sessionize" || b.NumMaps != 1870 {
		t.Fatalf("loaded wrong benchmark: %+v", b)
	}
	if _, err := LoadBenchmark(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := ParseBenchmark([]byte("{")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	if _, err := ParseBenchmark([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// FuzzParseBenchmark: arbitrary spec JSON must never panic, and every
// accepted benchmark must be internally consistent.
func FuzzParseBenchmark(f *testing.F) {
	f.Add(`{"name":"x","maps":10,"reduces":2,"input_gb":1,"raw_map_selectivity":1,"record_bytes":50}`)
	f.Add(`{"name":"pi","maps":5,"map_fixed_cpu_secs":10,"record_bytes":50}`)
	f.Fuzz(func(t *testing.T, data string) {
		b, err := ParseBenchmark([]byte(data))
		if err != nil {
			return
		}
		if b.NumMaps <= 0 || b.Profile.RecordBytes <= 0 {
			t.Fatalf("accepted inconsistent benchmark: %+v", b)
		}
		if b.InputSizeMB > 0 && b.ShuffleSizeMB <= 0 {
			t.Fatalf("benchmark with input but no shuffle: %+v", b)
		}
	})
}
