package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestArrivalsDeterministic(t *testing.T) {
	spec := ArrivalSpec{MeanPerHour: 120, DiurnalAmplitude: 0.5, Horizon: 6 * 3600}
	a, err := Arrivals(sim.NewSource(11), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Arrivals(sim.NewSource(11), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, err := Arrivals(sim.NewSource(12), spec)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestArrivalsOrderedAndBounded(t *testing.T) {
	spec := ArrivalSpec{MeanPerHour: 600, DiurnalAmplitude: 0.9, Horizon: 3 * 3600}
	times, err := Arrivals(sim.NewSource(3), spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, at := range times {
		if at <= prev {
			t.Fatalf("arrival %d at %v not after previous %v", i, at, prev)
		}
		if at >= spec.Horizon {
			t.Fatalf("arrival %d at %v is past the horizon %v", i, at, spec.Horizon)
		}
		prev = at
	}
}

func TestArrivalsMeanRate(t *testing.T) {
	// Over two full diurnal cycles the sine integrates to zero, so the
	// expected count is MeanPerHour * hours whatever the amplitude.
	spec := ArrivalSpec{MeanPerHour: 100, DiurnalAmplitude: 0.8, PeriodSecs: 3600, Horizon: 2 * 3600}
	times, err := Arrivals(sim.NewSource(42), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := 200.0
	got := float64(len(times))
	if math.Abs(got-want) > 4*math.Sqrt(want) { // ±4σ of a Poisson(200)
		t.Fatalf("got %v arrivals, want %v ± %v", got, want, 4*math.Sqrt(want))
	}
}

func TestArrivalsDiurnalShape(t *testing.T) {
	// With a strong diurnal swing, the quarter-cycle around the peak
	// must see far more arrivals than the one around the trough.
	spec := ArrivalSpec{MeanPerHour: 400, DiurnalAmplitude: 0.9, PeriodSecs: 86400, Horizon: 86400}
	times, err := Arrivals(sim.NewSource(5), spec)
	if err != nil {
		t.Fatal(err)
	}
	// rate ∝ 1 + 0.9 sin(2πt/86400): peak at t=21600, trough at t=64800.
	peakCount, troughCount := 0, 0
	for _, at := range times {
		switch {
		case at >= 10800 && at < 32400:
			peakCount++
		case at >= 54000 && at < 75600:
			troughCount++
		}
	}
	if peakCount <= 2*troughCount {
		t.Fatalf("diurnal modulation too weak: peak quarter %d, trough quarter %d", peakCount, troughCount)
	}
}

func TestArrivalSpecValidation(t *testing.T) {
	bad := []ArrivalSpec{
		{MeanPerHour: 0, Horizon: 10},
		{MeanPerHour: -5, Horizon: 10},
		{MeanPerHour: 10, DiurnalAmplitude: 1.0, Horizon: 10},
		{MeanPerHour: 10, DiurnalAmplitude: -0.1, Horizon: 10},
		{MeanPerHour: 10, Horizon: 0},
		{MeanPerHour: 10, PeriodSecs: -3600, Horizon: 10},
		{MeanPerHour: math.Inf(1), Horizon: 10},
	}
	for i, spec := range bad {
		if _, err := Arrivals(sim.NewSource(1), spec); err == nil {
			t.Errorf("spec %d (%+v) did not error", i, spec)
		}
	}
}

func TestScheduleArrivals(t *testing.T) {
	eng := sim.NewEngine()
	spec := ArrivalSpec{MeanPerHour: 60, Horizon: 3600}
	var fired []float64
	n, err := ScheduleArrivals(eng.SystemShard(), sim.NewSource(9), spec, func(i int, at float64) {
		if i != len(fired) {
			t.Fatalf("arrival index %d fired out of order (have %d)", i, len(fired))
		}
		if eng.Now() != at {
			t.Fatalf("arrival %d fired at %v, scheduled for %v", i, eng.Now(), at)
		}
		fired = append(fired, at)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no arrivals scheduled")
	}
	eng.Run()
	if len(fired) != n {
		t.Fatalf("fired %d of %d scheduled arrivals", len(fired), n)
	}
}
