// Package workload defines the benchmark applications and datasets of
// the MRONLINE evaluation (paper Table 3): Bigram, Inverted index,
// Wordcount and Text search over the Wikipedia and Freebase corpora,
// Terasort over synthetic data, and the compute-bound BBP π digit
// job. Each benchmark carries the data-flow and CPU characteristics
// the simulator needs; the Table 3 input/shuffle/output sizes are
// reproduced exactly by deriving per-app selectivities from them.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// JobType is the paper's three-way classification (§8.1).
type JobType string

const (
	MapIntensive     JobType = "Map"
	ShuffleIntensive JobType = "Shuffle"
	ComputeIntensive JobType = "Compute"
)

// Profile captures how an application's map and reduce functions
// transform data and consume resources.
type Profile struct {
	Name string

	// MapCPUPerMB is map-function CPU in core-seconds per input MB.
	MapCPUPerMB float64
	// MapFixedCPUSecs is per-map-task CPU independent of input size
	// (BBP's digit computation).
	MapFixedCPUSecs float64
	// MapFixedOutputMB is per-map-task output independent of input
	// size (BBP emits its digits regardless of having no input).
	MapFixedOutputMB float64
	// ReduceCPUPerMB is reduce-function CPU per MB of reduce input.
	ReduceCPUPerMB float64
	// SortCPUPerMB is the framework's sort/merge CPU per MB per pass.
	SortCPUPerMB float64

	// RawMapSelectivity is map-output bytes per input byte before the
	// combiner runs.
	RawMapSelectivity float64
	// CombinerReduction is combiner-output bytes per map-output byte
	// (1 = no combiner).
	CombinerReduction float64
	// ReduceSelectivity is job-output bytes per reduce-input byte.
	ReduceSelectivity float64

	// RecordBytes is the average combined map-output record size.
	RecordBytes float64

	// MapWorkingSetMB / ReduceWorkingSetMB is user-code memory demand
	// beyond the framework buffers.
	MapWorkingSetMB    float64
	ReduceWorkingSetMB float64
}

// Dataset describes an input corpus.
type Dataset struct {
	Name   string
	SizeMB float64
	// SkewCV is the coefficient of variation of per-split work,
	// modelling the data skew the paper cites as a reason for
	// per-task configurations.
	SkewCV float64
	// CPUFactor scales per-record CPU cost: Freebase's structured
	// records are costlier to parse than Wikipedia prose, which is why
	// Table 3 classifies inverted index and text search as
	// compute-intensive on Freebase.
	CPUFactor float64
}

// The paper's corpora. Sizes follow Table 3 (GB are decimal).
var (
	Wikipedia = Dataset{Name: "Wikipedia", SizeMB: 90.5 * 1024, SkewCV: 0.15, CPUFactor: 1.0}
	Freebase  = Dataset{Name: "Freebase", SizeMB: 100.8 * 1024, SkewCV: 0.25, CPUFactor: 1.3}
)

// Synthetic returns a Teragen-style uniform dataset of the given size.
func Synthetic(sizeMB float64) Dataset {
	return Dataset{Name: "synthetic", SizeMB: sizeMB, SkewCV: 0.05, CPUFactor: 1.0}
}

// Benchmark is one Table 3 row: an application bound to a dataset with
// its task counts and the paper-reported data volumes.
type Benchmark struct {
	Name    string
	Profile Profile
	Dataset Dataset

	InputSizeMB   float64
	ShuffleSizeMB float64
	OutputSizeMB  float64
	NumMaps       int
	NumReduces    int
	Type          JobType
}

// SplitSizeMB returns the input split size (Table 3 map counts imply
// ~137 MB splits for the corpora).
func (b Benchmark) SplitSizeMB() float64 {
	if b.NumMaps == 0 || b.InputSizeMB == 0 {
		return 0
	}
	return b.InputSizeMB / float64(b.NumMaps)
}

// baseProfiles holds per-application constants; the data-dependent
// selectivities are filled in per benchmark from the Table 3 sizes.
var baseProfiles = map[string]Profile{
	"bigram": {
		Name: "bigram", MapCPUPerMB: 0.018, ReduceCPUPerMB: 0.010,
		SortCPUPerMB: 0.003, RawMapSelectivity: 1.8, RecordBytes: 25e-6,
		MapWorkingSetMB: 300, ReduceWorkingSetMB: 250,
	},
	"invertedindex": {
		Name: "invertedindex", MapCPUPerMB: 0.020, ReduceCPUPerMB: 0.012,
		SortCPUPerMB: 0.003, RawMapSelectivity: 1.0, RecordBytes: 60e-6,
		MapWorkingSetMB: 250, ReduceWorkingSetMB: 250,
	},
	"wordcount": {
		Name: "wordcount", MapCPUPerMB: 0.015, ReduceCPUPerMB: 0.008,
		SortCPUPerMB: 0.003, RawMapSelectivity: 1.1, RecordBytes: 20e-6,
		MapWorkingSetMB: 200, ReduceWorkingSetMB: 150,
	},
	"textsearch": {
		Name: "textsearch", MapCPUPerMB: 0.042, ReduceCPUPerMB: 0.006,
		SortCPUPerMB: 0.003, RawMapSelectivity: 0.06, RecordBytes: 100e-6,
		MapWorkingSetMB: 100, ReduceWorkingSetMB: 100,
	},
	"terasort": {
		Name: "terasort", MapCPUPerMB: 0.004, ReduceCPUPerMB: 0.004,
		SortCPUPerMB: 0.003, RawMapSelectivity: 1.0, RecordBytes: 100e-6,
		MapWorkingSetMB: 50, ReduceWorkingSetMB: 100,
	},
	"bbp": {
		Name: "bbp", MapCPUPerMB: 0, MapFixedCPUSecs: 40, ReduceCPUPerMB: 0.01,
		SortCPUPerMB: 0.003, RawMapSelectivity: 1.0, CombinerReduction: 1.0,
		RecordBytes: 50e-6, MapWorkingSetMB: 280, ReduceWorkingSetMB: 100,
	},
}

// combinerFor gives each app's combiner strength (output/input bytes of
// the combiner on one spill's worth of data); 1 means no combiner.
var combinerFor = map[string]float64{
	"bigram":        0.55,
	"invertedindex": 0.45,
	"wordcount":     0.30,
	"textsearch":    0.50,
	"terasort":      1.0,
	"bbp":           1.0,
}

// mkBenchmark derives the selectivities that make the model reproduce
// the Table 3 shuffle and output sizes exactly.
func mkBenchmark(app string, ds Dataset, shuffleMB, outputMB float64, maps, reduces int, jt JobType) Benchmark {
	p, ok := baseProfiles[app]
	if !ok {
		panic(fmt.Sprintf("workload: unknown app %q", app))
	}
	p.CombinerReduction = combinerFor[app]
	if ds.SizeMB > 0 {
		// shuffle = input * raw * combiner  =>  raw = shuffle/(input*comb)
		p.RawMapSelectivity = shuffleMB / (ds.SizeMB * p.CombinerReduction)
	}
	if shuffleMB > 0 {
		p.ReduceSelectivity = outputMB / shuffleMB
	}
	if ds.CPUFactor > 0 {
		p.MapCPUPerMB *= ds.CPUFactor
		p.ReduceCPUPerMB *= ds.CPUFactor
	}
	return Benchmark{
		Name:          fmt.Sprintf("%s/%s", app, ds.Name),
		Profile:       p,
		Dataset:       ds,
		InputSizeMB:   ds.SizeMB,
		ShuffleSizeMB: shuffleMB,
		OutputSizeMB:  outputMB,
		NumMaps:       maps,
		NumReduces:    reduces,
		Type:          jt,
	}
}

// Suite returns all ten Table 3 rows.
func Suite() []Benchmark {
	return []Benchmark{
		mkBenchmark("bigram", Wikipedia, 80.8*1024, 27.6*1024, 676, 200, ShuffleIntensive),
		mkBenchmark("invertedindex", Wikipedia, 38*1024, 10.3*1024, 676, 200, MapIntensive),
		mkBenchmark("wordcount", Wikipedia, 30.3*1024, 8.6*1024, 676, 200, MapIntensive),
		mkBenchmark("textsearch", Wikipedia, 2.3*1024, 469, 676, 200, ComputeIntensive),
		mkBenchmark("bigram", Freebase, 84.8*1024, 77.8*1024, 752, 200, ShuffleIntensive),
		mkBenchmark("invertedindex", Freebase, 21*1024, 11*1024, 752, 200, ComputeIntensive),
		mkBenchmark("wordcount", Freebase, 16.7*1024, 9.4*1024, 752, 200, MapIntensive),
		mkBenchmark("textsearch", Freebase, 906, 229, 752, 200, ComputeIntensive),
		Terasort(100, 752, 200),
		BBP(500000, 100),
	}
}

// ByName returns the Suite entry whose Name matches, e.g.
// "wordcount/Wikipedia" or "terasort/synthetic".
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: no benchmark %q", name)
}

// terasortMaps reproduces the paper's map counts for the Fig 13 data
// points; other sizes interpolate at the same ~136 MB split size.
var terasortMaps = map[int]int{2: 16, 6: 46, 10: 76, 20: 150, 60: 448, 100: 752}

// Terasort builds a synthetic-sort benchmark of sizeGB. Zero task
// counts pick the paper's values (maps per the published runs,
// reducers ≈ maps/4 capped at 200).
func Terasort(sizeGB int, maps, reduces int) Benchmark {
	if maps == 0 {
		if m, ok := terasortMaps[sizeGB]; ok {
			maps = m
		} else {
			maps = int(math.Ceil(float64(sizeGB) * 1024 / 136))
		}
	}
	if reduces == 0 {
		reduces = maps / 4
		if reduces > 200 {
			reduces = 200
		}
		if reduces < 1 {
			reduces = 1
		}
	}
	sizeMB := float64(sizeGB) * 1024
	b := mkBenchmark("terasort", Synthetic(sizeMB), sizeMB, sizeMB, maps, reduces, ShuffleIntensive)
	b.Name = fmt.Sprintf("terasort/%dGB", sizeGB)
	return b
}

// BBP builds the Bailey–Borwein–Plouffe π benchmark computing `digits`
// exact digits across `maps` map tasks (Table 3: 100 maps, 1 reduce,
// 252 KB shuffled, no input or output data).
func BBP(digits, maps int) Benchmark {
	p := baseProfiles["bbp"]
	p.CombinerReduction = 1
	p.ReduceSelectivity = 0
	// BBP cost grows superlinearly with digit position; calibrate the
	// fixed per-map cost so 0.5e6 digits ≈ the paper's scale.
	p.MapFixedCPUSecs = float64(digits) / 500000 * 40
	p.MapFixedOutputMB = (252.0 / 1024) / float64(maps)
	return Benchmark{
		Name:          fmt.Sprintf("bbp/%dk", digits/1000),
		Profile:       p,
		Dataset:       Dataset{Name: "none", SizeMB: 0, SkewCV: 0.02},
		InputSizeMB:   0,
		ShuffleSizeMB: 252.0 / 1024,
		OutputSizeMB:  0,
		NumMaps:       maps,
		NumReduces:    1,
		Type:          ComputeIntensive,
	}
}

// Splits returns per-map-task skew multipliers (mean 1, CV per the
// dataset) drawn from a lognormal distribution — the heterogeneity
// that motivates per-task configuration in the paper.
func (b Benchmark) Splits(rng *rand.Rand) []float64 {
	out := make([]float64, b.NumMaps)
	cv := b.Dataset.SkewCV
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	mu := -sigma * sigma / 2
	for i := range out {
		out[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return out
}

// MapOutputMBPerTask returns the average post-combiner map output per
// task.
func (b Benchmark) MapOutputMBPerTask() float64 {
	if b.NumMaps == 0 {
		return 0
	}
	return b.ShuffleSizeMB / float64(b.NumMaps)
}

// ReduceInputMBPerTask returns the average shuffle bytes per reducer.
func (b Benchmark) ReduceInputMBPerTask() float64 {
	if b.NumReduces == 0 {
		return 0
	}
	return b.ShuffleSizeMB / float64(b.NumReduces)
}
