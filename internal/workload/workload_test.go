package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestTable3Sizes pins the suite to the paper's Table 3.
func TestTable3Sizes(t *testing.T) {
	type row struct {
		name               string
		inputMB, shuffleMB float64
		maps, reduces      int
		jt                 JobType
	}
	rows := []row{
		{"bigram/Wikipedia", 90.5 * 1024, 80.8 * 1024, 676, 200, ShuffleIntensive},
		{"invertedindex/Wikipedia", 90.5 * 1024, 38 * 1024, 676, 200, MapIntensive},
		{"wordcount/Wikipedia", 90.5 * 1024, 30.3 * 1024, 676, 200, MapIntensive},
		{"textsearch/Wikipedia", 90.5 * 1024, 2.3 * 1024, 676, 200, ComputeIntensive},
		{"bigram/Freebase", 100.8 * 1024, 84.8 * 1024, 752, 200, ShuffleIntensive},
		{"invertedindex/Freebase", 100.8 * 1024, 21 * 1024, 752, 200, ComputeIntensive},
		{"wordcount/Freebase", 100.8 * 1024, 16.7 * 1024, 752, 200, MapIntensive},
		{"textsearch/Freebase", 100.8 * 1024, 906, 752, 200, ComputeIntensive},
		{"terasort/100GB", 100 * 1024, 100 * 1024, 752, 200, ShuffleIntensive},
		{"bbp/500k", 0, 252.0 / 1024, 100, 1, ComputeIntensive},
	}
	suite := Suite()
	if len(suite) != len(rows) {
		t.Fatalf("suite has %d benchmarks, Table 3 has %d", len(suite), len(rows))
	}
	for i, want := range rows {
		b := suite[i]
		if b.Name != want.name {
			t.Errorf("row %d name = %s, want %s", i, b.Name, want.name)
			continue
		}
		if math.Abs(b.InputSizeMB-want.inputMB) > 0.5 {
			t.Errorf("%s input = %v, want %v", b.Name, b.InputSizeMB, want.inputMB)
		}
		if math.Abs(b.ShuffleSizeMB-want.shuffleMB) > 0.5 {
			t.Errorf("%s shuffle = %v, want %v", b.Name, b.ShuffleSizeMB, want.shuffleMB)
		}
		if b.NumMaps != want.maps || b.NumReduces != want.reduces {
			t.Errorf("%s tasks = %d/%d, want %d/%d", b.Name, b.NumMaps, b.NumReduces, want.maps, want.reduces)
		}
		if b.Type != want.jt {
			t.Errorf("%s type = %s, want %s", b.Name, b.Type, want.jt)
		}
	}
}

// TestSelectivityConsistency checks that the derived selectivities
// regenerate the Table 3 volumes: input*raw*comb == shuffle and
// shuffle*reduceSel == output.
func TestSelectivityConsistency(t *testing.T) {
	for _, b := range Suite() {
		if b.InputSizeMB == 0 {
			continue
		}
		shuffle := b.InputSizeMB * b.Profile.RawMapSelectivity * b.Profile.CombinerReduction
		if math.Abs(shuffle-b.ShuffleSizeMB) > 1e-6*b.ShuffleSizeMB {
			t.Errorf("%s: derived shuffle %v != table %v", b.Name, shuffle, b.ShuffleSizeMB)
		}
		output := b.ShuffleSizeMB * b.Profile.ReduceSelectivity
		if math.Abs(output-b.OutputSizeMB) > 1e-6*math.Max(b.OutputSizeMB, 1) {
			t.Errorf("%s: derived output %v != table %v", b.Name, output, b.OutputSizeMB)
		}
	}
}

func TestTerasortTaskCounts(t *testing.T) {
	cases := map[int][2]int{ // paper §8.4: reducers ≈ maps/4
		2:   {16, 4},
		6:   {46, 11},
		60:  {448, 112},
		100: {752, 188},
	}
	for gb, want := range cases {
		b := Terasort(gb, 0, 0)
		if b.NumMaps != want[0] {
			t.Errorf("terasort %dGB maps = %d, want %d", gb, b.NumMaps, want[0])
		}
		if b.NumReduces != want[1] {
			t.Errorf("terasort %dGB reduces = %d, want %d", gb, b.NumReduces, want[1])
		}
	}
	b := Terasort(100, 752, 200) // Table 3 row uses explicit 200 reducers
	if b.NumReduces != 200 {
		t.Errorf("explicit reducers ignored: %d", b.NumReduces)
	}
}

func TestTerasortIdentitySelectivity(t *testing.T) {
	b := Terasort(100, 0, 0)
	p := b.Profile
	if p.RawMapSelectivity*p.CombinerReduction != 1.0 {
		t.Errorf("terasort map selectivity = %v, want 1",
			p.RawMapSelectivity*p.CombinerReduction)
	}
	if p.ReduceSelectivity != 1.0 {
		t.Errorf("terasort reduce selectivity = %v, want 1", p.ReduceSelectivity)
	}
}

func TestBBPShape(t *testing.T) {
	b := BBP(500000, 100)
	if b.InputSizeMB != 0 || b.OutputSizeMB != 0 {
		t.Errorf("BBP should have no input/output data")
	}
	if b.NumReduces != 1 {
		t.Errorf("BBP reduces = %d, want 1", b.NumReduces)
	}
	if b.Profile.MapFixedCPUSecs <= 0 {
		t.Error("BBP map tasks need fixed CPU cost")
	}
	double := BBP(1000000, 100)
	if double.Profile.MapFixedCPUSecs <= b.Profile.MapFixedCPUSecs {
		t.Error("BBP cost should grow with digits")
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("wordcount/Wikipedia")
	if err != nil {
		t.Fatal(err)
	}
	if b.Profile.Name != "wordcount" {
		t.Fatalf("wrong profile %s", b.Profile.Name)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSplitsSkew(t *testing.T) {
	b, _ := ByName("bigram/Freebase")
	rng := sim.NewSource(7).Stream("splits")
	splits := b.Splits(rng)
	if len(splits) != b.NumMaps {
		t.Fatalf("splits = %d, want %d", len(splits), b.NumMaps)
	}
	mean := 0.0
	for _, s := range splits {
		if s <= 0 {
			t.Fatalf("non-positive split multiplier %v", s)
		}
		mean += s
	}
	mean /= float64(len(splits))
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("split multipliers mean = %v, want ~1", mean)
	}
	variance := 0.0
	for _, s := range splits {
		variance += (s - mean) * (s - mean)
	}
	cv := math.Sqrt(variance/float64(len(splits))) / mean
	if cv < 0.1 || cv > 0.5 {
		t.Fatalf("split CV = %v, want near %v", cv, b.Dataset.SkewCV)
	}
}

func TestSplitSizeRealistic(t *testing.T) {
	for _, b := range Suite() {
		if b.InputSizeMB == 0 {
			continue
		}
		s := b.SplitSizeMB()
		if s < 100 || s > 160 {
			t.Errorf("%s split size %v MB outside HDFS-plausible range", b.Name, s)
		}
	}
}

func TestPerTaskVolumes(t *testing.T) {
	b := Terasort(100, 752, 200)
	perMap := b.MapOutputMBPerTask()
	if math.Abs(perMap-100*1024/752.0) > 0.01 {
		t.Errorf("map output per task = %v", perMap)
	}
	perReduce := b.ReduceInputMBPerTask()
	if math.Abs(perReduce-512) > 0.5 {
		t.Errorf("reduce input per task = %v, want 512", perReduce)
	}
}
