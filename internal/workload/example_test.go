package workload_test

import (
	"fmt"

	"repro/internal/workload"
)

// The Table 3 suite is addressable by name; Terasort scales to any
// size with the paper's task-count conventions.
func ExampleByName() {
	b, _ := workload.ByName("wordcount/Wikipedia")
	fmt.Printf("%s: %.1f GB input, %d maps, %d reduces, %s\n",
		b.Name, b.InputSizeMB/1024, b.NumMaps, b.NumReduces, b.Type)
	ts := workload.Terasort(60, 0, 0)
	fmt.Printf("%s: %d maps, %d reduces\n", ts.Name, ts.NumMaps, ts.NumReduces)
	// Output:
	// wordcount/Wikipedia: 90.5 GB input, 676 maps, 200 reduces, Map
	// terasort/60GB: 448 maps, 112 reduces
}

// Custom applications come from JSON specs, so modelling a new job
// needs no Go code.
func ExampleParseBenchmark() {
	b, err := workload.ParseBenchmark([]byte(`{
		"name": "sessionize", "input_gb": 250, "maps": 1870, "reduces": 400,
		"map_cpu_per_mb": 0.02, "raw_map_selectivity": 0.9,
		"combiner_reduction": 0.6, "reduce_selectivity": 0.3,
		"record_bytes": 48, "skew_cv": 0.2
	}`))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s shuffles %.1f GB (%s)\n", b.Name, b.ShuffleSizeMB/1024, b.Type)
	// Output:
	// sessionize shuffles 135.0 GB (Shuffle)
}
