# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench cover report figures examples vet

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

bench:
	go test -bench=. -benchmem -benchtime=1x -run='^$$' .

cover:
	go test ./internal/... -coverprofile=cover.out
	go tool cover -func=cover.out | tail -1

# Regenerate every paper artifact as text.
figures:
	go run ./cmd/mrexperiments -run all

# Self-contained HTML report with SVG charts.
report:
	go run ./cmd/mrexperiments -html report.html

examples:
	go run ./examples/quickstart
	go run ./examples/expedited
	go run ./examples/singlerun
	go run ./examples/multitenant
	go run ./examples/whatif
	go run ./examples/hotspot
